/**
 * @file
 * Figure 4: hit rate of a 16-way LRU 4KB page cache over per-table
 * embedding traces, sweeping cache capacity (§3.1).
 *
 * The paper's per-table production traces are proprietary; eight
 * synthetic tables with Zipf skews from 0.4 to 1.4 reproduce the
 * published spread — under 10% to over 90% across tables, with every
 * table exceeding 50% by 16MB.
 */

#include <cstdio>

#include "src/core/experiment.h"
#include "src/trace/page_reuse.h"
#include "src/trace/trace_gen.h"

using namespace recssd;

int
main()
{
    constexpr std::uint64_t kVectorBytes = 128;
    constexpr std::uint64_t kAccesses = 400'000;
    constexpr std::uint64_t kPage = 4096;

    // Eight tables with different skews *and* footprints, like the
    // paper's per-table production traces.
    const double alphas[] = {0.4, 0.6, 0.75, 0.9, 1.0, 1.1, 1.25, 1.4};
    const std::uint64_t universes[] = {200'000,   400'000,   700'000,
                                       1'000'000, 1'300'000, 1'600'000,
                                       1'800'000, 2'000'000};

    std::vector<std::string> cols = {"table(zipf)"};
    const std::uint64_t caps_mb[] = {1, 2, 4, 8, 16, 32, 64};
    for (auto mb : caps_mb)
        cols.push_back(std::to_string(mb) + "MB");
    TablePrinter table(
        "Figure 4: 16-way LRU 4KB page cache hit rate vs capacity",
        cols);

    for (std::size_t t = 0; t < std::size(alphas); ++t) {
        TraceSpec spec;
        spec.kind = TraceKind::Zipf;
        spec.universe = universes[t];
        spec.zipfAlpha = alphas[t];
        spec.seed = 100 + t;
        TraceGenerator gen(spec);
        std::vector<RowId> rows;
        rows.reserve(kAccesses);
        for (std::uint64_t i = 0; i < kAccesses; ++i)
            rows.push_back(gen.next());

        std::vector<std::string> cells = {
            "T" + std::to_string(t) + "(" +
            TablePrinter::fmt(alphas[t], 2) + ")"};
        for (auto mb : caps_mb) {
            double rate = lruPageCacheHitRate(rows, kVectorBytes, kPage,
                                              mb * 1024 * 1024);
            cells.push_back(TablePrinter::fmt(rate * 100.0, 1) + "%");
        }
        table.row(cells);
    }

    std::printf("\nExpected shape (paper): hit rates vary wildly across "
                "tables (<10%% to >90%%); with a 16MB cache every table "
                "clears 50%%.\n");
    return 0;
}
