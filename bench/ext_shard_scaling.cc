/**
 * @file
 * Extension: multi-SSD shard scaling.
 *
 * The paper's prototype is one Cosmos+ drive (§5); production
 * embedding stores span many. This bench serves RM1 through the
 * batched harness while sweeping the device count (1/2/4/8), the
 * partitioning policy (table-hash vs row-range) and the input
 * locality, and reports tail latency, sustained QPS, the scatter
 * fan-out and the per-device load spread.
 *
 * Expected shape: hash sharding scales throughput near-linearly with
 * devices (no gather, whole tables spread statistically); range
 * sharding buys per-op device parallelism but pays a host gather and
 * N× command overhead per op, so it wins only when single-op latency
 * dominates. Locality mostly tilts how evenly hash placement loads
 * the devices.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/reco/serving.h"

using namespace recssd;
using namespace recssd::bench;

namespace
{

struct Point
{
    ServeStats stats;
    unsigned devices = 1;
};

Point
measure(unsigned devices, ShardPolicy policy, bool uniform)
{
    SystemConfig cfg;
    cfg.shard.numShards = devices;
    cfg.shard.policy = policy;
    cfg.host.ioQueues = 4;
    cfg.ssd.nvme.numQueues = 4;
    cfg.host.balancedQueueGrants = true;
    System sys(cfg);

    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    if (uniform) {
        opt.trace.kind = TraceKind::Uniform;
    } else {
        opt.trace.kind = TraceKind::LocalityK;
        opt.trace.k = 1.0;
    }
    ModelRunner runner(sys, modelByName("RM1"), opt);

    ServeConfig scfg;
    scfg.arrivals.qps = 400.0;
    scfg.shape.minBatch = 8;
    scfg.shape.maxBatch = 8;
    scfg.batching.maxBatchSamples = 32;
    scfg.batching.maxInFlight = 4;
    scfg.queries = 60;
    scfg.warmupQueries = 10;
    Point p;
    p.stats = runServe(runner, scfg);
    p.devices = devices;
    return p;
}

/** max/min commands across devices (1.0 = perfectly even). */
double
loadSpread(const ServeStats &s)
{
    std::uint64_t lo = ~0ull, hi = 0;
    for (const auto &dev : s.perDevice) {
        std::uint64_t cmds = 0;
        for (std::uint64_t c : dev.commandsPerQueue)
            cmds += c;
        lo = std::min(lo, cmds);
        hi = std::max(hi, cmds);
    }
    if (lo == 0)
        return 0.0;  // an idle device: report "infinite" skew as 0
    return static_cast<double>(hi) / static_cast<double>(lo);
}

}  // namespace

int
main()
{
    TablePrinter table(
        "Extension: shard scaling, RM1 NDP serve (batch 8, 400 qps "
        "offered)",
        {"ssds", "policy", "trace", "p50", "p95", "p99", "qps",
         "scattered", "spread"});

    std::vector<std::string> perDevice;
    for (bool uniform : {true, false}) {
        for (auto policy : {ShardPolicy::TableHash, ShardPolicy::RowRange}) {
            for (unsigned devices : {1u, 2u, 4u, 8u}) {
                Point p = measure(devices, policy, uniform);
                const ServeStats &s = p.stats;
                table.row({std::to_string(devices),
                           shardPolicyName(policy),
                           uniform ? "uniform" : "local",
                           TablePrinter::fmtUs(s.p50Us),
                           TablePrinter::fmtUs(s.p95Us),
                           TablePrinter::fmtUs(s.p99Us),
                           TablePrinter::fmt(s.achievedQps, 1),
                           std::to_string(s.scatteredOps),
                           TablePrinter::fmt(loadSpread(s), 2)});
                if (devices > 1) {
                    std::string detail =
                        std::to_string(devices) + " ssds, " +
                        shardPolicyName(policy) +
                        (uniform ? ", uniform:" : ", local:");
                    for (std::size_t d = 0; d < s.perDevice.size(); ++d) {
                        const auto &dev = s.perDevice[d];
                        detail += "\n  ssd" + std::to_string(d) + ": " +
                                  std::to_string(dev.subOps) +
                                  " sub-ops, p50/p95/p99 " +
                                  TablePrinter::fmtUs(dev.subOpP50Us) +
                                  "/" +
                                  TablePrinter::fmtUs(dev.subOpP95Us) +
                                  "/" +
                                  TablePrinter::fmtUs(dev.subOpP99Us);
                    }
                    perDevice.push_back(std::move(detail));
                }
            }
        }
    }

    std::printf("\nPer-device sub-op service latency:\n");
    for (const std::string &d : perDevice)
        std::printf("%s\n", d.c_str());

    std::printf("\nShape: hash sharding lifts sustained QPS with device "
                "count under any traffic; range sharding fans out (and "
                "pays its gather) only when accesses actually span the "
                "row ranges — on uniform traffic every op scatters, "
                "while the K-locality traces keep the hot set in the "
                "first shard's range and leave the other devices "
                "idle.\n");
    return 0;
}
