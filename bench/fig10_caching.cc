/**
 * @file
 * Figure 10: full-model speedup of RecSSD over the conventional SSD
 * baseline with the locality optimizations of §4.2, for RM1/RM2/RM3,
 * input localities K = 0/1/2 and batch sizes 1-32.
 *
 *  - Panels (a-c): RecSSD uses only the SSD-side direct-mapped
 *    embedding cache; the baseline uses its fully associative host
 *    LRU cache (2K entries/table).
 *  - Panels (d-f): RecSSD additionally statically partitions each
 *    table, keeping the profiled-hottest 2K rows in host DRAM.
 *
 * Paper shape: at high locality (K=0) the baseline's LRU wins; at low
 * locality (K=2) RecSSD wins, up to ~1.5x with SSD caching only and
 * ~2x with static partitioning. RM2's SSD cache hit rate trails
 * RM1/RM3 (more lookups per request -> more conflict misses in the
 * direct-mapped cache).
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "src/reco/model_runner.h"

using namespace recssd;
using namespace recssd::bench;

namespace
{

struct CellResult
{
    double baseUs;
    double ndpUs;
    double baseLruHitRate;
    double ndpCacheHitRate;  ///< SSD cache (a-c) or partition (d-f)
};

CellResult
runCell(const ModelConfig &model, double k, unsigned batch, bool partition)
{
    CellResult out{};

    // Warm long enough for the trace to cycle its active id universe
    // a couple of times (steady-state hit rates), then measure a
    // sample large enough for stable labels.
    std::uint64_t lookups = model.tables[0].lookups;
    auto clamp_u = [](std::uint64_t v, unsigned lo, unsigned hi) {
        return static_cast<unsigned>(std::min<std::uint64_t>(
            std::max<std::uint64_t>(v, lo), hi));
    };
    unsigned warmup = clamp_u(20'000 / (std::uint64_t(batch) * lookups),
                              2, 128);
    unsigned measure = clamp_u(256 / batch, 2, 12);

    // Baseline: host LRU cache + pipelining.
    {
        System sys;
        RunnerOptions opt;
        opt.backend = EmbeddingBackendKind::BaselineSsd;
        opt.hostLruCache = true;
        opt.forceAllTablesOnSsd = true;
        opt.pipeline = true;
        opt.trace.kind = TraceKind::LocalityK;
        opt.trace.k = k;
        ModelRunner runner(sys, model, opt);
        auto stats = runner.measure(batch, warmup, measure);
        out.baseUs = stats.avgLatencyUs;
        out.baseLruHitRate = stats.hostCacheHitRate;
    }

    // RecSSD: SSD-side direct-mapped cache, optionally + partition.
    {
        SystemConfig cfg;
        // Sized so the direct-mapped organization shows the conflict
        // behaviour the paper reports (its traces touch a far larger
        // id universe than our synthetic active set; a proportionally
        // smaller cache reproduces the same load factor).
        cfg.ssd.sls.embeddingCacheBytes = 512ull * 1024;
        System sys(cfg);
        RunnerOptions opt;
        opt.backend = EmbeddingBackendKind::Ndp;
        opt.staticPartition = partition;
        opt.forceAllTablesOnSsd = true;
        opt.pipeline = true;
        opt.trace.kind = TraceKind::LocalityK;
        opt.trace.k = k;
        ModelRunner runner(sys, model, opt);
        auto stats = runner.measure(batch, warmup, measure);
        out.ndpUs = stats.avgLatencyUs;
        out.ndpCacheHitRate = partition ? stats.partitionHitRate
                                        : stats.ssdEmbedCacheHitRate;
    }
    return out;
}

void
panel(const char *title, bool partition)
{
    TablePrinter table(title, {"model", "K", "batch", "base-ssd", "recssd",
                               "speedup", "recssd-hit%", "base-lru-hit%"});
    for (const char *name : {"RM1", "RM2", "RM3"}) {
        const ModelConfig &model = modelByName(name);
        for (double k : {0.0, 1.0, 2.0}) {
            for (unsigned batch : {1u, 4u, 16u, 32u}) {
                auto r = runCell(model, k, batch, partition);
                table.row({name, TablePrinter::fmt(k, 0),
                           std::to_string(batch),
                           TablePrinter::fmtUs(r.baseUs),
                           TablePrinter::fmtUs(r.ndpUs),
                           TablePrinter::fmt(r.baseUs / r.ndpUs) + "x",
                           TablePrinter::fmt(r.ndpCacheHitRate * 100, 0),
                           TablePrinter::fmt(r.baseLruHitRate * 100, 0)});
            }
        }
    }
}

}  // namespace

int
main()
{
    panel("Figure 10(a-c): RecSSD + SSD-side cache vs baseline + host LRU",
          false);
    panel("Figure 10(d-f): RecSSD + static partitioning (+SSD cache) vs "
          "baseline + host LRU",
          true);

    std::printf("\nExpected shape (paper): baseline wins at K=0 (84%% LRU "
                "hits); RecSSD wins at K=2, up to ~1.5x with SSD caching "
                "alone and ~2x with static partitioning; partition hit "
                "rate approaches 25%% (2K of 8K active rows) at high "
                "batch.\n");
    return 0;
}
