/**
 * @file
 * Extension: tail tolerance under injected device faults.
 *
 * The paper's prototype assumes four healthy devices' worth of luck;
 * production embedding stores plan for the opposite. This bench
 * serves RM1 through the batched harness while sweeping the fault
 * scenario (healthy baseline / periodic die stalls / sustained read
 * inflation / a mid-run device dropout), the hedge policy (off /
 * fixed delay / auto quantile-tracking) and the replication factor,
 * and reports the full tail (p50/p95/p99/p999), degraded-answer and
 * deadline-miss counts, and the cost of hedging (fire rate and
 * duplicate-completion waste).
 *
 * Expected shape: without replicas, faults go straight into the tail
 * and the deadline is the only mercy (degraded answers). With 2-way
 * replication, hedging clips the stall- and inflation-induced p99 at
 * a few percent duplicate work, and a dropped device's load fails
 * over with bit-exact answers instead of degraded ones.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/fault/fault_plan.h"
#include "src/reco/serving.h"

using namespace recssd;
using namespace recssd::bench;

namespace
{

constexpr unsigned kDevices = 4;

struct Scenario
{
    const char *name;
    const char *plan;  // empty = healthy
};

const Scenario kScenarios[] = {
    {"none", ""},
    {"stall", "stall@0:at=5ms,dur=20ms,period=50ms,count=200"},
    {"inflate", "inflate@0:at=5ms,dur=10s,factor=4"},
    {"dropout", "dropout@0:at=60ms"},
};

struct HedgeChoice
{
    const char *name;
    HedgeMode mode;
};

const HedgeChoice kHedges[] = {
    {"off", HedgeMode::Off},
    {"fixed", HedgeMode::Fixed},
    {"auto", HedgeMode::Auto},
};

ServeStats
measure(const Scenario &sc, const HedgeChoice &hc, unsigned replication)
{
    SystemConfig cfg;
    cfg.shard.numShards = kDevices;
    cfg.shard.policy = ShardPolicy::RowRange;
    cfg.shard.replication = replication;
    cfg.host.ioQueues = 4;
    cfg.ssd.nvme.numQueues = 4;
    cfg.host.balancedQueueGrants = true;
    if (sc.plan[0] != '\0')
        applyFaultPlan(cfg, FaultPlan::parse(sc.plan));
    System sys(cfg);

    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    // A uniform deadline keeps every configuration live even when a
    // dropped device has no replica to fail over to: those answers
    // arrive degraded rather than never.
    opt.resil.deadline = 50 * msec;
    opt.resil.hedge.mode = hc.mode;
    // Calibrated just above the healthy sub-op p95 (~14ms at this
    // load) so fixed hedges chase stragglers, not the distribution's
    // own body; auto discovers the equivalent point from its quantile.
    opt.resil.hedge.fixedDelay = 15 * msec;
    ModelRunner runner(sys, modelByName("RM1"), opt);

    ServeConfig scfg;
    scfg.arrivals.qps = 20.0;
    scfg.shape.minBatch = 4;
    scfg.shape.maxBatch = 4;
    scfg.batching.maxBatchSamples = 16;
    scfg.batching.maxWait = 500 * usec;
    scfg.batching.maxInFlight = 4;
    scfg.queries = 150;
    scfg.warmupQueries = 15;
    scfg.seed = 42;
    return runServe(runner, scfg);
}

std::uint64_t
totalSubOps(const ServeStats &s)
{
    std::uint64_t n = 0;
    for (const auto &dev : s.perDevice)
        n += dev.subOps;
    return n;
}

}  // namespace

int
main()
{
    TablePrinter table(
        "Extension: tail tolerance, RM1 NDP serve (4 SSDs row-range, "
        "batch 4, 20 qps offered, 50ms deadline)",
        {"fault", "hedge", "repl", "p50", "p95", "p99", "p999",
         "degraded", "ddl-miss", "hedge%", "waste%"});

    for (const Scenario &sc : kScenarios) {
        for (unsigned repl : {1u, 2u}) {
            for (const HedgeChoice &hc : kHedges) {
                // With one copy of every shard there is nothing to
                // hedge to; the policies would produce identical rows.
                if (repl == 1 && hc.mode != HedgeMode::Off)
                    continue;
                ServeStats s = measure(sc, hc, repl);
                std::uint64_t subs = totalSubOps(s);
                double fire =
                    subs ? 100.0 * static_cast<double>(s.hedgesFired) /
                               static_cast<double>(subs)
                         : 0.0;
                double waste =
                    subs ? 100.0 *
                               static_cast<double>(s.duplicateCompletions) /
                               static_cast<double>(subs)
                         : 0.0;
                table.row({sc.name, hc.name, std::to_string(repl),
                           TablePrinter::fmtUs(s.p50Us),
                           TablePrinter::fmtUs(s.p95Us),
                           TablePrinter::fmtUs(s.p99Us),
                           TablePrinter::fmtUs(s.p999Us),
                           std::to_string(s.degradedQueries),
                           std::to_string(s.deadlineMisses),
                           TablePrinter::fmt(fire, 1),
                           TablePrinter::fmt(waste, 1)});
            }
        }
    }

    std::printf("\nShape: with replication 1 there is nowhere to hedge "
                "or fail over — a dropped device means every answer "
                "degrades at the deadline. 2-way replication absorbs "
                "the dropout outright (degraded returns to zero, the "
                "dead device's share fails over), and hedging clips "
                "the die-stall p99 for single-digit-percent duplicate "
                "work — auto tracking the completion quantile beats "
                "the hand-calibrated fixed delay. Sustained read "
                "inflation merely thickens the whole distribution, so "
                "hedges rightly stay quiet there.\n");
    return 0;
}
