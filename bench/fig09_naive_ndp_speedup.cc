/**
 * @file
 * Figure 9: relative speedup of RecSSD over the conventional SSD
 * baseline for full models, in the simplest naive configuration — no
 * operator pipelining, no host/SSD caching, uniformly random input
 * indices (§6.2).
 *
 * Paper shape: MLP-dominated models see no benefit (~1x);
 * embedding-dominated models gain substantially, up to ~7x, with RM2
 * (most tables, most indices per lookup) gaining the most.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "src/reco/model_runner.h"

using namespace recssd;
using namespace recssd::bench;

namespace
{

double
modelLatencyUs(const ModelConfig &model, EmbeddingBackendKind kind,
               unsigned batch)
{
    System sys;
    RunnerOptions opt;
    opt.backend = kind;
    opt.pipeline = false;  // naive: no operator pipelining
    opt.hostLruCache = false;
    opt.staticPartition = false;
    opt.trace.kind = TraceKind::Uniform;
    ModelRunner runner(sys, model, opt);
    return runner.measure(batch, 1, 3).avgLatencyUs;
}

}  // namespace

int
main()
{
    const unsigned batch = 64;
    TablePrinter table(
        "Figure 9: naive RecSSD speedup over baseline SSD, full models "
        "(batch 64, random indices, no pipelining/caching)",
        {"model", "class", "base-ssd", "recssd", "speedup"});

    for (const auto &model : modelZoo()) {
        double base = modelLatencyUs(model,
                                     EmbeddingBackendKind::BaselineSsd,
                                     batch);
        double ndp = modelLatencyUs(model, EmbeddingBackendKind::Ndp,
                                    batch);
        table.row({model.name,
                   model.embeddingDominated ? "embedding" : "mlp",
                   TablePrinter::fmtUs(base), TablePrinter::fmtUs(ndp),
                   TablePrinter::fmt(base / ndp) + "x"});
    }

    std::printf("\nExpected shape (paper): ~1x for MLP-dominated models; "
                "multi-x (up to ~7x) for the embedding-dominated RM1/2/3, "
                "largest for RM2.\n");
    return 0;
}
