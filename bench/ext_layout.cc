/**
 * @file
 * Extension: frequency-aware hot-row layout vs the log-structured
 * default, on the NDP backend.
 *
 * Sweeps trace locality (K=1, K=2 and a Zipf mix) against layout
 * policy and hot-tier size. For each cell the run reports average
 * batch latency, in-SSD page-cache hit rate, hot-row tier hit rate,
 * flash page reads, mean channel utilization over the measured
 * window and the channel imbalance (max/mean busy time).
 *
 * Expected shape: with skewed traces the freq policy concentrates the
 * hot embedding rows in pinned controller DRAM and dense hot flash
 * rows, so the combined DRAM hit rate (hot tier + page cache) rises,
 * flash reads fall, and the surviving flash traffic stays striped
 * (imbalance stays near 1). With `--layout-policy log` nothing changes
 * relative to the seed — locked elsewhere by tests/test_layout_*.cc.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/reco/model_runner.h"

using namespace recssd;
using namespace recssd::bench;

namespace
{

struct TraceCase
{
    const char *name;
    TraceKind kind;
    double k;
    double alpha;
};

struct CellResult
{
    double avgUs = 0.0;
    double pageCacheHitPct = 0.0;
    double hotTierHitPct = 0.0;
    std::uint64_t flashReads = 0;
    double chanUtilPct = 0.0;
    double chanImbalance = 0.0;
};

CellResult
runCell(const ModelConfig &model, const TraceCase &tc, LayoutPolicy policy,
        unsigned hot_tier_pages)
{
    SystemConfig cfg;
    cfg.ssd.ftl.layout.policy = policy;
    cfg.ssd.ftl.layout.hotTierPages = hot_tier_pages;
    System sys(cfg);

    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    opt.pipeline = true;
    opt.trace.kind = tc.kind;
    opt.trace.k = tc.k;
    opt.trace.zipfAlpha = tc.alpha;
    ModelRunner runner(sys, model, opt);

    // Warm long enough for the tracker to classify and migrate the
    // hot set, then measure channel busy-time deltas over the window.
    const unsigned kBatch = 16;
    const unsigned kWarmup = 48;
    const unsigned kMeasure = 12;
    for (unsigned i = 0; i < kWarmup; ++i)
        runner.runBatch(kBatch);

    const FlashParams &fp = sys.ssd(0).flash().params();
    std::vector<Tick> busy0(fp.numChannels);
    for (unsigned c = 0; c < fp.numChannels; ++c)
        busy0[c] = sys.ssd(0).flash().channelBusyTime(c);
    Tick t0 = sys.eq().now();

    auto stats = runner.measure(kBatch, 0, kMeasure);

    Tick window = sys.eq().now() - t0;
    double sum = 0.0;
    double peak = 0.0;
    for (unsigned c = 0; c < fp.numChannels; ++c) {
        double busy = static_cast<double>(
            sys.ssd(0).flash().channelBusyTime(c) - busy0[c]);
        sum += busy;
        peak = std::max(peak, busy);
    }
    double mean = sum / fp.numChannels;

    CellResult out;
    out.avgUs = stats.avgLatencyUs;
    out.pageCacheHitPct = stats.ssdPageCacheHitRate * 100.0;
    out.hotTierHitPct = stats.hotTierHitRate * 100.0;
    out.flashReads = stats.flashPageReads;
    if (window > 0)
        out.chanUtilPct = 100.0 * mean / static_cast<double>(window);
    if (mean > 0.0)
        out.chanImbalance = peak / mean;
    return out;
}

}  // namespace

int
main()
{
    const TraceCase traces[] = {
        {"K=1", TraceKind::LocalityK, 1.0, 1.05},
        {"K=2", TraceKind::LocalityK, 2.0, 1.05},
        {"zipf1.1", TraceKind::Zipf, 0.0, 1.1},
    };
    const unsigned tier_sizes[] = {512, 2048};

    const ModelConfig &model = modelByName("RM1");
    TablePrinter table(
        "Extension: frequency-aware layout vs log-structured placement "
        "(RM1, NDP backend)",
        {"trace", "layout", "hot-tier", "avg-lat", "pc-hit%", "tier-hit%",
         "flash-reads", "chan-util%", "imbalance"});

    for (const TraceCase &tc : traces) {
        auto log = runCell(model, tc, LayoutPolicy::Log, 0);
        table.row({tc.name, "log", "-", TablePrinter::fmtUs(log.avgUs),
                   TablePrinter::fmt(log.pageCacheHitPct, 1), "-",
                   std::to_string(log.flashReads),
                   TablePrinter::fmt(log.chanUtilPct, 1),
                   TablePrinter::fmt(log.chanImbalance, 2)});
        for (unsigned pages : tier_sizes) {
            auto freq = runCell(model, tc, LayoutPolicy::Freq, pages);
            table.row({tc.name, "freq", std::to_string(pages),
                       TablePrinter::fmtUs(freq.avgUs),
                       TablePrinter::fmt(freq.pageCacheHitPct, 1),
                       TablePrinter::fmt(freq.hotTierHitPct, 1),
                       std::to_string(freq.flashReads),
                       TablePrinter::fmt(freq.chanUtilPct, 1),
                       TablePrinter::fmt(freq.chanImbalance, 2)});
        }
    }

    std::printf("\nExpected shape: freq beats log on DRAM service "
                "(tier-hit%% + pc-hit%%), flash reads and latency for "
                "skewed traces — large wins on static skew (zipf, where "
                "pages mature and migrate), smaller ones on recency "
                "traces (K=1/K=2, served by read-time pins alone); "
                "bigger hot tiers help until the hot set fits. Channel "
                "busy-time falls as DRAM absorbs reads, while imbalance "
                "stays near 1 because hot rows stripe round-robin across "
                "channels.\n");
    return 0;
}
