/**
 * @file
 * Table 1: differentiating benchmark parameters of the
 * embedding-dominated models (feature size, indices per lookup,
 * table count) — printed from the model zoo, alongside the derived
 * characteristics of all eight models.
 */

#include "src/core/experiment.h"
#include "src/reco/model_config.h"

using namespace recssd;

int
main()
{
    {
        TablePrinter table("Table 1: differentiating benchmark parameters",
                           {"benchmark", "feature-size", "indices",
                            "table-count"});
        for (const char *name : {"RM1", "RM2", "RM3"}) {
            const ModelConfig &m = modelByName(name);
            table.row({m.name, std::to_string(m.tables[0].dim),
                       std::to_string(m.tables[0].lookups),
                       std::to_string(m.numTables())});
        }
    }

    {
        TablePrinter table(
            "Model zoo (derived characteristics)",
            {"model", "class", "tables", "lookups/sample", "mlp-macs",
             "emb-bytes/sample"});
        for (const auto &m : modelZoo()) {
            std::uint64_t emb_bytes = 0;
            for (const auto &g : m.tables) {
                emb_bytes += std::uint64_t(g.count) * g.lookups * g.dim *
                             g.attrBytes;
            }
            table.row({m.name,
                       m.embeddingDominated ? "embedding" : "mlp",
                       std::to_string(m.numTables()),
                       std::to_string(m.lookupsPerSample()),
                       std::to_string(m.mlpMacsPerSample()),
                       std::to_string(emb_bytes)});
        }
    }
    return 0;
}
