/**
 * @file
 * Figure 6: end-to-end model latency at batch 64 with embedding
 * tables in DRAM vs. on the (conventional) SSD, across the eight
 * benchmark models (§3.3).
 *
 * The SSD configuration is the "highly optimized hybrid DRAM-SSD"
 * deployment of §1/§3.3: small tables stay host resident, large
 * tables go to flash, SLS I/O is pipelined with the dense layers and
 * filtered through the host LRU cache.
 *
 * Paper shape: MLP-dominated models degrade by only ~1.01-1.09x;
 * the embedding-dominated DLRM models degrade by orders of magnitude.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "src/reco/model_runner.h"

using namespace recssd;
using namespace recssd::bench;

namespace
{

double
modelLatencyUs(const ModelConfig &model, EmbeddingBackendKind kind,
               unsigned batch)
{
    System sys;
    RunnerOptions opt;
    opt.backend = kind;
    opt.pipeline = true;
    opt.subBatches = 8;
    opt.hostLruCache = kind == EmbeddingBackendKind::BaselineSsd;
    opt.trace.kind = TraceKind::Uniform;
    ModelRunner runner(sys, model, opt);
    return runner.measure(batch, 2, 5).avgLatencyUs;
}

}  // namespace

int
main()
{
    const unsigned batch = 64;
    TablePrinter table(
        "Figure 6: end-to-end latency, DRAM vs hybrid DRAM-SSD baseline "
        "(batch 64)",
        {"model", "class", "dram", "ssd", "degradation"});

    for (const auto &model : modelZoo()) {
        double dram = modelLatencyUs(model, EmbeddingBackendKind::Dram,
                                     batch);
        double ssd = modelLatencyUs(model,
                                    EmbeddingBackendKind::BaselineSsd,
                                    batch);
        table.row({model.name,
                   model.embeddingDominated ? "embedding" : "mlp",
                   TablePrinter::fmtUs(dram), TablePrinter::fmtUs(ssd),
                   TablePrinter::fmt(ssd / dram) + "x"});
    }

    std::printf("\nExpected shape (paper): WND/MTWND/DIN/NCF ~1.0x, DIEN "
                "~1.1x; DLRM-RMC1/2/3 degrade by orders of magnitude.\n");
    return 0;
}
