/**
 * @file
 * Figure 3: cumulative reuse (hit-count) distribution over embedding
 * table pages at 256B / 1KB / 4KB granularities (§3.1).
 *
 * The paper's input was a production access log (marked not
 * reproducible in its artifact); this bench substitutes a Zipf
 * power-law trace, which reproduces the published shape: reuse
 * concentrated in a small set of hot pages — a few hundred pages
 * capture ~30% of reuses, a few thousand extend past 50% — with the
 * tail slope flattening as pages grow.
 */

#include <cstdio>

#include "src/core/experiment.h"
#include "src/trace/page_reuse.h"
#include "src/trace/trace_gen.h"

using namespace recssd;

int
main()
{
    constexpr std::uint64_t kRows = 1'000'000;
    constexpr std::uint64_t kVectorBytes = 64;
    constexpr std::uint64_t kAccesses = 2'000'000;

    TraceSpec spec;
    spec.kind = TraceKind::Zipf;
    spec.universe = kRows;
    spec.zipfAlpha = 0.85;
    spec.seed = 3;
    TraceGenerator gen(spec);

    std::vector<RowId> rows;
    rows.reserve(kAccesses);
    for (std::uint64_t i = 0; i < kAccesses; ++i)
        rows.push_back(gen.next());

    TablePrinter table(
        "Figure 3: cumulative share of reuse vs hottest pages "
        "(Zipf 0.85 trace, 2M accesses, 64B vectors)",
        {"page-size", "pages-touched", "top-100", "top-1K", "top-10K",
         "top-100K"});

    for (std::uint64_t page : {256ull, 1024ull, 4096ull}) {
        PageReuseAnalyzer analyzer(page, kVectorBytes);
        for (RowId row : rows)
            analyzer.access(row);
        auto pct = [&](std::uint64_t top) {
            return TablePrinter::fmt(
                       analyzer.reuseCapturedByTopPages(top) * 100.0, 1) +
                   "%";
        };
        table.row({std::to_string(page) + "B",
                   std::to_string(analyzer.touchedPages()), pct(100),
                   pct(1'000), pct(10'000), pct(100'000)});
    }

    std::printf("\nExpected shape (paper): power-law concentration — "
                "hundreds of pages capture ~30%% of reuse, thousands "
                ">50%%; larger pages flatten the tail.\n");
    return 0;
}
