/**
 * @file
 * Ablation: garbage-collection interference.
 *
 * The paper evaluates a read-only serving workload; real deployments
 * refresh embedding tables online, and the resulting flash writes
 * eventually trigger garbage collection that competes with SLS reads
 * for dies and firmware cycles. This ablation fills a small drive to
 * its GC watermark, then runs NDP SLS operations while a background
 * writer keeps overwriting a scratch region at increasing rates.
 *
 * Shape: read latency degrades with write pressure; once GC runs,
 * tail operations stall behind multi-millisecond erases and
 * migrations.
 */

#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_common.h"

using namespace recssd;
using namespace recssd::bench;

namespace
{

constexpr Lpn kScratchBase = slsTableAlign;  // table 1's (unused) slot
constexpr Lpn kScratchPages = 3000;

struct Result
{
    double meanUs;
    double maxUs;
    std::uint64_t gcRuns;
    std::uint64_t migrated;
};

/** Overwrite the scratch region until garbage collection engages. */
void
prefill(System &sys)
{
    auto &blocks = sys.ssd().ftl().blocks();
    const unsigned page = sys.driver().pageSize();
    Lpn cursor = 0;
    while (sys.ssd().ftl().gcRuns() == 0 ||
           blocks.freeRows() > sys.config().ssd.ftl.gcHighWatermarkRows) {
        unsigned burst = sys.driver().numQueues();
        auto left = std::make_shared<unsigned>(burst);
        for (unsigned q = 0; q < burst; ++q) {
            auto data = std::make_shared<std::vector<std::byte>>(
                page, std::byte{0x5A});
            sys.driver().writePage(q, kScratchBase + cursor++ %
                                                         kScratchPages,
                                   data, [left]() { --*left; });
        }
        sys.run();
    }
}

Result
run(double write_mbps)
{
    // Small drive (512MB) with small GC rows so collection cadence
    // lands inside the measurement window.
    SystemConfig cfg;
    cfg.ssd.flash.blocksPerDie = 64;
    cfg.ssd.flash.pagesPerBlock = 8;  // small GC rows (256 pages)
    cfg.host.ioQueues = 8;
    System sys(cfg);

    auto table = sys.installTable(4'000, 32);
    prefill(sys);

    TraceSpec spec;
    spec.kind = TraceKind::Uniform;
    spec.universe = table.rows;
    spec.seed = 17;
    TraceGenerator gen(spec);

    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});
    std::uint64_t gc_before = sys.ssd().ftl().gcRuns();
    std::uint64_t mig_before = sys.ssd().ftl().gcPagesMigrated();

    // Background writer chain on one dedicated queue.
    const unsigned page = sys.driver().pageSize();
    const bool write_on = write_mbps > 0.0;
    Tick write_gap =
        write_on ? static_cast<Tick>(double(page) / (write_mbps * 1e6) *
                                     double(sec))
                 : 0;
    auto writing = std::make_shared<bool>(write_on);
    auto wcursor = std::make_shared<Lpn>(0);
    // Open-loop writer: issues at the target rate regardless of
    // completion, queueing behind the I/O allocator under pressure.
    auto writer = std::make_shared<std::function<void()>>();
    *writer = [&sys, writing, wcursor, page, write_gap, writer]() {
        if (!*writing)
            return;
        sys.eq().scheduleAfter(write_gap, [writer]() { (*writer)(); });
        auto data = std::make_shared<std::vector<std::byte>>(
            page, std::byte{0xA5});
        Lpn lpn = kScratchBase + (*wcursor)++ % kScratchPages;
        sys.queues().acquire([&sys, lpn, data](unsigned q) {
            sys.driver().writePage(q, lpn, data,
                                   [&sys, q]() { sys.queues().release(q); });
        });
    };
    if (write_on)
        (*writer)();

    // Foreground: 300 SLS operations back to back.
    SampleStat lat;
    for (int i = 0; i < 300; ++i) {
        SlsOp op;
        op.table = &table;
        op.indices = gen.nextBatch(8, 40);
        Tick t0 = sys.eq().now();
        bool done = false;
        ndp.run(op, [&](SlsResult) { done = true; });
        while (!done && sys.eq().runOne()) {
        }
        lat.record(ticksToUs(sys.eq().now() - t0));
    }
    *writing = false;
    sys.run();  // drain the writer

    return Result{lat.mean(), lat.max(),
                  sys.ssd().ftl().gcRuns() - gc_before,
                  sys.ssd().ftl().gcPagesMigrated() - mig_before};
}

}  // namespace

int
main()
{
    TablePrinter table(
        "Ablation: background table-update writes vs NDP read latency "
        "(256MB drive at its GC watermark)",
        {"write-MB/s", "mean-sls", "max-sls", "gc-runs", "gc-migrated"});

    for (double mbps : {0.0, 10.0, 17.0}) {
        auto r = run(mbps);
        table.row({TablePrinter::fmt(mbps, 0),
                   TablePrinter::fmtUs(r.meanUs),
                   TablePrinter::fmtUs(r.maxUs),
                   std::to_string(r.gcRuns),
                   std::to_string(r.migrated)});
    }

    std::printf("\nShape: once updates push the drive past its watermark, "
                "GC erases/migrations lift the SLS tail latency.\n");
    return 0;
}
