/**
 * @file
 * Ablation: SSD-side embedding cache capacity.
 *
 * §4.2 argues a direct-mapped cache is the right point for the
 * embedded FTL CPU; this sweep shows the capacity/hit-rate trade on
 * RM1 across localities, including the conflict-miss plateau that a
 * direct-mapped organization cannot escape.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "src/reco/model_runner.h"

using namespace recssd;
using namespace recssd::bench;

int
main()
{
    TablePrinter table(
        "Ablation: SSD embedding cache size, RM1, NDP backend (batch 16)",
        {"cache", "K", "latency", "cache-hit%", "flash-reads"});

    for (std::uint64_t mb : {0ull, 8ull, 32ull, 128ull, 512ull}) {
        for (double k : {0.0, 2.0}) {
            SystemConfig cfg;
            cfg.ssd.sls.embeddingCacheBytes = mb * 1024 * 1024;
            System sys(cfg);
            RunnerOptions opt;
            opt.backend = EmbeddingBackendKind::Ndp;
            opt.forceAllTablesOnSsd = true;
            opt.trace.kind = TraceKind::LocalityK;
            opt.trace.k = k;
            ModelRunner runner(sys, modelByName("RM1"), opt);
            auto stats = runner.measure(16, 2, 3);
            table.row({std::to_string(mb) + "MB",
                       TablePrinter::fmt(k, 0),
                       TablePrinter::fmtUs(stats.avgLatencyUs),
                       TablePrinter::fmt(stats.ssdEmbedCacheHitRate * 100,
                                         0),
                       std::to_string(stats.flashPageReads)});
        }
    }

    std::printf("\nShape: capacity helps until the direct-mapped conflict "
                "plateau; low-locality (K=2) traffic caches poorly at any "
                "size.\n");
    return 0;
}
