/**
 * @file
 * Extension: tail latency under batched, multi-queue serving.
 *
 * The at-scale regime the paper could not measure on its prototype:
 * Poisson arrivals feed the coalescing batch scheduler, whose fused
 * batches split between the host-resident partition and the SSD and
 * fan SSD work out across the driver's NVMe queue pairs. The sweep
 * crosses arrival rate x per-query batch size x queue-pair count and
 * reports exact p50/p95/p99 tails, sustained QPS and the fused-batch
 * coalescing factor.
 *
 * Expected shape: more queue pairs push the saturation knee to higher
 * arrival rates (SSD work no longer serializes on one sync queue),
 * and past the knee latency grows without any query being dropped.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "src/fault/fault_plan.h"
#include "src/obs/critical_path.h"
#include "src/reco/serving.h"

using namespace recssd;
using namespace recssd::bench;

namespace
{

ServeStats
measure(double qps, unsigned batch, unsigned queue_pairs)
{
    SystemConfig cfg;
    cfg.ssd.sls.embeddingCacheBytes = 32ull * 1024 * 1024;
    cfg.host.ioQueues = queue_pairs;
    cfg.ssd.nvme.numQueues = queue_pairs;
    cfg.host.balancedQueueGrants = true;
    System sys(cfg);

    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    opt.pipeline = true;
    opt.staticPartition = true;
    opt.trace.kind = TraceKind::LocalityK;
    opt.trace.k = 1.0;
    ModelRunner runner(sys, modelByName("RM1"), opt);

    ServeConfig scfg;
    scfg.arrivals.process = ArrivalProcess::Poisson;
    scfg.arrivals.qps = qps;
    scfg.shape.minBatch = batch;
    scfg.shape.maxBatch = batch;
    scfg.batching.maxBatchSamples = 4 * batch;
    scfg.batching.maxWait = 500 * usec;
    scfg.batching.maxInFlight = 4;
    scfg.queries = 48;
    scfg.warmupQueries = 6;
    scfg.latencySlo = 100 * msec;
    return runServe(runner, scfg);
}

/**
 * Die-stall blame demo: stall one die mid-run, then ask the
 * critical-path blame report which resource the tail waited on. The
 * stalled die's queue ("wait" on flash.ch0.die0) must absorb at least
 * its share of the tail's critical-path time — the report names the
 * culprit directly instead of leaving it to be inferred from p99.
 */
void
blameUnderDieStall()
{
    SystemConfig cfg;
    cfg.ssd.sls.embeddingCacheBytes = 32ull * 1024 * 1024;
    cfg.host.ioQueues = 4;
    cfg.ssd.nvme.numQueues = 4;
    cfg.host.balancedQueueGrants = true;
    // Channel 0 / die 0 spends 3/4 of the run stalled; at this
    // sustainable arrival rate the die — not the scheduler queue — is
    // what the tail waits on, so its row should dominate the report.
    applyFaultPlan(cfg, FaultPlan::parse(
                            "stall@0:at=2ms,dur=30ms,period=40ms,"
                            "count=400,ch=0,die=0"));
    System sys(cfg);
    sys.enableTracing();

    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    opt.pipeline = true;
    opt.trace.kind = TraceKind::LocalityK;
    opt.trace.k = 1.0;
    ModelRunner runner(sys, modelByName("RM1"), opt);

    ServeConfig scfg;
    scfg.arrivals.process = ArrivalProcess::Poisson;
    scfg.arrivals.qps = 5.0;
    scfg.shape.minBatch = 16;
    scfg.shape.maxBatch = 16;
    scfg.batching.maxBatchSamples = 64;
    scfg.batching.maxWait = 500 * usec;
    scfg.batching.maxInFlight = 4;
    scfg.queries = 48;
    scfg.warmupQueries = 6;
    scfg.latencySlo = 100 * msec;
    auto s = runServe(runner, scfg);

    BlameReport blame = computeBlame(sys.tracer());
    double die_tail_us = 0.0;
    double die_tail_frac = 0.0;
    for (const BlameRow &row : blame.rows) {
        if (row.track == "flash.ch0.die0") {
            die_tail_us += row.tailUs;
            die_tail_frac += row.tailFraction;
        }
    }
    std::printf("\nDie-stall blame (stall@ch0.die0, 30ms every 40ms): "
                "p99 %.0fus; tail blames %.1f%% of its critical-path "
                "time on flash.ch0.die0 (%.0fus of %.0fus), "
                "%.1f%% on queueing overall.\n",
                s.p99Us, die_tail_frac * 100, die_tail_us,
                blame.tailTotalUs, blame.tailQueueingFraction * 100);
}

}  // namespace

int
main()
{
    TablePrinter table(
        "Extension: batched multi-queue tail latency, RM1 + RecSSD "
        "(Poisson, K=1, coalesce cap 4x batch)",
        {"qps", "batch", "queues", "p50", "p95", "p99", "qps-out",
         "coalesce", "host%"});

    for (double qps : {25.0, 50.0, 100.0}) {
        for (unsigned batch : {4u, 16u}) {
            for (unsigned queues : {1u, 4u, 8u}) {
                auto s = measure(qps, batch, queues);
                table.row({TablePrinter::fmt(qps, 0),
                           std::to_string(batch), std::to_string(queues),
                           TablePrinter::fmtUs(s.p50Us),
                           TablePrinter::fmtUs(s.p95Us),
                           TablePrinter::fmtUs(s.p99Us),
                           TablePrinter::fmt(s.achievedQps, 1),
                           TablePrinter::fmt(s.avgCoalescedSamples, 1),
                           TablePrinter::fmt(s.hostServedFraction * 100,
                                             0)});
            }
        }
    }

    std::printf("\nShape: added queue pairs move the saturation knee to "
                "higher arrival rates; past it, queueing delay (not "
                "drops) absorbs the overload.\n");

    blameUnderDieStall();
    return 0;
}
