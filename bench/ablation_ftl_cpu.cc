/**
 * @file
 * Ablation: SSD microprocessor speed.
 *
 * §6.1 observes that Translation consumes about half of RecSSD's FTL
 * time on the 1GHz dual-core A9, and anticipates that "faster SSD
 * microprocessors or custom logic" would shrink it. This ablation
 * scales the firmware cost model (config scan + translation) and
 * reports the standalone STR operator latency and its breakdown.
 */

#include <cstdio>

#include "bench/bench_common.h"

using namespace recssd;
using namespace recssd::bench;

int
main()
{
    TablePrinter table(
        "Ablation: FTL CPU speed vs NDP operator latency (STR, batch 64, "
        "80 lookups, dim 32)",
        {"cpu-scale", "ndp-latency", "translate", "flash-read",
         "translate-share"});

    for (double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        SystemConfig cfg;
        cfg.ssd.sls.configBaseCpu =
            static_cast<Tick>(cfg.ssd.sls.configBaseCpu * scale);
        cfg.ssd.sls.configPerIndexCpu =
            static_cast<Tick>(cfg.ssd.sls.configPerIndexCpu * scale);
        cfg.ssd.sls.translateBaseCpu =
            static_cast<Tick>(cfg.ssd.sls.translateBaseCpu * scale);
        cfg.ssd.sls.translatePerByteCpu = static_cast<Tick>(
            std::max(1.0, cfg.ssd.sls.translatePerByteCpu * scale));
        System sys(cfg);

        unsigned dim = 32;
        unsigned rows_per_page =
            sys.config().ssd.flash.pageSize / (dim * 4);
        auto tab = sys.installTable(1'000'000, dim, 4, rows_per_page);

        TraceSpec spec;
        spec.kind = TraceKind::Strided;
        spec.universe = tab.rows;
        spec.stride = rows_per_page;
        spec.seed = 5;
        TraceGenerator gen(spec);

        NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                          NdpSlsBackend::Options{});
        Tick lat = avgOpLatency(sys, ndp, tab, gen, 64, 80, 3);
        const SlsTiming &t = sys.ssd().slsEngine().lastTiming();
        double span = double(t.flashDone - t.configProcessed);
        table.row({TablePrinter::fmt(scale),
                   TablePrinter::fmtUs(ticksToUs(lat)),
                   TablePrinter::fmtUs(ticksToUs(t.translationTime())),
                   TablePrinter::fmtUs(ticksToUs(t.flashReadTime())),
                   TablePrinter::fmt(
                       span > 0 ? 100.0 * double(t.translationTime()) / span
                                : 0.0,
                       0) +
                       "%"});
    }

    std::printf("\nShape: below ~1x the operator is flash-bound (latency "
                "flattens); above it the weak core makes Translation "
                "dominate.\n");
    return 0;
}
