/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 */

#ifndef RECSSD_BENCH_BENCH_COMMON_H
#define RECSSD_BENCH_BENCH_COMMON_H

#include <functional>
#include <memory>

#include "src/core/experiment.h"
#include "src/core/system.h"
#include "src/embedding/baseline_backend.h"
#include "src/embedding/dram_backend.h"
#include "src/embedding/ndp_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/trace/trace_gen.h"

namespace recssd::bench
{

/** Run one SLS op synchronously; @return simulated latency. */
inline Tick
timeOp(System &sys, SlsBackend &backend, const SlsOp &op)
{
    Tick t0 = sys.eq().now();
    bool finished = false;
    backend.run(op, [&](SlsResult) { finished = true; });
    sys.run();
    recssd_assert(finished, "SLS op did not complete");
    return sys.eq().now() - t0;
}

/** Average SLS op latency over `reps` freshly generated batches. */
inline Tick
avgOpLatency(System &sys, SlsBackend &backend,
             const EmbeddingTableDesc &table, TraceGenerator &gen,
             unsigned batch, unsigned lookups, unsigned reps)
{
    Tick total = 0;
    for (unsigned r = 0; r < reps; ++r) {
        SlsOp op;
        op.table = &table;
        op.indices = gen.nextBatch(batch, lookups);
        total += timeOp(sys, backend, op);
    }
    return total / reps;
}

}  // namespace recssd::bench

#endif  // RECSSD_BENCH_BENCH_COMMON_H
