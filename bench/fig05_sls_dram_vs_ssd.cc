/**
 * @file
 * Figure 5: a single SLS embedding operation, DRAM vs. conventional
 * SSD storage, across batch sizes. Table: 1M rows, dim 32, 80 lookups
 * per sample, one vector per 16KB page (§3.2 / §5).
 *
 * Paper shape: SSD roughly three orders of magnitude slower than
 * DRAM (PCIe/software overhead + low random-read bandwidth).
 */

#include <cstdio>

#include "bench/bench_common.h"

using namespace recssd;
using namespace recssd::bench;

int
main()
{
    const unsigned lookups = 80;
    TablePrinter table(
        "Figure 5: SLS operator latency, DRAM vs baseline SSD (1M rows, "
        "dim 32, 80 lookups)",
        {"batch", "dram", "ssd", "slowdown"});

    for (unsigned batch : {8u, 16u, 32u, 64u, 128u, 256u}) {
        System sys;
        auto tab = sys.installTable(1'000'000, 32);

        TraceSpec spec;
        spec.kind = TraceKind::Uniform;
        spec.universe = tab.rows;
        spec.seed = 11;
        TraceGenerator gen(spec);

        DramSlsBackend dram(sys.eq(), sys.cpu());
        BaselineSsdSlsBackend base(sys.eq(), sys.cpu(), sys.driver(),
                                   sys.queues(),
                                   BaselineSsdSlsBackend::Options{});

        Tick dram_t = avgOpLatency(sys, dram, tab, gen, batch, lookups, 3);
        Tick ssd_t = avgOpLatency(sys, base, tab, gen, batch, lookups, 3);

        table.row({std::to_string(batch),
                   TablePrinter::fmtUs(ticksToUs(dram_t)),
                   TablePrinter::fmtUs(ticksToUs(ssd_t)),
                   TablePrinter::fmt(double(ssd_t) / double(dram_t), 0) +
                       "x"});
    }

    std::printf("\nExpected shape (paper): storing the table in the SSD "
                "costs ~3 orders of magnitude in operator latency.\n");
    return 0;
}
