/**
 * @file
 * Extension: multi-tenant QoS isolation — dmClock vs FIFO vs solo.
 *
 * The headline experiment of the QoS subsystem. One victim tenant
 * with a modest, SLO-bound query stream shares an NDP-serving SSD
 * with a bursty antagonist that offers several times the machine's
 * capacity (and, in one scenario, a mixed read-write antagonist whose
 * update stream competes through the same flash dies). Three
 * measurements per scenario:
 *
 *   solo     the victim alone on the machine — its intrinsic tail
 *   fifo     victim + antagonist through the anonymous FIFO admission
 *            baseline: one arrival-ordered queue, shares ignored
 *   dmclock  the same mix under the dmClock scheduler, the victim
 *            holding a reservation floor and the antagonist a limit
 *
 * Expected shape (and the acceptance bar this bench demonstrates):
 * under FIFO the victim's p99 inflates to several times its solo tail
 * — its queries wait behind the antagonist's entire backlog. Under
 * dmclock the reservation phase admits the victim at its floor no
 * matter how deep the antagonist's queue grows, holding its p99
 * within ~1.5x solo while the antagonist (correctly) absorbs the
 * overload as latency. Work conservation keeps total throughput the
 * same under both policies; isolation changes who waits, not how much
 * work gets done.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/qos/tenant_serve.h"

using namespace recssd;
using namespace recssd::bench;

namespace
{

/** Two small packed tables (the update-interference model): fits the
 *  small bench drive and keeps per-query service in the ~ms range so
 *  a few hundred measured queries cover many reservation periods. */
ModelConfig
smallModel()
{
    ModelConfig m;
    m.name = "small";
    m.tables = {TableGroup{2, 40'000, 16, 8, 4, 64}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

constexpr const char *kVictim =
    "victim:model=small,qps=60,batch=2,slo=20ms,res=60,weight=1,"
    "queries=240";

struct Scenario
{
    const char *name;
    /** Antagonist spec ('' = the victim alone). */
    const char *antagonist;
};

const Scenario kScenarios[] = {
    {"solo", ""},
    {"burst",
     "antagonist:model=small,qps=600,arrival=bursty,burst=8,batch=4,"
     "weight=1,limit=120,queries=480"},
    {"burst+rw",
     "antagonist:model=small,qps=600,arrival=bursty,burst=8,batch=4,"
     "weight=1,limit=120,update_rate=2000,update_skew=0.8,queries=480"},
};

TenantServeStats
measure(const Scenario &sc, QosPolicy policy)
{
    SystemConfig cfg;
    cfg.ssd.flash.blocksPerDie = 64;
    cfg.ssd.flash.pagesPerBlock = 8;
    System sys(cfg);

    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    opt.trace.kind = TraceKind::Zipf;

    TenantServeConfig tcfg;
    std::string spec = kVictim;
    if (sc.antagonist[0] != '\0')
        spec += std::string(";") + sc.antagonist;
    tcfg.tenants = TenantSet::parse(spec);
    tcfg.modelResolver = [](const std::string &) { return smallModel(); };
    tcfg.qos.policy = policy;
    tcfg.qos.window = 8;
    tcfg.batching.maxBatchSamples = 16;
    tcfg.batching.maxWait = 500 * usec;
    tcfg.batching.maxInFlight = 4;
    tcfg.warmupQueries = 24;
    tcfg.seed = 42;
    return runServeTenants(sys, opt, tcfg);
}

}  // namespace

int
main()
{
    TablePrinter table(
        "Extension: QoS isolation, victim vs bursty antagonist on one "
        "NDP drive (dmClock: victim res 60/s, antagonist limit 120/s; "
        "window 8)",
        {"scenario", "policy", "vic-p50", "vic-p99", "vic-attain",
         "vic-qps", "res-grants", "ant-p99", "ant-limit-defer",
         "mix-qps"});

    double solo_p99 = 0.0;
    double fifo_p99 = 0.0;
    double dm_p99 = 0.0;
    for (const Scenario &sc : kScenarios) {
        const bool mixed = sc.antagonist[0] != '\0';
        std::vector<QosPolicy> policies;
        if (mixed)
            policies = {QosPolicy::Fifo, QosPolicy::Dmclock};
        else
            policies = {QosPolicy::Dmclock};
        for (QosPolicy policy : policies) {
            TenantServeStats s = measure(sc, policy);
            const auto &v = s.perTenant[0];
            std::string ant_p99 = "-";
            std::string ant_defer = "-";
            if (mixed) {
                const auto &a = s.perTenant[1];
                ant_p99 = TablePrinter::fmtUs(a.p99Us);
                ant_defer = std::to_string(a.qos.limitDeferrals);
            }
            table.row({sc.name, qosPolicyName(policy),
                       TablePrinter::fmtUs(v.p50Us),
                       TablePrinter::fmtUs(v.p99Us),
                       TablePrinter::fmt(v.sloAttainment, 4),
                       TablePrinter::fmt(v.achievedQps, 1),
                       std::to_string(v.qos.reservationGrants), ant_p99,
                       ant_defer, TablePrinter::fmt(s.achievedQps, 1)});
            if (!mixed)
                solo_p99 = v.p99Us;
            else if (std::string(sc.name) == "burst") {
                if (policy == QosPolicy::Fifo)
                    fifo_p99 = v.p99Us;
                else
                    dm_p99 = v.p99Us;
            }
        }
    }

    std::printf(
        "\nvictim p99: solo %.0fus, fifo %.0fus (%.1fx solo), dmclock "
        "%.0fus (%.2fx solo)\n",
        solo_p99, fifo_p99, fifo_p99 / solo_p99, dm_p99,
        dm_p99 / solo_p99);
    recssd_assert(fifo_p99 >= 3.0 * solo_p99,
                  "fifo must starve the victim behind the antagonist "
                  "backlog (got %.1fx solo)", fifo_p99 / solo_p99);
    recssd_assert(dm_p99 <= 1.5 * solo_p99,
                  "dmclock must isolate the victim tail (got %.2fx "
                  "solo)", dm_p99 / solo_p99);

    std::printf(
        "\nShape: FIFO makes the victim's tail the antagonist's queue "
        "— every victim query waits behind whatever burst landed "
        "first, so its p99 tracks the overload, not its own load. "
        "dmClock's reservation phase admits the victim at its 60/s "
        "floor regardless of backlog depth, pinning its tail near "
        "solo; the antagonist's limit tag meanwhile caps how fast it "
        "may drain, so the overload it offered comes back to it as "
        "queueing delay. The mixed read-write scenario shows the same "
        "isolation holding when the antagonist also writes: its "
        "update flushes draw from the same limit budget (aux "
        "charges), so writes cannot launder load past the cap.\n");
    return 0;
}
