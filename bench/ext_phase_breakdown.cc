/**
 * @file
 * Extension: where does a served request spend its time?
 *
 * Reproduces the paper's Fig 6 / Fig 8 latency breakdowns from live
 * traces instead of hand-placed counters: each configuration runs the
 * batched serving harness with the span tracer enabled, then the
 * attribution pass charges every instant of every measured request to
 * the most specific phase active at that instant. The sweep crosses
 * embedding backend (conventional NVMe reads vs RecSSD NDP offload)
 * with access locality (uniform vs K=1 reuse) and prints one summary
 * row per configuration plus the full per-phase table.
 *
 * Expected shape: the baseline's requests split between flash reads
 * and waiting for NVMe queue-pair grants (one read per lookup swamps
 * the queues); the NDP offload eliminates the per-lookup commands, so
 * the queue-wait share collapses and what remains is almost purely
 * flash array time plus a thin layer of in-SSD phases. Locality
 * shrinks the flash share for both.
 *
 * Pass a directory as argv[1] to also drop one attribution JSON per
 * configuration (consumed by scripts/plot_phase_breakdown.py).
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/obs/attribution.h"
#include "src/reco/serving.h"

using namespace recssd;

namespace
{

struct Config
{
    const char *label;
    EmbeddingBackendKind backend;
    TraceKind trace;
    double k;
};

struct Outcome
{
    ServeStats stats;
    AttributionReport report;
};

Outcome
measure(const Config &config)
{
    SystemConfig cfg;
    cfg.ssd.sls.embeddingCacheBytes = 32ull * 1024 * 1024;
    System sys(cfg);
    sys.enableTracing();

    // RM3 (the lightest embedding-dominated DLRM) at a modest arrival
    // rate: the phase *shares* are the result here, and they stabilize
    // with a handful of queries — the baseline backend issues one NVMe
    // read per lookup, so bigger models only add wall-clock.
    RunnerOptions opt;
    opt.backend = config.backend;
    opt.forceAllTablesOnSsd = true;
    opt.trace.kind = config.trace;
    opt.trace.k = config.k;
    ModelRunner runner(sys, modelByName("RM3"), opt);

    ServeConfig scfg;
    scfg.arrivals.process = ArrivalProcess::Poisson;
    scfg.arrivals.qps = 25.0;
    scfg.shape.minBatch = 4;
    scfg.shape.maxBatch = 4;
    scfg.batching.maxBatchSamples = 16;
    scfg.batching.maxWait = 500 * usec;
    scfg.batching.maxInFlight = 4;
    scfg.queries = 12;
    scfg.warmupQueries = 2;
    scfg.latencySlo = 100 * msec;

    Outcome out;
    out.stats = runServe(runner, scfg);
    out.report = attribute(sys.tracer());
    return out;
}

/** Share of request time attributed to `phase`, as a percentage. */
double
share(const AttributionReport &report, Phase phase)
{
    for (const PhaseBreakdownRow &row : report.rows) {
        if (row.phase == phase)
            return row.fraction * 100.0;
    }
    return 0.0;
}

}  // namespace

int
main(int argc, char **argv)
{
    const Config configs[] = {
        {"base-uniform", EmbeddingBackendKind::BaselineSsd,
         TraceKind::Uniform, 0.0},
        {"base-k1", EmbeddingBackendKind::BaselineSsd, TraceKind::LocalityK,
         1.0},
        {"ndp-uniform", EmbeddingBackendKind::Ndp, TraceKind::Uniform, 0.0},
        {"ndp-k1", EmbeddingBackendKind::Ndp, TraceKind::LocalityK, 1.0},
    };

    TablePrinter table(
        "Extension: traced per-phase request-time breakdown, RM3 serving "
        "(Poisson 25qps, batch 4)",
        {"config", "mean-e2e", "p99", "sched%", "queue%", "flash%", "ndp%",
         "host%", "cover%"});

    std::vector<std::pair<std::string, AttributionReport>> reports;
    for (const Config &config : configs) {
        Outcome out = measure(config);
        double ndp_pct = share(out.report, Phase::NdpTranslate) +
                         share(out.report, Phase::NdpConfig) +
                         share(out.report, Phase::FtlCpu);
        double host_pct = share(out.report, Phase::HostCompute);
        table.row({config.label,
                   TablePrinter::fmtUs(out.report.meanRequestUs),
                   TablePrinter::fmtUs(out.stats.p99Us),
                   TablePrinter::fmt(share(out.report, Phase::SchedQueue), 1),
                   TablePrinter::fmt(
                       share(out.report, Phase::HostQueueWait), 1),
                   TablePrinter::fmt(share(out.report, Phase::FlashRead), 1),
                   TablePrinter::fmt(ndp_pct, 1),
                   TablePrinter::fmt(host_pct, 1),
                   TablePrinter::fmt(out.report.coverage * 100, 1)});
        reports.emplace_back(config.label, std::move(out.report));
    }

    std::printf("\nFull per-phase tables (deepest phase first):\n\n");
    for (const auto &[label, report] : reports) {
        std::printf("[%s]\n", label.c_str());
        report.print(std::cout);
        std::printf("\n");
    }

    if (argc > 1) {
        for (const auto &[label, report] : reports) {
            std::string path =
                std::string(argv[1]) + "/phases_" + label + ".json";
            std::ofstream os(path);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n", path.c_str());
                return 1;
            }
            report.writeJson(os);
            std::printf("wrote %s\n", path.c_str());
        }
    }

    std::printf("\nShape: the baseline splits its request time between "
                "flash reads and host-side queue waits (one NVMe read "
                "per lookup); the NDP offload removes the per-lookup "
                "commands, collapsing the queue-wait share to ~0 and "
                "leaving raw flash array time as the bottleneck — the "
                "paper's Fig 6/8 story measured from live spans.\n");
    return 0;
}
