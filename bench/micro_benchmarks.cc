/**
 * @file
 * google-benchmark microbenches for the simulator's hot paths: the
 * event kernel, the caches, trace generation, and the SLS interface
 * encode/decode. These guard the simulator's own performance (the
 * figure benches replay millions of events).
 */

#include <benchmark/benchmark.h>

#include "src/cache/lru_cache.h"
#include "src/cache/set_assoc_lru.h"
#include "src/common/analysis.h"
#include "src/common/event_queue.h"
#include "src/common/random.h"
#include "src/embedding/synthetic_values.h"
#include "src/ndp/embedding_cache.h"
#include "src/ndp/sls_config.h"
#include "src/trace/trace_gen.h"

namespace
{

using namespace recssd;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>(i % 97), [&sink]() {
                RECSSD_CAPTURES_MAPPING("sink outlives eq.run() below");
                ++sink;
            });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_SetAssocLruAccess(benchmark::State &state)
{
    SetAssocLru cache(4096, 16);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(rng.uniformInt(16384)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetAssocLruAccess);

void
BM_LruCachePutGet(benchmark::State &state)
{
    LruCache<std::uint64_t, std::uint64_t> cache(2048);
    Rng rng(1);
    for (auto _ : state) {
        std::uint64_t key = rng.uniformInt(8192);
        if (!cache.get(key))
            cache.put(key, key);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCachePutGet);

void
BM_EmbeddingCacheLookup(benchmark::State &state)
{
    EmbeddingCache cache(32 * 1024 * 1024, 128);
    std::vector<std::byte> vec(128);
    for (std::uint64_t r = 0; r < 10000; ++r)
        cache.insert(0, r, vec);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache.lookup(0, rng.uniformInt(20000), vec));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmbeddingCacheLookup);

void
BM_SlsConfigRoundTrip(benchmark::State &state)
{
    SlsConfig cfg;
    cfg.featureDim = 32;
    cfg.numResults = 64;
    for (std::uint32_t i = 0; i < 5120; ++i)
        cfg.pairs.push_back(SlsPair{i * 7, i % 64});
    std::sort(cfg.pairs.begin(), cfg.pairs.end(),
              [](auto &a, auto &b) { return a.inputId < b.inputId; });
    for (auto _ : state) {
        auto bytes = cfg.serialize();
        SlsConfig out;
        bool ok = SlsConfig::deserialize(bytes, out);
        benchmark::DoNotOptimize(ok);
    }
    state.SetItemsProcessed(state.iterations() * cfg.pairs.size());
}
BENCHMARK(BM_SlsConfigRoundTrip);

void
BM_ZipfSample(benchmark::State &state)
{
    ZipfSampler zipf(1'000'000, 1.05);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void
BM_LocalityTraceNext(benchmark::State &state)
{
    TraceSpec spec;
    spec.kind = TraceKind::LocalityK;
    spec.k = 1.0;
    TraceGenerator gen(spec);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalityTraceNext);

void
BM_SyntheticVectorFill(benchmark::State &state)
{
    EmbeddingTableDesc desc;
    desc.id = 3;
    desc.rows = 1'000'000;
    desc.dim = 64;
    std::vector<std::byte> out(desc.vectorBytes());
    Rng rng(1);
    for (auto _ : state)
        synthetic::fillVector(desc, rng.uniformInt(desc.rows), out);
    state.SetItemsProcessed(state.iterations() * desc.dim);
}
BENCHMARK(BM_SyntheticVectorFill);

}  // namespace
