/**
 * @file
 * Extension: online update interference in mixed read-write serving.
 *
 * `ablation_gc_interference` showed the raw mechanism: background
 * writes push a full drive into garbage collection and SLS reads
 * stall behind erases. This bench closes the loop end to end through
 * the serve harness: the first-class online-update stream (seeded
 * per-row delta writes, batched through the UpdateFlusher) competes
 * with query traffic for NVMe queues, firmware CPU and flash dies on
 * a small drive prefilled to its GC watermark. The sweep crosses the
 * read/write mix (rw-ratio: reads as a fraction of all row
 * operations) with the fault scenario (healthy vs periodic die
 * stalls) and reports the read tail, the sustained update
 * throughput, write amplification, GC activity and read-after-write
 * fence redirects.
 *
 * Expected shape: p99 read latency climbs as the write share grows —
 * first from firmware-CPU and queue contention, then in steps when
 * GC erases land in the read path. Write amplification rises above
 * 1.0 once GC migrates live pages. Die stalls compound both. Fence
 * redirects stay rare but nonzero: they count SLS gathers that raced
 * an update's page relocation and were re-pointed at the live
 * mapping instead of summing a torn page.
 */

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/fault/fault_plan.h"
#include "src/reco/serving.h"

using namespace recssd;
using namespace recssd::bench;

namespace
{

/** Scratch region used only to fill the drive (beyond table slots). */
constexpr Lpn kScratchBase = 8 * slsTableAlign;
constexpr Lpn kScratchPages = 3000;

struct Scenario
{
    const char *name;
    const char *plan;  // empty = healthy
};

const Scenario kScenarios[] = {
    {"none", ""},
    {"stall", "stall@0:at=5ms,dur=10ms,period=40ms,count=200"},
};

/** Two tiny tables, packed 64 vectors/page so the working set fits a
 *  256MB drive — packed rows also make every update a read-modify-
 *  write of its page, the interesting write-path case. */
ModelConfig
smallModel()
{
    ModelConfig m;
    m.name = "small";
    m.tables = {TableGroup{2, 40'000, 16, 8, 4, 64}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

/**
 * Overwrite the scratch region until garbage collection engages.
 * Random (not cyclic) overwrites scatter the surviving pages across
 * rows, so post-prefill GC victims carry live pages and collection
 * has real migration work — the WA > 1 regime. Steps the event queue
 * only as far as the writes themselves: injected fault events stay
 * pending for the serve phase instead of being drained here.
 */
void
prefill(System &sys)
{
    auto &blocks = sys.ssd().ftl().blocks();
    const unsigned page = sys.driver().pageSize();
    Rng rng(7);
    while (sys.ssd().ftl().gcRuns() == 0 ||
           blocks.freeRows() > sys.config().ssd.ftl.gcHighWatermarkRows) {
        unsigned burst = sys.driver().numQueues();
        auto left = std::make_shared<unsigned>(burst);
        for (unsigned q = 0; q < burst; ++q) {
            auto data = std::make_shared<std::vector<std::byte>>(
                page, std::byte{0x5A});
            Lpn lpn = kScratchBase + rng.uniformInt(kScratchPages);
            sys.driver().writePage(q, lpn, data, [left]() { --*left; });
        }
        while (*left > 0 && sys.eq().runOne()) {
        }
    }
}

ServeStats
measure(const Scenario &sc, double rw_ratio)
{
    // Small drive (256MB) with small GC rows so collection cadence
    // lands inside the measurement window (same as the GC ablation).
    SystemConfig cfg;
    cfg.ssd.flash.blocksPerDie = 64;
    cfg.ssd.flash.pagesPerBlock = 8;
    cfg.host.ioQueues = 8;
    cfg.ssd.nvme.numQueues = 8;
    cfg.host.balancedQueueGrants = true;
    if (sc.plan[0] != '\0')
        applyFaultPlan(cfg, FaultPlan::parse(sc.plan));
    System sys(cfg);

    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    // Zipf reads: the hot rows queries gather are the hot rows the
    // update stream rewrites, so gathers race in-flight page writes.
    opt.trace.kind = TraceKind::Zipf;
    ModelConfig model = smallModel();
    ModelRunner runner(sys, model, opt);
    prefill(sys);

    ServeConfig scfg;
    scfg.arrivals.qps = 40.0;
    scfg.shape.minBatch = 4;
    scfg.shape.maxBatch = 4;
    scfg.batching.maxBatchSamples = 16;
    scfg.batching.maxWait = 500 * usec;
    scfg.batching.maxInFlight = 4;
    scfg.queries = 120;
    scfg.warmupQueries = 12;
    scfg.seed = 42;
    if (rw_ratio < 1.0) {
        // Reads arrive at qps x batch x lookups/sample; pick the
        // update rate that makes reads fraction rw_ratio of all row
        // operations.
        double reads_per_sec = scfg.arrivals.qps * scfg.shape.minBatch *
                               model.lookupsPerSample();
        scfg.updates.rate =
            reads_per_sec * (1.0 - rw_ratio) / rw_ratio;
        scfg.updates.skew = 0.8;
    }
    return runServe(runner, scfg);
}

}  // namespace

int
main()
{
    TablePrinter table(
        "Extension: update interference, mixed RW NDP serve "
        "(256MB drive at its GC watermark, batch 4, 40 qps offered, "
        "zipf-0.8 updates)",
        {"fault", "rw-ratio", "upd/s", "p50-read", "p99-read", "flush-p99",
         "WA", "gc-runs", "erases", "fence-redir"});

    for (const Scenario &sc : kScenarios) {
        for (double rw : {1.0, 0.95, 0.8, 0.5}) {
            ServeStats s = measure(sc, rw);
            const auto &u = s.update;
            // Sustained update throughput over the measured wall time
            // (achievedQps measures queries over the same clock).
            double wall_s = s.achievedQps > 0.0
                                ? s.completedQueries / s.achievedQps
                                : 0.0;
            double upd_per_s =
                wall_s > 0.0 ? static_cast<double>(u.applied) / wall_s
                             : 0.0;
            table.row({sc.name, TablePrinter::fmt(rw, 2),
                       TablePrinter::fmt(upd_per_s, 0),
                       TablePrinter::fmtUs(s.p50Us),
                       TablePrinter::fmtUs(s.p99Us),
                       TablePrinter::fmtUs(u.p99FlushUs),
                       TablePrinter::fmt(u.writeAmplification, 2),
                       std::to_string(u.gcRuns),
                       std::to_string(u.blockErases),
                       std::to_string(u.fenceRedirects)});
        }
    }

    std::printf(
        "\nShape: growing the write share lifts the read tail — queue "
        "and firmware-CPU contention first, then GC erases once the "
        "update stream pushes the full drive over its watermark (WA "
        "rises above 1.0 as GC migrates live pages). Die stalls "
        "compound both. Nonzero fence redirects are gathers that "
        "raced a relocation and were re-pointed at the live mapping "
        "— the old-or-new guarantee at work. The one counterintuitive "
        "column: mixed rows can beat the read-only p50, because every "
        "update program lands its page in the SSD page cache, "
        "prewarming exactly the hot pages the zipf reads gather.\n");
    return 0;
}
