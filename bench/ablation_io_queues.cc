/**
 * @file
 * Ablation: driver I/O queue count.
 *
 * The baseline's sync-per-queue structure caps its outstanding reads
 * at the queue count, which is what leaves the SSD's internal
 * parallelism idle (§4, §6.1). RecSSD needs only one queue per
 * in-flight operation. Sweeping the queue count quantifies how much
 * of RecSSD's win is recoverable by host-side parallelism alone.
 */

#include <cstdio>

#include "bench/bench_common.h"

using namespace recssd;
using namespace recssd::bench;

int
main()
{
    TablePrinter table(
        "Ablation: I/O queues vs baseline/NDP operator latency (STR, "
        "batch 64, 80 lookups, dim 32, 1 vector/page)",
        {"io-queues", "base-ssd", "recssd", "speedup"});

    for (unsigned queues : {1u, 2u, 4u, 8u, 16u}) {
        Tick lat[2] = {0, 0};
        for (int pass = 0; pass < 2; ++pass) {
            SystemConfig cfg;
            cfg.host.ioQueues = queues;
            cfg.ssd.nvme.numQueues = std::max(queues, 8u);
            System sys(cfg);
            auto tab = sys.installTable(1'000'000, 32);
            TraceSpec spec;
            spec.kind = TraceKind::Strided;
            spec.universe = tab.rows;
            spec.stride = 1;
            spec.seed = 5;
            TraceGenerator gen(spec);
            if (pass == 0) {
                BaselineSsdSlsBackend base(
                    sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                    BaselineSsdSlsBackend::Options{});
                lat[0] = avgOpLatency(sys, base, tab, gen, 64, 80, 2);
            } else {
                NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(),
                                  sys.queues(), NdpSlsBackend::Options{});
                lat[1] = avgOpLatency(sys, ndp, tab, gen, 64, 80, 2);
            }
        }
        table.row({std::to_string(queues),
                   TablePrinter::fmtUs(ticksToUs(lat[0])),
                   TablePrinter::fmtUs(ticksToUs(lat[1])),
                   TablePrinter::fmt(double(lat[0]) / double(lat[1])) +
                       "x"});
    }

    std::printf("\nShape: the baseline scales with queues until the FTL "
                "command handling saturates; RecSSD is insensitive.\n");
    return 0;
}
