/**
 * @file
 * Figure 8: standalone SLS operator performance — conventional SSD
 * vs. RecSSD NDP, sequential (SEQ) vs. strided (STR) access patterns,
 * over a range of batch sizes; with the NDP time broken into Config
 * Write / Config Process / Translation / Flash Read / Result Read as
 * measured inside the FTL.
 *
 * Paper shape: STR — NDP up to ~4x faster (internal parallelism,
 * fewer commands); SEQ — NDP slightly *slower* (the weak ARM core
 * does all the accumulation that the host CPU would have done);
 * Translation accounts for roughly half of NDP's FTL time.
 */

#include <cstdio>

#include "bench/bench_common.h"

using namespace recssd;
using namespace recssd::bench;

namespace
{

struct PatternResult
{
    Tick base;
    Tick ndp;
    SlsTiming timing;
};

PatternResult
runPattern(TraceKind kind, unsigned batch, unsigned lookups)
{
    PatternResult out{};
    // Fresh system per cell so caches/backlogs never leak across
    // configurations.
    for (int pass = 0; pass < 2; ++pass) {
        System sys;
        // Microbenchmark layout: vectors packed into pages so SEQ and
        // STR differ (dim 32 -> 128 vectors per 16KB page).
        unsigned dim = 32;
        unsigned rows_per_page =
            sys.config().ssd.flash.pageSize / (dim * 4);
        auto table = sys.installTable(1'000'000, dim, 4, rows_per_page);

        TraceSpec spec;
        spec.kind = kind;
        spec.universe = table.rows;
        spec.stride = rows_per_page;  // STR: one vector per page
        spec.seed = 7;
        TraceGenerator gen(spec);

        if (pass == 0) {
            BaselineSsdSlsBackend base(sys.eq(), sys.cpu(), sys.driver(),
                                       sys.queues(),
                                       BaselineSsdSlsBackend::Options{});
            out.base = avgOpLatency(sys, base, table, gen, batch, lookups,
                                    3);
        } else {
            NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(),
                              sys.queues(), NdpSlsBackend::Options{});
            out.ndp = avgOpLatency(sys, ndp, table, gen, batch, lookups, 3);
            out.timing = sys.ssd().slsEngine().lastTiming();
        }
    }
    return out;
}

}  // namespace

int
main()
{
    const unsigned lookups = 80;
    TablePrinter table(
        "Figure 8: SLS operator, baseline SSD vs RecSSD NDP (80 lookups, "
        "dim 32)",
        {"pattern", "batch", "base", "ndp", "speedup", "cfg-write",
         "cfg-proc", "translate", "flash-read", "result-rd"});

    for (TraceKind kind : {TraceKind::Sequential, TraceKind::Strided}) {
        const char *name = kind == TraceKind::Sequential ? "SEQ" : "STR";
        for (unsigned batch : {1u, 4u, 8u, 16u, 32u, 64u}) {
            auto res = runPattern(kind, batch, lookups);
            const SlsTiming &t = res.timing;
            table.row({name, std::to_string(batch),
                       TablePrinter::fmtUs(ticksToUs(res.base)),
                       TablePrinter::fmtUs(ticksToUs(res.ndp)),
                       TablePrinter::fmt(double(res.base) /
                                         double(res.ndp)),
                       TablePrinter::fmtUs(ticksToUs(t.configWriteTime())),
                       TablePrinter::fmtUs(ticksToUs(t.configProcessTime())),
                       TablePrinter::fmtUs(ticksToUs(t.translationTime())),
                       TablePrinter::fmtUs(ticksToUs(t.flashReadTime())),
                       TablePrinter::fmtUs(ticksToUs(t.resultReadTime()))});
        }
    }

    std::printf("\nExpected shape (paper): STR speedup up to ~4x at large "
                "batch; SEQ speedup < 1 (host CPU aggregates faster than "
                "the SSD's ARM core); Translation ~= half of NDP FTL "
                "time on STR.\n");
    return 0;
}
