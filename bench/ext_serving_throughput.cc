/**
 * @file
 * Extension: latency-bounded throughput.
 *
 * §5 notes the single-model/single-SSD prototype kept the paper from
 * reporting latency-bounded throughput. The simulator has no such
 * limit: this bench drives RM1 open loop (Poisson arrivals) across a
 * QPS sweep and reports tail latencies and SLO attainment for the
 * hybrid baseline and for RecSSD with static partitioning.
 *
 * Expected shape: RecSSD sustains a several-fold higher arrival rate
 * at a given tail-latency target because each query occupies the
 * device for less time.
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "src/reco/serving.h"

using namespace recssd;
using namespace recssd::bench;

namespace
{

ServingStats
measure(EmbeddingBackendKind kind, double qps)
{
    SystemConfig cfg;
    if (kind == EmbeddingBackendKind::Ndp)
        cfg.ssd.sls.embeddingCacheBytes = 32ull * 1024 * 1024;
    System sys(cfg);
    RunnerOptions opt;
    opt.backend = kind;
    opt.forceAllTablesOnSsd = true;
    opt.pipeline = true;
    opt.hostLruCache = kind == EmbeddingBackendKind::BaselineSsd;
    opt.staticPartition = kind == EmbeddingBackendKind::Ndp;
    opt.trace.kind = TraceKind::LocalityK;
    opt.trace.k = 1.0;
    ModelRunner runner(sys, modelByName("RM1"), opt);

    ServingConfig scfg;
    scfg.qps = qps;
    scfg.queries = 80;
    scfg.warmupQueries = 10;
    scfg.batchSize = 8;
    scfg.latencySlo = 100 * msec;
    return runOpenLoop(runner, scfg);
}

}  // namespace

int
main()
{
    TablePrinter table(
        "Extension: open-loop serving, RM1 (batch 8, K=1, SLO 100ms)",
        {"backend", "offered-qps", "p50", "p95", "p99", "slo-met%",
         "achieved-qps"});

    for (double qps : {5.0, 10.0, 20.0, 40.0, 80.0}) {
        for (auto kind : {EmbeddingBackendKind::BaselineSsd,
                          EmbeddingBackendKind::Ndp}) {
            auto s = measure(kind, qps);
            table.row({kind == EmbeddingBackendKind::Ndp ? "recssd"
                                                         : "ssd-base",
                       TablePrinter::fmt(qps, 0),
                       TablePrinter::fmtUs(s.p50Us),
                       TablePrinter::fmtUs(s.p95Us),
                       TablePrinter::fmtUs(s.p99Us),
                       TablePrinter::fmt(s.sloAttainment * 100, 0),
                       TablePrinter::fmt(s.achievedQps, 1)});
        }
    }

    std::printf("\nShape: the baseline saturates (queueing collapse, SLO "
                "misses) at a fraction of the arrival rate RecSSD "
                "sustains.\n");
    return 0;
}
