/**
 * @file
 * Figure 11: sensitivity of RecSSD's full-model speedup to model
 * architecture parameters, on an RM3-like model (§6.4).
 *
 *  (a) Feature size (and quantization): larger vectors relative to
 *      the page size shrink RecSSD's advantage — the baseline wastes
 *      less of each block transfer while RecSSD's ARM core does more
 *      Translation work per page.
 *  (b) Table count and indices per lookup: more tables amortize the
 *      per-table NDP command overhead less (slight loss); more
 *      indices per lookup amortize it more and increase the value of
 *      on-SSD accumulation (clear gain).
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "src/reco/model_runner.h"

using namespace recssd;
using namespace recssd::bench;

namespace
{

ModelConfig
rm3Like(unsigned tables, unsigned dim, unsigned lookups,
        unsigned attr_bytes)
{
    ModelConfig m = modelByName("RM3");
    m.name = "RM3-like";
    m.tables = {TableGroup{tables, 1'000'000, dim, lookups, attr_bytes}};
    return m;
}

double
speedup(const ModelConfig &model, unsigned batch)
{
    double lat[2];
    for (int pass = 0; pass < 2; ++pass) {
        // The 40-table sweep point needs >512GB of logical space;
        // give the drive 2TB like the Cosmos+ board.
        SystemConfig cfg;
        cfg.ssd.flash.blocksPerDie = 16384;
        System sys(cfg);
        RunnerOptions opt;
        opt.backend = pass == 0 ? EmbeddingBackendKind::BaselineSsd
                                : EmbeddingBackendKind::Ndp;
        opt.pipeline = false;
        opt.forceAllTablesOnSsd = true;
        opt.trace.kind = TraceKind::Uniform;
        ModelRunner runner(sys, model, opt);
        lat[pass] = runner.measure(batch, 1, 2).avgLatencyUs;
    }
    return lat[0] / lat[1];
}

}  // namespace

int
main()
{
    const unsigned batch = 64;

    {
        TablePrinter table(
            "Figure 11a: speedup vs feature size / quantization "
            "(RM3-like, 10 tables, 20 lookups)",
            {"feature-dim", "attr-bytes", "vector-bytes", "speedup"});
        for (unsigned dim : {8u, 16u, 32u, 64u, 128u}) {
            auto m = rm3Like(10, dim, 20, 4);
            table.row({std::to_string(dim), "4",
                       std::to_string(dim * 4),
                       TablePrinter::fmt(speedup(m, batch)) + "x"});
        }
        for (unsigned attr : {2u, 1u}) {
            auto m = rm3Like(10, 32, 20, attr);
            table.row({"32", std::to_string(attr),
                       std::to_string(32 * attr),
                       TablePrinter::fmt(speedup(m, batch)) + "x"});
        }
    }

    {
        // Table-count sweep at a fixed total gather budget (200
        // indices/sample split across the tables): more tables means
        // less work per NDP call, so the per-call command overheads
        // amortize worse (§6.4).
        TablePrinter table(
            "Figure 11b: speedup vs table count and indices per lookup "
            "(RM3-like, dim 32, batch 8)",
            {"tables", "indices", "speedup"});
        const std::pair<unsigned, unsigned> splits[] = {
            {2, 100}, {5, 40}, {10, 20}, {20, 10}, {40, 5}};
        for (auto [tables, indices] : splits) {
            auto m = rm3Like(tables, 32, indices, 4);
            table.row({std::to_string(tables), std::to_string(indices),
                       TablePrinter::fmt(speedup(m, 8)) + "x"});
        }
        for (unsigned indices : {5u, 20u, 40u, 80u, 120u}) {
            auto m = rm3Like(10, 32, indices, 4);
            table.row({"10", std::to_string(indices),
                       TablePrinter::fmt(speedup(m, 8)) + "x"});
        }
    }

    std::printf("\nExpected shape (paper): speedup decreases as vector "
                "bytes grow; decreases mildly with table count; increases "
                "with indices per lookup.\n");
    return 0;
}
