/**
 * @file
 * The SLS configuration payload of the RecSSD NVMe interface (§4.3).
 *
 * A config-write command carries: embedding vector dimensions
 * (attribute size and vector length), the table layout, the number of
 * result embeddings, and a list of (input ID, result ID) pairs sorted
 * by input ID — the sort is required so the weak device CPU can group
 * work by flash page in one scan.
 */

#ifndef RECSSD_NDP_SLS_CONFIG_H
#define RECSSD_NDP_SLS_CONFIG_H

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.h"

namespace recssd
{

/** One gather: accumulate table row `inputId` into result `resultId`. */
struct SlsPair
{
    std::uint32_t inputId;
    std::uint32_t resultId;

    bool operator==(const SlsPair &) const = default;
};

struct SlsConfig
{
    /** Elements per embedding vector. */
    std::uint32_t featureDim = 0;
    /** Bytes per element (4 = fp32; 1/2 model quantized tables). */
    std::uint32_t attrBytes = 4;
    /** Vectors packed per flash page (1 for the paper's evaluation). */
    std::uint32_t rowsPerPage = 1;
    /** Number of result embeddings to return. */
    std::uint32_t numResults = 0;
    /** Gather list, sorted by inputId. */
    std::vector<SlsPair> pairs;

    /** Bytes of one embedding vector. */
    std::uint32_t vectorBytes() const { return featureDim * attrBytes; }

    /** Serialized size of this configuration. */
    std::size_t wireBytes() const { return 24 + pairs.size() * 8; }

    /** True when dimensions are sane and the pair list is sorted. */
    bool valid() const;

    /** Encode to the NVMe write payload layout. */
    std::vector<std::byte> serialize() const;

    /**
     * Decode from a payload.
     * @retval false on malformed input (bad magic, truncated list,
     *         unsorted pairs, zero dimensions).
     */
    static bool deserialize(std::span<const std::byte> data, SlsConfig &out);

    bool operator==(const SlsConfig &) const = default;
};

}  // namespace recssd

#endif  // RECSSD_NDP_SLS_CONFIG_H
