#include "src/ndp/embedding_cache.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace recssd
{

EmbeddingCache::EmbeddingCache(std::uint64_t capacity_bytes,
                               std::uint32_t vector_bytes)
    : vectorBytes_(vector_bytes)
{
    recssd_assert(vector_bytes > 0, "embedding cache needs a vector size");
    slots_ = std::max<std::uint64_t>(1, capacity_bytes / vector_bytes);
    tags_.assign(slots_, kNoKey);
    values_.assign(slots_ * vectorBytes_, std::byte{0});
}

bool
EmbeddingCache::lookup(std::uint64_t table_base, RowId row,
                       std::span<std::byte> out)
{
    recssd_assert(out.size() <= vectorBytes_,
                  "lookup larger than cache slot");
    std::uint64_t key = keyOf(table_base, row);
    std::uint64_t slot = slotOf(key);
    if (tags_[slot] != key) {
        misses_.inc();
        return false;
    }
    std::memcpy(out.data(), values_.data() + slot * vectorBytes_,
                out.size());
    hits_.inc();
    return true;
}

void
EmbeddingCache::insert(std::uint64_t table_base, RowId row,
                       std::span<const std::byte> value)
{
    recssd_assert(value.size() <= vectorBytes_,
                  "insert larger than cache slot");
    std::uint64_t key = keyOf(table_base, row);
    std::uint64_t slot = slotOf(key);
    tags_[slot] = key;
    std::memcpy(values_.data() + slot * vectorBytes_, value.data(),
                value.size());
}

void
EmbeddingCache::invalidate(std::uint64_t table_base, RowId row)
{
    std::uint64_t key = keyOf(table_base, row);
    std::uint64_t slot = slotOf(key);
    if (tags_[slot] == key)
        tags_[slot] = kNoKey;
}

void
EmbeddingCache::clear()
{
    std::ranges::fill(tags_, kNoKey);
}

}  // namespace recssd
