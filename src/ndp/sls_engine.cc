#include "src/ndp/sls_engine.h"

#include <algorithm>
#include <cstring>

#include "src/common/audit.h"
#include "src/common/logging.h"
#include "src/ndp/attr_codec.h"
#include "src/obs/tracer.h"
#include "src/obs/utilization.h"

namespace recssd
{

SlsEngine::SlsEngine(EventQueue &eq, const SlsEngineParams &params, Ftl &ftl,
                     const std::string &track_prefix)
    : eq_(eq), params_(params), ftl_(ftl),
      trackName_(track_prefix + "ndp.engine"), audit_(auditEnabled())
{
    if (params_.embeddingCacheBytes > 0) {
        cache_ = std::make_unique<EmbeddingCache>(
            params_.embeddingCacheBytes, params_.embeddingCacheVectorBytes);
        // Keep the cache coherent with in-place embedding updates:
        // a host write to a table page drops every vector cached
        // from it.
        ftl_.setWriteObserver([this](Lpn lpn) {
            std::uint64_t base = lpn - lpn % slsTableAlign;
            auto it = tableLayout_.find(base);
            if (it == tableLayout_.end())
                return;  // never served from this table; nothing cached
            std::uint64_t page = lpn - base;
            for (std::uint32_t slot = 0; slot < it->second; ++slot)
                cache_->invalidate(base, page * it->second + slot);
        });
    }
}

Lpn
SlsEngine::lpnOf(const Entry &entry, RowId row) const
{
    return entry.tableBase + row / entry.cfg.rowsPerPage;
}

std::uint32_t
SlsEngine::pageOffsetOf(const Entry &entry, RowId row) const
{
    return static_cast<std::uint32_t>(row % entry.cfg.rowsPerPage) *
           entry.cfg.vectorBytes();
}

void
SlsEngine::configWrite(const NvmeCommand &cmd, std::function<void()> done)
{
    if (entries_.size() >= params_.maxEntries) {
        // Request buffer full: hold the command until an entry frees.
        waiting_.emplace_back(cmd, std::move(done));
        return;
    }
    admit(cmd, std::move(done));
}

void
SlsEngine::admit(const NvmeCommand &cmd, std::function<void()> done)
{
    requests_.inc();
    auto addr = SlsAddress::decode(cmd.slba);
    auto entry = std::make_shared<Entry>();
    entry->key = cmd.slba;
    entry->tableBase = addr.tableBase;
    entry->traceId = cmd.traceId;
    // The controller stamps the command when the doorbell rings; the
    // payload DMA has completed by the time we are dispatched.
    entry->timing.submitted = cmd.submitTick ? cmd.submitTick : eq_.now();
    entry->timing.configArrived = eq_.now();

    bool ok = SlsConfig::deserialize(*cmd.payload, entry->cfg);
    recssd_assert(ok, "malformed SLS config payload");
    tableLayout_[entry->tableBase] = entry->cfg.rowsPerPage;
    entry->results.assign(
        std::size_t(entry->cfg.numResults) * entry->cfg.featureDim, 0.0f);

    recssd_assert(!entries_.contains(entry->key),
                  "duplicate in-flight SLS request id");
    entries_.emplace(entry->key, entry);
    rrOrder_.push_back(entry->key);

    // The config write completes as soon as the entry is allocated;
    // processing continues asynchronously (Fig 7).
    done();
    processConfig(entry);
}

void
SlsEngine::processConfig(const EntryPtr &entry)
{
    const SlsConfig &cfg = entry->cfg;
    Tick scan_cost = params_.configBaseCpu +
                     params_.configPerIndexCpu * cfg.pairs.size();
    SpanId scan_span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        scan_span = tracer->begin(tracer->track(trackName_),
                                  "config_scan", Phase::NdpConfig,
                                  entry->traceId);
    }
    // The engine's utilization view: its work rides the firmware
    // core, so the wait/service split comes from that core's backlog
    // at enqueue time.
    Tick scan_enq = eq_.now();
    Tick scan_start = std::max(scan_enq, ftl_.cpu().freeAt());
    ftl_.cpu().acquire(scan_cost, [this, entry, scan_span, scan_enq,
                                   scan_start]() {
        if (UtilizationCollector *util = eq_.util())
            util->record(trackName_, scan_enq, scan_start, eq_.now());
        if (Tracer *tracer = tracerOf(eq_))
            tracer->end(scan_span);
        const SlsConfig &cfg = entry->cfg;
        std::vector<std::byte> vec_buf(cfg.vectorBytes());
        std::uint64_t cache_hits = 0;

        // One scan over the (sorted) pair list: group by flash page,
        // diverting embedding-cache hits to the fast path (step 2a).
        PageWork current;
        current.lpn = invalidLpn;
        for (std::uint32_t i = 0; i < cfg.pairs.size(); ++i) {
            const SlsPair &pair = cfg.pairs[i];
            if (cache_ && cache_->lookup(entry->tableBase, pair.inputId,
                                         vec_buf)) {
                float *res = entry->results.data() +
                             std::size_t(pair.resultId) * cfg.featureDim;
                for (std::uint32_t e = 0; e < cfg.featureDim; ++e)
                    res[e] += decodeAttr(vec_buf, e, cfg.attrBytes);
                ++cache_hits;
                continue;
            }
            Lpn lpn = lpnOf(*entry, pair.inputId);
            if (lpn != current.lpn) {
                if (current.lpn != invalidLpn)
                    entry->pages.push_back(std::move(current));
                current = PageWork{lpn, {}};
            }
            current.pairIdx.push_back(i);
        }
        if (current.lpn != invalidLpn)
            entry->pages.push_back(std::move(current));

        entry->pagesOutstanding =
            static_cast<std::uint32_t>(entry->pages.size());

        auto finish = [this, entry]() {
            entry->configured = true;
            entry->timing.configProcessed = eq_.now();
            if (entry->pagesOutstanding == 0) {
                entry->timing.flashDone = eq_.now();
                maybeComplete(entry);
            } else {
                pump();
            }
        };

        if (cache_hits > 0) {
            ftl_.cpu().acquire(params_.cacheHitAccumCpu * cache_hits,
                               std::move(finish));
        } else {
            finish();
        }
    });
}

void
SlsEngine::pump()
{
    // Feed individual page requests from the in-flight SLS entries
    // into the flash queues, round-robin for fairness (§4.1 "Issuing
    // individual Flash requests").
    std::size_t entries_with_work = rrOrder_.size();
    while (outstandingFlash_ < params_.maxOutstandingFlash &&
           entries_with_work > 0) {
        std::uint64_t key = rrOrder_.front();
        rrOrder_.pop_front();
        rrOrder_.push_back(key);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            // Entry completed and was deallocated; drop it from the
            // rotation.
            rrOrder_.pop_back();
            entries_with_work = rrOrder_.size();
            continue;
        }
        EntryPtr entry = it->second;
        if (!entry->configured || entry->nextPage >= entry->pages.size()) {
            --entries_with_work;
            continue;
        }
        entries_with_work = rrOrder_.size();

        PageWork work = entry->pages[entry->nextPage++];
        // Snapshot the page's remap epoch at PPN-resolution time. All
        // three resolution paths below (hot tier, page cache, flash
        // read) defer the functional gather to a later firmware-core
        // grant; the consume-time check in translate() re-resolves the
        // mapping if it moved in between.
        work.epoch = ftl_.writeEpochOf(work.lpn);
        if (LayoutManager *layout = ftl_.layout()) {
            // NDP SLS page touches feed the same frequency tracker as
            // host reads — embedding gathers are what make rows hot.
            // The gather coalesces every row wanted from this page
            // into one flash read, so weight the access by row count.
            layout->onAccess(
                work.lpn,
                static_cast<std::uint32_t>(work.pairIdx.size()));
            Ppn pinned;
            if (layout->tier().lookup(work.lpn, pinned)) {
                // Served from the hot-row DRAM tier; counted apart
                // from page-cache hits (disjoint accounting).
                hotTierHits_.inc();
                PageView view(ftl_.flash().store(), pinned);
                translate(entry, std::move(work), &view);
                continue;
            }
        }
        Ppn cached;
        if (ftl_.cacheLookup(work.lpn, cached)) {
            // Step 3b: the page already sits in the FTL page cache;
            // process it directly without a flash access. A hot page
            // gets its tier pin here for free, same as on a flash
            // read.
            pageCacheHits_.inc();
            if (LayoutManager *layout = ftl_.layout()) {
                if (layout->isHot(work.lpn))
                    layout->pinFromRead(work.lpn, cached);
            }
            PageView view(ftl_.flash().store(), cached);
            translate(entry, std::move(work), &view);
            continue;
        }
        Ppn ppn = ftl_.translate(work.lpn);
        recssd_assert(ppn != invalidPpn,
                      "SLS request touches an unmapped page");
        ++outstandingFlash_;
        flashPages_.inc();
        ftl_.readPhysical(
            ppn,
            [this, entry, ppn, work = std::move(work)](
                const PageView &view) mutable {
                --outstandingFlash_;
                if (LayoutManager *layout = ftl_.layout()) {
                    // Free DRAM pin for a hot page: its bytes are in
                    // the controller buffer at read-DMA completion.
                    // Re-check the mapping — a write or GC move while
                    // the read was in flight makes this PPN stale.
                    if (layout->isHot(work.lpn) &&
                        ftl_.translate(work.lpn) == ppn)
                        layout->pinFromRead(work.lpn, ppn);
                }
                translate(entry, std::move(work), &view);
                pump();
            },
            entry->traceId);
    }
}

void
SlsEngine::translate(const EntryPtr &entry, PageWork work,
                     const PageView *view)
{
    const SlsConfig &cfg = entry->cfg;
    std::uint64_t gathered =
        std::uint64_t(work.pairIdx.size()) * cfg.vectorBytes();
    Tick cost = params_.translateBaseCpu +
                params_.translatePerByteCpu * gathered;
    entry->timing.translateBusy += cost;

    // Functional extract + reduce happens when the firmware core gets
    // to it; capture the page identity now (the view is only valid
    // for the duration of this callback, so re-create it from the
    // store + PPN which stay stable).
    PageView page = *view;
    SpanId xlate_span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        xlate_span = tracer->begin(tracer->track(trackName_), "translate",
                                   Phase::NdpTranslate, entry->traceId);
    }
    Tick xlate_enq = eq_.now();
    Tick xlate_start = std::max(xlate_enq, ftl_.cpu().freeAt());
    ftl_.cpu().acquire(cost, [this, entry, work = std::move(work), page,
                              xlate_span, xlate_enq, xlate_start]() mutable {
        if (UtilizationCollector *util = eq_.util())
            util->record(trackName_, xlate_enq, xlate_start, eq_.now());
        if (Tracer *tracer = tracerOf(eq_))
            tracer->end(xlate_span);
        if (!params_.disableWriteFence &&
            ftl_.writeEpochOf(work.lpn) != work.epoch) {
            // Read-after-write fence: the logical page was remapped
            // (host rewrite, trim, GC or migration move) between PPN
            // resolution and this consume. The stale PPN's bytes may
            // already be erased; re-point the view at the live mapping
            // so the gather sums the old-or-new row, never a torn one.
            // Content at a fixed PPN only ever changes via block erase
            // (writes go to fresh PPNs), so the re-resolved view is
            // consistent.
            fenceRedirects_.inc();
            page = PageView(ftl_.flash().store(), ftl_.translate(work.lpn));
        }
        if (audit_) {
            // Torn-sum invariant: consuming a PPN that is no longer
            // the live mapping is only sound while its bytes are
            // intact (the gather then sums the valid *old* row). If
            // the stale page's content is gone (GC erased its block)
            // the sum would be zeros — neither old nor new.
            Ppn live = ftl_.translate(work.lpn);
            recssd_assert(
                page.ppn() == live || live == invalidPpn ||
                    ftl_.flash().store().covered(page.ppn()),
                "torn SLS gather: LPN %llu consumed erased PPN %llu "
                "(live mapping %llu)",
                static_cast<unsigned long long>(work.lpn),
                static_cast<unsigned long long>(page.ppn()),
                static_cast<unsigned long long>(live));
        }
        const SlsConfig &cfg = entry->cfg;
        std::vector<std::byte> vec_buf(cfg.vectorBytes());
        for (std::uint32_t idx : work.pairIdx) {
            const SlsPair &pair = cfg.pairs[idx];
            page.copyOut(pageOffsetOf(*entry, pair.inputId), vec_buf);
            float *res = entry->results.data() +
                         std::size_t(pair.resultId) * cfg.featureDim;
            for (std::uint32_t e = 0; e < cfg.featureDim; ++e)
                res[e] += decodeAttr(vec_buf, e, cfg.attrBytes);
            if (cache_)
                cache_->insert(entry->tableBase, pair.inputId, vec_buf);
        }
        recssd_assert(entry->pagesOutstanding > 0,
                      "translation without outstanding pages");
        if (--entry->pagesOutstanding == 0 &&
            entry->nextPage >= entry->pages.size()) {
            entry->timing.flashDone = eq_.now();
            maybeComplete(entry);
        }
    });
}

std::shared_ptr<std::vector<std::byte>>
SlsEngine::packResults(const Entry &entry)
{
    const SlsConfig &cfg = entry.cfg;
    std::size_t raw = std::size_t(cfg.numResults) * cfg.featureDim * 4;
    // Results are packed into whole logical blocks (§4: "packing
    // useful data together into returned logical blocks").
    std::size_t page = ftl_.flash().params().pageSize;
    std::size_t padded = (raw + page - 1) / page * page;
    auto bytes = std::make_shared<std::vector<std::byte>>(padded,
                                                          std::byte{0});
    std::memcpy(bytes->data(), entry.results.data(), raw);
    return bytes;
}

void
SlsEngine::maybeComplete(const EntryPtr &entry)
{
    if (!entry->configured || entry->pagesOutstanding != 0 ||
        entry->nextPage < entry->pages.size()) {
        return;
    }
    if (!entry->readDone)
        return;  // waiting for the host's result-read command

    auto done = std::move(entry->readDone);
    entry->readDone = nullptr;
    auto bytes = packResults(*entry);

    entry->timing.resultSent = eq_.now();
    lastTiming_ = entry->timing;
    entries_.erase(entry->key);

    // Admit a waiting config now that a buffer entry freed up.
    if (!waiting_.empty()) {
        auto [cmd, cb] = std::move(waiting_.front());
        waiting_.pop_front();
        admit(cmd, std::move(cb));
    }

    done(bytes);
}

void
SlsEngine::resultRead(
    const NvmeCommand &cmd,
    std::function<void(std::shared_ptr<std::vector<std::byte>>)> done)
{
    auto it = entries_.find(cmd.slba);
    recssd_assert(it != entries_.end(),
                  "result read for unknown SLS request id");
    EntryPtr entry = it->second;
    recssd_assert(!entry->readDone,
                  "duplicate result read for SLS request");
    entry->readDone = std::move(done);
    maybeComplete(entry);
}

}  // namespace recssd
