#include "src/ndp/sls_config.h"

#include <cstring>

namespace recssd
{

namespace
{

constexpr std::uint32_t kMagic = 0x524c5353;  // "SSLR"

void
putU32(std::vector<std::byte> &buf, std::uint32_t v)
{
    const auto *p = reinterpret_cast<const std::byte *>(&v);
    buf.insert(buf.end(), p, p + 4);
}

bool
getU32(std::span<const std::byte> data, std::size_t &off, std::uint32_t &v)
{
    if (off + 4 > data.size())
        return false;
    std::memcpy(&v, data.data() + off, 4);
    off += 4;
    return true;
}

}  // namespace

bool
SlsConfig::valid() const
{
    if (featureDim == 0 || numResults == 0 || pairs.empty())
        return false;
    if (attrBytes != 1 && attrBytes != 2 && attrBytes != 4)
        return false;
    if (rowsPerPage == 0)
        return false;
    std::uint32_t prev = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        if (i > 0 && pairs[i].inputId < prev)
            return false;
        prev = pairs[i].inputId;
        if (pairs[i].resultId >= numResults)
            return false;
    }
    return true;
}

std::vector<std::byte>
SlsConfig::serialize() const
{
    std::vector<std::byte> buf;
    buf.reserve(wireBytes());
    putU32(buf, kMagic);
    putU32(buf, featureDim);
    putU32(buf, attrBytes);
    putU32(buf, rowsPerPage);
    putU32(buf, numResults);
    putU32(buf, static_cast<std::uint32_t>(pairs.size()));
    for (const auto &pair : pairs) {
        putU32(buf, pair.inputId);
        putU32(buf, pair.resultId);
    }
    return buf;
}

bool
SlsConfig::deserialize(std::span<const std::byte> data, SlsConfig &out)
{
    std::size_t off = 0;
    std::uint32_t magic = 0;
    std::uint32_t count = 0;
    if (!getU32(data, off, magic) || magic != kMagic)
        return false;
    if (!getU32(data, off, out.featureDim) ||
        !getU32(data, off, out.attrBytes) ||
        !getU32(data, off, out.rowsPerPage) ||
        !getU32(data, off, out.numResults) || !getU32(data, off, count)) {
        return false;
    }
    // The count must be consistent with the payload length before any
    // allocation happens (defends against corrupt/hostile configs).
    if (count > (data.size() - off) / 8)
        return false;
    out.pairs.resize(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        if (!getU32(data, off, out.pairs[i].inputId) ||
            !getU32(data, off, out.pairs[i].resultId)) {
            return false;
        }
    }
    return out.valid();
}

}  // namespace recssd
