/**
 * @file
 * The SSD-side embedding cache (§4.2, "SSD-side DRAM Caching").
 *
 * The FTL runs on a weak embedded CPU with no dynamic allocation, so
 * the paper implements a *direct-mapped* cache of individual embedding
 * vectors in controller DRAM: maintaining (pseudo-)LRU metadata on
 * every access would not be worth the hit-rate gain. A hit during the
 * config scan skips the flash page read entirely (Fig 7, step 2a).
 */

#ifndef RECSSD_NDP_EMBEDDING_CACHE_H
#define RECSSD_NDP_EMBEDDING_CACHE_H

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"

namespace recssd
{

class EmbeddingCache
{
  public:
    /**
     * @param capacity_bytes DRAM budget for cached vectors.
     * @param vector_bytes Size of one cached vector (all tables in a
     *        deployment share the slot size; the paper sizes it for
     *        the largest feature dimension).
     */
    EmbeddingCache(std::uint64_t capacity_bytes, std::uint32_t vector_bytes);

    /** Number of vector slots. */
    std::uint64_t slots() const { return slots_; }

    /**
     * Direct-mapped probe for (table_base, row).
     * @param[out] out Receives the cached vector bytes on a hit.
     */
    bool lookup(std::uint64_t table_base, RowId row,
                std::span<std::byte> out);

    /** Fill the (single) slot this row maps to, evicting its tenant. */
    void insert(std::uint64_t table_base, RowId row,
                std::span<const std::byte> value);

    /** Drop one row's entry if cached (row updated in place). */
    void invalidate(std::uint64_t table_base, RowId row);

    /** Drop every entry (table rewritten). */
    void clear();

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    double
    hitRate() const
    {
        std::uint64_t total = hits() + misses();
        return total ? static_cast<double>(hits()) / total : 0.0;
    }

    void
    resetStats()
    {
        hits_.reset();
        misses_.reset();
    }

  private:
    static constexpr std::uint64_t kNoKey = ~std::uint64_t(0);

    std::uint64_t keyOf(std::uint64_t table_base, RowId row) const
    {
        // Table bases are slsTableAlign-aligned and rows are far
        // smaller, so base+row is collision free.
        return table_base + row;
    }

    std::uint64_t slotOf(std::uint64_t key) const
    {
        return (key * 0x9e3779b97f4a7c15ull >> 13) % slots_;
    }

    std::uint32_t vectorBytes_;
    std::uint64_t slots_;
    std::vector<std::uint64_t> tags_;
    std::vector<std::byte> values_;

    Counter hits_;
    Counter misses_;
};

}  // namespace recssd

#endif  // RECSSD_NDP_EMBEDDING_CACHE_H
