/**
 * @file
 * The RecSSD NDP SLS engine — the paper's core contribution (§4).
 *
 * Lives inside the FTL firmware. A config-write NVMe command allocates
 * an entry in the pending-SLS-request buffer; the firmware core scans
 * the (input, result) pair list, groups it by flash page, takes the
 * embedding-cache fast path where possible, and feeds the remaining
 * page reads into the flash array in round-robin order across all
 * in-flight SLS entries (the added scheduling layer of §4.1). Each
 * completed page read triggers the Translation step on the firmware
 * core: extract the needed vectors from the 16KB page and accumulate
 * them into the entry's result scratchpad. A result-read NVMe command
 * returns the packed result pages once everything has landed.
 */

#ifndef RECSSD_NDP_SLS_ENGINE_H
#define RECSSD_NDP_SLS_ENGINE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/event_queue.h"
#include "src/common/stats.h"
#include "src/ftl/ftl.h"
#include "src/ndp/embedding_cache.h"
#include "src/ndp/sls_config.h"
#include "src/nvme/host_controller.h"

namespace recssd
{

struct SlsEngineParams
{
    /** Fixed firmware cost to set up one SLS request entry. */
    Tick configBaseCpu = 10 * usec;
    /** Firmware cost per (input, result) pair during the config scan. */
    Tick configPerIndexCpu = 350 * nsec;
    /** Fixed Translation cost per processed flash page. */
    Tick translateBaseCpu = 2200 * nsec;
    /** Translation cost per gathered byte (extract + accumulate). */
    Tick translatePerByteCpu = 40 * nsec;  // on the 1GHz A9
    /** Firmware cost to accumulate one embedding-cache hit. */
    Tick cacheHitAccumCpu = 300 * nsec;

    /** Pending-SLS-request buffer entries (§4.1 "Data-structures"). */
    unsigned maxEntries = 16;
    /** Page reads the scheduling layer keeps in flight at once. */
    unsigned maxOutstandingFlash = 64;

    /** SSD-side embedding cache budget; 0 disables the cache. */
    std::uint64_t embeddingCacheBytes = 0;
    /** Slot size of the embedding cache. */
    std::uint32_t embeddingCacheVectorBytes = 256;

    /**
     * Test-only hook: disable the consume-time remap fence so the
     * torn-sum RECSSD_AUDIT invariant and the no-torn-sum property
     * test can prove they catch the bug the fence prevents. Never set
     * outside tests.
     */
    bool disableWriteFence = false;
};

/** Per-request FTL-side time breakdown, as reported in Fig 8. */
struct SlsTiming
{
    Tick submitted = 0;        ///< config write accepted by controller
    Tick configArrived = 0;    ///< config DMA complete (step 1a done)
    Tick configProcessed = 0;  ///< status structures populated (step 2)
    Tick flashDone = 0;        ///< last page translated (steps 3-5)
    Tick resultSent = 0;       ///< result DMA complete (step 6)
    Tick translateBusy = 0;    ///< firmware core time spent translating

    Tick configWriteTime() const { return configArrived - submitted; }
    Tick configProcessTime() const { return configProcessed - configArrived; }
    Tick translationTime() const { return translateBusy; }
    Tick
    flashReadTime() const
    {
        Tick span = flashDone - configProcessed;
        return span > translateBusy ? span - translateBusy : 0;
    }
    Tick resultReadTime() const { return resultSent - flashDone; }
};

class SlsEngine : public SlsHandler
{
  public:
    /** `track_prefix` namespaces the engine's trace track (multi-SSD
     *  systems pass "ssd<d>." so device spans stay separable). */
    SlsEngine(EventQueue &eq, const SlsEngineParams &params, Ftl &ftl,
              const std::string &track_prefix = "");

    /** @{ SlsHandler (called by the NVMe host controller). */
    void configWrite(const NvmeCommand &cmd,
                     std::function<void()> done) override;
    void resultRead(const NvmeCommand &cmd,
                    std::function<void(
                        std::shared_ptr<std::vector<std::byte>>)>
                        done) override;
    /** @} */

    /** Time breakdown of the most recently completed request. */
    const SlsTiming &lastTiming() const { return lastTiming_; }

    /** The optional SSD-side embedding cache (null when disabled). */
    EmbeddingCache *embeddingCache() { return cache_.get(); }

    const SlsEngineParams &params() const { return params_; }

    /** @{ Stats. */
    std::uint64_t requests() const { return requests_.value(); }
    std::uint64_t flashPagesRead() const { return flashPages_.value(); }
    std::uint64_t pageCacheHits() const { return pageCacheHits_.value(); }
    /** SLS pages served from the hot-row DRAM tier (freq layout). */
    std::uint64_t hotTierHits() const { return hotTierHits_.value(); }
    /**
     * Gathers whose deferred translation was re-pointed at the live
     * mapping because the page was remapped (host rewrite, trim, GC or
     * migration move) after its PPN was resolved — the read-after-
     * write fence engaging.
     */
    std::uint64_t fenceRedirects() const { return fenceRedirects_.value(); }
    std::uint64_t embedCacheHits() const
    {
        return cache_ ? cache_->hits() : 0;
    }
    /** @} */

  private:
    /** Work for one flash page: which pairs gather from it. */
    struct PageWork
    {
        Lpn lpn;
        std::vector<std::uint32_t> pairIdx;
        /** The page's FTL remap epoch when its PPN was resolved; a
         *  mismatch at consume time means the mapping moved and the
         *  captured PPN may hold erased bytes (see translate). */
        std::uint64_t epoch = 0;
    };

    /** One pending-SLS-request buffer entry (Fig 7, red structures). */
    struct Entry
    {
        std::uint64_t key;        ///< tableBase + requestId
        std::uint64_t tableBase;
        std::uint64_t traceId = 0;  ///< owning trace request (0 = none)
        SlsConfig cfg;            ///< element 1: input config
        /* element 2: status */
        bool configured = false;
        std::uint32_t pagesOutstanding = 0;
        /* element 3: pending flash page requests */
        std::vector<PageWork> pages;
        std::size_t nextPage = 0;
        /* element 4: pending host page request */
        std::function<void(std::shared_ptr<std::vector<std::byte>>)>
            readDone;
        /* element 5: result scratchpad */
        std::vector<float> results;

        SlsTiming timing;
    };

    using EntryPtr = std::shared_ptr<Entry>;

    /** Admit a config into the request buffer (or the wait queue). */
    void admit(const NvmeCommand &cmd, std::function<void()> done);

    /** Config scan on the firmware core (step 2). */
    void processConfig(const EntryPtr &entry);

    /** Round-robin page issue across in-flight entries (step 3a). */
    void pump();

    /** Translation for one completed page (steps 4-5). */
    void translate(const EntryPtr &entry, PageWork work,
                   const PageView *view);

    /** Mark done, satisfy a waiting result read (step 6). */
    void maybeComplete(const EntryPtr &entry);

    /** Pack the scratchpad into page-aligned result bytes. */
    std::shared_ptr<std::vector<std::byte>> packResults(const Entry &entry);

    Lpn lpnOf(const Entry &entry, RowId row) const;
    std::uint32_t pageOffsetOf(const Entry &entry, RowId row) const;

    EventQueue &eq_;
    SlsEngineParams params_;
    Ftl &ftl_;
    std::unique_ptr<EmbeddingCache> cache_;

    /** Table layout learned from configs (tableBase -> rowsPerPage),
     *  used to map host writes back to cached rows. */
    std::unordered_map<std::uint64_t, std::uint32_t> tableLayout_;

    std::unordered_map<std::uint64_t, EntryPtr> entries_;
    std::deque<std::uint64_t> rrOrder_;  ///< round-robin issue order
    std::deque<std::pair<NvmeCommand, std::function<void()>>> waiting_;
    unsigned outstandingFlash_ = 0;

    std::string trackName_;
    SlsTiming lastTiming_;
    bool audit_;  ///< RECSSD_AUDIT cached at construction

    Counter requests_;
    Counter flashPages_;
    Counter pageCacheHits_;
    Counter hotTierHits_;
    Counter fenceRedirects_;
};

}  // namespace recssd

#endif  // RECSSD_NDP_SLS_ENGINE_H
