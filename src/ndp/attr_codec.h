/**
 * @file
 * Encoding of embedding elements at different attribute sizes.
 *
 * The SLS interface supports quantized tables (attribute size 1 or 2
 * bytes) in addition to fp32. Quantized codes decode to their integer
 * value; accumulation always happens in fp32, on the device and on the
 * host alike, so results are comparable bit for bit across backends.
 */

#ifndef RECSSD_NDP_ATTR_CODEC_H
#define RECSSD_NDP_ATTR_CODEC_H

#include <cstdint>
#include <cstring>
#include <span>

#include "src/common/logging.h"

namespace recssd
{

/** Decode one element at byte position `idx * attr_bytes`. */
inline float
decodeAttr(std::span<const std::byte> raw, std::uint32_t idx,
           std::uint32_t attr_bytes)
{
    switch (attr_bytes) {
      case 4: {
        float v;
        std::memcpy(&v, raw.data() + std::size_t(idx) * 4, 4);
        return v;
      }
      case 2: {
        std::uint16_t v;
        std::memcpy(&v, raw.data() + std::size_t(idx) * 2, 2);
        return static_cast<float>(v);
      }
      case 1: {
        std::uint8_t v;
        std::memcpy(&v, raw.data() + idx, 1);
        return static_cast<float>(v);
      }
      default:
        panic("unsupported attribute size %u", attr_bytes);
    }
}

/** Encode one element at byte position `idx * attr_bytes`. */
inline void
encodeAttr(std::span<std::byte> raw, std::uint32_t idx,
           std::uint32_t attr_bytes, float value)
{
    switch (attr_bytes) {
      case 4: {
        std::memcpy(raw.data() + std::size_t(idx) * 4, &value, 4);
        return;
      }
      case 2: {
        auto v = static_cast<std::uint16_t>(value);
        std::memcpy(raw.data() + std::size_t(idx) * 2, &v, 2);
        return;
      }
      case 1: {
        auto v = static_cast<std::uint8_t>(value);
        std::memcpy(raw.data() + idx, &v, 1);
        return;
      }
      default:
        panic("unsupported attribute size %u", attr_bytes);
    }
}

}  // namespace recssd

#endif  // RECSSD_NDP_ATTR_CODEC_H
