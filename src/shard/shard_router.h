/**
 * @file
 * Embedding-table sharding across multiple SSD devices.
 *
 * The paper's prototype is one Cosmos+ drive, but its target
 * deployment stores terabytes of embedding tables that must span many
 * devices (§1, Fig 1). The `ShardRouter` owns that partitioning: every
 * installed table is cut into per-device slices under one of two
 * policies, and every SLS operation is split into per-shard sub-ops
 * whose partial sums the host gathers (see sharded_backend.h).
 *
 * Policies:
 *  - `TableHash`: each table lives wholly on `hash(table id) % N`.
 *    No per-op fan-out or gather; capacity balances across tables and
 *    a query's tables spread over devices statistically.
 *  - `RowRange`: each table's rows split into N contiguous balanced
 *    ranges, one per device. Every op fans out to all devices holding
 *    touched rows; per-op device parallelism at the cost of a host
 *    gather and N× the command overhead.
 *
 * With one shard both policies degenerate to the single-SSD seed
 * layout bit-for-bit: slice 0 is the global table.
 */

#ifndef RECSSD_SHARD_SHARD_ROUTER_H
#define RECSSD_SHARD_SHARD_ROUTER_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/embedding/sls_backend.h"

namespace recssd
{

enum class ShardPolicy
{
    TableHash,  ///< whole tables hashed onto devices
    RowRange,   ///< contiguous balanced row ranges, one per device
};

/** Human-readable policy name ("hash" / "range"). */
const char *shardPolicyName(ShardPolicy policy);

struct ShardConfig
{
    /** Independent SSD devices (1 = the seed single-device system). */
    unsigned numShards = 1;
    ShardPolicy policy = ShardPolicy::TableHash;
    /**
     * R-way replication: every slice additionally lives on the R-1
     * devices following its primary (mod N). 1 = no replication (the
     * seed layout, bit-for-bit). Clamped to numShards.
     */
    unsigned replication = 1;
};

/** A replica copy of a slice on another device. */
struct ReplicaSlice
{
    unsigned shard = 0;
    /** Same rows/rowBase as the primary; its own baseLpn. */
    EmbeddingTableDesc desc;
};

/** One shard's slice of a table. */
struct ShardSlice
{
    unsigned shard = 0;
    /** Global row id of the slice's local row 0 (== desc.rowBase). */
    RowId firstRow = 0;
    /**
     * Shard-local descriptor: same table id/dim/layout, its own
     * baseLpn inside the owning device, `rows` = slice length.
     */
    EmbeddingTableDesc desc;
    /** Replica copies, in replica order (empty at replication=1). */
    std::vector<ReplicaSlice> replicas;
};

/** A table's full placement across the shard set. */
struct ShardedTable
{
    EmbeddingTableDesc global;
    /** Slices in shard order; only shards holding >= 1 row appear. */
    std::vector<ShardSlice> slices;

    /** The shard degenerate/empty ops are routed to. */
    unsigned homeShard() const { return slices.front().shard; }
};

class ShardRouter
{
  public:
    explicit ShardRouter(const ShardConfig &config);

    unsigned numShards() const { return config_.numShards; }
    ShardPolicy policy() const { return config_.policy; }
    /** Effective replication factor (config clamped to numShards). */
    unsigned replication() const
    {
        return std::max(1u, std::min(config_.replication,
                                     config_.numShards));
    }

    /**
     * Partition a fresh table. `alloc_base` is called once per slice,
     * in shard order, and must return the slice's baseLpn on that
     * device (the caller owns per-device slot allocation and the FTL
     * installs).
     */
    const ShardedTable &
    addTable(const EmbeddingTableDesc &global,
             const std::function<Lpn(unsigned shard)> &alloc_base);

    /** Placement of an installed table. */
    const ShardedTable &tableOf(std::uint32_t table_id) const;
    bool knows(std::uint32_t table_id) const
    {
        return tables_.count(table_id) != 0;
    }

    /** Owning shard of a whole table under TableHash. */
    unsigned shardOfTable(std::uint32_t table_id) const;

    /** Owning shard of one global row of an installed table. */
    unsigned shardOf(const EmbeddingTableDesc &global, RowId row) const;

    /**
     * Scatter one operation (global rows) into per-shard sub-ops with
     * shard-local rows. Bags keep their batch positions — a slice's
     * partial result has the full batch x dim layout — so gathering is
     * a plain elementwise sum. Slices with zero lookups are omitted;
     * an entirely empty op yields an empty vector (route it to
     * `homeShard()`).
     */
    struct OpSlice
    {
        unsigned shard = 0;
        const EmbeddingTableDesc *desc = nullptr;
        /** Owning table slice (for replica descriptors); stable. */
        const ShardSlice *slice = nullptr;
        std::vector<std::vector<RowId>> indices;
        std::size_t lookups = 0;
    };
    std::vector<OpSlice> split(const SlsOp &op) const;

    /**
     * Write targets of one global-row update: the owning primary slice
     * first, then every replica copy in replica order. Each target
     * names the device and the slice-local descriptor/row to rewrite —
     * converging all of them is what keeps replicated serving
     * bit-exact through failover after an online update.
     */
    struct UpdateTarget
    {
        unsigned shard = 0;
        const EmbeddingTableDesc *desc = nullptr;
        RowId localRow = 0;
        bool replica = false;
    };
    std::vector<UpdateTarget> updateTargets(std::uint32_t table_id,
                                            RowId row) const;

  private:
    ShardConfig config_;
    /** node-stable: OpSlice::desc points into mapped ShardedTables. */
    std::unordered_map<std::uint32_t, ShardedTable> tables_;
};

}  // namespace recssd

#endif  // RECSSD_SHARD_SHARD_ROUTER_H
