#include "src/shard/sharded_backend.h"

#include "src/common/logging.h"
#include "src/obs/tracer.h"

namespace recssd
{

namespace
{

/** Barrier state of one scattered operation. */
struct GatherState
{
    std::uint64_t traceId = 0;
    std::uint32_t dim = 0;
    SlsResult result;
    unsigned left = 0;
    unsigned partials = 0;
    SlsBackend::Done done;
};

}  // namespace

ShardedSlsBackend::ShardedSlsBackend(EventQueue &eq, HostCpu &cpu,
                                     ShardRouter &router,
                                     std::vector<SlsBackend *> inner)
    : eq_(eq), cpu_(cpu), router_(router), inner_(std::move(inner)),
      shardLatency_(router.numShards())
{
    recssd_assert(inner_.size() == router_.numShards(),
                  "one inner backend per shard required (%zu vs %u)",
                  inner_.size(), router_.numShards());
    for (const auto *b : inner_)
        recssd_assert(b != nullptr, "null shard backend");
}

std::string
ShardedSlsBackend::name() const
{
    return "sharded-" + std::to_string(router_.numShards()) + "x-" +
           inner_.front()->name();
}

void
ShardedSlsBackend::run(const SlsOp &op, Done done)
{
    recssd_assert(op.table != nullptr, "SLS op without table");

    // Issue one sub-op on its shard, recording per-shard service time.
    auto issue = [this](unsigned shard, const SlsOp &sub, Done sub_done) {
        Tick issued = eq_.now();
        inner_[shard]->run(
            sub, [this, shard, issued,
                  sub_done = std::move(sub_done)](SlsResult r) {
                shardLatency_[shard].record(eq_.now() - issued);
                sub_done(std::move(r));
            });
    };

    if (router_.numShards() == 1) {
        // Single device: the seed path, verbatim.
        issue(0, op, std::move(done));
        return;
    }

    const ShardedTable &st = router_.tableOf(op.table->id);
    auto slices = router_.split(op);

    if (slices.empty()) {
        // Degenerate op (all bags empty): the operator still
        // dispatches once, on the table's home shard, so sparse
        // queries keep their per-op overhead under any layout.
        SlsOp sub;
        sub.table = &st.slices.front().desc;
        sub.indices.assign(op.batch(), {});
        sub.traceId = op.traceId;
        issue(st.homeShard(), sub, std::move(done));
        return;
    }

    if (slices.size() == 1) {
        // One owning device (always true under TableHash): no gather.
        SlsOp sub;
        sub.table = slices[0].desc;
        sub.indices = std::move(slices[0].indices);
        sub.traceId = op.traceId;
        issue(slices[0].shard, sub, std::move(done));
        return;
    }

    // Scatter to every owning device; gather partial sums under a
    // completion barrier. Partials keep the full batch x dim layout,
    // so the gather is an elementwise sum — exact for the integer
    // synthetic values, hence order independent.
    ++scatteredOps_;
    auto state = std::make_shared<GatherState>();
    state->traceId = op.traceId;
    state->dim = op.table->dim;
    state->result.assign(op.batch() * op.table->dim, 0.0f);
    state->left = static_cast<unsigned>(slices.size());
    state->partials = state->left;
    state->done = std::move(done);

    auto arrive = [this, state](SlsResult partial) {
        recssd_assert(partial.size() == state->result.size(),
                      "shard partial layout mismatch");
        for (std::size_t i = 0; i < partial.size(); ++i)
            state->result[i] += partial[i];
        if (--state->left > 0)
            return;
        // Host-side reduce of the extra partial result sets: one
        // streaming accumulate pass per partial beyond the first.
        std::uint32_t vec_bytes = state->dim * 4;
        std::size_t vectors = state->result.size() / state->dim;
        Tick reduce = cpu_.params().extractBase +
                      cpu_.dramLookupCost(vec_bytes) *
                          (state->partials - 1) * vectors;
        SpanId span = invalidSpan;
        if (Tracer *tracer = tracerOf(eq_)) {
            span = tracer->begin(tracer->track("host.sls"), "shard_gather",
                                 Phase::HostCompute, state->traceId);
        }
        cpu_.run(reduce, [this, state, span]() {
            if (Tracer *tracer = tracerOf(eq_))
                tracer->end(span);
            state->done(state->result);
        });
    };

    for (auto &slice : slices) {
        SlsOp sub;
        sub.table = slice.desc;
        sub.indices = std::move(slice.indices);
        sub.traceId = op.traceId;
        issue(slice.shard, sub, arrive);
    }
}

}  // namespace recssd
