/**
 * @file
 * Scatter-gather SLS over sharded tables.
 *
 * `ShardedSlsBackend` wraps one per-device backend per shard (any
 * `SlsBackend` — DRAM, baseline SSD or NDP) behind the same interface
 * the model runner already uses. Each operation is split by the
 * `ShardRouter` into shard-local sub-ops, issued concurrently on the
 * owning devices, and the partial sums are gathered at the host under
 * a per-op completion barrier. Synthetic values are small integers, so
 * fp32 accumulation is exact and the gathered result is independent of
 * shard completion order — the property tests rely on this.
 *
 * With one shard (or a single-shard placement such as TableHash) the
 * wrapper passes the operation through untouched: no extra events, no
 * gather cost, bit-identical timing to the unsharded seed path.
 */

#ifndef RECSSD_SHARD_SHARDED_BACKEND_H
#define RECSSD_SHARD_SHARDED_BACKEND_H

#include <memory>
#include <vector>

#include "src/common/event_queue.h"
#include "src/embedding/sls_backend.h"
#include "src/host/host_cpu.h"
#include "src/load/latency_recorder.h"
#include "src/shard/shard_router.h"

namespace recssd
{

class ShardedSlsBackend : public SlsBackend
{
  public:
    /**
     * @param inner One backend per shard, in shard order; each must be
     *        bound to that shard's device (driver + queues). Not
     *        owned.
     */
    ShardedSlsBackend(EventQueue &eq, HostCpu &cpu, ShardRouter &router,
                      std::vector<SlsBackend *> inner);

    void run(const SlsOp &op, Done done) override;
    std::string name() const override;

    /** @{ Per-shard service accounting (sub-op issue -> completion). */
    const LatencyRecorder &shardLatency(unsigned shard) const
    {
        return shardLatency_.at(shard);
    }
    std::uint64_t subOpsOn(unsigned shard) const
    {
        return shardLatency_.at(shard).count();
    }
    /** Ops that fanned out to more than one shard. */
    std::uint64_t scatteredOps() const { return scatteredOps_; }
    /** @} */

  private:
    EventQueue &eq_;
    HostCpu &cpu_;
    ShardRouter &router_;
    std::vector<SlsBackend *> inner_;
    std::vector<LatencyRecorder> shardLatency_;
    std::uint64_t scatteredOps_ = 0;
};

}  // namespace recssd

#endif  // RECSSD_SHARD_SHARDED_BACKEND_H
