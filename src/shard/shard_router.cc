#include "src/shard/shard_router.h"

#include <algorithm>

#include "src/common/logging.h"

namespace recssd
{

namespace
{

/** splitmix64 finalizer: spreads consecutive table ids over shards. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Rows of shard `s` under the balanced contiguous split. */
std::uint64_t
rangeRows(std::uint64_t rows, unsigned shards, unsigned s)
{
    std::uint64_t base = rows / shards;
    std::uint64_t extra = rows % shards;
    return base + (s < extra ? 1 : 0);
}

/** Global first row of shard `s` under the balanced contiguous split. */
std::uint64_t
rangeFirst(std::uint64_t rows, unsigned shards, unsigned s)
{
    std::uint64_t base = rows / shards;
    std::uint64_t extra = rows % shards;
    if (s < extra)
        return std::uint64_t(s) * (base + 1);
    return extra * (base + 1) + (std::uint64_t(s) - extra) * base;
}

}  // namespace

const char *
shardPolicyName(ShardPolicy policy)
{
    return policy == ShardPolicy::TableHash ? "hash" : "range";
}

ShardRouter::ShardRouter(const ShardConfig &config) : config_(config)
{
    recssd_assert(config_.numShards > 0, "need at least one shard");
}

unsigned
ShardRouter::shardOfTable(std::uint32_t table_id) const
{
    return static_cast<unsigned>(mix64(table_id) % config_.numShards);
}

const ShardedTable &
ShardRouter::addTable(const EmbeddingTableDesc &global,
                      const std::function<Lpn(unsigned shard)> &alloc_base)
{
    recssd_assert(!knows(global.id), "table %u sharded twice", global.id);
    recssd_assert(global.rowBase == 0, "global table with a row base");
    ShardedTable st;
    st.global = global;

    // R-way replication: each slice's copies land on the R-1 devices
    // following its primary (mod N), allocated right after the
    // primary so the allocation order at replication=1 is exactly the
    // seed's. Replica descs share the primary's rows/rowBase, so the
    // synthetic content generated from (table, global row) is
    // bit-identical on every copy.
    unsigned repl = replication();
    auto addReplicas = [&](ShardSlice &slice) {
        for (unsigned r = 1; r < repl; ++r) {
            ReplicaSlice rep;
            rep.shard = (slice.shard + r) % config_.numShards;
            rep.desc = slice.desc;
            rep.desc.baseLpn = alloc_base(rep.shard);
            slice.replicas.push_back(std::move(rep));
        }
    };

    if (config_.policy == ShardPolicy::TableHash ||
        config_.numShards == 1) {
        unsigned shard =
            config_.numShards == 1 ? 0 : shardOfTable(global.id);
        ShardSlice slice;
        slice.shard = shard;
        slice.firstRow = 0;
        slice.desc = global;
        slice.desc.baseLpn = alloc_base(shard);
        addReplicas(slice);
        st.slices.push_back(std::move(slice));
    } else {
        for (unsigned s = 0; s < config_.numShards; ++s) {
            std::uint64_t rows = rangeRows(global.rows, config_.numShards,
                                           s);
            if (rows == 0)
                continue;  // more shards than rows
            ShardSlice slice;
            slice.shard = s;
            slice.firstRow = rangeFirst(global.rows, config_.numShards, s);
            slice.desc = global;
            slice.desc.rows = rows;
            slice.desc.rowBase = slice.firstRow;
            slice.desc.baseLpn = alloc_base(s);
            addReplicas(slice);
            st.slices.push_back(std::move(slice));
        }
    }
    recssd_assert(!st.slices.empty(), "table %u has no slices", global.id);
    // The global view advertises the home slice's base so a
    // single-slice placement can serve ops built against it directly
    // (and N=1 reproduces the seed's allocation exactly).
    st.global.baseLpn = st.slices.front().desc.baseLpn;
    return tables_.emplace(global.id, std::move(st)).first->second;
}

const ShardedTable &
ShardRouter::tableOf(std::uint32_t table_id) const
{
    auto it = tables_.find(table_id);
    recssd_assert(it != tables_.end(), "unknown sharded table %u",
                  table_id);
    return it->second;
}

unsigned
ShardRouter::shardOf(const EmbeddingTableDesc &global, RowId row) const
{
    recssd_assert(row < global.rows, "row %llu outside table %u",
                  static_cast<unsigned long long>(row), global.id);
    if (config_.policy == ShardPolicy::TableHash || config_.numShards == 1)
        return config_.numShards == 1 ? 0 : shardOfTable(global.id);
    std::uint64_t base = global.rows / config_.numShards;
    std::uint64_t extra = global.rows % config_.numShards;
    std::uint64_t boundary = extra * (base + 1);
    if (row < boundary)
        return static_cast<unsigned>(row / (base + 1));
    return static_cast<unsigned>(extra + (row - boundary) / base);
}

std::vector<ShardRouter::OpSlice>
ShardRouter::split(const SlsOp &op) const
{
    recssd_assert(op.table != nullptr, "split of a table-less op");
    const ShardedTable &st = tableOf(op.table->id);

    std::vector<OpSlice> out;
    // Slice index by shard id, built lazily in shard order so the
    // scatter order is deterministic.
    std::vector<int> slot(config_.numShards, -1);
    auto sliceFor = [&](unsigned shard) -> OpSlice & {
        if (slot[shard] < 0) {
            slot[shard] = static_cast<int>(out.size());
            const ShardSlice *slice = nullptr;
            for (const auto &s : st.slices)
                if (s.shard == shard)
                    slice = &s;
            recssd_assert(slice != nullptr, "row routed to empty shard");
            OpSlice o;
            o.shard = shard;
            o.desc = &slice->desc;
            o.slice = slice;
            o.indices.assign(op.batch(), {});
            out.push_back(std::move(o));
        }
        return out[static_cast<std::size_t>(slot[shard])];
    };

    for (std::size_t b = 0; b < op.indices.size(); ++b) {
        for (RowId row : op.indices[b]) {
            unsigned shard = shardOf(st.global, row);
            OpSlice &o = sliceFor(shard);
            o.indices[b].push_back(row - o.desc->rowBase);
            ++o.lookups;
        }
    }
    // Deterministic scatter order: shard id, not first-appearance.
    std::sort(out.begin(), out.end(),
              [](const OpSlice &a, const OpSlice &b) {
                  return a.shard < b.shard;
              });
    return out;
}

std::vector<ShardRouter::UpdateTarget>
ShardRouter::updateTargets(std::uint32_t table_id, RowId row) const
{
    const ShardedTable &table = tableOf(table_id);
    recssd_assert(row < table.global.rows, "row %llu outside table %u",
                  static_cast<unsigned long long>(row), table_id);

    const ShardSlice *owner = nullptr;
    for (const ShardSlice &slice : table.slices) {
        if (row >= slice.firstRow && row < slice.firstRow + slice.desc.rows) {
            owner = &slice;
            break;
        }
    }
    recssd_assert(owner != nullptr, "row %llu of table %u has no slice",
                  static_cast<unsigned long long>(row), table_id);

    RowId local = row - owner->firstRow;
    std::vector<UpdateTarget> out;
    out.reserve(1 + owner->replicas.size());
    out.push_back({owner->shard, &owner->desc, local, false});
    for (const ReplicaSlice &replica : owner->replicas)
        out.push_back({replica.shard, &replica.desc, local, true});
    return out;
}

}  // namespace recssd
