/**
 * @file
 * Multi-tenant serving: the tenant model.
 *
 * Production recommendation hosts serve many models with distinct
 * SLAs from one SSD-backed box; treating every query as one anonymous
 * stream lets a single bursty workload starve everyone. A
 * `TenantSpec` makes tenancy first-class: each tenant names a model
 * from the zoo, owns a seeded arrival process and query-shape
 * distribution, an SLO target, and a dmclock-style
 * reservation/weight/limit share triple the `QosScheduler` enforces
 * at admission. Specs parse from a compact text form (inline string
 * or file), mirroring the fault-plan grammar, so whole tenant mixes
 * are one CLI flag.
 */

#ifndef RECSSD_QOS_TENANT_SPEC_H
#define RECSSD_QOS_TENANT_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/load/load_gen.h"
#include "src/load/update_stream.h"

namespace recssd
{

/**
 * The dmclock-style share triple of one tenant. Units are operations
 * per simulated second; a query admission and an update flush each
 * cost one operation.
 */
struct TenantShare
{
    /** Guaranteed floor (ops/s); 0 = no reservation. */
    double reservation = 0.0;
    /** Proportional share of capacity left after reservations. */
    double weight = 1.0;
    /** Hard cap (ops/s); 0 = unlimited. */
    double limit = 0.0;
};

/** One tenant: a model, its traffic, its SLO, and its share. */
struct TenantSpec
{
    /** Stable name used in stats ("serve.tenant.<name>.*"), trace
     *  span labels and reports. */
    std::string name;
    /** Model from the zoo this tenant serves. Tenants naming the same
     *  model share one runner (and may coalesce into one fused batch
     *  when their query shapes are compatible). */
    std::string model = "RM1";
    ArrivalSpec arrivals;
    QueryShapeSpec shape;
    /** Per-query latency target for this tenant's SLO accounting. */
    Tick slo = 50 * msec;
    TenantShare share;
    /** Measured queries this tenant issues (0 = harness default). */
    unsigned queries = 0;
    /** Tenant-owned online-update stream (off by default). Updates
     *  are charged against this tenant's limit tag, so a mixed
     *  read-write antagonist is throttled by the same share triple
     *  as its reads. */
    UpdateStreamSpec updates;
    /** Per-tenant seed salt (combined with the harness seed). */
    std::uint64_t seed = 0;
};

/**
 * A full serving host's tenant mix.
 *
 * Spec grammar (inline form, `;`-separated; file form, one tenant per
 * line with `#` comments):
 *
 *   tenant := name [':' key '=' value (',' key '=' value)*]
 *   keys   := model (zoo name), arrival (poisson|fixed|bursty),
 *             qps (float), burst (float), batch (uint, fixes the
 *             per-query sample count), tables (uint, 0 = all),
 *             pool (float pooling scale), slo (time: <float><ns|us|
 *             ms|s>), res / weight / limit (floats, ops per second),
 *             queries (uint), update_rate (rows/s), update_skew
 *             (zipf alpha), seed (uint)
 *
 * Example:
 *   victim:model=RM1,qps=40,slo=20ms,res=20,weight=1;
 *   antagonist:model=RM1,qps=400,arrival=bursty,burst=8,weight=1,limit=80
 */
struct TenantSet
{
    std::vector<TenantSpec> tenants;

    /** Parse an inline spec. Panics (naming the offending token) on a
     *  malformed spec, duplicate tenant names, or non-positive
     *  weights. */
    static TenantSet parse(const std::string &spec);

    /** Parse a spec file (one tenant per line, `#` comments). */
    static TenantSet parseFile(const std::string &path);

    /** File if `spec` names a readable file, else inline. */
    static TenantSet load(const std::string &spec);

    bool empty() const { return tenants.empty(); }
    std::size_t size() const { return tenants.size(); }
};

}  // namespace recssd

#endif  // RECSSD_QOS_TENANT_SPEC_H
