/**
 * @file
 * dmclock-style weighted-fair admission scheduling for multi-tenant
 * serving.
 *
 * The `QosScheduler` sits in front of the per-model `BatchScheduler`s:
 * every tenant query lands in its tenant's FIFO tag queue, and a
 * bounded admission window dequeues across tenants in dmClock order
 * (Gulati et al., OSDI'10, simplified): reservation-first — any head
 * whose reservation tag has matured is served before all
 * weight-proportional work — then weight-proportional among tenants
 * whose limit tag permits service now. Tags are assigned at arrival
 * from per-tenant virtual clocks (spacing 1/reservation, 1/weight,
 * 1/limit), so an idle tenant never banks credit, a backlogged
 * antagonist advances its own clocks ahead of real time, and the limit
 * clamps a tenant no matter how much it floods. Ties break on
 * (tag, seq) — seq is the global submission sequence — so the grant
 * order is a pure function of the submission sequence and artifacts
 * stay byte-reproducible.
 *
 * A `Fifo` policy (same admission window, arrival order, shares
 * ignored) is kept as the A/B baseline: it is exactly the
 * anonymous-stream behavior whose starvation the bench
 * `ext_qos_isolation` demonstrates.
 *
 * The scheduler is deliberately decoupled from the serving stack: it
 * admits into a caller-supplied dispatch hook, so tests drive it with
 * synthetic service processes and the harness binds it to real
 * `BatchScheduler`s.
 */

#ifndef RECSSD_QOS_QOS_SCHEDULER_H
#define RECSSD_QOS_QOS_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/common/event_queue.h"
#include "src/load/load_gen.h"
#include "src/obs/tracer.h"
#include "src/qos/tenant_spec.h"
#include "src/reco/serving.h"

namespace recssd
{

/** Admission policy of the QoS layer. */
enum class QosPolicy
{
    Dmclock,  ///< reservation-first, then weight-proportional
    Fifo,     ///< arrival order, shares ignored (the A/B baseline)
};

const char *qosPolicyName(QosPolicy policy);

/** Knobs of the admission scheduler. */
struct QosParams
{
    QosPolicy policy = QosPolicy::Dmclock;
    /**
     * Admission window: queries admitted downstream (dispatched into
     * batch schedulers) but not yet completed. This is the capacity
     * the tenants' shares divide; FIFO uses the same window so the
     * bench A/B isolates the dequeue policy alone.
     */
    unsigned window = 8;
};

/** One tenant as the scheduler sees it: a name and a share triple. */
struct QosTenant
{
    std::string name;
    TenantShare share;
};

class QosScheduler
{
  public:
    using QueryDone = BatchScheduler::QueryDone;
    /**
     * Downstream admission hook: deliver one granted query. The
     * implementation must invoke `done` exactly once when the query
     * completes; `traceId`/`rootSpan` carry the request identity the
     * scheduler opened at submission (0/invalid when tracing is off)
     * and ownership of ending the root span moves downstream.
     */
    using Dispatch = std::function<void(
        unsigned tenant, const QueryShape &shape, QueryDone done,
        std::uint64_t traceId, SpanId rootSpan)>;

    QosScheduler(EventQueue &eq, std::vector<QosTenant> tenants,
                 const QosParams &params, Dispatch dispatch);

    /** Enqueue one query for `tenant`; `done` fires on completion. */
    void submit(unsigned tenant, const QueryShape &shape, QueryDone done);

    /**
     * Charge one auxiliary operation (an update flush) against
     * `tenant`'s limit tag and return the earliest tick at or after
     * `now` the operation may run. Reads and writes drain one budget:
     * a mixed read-write antagonist is clamped by the same triple.
     */
    Tick chargeAux(unsigned tenant, Tick now);

    /** @{ Lifetime accounting, per tenant. */
    struct TenantCounters
    {
        std::uint64_t submitted = 0;
        std::uint64_t admitted = 0;
        std::uint64_t completed = 0;
        /** Grants won in the reservation (constraint) phase. */
        std::uint64_t reservationGrants = 0;
        /** Grants won in the weight-proportional phase. */
        std::uint64_t weightGrants = 0;
        /** Times this tenant's head was held back by its limit tag
         *  while the scheduler had window room. */
        std::uint64_t limitDeferrals = 0;
        /** Auxiliary (update-flush) charges against the limit tag. */
        std::uint64_t auxCharges = 0;
        unsigned maxQueueDepth = 0;
    };
    const TenantCounters &counters(unsigned tenant) const;
    unsigned pendingOf(unsigned tenant) const;
    /** @} */

    unsigned numTenants() const
    {
        return static_cast<unsigned>(tenants_.size());
    }
    unsigned inService() const { return inService_; }
    std::uint64_t totalAdmitted() const { return totalAdmitted_; }
    /** Admission order so far: one (tenant, seq) per grant. */
    const std::vector<std::pair<unsigned, std::uint64_t>> &
    grantLog() const
    {
        return grantLog_;
    }

    const QosParams &params() const { return params_; }
    const QosTenant &tenant(unsigned t) const
    {
        return tenants_.at(t).spec;
    }

  private:
    struct Pending
    {
        QueryShape shape;
        QueryDone done;
        Tick arrival = 0;
        std::uint64_t seq = 0;  ///< global submission sequence
        /** dmClock tags, double ns since t=0 (infinity = untagged). */
        double rTag = 0.0;
        double pTag = 0.0;
        double lTag = 0.0;
        /** Trace identity opened at submission (0 when off). */
        std::uint64_t traceId = 0;
        SpanId rootSpan = invalidSpan;
    };

    struct TenantState
    {
        QosTenant spec;
        std::deque<Pending> q;
        /** Virtual clocks: the last tag handed out per dimension. */
        double rClock = 0.0;
        double pClock = 0.0;
        double lClock = 0.0;
        TenantCounters counters;
        /** Interned tracer labels (lazily, first traced submit). */
        const char *rootLabel = nullptr;
        const char *queueLabel = nullptr;
    };

    /** Admit while window room remains and a head is eligible. */
    void grantLoop();
    /** Pop tenant `t`'s head and hand it downstream. */
    void grantOne(unsigned t, bool reservation_phase);
    /** Arm the wakeup timer for the earliest maturing tag. */
    void armTimer(Tick due);
    /** Earliest tick any queued head becomes eligible (maxTick if no
     *  queue is blocked on a tag). */
    Tick nextEligibleTick() const;

    EventQueue &eq_;
    std::vector<TenantState> tenants_;
    QosParams params_;
    Dispatch dispatch_;

    unsigned inService_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t totalAdmitted_ = 0;
    std::vector<std::pair<unsigned, std::uint64_t>> grantLog_;

    /** Timeout-event bookkeeping (stale timers are ignored). */
    std::uint64_t timerGen_ = 0;
    bool timerArmed_ = false;
    Tick timerDue_ = 0;
};

}  // namespace recssd

#endif  // RECSSD_QOS_QOS_SCHEDULER_H
