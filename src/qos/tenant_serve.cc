#include "src/qos/tenant_serve.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/logging.h"
#include "src/load/latency_recorder.h"
#include "src/load/load_gen.h"
#include "src/obs/metrics.h"
#include "src/obs/slo_monitor.h"
#include "src/reco/model_config.h"
#include "src/reco/update_flusher.h"

namespace recssd
{

namespace
{

/**
 * Per-tenant seed: the harness seed, the tenant's position, and its
 * own salt, mixed so adding or reordering other tenants never
 * perturbs this tenant's arrival/shape/update draws.
 */
std::uint64_t
tenantSeed(std::uint64_t seed, unsigned tenant, std::uint64_t salt)
{
    return seed * 0x9e3779b97f4a7c15ull +
           (static_cast<std::uint64_t>(tenant) + 1) * 0xbf58476d1ce4e5b9ull +
           salt;
}

}  // namespace

TenantServeStats
runServeTenants(System &sys, const RunnerOptions &options,
                const TenantServeConfig &config)
{
    recssd_assert(!config.tenants.empty(), "tenant serve: no tenants");
    EventQueue &eq = sys.eq();
    const unsigned nt = static_cast<unsigned>(config.tenants.size());

    // One runner (and one batch scheduler) per distinct model. Shared
    // ownership: the QoS dispatch hook and the registry getters below
    // outlive this frame.
    auto runners = std::make_shared<
        std::vector<std::shared_ptr<ModelRunner>>>();
    auto schedulers = std::make_shared<
        std::vector<std::shared_ptr<BatchScheduler>>>();
    std::vector<unsigned> tenantRunner(nt, 0);
    BatchPolicy batching = config.batching;
    batching.tenantAware = true;
    {
        std::vector<std::string> modelNames;
        for (unsigned t = 0; t < nt; ++t) {
            const TenantSpec &spec = config.tenants.tenants[t];
            auto it = std::find(modelNames.begin(), modelNames.end(),
                                spec.model);
            if (it == modelNames.end()) {
                modelNames.push_back(spec.model);
                ModelConfig model = config.modelResolver
                                        ? config.modelResolver(spec.model)
                                        : modelByName(spec.model);
                runners->push_back(std::make_shared<ModelRunner>(
                    sys, model, options));
                schedulers->push_back(std::make_shared<BatchScheduler>(
                    *runners->back(), batching));
                tenantRunner[t] =
                    static_cast<unsigned>(runners->size() - 1);
            } else {
                tenantRunner[t] = static_cast<unsigned>(
                    it - modelNames.begin());
            }
        }
    }

    // The shared admission scheduler, dispatching into the owning
    // tenant's per-model batch scheduler.
    std::vector<QosTenant> qosTenants;
    qosTenants.reserve(nt);
    for (const TenantSpec &spec : config.tenants.tenants)
        qosTenants.push_back(QosTenant{spec.name, spec.share});
    auto qos = std::make_shared<QosScheduler>(
        eq, std::move(qosTenants), config.qos,
        [runners, schedulers, tenantRunner](
            unsigned tenant, const QueryShape &shape,
            QosScheduler::QueryDone done, std::uint64_t traceId,
            SpanId rootSpan) {
            (*schedulers)[tenantRunner[tenant]]->submitTagged(
                shape, std::move(done), traceId, rootSpan);
        });

    // Per-tenant measurement state. Shared ownership: completion
    // callbacks and registry getters may outlive this frame.
    struct Measure
    {
        LatencyRecorder latency;
        LatencyRecorder queueing;
        LatencyRecorder service;
        unsigned completed = 0;
        unsigned degraded = 0;
        Tick lastDone = 0;
        Tick measureStart = 0;
        std::shared_ptr<SloMonitor> mon;
        std::shared_ptr<UpdateFlusher> updates;
    };
    auto measures =
        std::make_shared<std::vector<std::shared_ptr<Measure>>>();
    for (unsigned t = 0; t < nt; ++t)
        measures->push_back(std::make_shared<Measure>());

    // Arrival ticks are relative to the start of the run; rebase on
    // the current clock so callers may warm the system up first.
    const Tick base = eq.now();
    unsigned total_queries = 0;
    for (unsigned t = 0; t < nt; ++t) {
        const TenantSpec &spec = config.tenants.tenants[t];
        Measure &m = *(*measures)[t];
        const unsigned queries =
            spec.queries > 0 ? spec.queries : config.defaultQueries;
        recssd_assert(queries > 0, "tenant '%s' has nothing to measure",
                      spec.name.c_str());
        const unsigned total = config.warmupQueries + queries;
        total_queries += total;

        if (config.slo.enabled) {
            SloConfig sc = config.slo;
            sc.target = spec.slo;
            m.mon = std::make_shared<SloMonitor>(sc);
        }

        LoadGenerator gen(spec.arrivals, spec.shape,
                          tenantSeed(config.seed, t, spec.seed));
        gen.setTenant(t);
        auto arrivals = gen.schedule(total);
        m.measureStart = base + arrivals[config.warmupQueries].arrival;

        for (unsigned i = 0; i < total; ++i) {
            const QueryDesc &q = arrivals[i];
            const Tick arrive = base + q.arrival;
            eq.schedule(arrive, [qos, measures, &config, t, i, arrive,
                                 shape = q.shape]() {
                RECSSD_CAPTURES_MAPPING("qos/measures are shared_ptrs; "
                                        "config is the harness's stack "
                                        "object and runServeTenants "
                                        "drains the queue before "
                                        "returning");
                qos->submit(t, shape, [measures, &config, t, i,
                                       arrive](const QueryTimes &qt) {
                    Measure &m = *(*measures)[t];
                    ++m.completed;
                    m.lastDone = qt.complete;
                    if (i < config.warmupQueries)
                        return;
                    // Completion events are completion-time ordered —
                    // the order the windowed monitor requires.
                    if (m.mon)
                        m.mon->record(qt.complete, qt.complete - arrive);
                    m.latency.record(qt.complete - arrive);
                    m.queueing.record(qt.dispatch - arrive);
                    m.service.record(qt.complete - qt.dispatch);
                    if (qt.degraded)
                        ++m.degraded;
                });
            });
        }

        // Tenant-owned update stream: flushes race this tenant's own
        // reads for its QoS budget (chargeAux advances the same limit
        // tag), then everyone's NVMe queues and flash dies.
        if (spec.updates.enabled()) {
            UpdateStreamSpec us = spec.updates;
            us.tenant = t;
            m.updates = std::make_shared<UpdateFlusher>(
                sys, (*runners)[tenantRunner[t]]->ssdTableDescs(), us,
                tenantSeed(config.seed, t, spec.seed));
            m.updates->setAdmission([qos, t](Tick now) {
                return qos->chargeAux(t, now);
            });
            m.updates->scheduleUntil(arrivals.back().arrival);
        }
    }

    // Live per-tenant gauges: registered before the run so the metric
    // sampler exports tenant time series (rows sampled before this
    // point are clamped to their own width). Getters share ownership
    // of the scheduler, so stats JSON keeps working after return.
    StatRegistry &reg = sys.statsMut();
    for (unsigned t = 0; t < nt; ++t) {
        const std::string group =
            "serve.tenant." + config.tenants.tenants[t].name;
        reg.addScalar(group, "pending", [qos, t]() {
            return static_cast<double>(qos->pendingOf(t));
        });
        reg.addScalar(group, "admitted", [qos, t]() {
            return static_cast<double>(qos->counters(t).admitted);
        });
        reg.addScalar(group, "completed", [qos, t]() {
            return static_cast<double>(qos->counters(t).completed);
        });
    }

    sys.run();

    TenantServeStats out;
    for (unsigned t = 0; t < nt; ++t) {
        const TenantSpec &spec = config.tenants.tenants[t];
        Measure &m = *(*measures)[t];
        const unsigned queries =
            spec.queries > 0 ? spec.queries : config.defaultQueries;
        recssd_assert(m.completed == config.warmupQueries + queries,
                      "tenant '%s' lost queries: %u of %u completed",
                      spec.name.c_str(), m.completed,
                      config.warmupQueries + queries);

        TenantServeStats::PerTenant pt;
        pt.name = spec.name;
        pt.model = spec.model;
        pt.completedQueries = static_cast<unsigned>(m.latency.count());
        pt.meanLatencyUs = m.latency.meanUs();
        pt.maxLatencyUs = m.latency.maxUs();
        pt.p50Us = m.latency.percentileUs(0.50);
        pt.p95Us = m.latency.percentileUs(0.95);
        pt.p99Us = m.latency.percentileUs(0.99);
        pt.meanQueueUs = m.queueing.meanUs();
        pt.meanServiceUs = m.service.meanUs();
        pt.sloAttainment = m.latency.fractionWithin(spec.slo);
        pt.degradedQueries = m.degraded;
        Tick span = m.lastDone > m.measureStart
                        ? m.lastDone - m.measureStart
                        : 1;
        pt.achievedQps = static_cast<double>(queries) /
                         (static_cast<double>(span) / sec);
        pt.qos = qos->counters(t);

        if (m.mon) {
            m.mon->finish();
            for (const SloMonitor::Window &w : m.mon->windows()) {
                ServeStats::SloWindow sw;
                sw.startUs = ticksToUs(w.start);
                sw.queries = w.queries;
                sw.attainment = w.attainment();
                sw.p50Us = w.p50Us;
                sw.p99Us = w.p99Us;
                sw.burnRate = m.mon->burnRate(w.attainment());
                pt.sloWindows.push_back(sw);
            }
            pt.sloMonitorAttainment = m.mon->overallAttainment();
            pt.errorBudgetBurnRate = m.mon->overallBurnRate();
            pt.worstWindowBurnRate = m.mon->worstWindowBurnRate();
        }
        if (m.updates) {
            pt.updatesSubmitted = m.updates->submitted();
            pt.updatesApplied = m.updates->applied();
            pt.updateFlushes = m.updates->flushes();
            pt.updateAdmissionDeferrals = m.updates->admissionDeferrals();
        }

        out.completedQueries += pt.completedQueries;
        out.perTenant.push_back(std::move(pt));
    }

    // Whole-mix throughput: measured queries over the union of the
    // tenants' measurement windows.
    Tick first_start = maxTick;
    Tick last_done = 0;
    for (unsigned t = 0; t < nt; ++t) {
        first_start = std::min(first_start, (*measures)[t]->measureStart);
        last_done = std::max(last_done, (*measures)[t]->lastDone);
    }
    Tick span = last_done > first_start ? last_done - first_start : 1;
    out.achievedQps = static_cast<double>(out.completedQueries) /
                      (static_cast<double>(span) / sec);
    for (const auto &sched : *schedulers)
        out.batchesDispatched += sched->batchesDispatched();
    out.totalAdmitted = qos->totalAdmitted();

    // End-of-run summary scalars (stats JSON; late columns are clamped
    // in sampler rows). Getters snapshot the finished run.
    for (const TenantServeStats::PerTenant &pt : out.perTenant) {
        const std::string group = "serve.tenant." + pt.name;
        auto shared =
            std::make_shared<TenantServeStats::PerTenant>(pt);
        reg.addScalar(group, "submitted", [shared]() {
            return static_cast<double>(shared->qos.submitted);
        });
        reg.addScalar(group, "reservation_grants", [shared]() {
            return static_cast<double>(shared->qos.reservationGrants);
        });
        reg.addScalar(group, "weight_grants", [shared]() {
            return static_cast<double>(shared->qos.weightGrants);
        });
        reg.addScalar(group, "limit_deferrals", [shared]() {
            return static_cast<double>(shared->qos.limitDeferrals);
        });
        reg.addScalar(group, "aux_charges", [shared]() {
            return static_cast<double>(shared->qos.auxCharges);
        });
        reg.addScalar(group, "max_queue_depth", [shared]() {
            return static_cast<double>(shared->qos.maxQueueDepth);
        });
        reg.addScalar(group, "p50_us", [shared]() {
            return shared->p50Us;
        });
        reg.addScalar(group, "p99_us", [shared]() {
            return shared->p99Us;
        });
        reg.addScalar(group, "slo_attainment", [shared]() {
            return shared->sloAttainment;
        });
        reg.addScalar(group, "achieved_qps", [shared]() {
            return shared->achievedQps;
        });
        reg.addScalar(group, "update_deferrals", [shared]() {
            return static_cast<double>(shared->updateAdmissionDeferrals);
        });
    }
    return out;
}

}  // namespace recssd
