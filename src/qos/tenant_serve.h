/**
 * @file
 * The multi-tenant serving harness: N tenants, one machine, measured
 * isolation.
 *
 * `runServeTenants` is the tenant-aware sibling of `runServe`
 * (src/reco/serving.h): it instantiates one `ModelRunner` +
 * `BatchScheduler` per *distinct model* in the tenant mix, gives every
 * tenant its own seeded `LoadGenerator` (seed mixed from the harness
 * seed, the tenant index, and the tenant's own salt, so adding a
 * tenant never perturbs another tenant's arrival sequence), and routes
 * every query through one shared `QosScheduler` before it may reach a
 * batch scheduler. Tenants that enable an update stream get their own
 * `UpdateFlusher` whose flushes are charged against the same QoS limit
 * tag as their reads.
 *
 * Accounting is per-tenant end to end: latency quantiles, queue/service
 * split, SLO attainment against each tenant's own target, windowed
 * `SloMonitor` series, dmClock grant/deferral counters, and
 * `serve.tenant.<name>.*` registry scalars (live queue gauges during
 * the run for the metric sampler, summary scalars at the end for stats
 * JSON).
 *
 * Zero-tenant byte-identity: nothing here runs unless the caller
 * builds a `TenantServeConfig`, so default serve runs — and their
 * artifacts — are untouched.
 */

#ifndef RECSSD_QOS_TENANT_SERVE_H
#define RECSSD_QOS_TENANT_SERVE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/qos/qos_scheduler.h"
#include "src/qos/tenant_spec.h"
#include "src/reco/model_runner.h"
#include "src/reco/serving.h"

namespace recssd
{

/** Configuration of the multi-tenant serving harness. */
struct TenantServeConfig
{
    TenantSet tenants;
    QosParams qos;
    /** Batch-formation template for every per-model scheduler;
     *  `tenantAware` is forced on. */
    BatchPolicy batching;
    /** Measured queries per tenant when its spec leaves `queries` 0. */
    unsigned defaultQueries = 200;
    /** Warmup queries per tenant (not measured). */
    unsigned warmupQueries = 20;
    /** Windowed SLO monitor knobs; each tenant's monitor uses its own
     *  `TenantSpec::slo` as the target. `enabled` gates the series. */
    SloConfig slo;
    /** Resolves a tenant's model name to its config; null = the zoo
     *  (`modelByName`). Tests and benches inject tiny models here. */
    std::function<ModelConfig(const std::string &)> modelResolver;
    std::uint64_t seed = 99;
};

/** What the multi-tenant harness measured. */
struct TenantServeStats
{
    struct PerTenant
    {
        std::string name;
        std::string model;
        unsigned completedQueries = 0;
        double meanLatencyUs = 0.0;
        double maxLatencyUs = 0.0;
        double p50Us = 0.0;
        double p95Us = 0.0;
        double p99Us = 0.0;
        /** Total pre-service wait (arrival -> batch dispatch), i.e.
         *  QoS admission plus batch formation. */
        double meanQueueUs = 0.0;
        double meanServiceUs = 0.0;
        /** Attainment against this tenant's own SLO target. */
        double sloAttainment = 0.0;
        double achievedQps = 0.0;
        unsigned degradedQueries = 0;

        QosScheduler::TenantCounters qos;

        /** @{ Windowed SLO series (empty unless `slo.enabled`). */
        std::vector<ServeStats::SloWindow> sloWindows;
        double sloMonitorAttainment = 0.0;
        double errorBudgetBurnRate = 0.0;
        double worstWindowBurnRate = 0.0;
        /** @} */

        /** @{ Tenant-owned update stream (zero when off). */
        std::uint64_t updatesSubmitted = 0;
        std::uint64_t updatesApplied = 0;
        std::uint64_t updateFlushes = 0;
        /** Flushes held back by the tenant's QoS limit budget. */
        std::uint64_t updateAdmissionDeferrals = 0;
        /** @} */
    };

    std::vector<PerTenant> perTenant;

    /** Whole-mix aggregates. */
    unsigned completedQueries = 0;
    double achievedQps = 0.0;
    std::uint64_t batchesDispatched = 0;
    std::uint64_t totalAdmitted = 0;
};

/**
 * Serve the whole tenant mix on `sys` and measure. One runner per
 * distinct model (all built with `options`), one shared QoS scheduler
 * in `config.qos` mode. Returns when every tenant's queries (and
 * update flushes) have completed; like `runServe`, overload manifests
 * as latency, never as drops.
 */
TenantServeStats runServeTenants(System &sys, const RunnerOptions &options,
                                 const TenantServeConfig &config);

}  // namespace recssd

#endif  // RECSSD_QOS_TENANT_SERVE_H
