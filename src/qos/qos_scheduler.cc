#include "src/qos/qos_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/logging.h"

namespace recssd
{

const char *
qosPolicyName(QosPolicy policy)
{
    switch (policy) {
      case QosPolicy::Dmclock:
        return "dmclock";
      case QosPolicy::Fifo:
        return "fifo";
    }
    return "unknown";
}

namespace
{

constexpr double kInfTag = std::numeric_limits<double>::infinity();

/** Tag spacing (ns) of a rate in ops per simulated second. */
double
tagSpacing(double opsPerSec)
{
    return static_cast<double>(sec) / opsPerSec;
}

/** Strict (tag, seq) order: the deterministic tie-break. */
bool
tagBefore(double tag, std::uint64_t seq, double bestTag,
          std::uint64_t bestSeq)
{
    if (tag != bestTag)
        return tag < bestTag;
    return seq < bestSeq;
}

}  // namespace

QosScheduler::QosScheduler(EventQueue &eq, std::vector<QosTenant> tenants,
                           const QosParams &params, Dispatch dispatch)
    : eq_(eq), params_(params), dispatch_(std::move(dispatch))
{
    recssd_assert(!tenants.empty(), "qos: no tenants");
    recssd_assert(params_.window > 0, "qos: zero admission window");
    recssd_assert(dispatch_ != nullptr, "qos: no dispatch hook");
    tenants_.reserve(tenants.size());
    for (QosTenant &t : tenants) {
        recssd_assert(t.share.weight > 0.0,
                      "qos: tenant '%s' needs weight > 0", t.name.c_str());
        recssd_assert(t.share.reservation >= 0.0 && t.share.limit >= 0.0,
                      "qos: tenant '%s' has a negative share",
                      t.name.c_str());
        recssd_assert(t.share.limit == 0.0 ||
                          t.share.limit >= t.share.reservation,
                      "qos: tenant '%s' limit below its reservation",
                      t.name.c_str());
        TenantState st;
        st.spec = std::move(t);
        tenants_.push_back(std::move(st));
    }
}

void
QosScheduler::submit(unsigned tenant, const QueryShape &shape,
                     QueryDone done)
{
    recssd_assert(tenant < tenants_.size(), "qos: bogus tenant %u",
                  tenant);
    TenantState &st = tenants_[tenant];
    Pending p;
    p.shape = shape;
    p.done = std::move(done);
    p.arrival = eq_.now();
    p.seq = nextSeq_++;

    // Tag assignment at arrival (dmClock): each dimension's clock
    // advances by its spacing, floored at real time so an idle tenant
    // re-enters at `now` instead of spending banked credit.
    const double now = static_cast<double>(p.arrival);
    const TenantShare &share = st.spec.share;
    if (params_.policy == QosPolicy::Dmclock) {
        if (share.reservation > 0.0) {
            p.rTag = std::max(now,
                              st.rClock + tagSpacing(share.reservation));
            st.rClock = p.rTag;
        } else {
            p.rTag = kInfTag;  // never reservation-eligible
        }
        p.pTag = std::max(now, st.pClock + tagSpacing(share.weight));
        st.pClock = p.pTag;
        if (share.limit > 0.0) {
            p.lTag = std::max(now, st.lClock + tagSpacing(share.limit));
            st.lClock = p.lTag;
        } else {
            p.lTag = now;  // unlimited: always limit-eligible
        }
    }

    if (Tracer *tracer = tracerOf(eq_)) {
        if (st.rootLabel == nullptr) {
            st.rootLabel = tracer->internName("query." + st.spec.name);
            st.queueLabel =
                tracer->internName("qos_queue." + st.spec.name);
        }
        p.traceId = tracer->newRequestId();
        p.rootSpan = tracer->beginRequest(st.rootLabel, p.traceId);
    }

    st.q.push_back(std::move(p));
    ++st.counters.submitted;
    st.counters.maxQueueDepth =
        std::max(st.counters.maxQueueDepth,
                 static_cast<unsigned>(st.q.size()));
    grantLoop();
}

void
QosScheduler::grantLoop()
{
    while (inService_ < params_.window) {
        const double now = static_cast<double>(eq_.now());
        unsigned best = numTenants();
        bool reservation_phase = false;
        double bestTag = kInfTag;
        std::uint64_t bestSeq = ~std::uint64_t(0);

        if (params_.policy == QosPolicy::Fifo) {
            // Arrival order across all tenants: min submission seq.
            for (unsigned t = 0; t < numTenants(); ++t) {
                const TenantState &st = tenants_[t];
                if (st.q.empty())
                    continue;
                if (best == numTenants() || st.q.front().seq < bestSeq) {
                    best = t;
                    bestSeq = st.q.front().seq;
                }
            }
        } else {
            // Reservation (constraint) phase: any head whose
            // reservation tag has matured outranks all proportional
            // work; among matured heads, min (rTag, seq).
            for (unsigned t = 0; t < numTenants(); ++t) {
                const TenantState &st = tenants_[t];
                if (st.q.empty())
                    continue;
                const Pending &head = st.q.front();
                if (head.rTag <= now &&
                    tagBefore(head.rTag, head.seq, bestTag, bestSeq)) {
                    best = t;
                    bestTag = head.rTag;
                    bestSeq = head.seq;
                }
            }
            if (best != numTenants()) {
                reservation_phase = true;
            } else {
                // Weight phase: min (pTag, seq) among heads whose
                // limit tag permits service now.
                for (unsigned t = 0; t < numTenants(); ++t) {
                    TenantState &st = tenants_[t];
                    if (st.q.empty())
                        continue;
                    const Pending &head = st.q.front();
                    if (head.lTag > now) {
                        // Held back by its own limit while the window
                        // had room (counted per scan pass).
                        ++st.counters.limitDeferrals;
                        continue;
                    }
                    if (tagBefore(head.pTag, head.seq, bestTag,
                                  bestSeq)) {
                        best = t;
                        bestTag = head.pTag;
                        bestSeq = head.seq;
                    }
                }
            }
        }

        if (best == numTenants())
            break;  // window room, but no head is eligible yet
        grantOne(best, reservation_phase);
    }

    // Work conservation across tag maturity: if capacity remains and
    // queries are queued, they are all blocked on future tags — wake
    // exactly when the earliest one matures.
    if (inService_ < params_.window) {
        Tick due = nextEligibleTick();
        if (due != maxTick)
            armTimer(due);
    }
}

void
QosScheduler::grantOne(unsigned t, bool reservation_phase)
{
    TenantState &st = tenants_[t];
    Pending p = std::move(st.q.front());
    st.q.pop_front();

    ++inService_;
    ++totalAdmitted_;
    ++st.counters.admitted;
    if (reservation_phase)
        ++st.counters.reservationGrants;
    else
        ++st.counters.weightGrants;
    grantLog_.emplace_back(t, p.seq);

    if (Tracer *tracer = tracerOf(eq_)) {
        // The tenant's admission wait, attributed to the query so
        // critical-path blame can pin tail time on the QoS layer (and
        // the label pins it on the tenant).
        if (st.queueLabel != nullptr && p.traceId != 0) {
            tracer->span(tracer->track("qos"), st.queueLabel,
                         Phase::SchedQueue, p.traceId, p.arrival,
                         eq_.now());
        }
    }

    dispatch_(t, p.shape,
              [this, t, done = std::move(p.done)](const QueryTimes &times) {
                  recssd_assert(inService_ > 0,
                                "qos: in-service underflow");
                  --inService_;
                  ++tenants_[t].counters.completed;
                  done(times);
                  grantLoop();
              },
              p.traceId, p.rootSpan);
}

Tick
QosScheduler::nextEligibleTick() const
{
    double best = kInfTag;
    for (const TenantState &st : tenants_) {
        if (st.q.empty())
            continue;
        const Pending &head = st.q.front();
        // The head becomes servable at its reservation tag or, via
        // the weight phase, once its limit tag matures.
        best = std::min(best, std::min(head.rTag, head.lTag));
    }
    if (best == kInfTag)
        return maxTick;
    double up = std::ceil(best);  // tag <= (double)tick at fire time
    if (up >= static_cast<double>(maxTick))
        return maxTick;
    return static_cast<Tick>(up);
}

void
QosScheduler::armTimer(Tick due)
{
    if (due < eq_.now())
        due = eq_.now();
    // An armed timer that fires no later than `due` still covers us:
    // its callback re-evaluates and re-arms.
    if (timerArmed_ && timerDue_ <= due)
        return;
    timerArmed_ = true;
    timerDue_ = due;
    std::uint64_t gen = ++timerGen_;
    eq_.schedule(due, [this, gen]() {
        if (gen != timerGen_)
            return;  // superseded by a later arm
        timerArmed_ = false;
        grantLoop();
    });
}

Tick
QosScheduler::chargeAux(unsigned tenant, Tick now)
{
    recssd_assert(tenant < tenants_.size(), "qos: bogus tenant %u",
                  tenant);
    TenantState &st = tenants_[tenant];
    ++st.counters.auxCharges;
    const double limit = st.spec.share.limit;
    if (params_.policy != QosPolicy::Dmclock || limit <= 0.0)
        return now;
    double tag = std::max(static_cast<double>(now),
                          st.lClock + tagSpacing(limit));
    st.lClock = tag;
    double up = std::ceil(tag);
    if (up >= static_cast<double>(maxTick))
        return maxTick;
    Tick due = static_cast<Tick>(up);
    return due < now ? now : due;
}

const QosScheduler::TenantCounters &
QosScheduler::counters(unsigned tenant) const
{
    recssd_assert(tenant < tenants_.size(), "qos: bogus tenant %u",
                  tenant);
    return tenants_[tenant].counters;
}

unsigned
QosScheduler::pendingOf(unsigned tenant) const
{
    recssd_assert(tenant < tenants_.size(), "qos: bogus tenant %u",
                  tenant);
    return static_cast<unsigned>(tenants_[tenant].q.size());
}

}  // namespace recssd
