#include "src/qos/tenant_spec.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"

namespace recssd
{

namespace
{

/** "3ms" / "250us" / "1.5s" -> Tick. */
Tick
parseTime(const std::string &text, const std::string &where)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (...) {
        panic("tenant spec: bad time '%s' in '%s'", text.c_str(),
              where.c_str());
    }
    std::string suffix = text.substr(pos);
    Tick unit = 0;
    if (suffix == "ns")
        unit = nsec;
    else if (suffix == "us")
        unit = usec;
    else if (suffix == "ms")
        unit = msec;
    else if (suffix == "s")
        unit = sec;
    else
        panic("tenant spec: time '%s' needs a ns/us/ms/s suffix in '%s'",
              text.c_str(), where.c_str());
    recssd_assert(value >= 0.0, "tenant spec: negative time in '%s'",
                  where.c_str());
    return static_cast<Tick>(value * static_cast<double>(unit));
}

double
parseDouble(const std::string &text, const std::string &where)
{
    try {
        return std::stod(text);
    } catch (...) {
        panic("tenant spec: bad number '%s' in '%s'", text.c_str(),
              where.c_str());
    }
}

unsigned
parseUnsigned(const std::string &text, const std::string &where)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        panic("tenant spec: bad integer '%s' in '%s'", text.c_str(),
              where.c_str());
    return static_cast<unsigned>(v);
}

TenantSpec
parseTenant(const std::string &text)
{
    auto colon = text.find(':');
    TenantSpec t;
    t.name = colon == std::string::npos ? text : text.substr(0, colon);
    recssd_assert(!t.name.empty(), "tenant spec: empty tenant name in "
                  "'%s'", text.c_str());
    for (char c : t.name) {
        recssd_assert(std::isalnum(static_cast<unsigned char>(c)) ||
                      c == '_' || c == '-',
                      "tenant spec: name '%s' must be [A-Za-z0-9_-]",
                      t.name.c_str());
    }
    std::string kvs = colon == std::string::npos ? ""
                                                 : text.substr(colon + 1);
    std::stringstream ss(kvs);
    std::string kv;
    while (std::getline(ss, kv, ',')) {
        if (kv.empty())
            continue;
        auto eq = kv.find('=');
        recssd_assert(eq != std::string::npos,
                      "tenant spec: expected key=value, got '%s' in '%s'",
                      kv.c_str(), text.c_str());
        std::string key = kv.substr(0, eq);
        std::string value = kv.substr(eq + 1);
        if (key == "model") {
            t.model = value;
        } else if (key == "arrival") {
            if (value == "poisson")
                t.arrivals.process = ArrivalProcess::Poisson;
            else if (value == "fixed")
                t.arrivals.process = ArrivalProcess::Fixed;
            else if (value == "bursty")
                t.arrivals.process = ArrivalProcess::Bursty;
            else
                panic("tenant spec: unknown arrival '%s' (poisson|fixed|"
                      "bursty)", value.c_str());
        } else if (key == "qps") {
            t.arrivals.qps = parseDouble(value, text);
        } else if (key == "burst") {
            t.arrivals.burstiness = parseDouble(value, text);
        } else if (key == "batch") {
            unsigned b = parseUnsigned(value, text);
            recssd_assert(b > 0, "tenant spec: batch must be > 0 in '%s'",
                          text.c_str());
            t.shape.minBatch = b;
            t.shape.maxBatch = b;
        } else if (key == "tables") {
            unsigned n = parseUnsigned(value, text);
            t.shape.minTables = n;
            t.shape.maxTables = n;
        } else if (key == "pool") {
            double p = parseDouble(value, text);
            t.shape.minPoolingScale = p;
            t.shape.maxPoolingScale = p;
        } else if (key == "slo") {
            t.slo = parseTime(value, text);
        } else if (key == "res") {
            t.share.reservation = parseDouble(value, text);
        } else if (key == "weight") {
            t.share.weight = parseDouble(value, text);
        } else if (key == "limit") {
            t.share.limit = parseDouble(value, text);
        } else if (key == "queries") {
            t.queries = parseUnsigned(value, text);
        } else if (key == "update_rate") {
            t.updates.rate = parseDouble(value, text);
        } else if (key == "update_skew") {
            t.updates.skew = parseDouble(value, text);
        } else if (key == "seed") {
            t.seed = parseUnsigned(value, text);
        } else {
            panic("tenant spec: unknown key '%s' in '%s'", key.c_str(),
                  text.c_str());
        }
    }
    recssd_assert(t.arrivals.qps > 0.0,
                  "tenant spec: '%s' needs qps > 0", t.name.c_str());
    recssd_assert(t.share.weight > 0.0,
                  "tenant spec: '%s' needs weight > 0", t.name.c_str());
    recssd_assert(t.share.reservation >= 0.0 && t.share.limit >= 0.0,
                  "tenant spec: '%s' has a negative share", t.name.c_str());
    recssd_assert(t.share.limit == 0.0 ||
                      t.share.limit >= t.share.reservation,
                  "tenant spec: '%s' limit below its reservation",
                  t.name.c_str());
    recssd_assert(t.updates.rate >= 0.0 && t.updates.skew >= 0.0,
                  "tenant spec: '%s' has a negative update knob",
                  t.name.c_str());
    return t;
}

}  // namespace

TenantSet
TenantSet::parse(const std::string &spec)
{
    TenantSet set;
    std::stringstream ss(spec);
    std::string element;
    while (std::getline(ss, element, ';')) {
        // Trim whitespace (the file form funnels through here too).
        auto first = element.find_first_not_of(" \t\r\n");
        if (first == std::string::npos)
            continue;
        auto last = element.find_last_not_of(" \t\r\n");
        element = element.substr(first, last - first + 1);
        if (element.empty() || element[0] == '#')
            continue;
        set.tenants.push_back(parseTenant(element));
    }
    recssd_assert(!set.tenants.empty(), "tenant spec: no tenants in '%s'",
                  spec.c_str());
    for (std::size_t i = 0; i < set.tenants.size(); ++i) {
        for (std::size_t j = i + 1; j < set.tenants.size(); ++j) {
            recssd_assert(set.tenants[i].name != set.tenants[j].name,
                          "tenant spec: duplicate tenant name '%s'",
                          set.tenants[i].name.c_str());
        }
    }
    return set;
}

TenantSet
TenantSet::parseFile(const std::string &path)
{
    std::ifstream is(path);
    recssd_assert(is.good(), "tenant spec: cannot read '%s'",
                  path.c_str());
    std::ostringstream joined;
    std::string line;
    while (std::getline(is, line)) {
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        joined << line << ';';
    }
    return parse(joined.str());
}

TenantSet
TenantSet::load(const std::string &spec)
{
    std::ifstream probe(spec);
    if (probe.good())
        return parseFile(spec);
    return parse(spec);
}

}  // namespace recssd
