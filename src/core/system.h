/**
 * @file
 * The RecSSD system facade: one simulated host machine attached to one
 * or more simulated SSDs, with the embedding-table bookkeeping the
 * paper's stack needs. This is the entry point downstream users start
 * from (see examples/quickstart.cpp).
 *
 * Multi-device operation: `SystemConfig::shard` sets the device count
 * and table-partitioning policy. Each device is a fully independent
 * stack — flash array, FTL, SLS engine, NVMe controller, PCIe link,
 * UNVMe driver and queue allocator — sharing only the host CPU and the
 * event queue. With one device (the default) the system is
 * bit-identical to the historical single-SSD layout, including stat
 * names and trace tracks.
 */

#ifndef RECSSD_CORE_SYSTEM_H
#define RECSSD_CORE_SYSTEM_H

#include <iosfwd>
#include <memory>
#include <vector>

#include "src/common/event_queue.h"
#include "src/embedding/embedding_table.h"
#include "src/host/host_cpu.h"
#include "src/host/host_params.h"
#include "src/host/queue_allocator.h"
#include "src/host/unvme_driver.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/obs/utilization.h"
#include "src/shard/shard_router.h"
#include "src/ssd/ssd.h"

namespace recssd
{

struct SystemConfig
{
    SsdConfig ssd;
    HostParams host;
    /** Device fan-out + table partitioning (1 device = seed layout). */
    ShardConfig shard;
    /**
     * Optional per-device overrides: device d uses perSsd[d] instead
     * of `ssd` when the vector is long enough (failure-injection tests
     * perturb one shard this way). Trailing devices fall back to
     * `ssd`.
     */
    std::vector<SsdConfig> perSsd;
};

/**
 * Distribute a `FaultPlan`'s scenarios into per-device
 * `SsdConfig::faults` overrides (populating `perSsd` as needed). Each
 * device's injector gets a seed derived from the plan seed and its
 * index, so injectors on different devices draw independent streams.
 * A plan with no scenarios leaves the config untouched.
 */
void applyFaultPlan(SystemConfig &config, const FaultPlan &plan);

class System
{
  public:
    explicit System(const SystemConfig &config = SystemConfig());

    EventQueue &eq() { return eq_; }

    /** Devices in the system (== shard count). */
    unsigned numSsds() const { return static_cast<unsigned>(ssds_.size()); }

    /** @{ Per-device stacks; no argument = device 0 (seed accessors). */
    Ssd &ssd(unsigned d = 0) { return *ssds_.at(d); }
    UnvmeDriver &driver(unsigned d = 0) { return *drivers_.at(d); }
    QueueAllocator &queues(unsigned d = 0) { return *queueAllocs_.at(d); }
    /** @} */

    HostCpu &cpu() { return *cpu_; }

    /** Table -> device placement and SLS op splitting. */
    ShardRouter &router() { return *router_; }

    const SystemConfig &config() const { return config_; }

    /**
     * Create and bulk-load an embedding table across the shard set.
     * Each owning device's slice gets a consecutive
     * slsTableAlign-aligned logical slot on that device. The returned
     * descriptor is the global (unsharded) view; per-slice descriptors
     * live in `router()`.
     */
    EmbeddingTableDesc installTable(std::uint64_t rows, std::uint32_t dim,
                                    std::uint32_t attr_bytes = 4,
                                    std::uint32_t rows_per_page = 1);

    /**
     * Describe a host-DRAM-resident table (no SSD space consumed);
     * used for the hybrid placements and the DRAM baseline.
     */
    EmbeddingTableDesc describeDramTable(std::uint64_t rows,
                                         std::uint32_t dim,
                                         std::uint32_t attr_bytes = 4);

    /**
     * Drain the event queue. @return final simulated time. A running
     * metric sampler emits its closing sample at drain time so the
     * final partial interval is never dropped.
     */
    Tick run();

    /** Dump every component's statistics (counters, utilization). */
    void dumpStats(std::ostream &os);

    /** @{ Observability. */

    /** The system-wide span tracer (disabled until enableTracing). */
    Tracer &tracer() { return *tracer_; }

    /** Turn request tracing on/off across every component. */
    void enableTracing(bool on = true) { tracer_->setEnabled(on); }

    /** Every component stat under one hierarchical name space. */
    const StatRegistry &stats() const { return registry_; }

    /**
     * Mutable registry access for harnesses that publish run-scoped
     * series (e.g. the serve-mode SLO monitor). Default runs never
     * register anything here, so stats JSON stays byte-identical.
     */
    StatRegistry &statsMut() { return registry_; }

    /**
     * Dump every registered stat as one JSON object with
     * lexicographically sorted keys (diffable run to run). Multi-
     * device systems publish each device's subtree under "ssd<d>.*"
     * plus cross-device aggregates under the historical names.
     */
    void dumpStatsJson(std::ostream &os) const;

    /**
     * Begin sampling the stat registry every `interval` ticks of sim
     * time. Call before run(); rows accumulate until the queue drains.
     * At most one sampler per system.
     */
    MetricSampler &startMetricSampler(Tick interval);

    /** The running sampler, or nullptr if never started. */
    MetricSampler *metricSampler() { return sampler_.get(); }

    /**
     * Begin collecting per-resource utilization and queue-length
     * timelines (bucket width `bucket` ticks of sim time). Call
     * before run(); off by default so untouched runs pay one null
     * check per resource acquire.
     */
    UtilizationCollector &enableUtilization(Tick bucket);

    /** The running collector, or nullptr if never enabled. */
    UtilizationCollector *utilization() { return util_.get(); }
    /** @} */

  private:
    /** Register every component stat into `registry_`. */
    void buildRegistry();

    /**
     * RECSSD_AUDIT: with multiple SSDs, check every aggregate stat
     * equals the sum of its per-device subtree values.
     */
    void auditStatConsistency() const;

    /**
     * Register device d's component stats under `prefix`. The force
     * flags register zero-valued layout.* / fault.* columns even on
     * devices missing the component, so every device in a fault- or
     * layout-mode run exports the same JSONL columns.
     */
    void registerDevice(unsigned d, const std::string &prefix,
                        bool force_layout, bool force_fault);

    SystemConfig config_;
    EventQueue eq_;
    std::unique_ptr<HostCpu> cpu_;
    std::vector<std::unique_ptr<Ssd>> ssds_;
    std::vector<std::unique_ptr<UnvmeDriver>> drivers_;
    std::vector<std::unique_ptr<QueueAllocator>> queueAllocs_;
    std::unique_ptr<ShardRouter> router_;
    std::unique_ptr<Tracer> tracer_;
    StatRegistry registry_;
    bool audit_ = false;  ///< RECSSD_AUDIT cached at construction
    std::unique_ptr<MetricSampler> sampler_;
    std::unique_ptr<UtilizationCollector> util_;
    std::uint32_t nextTableId_ = 0;
    /** Next slsTableAlign slot, per device. */
    std::vector<std::uint64_t> nextTableSlot_;
};

}  // namespace recssd

#endif  // RECSSD_CORE_SYSTEM_H
