/**
 * @file
 * The RecSSD system facade: one simulated host machine attached to one
 * simulated SSD, with the embedding-table bookkeeping the paper's
 * stack needs. This is the entry point downstream users start from
 * (see examples/quickstart.cpp).
 */

#ifndef RECSSD_CORE_SYSTEM_H
#define RECSSD_CORE_SYSTEM_H

#include <iosfwd>
#include <memory>

#include "src/common/event_queue.h"
#include "src/embedding/embedding_table.h"
#include "src/host/host_cpu.h"
#include "src/host/host_params.h"
#include "src/host/queue_allocator.h"
#include "src/host/unvme_driver.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/ssd/ssd.h"

namespace recssd
{

struct SystemConfig
{
    SsdConfig ssd;
    HostParams host;
};

class System
{
  public:
    explicit System(const SystemConfig &config = SystemConfig());

    EventQueue &eq() { return eq_; }
    Ssd &ssd() { return *ssd_; }
    HostCpu &cpu() { return *cpu_; }
    UnvmeDriver &driver() { return *driver_; }
    QueueAllocator &queues() { return *queues_; }
    const SystemConfig &config() const { return config_; }

    /**
     * Create and bulk-load an embedding table on the SSD. Tables get
     * consecutive slsTableAlign-aligned logical slots.
     */
    EmbeddingTableDesc installTable(std::uint64_t rows, std::uint32_t dim,
                                    std::uint32_t attr_bytes = 4,
                                    std::uint32_t rows_per_page = 1);

    /**
     * Describe a host-DRAM-resident table (no SSD space consumed);
     * used for the hybrid placements and the DRAM baseline.
     */
    EmbeddingTableDesc describeDramTable(std::uint64_t rows,
                                         std::uint32_t dim,
                                         std::uint32_t attr_bytes = 4);

    /** Drain the event queue. @return final simulated time. */
    Tick run() { return eq_.run(); }

    /** Dump every component's statistics (counters, utilization). */
    void dumpStats(std::ostream &os);

    /** @{ Observability. */

    /** The system-wide span tracer (disabled until enableTracing). */
    Tracer &tracer() { return *tracer_; }

    /** Turn request tracing on/off across every component. */
    void enableTracing(bool on = true) { tracer_->setEnabled(on); }

    /** Every component stat under one hierarchical name space. */
    const StatRegistry &stats() const { return registry_; }

    /**
     * Dump every registered stat as one JSON object with
     * lexicographically sorted keys (diffable run to run).
     */
    void dumpStatsJson(std::ostream &os) const;

    /**
     * Begin sampling the stat registry every `interval` ticks of sim
     * time. Call before run(); rows accumulate until the queue drains.
     * At most one sampler per system.
     */
    MetricSampler &startMetricSampler(Tick interval);

    /** The running sampler, or nullptr if never started. */
    MetricSampler *metricSampler() { return sampler_.get(); }
    /** @} */

  private:
    /** Register every component stat into `registry_`. */
    void buildRegistry();

    SystemConfig config_;
    EventQueue eq_;
    std::unique_ptr<Ssd> ssd_;
    std::unique_ptr<HostCpu> cpu_;
    std::unique_ptr<UnvmeDriver> driver_;
    std::unique_ptr<QueueAllocator> queues_;
    std::unique_ptr<Tracer> tracer_;
    StatRegistry registry_;
    std::unique_ptr<MetricSampler> sampler_;
    std::uint32_t nextTableId_ = 0;
    std::uint64_t nextTableSlot_ = 0;
};

}  // namespace recssd

#endif  // RECSSD_CORE_SYSTEM_H
