/**
 * @file
 * Shared experiment plumbing for the benches: aligned-column table
 * printing so every bench emits the paper-shaped rows uniformly, and
 * small helpers for speedup math.
 */

#ifndef RECSSD_CORE_EXPERIMENT_H
#define RECSSD_CORE_EXPERIMENT_H

#include <iostream>
#include <string>
#include <vector>

namespace recssd
{

/** Fixed-width text table, printed incrementally row by row. */
class TablePrinter
{
  public:
    TablePrinter(std::string title, std::vector<std::string> columns,
                 std::ostream &os = std::cout);

    /** Print the title + header (called automatically on first row). */
    void header();

    void row(const std::vector<std::string> &cells);

    /** Format helpers. */
    static std::string fmt(double v, int precision = 2);
    static std::string fmtUs(double us);

  private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::size_t> widths_;
    std::ostream &os_;
    bool headerPrinted_ = false;
};

}  // namespace recssd

#endif  // RECSSD_CORE_EXPERIMENT_H
