#include "src/core/system.h"

#include <iomanip>
#include <ostream>
#include <string>

#include "src/common/logging.h"
#include "src/nvme/nvme_command.h"

namespace recssd
{

System::System(const SystemConfig &config) : config_(config)
{
    ssd_ = std::make_unique<Ssd>(eq_, config_.ssd);
    cpu_ = std::make_unique<HostCpu>(eq_, config_.host);
    driver_ = std::make_unique<UnvmeDriver>(eq_, *cpu_, ssd_->controller());
    queues_ = std::make_unique<QueueAllocator>(
        driver_->numQueues(), config_.host.balancedQueueGrants
                                  ? QueueAllocator::Policy::LeastUsed
                                  : QueueAllocator::Policy::Fifo);
    // Off by default: an unhooked tracer keeps every instrumentation
    // point a single null check, so timing is bit-identical to an
    // uninstrumented build.
    tracer_ = std::make_unique<Tracer>(eq_);
    buildRegistry();
}

void
System::buildRegistry()
{
    auto u64 = [](auto get) {
        return [get]() { return static_cast<double>(get()); };
    };
    StatRegistry &r = registry_;
    Ssd *ssd = ssd_.get();
    UnvmeDriver *drv = driver_.get();
    QueueAllocator *qa = queues_.get();
    HostCpu *cpu = cpu_.get();
    EventQueue *eq = &eq_;

    r.addScalar("sim", "now_us",
                [eq]() { return ticksToUs(eq->now()); });

    r.addScalar("flash", "page_reads",
                u64([ssd]() { return ssd->flash().pageReads(); }));
    r.addScalar("flash", "page_writes",
                u64([ssd]() { return ssd->flash().pageWrites(); }));
    r.addScalar("flash", "block_erases",
                u64([ssd]() { return ssd->flash().blockErases(); }));
    r.addScalar("flash", "read_retries",
                u64([ssd]() { return ssd->flash().readRetries(); }));

    r.addScalar("ftl", "host_reads",
                u64([ssd]() { return ssd->ftl().hostReads(); }));
    r.addScalar("ftl", "host_writes",
                u64([ssd]() { return ssd->ftl().hostWrites(); }));
    r.addScalar("ftl", "host_trims",
                u64([ssd]() { return ssd->ftl().hostTrims(); }));
    r.addScalar("ftl", "gc_runs",
                u64([ssd]() { return ssd->ftl().gcRuns(); }));
    r.addScalar("ftl", "gc_pages_migrated",
                u64([ssd]() { return ssd->ftl().gcPagesMigrated(); }));
    r.addScalar("ftl.page_cache", "hits",
                u64([ssd]() { return ssd->ftl().pageCache().hits(); }));
    r.addScalar("ftl.page_cache", "misses",
                u64([ssd]() { return ssd->ftl().pageCache().misses(); }));
    r.addScalar("ftl.cpu", "busy_us", [ssd]() {
        return ticksToUs(ssd->ftl().cpu().busyTime());
    });

    r.addScalar("sls", "requests",
                u64([ssd]() { return ssd->slsEngine().requests(); }));
    r.addScalar("sls", "flash_pages_read",
                u64([ssd]() { return ssd->slsEngine().flashPagesRead(); }));
    r.addScalar("sls", "page_cache_hits",
                u64([ssd]() { return ssd->slsEngine().pageCacheHits(); }));
    r.addScalar("sls", "embed_cache_hits",
                u64([ssd]() { return ssd->slsEngine().embedCacheHits(); }));

    r.addScalar("nvme", "commands",
                u64([ssd]() { return ssd->controller().commandsProcessed(); }));
    r.addScalar("pcie", "bytes_moved",
                u64([ssd]() { return ssd->pcie().bytesMoved(); }));
    r.addScalar("pcie", "busy_us",
                [ssd]() { return ticksToUs(ssd->pcie().busyTime()); });

    r.addScalar("driver", "commands",
                u64([drv]() { return drv->commandsIssued(); }));
    r.addScalar("host.cores", "busy_us",
                [cpu]() { return ticksToUs(cpu->busyTime()); });

    for (unsigned q = 0; q < driver_->numQueues(); ++q) {
        std::string group = "driver.queue" + std::to_string(q);
        r.addScalar(group, "commands",
                    u64([drv, q]() { return drv->commandsOnQueue(q); }));
        r.addGauge(group, "depth", &driver_->queuePair(q).depthGauge());
        r.addScalar(group, "grants",
                    u64([qa, q]() { return qa->grantsOn(q); }));
    }
}

void
System::dumpStatsJson(std::ostream &os) const
{
    registry_.writeJson(os);
}

MetricSampler &
System::startMetricSampler(Tick interval)
{
    recssd_assert(!sampler_, "metric sampler already started");
    sampler_ = std::make_unique<MetricSampler>(eq_, registry_, interval);
    sampler_->start();
    return *sampler_;
}

EmbeddingTableDesc
System::installTable(std::uint64_t rows, std::uint32_t dim,
                     std::uint32_t attr_bytes, std::uint32_t rows_per_page)
{
    EmbeddingTableDesc desc;
    desc.id = nextTableId_++;
    desc.baseLpn = nextTableSlot_++ * slsTableAlign;
    desc.rows = rows;
    desc.dim = dim;
    desc.attrBytes = attr_bytes;
    desc.rowsPerPage = rows_per_page;
    recssd::installTable(ssd_->ftl(), desc);
    return desc;
}

void
System::dumpStats(std::ostream &os)
{
    auto line = [&os](const char *name, std::uint64_t v) {
        os << "  " << std::left << std::setw(36) << name << v << "\n";
    };
    Tick now = eq_.now();
    os << "==== system stats @ " << ticksToMs(now) << "ms ====\n";
    line("flash.pageReads", ssd_->flash().pageReads());
    line("flash.pageWrites", ssd_->flash().pageWrites());
    line("flash.blockErases", ssd_->flash().blockErases());
    line("ftl.hostReads", ssd_->ftl().hostReads());
    line("ftl.hostWrites", ssd_->ftl().hostWrites());
    line("ftl.hostTrims", ssd_->ftl().hostTrims());
    line("ftl.gcRuns", ssd_->ftl().gcRuns());
    line("ftl.gcPagesMigrated", ssd_->ftl().gcPagesMigrated());
    line("ftl.pageCache.hits", ssd_->ftl().pageCache().hits());
    line("ftl.pageCache.misses", ssd_->ftl().pageCache().misses());
    line("sls.requests", ssd_->slsEngine().requests());
    line("sls.flashPagesRead", ssd_->slsEngine().flashPagesRead());
    line("sls.pageCacheHits", ssd_->slsEngine().pageCacheHits());
    line("sls.embedCacheHits", ssd_->slsEngine().embedCacheHits());
    line("nvme.commands", ssd_->controller().commandsProcessed());
    line("pcie.bytesMoved", ssd_->pcie().bytesMoved());
    line("driver.commands", driver_->commandsIssued());
    for (unsigned q = 0; q < driver_->numQueues(); ++q) {
        std::string prefix = "driver.queue" + std::to_string(q);
        line((prefix + ".commands").c_str(), driver_->commandsOnQueue(q));
        line((prefix + ".maxDepth").c_str(),
             driver_->queuePair(q).maxOutstanding());
        line((prefix + ".grants").c_str(), queues_->grantsOn(q));
    }
    if (now > 0) {
        auto pct = [now](Tick busy) {
            return 100.0 * static_cast<double>(busy) /
                   static_cast<double>(now);
        };
        os << "  " << std::left << std::setw(36) << "ftl.cpu.util%"
           << pct(ssd_->ftl().cpu().busyTime()) << "\n";
        os << "  " << std::left << std::setw(36) << "pcie.util%"
           << pct(ssd_->pcie().busyTime()) << "\n";
        os << "  " << std::left << std::setw(36) << "host.cores.util%"
           << pct(cpu_->busyTime()) / cpu_->cores() << "\n";
    }
}

EmbeddingTableDesc
System::describeDramTable(std::uint64_t rows, std::uint32_t dim,
                          std::uint32_t attr_bytes)
{
    EmbeddingTableDesc desc;
    desc.id = nextTableId_++;
    desc.baseLpn = nextTableSlot_++ * slsTableAlign;
    desc.rows = rows;
    desc.dim = dim;
    desc.attrBytes = attr_bytes;
    desc.rowsPerPage = 1;
    return desc;
}

}  // namespace recssd
