#include "src/core/system.h"

#include <iomanip>
#include <ostream>
#include <string>

#include "src/common/audit.h"
#include "src/common/logging.h"
#include "src/nvme/nvme_command.h"

namespace recssd
{

System::System(const SystemConfig &config) : config_(config)
{
    recssd_assert(config_.shard.numShards > 0, "need at least one device");
    unsigned n = config_.shard.numShards;

    cpu_ = std::make_unique<HostCpu>(eq_, config_.host);
    for (unsigned d = 0; d < n; ++d) {
        const SsdConfig &sc =
            d < config_.perSsd.size() ? config_.perSsd[d] : config_.ssd;
        // Single-device systems keep the historical unprefixed track
        // names so traces and stats stay bit-identical to the seed.
        std::string prefix = n > 1 ? "ssd" + std::to_string(d) + "." : "";
        ssds_.push_back(std::make_unique<Ssd>(eq_, sc, prefix));
        drivers_.push_back(std::make_unique<UnvmeDriver>(
            eq_, *cpu_, ssds_[d]->controller(), prefix));
        queueAllocs_.push_back(std::make_unique<QueueAllocator>(
            drivers_[d]->numQueues(), config_.host.balancedQueueGrants
                                          ? QueueAllocator::Policy::LeastUsed
                                          : QueueAllocator::Policy::Fifo));
    }
    nextTableSlot_.assign(n, 0);
    router_ = std::make_unique<ShardRouter>(config_.shard);
    // Off by default: an unhooked tracer keeps every instrumentation
    // point a single null check, so timing is bit-identical to an
    // uninstrumented build.
    tracer_ = std::make_unique<Tracer>(eq_);
    audit_ = auditEnabled();
    buildRegistry();
}

Tick
System::run()
{
    Tick end = eq_.run();
    // Close the sampled series at drain time: the final partial
    // interval would otherwise be dropped, and a run shorter than one
    // interval would export only the t=0 snapshot.
    if (sampler_)
        sampler_->finish();
    return end;
}

UtilizationCollector &
System::enableUtilization(Tick bucket)
{
    recssd_assert(!util_, "utilization collector already enabled");
    util_ = std::make_unique<UtilizationCollector>(eq_, bucket);
    util_->setEnabled(true);
    return *util_;
}

void
System::registerDevice(unsigned d, const std::string &prefix,
                       bool force_layout, bool force_fault)
{
    auto u64 = [](auto get) {
        return [get]() { return static_cast<double>(get()); };
    };
    StatRegistry &r = registry_;
    Ssd *ssd = ssds_[d].get();
    UnvmeDriver *drv = drivers_[d].get();
    QueueAllocator *qa = queueAllocs_[d].get();

    r.addScalar(prefix + "flash", "page_reads",
                u64([ssd]() { return ssd->flash().pageReads(); }));
    r.addScalar(prefix + "flash", "page_writes",
                u64([ssd]() { return ssd->flash().pageWrites(); }));
    r.addScalar(prefix + "flash", "block_erases",
                u64([ssd]() { return ssd->flash().blockErases(); }));
    r.addScalar(prefix + "flash", "read_retries",
                u64([ssd]() { return ssd->flash().readRetries(); }));

    r.addScalar(prefix + "ftl", "host_reads",
                u64([ssd]() { return ssd->ftl().hostReads(); }));
    r.addScalar(prefix + "ftl", "host_writes",
                u64([ssd]() { return ssd->ftl().hostWrites(); }));
    r.addScalar(prefix + "ftl", "host_trims",
                u64([ssd]() { return ssd->ftl().hostTrims(); }));
    r.addScalar(prefix + "ftl", "gc_runs",
                u64([ssd]() { return ssd->ftl().gcRuns(); }));
    r.addScalar(prefix + "ftl", "gc_pages_migrated",
                u64([ssd]() { return ssd->ftl().gcPagesMigrated(); }));
    r.addScalar(prefix + "ftl.page_cache", "hits",
                u64([ssd]() { return ssd->ftl().pageCache().hits(); }));
    r.addScalar(prefix + "ftl.page_cache", "misses",
                u64([ssd]() { return ssd->ftl().pageCache().misses(); }));
    r.addScalar(prefix + "ftl.cpu", "busy_us", [ssd]() {
        return ticksToUs(ssd->ftl().cpu().busyTime());
    });

    r.addScalar(prefix + "sls", "requests",
                u64([ssd]() { return ssd->slsEngine().requests(); }));
    r.addScalar(prefix + "sls", "flash_pages_read",
                u64([ssd]() { return ssd->slsEngine().flashPagesRead(); }));
    r.addScalar(prefix + "sls", "page_cache_hits",
                u64([ssd]() { return ssd->slsEngine().pageCacheHits(); }));
    r.addScalar(prefix + "sls", "embed_cache_hits",
                u64([ssd]() { return ssd->slsEngine().embedCacheHits(); }));

    // Layout counters exist only when the frequency-aware policy is
    // active, so log-policy configs export byte-identical stats JSON
    // (same pattern as the fault counters below). In a mixed system
    // where *any* device runs the policy, devices without it register
    // zero-valued columns so every device exports the same JSONL
    // schema and rows stay aligned.
    const LayoutManager *lay = ssd->ftl().layout();
    if (lay || force_layout) {
        auto layU64 = [lay, u64](auto get) -> StatRegistry::Getter {
            if (!lay)
                return []() { return 0.0; };
            return u64(get);
        };
        r.addScalar(prefix + "layout", "promotions",
                    layU64([lay]() { return lay->promotions(); }));
        r.addScalar(prefix + "layout", "demotions",
                    layU64([lay]() { return lay->demotions(); }));
        r.addScalar(prefix + "layout", "migrated_pages",
                    layU64([lay]() { return lay->migratedPages(); }));
        r.addScalar(prefix + "layout", "read_pins",
                    layU64([lay]() { return lay->readPins(); }));
        r.addScalar(prefix + "layout", "hot_pages_allocated",
                    layU64([ssd]() {
                        return ssd->ftl().blocks().hotPagesAllocated();
                    }));
        r.addScalar(prefix + "layout.hot_tier", "hits",
                    layU64([lay]() { return lay->tier().hits(); }));
        r.addScalar(prefix + "layout.hot_tier", "misses",
                    layU64([lay]() { return lay->tier().misses(); }));
        r.addScalar(prefix + "layout.hot_tier", "resident",
                    layU64([lay]() { return lay->tier().resident(); }));
        r.addScalar(prefix + "sls", "hot_tier_hits", layU64([ssd]() {
            return ssd->slsEngine().hotTierHits();
        }));
    }

    r.addScalar(prefix + "nvme", "commands",
                u64([ssd]() { return ssd->controller().commandsProcessed(); }));
    r.addScalar(prefix + "pcie", "bytes_moved",
                u64([ssd]() { return ssd->pcie().bytesMoved(); }));
    r.addScalar(prefix + "pcie", "busy_us",
                [ssd]() { return ticksToUs(ssd->pcie().busyTime()); });

    r.addScalar(prefix + "driver", "commands",
                u64([drv]() { return drv->commandsIssued(); }));

    // Fault counters exist only on devices with an armed injector, so
    // fault-free configs export byte-identical stats JSON. Fault-mode
    // runs register the columns on *every* device (zero-valued where
    // no injector is armed): a plan targeting only ssd1 used to leave
    // ssd0.fault.* missing from JSONL output entirely.
    const FaultInjector *fi = ssd->faultInjector();
    if (fi || force_fault) {
        auto fiU64 = [fi, u64](auto get) -> StatRegistry::Getter {
            if (!fi)
                return []() { return 0.0; };
            return u64(get);
        };
        r.addScalar(prefix + "fault", "die_stalls",
                    fiU64([fi]() { return fi->dieStalls(); }));
        r.addScalar(prefix + "fault", "fw_pauses",
                    fiU64([fi]() { return fi->firmwarePauses(); }));
        r.addScalar(prefix + "fault", "inflation_windows",
                    fiU64([fi]() { return fi->inflationWindows(); }));
        r.addScalar(prefix + "fault", "dropouts",
                    fiU64([fi]() { return fi->dropouts(); }));
        r.addScalar(prefix + "fault", "inflated_reads",
                    u64([ssd]() { return ssd->flash().inflatedReads(); }));
        r.addScalar(prefix + "fault", "dropped_commands", u64([ssd]() {
            return ssd->controller().droppedCommands();
        }));
    }

    for (unsigned q = 0; q < drv->numQueues(); ++q) {
        std::string group = prefix + "driver.queue" + std::to_string(q);
        r.addScalar(group, "commands",
                    u64([drv, q]() { return drv->commandsOnQueue(q); }));
        r.addGauge(group, "depth", &drv->queuePair(q).depthGauge());
        r.addScalar(group, "grants",
                    u64([qa, q]() { return qa->grantsOn(q); }));
    }
}

void
System::buildRegistry()
{
    StatRegistry &r = registry_;
    HostCpu *cpu = cpu_.get();
    EventQueue *eq = &eq_;

    r.addScalar("sim", "now_us",
                [eq]() { return ticksToUs(eq->now()); });

    // Schema-consistency flags: if any device carries the layout
    // policy or an armed fault injector, every device registers those
    // column groups (zero-valued where absent). Single-device systems
    // degenerate to the device's own state, so seed output is
    // untouched.
    bool any_layout = false;
    bool any_fault = false;
    for (unsigned d = 0; d < numSsds(); ++d) {
        any_layout = any_layout || ssds_[d]->ftl().layout() != nullptr;
        any_fault = any_fault || ssds_[d]->faultInjector() != nullptr;
    }

    if (numSsds() == 1) {
        // Seed layout: device 0's stats under the historical names.
        registerDevice(0, "", any_layout, any_fault);
    } else {
        // Per-device subtrees plus cross-device aggregates under the
        // historical names, so existing dashboards keep working and
        // the property tests can check per-shard totals sum up.
        for (unsigned d = 0; d < numSsds(); ++d)
            registerDevice(d, "ssd" + std::to_string(d) + ".", any_layout,
                           any_fault);

        auto sum = [this](auto per_device) {
            return [this, per_device]() {
                double total = 0.0;
                for (unsigned d = 0; d < numSsds(); ++d)
                    total += per_device(d);
                return total;
            };
        };
        auto dev = [this](unsigned d) { return ssds_[d].get(); };
        r.addScalar("flash", "page_reads", sum([dev](unsigned d) {
            return double(dev(d)->flash().pageReads());
        }));
        r.addScalar("flash", "page_writes", sum([dev](unsigned d) {
            return double(dev(d)->flash().pageWrites());
        }));
        r.addScalar("flash", "block_erases", sum([dev](unsigned d) {
            return double(dev(d)->flash().blockErases());
        }));
        r.addScalar("flash", "read_retries", sum([dev](unsigned d) {
            return double(dev(d)->flash().readRetries());
        }));
        r.addScalar("ftl", "host_reads", sum([dev](unsigned d) {
            return double(dev(d)->ftl().hostReads());
        }));
        r.addScalar("ftl", "host_writes", sum([dev](unsigned d) {
            return double(dev(d)->ftl().hostWrites());
        }));
        r.addScalar("sls", "requests", sum([dev](unsigned d) {
            return double(dev(d)->slsEngine().requests());
        }));
        r.addScalar("sls", "flash_pages_read", sum([dev](unsigned d) {
            return double(dev(d)->slsEngine().flashPagesRead());
        }));
        r.addScalar("nvme", "commands", sum([dev](unsigned d) {
            return double(dev(d)->controller().commandsProcessed());
        }));
        r.addScalar("pcie", "bytes_moved", sum([dev](unsigned d) {
            return double(dev(d)->pcie().bytesMoved());
        }));
        r.addScalar("driver", "commands", sum([this](unsigned d) {
            return double(drivers_[d]->commandsIssued());
        }));
    }

    r.addScalar("host.cores", "busy_us",
                [cpu]() { return ticksToUs(cpu->busyTime()); });
}

void
System::auditStatConsistency() const
{
    // The aggregate scalars registered for multi-SSD systems must
    // equal the sum over the per-device "ssd<d>." subtrees.  Stats are
    // integral counters surfaced as doubles, so exact compare is safe.
    static const char *const kAggregates[] = {
        "flash.page_reads",   "flash.page_writes", "flash.block_erases",
        "flash.read_retries", "ftl.host_reads",    "ftl.host_writes",
        "sls.requests",       "sls.flash_pages_read", "nvme.commands",
        "pcie.bytes_moved",   "driver.commands",
    };
    for (const char *name : kAggregates) {
        double total = registry_.valueOf(name);
        double summed = 0.0;
        for (unsigned d = 0; d < numSsds(); ++d)
            summed += registry_.valueOf("ssd" + std::to_string(d) + "." +
                                        name);
        recssd_assert(total == summed,
                      "audit: aggregate %s = %.0f but per-device "
                      "subtrees sum to %.0f",
                      name, total, summed);
    }
}

void
System::dumpStatsJson(std::ostream &os) const
{
    if (audit_ && numSsds() > 1)
        auditStatConsistency();
    registry_.writeJson(os);
}

MetricSampler &
System::startMetricSampler(Tick interval)
{
    recssd_assert(!sampler_, "metric sampler already started");
    sampler_ = std::make_unique<MetricSampler>(eq_, registry_, interval);
    sampler_->start();
    return *sampler_;
}

EmbeddingTableDesc
System::installTable(std::uint64_t rows, std::uint32_t dim,
                     std::uint32_t attr_bytes, std::uint32_t rows_per_page)
{
    EmbeddingTableDesc global;
    global.id = nextTableId_++;
    global.rows = rows;
    global.dim = dim;
    global.attrBytes = attr_bytes;
    global.rowsPerPage = rows_per_page;
    const ShardedTable &st =
        router_->addTable(global, [this](unsigned shard) {
            return nextTableSlot_.at(shard)++ * slsTableAlign;
        });
    for (const ShardSlice &slice : st.slices) {
        recssd::installTable(ssds_[slice.shard]->ftl(), slice.desc);
        // Replica copies: same rows + rowBase, so the synthetic
        // content is bit-identical to the primary's.
        for (const ReplicaSlice &rep : slice.replicas)
            recssd::installTable(ssds_[rep.shard]->ftl(), rep.desc);
    }
    return st.global;
}

void
System::dumpStats(std::ostream &os)
{
    Tick now = eq_.now();
    auto line = [&os](const std::string &name, std::uint64_t v) {
        os << "  " << std::left << std::setw(36) << name << v << "\n";
    };
    auto util = [&os, now](const std::string &name, double v) {
        os << "  " << std::left << std::setw(36) << name << v << "\n";
    };
    auto pct = [now](Tick busy) {
        return 100.0 * static_cast<double>(busy) / static_cast<double>(now);
    };

    auto device = [&](unsigned d, const std::string &p) {
        Ssd *ssd = ssds_[d].get();
        UnvmeDriver *drv = drivers_[d].get();
        QueueAllocator *qa = queueAllocs_[d].get();
        line(p + "flash.pageReads", ssd->flash().pageReads());
        line(p + "flash.pageWrites", ssd->flash().pageWrites());
        line(p + "flash.blockErases", ssd->flash().blockErases());
        line(p + "ftl.hostReads", ssd->ftl().hostReads());
        line(p + "ftl.hostWrites", ssd->ftl().hostWrites());
        line(p + "ftl.hostTrims", ssd->ftl().hostTrims());
        line(p + "ftl.gcRuns", ssd->ftl().gcRuns());
        line(p + "ftl.gcPagesMigrated", ssd->ftl().gcPagesMigrated());
        line(p + "ftl.pageCache.hits", ssd->ftl().pageCache().hits());
        line(p + "ftl.pageCache.misses", ssd->ftl().pageCache().misses());
        line(p + "sls.requests", ssd->slsEngine().requests());
        line(p + "sls.flashPagesRead", ssd->slsEngine().flashPagesRead());
        line(p + "sls.pageCacheHits", ssd->slsEngine().pageCacheHits());
        line(p + "sls.embedCacheHits", ssd->slsEngine().embedCacheHits());
        if (const LayoutManager *lay = ssd->ftl().layout()) {
            line(p + "layout.promotions", lay->promotions());
            line(p + "layout.demotions", lay->demotions());
            line(p + "layout.migratedPages", lay->migratedPages());
            line(p + "layout.readPins", lay->readPins());
            line(p + "layout.hotPagesAllocated",
                 ssd->ftl().blocks().hotPagesAllocated());
            line(p + "layout.hotTier.hits", lay->tier().hits());
            line(p + "layout.hotTier.misses", lay->tier().misses());
            line(p + "layout.hotTier.resident", lay->tier().resident());
            line(p + "sls.hotTierHits", ssd->slsEngine().hotTierHits());
        }
        line(p + "nvme.commands", ssd->controller().commandsProcessed());
        line(p + "pcie.bytesMoved", ssd->pcie().bytesMoved());
        line(p + "driver.commands", drv->commandsIssued());
        if (const FaultInjector *fi = ssd->faultInjector()) {
            line(p + "fault.dieStalls", fi->dieStalls());
            line(p + "fault.fwPauses", fi->firmwarePauses());
            line(p + "fault.inflationWindows", fi->inflationWindows());
            line(p + "fault.dropouts", fi->dropouts());
            line(p + "fault.inflatedReads", ssd->flash().inflatedReads());
            line(p + "fault.droppedCommands",
                 ssd->controller().droppedCommands());
        }
        for (unsigned q = 0; q < drv->numQueues(); ++q) {
            std::string prefix = p + "driver.queue" + std::to_string(q);
            line(prefix + ".commands", drv->commandsOnQueue(q));
            line(prefix + ".maxDepth", drv->queuePair(q).maxOutstanding());
            line(prefix + ".grants", qa->grantsOn(q));
        }
    };

    os << "==== system stats @ " << ticksToMs(now) << "ms ====\n";
    if (numSsds() == 1) {
        device(0, "");
        if (now > 0) {
            util("ftl.cpu.util%", pct(ssds_[0]->ftl().cpu().busyTime()));
            util("pcie.util%", pct(ssds_[0]->pcie().busyTime()));
            util("host.cores.util%", pct(cpu_->busyTime()) / cpu_->cores());
        }
        return;
    }

    for (unsigned d = 0; d < numSsds(); ++d) {
        std::string p = "ssd" + std::to_string(d) + ".";
        device(d, p);
        if (now > 0) {
            util(p + "ftl.cpu.util%", pct(ssds_[d]->ftl().cpu().busyTime()));
            util(p + "pcie.util%", pct(ssds_[d]->pcie().busyTime()));
        }
    }
    if (now > 0)
        util("host.cores.util%", pct(cpu_->busyTime()) / cpu_->cores());
}

void
applyFaultPlan(SystemConfig &config, const FaultPlan &plan)
{
    if (plan.scenarios.empty())
        return;
    recssd_assert(plan.maxDevice() < config.shard.numShards,
                  "fault plan targets device %u but the system has %u",
                  plan.maxDevice(), config.shard.numShards);
    if (config.perSsd.size() < config.shard.numShards)
        config.perSsd.resize(config.shard.numShards, config.ssd);
    for (unsigned d = 0; d < config.shard.numShards; ++d) {
        config.perSsd[d].faults.scenarios = plan.forDevice(d);
        config.perSsd[d].faults.seed = plan.seed + d;
    }
}

EmbeddingTableDesc
System::describeDramTable(std::uint64_t rows, std::uint32_t dim,
                          std::uint32_t attr_bytes)
{
    EmbeddingTableDesc desc;
    desc.id = nextTableId_++;
    // DRAM tables burn a device-0 slot so the seed's installTable /
    // describeDramTable interleaving produces identical baseLpns.
    desc.baseLpn = nextTableSlot_.at(0)++ * slsTableAlign;
    desc.rows = rows;
    desc.dim = dim;
    desc.attrBytes = attr_bytes;
    desc.rowsPerPage = 1;
    return desc;
}

}  // namespace recssd
