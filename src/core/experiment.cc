#include "src/core/experiment.h"

#include <cstdio>
#include <iomanip>

namespace recssd
{

TablePrinter::TablePrinter(std::string title,
                           std::vector<std::string> columns,
                           std::ostream &os)
    : title_(std::move(title)), columns_(std::move(columns)), os_(os)
{
    for (const auto &c : columns_)
        widths_.push_back(std::max<std::size_t>(c.size() + 2, 12));
}

void
TablePrinter::header()
{
    if (headerPrinted_)
        return;
    headerPrinted_ = true;
    os_ << "\n== " << title_ << " ==\n";
    for (std::size_t i = 0; i < columns_.size(); ++i)
        os_ << std::left << std::setw(static_cast<int>(widths_[i]))
            << columns_[i];
    os_ << "\n";
    std::size_t total = 0;
    for (auto w : widths_)
        total += w;
    os_ << std::string(total, '-') << "\n";
}

void
TablePrinter::row(const std::vector<std::string> &cells)
{
    header();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        std::size_t w = i < widths_.size() ? widths_[i] : 12;
        os_ << std::left << std::setw(static_cast<int>(w)) << cells[i];
    }
    os_ << "\n" << std::flush;
}

std::string
TablePrinter::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::fmtUs(double us)
{
    char buf[64];
    if (us >= 100000.0)
        std::snprintf(buf, sizeof(buf), "%.1fms", us / 1000.0);
    else
        std::snprintf(buf, sizeof(buf), "%.1fus", us);
    return buf;
}

}  // namespace recssd
