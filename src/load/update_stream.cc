#include "src/load/update_stream.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace recssd
{

UpdateStream::UpdateStream(const UpdateStreamSpec &spec,
                           std::vector<std::uint64_t> tableRows,
                           std::uint64_t seed)
    : spec_(spec), tableRows_(std::move(tableRows)), rng_(seed)
{
    recssd_assert(spec_.enabled(), "update stream constructed while off");
    recssd_assert(!tableRows_.empty(), "update stream needs tables");
    std::uint64_t total = 0;
    cumRows_.reserve(tableRows_.size());
    for (std::uint64_t rows : tableRows_) {
        recssd_assert(rows > 0, "update stream table with zero rows");
        total += rows;
        cumRows_.push_back(total);
    }
    meanGapNs_ = 1e9 / spec_.rate;
    if (spec_.skew > 0.0) {
        zipf_.reserve(tableRows_.size());
        for (std::uint64_t rows : tableRows_)
            zipf_.push_back(std::make_unique<ZipfSampler>(rows, spec_.skew));
    }
}

UpdateDesc
UpdateStream::next()
{
    Tick gap = std::max<Tick>(1,
                              static_cast<Tick>(
                                  std::llround(rng_.exponential(meanGapNs_))));
    clock_ += gap;

    // Weighted table pick: a uniform draw over the global row space,
    // mapped back through the prefix sums.
    std::uint64_t pick = rng_.uniformInt(cumRows_.back());
    auto it = std::upper_bound(cumRows_.begin(), cumRows_.end(), pick);
    auto table = static_cast<std::uint32_t>(it - cumRows_.begin());

    RowId row = spec_.skew > 0.0 ? zipf_[table]->sample(rng_)
                                 : rng_.uniformInt(tableRows_[table]);

    UpdateDesc out;
    out.arrival = clock_;
    out.tableIdx = table;
    out.row = row;
    out.seq = seq_++;
    return out;
}

std::vector<UpdateDesc>
UpdateStream::until(Tick horizon)
{
    std::vector<UpdateDesc> out;
    for (;;) {
        UpdateDesc d = next();
        if (d.arrival > horizon)
            return out;
        out.push_back(d);
    }
}

}  // namespace recssd
