/**
 * @file
 * Exact tail-latency accounting for serving experiments.
 *
 * The power-of-two `Histogram` in src/common/stats is fine for device
 * internals but too coarse for SLO work, where the difference between
 * p95 and p99 is the whole result. This recorder keeps every sample
 * and computes exact nearest-rank percentiles, plus the throughput a
 * completion stream sustained.
 */

#ifndef RECSSD_LOAD_LATENCY_RECORDER_H
#define RECSSD_LOAD_LATENCY_RECORDER_H

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace recssd
{

class LatencyRecorder
{
  public:
    void record(Tick latency);
    void reset();

    std::size_t count() const { return samples_.size(); }
    double meanUs() const;
    double maxUs() const;

    /**
     * Exact nearest-rank percentile: the smallest recorded sample
     * such that at least q of the samples are <= it (so with 100
     * samples, percentile(0.99) is the 99th smallest).
     * @param q in (0, 1].
     */
    Tick percentile(double q) const;
    double percentileUs(double q) const;

    /** Fraction of samples at or under `slo`. */
    double fractionWithin(Tick slo) const;

    const std::vector<Tick> &samples() const { return samples_; }

  private:
    std::vector<Tick> samples_;
    mutable std::vector<Tick> sorted_;  ///< lazily (re)built
    mutable bool sortedValid_ = false;

    void ensureSorted() const;
};

}  // namespace recssd

#endif  // RECSSD_LOAD_LATENCY_RECORDER_H
