/**
 * @file
 * Seeded online embedding-update stream.
 *
 * Production recommenders continuously push retrained rows while
 * serving reads. This generator models that write path as an open-loop
 * Poisson stream of per-row delta writes: a configurable aggregate
 * rate, a Zipf row-popularity skew (retraining touches hot rows more
 * often), and row targets spread across the model's tables in
 * proportion to their row counts. The stream owns its Rng, so enabling
 * updates never perturbs the query-arrival sequence of the same seed.
 */

#ifndef RECSSD_LOAD_UPDATE_STREAM_H
#define RECSSD_LOAD_UPDATE_STREAM_H

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"

namespace recssd
{

/** Configuration of the online-update stream (off by default). */
struct UpdateStreamSpec
{
    /** Aggregate update rate, rows per simulated second; 0 = off. */
    double rate = 0.0;
    /** Zipf skew of updated rows within a table; 0 = uniform. */
    double skew = 0.0;
    /** Row updates coalesced into one flushed write batch. */
    unsigned flushRows = 8;
    /** Flush timeout: the oldest pending update never waits longer. */
    Tick maxWait = 500 * usec;
    /** Concurrent flushes in flight before the stream backpressures. */
    unsigned maxInFlight = 2;
    /** Stream seed (combined with the serve seed by the flusher). */
    std::uint64_t seed = 1;
    /** Owning tenant (index into the run's `TenantSet`). The
     *  multi-tenant harness charges this tenant's QoS limit budget for
     *  every flush, so a mixed read-write antagonist is throttled by
     *  the same share triple as its reads. Single-tenant harnesses
     *  leave it 0 and never read it. */
    std::uint32_t tenant = 0;

    bool enabled() const { return rate > 0.0; }
};

/** One generated row update. */
struct UpdateDesc
{
    Tick arrival = 0;
    /** Index into the caller's table list (not the table id). */
    std::uint32_t tableIdx = 0;
    /** Table-local row to rewrite. */
    RowId row = 0;
    /** Global sequence number (feeds the per-row version counter). */
    std::uint64_t seq = 0;
};

/**
 * Deterministic generator for the stream: Poisson inter-arrivals at
 * `spec.rate`, table choice weighted by row count, row choice Zipf-
 * skewed (rank 0 hottest) or uniform.
 */
class UpdateStream
{
  public:
    /** `tableRows[i]` is the row count of the caller's i-th table. */
    UpdateStream(const UpdateStreamSpec &spec,
                 std::vector<std::uint64_t> tableRows, std::uint64_t seed);

    /** Generate the next update (strictly increasing arrivals). */
    UpdateDesc next();

    /** Generate every update arriving at or before `horizon`. */
    std::vector<UpdateDesc> until(Tick horizon);

    const UpdateStreamSpec &spec() const { return spec_; }

  private:
    UpdateStreamSpec spec_;
    std::vector<std::uint64_t> tableRows_;
    std::vector<std::uint64_t> cumRows_;  ///< inclusive prefix sums
    Rng rng_;
    /** Per-table samplers, built lazily only when skew > 0. */
    std::vector<std::unique_ptr<ZipfSampler>> zipf_;
    double meanGapNs_;
    Tick clock_ = 0;
    std::uint64_t seq_ = 0;
};

}  // namespace recssd

#endif  // RECSSD_LOAD_UPDATE_STREAM_H
