#include "src/load/load_gen.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace recssd
{

namespace
{

/** Probability of the fast (burst) phase of the hyperexponential. */
constexpr double burstShortProb = 0.9;

}  // namespace

LoadGenerator::LoadGenerator(const ArrivalSpec &arrivals,
                             const QueryShapeSpec &shape, std::uint64_t seed)
    : arrivals_(arrivals), shape_(shape), rng_(seed)
{
    recssd_assert(arrivals_.qps > 0.0, "arrival rate must be positive");
    recssd_assert(arrivals_.burstiness >= 1.0,
                  "burstiness below 1 would be smoother than Poisson");
    recssd_assert(shape_.minBatch >= 1 && shape_.minBatch <= shape_.maxBatch,
                  "bad batch-size range");
    recssd_assert(shape_.minTables <= shape_.maxTables,
                  "bad tables-touched range");
    recssd_assert(shape_.minPoolingScale > 0.0 &&
                      shape_.minPoolingScale <= shape_.maxPoolingScale,
                  "bad pooling-scale range");
    meanGapNs_ = static_cast<double>(sec) / arrivals_.qps;
}

Tick
LoadGenerator::nextGap()
{
    double gap_ns = meanGapNs_;
    switch (arrivals_.process) {
      case ArrivalProcess::Fixed:
        break;
      case ArrivalProcess::Poisson:
        gap_ns = rng_.exponential(meanGapNs_);
        break;
      case ArrivalProcess::Bursty: {
        // Two-phase hyperexponential with overall mean preserved: a
        // short phase B times faster than the mean and a long phase
        // stretched to compensate. B = 1 collapses both phases onto
        // the mean, i.e. a plain Poisson process.
        double b = arrivals_.burstiness;
        double short_mean = meanGapNs_ / b;
        double long_mean = meanGapNs_ *
                           (1.0 - burstShortProb / b) /
                           (1.0 - burstShortProb);
        gap_ns = rng_.bernoulli(burstShortProb)
                     ? rng_.exponential(short_mean)
                     : rng_.exponential(long_mean);
        break;
      }
    }
    return std::max<Tick>(1, static_cast<Tick>(gap_ns));
}

QueryShape
LoadGenerator::nextShape()
{
    QueryShape s;
    s.tenantId = tenant_;
    s.batchSize = static_cast<unsigned>(
        rng_.uniformRange(shape_.minBatch, shape_.maxBatch));
    if (shape_.maxTables == 0) {
        s.tablesTouched = ~0u;
    } else {
        s.tablesTouched = static_cast<unsigned>(
            rng_.uniformRange(shape_.minTables, shape_.maxTables));
    }
    if (shape_.minPoolingScale == shape_.maxPoolingScale) {
        s.poolingScale = shape_.minPoolingScale;
    } else {
        s.poolingScale = shape_.minPoolingScale +
                         rng_.uniformDouble() * (shape_.maxPoolingScale -
                                                 shape_.minPoolingScale);
    }
    return s;
}

std::vector<QueryDesc>
LoadGenerator::schedule(unsigned count)
{
    std::vector<QueryDesc> out;
    out.reserve(count);
    Tick now = 0;
    for (unsigned i = 0; i < count; ++i) {
        now += nextGap();
        out.push_back(QueryDesc{now, nextShape()});
    }
    return out;
}

}  // namespace recssd
