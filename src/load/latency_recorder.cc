#include "src/load/latency_recorder.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace recssd
{

void
LatencyRecorder::record(Tick latency)
{
    samples_.push_back(latency);
    sortedValid_ = false;
}

void
LatencyRecorder::reset()
{
    samples_.clear();
    sorted_.clear();
    sortedValid_ = false;
}

double
LatencyRecorder::meanUs() const
{
    if (samples_.empty())
        return 0.0;
    double total = 0.0;
    for (Tick t : samples_)
        total += ticksToUs(t);
    return total / static_cast<double>(samples_.size());
}

double
LatencyRecorder::maxUs() const
{
    if (samples_.empty())
        return 0.0;
    return ticksToUs(*std::max_element(samples_.begin(), samples_.end()));
}

void
LatencyRecorder::ensureSorted() const
{
    if (sortedValid_)
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
}

Tick
LatencyRecorder::percentile(double q) const
{
    recssd_assert(q > 0.0 && q <= 1.0, "percentile out of range");
    if (samples_.empty())
        return 0;
    ensureSorted();
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(sorted_.size())));
    rank = std::max<std::size_t>(1, std::min(rank, sorted_.size()));
    return sorted_[rank - 1];
}

double
LatencyRecorder::percentileUs(double q) const
{
    return ticksToUs(percentile(q));
}

double
LatencyRecorder::fractionWithin(Tick slo) const
{
    if (samples_.empty())
        return 0.0;
    std::size_t n = 0;
    for (Tick t : samples_)
        n += t <= slo ? 1 : 0;
    return static_cast<double>(n) / static_cast<double>(samples_.size());
}

}  // namespace recssd
