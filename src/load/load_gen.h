/**
 * @file
 * Open-loop load generation.
 *
 * DeepRecSys-style traffic synthesis (Gupta et al., the serving
 * infrastructure RecSSD's models come from): queries arrive on a
 * configurable arrival process — Poisson, fixed interval, or a bursty
 * hyperexponential whose coefficient of variation is a knob — and each
 * query independently draws its own shape (samples per query, tables
 * touched, pooling-factor scale). Everything is deterministic from the
 * seed so serving experiments replay exactly.
 */

#ifndef RECSSD_LOAD_LOAD_GEN_H
#define RECSSD_LOAD_LOAD_GEN_H

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"

namespace recssd
{

/** Inter-arrival time process of the open-loop generator. */
enum class ArrivalProcess
{
    Fixed,    ///< deterministic gaps of exactly 1/qps (CoV 0)
    Poisson,  ///< exponential gaps (CoV 1): independent user traffic
    Bursty,   ///< hyperexponential gaps (CoV > 1): flash-crowd traffic
};

struct ArrivalSpec
{
    ArrivalProcess process = ArrivalProcess::Poisson;
    /** Mean arrival rate (queries per simulated second). */
    double qps = 100.0;
    /**
     * Bursty: burst factor B >= 1. Gaps are drawn from a two-phase
     * hyperexponential with mean 1/qps whose short phase is B times
     * faster than the mean; B = 1 degenerates to Poisson, larger B
     * raises the coefficient of variation monotonically.
     */
    double burstiness = 4.0;
};

/** Per-query work shape drawn by the generator. */
struct QueryShape
{
    /** Samples (inference requests) in this query. */
    unsigned batchSize = 16;
    /** Embedding tables the query touches (capped at the model). */
    unsigned tablesTouched = ~0u;
    /** Multiplier on every table's lookups-per-sample. */
    double poolingScale = 1.0;
    /** Owning tenant (index into the run's `TenantSet`); 0 for
     *  single-tenant harnesses, which never read it. */
    std::uint32_t tenantId = 0;
    /** Observability: trace request id for this query's execution
     *  (assigned by the batch scheduler; 0 = allocate fresh). */
    std::uint64_t traceId = 0;
};

/** Distribution the per-query shapes are drawn from (all uniform). */
struct QueryShapeSpec
{
    unsigned minBatch = 8;
    unsigned maxBatch = 8;
    /** 0 = touch every table the model has. */
    unsigned minTables = 0;
    unsigned maxTables = 0;
    double minPoolingScale = 1.0;
    double maxPoolingScale = 1.0;
};

/** One generated query: when it arrives and what it asks for. */
struct QueryDesc
{
    Tick arrival = 0;
    QueryShape shape;
};

class LoadGenerator
{
  public:
    LoadGenerator(const ArrivalSpec &arrivals, const QueryShapeSpec &shape,
                  std::uint64_t seed);

    /** Stamp every generated shape with `tenant` (multi-tenant
     *  harnesses; the default 0 leaves single-tenant runs untouched). */
    void setTenant(std::uint32_t tenant) { tenant_ = tenant; }

    /** Next inter-arrival gap in ticks (>= 1). */
    Tick nextGap();

    /** Draw one query shape. */
    QueryShape nextShape();

    /**
     * Generate a full arrival schedule of `count` queries; the first
     * arrival lands one gap after tick 0.
     */
    std::vector<QueryDesc> schedule(unsigned count);

    const ArrivalSpec &arrivals() const { return arrivals_; }
    const QueryShapeSpec &shape() const { return shape_; }

  private:
    ArrivalSpec arrivals_;
    QueryShapeSpec shape_;
    Rng rng_;
    double meanGapNs_;
    std::uint32_t tenant_ = 0;
};

}  // namespace recssd

#endif  // RECSSD_LOAD_LOAD_GEN_H
