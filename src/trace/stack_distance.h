/**
 * @file
 * LRU stack-distance analysis of an access sequence.
 *
 * Used to validate the locality trace generator against the paper's
 * calibration points (unique fraction, reuse-distance distribution)
 * and by the characterization benches.
 */

#ifndef RECSSD_TRACE_STACK_DISTANCE_H
#define RECSSD_TRACE_STACK_DISTANCE_H

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"

namespace recssd
{

class StackDistanceAnalyzer
{
  public:
    /** Distance reported for first-time (cold) accesses. */
    static constexpr std::uint64_t coldDistance = ~std::uint64_t(0);

    /** Feed one access; @return its LRU stack distance. */
    std::uint64_t access(std::uint64_t key);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t uniqueKeys() const { return seen_.size(); }

    /** Fraction of accesses that were first-time touches. */
    double
    uniqueFraction() const
    {
        return accesses_ ? static_cast<double>(uniqueKeys()) / accesses_
                         : 0.0;
    }

    /**
     * Fraction of accesses an LRU cache holding `capacity` distinct
     * keys would have hit (reuse distance < capacity; cold accesses
     * always miss).
     */
    double hitRateAtCapacity(std::uint64_t capacity) const;

  private:
    /** MRU-ordered list of keys (front = most recent). */
    std::vector<std::uint64_t> stack_;
    std::unordered_set<std::uint64_t> seen_;
    std::uint64_t accesses_ = 0;
    /** countByDistance_[d] = reuses observed at stack distance d. */
    std::vector<std::uint64_t> countByDistance_;
};

}  // namespace recssd

#endif  // RECSSD_TRACE_STACK_DISTANCE_H
