#include "src/trace/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace recssd
{

double
uniqueFractionForK(double k)
{
    // Calibration: u(0)=0.13, u(2)=0.72, exponential saturation
    // u(k) = 1 - a*exp(-b*k). Solving the K=0 and K=2 anchors gives
    // a = 0.87, b = 0.5*ln(0.87/0.28) ≈ 0.567; u(1) ≈ 0.507, close to
    // the paper's 54%.
    constexpr double a = 0.87;
    constexpr double b = 0.56687;
    if (k < 0.0)
        k = 0.0;
    return 1.0 - a * std::exp(-b * k);
}

TraceGenerator::TraceGenerator(const TraceSpec &spec)
    : spec_(spec), rng_(spec.seed)
{
    recssd_assert(spec_.universe > 0, "empty id universe");
    switch (spec_.kind) {
      case TraceKind::Zipf:
        zipf_ = std::make_unique<ZipfSampler>(spec_.universe,
                                              spec_.zipfAlpha);
        break;
      case TraceKind::LocalityK:
        pNew_ = uniqueFractionForK(spec_.k);
        recssd_assert(spec_.activeUniverse > 0, "empty active universe");
        break;
      default:
        break;
    }
}

RowId
TraceGenerator::next()
{
    switch (spec_.kind) {
      case TraceKind::Sequential: {
        RowId id = cursor_ % spec_.universe;
        ++cursor_;
        return id;
      }
      case TraceKind::Strided: {
        RowId id = cursor_ % spec_.universe;
        cursor_ += spec_.stride;
        return id;
      }
      case TraceKind::Uniform:
        return rng_.uniformInt(spec_.universe);
      case TraceKind::Zipf:
        return zipf_->sample(rng_);
      case TraceKind::LocalityK:
        return nextLocality();
    }
    panic("unreachable trace kind");
}

void
TraceGenerator::commitRequest()
{
    constexpr std::size_t kStackCap = 4096;
    // Most-recent first so this request's ids become the top of the
    // reuse stack.
    for (auto it = pending_.rbegin(); it != pending_.rend(); ++it) {
        auto pos = std::find(stack_.begin(), stack_.end(), *it);
        if (pos != stack_.end())
            stack_.erase(pos);
        stack_.insert(stack_.begin(), *it);
    }
    pending_.clear();
    if (stack_.size() > kStackCap)
        stack_.resize(kStackCap);
}

RowId
TraceGenerator::nextLocality()
{
    RowId id;
    if (stack_.empty() || rng_.bernoulli(pNew_)) {
        // Fresh id: cycle through the active universe, which keeps
        // long-run popularity near uniform (so a static partition of
        // p% of the rows captures ~p% of the traffic, §6.3).
        id = cursor_ % std::min(spec_.activeUniverse, spec_.universe);
        ++cursor_;
    } else {
        // Reuse: exponential stack distance over ids of *previous*
        // requests (promotion to MRU happens at request commit).
        auto d = static_cast<std::size_t>(
            rng_.exponential(spec_.reuseStackMean));
        d = std::min(d, stack_.size() - 1);
        id = stack_[d];
    }
    pending_.push_back(id);
    if (!inRequest_)
        commitRequest();
    return id;
}

std::vector<std::vector<RowId>>
TraceGenerator::nextBatch(std::size_t batch, std::size_t lookups)
{
    std::vector<std::vector<RowId>> out(batch);
    for (auto &list : out) {
        list.reserve(lookups);
        if (spec_.kind == TraceKind::LocalityK) {
            inRequest_ = true;
            for (std::size_t i = 0; i < lookups; ++i)
                list.push_back(next());
            inRequest_ = false;
            commitRequest();
        } else {
            for (std::size_t i = 0; i < lookups; ++i)
                list.push_back(next());
        }
    }
    return out;
}

}  // namespace recssd
