/**
 * @file
 * Page-granularity reuse analysis (the tooling behind Figs 3-4).
 *
 * Figure 3 plots cumulative hit counts over pages (sorted by hit
 * count) at 256B/1KB/4KB granularities; Figure 4 sweeps a 16-way LRU
 * 4KB page cache over capacities. The paper's input was proprietary
 * production logs; the benches feed these analyzers Zipf-distributed
 * synthetic traces instead, reproducing the published shapes.
 */

#ifndef RECSSD_TRACE_PAGE_REUSE_H
#define RECSSD_TRACE_PAGE_REUSE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cache/set_assoc_lru.h"
#include "src/common/types.h"

namespace recssd
{

/** Accumulates per-page access counts at a fixed page size. */
class PageReuseAnalyzer
{
  public:
    /**
     * @param page_bytes Page granularity.
     * @param vector_bytes Bytes per embedding row (rows map to byte
     *        addresses row * vector_bytes).
     */
    PageReuseAnalyzer(std::uint64_t page_bytes, std::uint64_t vector_bytes);

    /** Record an access to a row id. */
    void access(RowId row);

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t touchedPages() const { return counts_.size(); }

    /**
     * Hit counts per page sorted ascending (the paper's Fig 3
     * x-axis ordering); hits = accesses beyond the first touch.
     */
    std::vector<std::uint64_t> sortedHitCounts() const;

    /**
     * Fraction of all reuse captured by the hottest `pages` pages
     * (§3.1: "a few hundred pages capture 30% of reuses").
     */
    double reuseCapturedByTopPages(std::uint64_t pages) const;

  private:
    std::uint64_t pageBytes_;
    std::uint64_t vectorBytes_;
    std::uint64_t accesses_ = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> counts_;
};

/**
 * Replay a row-id access sequence through a 16-way LRU page cache of
 * the given capacity (Fig 4).
 *
 * @return hit rate over the sequence.
 */
double lruPageCacheHitRate(const std::vector<RowId> &rows,
                           std::uint64_t vector_bytes,
                           std::uint64_t page_bytes,
                           std::uint64_t capacity_bytes, unsigned ways = 16);

}  // namespace recssd

#endif  // RECSSD_TRACE_PAGE_REUSE_H
