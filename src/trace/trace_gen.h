/**
 * @file
 * Synthetic embedding-index trace generation.
 *
 * Mirrors the paper's instrumented DLRM trace generator (§5): the
 * locality mode draws reuses from an exponential stack-distance
 * distribution over previously requested vectors, parameterized by K,
 * where K = 0, 1, 2 yields roughly 13%, 54%, 72% unique accesses.
 * Sequential, strided, uniform and Zipf patterns cover the
 * microbenchmarks (Fig 8) and the locality characterization
 * (Figs 3-4).
 */

#ifndef RECSSD_TRACE_TRACE_GEN_H
#define RECSSD_TRACE_TRACE_GEN_H

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/common/types.h"

namespace recssd
{

/** What pattern a trace generator produces. */
enum class TraceKind
{
    Sequential,  ///< consecutive ids (the paper's SEQ)
    Strided,     ///< each access lands on a fresh page (the paper's STR)
    Uniform,     ///< uniform random over the universe
    Zipf,        ///< power-law popularity
    LocalityK,   ///< exponential stack-distance reuse, parameter K
};

struct TraceSpec
{
    TraceKind kind = TraceKind::Uniform;
    /** Id universe (rows drawn from [0, universe)). */
    std::uint64_t universe = 1'000'000;
    /** Strided: id step between accesses. */
    std::uint64_t stride = 1;
    /** Zipf: skew exponent. */
    double zipfAlpha = 1.05;
    /** LocalityK: the paper's K knob. */
    double k = 1.0;
    /** LocalityK: mean of the exponential stack-distance draw. */
    double reuseStackMean = 256.0;
    /** LocalityK: universe cycled through for fresh ids. */
    std::uint64_t activeUniverse = 8192;
    /** RNG seed. */
    std::uint64_t seed = 1;
};

/**
 * Fraction of accesses expected to be unique for a given K,
 * anchored at the paper's calibration points (13%, 54%, 72% for
 * K = 0, 1, 2) with exponential interpolation in between.
 */
double uniqueFractionForK(double k);

class TraceGenerator
{
  public:
    explicit TraceGenerator(const TraceSpec &spec);

    /** Next row id (standalone draws commit immediately). */
    RowId next();

    /**
     * Indices for one SLS op (batch x lookups). For the locality
     * mode, temporal reuse is generated *across requests, not
     * lookups* (§6.3): all draws of one sample reference only ids
     * from earlier samples, which are committed to the reuse stack
     * when the sample completes.
     */
    std::vector<std::vector<RowId>> nextBatch(std::size_t batch,
                                              std::size_t lookups);

    const TraceSpec &spec() const { return spec_; }

  private:
    RowId nextLocality();

    /** Push the current request's ids onto the reuse stack. */
    void commitRequest();

    TraceSpec spec_;
    Rng rng_;
    std::unique_ptr<ZipfSampler> zipf_;
    std::uint64_t cursor_ = 0;
    double pNew_ = 1.0;
    bool inRequest_ = false;
    /** LRU stack of ids from committed requests (front = MRU). */
    std::vector<RowId> stack_;
    /** Ids drawn by the in-flight request, pending commit. */
    std::vector<RowId> pending_;
};

}  // namespace recssd

#endif  // RECSSD_TRACE_TRACE_GEN_H
