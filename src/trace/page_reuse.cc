#include "src/trace/page_reuse.h"

#include <algorithm>

#include "src/common/logging.h"

namespace recssd
{

PageReuseAnalyzer::PageReuseAnalyzer(std::uint64_t page_bytes,
                                     std::uint64_t vector_bytes)
    : pageBytes_(page_bytes), vectorBytes_(vector_bytes)
{
    recssd_assert(page_bytes > 0 && vector_bytes > 0,
                  "page/vector size must be positive");
}

void
PageReuseAnalyzer::access(RowId row)
{
    ++accesses_;
    std::uint64_t page = row * vectorBytes_ / pageBytes_;
    ++counts_[page];
}

std::vector<std::uint64_t>
PageReuseAnalyzer::sortedHitCounts() const
{
    std::vector<std::uint64_t> hits;
    hits.reserve(counts_.size());
    for (const auto &[page, count] : counts_)  // sim-lint: allow(R3) sorted below
        hits.push_back(count > 0 ? count - 1 : 0);
    std::sort(hits.begin(), hits.end());
    return hits;
}

double
PageReuseAnalyzer::reuseCapturedByTopPages(std::uint64_t pages) const
{
    auto hits = sortedHitCounts();
    std::uint64_t total = 0;
    for (auto h : hits)
        total += h;
    if (total == 0)
        return 0.0;
    std::uint64_t captured = 0;
    std::uint64_t taken = 0;
    for (auto it = hits.rbegin(); it != hits.rend() && taken < pages;
         ++it, ++taken) {
        captured += *it;
    }
    return static_cast<double>(captured) / static_cast<double>(total);
}

double
lruPageCacheHitRate(const std::vector<RowId> &rows,
                    std::uint64_t vector_bytes, std::uint64_t page_bytes,
                    std::uint64_t capacity_bytes, unsigned ways)
{
    std::uint64_t entries = std::max<std::uint64_t>(ways,
                                                    capacity_bytes /
                                                        page_bytes);
    entries = entries / ways * ways;
    SetAssocLru cache(entries, ways);
    for (RowId row : rows)
        cache.access(row * vector_bytes / page_bytes);
    return cache.hitRate();
}

}  // namespace recssd
