#include "src/trace/stack_distance.h"

#include <algorithm>

namespace recssd
{

std::uint64_t
StackDistanceAnalyzer::access(std::uint64_t key)
{
    ++accesses_;
    auto it = std::find(stack_.begin(), stack_.end(), key);
    if (it == stack_.end()) {
        seen_.insert(key);
        stack_.insert(stack_.begin(), key);
        return coldDistance;
    }
    auto d = static_cast<std::uint64_t>(it - stack_.begin());
    stack_.erase(it);
    stack_.insert(stack_.begin(), key);
    if (countByDistance_.size() <= d)
        countByDistance_.resize(d + 1, 0);
    ++countByDistance_[d];
    return d;
}

double
StackDistanceAnalyzer::hitRateAtCapacity(std::uint64_t capacity) const
{
    if (accesses_ == 0)
        return 0.0;
    std::uint64_t hits = 0;
    std::uint64_t limit =
        std::min<std::uint64_t>(capacity, countByDistance_.size());
    for (std::uint64_t d = 0; d < limit; ++d)
        hits += countByDistance_[d];
    return static_cast<double>(hits) / static_cast<double>(accesses_);
}

}  // namespace recssd
