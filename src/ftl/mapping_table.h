/**
 * @file
 * Logical-to-physical page mapping.
 *
 * Two tiers keep the memory footprint proportional to what is
 * actually written rather than to drive capacity:
 *
 *  - identity regions: contiguous (LPN, PPN) ranges installed when an
 *    embedding table is bulk-loaded (O(1) per table), and
 *  - a sparse overlay map for pages written through the normal
 *    log-structured write path (which always wins over a region).
 */

#ifndef RECSSD_FTL_MAPPING_TABLE_H
#define RECSSD_FTL_MAPPING_TABLE_H

#include <cstdint>
#include <map>
#include <unordered_map>

#include "src/common/analysis.h"
#include "src/common/types.h"

namespace recssd
{

class MappingTable
{
  public:
    /** Current physical page for a logical page, or invalidPpn.
     *  This is *the* live lookup of the deferred-state protocol:
     *  completion callbacks re-validate captured PPNs through it. */
    Ppn lookup(Lpn lpn) const RECSSD_LIVE_LOOKUP;

    /** Point-update from the write path (overlays any region). */
    void set(Lpn lpn, Ppn ppn) RECSSD_MAP_MUTATOR;

    /** Remove a point mapping (trim). Regions are unaffected. */
    void unset(Lpn lpn) RECSSD_MAP_MUTATOR;

    /** Install a contiguous identity-style region mapping. */
    void installRegion(Lpn lpn_start, Ppn ppn_start, std::uint64_t pages);

    bool mapped(Lpn lpn) const { return lookup(lpn) != invalidPpn; }

    /** Number of point (overlay) entries. */
    std::size_t overlayEntries() const { return overlay_.size(); }

    /** Number of installed regions. */
    std::size_t regions() const { return regions_.size(); }

    /**
     * Visit every point-mapping entry (RECSSD_AUDIT only). Visit
     * order is hash order, so callers must fold into order-independent
     * state (sets, per-row counts) and never emit artifacts from it.
     */
    template <typename Fn>
    void
    forEachOverlay(Fn &&fn) const
    {
        // sim-lint: allow(R3) audit-only; callers fold order-free
        for (const auto &[lpn, ppn] : overlay_)
            fn(lpn, ppn);
    }

  private:
    struct Region
    {
        Ppn ppnStart;
        std::uint64_t pages;
    };

    std::unordered_map<Lpn, Ppn> overlay_;
    std::map<Lpn, Region> regions_;  // keyed by lpn_start
};

}  // namespace recssd

#endif  // RECSSD_FTL_MAPPING_TABLE_H
