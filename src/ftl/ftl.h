/**
 * @file
 * The flash translation layer firmware model.
 *
 * One serialized firmware CPU (half of the board's dual-core A9) runs
 * command handling, translation, garbage collection bookkeeping — and,
 * in RecSSD, the NDP SLS engine's config processing and per-page
 * reduction (`src/ndp`). Flash operations themselves proceed in
 * parallel on the channel/die resources once issued.
 *
 * Logical pages equal flash pages (16KB); the NVMe layer addresses the
 * drive in those units.
 */

#ifndef RECSSD_FTL_FTL_H
#define RECSSD_FTL_FTL_H

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "src/common/analysis.h"
#include "src/common/event_queue.h"
#include "src/common/resource.h"
#include "src/common/stats.h"
#include "src/flash/flash_array.h"
#include "src/ftl/block_manager.h"
#include "src/ftl/ftl_params.h"
#include "src/ftl/layout_manager.h"
#include "src/ftl/mapping_table.h"
#include "src/ftl/page_cache.h"

namespace recssd
{

class Ftl
{
  public:
    using ReadDone = std::function<void(const PageView &)>;
    using DoneCallback = std::function<void()>;

    /** `track_prefix` namespaces the firmware/GC trace tracks (multi-
     *  SSD systems pass "ssd<d>." so device spans stay separable). */
    Ftl(EventQueue &eq, const FtlParams &params, FlashArray &flash,
        const std::string &track_prefix = "");

    /** @{ Host-visible block interface (used by the NVMe dispatcher). */

    /**
     * Service a host read of one logical page. Charges firmware CPU,
     * consults the page cache, then the flash array. The callback
     * receives a lazily-copied view of the page bytes (zero-filled
     * for never-written pages, like a trimmed real drive).
     */
    void hostRead(Lpn lpn, ReadDone done, std::uint64_t trace_id = 0)
        RECSSD_DEFERS_CALLBACK;

    /** Service a host write of one logical page (log append). */
    void hostWrite(Lpn lpn, std::span<const std::byte> data,
                   DoneCallback done, std::uint64_t trace_id = 0)
        RECSSD_DEFERS_CALLBACK;

    /**
     * Deallocate a logical page (NVMe DSM). The mapping is dropped
     * and the physical copy invalidated, so subsequent reads return
     * zeroes and GC skips the data. Bulk-region pages lose their
     * overlay only (the immutable region shows through again).
     */
    void hostTrim(Lpn lpn, DoneCallback done, std::uint64_t trace_id = 0)
        RECSSD_DEFERS_CALLBACK;
    /** @} */

    /**
     * Observe every host write (the SLS engine registers here to keep
     * its embedding cache coherent with in-place table updates). The
     * stored observer reports *mapping changes*: it may only ever fire
     * right after the map mutation it reports (sim-lint R5), never at
     * command entry — a reader notified early re-reads the old row.
     */
    void setWriteObserver(std::function<void(Lpn)> observer)
        RECSSD_NOTIFIES_MAP_SET
    {
        writeObserver_ = std::move(observer);
    }

    /** @{ Services for the in-FTL SLS engine. */

    /** The serialized firmware core. */
    SerialResource &cpu() { return cpu_; }

    /** Untimed L2P translation (engine charges CPU itself). */
    Ppn translate(Lpn lpn) RECSSD_LIVE_LOOKUP { return map_.lookup(lpn); }

    /** Untimed page-cache probe (engine charges CPU itself). */
    bool cacheLookup(Lpn lpn, Ppn &ppn) RECSSD_LIVE_LOOKUP
    {
        return cache_.lookup(lpn, ppn);
    }
    void cacheInsert(Lpn lpn, Ppn ppn) { cache_.insert(lpn, ppn); }

    /** Direct flash page read, bypassing command-handling costs. */
    void readPhysical(Ppn ppn, FlashArray::ReadCallback done,
                      std::uint64_t trace_id = 0) RECSSD_DEFERS_CALLBACK
    {
        flash_.readPage(ppn, std::move(done), trace_id);
    }
    /** @} */

    /**
     * Bulk-load a logical range with synthetically generated content
     * (embedding table install). O(1) in the range length: claims
     * immutable rows, installs an identity mapping region and
     * registers the generator with the data store.
     */
    void bulkInstall(Lpn lpn_start, std::uint64_t pages,
                     DataStore::Generator gen);

    /**
     * Fault hook (`src/fault`): occupy the firmware core for
     * `duration` starting now — a housekeeping burst (log checkpoint,
     * wear-table flush). Queued commands wait behind it.
     */
    void injectFirmwarePause(Tick duration);

    /**
     * Monotonic remap epoch of one logical page: bumped every time its
     * L2P mapping changes (host write, trim, GC relocation, hot-cluster
     * migration). The SLS engine snapshots the epoch when it resolves a
     * gather's PPN and re-resolves at consume time on mismatch, so a
     * deferred translation never sums bytes from a PPN whose logical
     * page has since moved — the read-after-write old-or-new fence.
     * Never-remapped pages (including the whole bulk-installed region)
     * sit at epoch 0 and pay only a hash miss here.
     */
    std::uint64_t writeEpochOf(Lpn lpn) const RECSSD_LIVE_LOOKUP
        RECSSD_EXCLUDES(epochMutex_)
    {
        SimLockGuard hold(epochMutex_);
        auto it = writeEpochs_.find(lpn);
        return it == writeEpochs_.end() ? 0 : it->second;
    }

    MappingTable &map() { return map_; }
    BlockManager &blocks() { return blocks_; }
    PageCache &pageCache() { return cache_; }
    FlashArray &flash() { return flash_; }
    const FtlParams &params() const { return params_; }
    EventQueue &eventQueue() { return eq_; }

    /**
     * The frequency-aware layout subsystem, or nullptr under the
     * default `Log` policy (which then has zero footprint: no stats,
     * no extra branches that change timing).
     */
    LayoutManager *layout() { return layout_.get(); }
    const LayoutManager *layout() const { return layout_.get(); }

    /** @{ Stats. */
    std::uint64_t hostReads() const { return hostReads_.value(); }
    std::uint64_t hostWrites() const { return hostWrites_.value(); }
    std::uint64_t hostTrims() const { return hostTrims_.value(); }
    std::uint64_t gcRuns() const { return gcRuns_.value(); }
    std::uint64_t gcPagesMigrated() const { return gcPagesMigrated_.value(); }
    std::uint64_t firmwarePauses() const { return fwPauses_.value(); }
    /** @} */

  private:
    /** Bump a page's remap epoch (the write/GC/migration side of the
     *  fence read by writeEpochOf). */
    void bumpWriteEpoch(Lpn lpn) RECSSD_EXCLUDES(epochMutex_)
    {
        SimLockGuard hold(epochMutex_);
        ++writeEpochs_[lpn];
    }

    /** Kick garbage collection if watermarks demand it. */
    void maybeStartGc();

    /** Collect one victim row, then re-check watermarks. */
    void runGcPass();

    /**
     * Drain the layout manager's promotion queue: start the next
     * hot-cluster migration if none is in flight. Pages already
     * resident in a hot-stream row are pinned without a copy.
     */
    void maybeStartMigration();

    /** Copy one promoted page into the hot append stream. */
    void runMigration(Lpn lpn, Ppn old_ppn);

    /**
     * RECSSD_AUDIT: verify the L2P overlay and the per-row valid-page
     * bookkeeping still form a bijection (run after every GC erase).
     */
    void auditCheckMapping() const;

    EventQueue &eq_;
    FtlParams params_;
    FlashArray &flash_;
    MappingTable map_;
    BlockManager blocks_;
    PageCache cache_;
    std::string cpuTrackName_;
    std::string gcTrackName_;
    std::string layoutTrackName_;
    SerialResource cpu_;
    std::function<void(Lpn)> writeObserver_;
    /**
     * Pre-declared parallel-DES capability: the epoch fence is read by
     * the NDP engine at gather-consume time and bumped by the write/GC
     * path — the one FTL structure two logical processes will touch.
     * Zero-cost today (see src/common/analysis.h).
     */
    mutable SimMutex epochMutex_;
    /** Per-LPN remap epochs (point lookups only — see writeEpochOf). */
    std::unordered_map<Lpn, std::uint64_t> writeEpochs_
        RECSSD_GUARDED_BY(epochMutex_);
    std::unique_ptr<LayoutManager> layout_;  ///< null under Log policy
    bool gcActive_ = false;
    bool migrActive_ = false;  ///< a hot-cluster migration is in flight
    bool audit_;  ///< RECSSD_AUDIT cached at construction

    Counter hostReads_;
    Counter hostWrites_;
    Counter hostTrims_;
    Counter gcRuns_;
    Counter gcPagesMigrated_;
    Counter fwPauses_;
};

}  // namespace recssd

#endif  // RECSSD_FTL_FTL_H
