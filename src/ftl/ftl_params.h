/**
 * @file
 * FTL firmware configuration: CPU cost model and policies.
 *
 * The Cosmos+ FTL runs on a 1GHz dual-core ARM Cortex-A9. One core
 * runs the scheduler/translation firmware (modelled as the serialized
 * `Ftl::cpu()` resource); the other services the NVMe host interface
 * (charged by the NVMe layer). All costs below are charged to the
 * firmware core.
 */

#ifndef RECSSD_FTL_FTL_PARAMS_H
#define RECSSD_FTL_FTL_PARAMS_H

#include "src/common/types.h"
#include "src/ftl/layout_params.h"

namespace recssd
{

struct FtlParams
{
    /** Firmware cost to parse/schedule one host read command. */
    Tick readCmdCpu = 20 * usec;
    /** Firmware cost to parse/schedule one host write command. */
    Tick writeCmdCpu = 24 * usec;
    /** Firmware cost to deallocate (trim) one logical page. */
    Tick trimCmdCpu = 8 * usec;
    /** Firmware cost per page migrated during garbage collection. */
    Tick gcPerPageCpu = 6 * usec;

    /** SSD-DRAM page cache capacity, in pages (16KB each). */
    unsigned pageCachePages = 2048;
    /** Page cache associativity. */
    unsigned pageCacheWays = 8;

    /** Start GC when free superblock rows drop below this. */
    unsigned gcLowWatermarkRows = 2;
    /** Stop GC once free rows reach this. */
    unsigned gcHighWatermarkRows = 4;

    /**
     * Wear levelling: a sealed row whose erase count exceeds the
     * current sealed minimum by more than this is passed over during
     * GC victim selection when an alternative exists (allocation
     * already prefers the least-erased free row).
     */
    unsigned wearLevelThreshold = 2;

    /**
     * Data-layout policy (`src/ftl/layout_params.h`). The default
     * `Log` policy leaves every artifact byte-identical to a build
     * without the layout subsystem.
     */
    LayoutParams layout;
};

}  // namespace recssd

#endif  // RECSSD_FTL_FTL_PARAMS_H
