/**
 * @file
 * Decayed per-page access-frequency tracking with hysteresis.
 *
 * The tracker feeds the frequency-aware layout policy: every logical
 * page read (host path and NDP SLS path alike) bumps a saturating
 * counter, and every `decayInterval` accesses a sweep halves all
 * counters, yielding an exponentially decayed frequency estimate.
 * Accesses carry a weight: the NDP SLS path coalesces every embedding
 * row gathered from a page into one flash read, so it records the
 * page once with weight = rows gathered — the counter tracks row
 * access frequency, not (coalesced) flash-read frequency. A
 * page is promoted to the hot class when its counter reaches
 * `promoteThreshold` and demoted only when decay drags it below
 * `demoteThreshold` — the gap is a hysteresis band, so a page whose
 * frequency sits exactly on the promote boundary never flaps.
 *
 * Hot pages split into two levels. *Promotion* (counter crosses
 * `promoteThreshold`) makes a page eligible for a free DRAM pin on
 * its next flash read. *Maturity* — still at or above the promote
 * threshold after a decay sweep halves it — marks the page
 * frequency-stable and queues the (expensive) hot-cluster flash
 * migration; recency churn promotes but rarely matures.
 *
 * Determinism: state is a pure function of the access sequence. The
 * decay sweep folds over a hash map (order-independent: halve +
 * erase-zero), and demotions/maturities are handed out sorted by LPN
 * so every consumer sees a reproducible order.
 */

#ifndef RECSSD_FTL_FREQ_TRACKER_H
#define RECSSD_FTL_FREQ_TRACKER_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"
#include "src/ftl/layout_params.h"

namespace recssd
{

class FreqTracker
{
  public:
    /** What one recorded access did to the page's classification. */
    enum class Event : std::uint8_t
    {
        None,      ///< counter moved, class unchanged
        Promoted,  ///< page just crossed into the hot class
    };

    explicit FreqTracker(const LayoutParams &params);

    /**
     * Record `weight` row accesses to `lpn` (a coalesced gather of N
     * rows from one page records once with weight N). May trigger
     * decay sweeps.
     */
    Event record(Lpn lpn, std::uint32_t weight = 1);

    /** Current (decayed, saturating) counter value. */
    std::uint32_t count(Lpn lpn) const;

    /** True while the page is classified hot. */
    bool isHot(Lpn lpn) const { return hot_.contains(lpn); }

    /** True once the page proved frequency-stable across a sweep. */
    bool isMature(Lpn lpn) const { return mature_.contains(lpn); }

    /**
     * Pages demoted by decay sweeps since the last call, sorted by
     * LPN (deterministic consumption order). Clears the pending list.
     */
    std::vector<Lpn> takeDemotions();

    /**
     * Pages that newly matured (stayed >= promoteThreshold across a
     * decay sweep) since the last call, sorted by LPN. Clears the
     * pending list. Demotion clears maturity, so a page that cools
     * and re-heats matures (and migrates) again.
     */
    std::vector<Lpn> takeMaturities();

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t decaySweeps() const { return sweeps_; }
    std::size_t hotPages() const { return hot_.size(); }
    std::size_t trackedPages() const { return counts_.size(); }

  private:
    /** Halve every counter; demote hot pages that fell below the band. */
    void decaySweep();

    LayoutParams params_;
    std::unordered_map<Lpn, std::uint32_t> counts_;
    std::unordered_set<Lpn> hot_;     // membership only, never iterated
    std::unordered_set<Lpn> mature_;  // membership only, never iterated
    std::vector<Lpn> demoted_;  ///< pending, sorted at takeDemotions
    std::vector<Lpn> matured_;  ///< pending, sorted at takeMaturities
    std::uint64_t accesses_ = 0;
    std::uint64_t sinceSweep_ = 0;  ///< weighted accesses since last sweep
    std::uint64_t sweeps_ = 0;
};

}  // namespace recssd

#endif  // RECSSD_FTL_FREQ_TRACKER_H
