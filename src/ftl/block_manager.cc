#include "src/ftl/block_manager.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"

namespace recssd
{

BlockManager::BlockManager(const FlashParams &flash, const FtlParams &ftl)
    : flash_(flash), params_(ftl)
{
    pagesPerRow_ = std::uint64_t(flash_.pagesPerBlock) * flash_.numChannels *
                   flash_.diesPerChannel;
    std::uint64_t rows = flash_.totalPages() / pagesPerRow_;
    recssd_assert(rows >= 4, "flash too small for log-structured layout");
    rows_.resize(rows);
    freeRows_ = rows;
    regionBoundary_ = rows;
}

void
BlockManager::ensureLpns(RowMeta &row)
{
    if (!row.lpns) {
        row.lpns = std::make_unique<std::vector<Lpn>>(pagesPerRow_,
                                                      invalidLpn);
    }
}

bool
BlockManager::openNewActiveRow(Stream stream)
{
    // Wear-levelled free-row choice: normally any free row works, but
    // when the erase spread grows past the threshold, insist on the
    // youngest one.
    std::uint64_t best = UINT64_MAX;
    std::uint32_t best_erases = std::numeric_limits<std::uint32_t>::max();
    for (std::uint64_t r = 0; r < regionBoundary_; ++r) {
        if (rows_[r].state != RowState::Free)
            continue;
        if (rows_[r].eraseCount < best_erases) {
            best_erases = rows_[r].eraseCount;
            best = r;
        }
    }
    if (best == UINT64_MAX)
        return false;
    activeRow_[static_cast<unsigned>(stream)] = best;
    rows_[best].state = RowState::Active;
    rows_[best].stream = stream;
    rows_[best].writeCursor = 0;
    rows_[best].validCount = 0;
    ensureLpns(rows_[best]);
    std::ranges::fill(*rows_[best].lpns, invalidLpn);
    --freeRows_;
    return true;
}

Ppn
BlockManager::allocatePage(Lpn lpn, Stream stream)
{
    std::uint64_t &active = activeRow_[static_cast<unsigned>(stream)];
    if (active == UINT64_MAX || rows_[active].writeCursor >= pagesPerRow_) {
        if (active != UINT64_MAX &&
            rows_[active].writeCursor >= pagesPerRow_) {
            rows_[active].state = RowState::Sealed;
        }
        if (!openNewActiveRow(stream))
            return invalidPpn;
    }
    RowMeta &row = rows_[active];
    std::uint32_t slot = row.writeCursor++;
    (*row.lpns)[slot] = lpn;
    ++row.validCount;
    pagesAllocated_.inc();
    if (stream == Stream::Hot)
        hotPagesAllocated_.inc();
    return active * pagesPerRow_ + slot;
}

void
BlockManager::invalidate(Ppn ppn)
{
    std::uint64_t r = rowOf(ppn);
    recssd_assert(r < rows_.size(), "invalidate: PPN out of range");
    RowMeta &row = rows_[r];
    if (row.state == RowState::Region) {
        // Overwrite of a bulk-loaded page: count it, but region rows
        // are immutable and never collected, so no bitmap is needed.
        if (row.validCount > 0)
            --row.validCount;
        return;
    }
    recssd_assert(row.lpns != nullptr, "invalidate on unwritten row");
    std::uint32_t slot = static_cast<std::uint32_t>(ppn % pagesPerRow_);
    if ((*row.lpns)[slot] != invalidLpn) {
        (*row.lpns)[slot] = invalidLpn;
        recssd_assert(row.validCount > 0, "valid count underflow");
        --row.validCount;
    }
}

Ppn
BlockManager::allocateRegion(std::uint64_t pages)
{
    std::uint64_t rows_needed = (pages + pagesPerRow_ - 1) / pagesPerRow_;
    recssd_assert(rows_needed <= regionBoundary_,
                  "not enough space for bulk region");
    std::uint64_t new_boundary = regionBoundary_ - rows_needed;
    // All claimed rows must still be free (they are, unless the write
    // log already grew into them).
    for (std::uint64_t r = new_boundary; r < regionBoundary_; ++r) {
        recssd_assert(rows_[r].state == RowState::Free,
                      "bulk region collides with written data");
        rows_[r].state = RowState::Region;
        rows_[r].validCount = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(pagesPerRow_, pages));
        pages -= rows_[r].validCount;
        --freeRows_;
        ++regionRows_;
    }
    regionBoundary_ = new_boundary;
    return new_boundary * pagesPerRow_;
}

bool
BlockManager::needsGc() const
{
    return freeRows_ < params_.gcLowWatermarkRows;
}

bool
BlockManager::wantsMoreGc() const
{
    return freeRows_ < params_.gcHighWatermarkRows;
}

std::uint64_t
BlockManager::pickGcVictim() const
{
    // Greedy (fewest valid pages) with wear-aware refinements: ties
    // break toward the least-erased row, and rows already worn past
    // the threshold are passed over when an alternative exists.
    std::uint32_t min_erases = std::numeric_limits<std::uint32_t>::max();
    for (std::uint64_t r = 0; r < regionBoundary_; ++r) {
        if (rows_[r].state == RowState::Sealed)
            min_erases = std::min(min_erases, rows_[r].eraseCount);
    }

    auto better = [](const RowMeta &a, const RowMeta &b) {
        if (a.validCount != b.validCount)
            return a.validCount < b.validCount;
        return a.eraseCount < b.eraseCount;
    };

    std::uint64_t best = UINT64_MAX;
    std::uint64_t best_any = UINT64_MAX;
    for (std::uint64_t r = 0; r < regionBoundary_; ++r) {
        if (rows_[r].state != RowState::Sealed)
            continue;
        if (best_any == UINT64_MAX || better(rows_[r], rows_[best_any]))
            best_any = r;
        if (rows_[r].eraseCount > min_erases + params_.wearLevelThreshold)
            continue;  // too worn; spare it if possible
        if (best == UINT64_MAX || better(rows_[r], rows_[best]))
            best = r;
    }
    return best != UINT64_MAX ? best : best_any;
}

std::vector<std::pair<Lpn, Ppn>>
BlockManager::validPagesIn(std::uint64_t row) const
{
    recssd_assert(row < rows_.size(), "row out of range");
    std::vector<std::pair<Lpn, Ppn>> out;
    const RowMeta &meta = rows_[row];
    if (!meta.lpns)
        return out;
    for (std::uint64_t slot = 0; slot < pagesPerRow_; ++slot) {
        Lpn lpn = (*meta.lpns)[slot];
        if (lpn != invalidLpn)
            out.emplace_back(lpn, row * pagesPerRow_ + slot);
    }
    return out;
}

void
BlockManager::onRowErased(std::uint64_t row)
{
    recssd_assert(row < rows_.size(), "row out of range");
    RowMeta &meta = rows_[row];
    recssd_assert(meta.state == RowState::Sealed,
                  "only sealed rows are erased");
    meta.state = RowState::Free;
    meta.validCount = 0;
    meta.writeCursor = 0;
    ++meta.eraseCount;
    ++freeRows_;
}

std::uint32_t
BlockManager::eraseCountSpread() const
{
    std::uint32_t lo = std::numeric_limits<std::uint32_t>::max();
    std::uint32_t hi = 0;
    for (std::uint64_t r = 0; r < regionBoundary_; ++r) {
        lo = std::min(lo, rows_[r].eraseCount);
        hi = std::max(hi, rows_[r].eraseCount);
    }
    if (lo == std::numeric_limits<std::uint32_t>::max())
        return 0;
    return hi - lo;
}

}  // namespace recssd
