/**
 * @file
 * Frequency-aware embedding layout configuration.
 *
 * RecFlash-style data mapping (PAPERS.md): the FTL tracks per-page
 * access frequency with decayed counters, clusters hot pages into
 * dedicated hot superblock rows (whose append order stripes
 * round-robin across channels/dies by PPN construction), pins hot
 * pages in a small controller-DRAM hot tier consulted before any
 * flash read, and re-packs cold pages out of hot rows during GC.
 *
 * The default policy is `Log`: the seed's pure log-structured
 * placement, with every structure below unbuilt. A `Log` run is
 * tick-for-tick and artifact-byte-identical to a build without this
 * subsystem (locked by tests/test_layout_differential.cc).
 */

#ifndef RECSSD_FTL_LAYOUT_PARAMS_H
#define RECSSD_FTL_LAYOUT_PARAMS_H

#include <cstdint>

#include "src/common/types.h"

namespace recssd
{

/** How the FTL places embedding pages on flash. */
enum class LayoutPolicy : std::uint8_t
{
    Log,   ///< seed behaviour: append wherever the log head lands
    Freq,  ///< frequency-aware hot/cold clustering + hot DRAM tier
};

struct LayoutParams
{
    LayoutPolicy policy = LayoutPolicy::Log;

    /** Hot-row DRAM tier capacity, in pages (16KB each by default). */
    unsigned hotTierPages = 1024;

    /**
     * Decayed-counter classifier with hysteresis: a page becomes hot
     * when its counter reaches `promoteThreshold`, and is demoted only
     * when decay drags it below `demoteThreshold`. The gap between the
     * two is the hysteresis band — a page oscillating around the
     * promote boundary never flaps.
     */
    std::uint32_t promoteThreshold = 4;
    std::uint32_t demoteThreshold = 1;

    /** Counters saturate here (bounds decay time for former-hot rows). */
    std::uint32_t counterCap = 64;

    /**
     * Row accesses between decay sweeps; each sweep halves every
     * counter, so frequency estimates are exponentially decayed with a
     * half-life of `decayInterval` accesses. Promotion (a DRAM pin on
     * the next flash read) reacts within a window; hot-cluster flash
     * migration additionally requires the page to stay at or above the
     * promote threshold across a sweep, so only frequency-stable pages
     * pay the copy — a recency-churned working set (the K traces)
     * stays DRAM-pinned only.
     */
    std::uint64_t decayInterval = 16384;

    /** Firmware cost per page moved by a hot-cluster migration. */
    Tick migratePerPageCpu = 6 * usec;
};

/** Stable short name used in logs, stats and bench tables. */
inline const char *
layoutPolicyName(LayoutPolicy p)
{
    return p == LayoutPolicy::Freq ? "freq" : "log";
}

}  // namespace recssd

#endif  // RECSSD_FTL_LAYOUT_PARAMS_H
