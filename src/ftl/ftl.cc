#include "src/ftl/ftl.h"

#include <memory>
#include <unordered_set>
#include <vector>

#include "src/common/audit.h"
#include "src/common/logging.h"
#include "src/obs/tracer.h"

namespace recssd
{

namespace
{

/** Open an FtlCpu span just before a firmware-core acquire (it then
 *  covers core queueing + service); invalidSpan when tracing is off. */
SpanId
beginCpuSpan(EventQueue &eq, const std::string &track, const char *name,
             std::uint64_t trace_id) RECSSD_SPAN_BEGIN
{
    Tracer *tracer = tracerOf(eq);
    if (!tracer)
        return invalidSpan;
    return tracer->begin(tracer->track(track), name, Phase::FtlCpu,
                         trace_id);
}

void
endSpan(EventQueue &eq, SpanId span) RECSSD_SPAN_END
{
    if (span == invalidSpan)
        return;
    if (Tracer *tracer = tracerOf(eq))
        tracer->end(span);
}

}  // namespace

Ftl::Ftl(EventQueue &eq, const FtlParams &params, FlashArray &flash,
         const std::string &track_prefix)
    : eq_(eq),
      params_(params),
      flash_(flash),
      blocks_(flash.params(), params),
      cache_(params.pageCachePages, params.pageCacheWays),
      cpuTrackName_(track_prefix + "ftl.cpu"),
      gcTrackName_(track_prefix + "ftl.gc"),
      layoutTrackName_(track_prefix + "ftl.layout"),
      cpu_(eq, cpuTrackName_),
      audit_(auditEnabled())
{
    if (params_.layout.policy == LayoutPolicy::Freq) {
        layout_ = std::make_unique<LayoutManager>(params_.layout);
        layout_->setMigrationKick([this]() { maybeStartMigration(); });
    }
}

void
Ftl::hostRead(Lpn lpn, ReadDone done, std::uint64_t trace_id)
{
    hostReads_.inc();
    SpanId span = beginCpuSpan(eq_, cpuTrackName_, "read_cmd", trace_id);
    cpu_.acquire(params_.readCmdCpu, [this, lpn, span, trace_id,
                                      done = std::move(done)]() {
        endSpan(eq_, span);
        if (layout_) {
            layout_->onAccess(lpn);
            Ppn pinned;
            if (layout_->tier().lookup(lpn, pinned)) {
                // Pinned in the hot-row DRAM tier: served without
                // probing the page cache, so hot-tier hits and
                // page-cache hits/misses stay disjoint counts.
                done(PageView(flash_.store(), pinned));
                return;
            }
        }
        Ppn cached;
        if (cache_.lookup(lpn, cached)) {
            // Served straight from controller DRAM. A hot page gets
            // its tier pin here for free, same as on a flash read.
            if (layout_ && layout_->isHot(lpn))
                layout_->pinFromRead(lpn, cached);
            done(PageView(flash_.store(), cached));
            return;
        }
        Ppn ppn = map_.lookup(lpn);
        if (ppn == invalidPpn) {
            // Unwritten page: a real drive returns zeroes without
            // touching flash.
            done(PageView(flash_.store(), invalidPpn));
            return;
        }
        flash_.readPage(
            ppn,
            [this, lpn, ppn, done = std::move(done)](const PageView &view) {
                // Re-check the mapping — a write or GC move while the
                // read was in flight makes this PPN stale, and a stale
                // cache entry would resurrect a pointer the write path
                // already invalidated (later SLS gathers would consume
                // it with a stable epoch, defeating the write fence).
                bool current = map_.lookup(lpn) == ppn;
                if (current)
                    cache_.insert(lpn, ppn);
                // Free DRAM pin: the page sits in the controller
                // buffer at read-DMA completion anyway.
                if (layout_ && layout_->isHot(lpn) && current)
                    layout_->pinFromRead(lpn, ppn);
                done(view);
            },
            trace_id);
    });
}

void
Ftl::hostWrite(Lpn lpn, std::span<const std::byte> data, DoneCallback done,
               std::uint64_t trace_id)
{
    hostWrites_.inc();
    // Copy the payload now; the caller's buffer may not outlive the
    // simulated DMA.
    auto payload = std::make_shared<std::vector<std::byte>>(data.begin(),
                                                            data.end());
    SpanId span = beginCpuSpan(eq_, cpuTrackName_, "write_cmd", trace_id);
    cpu_.acquire(params_.writeCmdCpu, [this, lpn, span, trace_id, payload,
                                       done = std::move(done)]() mutable {
        endSpan(eq_, span);
        Ppn old = map_.lookup(lpn);
        BlockManager::Stream stream = layout_ && layout_->isHot(lpn)
                                          ? BlockManager::Stream::Hot
                                          : BlockManager::Stream::Cold;
        Ppn ppn = blocks_.allocatePage(lpn, stream);
        recssd_assert(ppn != invalidPpn, "drive out of space");
        map_.set(lpn, ppn);
        bumpWriteEpoch(lpn);
        // Observers (the NDP embedding cache) invalidate here, at the
        // instant the mapping/epoch changes — not at command entry.
        // Firing early would let a gather that consumed the old page
        // re-insert its value *after* the invalidation, resurrecting
        // a vector the write already superseded.
        if (writeObserver_)
            writeObserver_(lpn);
        if (old != invalidPpn)
            blocks_.invalidate(old);
        cache_.invalidate(lpn);
        if (layout_)
            layout_->onDataInvalidated(lpn);
        flash_.writePage(ppn, *payload,
                         [this, lpn, ppn, payload,
                          done = std::move(done)]() {
                             // A newer write to the same LPN may have
                             // remapped it during this program; caching
                             // or hot-tier-pinning the superseded PPN
                             // would hand later gathers a stale page
                             // with a stable epoch.
                             if (map_.lookup(lpn) == ppn) {
                                 cache_.insert(lpn, ppn);
                                 if (layout_)
                                     layout_->onRewrite(lpn, ppn);
                             }
                             if (done)
                                 done();
                             maybeStartGc();
                         },
                         trace_id);
    });
}

void
Ftl::hostTrim(Lpn lpn, DoneCallback done, std::uint64_t trace_id)
{
    hostTrims_.inc();
    SpanId span = beginCpuSpan(eq_, cpuTrackName_, "trim_cmd", trace_id);
    cpu_.acquire(params_.trimCmdCpu, [this, lpn, span,
                                      done = std::move(done)]() {
        endSpan(eq_, span);
        // Only overlay mappings can be dropped; a region page with no
        // overlay simply has nothing to deallocate.
        Ppn old = map_.lookup(lpn);
        map_.unset(lpn);
        bumpWriteEpoch(lpn);
        // Same ordering rule as hostWrite: observers fire at the
        // mapping change so deferred gather-completion inserts cannot
        // outlive the invalidation.
        if (writeObserver_)
            writeObserver_(lpn);
        if (old != invalidPpn && map_.lookup(lpn) != old) {
            // The overlay (not a region) held the page: reclaim it.
            blocks_.invalidate(old);
        }
        cache_.invalidate(lpn);
        if (layout_)
            layout_->onDataInvalidated(lpn);
        if (done)
            done();
        maybeStartGc();
    });
}

void
Ftl::bulkInstall(Lpn lpn_start, std::uint64_t pages, DataStore::Generator gen)
{
    Ppn ppn_start = blocks_.allocateRegion(pages);
    map_.installRegion(lpn_start, ppn_start, pages);
    flash_.store().registerSynthetic(ppn_start, pages, std::move(gen));
}

void
Ftl::injectFirmwarePause(Tick duration)
{
    fwPauses_.inc();
    SpanId span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        span = tracer->begin(tracer->track(cpuTrackName_), "fw_pause",
                             Phase::FtlCpu);
    }
    cpu_.acquire(duration, [this, span]() {
        if (Tracer *tracer = tracerOf(eq_))
            tracer->end(span);
    });
}

void
Ftl::auditCheckMapping() const
{
    // Map updates (allocate + set + invalidate) happen atomically
    // inside single events, so the state is consistent whenever this
    // runs.  The overlay walk is hash-ordered; everything below folds
    // into order-independent sets and counts.
    std::unordered_set<Ppn> seen;  // membership only, never iterated
    std::vector<std::uint32_t> perRow(blocks_.numRows(), 0);
    map_.forEachOverlay([&](Lpn lpn, Ppn ppn) {
        recssd_assert(seen.insert(ppn).second,
                      "audit: PPN %llu mapped twice in the L2P overlay "
                      "(second LPN %llu)",
                      static_cast<unsigned long long>(ppn),
                      static_cast<unsigned long long>(lpn));
        std::uint64_t row = blocks_.rowOf(ppn);
        BlockManager::RowState st = blocks_.rowState(row);
        recssd_assert(st == BlockManager::RowState::Active ||
                          st == BlockManager::RowState::Sealed,
                      "audit: LPN %llu maps into row %llu, which is "
                      "free/region (state %d)",
                      static_cast<unsigned long long>(lpn),
                      static_cast<unsigned long long>(row),
                      static_cast<int>(st));
        ++perRow[row];
    });
    for (std::uint64_t row = 0; row < blocks_.numRows(); ++row) {
        if (blocks_.rowState(row) == BlockManager::RowState::Region)
            continue;
        recssd_assert(perRow[row] == blocks_.rowValidCount(row),
                      "audit: row %llu has %u overlay entries but "
                      "validCount %u",
                      static_cast<unsigned long long>(row),
                      static_cast<unsigned>(perRow[row]),
                      static_cast<unsigned>(blocks_.rowValidCount(row)));
    }
}

void
Ftl::maybeStartGc()
{
    if (gcActive_ || !blocks_.needsGc())
        return;
    gcActive_ = true;
    runGcPass();
}

void
Ftl::runGcPass()
{
    std::uint64_t victim = blocks_.pickGcVictim();
    if (victim == UINT64_MAX) {
        gcActive_ = false;
        return;
    }
    gcRuns_.inc();
    if (Tracer *tracer = tracerOf(eq_))
        tracer->instant(tracer->track(gcTrackName_), "gc_pass");

    auto valid = std::make_shared<std::vector<std::pair<Lpn, Ppn>>>(
        blocks_.validPagesIn(victim));
    auto remaining = std::make_shared<std::size_t>(valid->size());

    auto finish_row = [this, victim]() {
        // Erase every block in the row; dies erase in parallel, so
        // charge one erase per die through the flash model.
        const FlashParams &fp = flash_.params();
        unsigned dies = fp.numChannels * fp.diesPerChannel;
        auto erases_left = std::make_shared<unsigned>(dies);
        std::uint64_t row_start = victim * blocks_.pagesPerRow();
        for (unsigned d = 0; d < dies; ++d) {
            // One PPN per die within the row selects its block.
            Ppn ppn = row_start + d;
            flash_.eraseBlock(ppn, [this, erases_left, victim]() {
                if (--*erases_left == 0) {
                    blocks_.onRowErased(victim);
                    if (audit_)
                        auditCheckMapping();
                    if (blocks_.wantsMoreGc())
                        runGcPass();
                    else
                        gcActive_ = false;
                }
            });
        }
    };

    if (valid->empty()) {
        finish_row();
        return;
    }

    for (auto [lpn, ppn] : *valid) {
        flash_.readPage(ppn, [this, lpn, old_ppn = ppn, remaining,
                              finish_row](const PageView &view) {
            SpanId gc_span = invalidSpan;
            if (Tracer *tracer = tracerOf(eq_)) {
                gc_span = tracer->begin(tracer->track(gcTrackName_),
                                        "gc_page", Phase::FtlCpu);
            }
            cpu_.acquire(params_.gcPerPageCpu, [this, lpn, old_ppn, view,
                                                gc_span, remaining,
                                                finish_row]() {
                endSpan(eq_, gc_span);
                // Skip pages rewritten by the host while GC was in
                // flight; their data already moved.
                if (map_.lookup(lpn) == old_ppn) {
                    std::vector<std::byte> buf(flash_.params().pageSize);
                    view.copyOut(0, buf);
                    // Re-pack by hotness: GC folds cold rows back into
                    // the cold stream and keeps hot pages clustered.
                    BlockManager::Stream stream =
                        layout_ && layout_->isHot(lpn)
                            ? BlockManager::Stream::Hot
                            : BlockManager::Stream::Cold;
                    Ppn fresh = blocks_.allocatePage(lpn, stream);
                    recssd_assert(fresh != invalidPpn,
                                  "GC found no destination space");
                    map_.set(lpn, fresh);
                    bumpWriteEpoch(lpn);
                    blocks_.invalidate(old_ppn);
                    cache_.invalidate(lpn);
                    if (layout_)
                        layout_->onPhysicalMove(lpn, fresh);
                    gcPagesMigrated_.inc();
                    flash_.writePage(fresh, buf, [remaining, finish_row]() {
                        if (--*remaining == 0)
                            finish_row();
                    });
                } else if (--*remaining == 0) {
                    finish_row();
                }
            });
        });
    }
}

void
Ftl::maybeStartMigration()
{
    if (!layout_ || migrActive_)
        return;
    while (true) {
        Lpn lpn = layout_->popPendingMigration();
        if (lpn == invalidLpn)
            return;
        Ppn old = map_.lookup(lpn);
        if (old == invalidPpn)
            continue;  // trimmed while queued
        std::uint64_t row = blocks_.rowOf(old);
        if (blocks_.rowState(row) != BlockManager::RowState::Region &&
            blocks_.rowStream(row) == BlockManager::Stream::Hot) {
            // Already physically clustered (e.g. rewritten through the
            // hot stream, or relocated there by GC, while queued): pin
            // without copying.
            layout_->tier().insert(lpn, old);
            continue;
        }
        migrActive_ = true;
        runMigration(lpn, old);
        return;
    }
}

void
Ftl::runMigration(Lpn lpn, Ppn old_ppn)
{
    auto finish = [this]() {
        migrActive_ = false;
        maybeStartMigration();
    };
    flash_.readPage(old_ppn, [this, lpn, old_ppn,
                              finish](const PageView &view) {
        SpanId span = invalidSpan;
        if (Tracer *tracer = tracerOf(eq_)) {
            span = tracer->begin(tracer->track(layoutTrackName_),
                                 "hot_migrate", Phase::FtlCpu);
        }
        cpu_.acquire(params_.layout.migratePerPageCpu,
                     [this, lpn, old_ppn, view, span, finish]() {
            endSpan(eq_, span);
            // The page may have been rewritten, trimmed or demoted
            // while the read was in flight; migrating then would
            // clobber newer state or undo a demotion.
            if (map_.lookup(lpn) != old_ppn || !layout_->isHot(lpn)) {
                finish();
                return;
            }
            std::vector<std::byte> buf(flash_.params().pageSize);
            view.copyOut(0, buf);
            Ppn fresh_ppn = blocks_.allocatePage(lpn,
                                                 BlockManager::Stream::Hot);
            if (fresh_ppn == invalidPpn) {
                // Space exhausted: leave the page where it is. It can
                // still be pinned on a later rewrite.
                finish();
                return;
            }
            map_.set(lpn, fresh_ppn);
            bumpWriteEpoch(lpn);
            blocks_.invalidate(old_ppn);
            cache_.invalidate(lpn);
            // Any read-time pin still references old_ppn, which GC
            // may now erase; drop it and re-pin at the fresh PPN once
            // the copy lands.
            layout_->onDataInvalidated(lpn);
            flash_.writePage(fresh_ppn, buf,
                             [this, lpn, fresh_ppn, finish]() {
                // A host write during the program supersedes the
                // migrated copy; pinning it would serve stale data.
                if (map_.lookup(lpn) == fresh_ppn)
                    layout_->onMigrated(lpn, fresh_ppn);
                if (audit_)
                    auditCheckMapping();
                maybeStartGc();
                finish();
            });
        });
    });
}

}  // namespace recssd
