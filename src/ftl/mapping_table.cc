#include "src/ftl/mapping_table.h"

#include "src/common/logging.h"

namespace recssd
{

Ppn
MappingTable::lookup(Lpn lpn) const
{
    auto it = overlay_.find(lpn);
    if (it != overlay_.end())
        return it->second;
    auto rit = regions_.upper_bound(lpn);
    if (rit == regions_.begin())
        return invalidPpn;
    --rit;
    if (lpn < rit->first + rit->second.pages)
        return rit->second.ppnStart + (lpn - rit->first);
    return invalidPpn;
}

void
MappingTable::set(Lpn lpn, Ppn ppn)
{
    overlay_[lpn] = ppn;
}

void
MappingTable::unset(Lpn lpn)
{
    overlay_.erase(lpn);
}

void
MappingTable::installRegion(Lpn lpn_start, Ppn ppn_start, std::uint64_t pages)
{
    recssd_assert(pages > 0, "empty mapping region");
    // Reject overlapping regions.
    auto it = regions_.upper_bound(lpn_start);
    if (it != regions_.begin()) {
        auto prev = std::prev(it);
        recssd_assert(prev->first + prev->second.pages <= lpn_start,
                      "mapping regions must not overlap");
    }
    recssd_assert(it == regions_.end() || it->first >= lpn_start + pages,
                  "mapping regions must not overlap");
    regions_.emplace(lpn_start, Region{ppn_start, pages});
}

}  // namespace recssd
