#include "src/ftl/layout_manager.h"

#include "src/common/types.h"

namespace recssd
{

LayoutManager::LayoutManager(const LayoutParams &params)
    : params_(params), tracker_(params), tier_(params.hotTierPages)
{
}

void
LayoutManager::onAccess(Lpn lpn, std::uint32_t weight)
{
    FreqTracker::Event ev = tracker_.record(lpn, weight);
    if (ev == FreqTracker::Event::Promoted)
        promotions_.inc();
    // Decay sweeps fire inside record(); drain their outputs.
    // Demoted pages lose their DRAM pin immediately (the flash copy
    // is re-packed cold by the next GC pass over its row); matured
    // pages queue for the hot-cluster flash migration.
    for (Lpn demoted : tracker_.takeDemotions()) {
        demotions_.inc();
        tier_.invalidate(demoted);
    }
    bool queued = false;
    for (Lpn matured : tracker_.takeMaturities()) {
        pending_.push_back(matured);
        queued = true;
    }
    if (queued && kick_)
        kick_();
}

void
LayoutManager::pinFromRead(Lpn lpn, Ppn ppn)
{
    if (tier_.contains(lpn))
        return;
    if (tier_.insert(lpn, ppn))
        readPins_.inc();
}

Lpn
LayoutManager::popPendingMigration()
{
    while (!pending_.empty()) {
        Lpn lpn = pending_.front();
        pending_.pop_front();
        // A decay sweep may have demoted the page while it queued;
        // migrating it would undo the demotion, so skip.
        if (tracker_.isHot(lpn))
            return lpn;
    }
    return invalidLpn;
}

void
LayoutManager::onMigrated(Lpn lpn, Ppn ppn)
{
    migrated_.inc();
    tier_.insert(lpn, ppn);
}

void
LayoutManager::onRewrite(Lpn lpn, Ppn ppn)
{
    if (tracker_.isHot(lpn))
        tier_.insert(lpn, ppn);
}

}  // namespace recssd
