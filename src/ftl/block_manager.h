/**
 * @file
 * Physical space management at superblock-row granularity.
 *
 * Like production FTLs, writes are striped across all channels and
 * dies by appending to an active "row" — the set of one erase block
 * per die, covering a contiguous PPN range. Rows are the unit of
 * allocation, garbage collection and wear levelling.
 *
 * Bulk-loaded embedding tables claim rows from the top of the address
 * space as immutable `Region` rows; the log-structured write path
 * allocates from the remaining pool.
 */

#ifndef RECSSD_FTL_BLOCK_MANAGER_H
#define RECSSD_FTL_BLOCK_MANAGER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/flash/flash_params.h"
#include "src/ftl/ftl_params.h"

namespace recssd
{

class BlockManager
{
  public:
    enum class RowState : std::uint8_t
    {
        Free,      ///< erased, available for allocation
        Active,    ///< currently receiving appended writes
        Sealed,    ///< full; GC candidate
        Region,    ///< immutable bulk-loaded data
    };

    BlockManager(const FlashParams &flash, const FtlParams &ftl);

    /** Pages covered by one row (pagesPerBlock x channels x dies). */
    std::uint64_t pagesPerRow() const { return pagesPerRow_; }
    std::uint64_t numRows() const { return rows_.size(); }
    std::uint64_t rowOf(Ppn ppn) const { return ppn / pagesPerRow_; }

    /**
     * Allocate the next physical page of the append log and record
     * that `lpn` will live there. May seal the active row and open a
     * fresh one (wear-levelled choice among free rows).
     * @return the allocated PPN, or invalidPpn if space is exhausted.
     */
    Ppn allocatePage(Lpn lpn);

    /** Mark the page holding stale data invalid (after remap). */
    void invalidate(Ppn ppn);

    /**
     * Claim `pages` worth of rows (rounded up) from the top of the
     * address space for an immutable bulk region.
     * @return the starting PPN of the claimed range.
     */
    Ppn allocateRegion(std::uint64_t pages);

    /** True once free rows fall below the GC low watermark. */
    bool needsGc() const;

    /** True while free rows are below the GC high watermark. */
    bool wantsMoreGc() const;

    /**
     * Choose the sealed row with the fewest valid pages.
     * @return row index, or UINT64_MAX when no sealed row exists.
     */
    std::uint64_t pickGcVictim() const;

    /** Valid LPNs (and their PPNs) remaining in a row. */
    std::vector<std::pair<Lpn, Ppn>> validPagesIn(std::uint64_t row) const;

    /** Return a row to the free pool after its blocks were erased. */
    void onRowErased(std::uint64_t row);

    RowState rowState(std::uint64_t row) const { return rows_[row].state; }
    std::uint32_t rowValidCount(std::uint64_t row) const
    {
        return rows_[row].validCount;
    }
    std::uint32_t rowEraseCount(std::uint64_t row) const
    {
        return rows_[row].eraseCount;
    }

    std::uint64_t freeRows() const { return freeRows_; }
    std::uint64_t regionRows() const { return regionRows_; }

    /** Largest minus smallest erase count over non-region rows. */
    std::uint32_t eraseCountSpread() const;

    /** Total pages appended through allocatePage. */
    std::uint64_t pagesAllocated() const { return pagesAllocated_.value(); }

  private:
    struct RowMeta
    {
        RowState state = RowState::Free;
        std::uint32_t validCount = 0;
        std::uint32_t eraseCount = 0;
        std::uint32_t writeCursor = 0;
        /** LPN per page slot; allocated lazily for written rows. */
        std::unique_ptr<std::vector<Lpn>> lpns;
    };

    /** Pick and open a fresh active row. @return false if none free. */
    bool openNewActiveRow();

    void ensureLpns(RowMeta &row);

    FlashParams flash_;
    FtlParams params_;
    std::uint64_t pagesPerRow_;
    std::vector<RowMeta> rows_;
    std::uint64_t activeRow_ = UINT64_MAX;
    std::uint64_t freeRows_ = 0;
    std::uint64_t regionRows_ = 0;
    /** Rows at or above this index belong to bulk regions. */
    std::uint64_t regionBoundary_;

    Counter pagesAllocated_;
};

}  // namespace recssd

#endif  // RECSSD_FTL_BLOCK_MANAGER_H
