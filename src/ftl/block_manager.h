/**
 * @file
 * Physical space management at superblock-row granularity.
 *
 * Like production FTLs, writes are striped across all channels and
 * dies by appending to an active "row" — the set of one erase block
 * per die, covering a contiguous PPN range. Rows are the unit of
 * allocation, garbage collection and wear levelling.
 *
 * Bulk-loaded embedding tables claim rows from the top of the address
 * space as immutable `Region` rows; the log-structured write path
 * allocates from the remaining pool.
 */

#ifndef RECSSD_FTL_BLOCK_MANAGER_H
#define RECSSD_FTL_BLOCK_MANAGER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/flash/flash_params.h"
#include "src/ftl/ftl_params.h"

namespace recssd
{

class BlockManager
{
  public:
    enum class RowState : std::uint8_t
    {
        Free,      ///< erased, available for allocation
        Active,    ///< currently receiving appended writes
        Sealed,    ///< full; GC candidate
        Region,    ///< immutable bulk-loaded data
    };

    /**
     * Append streams. The frequency-aware layout policy segregates
     * classifier-hot pages into their own active rows so that hot data
     * clusters physically (dense hot rows stripe round-robin across
     * channels, and GC never has to copy hot and cold pages together).
     * The log policy only ever touches `Cold`, which behaves exactly
     * like the seed's single append log.
     */
    enum class Stream : std::uint8_t
    {
        Cold = 0,  ///< default log-structured append stream
        Hot = 1,   ///< classifier-hot pages (freq layout only)
    };
    static constexpr unsigned kNumStreams = 2;

    BlockManager(const FlashParams &flash, const FtlParams &ftl);

    /** Pages covered by one row (pagesPerBlock x channels x dies). */
    std::uint64_t pagesPerRow() const { return pagesPerRow_; }
    std::uint64_t numRows() const { return rows_.size(); }
    std::uint64_t rowOf(Ppn ppn) const { return ppn / pagesPerRow_; }

    /**
     * Allocate the next physical page of the append log and record
     * that `lpn` will live there. May seal the active row and open a
     * fresh one (wear-levelled choice among free rows).
     * @param stream Which append stream receives the page; each stream
     *        maintains its own active row.
     * @return the allocated PPN, or invalidPpn if space is exhausted.
     */
    Ppn allocatePage(Lpn lpn, Stream stream = Stream::Cold);

    /** Mark the page holding stale data invalid (after remap). */
    void invalidate(Ppn ppn);

    /**
     * Claim `pages` worth of rows (rounded up) from the top of the
     * address space for an immutable bulk region.
     * @return the starting PPN of the claimed range.
     */
    Ppn allocateRegion(std::uint64_t pages);

    /** True once free rows fall below the GC low watermark. */
    bool needsGc() const;

    /** True while free rows are below the GC high watermark. */
    bool wantsMoreGc() const;

    /**
     * Choose the sealed row with the fewest valid pages.
     * @return row index, or UINT64_MAX when no sealed row exists.
     */
    std::uint64_t pickGcVictim() const;

    /** Valid LPNs (and their PPNs) remaining in a row. */
    std::vector<std::pair<Lpn, Ppn>> validPagesIn(std::uint64_t row) const;

    /** Return a row to the free pool after its blocks were erased. */
    void onRowErased(std::uint64_t row);

    RowState rowState(std::uint64_t row) const { return rows_[row].state; }
    std::uint32_t rowValidCount(std::uint64_t row) const
    {
        return rows_[row].validCount;
    }
    std::uint32_t rowEraseCount(std::uint64_t row) const
    {
        return rows_[row].eraseCount;
    }

    std::uint64_t freeRows() const { return freeRows_; }
    std::uint64_t regionRows() const { return regionRows_; }

    /** Largest minus smallest erase count over non-region rows. */
    std::uint32_t eraseCountSpread() const;

    /** Total pages appended through allocatePage. */
    std::uint64_t pagesAllocated() const { return pagesAllocated_.value(); }

    /** Pages appended to the hot stream (freq layout only). */
    std::uint64_t hotPagesAllocated() const
    {
        return hotPagesAllocated_.value();
    }

    /** Stream the row was (last) opened for. Meaningful for
     *  Active/Sealed rows written through allocatePage. */
    Stream rowStream(std::uint64_t row) const { return rows_[row].stream; }

  private:
    struct RowMeta
    {
        RowState state = RowState::Free;
        Stream stream = Stream::Cold;
        std::uint32_t validCount = 0;
        std::uint32_t eraseCount = 0;
        std::uint32_t writeCursor = 0;
        /** LPN per page slot; allocated lazily for written rows. */
        std::unique_ptr<std::vector<Lpn>> lpns;
    };

    /** Pick and open a fresh active row for `stream`.
     *  @return false if none free. */
    bool openNewActiveRow(Stream stream);

    void ensureLpns(RowMeta &row);

    FlashParams flash_;
    FtlParams params_;
    std::uint64_t pagesPerRow_;
    std::vector<RowMeta> rows_;
    /** Active row per append stream (Cold, Hot). */
    std::uint64_t activeRow_[kNumStreams] = {UINT64_MAX, UINT64_MAX};
    std::uint64_t freeRows_ = 0;
    std::uint64_t regionRows_ = 0;
    /** Rows at or above this index belong to bulk regions. */
    std::uint64_t regionBoundary_;

    Counter pagesAllocated_;
    Counter hotPagesAllocated_;
};

}  // namespace recssd

#endif  // RECSSD_FTL_BLOCK_MANAGER_H
