/**
 * @file
 * The frequency-aware layout subsystem's control plane.
 *
 * Owns the access-frequency tracker and the hot-row DRAM tier, and
 * turns classifier events into layout actions:
 *
 *  - promotion  -> the page is pinned into the hot tier for free on
 *    its next flash read (the bytes are already in the controller's
 *    buffer when the read DMA completes);
 *  - maturity (stable across a decay sweep) -> enqueue a hot-cluster
 *    migration (the Ftl drains the queue one page at a time on the
 *    firmware core, copying the page into a dedicated hot superblock
 *    row whose append order stripes round-robin across channels) and
 *    pin the page once the copy lands;
 *  - demotion   -> unpin from the tier; the physical copy is re-packed
 *    to a cold row lazily by the next GC pass over its row;
 *  - overwrite/trim -> unpin (the pinned PPN went stale), re-pin on
 *    write completion if the page is still classified hot;
 *  - GC move    -> refresh the pinned PPN.
 *
 * Built only under `LayoutPolicy::Freq`; a `Log` system never
 * constructs one, so the seed path stays byte-identical.
 */

#ifndef RECSSD_FTL_LAYOUT_MANAGER_H
#define RECSSD_FTL_LAYOUT_MANAGER_H

#include <deque>
#include <functional>

#include "src/cache/hot_row_tier.h"
#include "src/common/stats.h"
#include "src/ftl/freq_tracker.h"
#include "src/ftl/layout_params.h"

namespace recssd
{

class LayoutManager
{
  public:
    explicit LayoutManager(const LayoutParams &params);

    /** The Ftl installs its migration pump here (called on maturity). */
    void setMigrationKick(std::function<void()> kick)
    {
        kick_ = std::move(kick);
    }

    /**
     * Record a logical-page access (host read or NDP SLS page) of
     * `weight` rows — a coalesced SLS gather records the page once
     * with weight = rows gathered from it. Handles any
     * promotion/demotion the access triggers.
     */
    void onAccess(Lpn lpn, std::uint32_t weight = 1);

    /** The hot-row DRAM tier, consulted before any flash read. */
    HotRowTier &tier() { return tier_; }
    const HotRowTier &tier() const { return tier_; }

    const FreqTracker &tracker() const { return tracker_; }

    /** True while the page is classified hot. */
    bool isHot(Lpn lpn) const { return tracker_.isHot(lpn); }

    /** Next page awaiting hot-cluster migration, or invalidLpn. */
    Lpn popPendingMigration();

    bool hasPendingMigrations() const { return !pending_.empty(); }

    /**
     * A flash read of a hot-but-unpinned `lpn` completed at `ppn`:
     * pin it for free (the page is in the controller buffer anyway).
     */
    void pinFromRead(Lpn lpn, Ppn ppn);

    /** A hot-cluster migration landed `lpn` at `ppn`: pin it. */
    void onMigrated(Lpn lpn, Ppn ppn);

    /** GC moved the live copy of `lpn` to `ppn`. */
    void onPhysicalMove(Lpn lpn, Ppn ppn) { tier_.update(lpn, ppn); }

    /** Host write/trim made any pinned copy of `lpn` stale. */
    void onDataInvalidated(Lpn lpn) { tier_.invalidate(lpn); }

    /** A host write of `lpn` completed at `ppn`: re-pin if still hot. */
    void onRewrite(Lpn lpn, Ppn ppn);

    const LayoutParams &params() const { return params_; }

    /** @{ Stats. */
    std::uint64_t promotions() const { return promotions_.value(); }
    std::uint64_t demotions() const { return demotions_.value(); }
    std::uint64_t migratedPages() const { return migrated_.value(); }
    std::uint64_t readPins() const { return readPins_.value(); }
    /** @} */

  private:
    LayoutParams params_;
    FreqTracker tracker_;
    HotRowTier tier_;
    std::deque<Lpn> pending_;  ///< maturity-ordered migration queue
    std::function<void()> kick_;

    Counter promotions_;
    Counter demotions_;
    Counter migrated_;
    Counter readPins_;
};

}  // namespace recssd

#endif  // RECSSD_FTL_LAYOUT_MANAGER_H
