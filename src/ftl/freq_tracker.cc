#include "src/ftl/freq_tracker.h"

#include <algorithm>

#include "src/common/logging.h"

namespace recssd
{

FreqTracker::FreqTracker(const LayoutParams &params) : params_(params)
{
    recssd_assert(params_.promoteThreshold > params_.demoteThreshold,
                  "hysteresis band requires promote > demote threshold");
    recssd_assert(params_.counterCap >= params_.promoteThreshold,
                  "counter cap below the promote threshold");
    recssd_assert(params_.decayInterval > 0, "decay interval must be > 0");
}

FreqTracker::Event
FreqTracker::record(Lpn lpn, std::uint32_t weight)
{
    accesses_ += weight;
    sinceSweep_ += weight;
    Event ev = Event::None;
    std::uint32_t &c = counts_[lpn];
    c = std::min(c + weight, params_.counterCap);
    if (c >= params_.promoteThreshold && !hot_.contains(lpn)) {
        hot_.insert(lpn);
        ev = Event::Promoted;
    }
    while (sinceSweep_ >= params_.decayInterval) {
        sinceSweep_ -= params_.decayInterval;
        decaySweep();
    }
    return ev;
}

std::uint32_t
FreqTracker::count(Lpn lpn) const
{
    auto it = counts_.find(lpn);
    return it != counts_.end() ? it->second : 0;
}

void
FreqTracker::decaySweep()
{
    ++sweeps_;
    // Halve-and-prune is an order-independent fold; demotions and
    // maturities are collected here and sorted before anyone
    // consumes them.
    // sim-lint: allow(R3) order-independent halve/prune; outputs sorted
    for (auto it = counts_.begin(); it != counts_.end();) {
        it->second /= 2;
        bool was_hot = hot_.contains(it->first);
        if (was_hot && it->second < params_.demoteThreshold) {
            hot_.erase(it->first);
            mature_.erase(it->first);
            demoted_.push_back(it->first);
            was_hot = false;
        } else if (was_hot && it->second >= params_.promoteThreshold &&
                   !mature_.contains(it->first)) {
            // Still above the promote bar after halving: the page is
            // frequency-stable, not a recency blip — worth the flash
            // copy into a hot-clustered row.
            mature_.insert(it->first);
            matured_.push_back(it->first);
        }
        if (it->second == 0 && !was_hot)
            it = counts_.erase(it);
        else
            ++it;
    }
}

std::vector<Lpn>
FreqTracker::takeDemotions()
{
    std::vector<Lpn> out = std::move(demoted_);
    demoted_.clear();
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Lpn>
FreqTracker::takeMaturities()
{
    std::vector<Lpn> out = std::move(matured_);
    matured_.clear();
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace recssd
