#include "src/ftl/page_cache.h"

#include "src/common/logging.h"

namespace recssd
{

PageCache::PageCache(unsigned capacity_pages, unsigned ways) : ways_(ways)
{
    recssd_assert(ways > 0 && capacity_pages >= ways &&
                      capacity_pages % ways == 0,
                  "page cache capacity must be a positive multiple of ways");
    numSets_ = capacity_pages / ways;
    entries_.resize(capacity_pages);
}

std::uint64_t
PageCache::setOf(Lpn lpn) const
{
    // Multiplicative hash to spread adjacent pages across sets.
    return (lpn * 0x9e3779b97f4a7c15ull >> 17) % numSets_;
}

bool
PageCache::lookup(Lpn lpn, Ppn &ppn)
{
    Entry *set = &entries_[setOf(lpn) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].lpn == lpn) {
            set[w].lastUse = ++useClock_;
            ppn = set[w].ppn;
            hits_.inc();
            return true;
        }
    }
    misses_.inc();
    return false;
}

bool
PageCache::contains(Lpn lpn) const
{
    const Entry *set = &entries_[setOf(lpn) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].lpn == lpn)
            return true;
    }
    return false;
}

void
PageCache::insert(Lpn lpn, Ppn ppn)
{
    Entry *set = &entries_[setOf(lpn) * ways_];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].lpn == lpn || set[w].lpn == invalidLpn) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    victim->lpn = lpn;
    victim->ppn = ppn;
    victim->lastUse = ++useClock_;
}

void
PageCache::invalidate(Lpn lpn)
{
    Entry *set = &entries_[setOf(lpn) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].lpn == lpn) {
            set[w] = Entry{};
            return;
        }
    }
}

}  // namespace recssd
