/**
 * @file
 * Set-associative LRU cache of logical pages held in SSD DRAM.
 *
 * The cache stores only the identity of cached pages (LPN -> PPN at
 * fill time); the bytes themselves are read through the DataStore at
 * the recorded PPN, which is exactly what a DRAM-resident copy would
 * contain. A hit saves the flash array access but still pays firmware
 * and transfer costs at the callers' discretion.
 */

#ifndef RECSSD_FTL_PAGE_CACHE_H
#define RECSSD_FTL_PAGE_CACHE_H

#include <cstdint>
#include <vector>

#include "src/common/analysis.h"
#include "src/common/stats.h"
#include "src/common/types.h"

namespace recssd
{

class PageCache
{
  public:
    /**
     * @param capacity_pages Total entries.
     * @param ways Associativity (capacity must divide evenly).
     */
    PageCache(unsigned capacity_pages, unsigned ways);

    /**
     * Look up a logical page; refreshes LRU state on hit.
     * @param[out] ppn Physical location of the cached copy.
     */
    bool lookup(Lpn lpn, Ppn &ppn) RECSSD_LIVE_LOOKUP;

    /** Probe without updating LRU or hit/miss stats. */
    bool contains(Lpn lpn) const;

    /** Insert (possibly evicting the set's LRU entry). */
    void insert(Lpn lpn, Ppn ppn);

    /** Drop a logical page (overwrite/GC made the copy stale). */
    void invalidate(Lpn lpn);

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    unsigned capacity() const { return static_cast<unsigned>(entries_.size()); }
    unsigned ways() const { return ways_; }

    double
    hitRate() const
    {
        std::uint64_t total = hits() + misses();
        return total ? static_cast<double>(hits()) / total : 0.0;
    }

  private:
    struct Entry
    {
        Lpn lpn = invalidLpn;
        Ppn ppn = invalidPpn;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setOf(Lpn lpn) const;

    unsigned ways_;
    unsigned numSets_;
    std::uint64_t useClock_ = 0;
    std::vector<Entry> entries_;

    Counter hits_;
    Counter misses_;
};

}  // namespace recssd

#endif  // RECSSD_FTL_PAGE_CACHE_H
