/**
 * @file
 * Key-only set-associative LRU cache.
 *
 * Used by the locality analyses (the paper's Figure 4 sweeps a 16-way
 * LRU 4KB page cache over capacities) where only hit/miss behaviour
 * matters, not cached content.
 */

#ifndef RECSSD_CACHE_SET_ASSOC_LRU_H
#define RECSSD_CACHE_SET_ASSOC_LRU_H

#include <cstdint>
#include <vector>

#include "src/common/stats.h"

namespace recssd
{

class SetAssocLru
{
  public:
    /**
     * @param capacity Total entries (must be a multiple of ways).
     * @param ways Associativity.
     */
    SetAssocLru(std::size_t capacity, unsigned ways);

    /**
     * Touch a key: record the hit and promote, or insert with LRU
     * eviction on miss.
     * @retval true on hit.
     */
    bool access(std::uint64_t key);

    /** Probe only. */
    bool contains(std::uint64_t key) const;

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    double
    hitRate() const
    {
        std::uint64_t total = hits() + misses();
        return total ? static_cast<double>(hits()) / total : 0.0;
    }

    void
    resetStats()
    {
        hits_.reset();
        misses_.reset();
    }

    std::size_t capacity() const { return entries_.size(); }
    unsigned ways() const { return ways_; }

  private:
    struct Entry
    {
        std::uint64_t key = ~std::uint64_t(0);
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::size_t setOf(std::uint64_t key) const;

    unsigned ways_;
    std::size_t numSets_;
    std::uint64_t clock_ = 0;
    std::vector<Entry> entries_;
    Counter hits_;
    Counter misses_;
};

}  // namespace recssd

#endif  // RECSSD_CACHE_SET_ASSOC_LRU_H
