/**
 * @file
 * Host DRAM software cache of embedding vectors.
 *
 * Fully associative LRU, sized per table (§5: "host-side DRAM caches
 * store up to 2K entries per embedding table"). Used by the baseline
 * SSD path; the NDP path cannot use it (the device returns accumulated
 * sums, not raw vectors — §4.2) and relies on static partitioning
 * instead.
 */

#ifndef RECSSD_CACHE_HOST_EMBEDDING_CACHE_H
#define RECSSD_CACHE_HOST_EMBEDDING_CACHE_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cache/lru_cache.h"
#include "src/common/types.h"

namespace recssd
{

class HostEmbeddingCache
{
  public:
    using Vector = std::vector<float>;

    /** @param entries_per_table LRU capacity for each table. */
    explicit HostEmbeddingCache(std::size_t entries_per_table);

    /** Fetch a cached vector (promotes). @return nullptr on miss. */
    const Vector *get(std::uint32_t table_id, RowId row);

    /** Cache a vector fetched from the SSD. */
    void put(std::uint32_t table_id, RowId row, Vector value);

    std::uint64_t hits() const;
    std::uint64_t misses() const;
    double hitRate() const;
    void resetStats();

    std::size_t entriesPerTable() const { return entriesPerTable_; }

  private:
    using TableCache = LruCache<RowId, Vector>;

    TableCache &tableCache(std::uint32_t table_id);

    std::size_t entriesPerTable_;
    std::unordered_map<std::uint32_t, std::unique_ptr<TableCache>> tables_;
};

}  // namespace recssd

#endif  // RECSSD_CACHE_HOST_EMBEDDING_CACHE_H
