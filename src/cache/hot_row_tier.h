/**
 * @file
 * Hot-row DRAM tier: pinned controller-DRAM copies of hot pages.
 *
 * Unlike the set-associative FTL page cache (`src/ftl/page_cache.h`),
 * which churns under cold traffic, this tier is admission-controlled
 * by the frequency-aware layout policy: only classifier-promoted pages
 * enter, and an entry leaves only on demotion, overwrite/trim, or a
 * physical move. Like the page cache, it stores page *identity*
 * (LPN -> PPN at fill time); bytes are read through the DataStore at
 * the recorded PPN, which is what a DRAM-resident copy would hold.
 *
 * Hit accounting is deliberately disjoint from the page cache: a read
 * served here never probes the page cache, so
 *   ftl.hostReads == hot_tier.hits + page_cache.hits + page_cache.misses
 * holds exactly (locked by tests/test_layout_properties.cc).
 */

#ifndef RECSSD_CACHE_HOT_ROW_TIER_H
#define RECSSD_CACHE_HOT_ROW_TIER_H

#include <cstdint>
#include <unordered_map>

#include "src/common/stats.h"
#include "src/common/types.h"

namespace recssd
{

class HotRowTier
{
  public:
    /** @param capacity_pages Pinned entries; 0 disables admission. */
    explicit HotRowTier(unsigned capacity_pages);

    /**
     * Look up a logical page. Counts exactly one hit or miss per call.
     * @param[out] ppn Physical location of the pinned copy.
     */
    bool lookup(Lpn lpn, Ppn &ppn);

    /** Probe without touching hit/miss stats. */
    bool contains(Lpn lpn) const { return map_.contains(lpn); }

    /**
     * Pin a page. No eviction: admission fails when full (the layout
     * manager frees space by demoting, never by silently dropping a
     * still-hot page).
     * @return true if the page is now resident.
     */
    bool insert(Lpn lpn, Ppn ppn);

    /** Refresh the physical location of a resident page (GC moved it). */
    void update(Lpn lpn, Ppn ppn);

    /** Unpin a page (demotion, overwrite, trim). */
    void invalidate(Lpn lpn);

    unsigned capacity() const { return capacity_; }
    unsigned resident() const { return static_cast<unsigned>(map_.size()); }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t insertions() const { return insertions_.value(); }
    std::uint64_t rejected() const { return rejected_.value(); }

    double
    hitRate() const
    {
        std::uint64_t total = hits() + misses();
        return total ? static_cast<double>(hits()) / total : 0.0;
    }

  private:
    unsigned capacity_;
    std::unordered_map<Lpn, Ppn> map_;  // point lookups only

    Counter hits_;
    Counter misses_;
    Counter insertions_;
    Counter rejected_;  ///< admissions refused for capacity
};

}  // namespace recssd

#endif  // RECSSD_CACHE_HOT_ROW_TIER_H
