#include "src/cache/static_partition.h"

#include <algorithm>

#include "src/common/logging.h"

namespace recssd
{

StaticPartition::StaticPartition(std::size_t entries_per_table)
    : entriesPerTable_(entries_per_table)
{
    recssd_assert(entries_per_table > 0, "partition needs capacity");
}

void
StaticPartition::profile(std::uint32_t table_id, RowId row)
{
    recssd_assert(!built_, "cannot profile a frozen partition");
    ++counts_[table_id][row];
}

void
StaticPartition::build(ValueProvider values)
{
    recssd_assert(!built_, "partition already built");
    // Per-table work is independent across tables, and each table's
    // resident set is fixed by the deterministic partial_sort
    // tie-break below, so hash order cannot leak into the result.
    // sim-lint: allow(R3) order-independent per-table build
    for (auto &[table_id, rows] : counts_) {
        std::vector<std::pair<RowId, std::uint64_t>> ranked(rows.begin(),
                                                            rows.end());
        std::size_t keep = std::min(entriesPerTable_, ranked.size());
        std::partial_sort(ranked.begin(), ranked.begin() + keep,
                          ranked.end(), [](const auto &a, const auto &b) {
                              if (a.second != b.second)
                                  return a.second > b.second;
                              return a.first < b.first;
                          });
        auto &res = resident_[table_id];
        for (std::size_t i = 0; i < keep; ++i)
            res.emplace(ranked[i].first, values(table_id, ranked[i].first));
    }
    counts_.clear();
    built_ = true;
}

const std::vector<float> *
StaticPartition::lookup(std::uint32_t table_id, RowId row)
{
    recssd_assert(built_, "partition not built yet");
    auto tit = resident_.find(table_id);
    if (tit == resident_.end()) {
        ++misses_;
        return nullptr;
    }
    auto rit = tit->second.find(row);
    if (rit == tit->second.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    return &rit->second;
}

std::size_t
StaticPartition::residentRows(std::uint32_t table_id) const
{
    auto it = resident_.find(table_id);
    return it == resident_.end() ? 0 : it->second.size();
}

}  // namespace recssd
