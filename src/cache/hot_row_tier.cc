#include "src/cache/hot_row_tier.h"

namespace recssd
{

HotRowTier::HotRowTier(unsigned capacity_pages) : capacity_(capacity_pages)
{
}

bool
HotRowTier::lookup(Lpn lpn, Ppn &ppn)
{
    auto it = map_.find(lpn);
    if (it == map_.end()) {
        misses_.inc();
        return false;
    }
    hits_.inc();
    ppn = it->second;
    return true;
}

bool
HotRowTier::insert(Lpn lpn, Ppn ppn)
{
    auto it = map_.find(lpn);
    if (it != map_.end()) {
        it->second = ppn;
        return true;
    }
    if (map_.size() >= capacity_) {
        rejected_.inc();
        return false;
    }
    map_.emplace(lpn, ppn);
    insertions_.inc();
    return true;
}

void
HotRowTier::update(Lpn lpn, Ppn ppn)
{
    auto it = map_.find(lpn);
    if (it != map_.end())
        it->second = ppn;
}

void
HotRowTier::invalidate(Lpn lpn)
{
    map_.erase(lpn);
}

}  // namespace recssd
