#include "src/cache/host_embedding_cache.h"

namespace recssd
{

HostEmbeddingCache::HostEmbeddingCache(std::size_t entries_per_table)
    : entriesPerTable_(entries_per_table)
{
    recssd_assert(entries_per_table > 0, "cache needs capacity");
}

HostEmbeddingCache::TableCache &
HostEmbeddingCache::tableCache(std::uint32_t table_id)
{
    auto it = tables_.find(table_id);
    if (it == tables_.end()) {
        it = tables_
                 .emplace(table_id,
                          std::make_unique<TableCache>(entriesPerTable_))
                 .first;
    }
    return *it->second;
}

const HostEmbeddingCache::Vector *
HostEmbeddingCache::get(std::uint32_t table_id, RowId row)
{
    return tableCache(table_id).get(row);
}

void
HostEmbeddingCache::put(std::uint32_t table_id, RowId row, Vector value)
{
    tableCache(table_id).put(row, std::move(value));
}

std::uint64_t
HostEmbeddingCache::hits() const
{
    std::uint64_t total = 0;
    // sim-lint: allow(R3) commutative sum over per-table counters
    for (const auto &[id, cache] : tables_)
        total += cache->hits();
    return total;
}

std::uint64_t
HostEmbeddingCache::misses() const
{
    std::uint64_t total = 0;
    // sim-lint: allow(R3) commutative sum over per-table counters
    for (const auto &[id, cache] : tables_)
        total += cache->misses();
    return total;
}

double
HostEmbeddingCache::hitRate() const
{
    std::uint64_t h = hits();
    std::uint64_t total = h + misses();
    return total ? static_cast<double>(h) / total : 0.0;
}

void
HostEmbeddingCache::resetStats()
{
    // sim-lint: allow(R3) zeroing every counter; order-free
    for (auto &[id, cache] : tables_)
        cache->resetStats();
}

}  // namespace recssd
