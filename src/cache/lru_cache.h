/**
 * @file
 * Fully associative LRU cache template.
 *
 * Backs the host-side software embedding cache (§4.2: "for host DRAM
 * caching, it is entirely feasible to use a large fully associative
 * LRU software cache"). O(1) get/put via hash map + intrusive list.
 */

#ifndef RECSSD_CACHE_LRU_CACHE_H
#define RECSSD_CACHE_LRU_CACHE_H

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "src/common/logging.h"
#include "src/common/stats.h"

namespace recssd
{

template <typename Key, typename Value>
class LruCache
{
  public:
    explicit LruCache(std::size_t capacity) : capacity_(capacity)
    {
        recssd_assert(capacity > 0, "LRU cache needs capacity");
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return map_.size(); }

    /** Fetch and promote to MRU. @return nullptr on miss. */
    Value *
    get(const Key &key)
    {
        auto it = map_.find(key);
        if (it == map_.end()) {
            misses_.inc();
            return nullptr;
        }
        order_.splice(order_.begin(), order_, it->second);
        hits_.inc();
        return &it->second->second;
    }

    /** Probe without promoting or counting. */
    bool contains(const Key &key) const { return map_.contains(key); }

    /** Insert/overwrite; evicts the LRU entry at capacity. */
    void
    put(const Key &key, Value value)
    {
        auto it = map_.find(key);
        if (it != map_.end()) {
            it->second->second = std::move(value);
            order_.splice(order_.begin(), order_, it->second);
            return;
        }
        if (map_.size() >= capacity_) {
            auto &lru = order_.back();
            map_.erase(lru.first);
            order_.pop_back();
            evictions_.inc();
        }
        order_.emplace_front(key, std::move(value));
        map_[key] = order_.begin();
    }

    void
    clear()
    {
        map_.clear();
        order_.clear();
    }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }

    double
    hitRate() const
    {
        std::uint64_t total = hits() + misses();
        return total ? static_cast<double>(hits()) / total : 0.0;
    }

    void
    resetStats()
    {
        hits_.reset();
        misses_.reset();
        evictions_.reset();
    }

  private:
    std::size_t capacity_;
    std::list<std::pair<Key, Value>> order_;
    std::unordered_map<Key,
                       typename std::list<std::pair<Key, Value>>::iterator>
        map_;
    Counter hits_;
    Counter misses_;
    Counter evictions_;
};

}  // namespace recssd

#endif  // RECSSD_CACHE_LRU_CACHE_H
