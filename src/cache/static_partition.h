/**
 * @file
 * Static host-DRAM partitioning of embedding tables (§4.2).
 *
 * The NDP operator returns accumulated sums, so the host cannot
 * populate a demand cache from its results. Instead, input profiling
 * picks the hottest rows per table; those live permanently in host
 * DRAM while the rest stay on the SSD. At inference time the host
 * sends only the cold rows to the device and post-processes the
 * returned partial sums with the hot rows' contributions.
 */

#ifndef RECSSD_CACHE_STATIC_PARTITION_H
#define RECSSD_CACHE_STATIC_PARTITION_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"

namespace recssd
{

class StaticPartition
{
  public:
    /** Supplies the fp32 value of (table, row) for resident storage. */
    using ValueProvider =
        std::function<std::vector<float>(std::uint32_t table_id, RowId row)>;

    /** @param entries_per_table DRAM budget, in rows, for each table. */
    explicit StaticPartition(std::size_t entries_per_table);

    /** Record one profiled access (training pass over a trace). */
    void profile(std::uint32_t table_id, RowId row);

    /**
     * Freeze the partition: per table, the `entries_per_table` most
     * frequently profiled rows become DRAM resident, materialized via
     * `values`.
     */
    void build(ValueProvider values);

    bool built() const { return built_; }

    /** @return resident vector, or nullptr if the row is cold. */
    const std::vector<float> *lookup(std::uint32_t table_id, RowId row);

    /** Rows resident for one table. */
    std::size_t residentRows(std::uint32_t table_id) const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    double
    hitRate() const
    {
        std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

    void
    resetStats()
    {
        hits_ = 0;
        misses_ = 0;
    }

  private:
    std::size_t entriesPerTable_;
    bool built_ = false;
    /** Profiling counts per table. */
    std::unordered_map<std::uint32_t, std::unordered_map<RowId, std::uint64_t>>
        counts_;
    /** Frozen resident sets. */
    std::unordered_map<std::uint32_t,
                       std::unordered_map<RowId, std::vector<float>>>
        resident_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace recssd

#endif  // RECSSD_CACHE_STATIC_PARTITION_H
