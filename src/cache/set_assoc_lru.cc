#include "src/cache/set_assoc_lru.h"

#include "src/common/logging.h"

namespace recssd
{

SetAssocLru::SetAssocLru(std::size_t capacity, unsigned ways) : ways_(ways)
{
    recssd_assert(ways > 0 && capacity >= ways && capacity % ways == 0,
                  "capacity must be a positive multiple of ways");
    numSets_ = capacity / ways;
    entries_.resize(capacity);
}

std::size_t
SetAssocLru::setOf(std::uint64_t key) const
{
    return (key * 0x9e3779b97f4a7c15ull >> 21) % numSets_;
}

bool
SetAssocLru::access(std::uint64_t key)
{
    Entry *set = &entries_[setOf(key) * ways_];
    Entry *victim = &set[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].key == key) {
            set[w].lastUse = ++clock_;
            hits_.inc();
            return true;
        }
        if (!set[w].valid) {
            victim = &set[w];
        } else if (victim->valid && set[w].lastUse < victim->lastUse) {
            victim = &set[w];
        }
    }
    misses_.inc();
    victim->key = key;
    victim->valid = true;
    victim->lastUse = ++clock_;
    return false;
}

bool
SetAssocLru::contains(std::uint64_t key) const
{
    const Entry *set = &entries_[setOf(key) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (set[w].valid && set[w].key == key)
            return true;
    }
    return false;
}

}  // namespace recssd
