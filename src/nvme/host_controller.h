/**
 * @file
 * The SSD-side NVMe host controller.
 *
 * Fetches commands over PCIe, runs them through a small controller
 * resource (the second A9 core plus the NVMe DMA engine), dispatches
 * to the FTL — or, for commands carrying the SLS flag, to a registered
 * `SlsHandler` (the RecSSD engine) — and posts completions back across
 * the link.
 */

#ifndef RECSSD_NVME_HOST_CONTROLLER_H
#define RECSSD_NVME_HOST_CONTROLLER_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/event_queue.h"
#include "src/common/resource.h"
#include "src/common/stats.h"
#include "src/ftl/ftl.h"
#include "src/nvme/nvme_command.h"
#include "src/nvme/pcie_link.h"

namespace recssd
{

struct NvmeParams
{
    /** Controller occupancy to fetch + parse one command. */
    Tick cmdProcessCost = 1 * usec;
    /** Controller occupancy to post one completion. */
    Tick completionPostCost = 500 * nsec;
    /** Submission/completion queue pairs exposed to the host. */
    unsigned numQueues = 8;
    /** Submission queue entry / completion entry sizes (bytes). */
    unsigned sqeBytes = 64;
    unsigned cqeBytes = 16;
};

/**
 * Device-side hooks for SLS commands. Implemented by the RecSSD
 * engine in `src/ndp`; declared here so the NVMe layer needs no
 * dependency on it.
 */
class SlsHandler
{
  public:
    virtual ~SlsHandler() = default;

    /**
     * A config (write-like) SLS command arrived; its payload has been
     * DMAed into controller DRAM. Call `done` when the device has
     * accepted the configuration (completes the NVMe write).
     */
    virtual void configWrite(const NvmeCommand &cmd,
                             std::function<void()> done) = 0;

    /**
     * A result (read-like) SLS command arrived. Call `done` with the
     * packed result bytes once they are ready to DMA.
     */
    virtual void
    resultRead(const NvmeCommand &cmd,
               std::function<void(std::shared_ptr<std::vector<std::byte>>)>
                   done) = 0;
};

class HostController
{
  public:
    /** Completion of a data-read command (lazy page view). */
    using ReadDone = std::function<void(const PageView &)>;
    using WriteDone = std::function<void()>;
    using SlsReadDone =
        std::function<void(std::shared_ptr<std::vector<std::byte>>)>;

    /** `track_prefix` namespaces the controller's trace track (multi-
     *  SSD systems pass "ssd<d>." so device spans stay separable). */
    HostController(EventQueue &eq, const NvmeParams &params, PcieLink &pcie,
                   Ftl &ftl, const std::string &track_prefix = "");

    void setSlsHandler(SlsHandler *handler) { sls_ = handler; }

    /** @{ Host driver entry points (one call = one NVMe command). */

    /** Single-page data read. */
    void submitRead(const NvmeCommand &cmd, ReadDone done);

    /** Single-page data write. */
    void submitWrite(const NvmeCommand &cmd, WriteDone done);

    /** Deallocate (trim) a single logical page. */
    void submitTrim(const NvmeCommand &cmd, WriteDone done);

    /** SLS config write (slsFlag set, write-like). */
    void submitSlsConfig(const NvmeCommand &cmd, WriteDone done);

    /** SLS result read (slsFlag set, read-like). */
    void submitSlsRead(const NvmeCommand &cmd, SlsReadDone done);
    /** @} */

    /** @{ DMA services used by the SLS engine (step 6 in Fig 7). */
    void dmaToHost(std::uint64_t bytes, EventQueue::Callback done,
                   std::uint64_t trace_id = 0);
    void dmaFromHost(std::uint64_t bytes, EventQueue::Callback done,
                     std::uint64_t trace_id = 0);
    /** @} */

    PcieLink &pcie() { return pcie_; }
    const NvmeParams &params() const { return params_; }

    /** Logical block (= flash page) size the namespace exposes. */
    unsigned pageSize() const { return ftl_.flash().params().pageSize; }

    /** @{ Fault hook (`src/fault`): full device dropout.
     *
     * After `killNow()` the controller neither fetches new commands
     * nor posts completions: submissions and in-flight command chains
     * are silently swallowed (counted in `droppedCommands`), exactly
     * what the host observes when a drive falls off the bus. */
    void killNow() { dead_ = true; }
    bool dead() const { return dead_; }
    std::uint64_t droppedCommands() const { return dropped_.value(); }
    /** @} */

    std::uint64_t commandsProcessed() const { return commands_.value(); }

  private:
    /** Command fetch: SQE DMA + controller parse cost. */
    void fetchCommand(std::uint64_t trace_id, EventQueue::Callback then);

    /** Completion: controller post cost + CQE DMA. */
    void postCompletion(std::uint64_t trace_id, EventQueue::Callback then);

    EventQueue &eq_;
    NvmeParams params_;
    PcieLink &pcie_;
    Ftl &ftl_;
    SlsHandler *sls_ = nullptr;
    std::string trackName_;
    SerialResource ctrl_;
    bool dead_ = false;

    Counter commands_;
    Counter dropped_;
};

}  // namespace recssd

#endif  // RECSSD_NVME_HOST_CONTROLLER_H
