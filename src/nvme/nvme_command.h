/**
 * @file
 * NVMe command structures, including the RecSSD SLS extension.
 *
 * RecSSD stays protocol compatible (§4.3): SLS operations reuse the
 * ordinary read/write command layout and are distinguished by a single
 * otherwise-unused command bit (`slsFlag`). The request ID that ties a
 * config-write to its result-read is embedded in the starting logical
 * block address: slba = table_base + request_id, recoverable on the
 * device with a modulus because tables are aligned to
 * `slsTableAlign` logical pages.
 */

#ifndef RECSSD_NVME_NVME_COMMAND_H
#define RECSSD_NVME_NVME_COMMAND_H

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/types.h"

namespace recssd
{

/** Logical-page alignment guaranteed for every embedding table. */
constexpr std::uint64_t slsTableAlign = 1ull << 22;  // 4M pages = 64GB

enum class NvmeOpcode : std::uint8_t
{
    Read = 0x02,
    Write = 0x01,
    /** Dataset management / deallocate (trim). */
    Dsm = 0x09,
};

struct NvmeCommand
{
    NvmeOpcode opcode = NvmeOpcode::Read;
    /** RecSSD: the repurposed unused command bit. */
    bool slsFlag = false;
    /** Starting logical page (16KB units in this model). */
    std::uint64_t slba = 0;
    /** Number of logical pages. */
    std::uint32_t nlb = 1;
    /** Command identifier assigned by the submitting queue. */
    std::uint16_t cid = 0;
    /** Tick at which the host rang the doorbell (timing bookkeeping). */
    Tick submitTick = 0;
    /** Observability: owning trace request id (0 = untraced). */
    std::uint64_t traceId = 0;
    /** Functional payload for writes / SLS config. */
    std::shared_ptr<std::vector<std::byte>> payload;
};

/** Split an SLS command SLBA into table base and request id. */
struct SlsAddress
{
    std::uint64_t tableBase;
    std::uint64_t requestId;

    static SlsAddress
    decode(std::uint64_t slba)
    {
        return SlsAddress{slba - (slba % slsTableAlign),
                          slba % slsTableAlign};
    }

    static std::uint64_t
    encode(std::uint64_t table_base, std::uint64_t request_id)
    {
        return table_base + request_id;
    }
};

}  // namespace recssd

#endif  // RECSSD_NVME_NVME_COMMAND_H
