#include "src/nvme/nvme_queue.h"

namespace recssd
{

NvmeQueuePair::NvmeQueuePair(std::uint16_t depth)
    : depth_(depth), sq_(depth), cq_(depth)
{
    recssd_assert(depth >= 2, "queue depth must be at least 2");
    // Phase tags start at 0 in the ring so the first controller write
    // (phase 1) is detectable.
    for (auto &cqe : cq_)
        cqe.phase = false;
}

bool
NvmeQueuePair::canSubmit() const
{
    // One slot is sacrificed to distinguish full from empty.
    return next(sqTail_) != sqHead_;
}

std::uint16_t
NvmeQueuePair::submit(const NvmeCommand &cmd)
{
    recssd_assert(canSubmit(), "submission queue full");
    NvmeCommand entry = cmd;
    entry.cid = nextCid_++;
    sq_[sqTail_] = entry;
    sqTail_ = next(sqTail_);  // tail doorbell write
    depthGauge_.inc();
    submitted_.inc();
    return entry.cid;
}

std::optional<NvmeCommand>
NvmeQueuePair::fetch()
{
    if (sqHead_ == sqTail_)
        return std::nullopt;
    NvmeCommand cmd = sq_[sqHead_];
    sqHead_ = next(sqHead_);
    return cmd;
}

void
NvmeQueuePair::complete(std::uint16_t cid, std::uint16_t status)
{
    NvmeCompletion cqe;
    cqe.cid = cid;
    cqe.status = status;
    cqe.sqHead = sqHead_;
    cqe.phase = cqPhase_;
    cq_[cqTail_] = cqe;
    cqTail_ = next(cqTail_);
    if (cqTail_ == 0)
        cqPhase_ = !cqPhase_;  // wrapped: flip the phase
}

std::optional<NvmeCompletion>
NvmeQueuePair::poll()
{
    const NvmeCompletion &cqe = cq_[cqHead_];
    if (cqe.phase != hostPhase_)
        return std::nullopt;  // stale entry: nothing new
    NvmeCompletion out = cqe;
    cqHead_ = next(cqHead_);
    if (cqHead_ == 0)
        hostPhase_ = !hostPhase_;
    recssd_assert(depthGauge_.value() > 0, "completion without submission");
    depthGauge_.dec();
    return out;
}

}  // namespace recssd
