#include "src/nvme/pcie_link.h"

#include "src/obs/tracer.h"

namespace recssd
{

PcieLink::PcieLink(EventQueue &eq, const PcieParams &params,
                   const std::string &track_prefix)
    : eq_(eq), params_(params), trackName_(track_prefix + "pcie"),
      link_(eq, trackName_)
{
}

Tick
PcieLink::occupancy(std::uint64_t bytes) const
{
    return static_cast<Tick>(static_cast<double>(bytes) /
                             static_cast<double>(params_.bytesPerSec) *
                             static_cast<double>(sec));
}

void
PcieLink::transfer(std::uint64_t bytes, EventQueue::Callback done,
                   std::uint64_t trace_id, Phase phase)
{
    bytesMoved_ += bytes;
    Tick lat = params_.latency;
    SpanId span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_))
        span = tracer->begin(tracer->track(trackName_), "xfer", phase,
                             trace_id);
    link_.acquire(occupancy(bytes), [this, lat, span,
                                     done = std::move(done)]() {
        // The span covers queueing + occupancy + propagation: the
        // bytes' full time on the wire from the request's viewpoint.
        if (done) {
            eq_.scheduleAfter(lat, [this, span, done = std::move(done)]() {
                if (Tracer *tracer = tracerOf(eq_))
                    tracer->end(span);
                done();
            });
        } else if (tracerOf(eq_) != nullptr) {
            eq_.scheduleAfter(lat, [this, span]() {
                if (Tracer *t = tracerOf(eq_))
                    t->end(span);
            });
        }
    });
}

}  // namespace recssd
