#include "src/nvme/pcie_link.h"

namespace recssd
{

PcieLink::PcieLink(EventQueue &eq, const PcieParams &params)
    : eq_(eq), params_(params), link_(eq, "pcie")
{
}

Tick
PcieLink::occupancy(std::uint64_t bytes) const
{
    return static_cast<Tick>(static_cast<double>(bytes) /
                             static_cast<double>(params_.bytesPerSec) *
                             static_cast<double>(sec));
}

void
PcieLink::transfer(std::uint64_t bytes, EventQueue::Callback done)
{
    bytesMoved_ += bytes;
    Tick lat = params_.latency;
    link_.acquire(occupancy(bytes), [this, lat, done = std::move(done)]() {
        if (done)
            eq_.scheduleAfter(lat, std::move(done));
    });
}

}  // namespace recssd
