/**
 * @file
 * PCIe link timing model.
 *
 * A single full-duplex-approximated serial resource: transfers occupy
 * the link for bytes/bandwidth and complete one propagation latency
 * later. Command fetches and completion postings are small (64B/16B)
 * transfers plus the same latency.
 */

#ifndef RECSSD_NVME_PCIE_LINK_H
#define RECSSD_NVME_PCIE_LINK_H

#include <cstdint>
#include <string>

#include "src/common/event_queue.h"
#include "src/common/resource.h"
#include "src/common/types.h"
#include "src/obs/phase.h"

namespace recssd
{

struct PcieParams
{
    /** Effective data bandwidth (PCIe Gen2 x8 board, ~1.6GB/s). */
    std::uint64_t bytesPerSec = 1600ull * 1000 * 1000;
    /** One-way propagation + root-complex latency. */
    Tick latency = 1 * usec;
};

class PcieLink
{
  public:
    /** `track_prefix` namespaces this link's trace track (multi-SSD
     *  systems pass "ssd<d>." so per-device spans stay separable). */
    PcieLink(EventQueue &eq, const PcieParams &params,
             const std::string &track_prefix = "");

    /**
     * Move `bytes` across the link; `done` fires on arrival. The
     * optional trace id tags the transfer's span with its owning
     * request; `phase` distinguishes plain transport from result DMA.
     */
    void transfer(std::uint64_t bytes, EventQueue::Callback done,
                  std::uint64_t trace_id = 0,
                  Phase phase = Phase::NvmeXfer);

    /** Link occupancy for a transfer of the given size. */
    Tick occupancy(std::uint64_t bytes) const;

    Tick busyTime() const { return link_.busyTime(); }
    std::uint64_t bytesMoved() const { return bytesMoved_; }
    const PcieParams &params() const { return params_; }

  private:
    EventQueue &eq_;
    PcieParams params_;
    std::string trackName_;
    SerialResource link_;
    std::uint64_t bytesMoved_ = 0;
};

}  // namespace recssd

#endif  // RECSSD_NVME_PCIE_LINK_H
