/**
 * @file
 * NVMe submission/completion queue pair.
 *
 * The functional ring structures of the spec: a submission queue the
 * host appends SQEs to (ringing the tail doorbell), and a completion
 * queue the controller posts CQEs to with the standard phase-tag
 * protocol so a polling host can detect new entries without reading a
 * doorbell. RecSSD's interface compatibility claim (§4.3) rests on
 * SLS commands flowing through these unchanged structures; the driver
 * moves every command through a queue pair so command identifiers,
 * ring occupancy and completion matching behave like the real stack.
 */

#ifndef RECSSD_NVME_NVME_QUEUE_H
#define RECSSD_NVME_NVME_QUEUE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/nvme/nvme_command.h"

namespace recssd
{

/** Completion queue entry (the fields this model needs). */
struct NvmeCompletion
{
    std::uint16_t cid = 0;
    std::uint16_t status = 0;       ///< 0 = success
    std::uint16_t sqHead = 0;       ///< SQ head at completion time
    bool phase = false;             ///< phase tag
};

class NvmeQueuePair
{
  public:
    /** @param depth Entries in each ring (must be >= 2). */
    explicit NvmeQueuePair(std::uint16_t depth);

    std::uint16_t depth() const { return depth_; }

    /** @{ Host side. */

    /** True when another SQE fits. */
    bool canSubmit() const;

    /**
     * Append an SQE and ring the tail doorbell.
     * @return the command identifier assigned to this entry.
     */
    std::uint16_t submit(const NvmeCommand &cmd);

    /**
     * Poll the CQ head: consume one completion if its phase tag
     * indicates a fresh entry (the spec's doorbell-free polling).
     */
    std::optional<NvmeCompletion> poll();
    /** @} */

    /** @{ Controller side. */

    /** Fetch the next submitted command, advancing the SQ head. */
    std::optional<NvmeCommand> fetch();

    /** Post a completion for a previously fetched command. */
    void complete(std::uint16_t cid, std::uint16_t status = 0);
    /** @} */

    /** Commands submitted but not yet completed+polled. */
    std::uint16_t outstanding() const
    {
        return static_cast<std::uint16_t>(depthGauge_.value());
    }

    /** @{ Per-queue depth accounting (serving-path load balance). */

    /** Total SQEs ever submitted to this pair. */
    std::uint64_t submitted() const { return submitted_.value(); }

    /** High-water mark of `outstanding()` over the pair's lifetime. */
    std::uint16_t maxOutstanding() const
    {
        return static_cast<std::uint16_t>(depthGauge_.highWater());
    }

    /** Live ring-occupancy gauge (for the metrics registry). */
    const Gauge &depthGauge() const { return depthGauge_; }
    const Counter &submittedCounter() const { return submitted_; }
    /** @} */

  private:
    std::uint16_t next(std::uint16_t idx) const
    {
        return static_cast<std::uint16_t>((idx + 1) % depth_);
    }

    std::uint16_t depth_;
    /* Submission ring. */
    std::vector<NvmeCommand> sq_;
    std::uint16_t sqHead_ = 0;
    std::uint16_t sqTail_ = 0;  ///< tail doorbell value
    /* Completion ring with phase tags. */
    std::vector<NvmeCompletion> cq_;
    std::uint16_t cqHead_ = 0;
    std::uint16_t cqTail_ = 0;
    bool cqPhase_ = true;       ///< phase the controller writes
    bool hostPhase_ = true;     ///< phase the host expects
    std::uint16_t nextCid_ = 0;
    Gauge depthGauge_;    ///< outstanding commands + high-water mark
    Counter submitted_;
};

}  // namespace recssd

#endif  // RECSSD_NVME_NVME_QUEUE_H
