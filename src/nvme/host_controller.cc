#include "src/nvme/host_controller.h"

#include "src/common/logging.h"

namespace recssd
{

HostController::HostController(EventQueue &eq, const NvmeParams &params,
                               PcieLink &pcie, Ftl &ftl)
    : eq_(eq), params_(params), pcie_(pcie), ftl_(ftl),
      ctrl_(eq, "nvme.ctrl")
{
}

void
HostController::fetchCommand(EventQueue::Callback then)
{
    commands_.inc();
    pcie_.transfer(params_.sqeBytes, [this, then = std::move(then)]() {
        ctrl_.acquire(params_.cmdProcessCost, std::move(then));
    });
}

void
HostController::postCompletion(EventQueue::Callback then)
{
    ctrl_.acquire(params_.completionPostCost,
                  [this, then = std::move(then)]() {
                      pcie_.transfer(params_.cqeBytes, std::move(then));
                  });
}

void
HostController::submitRead(const NvmeCommand &cmd, ReadDone done)
{
    recssd_assert(!cmd.slsFlag, "use submitSlsRead for SLS commands");
    recssd_assert(cmd.nlb == 1, "data path reads one page per command");
    Lpn lpn = cmd.slba;
    fetchCommand([this, lpn, done = std::move(done)]() {
        ftl_.hostRead(lpn, [this, done = std::move(done)](
                               const PageView &view) {
            // Page data DMA to host, then the completion entry.
            pcie_.transfer(ftl_.flash().params().pageSize,
                           [this, view, done = std::move(done)]() {
                               postCompletion([view, done = std::move(done)]() {
                                   done(view);
                               });
                           });
        });
    });
}

void
HostController::submitWrite(const NvmeCommand &cmd, WriteDone done)
{
    recssd_assert(!cmd.slsFlag, "use submitSlsConfig for SLS commands");
    recssd_assert(cmd.nlb == 1, "data path writes one page per command");
    recssd_assert(cmd.payload != nullptr, "write without payload");
    Lpn lpn = cmd.slba;
    auto payload = cmd.payload;
    fetchCommand([this, lpn, payload, done = std::move(done)]() {
        // Pull the data from host memory before programming.
        pcie_.transfer(ftl_.flash().params().pageSize,
                       [this, lpn, payload, done = std::move(done)]() {
                           ftl_.hostWrite(lpn, *payload,
                                          [this, done = std::move(done)]() {
                                              postCompletion(std::move(done));
                                          });
                       });
    });
}

void
HostController::submitTrim(const NvmeCommand &cmd, WriteDone done)
{
    recssd_assert(cmd.opcode == NvmeOpcode::Dsm, "submitTrim needs DSM");
    Lpn lpn = cmd.slba;
    fetchCommand([this, lpn, done = std::move(done)]() {
        ftl_.hostTrim(lpn, [this, done = std::move(done)]() {
            postCompletion(std::move(done));
        });
    });
}

void
HostController::submitSlsConfig(const NvmeCommand &cmd, WriteDone done)
{
    recssd_assert(cmd.slsFlag, "submitSlsConfig requires the SLS flag");
    recssd_assert(sls_ != nullptr, "no SLS handler registered");
    recssd_assert(cmd.payload != nullptr, "SLS config without payload");
    NvmeCommand copy = cmd;
    copy.submitTick = eq_.now();
    fetchCommand([this, copy, done = std::move(done)]() {
        // Step 1a (Fig 7): DMA the configuration data from the host.
        pcie_.transfer(copy.payload->size(),
                       [this, copy, done = std::move(done)]() {
                           sls_->configWrite(copy, [this, done =
                                                        std::move(done)]() {
                               postCompletion(std::move(done));
                           });
                       });
    });
}

void
HostController::submitSlsRead(const NvmeCommand &cmd, SlsReadDone done)
{
    recssd_assert(cmd.slsFlag, "submitSlsRead requires the SLS flag");
    recssd_assert(sls_ != nullptr, "no SLS handler registered");
    NvmeCommand copy = cmd;
    fetchCommand([this, copy, done = std::move(done)]() {
        // Step 1b (Fig 7): register the host page request; the engine
        // calls back with packed result bytes when ready, which we
        // then DMA to the host.
        sls_->resultRead(
            copy,
            [this, done = std::move(done)](
                std::shared_ptr<std::vector<std::byte>> data) {
                pcie_.transfer(data->size(),
                               [this, data, done = std::move(done)]() {
                                   postCompletion(
                                       [data, done = std::move(done)]() {
                                           done(data);
                                       });
                               });
            });
    });
}

void
HostController::dmaToHost(std::uint64_t bytes, EventQueue::Callback done)
{
    pcie_.transfer(bytes, std::move(done));
}

void
HostController::dmaFromHost(std::uint64_t bytes, EventQueue::Callback done)
{
    pcie_.transfer(bytes, std::move(done));
}

}  // namespace recssd
