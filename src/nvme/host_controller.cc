#include "src/nvme/host_controller.h"

#include "src/common/logging.h"
#include "src/obs/tracer.h"

namespace recssd
{

namespace
{

/** Wrap a callback so it closes `span` just before running. */
EventQueue::Callback
closing(EventQueue &eq, SpanId span, EventQueue::Callback then)
{
    if (span == invalidSpan)
        return then;
    return [&eq, span, then = std::move(then)]() {
        if (Tracer *tracer = tracerOf(eq))
            tracer->end(span);
        then();
    };
}

}  // namespace

HostController::HostController(EventQueue &eq, const NvmeParams &params,
                               PcieLink &pcie, Ftl &ftl,
                               const std::string &track_prefix)
    : eq_(eq), params_(params), pcie_(pcie), ftl_(ftl),
      trackName_(track_prefix + "nvme.ctrl"), ctrl_(eq, trackName_)
{
}

void
HostController::fetchCommand(std::uint64_t trace_id,
                             EventQueue::Callback then)
{
    if (dead_) {
        // The drive fell off the bus: the SQ doorbell rings into the
        // void and the command chain is dropped on the floor.
        dropped_.inc();
        return;
    }
    commands_.inc();
    pcie_.transfer(
        params_.sqeBytes,
        [this, trace_id, then = std::move(then)]() {
            SpanId span = invalidSpan;
            if (Tracer *tracer = tracerOf(eq_)) {
                span = tracer->begin(tracer->track(trackName_),
                                     "cmd_process", Phase::NvmeXfer,
                                     trace_id);
            }
            ctrl_.acquire(params_.cmdProcessCost,
                          closing(eq_, span, std::move(then)));
        },
        trace_id);
}

void
HostController::postCompletion(std::uint64_t trace_id,
                               EventQueue::Callback then)
{
    if (dead_) {
        // In-flight command whose device died mid-chain: the host
        // never sees a CQE.
        dropped_.inc();
        return;
    }
    SpanId span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        span = tracer->begin(tracer->track(trackName_), "cqe_post",
                             Phase::NvmeXfer, trace_id);
    }
    ctrl_.acquire(params_.completionPostCost,
                  closing(eq_, span, [this, trace_id,
                                      then = std::move(then)]() {
                      pcie_.transfer(params_.cqeBytes, std::move(then),
                                     trace_id);
                  }));
}

void
HostController::submitRead(const NvmeCommand &cmd, ReadDone done)
{
    recssd_assert(!cmd.slsFlag, "use submitSlsRead for SLS commands");
    recssd_assert(cmd.nlb == 1, "data path reads one page per command");
    Lpn lpn = cmd.slba;
    std::uint64_t tid = cmd.traceId;
    fetchCommand(tid, [this, lpn, tid, done = std::move(done)]() {
        ftl_.hostRead(
            lpn,
            [this, tid, done = std::move(done)](const PageView &view) {
                // Page data DMA to host, then the completion entry.
                pcie_.transfer(
                    ftl_.flash().params().pageSize,
                    [this, tid, view, done = std::move(done)]() {
                        postCompletion(tid, [view,
                                             done = std::move(done)]() {
                            done(view);
                        });
                    },
                    tid);
            },
            tid);
    });
}

void
HostController::submitWrite(const NvmeCommand &cmd, WriteDone done)
{
    recssd_assert(!cmd.slsFlag, "use submitSlsConfig for SLS commands");
    recssd_assert(cmd.nlb == 1, "data path writes one page per command");
    recssd_assert(cmd.payload != nullptr, "write without payload");
    Lpn lpn = cmd.slba;
    std::uint64_t tid = cmd.traceId;
    auto payload = cmd.payload;
    fetchCommand(tid, [this, lpn, tid, payload, done = std::move(done)]() {
        // Pull the data from host memory before programming.
        pcie_.transfer(
            ftl_.flash().params().pageSize,
            [this, lpn, tid, payload, done = std::move(done)]() {
                ftl_.hostWrite(
                    lpn, *payload,
                    [this, tid, done = std::move(done)]() {
                        postCompletion(tid, std::move(done));
                    },
                    tid);
            },
            tid);
    });
}

void
HostController::submitTrim(const NvmeCommand &cmd, WriteDone done)
{
    recssd_assert(cmd.opcode == NvmeOpcode::Dsm, "submitTrim needs DSM");
    Lpn lpn = cmd.slba;
    std::uint64_t tid = cmd.traceId;
    fetchCommand(tid, [this, lpn, tid, done = std::move(done)]() {
        ftl_.hostTrim(
            lpn,
            [this, tid, done = std::move(done)]() {
                postCompletion(tid, std::move(done));
            },
            tid);
    });
}

void
HostController::submitSlsConfig(const NvmeCommand &cmd, WriteDone done)
{
    recssd_assert(cmd.slsFlag, "submitSlsConfig requires the SLS flag");
    recssd_assert(sls_ != nullptr, "no SLS handler registered");
    recssd_assert(cmd.payload != nullptr, "SLS config without payload");
    NvmeCommand copy = cmd;
    copy.submitTick = eq_.now();
    fetchCommand(copy.traceId, [this, copy, done = std::move(done)]() {
        // Step 1a (Fig 7): DMA the configuration data from the host.
        pcie_.transfer(
            copy.payload->size(),
            [this, copy, done = std::move(done)]() {
                sls_->configWrite(copy, [this, tid = copy.traceId,
                                         done = std::move(done)]() {
                    postCompletion(tid, std::move(done));
                });
            },
            copy.traceId);
    });
}

void
HostController::submitSlsRead(const NvmeCommand &cmd, SlsReadDone done)
{
    recssd_assert(cmd.slsFlag, "submitSlsRead requires the SLS flag");
    recssd_assert(sls_ != nullptr, "no SLS handler registered");
    NvmeCommand copy = cmd;
    fetchCommand(copy.traceId, [this, copy, done = std::move(done)]() {
        // Step 1b (Fig 7): register the host page request; the engine
        // calls back with packed result bytes when ready, which we
        // then DMA to the host.
        sls_->resultRead(
            copy,
            [this, tid = copy.traceId, done = std::move(done)](
                std::shared_ptr<std::vector<std::byte>> data) {
                pcie_.transfer(
                    data->size(),
                    [this, tid, data, done = std::move(done)]() {
                        postCompletion(tid,
                                       [data, done = std::move(done)]() {
                                           done(data);
                                       });
                    },
                    tid, Phase::ResultDma);
            });
    });
}

void
HostController::dmaToHost(std::uint64_t bytes, EventQueue::Callback done,
                          std::uint64_t trace_id)
{
    pcie_.transfer(bytes, std::move(done), trace_id, Phase::ResultDma);
}

void
HostController::dmaFromHost(std::uint64_t bytes, EventQueue::Callback done,
                            std::uint64_t trace_id)
{
    pcie_.transfer(bytes, std::move(done), trace_id);
}

}  // namespace recssd
