/**
 * @file
 * Per-device fault injector.
 *
 * Owned by `Ssd` (constructed only when the device's
 * `DeviceFaultConfig` is non-empty, so fault-free configs carry zero
 * overhead). `arm()` resolves every random draw — die/channel picks
 * for `ch=-1`/`die=-1`, per-occurrence jitter — from a seeded `Rng` in
 * a fixed loop order, then schedules concrete fire events on the event
 * queue. From that point the firing schedule is data, not code: two
 * runs of the same config fire identically.
 *
 * Each firing bumps a counter (exported as `ssdN.fault.*`) and, when
 * tracing is on, drops a span on the device's `<prefix>fault` track so
 * injected misbehavior is visible right next to the flash/FTL/NVMe
 * spans it perturbs.
 */

#ifndef RECSSD_FAULT_FAULT_INJECTOR_H
#define RECSSD_FAULT_FAULT_INJECTOR_H

#include <string>

#include "src/common/event_queue.h"
#include "src/common/stats.h"
#include "src/fault/fault_plan.h"
#include "src/flash/flash_array.h"
#include "src/ftl/ftl.h"
#include "src/nvme/host_controller.h"

namespace recssd
{

class FaultInjector
{
  public:
    FaultInjector(EventQueue &eq, const DeviceFaultConfig &cfg,
                  FlashArray &flash, Ftl &ftl, HostController &ctrl,
                  const std::string &track_prefix = "");

    /**
     * Resolve all randomness and schedule every occurrence. Call once,
     * before the simulation starts (System's constructor does).
     */
    void arm();

    /** @{ Stats: occurrences actually fired so far. */
    std::uint64_t dieStalls() const { return dieStalls_.value(); }
    std::uint64_t firmwarePauses() const { return fwPauses_.value(); }
    std::uint64_t inflationWindows() const { return inflations_.value(); }
    std::uint64_t dropouts() const { return dropouts_.value(); }
    /** @} */

  private:
    void fire(const FaultScenario &s, unsigned ch, unsigned die);

    /** Window span on the fault track (fixed extent, known at fire). */
    void traceWindow(const char *name, Tick duration);

    EventQueue &eq_;
    DeviceFaultConfig cfg_;
    FlashArray &flash_;
    Ftl &ftl_;
    HostController &ctrl_;
    std::string trackName_;

    Counter dieStalls_;
    Counter fwPauses_;
    Counter inflations_;
    Counter dropouts_;
};

}  // namespace recssd

#endif  // RECSSD_FAULT_FAULT_INJECTOR_H
