#include "src/fault/fault_plan.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"

namespace recssd
{

namespace
{

/** "3ms" / "250us" / "1.5s" -> Tick. */
Tick
parseTime(const std::string &text, const std::string &where)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &pos);
    } catch (...) {
        panic("fault plan: bad time '%s' in '%s'", text.c_str(),
              where.c_str());
    }
    std::string suffix = text.substr(pos);
    Tick unit = 0;
    if (suffix == "ns")
        unit = nsec;
    else if (suffix == "us")
        unit = usec;
    else if (suffix == "ms")
        unit = msec;
    else if (suffix == "s")
        unit = sec;
    else
        panic("fault plan: time '%s' needs a ns/us/ms/s suffix in '%s'",
              text.c_str(), where.c_str());
    recssd_assert(value >= 0.0, "fault plan: negative time in '%s'",
                  where.c_str());
    return static_cast<Tick>(value * static_cast<double>(unit));
}

FaultScenario
parseScenario(const std::string &text)
{
    auto at_pos = text.find('@');
    recssd_assert(at_pos != std::string::npos,
                  "fault plan: scenario '%s' missing '@device'",
                  text.c_str());
    std::string kind = text.substr(0, at_pos);
    std::string rest = text.substr(at_pos + 1);
    auto colon = rest.find(':');
    std::string dev = colon == std::string::npos ? rest
                                                 : rest.substr(0, colon);
    std::string kvs = colon == std::string::npos ? ""
                                                 : rest.substr(colon + 1);

    FaultScenario s;
    if (kind == "stall")
        s.kind = FaultKind::DieStall;
    else if (kind == "fwpause")
        s.kind = FaultKind::FirmwarePause;
    else if (kind == "inflate")
        s.kind = FaultKind::ReadInflation;
    else if (kind == "dropout")
        s.kind = FaultKind::DeviceDropout;
    else
        panic("fault plan: unknown kind '%s' (stall|fwpause|inflate|"
              "dropout)", kind.c_str());
    s.device = static_cast<unsigned>(std::strtoul(dev.c_str(), nullptr, 10));

    // Kind-specific defaults so terse specs stay meaningful.
    if (s.kind == FaultKind::DieStall || s.kind == FaultKind::FirmwarePause)
        s.duration = 1 * msec;
    if (s.kind == FaultKind::ReadInflation)
        s.duration = 10 * msec;

    std::stringstream ss(kvs);
    std::string kv;
    while (std::getline(ss, kv, ',')) {
        if (kv.empty())
            continue;
        auto eq = kv.find('=');
        recssd_assert(eq != std::string::npos,
                      "fault plan: bad key=value '%s' in '%s'", kv.c_str(),
                      text.c_str());
        std::string key = kv.substr(0, eq);
        std::string val = kv.substr(eq + 1);
        if (key == "at")
            s.at = parseTime(val, text);
        else if (key == "dur")
            s.duration = parseTime(val, text);
        else if (key == "period")
            s.period = parseTime(val, text);
        else if (key == "jitter")
            s.jitter = parseTime(val, text);
        else if (key == "factor")
            s.factor = std::atof(val.c_str());
        else if (key == "ch")
            s.channel = std::atoi(val.c_str());
        else if (key == "die")
            s.die = std::atoi(val.c_str());
        else if (key == "count")
            s.count = static_cast<unsigned>(std::atoi(val.c_str()));
        else
            panic("fault plan: unknown key '%s' in '%s'", key.c_str(),
                  text.c_str());
    }
    recssd_assert(s.count >= 1, "fault plan: count=0 in '%s'",
                  text.c_str());
    recssd_assert(s.count == 1 || s.period > 0,
                  "fault plan: count>1 needs period in '%s'", text.c_str());
    if (s.kind == FaultKind::ReadInflation)
        recssd_assert(s.factor >= 1.0,
                      "fault plan: inflate factor < 1 in '%s'",
                      text.c_str());
    if (s.kind == FaultKind::DeviceDropout)
        recssd_assert(s.count == 1,
                      "fault plan: dropout repeats make no sense in '%s'",
                      text.c_str());
    return s;
}

void
parseElement(FaultPlan &plan, std::string element)
{
    // Trim whitespace.
    while (!element.empty() && std::isspace(
                                   static_cast<unsigned char>(element.front())))
        element.erase(element.begin());
    while (!element.empty() &&
           std::isspace(static_cast<unsigned char>(element.back())))
        element.pop_back();
    if (element.empty() || element.front() == '#')
        return;
    if (element.rfind("seed=", 0) == 0) {
        plan.seed = static_cast<std::uint64_t>(
            std::strtoull(element.c_str() + 5, nullptr, 10));
        return;
    }
    plan.scenarios.push_back(parseScenario(element));
}

}  // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DieStall:      return "die_stall";
      case FaultKind::FirmwarePause: return "fw_pause";
      case FaultKind::ReadInflation: return "read_inflation";
      case FaultKind::DeviceDropout: return "dropout";
    }
    return "?";
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    // Newlines separate like ';' (a plan file pasted inline parses
    // the same way it loads from disk); '#' comments cover one line.
    std::stringstream lines(spec);
    std::string line;
    while (std::getline(lines, line)) {
        std::stringstream ss(line);
        std::string element;
        while (std::getline(ss, element, ';'))
            parseElement(plan, element);
    }
    return plan;
}

FaultPlan
FaultPlan::parseFile(const std::string &path)
{
    std::ifstream is(path);
    recssd_assert(is.good(), "fault plan: cannot read '%s'", path.c_str());
    FaultPlan plan;
    std::string line;
    while (std::getline(is, line)) {
        // Lines may still pack several ';'-separated scenarios.
        std::stringstream ss(line);
        std::string element;
        while (std::getline(ss, element, ';'))
            parseElement(plan, element);
    }
    return plan;
}

FaultPlan
FaultPlan::load(const std::string &spec)
{
    if (std::ifstream probe(spec); probe.good())
        return parseFile(spec);
    return parse(spec);
}

std::vector<FaultScenario>
FaultPlan::forDevice(unsigned d) const
{
    std::vector<FaultScenario> out;
    for (const auto &s : scenarios)
        if (s.device == d)
            out.push_back(s);
    return out;
}

unsigned
FaultPlan::maxDevice() const
{
    unsigned d = 0;
    for (const auto &s : scenarios)
        d = std::max(d, s.device);
    return d;
}

}  // namespace recssd
