#include "src/fault/fault_injector.h"

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/obs/tracer.h"

namespace recssd
{

FaultInjector::FaultInjector(EventQueue &eq, const DeviceFaultConfig &cfg,
                             FlashArray &flash, Ftl &ftl,
                             HostController &ctrl,
                             const std::string &track_prefix)
    : eq_(eq), cfg_(cfg), flash_(flash), ftl_(ftl), ctrl_(ctrl),
      trackName_(track_prefix + "fault")
{
}

void
FaultInjector::arm()
{
    Rng rng(cfg_.seed);
    const auto &fp = flash_.params();
    for (const auto &s : cfg_.scenarios) {
        for (unsigned i = 0; i < s.count; ++i) {
            // All draws happen here, in scenario-then-occurrence order,
            // so the schedule is fixed before the first event runs.
            Tick start = s.at + static_cast<Tick>(i) * s.period;
            if (s.jitter > 0)
                start += rng.uniformInt(s.jitter);
            unsigned ch = 0, die = 0;
            if (s.kind == FaultKind::DieStall) {
                ch = s.channel >= 0
                         ? static_cast<unsigned>(s.channel)
                         : static_cast<unsigned>(
                               rng.uniformInt(fp.numChannels));
                die = s.die >= 0
                          ? static_cast<unsigned>(s.die)
                          : static_cast<unsigned>(
                                rng.uniformInt(fp.diesPerChannel));
                recssd_assert(ch < fp.numChannels && die < fp.diesPerChannel,
                              "fault plan: ch/die out of range");
            }
            eq_.schedule(start,
                         [this, s, ch, die]() { fire(s, ch, die); });
        }
    }
}

void
FaultInjector::traceWindow(const char *name, Tick duration)
{
    if (Tracer *tracer = tracerOf(eq_)) {
        tracer->span(tracer->track(trackName_), name, Phase::Other,
                     /*req=*/0, eq_.now(), eq_.now() + duration);
    }
}

void
FaultInjector::fire(const FaultScenario &s, unsigned ch, unsigned die)
{
    switch (s.kind) {
      case FaultKind::DieStall:
        dieStalls_.inc();
        traceWindow("die_stall", s.duration);
        flash_.stallDie(ch, die, s.duration);
        break;
      case FaultKind::FirmwarePause:
        fwPauses_.inc();
        traceWindow("fw_pause", s.duration);
        ftl_.injectFirmwarePause(s.duration);
        break;
      case FaultKind::ReadInflation:
        inflations_.inc();
        traceWindow("read_inflation", s.duration);
        flash_.addReadInflation(eq_.now() + s.duration, s.factor);
        break;
      case FaultKind::DeviceDropout:
        dropouts_.inc();
        if (Tracer *tracer = tracerOf(eq_))
            tracer->instant(tracer->track(trackName_), "dropout");
        ctrl_.killNow();
        break;
    }
}

}  // namespace recssd
