/**
 * @file
 * Seeded, deterministic device-fault scenarios.
 *
 * RecSSD's value proposition is meeting tail-latency SLAs, so the
 * simulator must model a fleet that misbehaves, not just a healthy
 * one. A `FaultPlan` is a list of per-device scenarios parsed from a
 * compact spec (inline string or file) and applied to a
 * `SystemConfig` via per-device overrides; a per-device
 * `FaultInjector` (owned by `Ssd`) arms them on the event queue.
 *
 * Scenario kinds:
 *  - `DieStall`     a die (or a randomly drawn one) goes busy for a
 *                   window — pending reads queue behind it (models a
 *                   die-level retry storm / program-suspend conflict).
 *  - `FirmwarePause` the FTL CPU is occupied for a window (firmware
 *                   housekeeping: log checkpointing, wear tables).
 *  - `ReadInflation` every array read started inside the window takes
 *                   `factor`x its nominal tR (sustained media
 *                   degradation / thermal throttling).
 *  - `DeviceDropout` at the scheduled tick the NVMe controller stops
 *                   fetching and completing commands, permanently —
 *                   the device is gone; in-flight commands never
 *                   complete.
 *
 * Determinism: the only randomness (die/channel draws for `ch=-1` /
 * `die=-1`, period jitter) comes from a seeded `recssd::Rng`, resolved
 * in a fixed order when the injector arms, so the full firing schedule
 * is a pure function of the config (sim-lint R1 clean).
 */

#ifndef RECSSD_FAULT_FAULT_PLAN_H
#define RECSSD_FAULT_FAULT_PLAN_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace recssd
{

enum class FaultKind
{
    DieStall,       ///< one die busy for `duration`
    FirmwarePause,  ///< FTL CPU busy for `duration`
    ReadInflation,  ///< array reads take `factor`x inside the window
    DeviceDropout,  ///< controller dead from `at` onward
};

/** Stable short name used in stats, traces and reports. */
const char *faultKindName(FaultKind kind);

/** One injected misbehavior on one device. */
struct FaultScenario
{
    FaultKind kind = FaultKind::DieStall;
    /** Target device (index into the shard set). */
    unsigned device = 0;
    /** First occurrence. */
    Tick at = 0;
    /** Stall/pause/window length (ignored for DeviceDropout). */
    Tick duration = 0;
    /** ReadInflation latency multiplier. */
    double factor = 2.0;
    /** DieStall target; -1 draws uniformly per occurrence. */
    int channel = -1;
    int die = -1;
    /** Occurrences (each `period` apart). */
    unsigned count = 1;
    Tick period = 0;
    /** Uniform [0, jitter) added to each occurrence start. */
    Tick jitter = 0;
};

/** The fault slice of one device's `SsdConfig`. */
struct DeviceFaultConfig
{
    std::vector<FaultScenario> scenarios;
    /** Seed of the injector's Rng (die draws, jitter). */
    std::uint64_t seed = 0xFA017;

    bool empty() const { return scenarios.empty(); }
};

/**
 * A full system's fault schedule.
 *
 * Spec grammar (inline form, `;`-separated; file form, one scenario
 * per line with `#` comments):
 *
 *   scenario := kind '@' device [':' key '=' value (',' key '=' value)*]
 *   kind     := 'stall' | 'fwpause' | 'inflate' | 'dropout'
 *   keys     := at, dur, period, jitter (times: <float><ns|us|ms|s>),
 *               factor (float), ch, die (int, -1 = random),
 *               count (int)
 *   plus a standalone 'seed=N' element setting the plan seed.
 *
 * Example:
 *   stall@1:at=2ms,dur=3ms,period=8ms,count=20;dropout@3:at=50ms
 */
struct FaultPlan
{
    std::vector<FaultScenario> scenarios;
    std::uint64_t seed = 0xFA017;

    /** Parse an inline spec. Panics (with the offending token) on a
     *  malformed spec. */
    static FaultPlan parse(const std::string &spec);

    /** Parse a spec file (one scenario per line, `#` comments). */
    static FaultPlan parseFile(const std::string &path);

    /** File if `spec` names a readable file, else inline. */
    static FaultPlan load(const std::string &spec);

    /** Scenarios targeting device `d`, in plan order. */
    std::vector<FaultScenario> forDevice(unsigned d) const;

    /** Largest device index any scenario targets (0 when empty). */
    unsigned maxDevice() const;
};

}  // namespace recssd

#endif  // RECSSD_FAULT_FAULT_PLAN_H
