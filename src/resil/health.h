/**
 * @file
 * Per-device health tracking for the resilient serving path.
 *
 * A device that keeps timing out (its hedge timer fires before its
 * completion arrives, `ejectAfterFailures` times in a row) is ejected
 * for a cooldown window: the router stops issuing to it and replicas
 * absorb its share. The ejection is time-bounded (a half-open circuit
 * breaker) — once the cooldown expires the device is retried, so a
 * healthy device that merely backed up its queue wins its traffic
 * back, while a dead device immediately times out again and re-ejects.
 * Any successful completion restores the device on the spot. Devices
 * that fail the backend's liveness probe are excluded independently
 * of this tracker.
 */

#ifndef RECSSD_RESIL_HEALTH_H
#define RECSSD_RESIL_HEALTH_H

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace recssd
{

class HealthTracker
{
  public:
    HealthTracker(unsigned devices, unsigned eject_after, Tick cooldown)
        : ejectAfter_(eject_after), cooldown_(cooldown),
          streak_(devices, 0), ejectedUntil_(devices, 0)
    {
    }

    void
    recordSuccess(unsigned dev)
    {
        streak_[dev] = 0;
        if (ejectedUntil_[dev] > 0) {
            ejectedUntil_[dev] = 0;
            ++restorations_;
        }
    }

    void
    recordTimeout(unsigned dev, Tick now)
    {
        if (++streak_[dev] >= ejectAfter_) {
            if (ejectedUntil_[dev] <= now)
                ++ejections_;
            ejectedUntil_[dev] = now + cooldown_;
            streak_[dev] = 0;  // re-earn the threshold after retry
        }
    }

    /** Inside an active ejection window at sim time `now`? */
    bool
    ejected(unsigned dev, Tick now) const
    {
        return ejectedUntil_[dev] > now;
    }

    std::uint64_t ejections() const { return ejections_; }
    std::uint64_t restorations() const { return restorations_; }

    /** Devices inside an ejection window at `now`, ascending. */
    std::vector<unsigned>
    ejectedDevices(Tick now) const
    {
        std::vector<unsigned> out;
        for (unsigned d = 0; d < ejectedUntil_.size(); ++d)
            if (ejected(d, now))
                out.push_back(d);
        return out;
    }

  private:
    unsigned ejectAfter_;
    Tick cooldown_;
    std::vector<unsigned> streak_;
    std::vector<Tick> ejectedUntil_;
    std::uint64_t ejections_ = 0;
    std::uint64_t restorations_ = 0;
};

}  // namespace recssd

#endif  // RECSSD_RESIL_HEALTH_H
