/**
 * @file
 * Tail-tolerant scatter-gather SLS: hedged sub-ops, deadlines,
 * replica failover and degraded-mode answers.
 *
 * `ResilientSlsBackend` is the resilient sibling of
 * `ShardedSlsBackend` (src/shard): the same split/issue/gather shape,
 * plus the reliability machinery production serving needs when a
 * device misbehaves:
 *
 *  - **Replica read balancing**: with R-way replication each sub-op
 *    has R candidate devices (primary + replicas, rotated per sub-op
 *    by a round-robin counter so read load spreads). Candidates that
 *    fail the liveness probe or were ejected by the `HealthTracker`
 *    are skipped (a failover).
 *  - **Hedged sub-ops**: after `HedgePolicy::delay()` with no
 *    completion, the sub-op is re-issued to the next untried healthy
 *    candidate. First completion wins; the loser is counted as a
 *    duplicate completion (waste), and completions arriving after the
 *    parent op already delivered are counted per device as late.
 *  - **Deadlines**: a per-op timer; on expiry the op delivers
 *    immediately with whatever partials arrived, degraded-filling
 *    unserved slices from the host embedding cache (global-row probe)
 *    or zeros, and flags the answer degraded.
 *  - **Dead-end degradation**: a sub-op whose every candidate is dead
 *    or ejected degrades immediately instead of waiting for the
 *    deadline.
 *
 * Determinism: no randomness at all — candidate rotation is a
 * counter, hedge delays are functions of observed sim latencies, and
 * every decision happens inside event callbacks. Two runs of the same
 * config hedge, fail over and degrade identically.
 */

#ifndef RECSSD_RESIL_RESILIENT_BACKEND_H
#define RECSSD_RESIL_RESILIENT_BACKEND_H

#include <functional>
#include <memory>
#include <vector>

#include "src/cache/host_embedding_cache.h"
#include "src/common/event_queue.h"
#include "src/embedding/sls_backend.h"
#include "src/host/host_cpu.h"
#include "src/load/latency_recorder.h"
#include "src/resil/health.h"
#include "src/resil/hedge.h"
#include "src/resil/resil_config.h"
#include "src/shard/shard_router.h"

namespace recssd
{

struct ResilOp;
struct ResilSub;

class ResilientSlsBackend : public SlsBackend
{
  public:
    /** Completion with the per-op degraded flag. */
    using DoneEx = std::function<void(SlsResult, bool degraded)>;

    /**
     * @param inner One backend per shard, in shard order (not owned).
     * @param host_cache Optional host LRU used for degraded fills.
     */
    ResilientSlsBackend(EventQueue &eq, HostCpu &cpu, ShardRouter &router,
                        std::vector<SlsBackend *> inner,
                        const ResilConfig &config,
                        HostEmbeddingCache *host_cache = nullptr);
    ~ResilientSlsBackend() override;

    /**
     * Liveness probe per device (e.g. "NVMe controller not dead").
     * Unset = every device presumed alive until health ejects it.
     */
    void
    setDeviceProbe(std::function<bool(unsigned)> probe)
    {
        probe_ = std::move(probe);
    }

    /** SlsBackend interface; drops the degraded flag. */
    void run(const SlsOp &op, Done done) override;
    std::string name() const override;

    /** The full-fidelity entry point the serving path uses. */
    void runResil(const SlsOp &op, DoneEx done);

    /** @{ Per-shard service accounting (mirrors ShardedSlsBackend). */
    const LatencyRecorder &shardLatency(unsigned shard) const
    {
        return shardLatency_.at(shard);
    }
    std::uint64_t subOpsOn(unsigned shard) const
    {
        return shardLatency_.at(shard).count();
    }
    std::uint64_t scatteredOps() const { return scatteredOps_; }
    /** @} */

    /** @{ Resilience accounting. Conservation invariants (no dead
     *  devices): issues == completions and
     *  completions == servedSubs + duplicateCompletions. */
    std::uint64_t issuesTotal() const { return issuesTotal_; }
    std::uint64_t completionsTotal() const { return completionsTotal_; }
    std::uint64_t servedSubs() const { return servedSubs_; }
    std::uint64_t hedgesFired() const { return hedgesFired_; }
    std::uint64_t hedgeWins() const { return hedgeWins_; }
    std::uint64_t duplicateCompletions() const
    {
        return duplicateCompletions_;
    }
    std::uint64_t deadlineMisses() const { return deadlineMisses_; }
    std::uint64_t failovers() const { return failovers_; }
    std::uint64_t degradedFills() const { return degradedFills_; }
    std::uint64_t lateCompletionsOn(unsigned shard) const
    {
        return lateCompletions_.at(shard);
    }
    /** @} */

    const HealthTracker &health() const { return health_; }

    /** Devices failing the probe or inside an ejection window now. */
    std::vector<unsigned> unhealthyDevices() const;
    HedgePolicy &hedgePolicy() { return hedge_; }
    const ResilConfig &config() const { return config_; }

  private:
    /** Healthy = passes the probe and not ejected. */
    bool healthy(unsigned dev) const;

    /** Issue a sub-op to its next untried healthy candidate (arming a
     *  hedge timer when more remain), or degrade it at a dead end. */
    void issueSub(const std::shared_ptr<ResilOp> &rop,
                  const std::shared_ptr<ResilSub> &sub);

    /** Fold a partial result into the op accumulator. */
    void accumulate(ResilOp &rop, const SlsResult &partial);

    /** Serve a sub from host cache/zeros; marks the op degraded. */
    void degradeSub(const std::shared_ptr<ResilOp> &rop, ResilSub &sub);

    /** Deliver the op (reduce cost + gather span unless immediate). */
    void finishOp(const std::shared_ptr<ResilOp> &rop, bool immediate);

    EventQueue &eq_;
    HostCpu &cpu_;
    ShardRouter &router_;
    std::vector<SlsBackend *> inner_;
    ResilConfig config_;
    HostEmbeddingCache *hostCache_;
    std::function<bool(unsigned)> probe_;
    HedgePolicy hedge_;
    HealthTracker health_;

    std::vector<LatencyRecorder> shardLatency_;
    std::vector<std::uint64_t> lateCompletions_;
    /** Replica rotation counter (read balancing; no randomness). */
    std::uint64_t rr_ = 0;
    std::uint64_t scatteredOps_ = 0;
    std::uint64_t issuesTotal_ = 0;
    std::uint64_t completionsTotal_ = 0;
    std::uint64_t servedSubs_ = 0;
    std::uint64_t hedgesFired_ = 0;
    std::uint64_t hedgeWins_ = 0;
    std::uint64_t duplicateCompletions_ = 0;
    std::uint64_t deadlineMisses_ = 0;
    std::uint64_t failovers_ = 0;
    std::uint64_t degradedFills_ = 0;
};

}  // namespace recssd

#endif  // RECSSD_RESIL_RESILIENT_BACKEND_H
