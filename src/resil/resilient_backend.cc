#include "src/resil/resilient_backend.h"

#include "src/common/logging.h"
#include "src/obs/tracer.h"

namespace recssd
{

/** One slice of one op: its candidate devices and issue state. */
struct ResilSub
{
    /** Candidate devices in try order (rotated primary + replicas). */
    std::vector<unsigned> shards;
    /** Candidate-local descriptors, parallel to `shards`. */
    std::vector<const EmbeddingTableDesc *> descs;
    /** Slice-local indices (valid against every candidate desc). */
    std::vector<std::vector<RowId>> indices;
    unsigned next = 0;    ///< next candidate index to try
    unsigned issues = 0;  ///< issues so far (>1 = hedged)
    bool served = false;  ///< a result (or degraded fill) landed
};

/** Barrier state of one resilient operation. */
struct ResilOp
{
    std::uint64_t traceId = 0;
    std::uint32_t dim = 0;
    SlsResult result;
    unsigned left = 0;      ///< unserved subs
    unsigned partials = 0;  ///< total subs (reduce cost)
    bool finished = false;
    bool degraded = false;
    ResilientSlsBackend::DoneEx done;
    std::vector<std::shared_ptr<ResilSub>> subs;
};

ResilientSlsBackend::ResilientSlsBackend(EventQueue &eq, HostCpu &cpu,
                                         ShardRouter &router,
                                         std::vector<SlsBackend *> inner,
                                         const ResilConfig &config,
                                         HostEmbeddingCache *host_cache)
    : eq_(eq), cpu_(cpu), router_(router), inner_(std::move(inner)),
      config_(config), hostCache_(host_cache), hedge_(config.hedge),
      health_(router.numShards(), config.ejectAfterFailures,
              config.ejectCooldown),
      shardLatency_(router.numShards()),
      lateCompletions_(router.numShards(), 0)
{
    recssd_assert(inner_.size() == router_.numShards(),
                  "one inner backend per shard required (%zu vs %u)",
                  inner_.size(), router_.numShards());
    for (const auto *b : inner_)
        recssd_assert(b != nullptr, "null shard backend");
}

ResilientSlsBackend::~ResilientSlsBackend() = default;

std::string
ResilientSlsBackend::name() const
{
    return "resilient-" + std::to_string(router_.numShards()) + "x" +
           std::to_string(router_.replication()) + "r-" +
           inner_.front()->name();
}

bool
ResilientSlsBackend::healthy(unsigned dev) const
{
    if (health_.ejected(dev, eq_.now()))
        return false;
    return !probe_ || probe_(dev);
}

std::vector<unsigned>
ResilientSlsBackend::unhealthyDevices() const
{
    std::vector<unsigned> out;
    for (unsigned d = 0; d < router_.numShards(); ++d)
        if (!healthy(d))
            out.push_back(d);
    return out;
}

void
ResilientSlsBackend::run(const SlsOp &op, Done done)
{
    runResil(op, [done = std::move(done)](SlsResult r, bool) {
        done(std::move(r));
    });
}

void
ResilientSlsBackend::runResil(const SlsOp &op, DoneEx done)
{
    recssd_assert(op.table != nullptr, "SLS op without table");
    const ShardedTable &st = router_.tableOf(op.table->id);
    auto slices = router_.split(op);

    auto rop = std::make_shared<ResilOp>();
    rop->traceId = op.traceId;
    rop->dim = op.table->dim;
    rop->result.assign(op.batch() * op.table->dim, 0.0f);
    rop->done = std::move(done);

    // Candidate order per sub-op: primary + replicas, rotated so
    // replica reads balance. The counter advances once per *op* and
    // each slice adds its index — advancing per sub would alias
    // against even sub counts (4 slices x 2 candidates locks every
    // slice to one fixed candidate forever). Deterministic: both the
    // op counter and the slice index are simulation state.
    std::uint64_t op_seq = rr_++;
    auto makeSub = [op_seq](const ShardSlice &slice, std::size_t slice_idx,
                            std::vector<std::vector<RowId>> idx) {
        auto sub = std::make_shared<ResilSub>();
        unsigned ncand = 1 + static_cast<unsigned>(slice.replicas.size());
        unsigned rot = ncand > 1
                           ? static_cast<unsigned>((op_seq + slice_idx) %
                                                   ncand)
                           : 0;
        for (unsigned k = 0; k < ncand; ++k) {
            unsigned c = (rot + k) % ncand;
            if (c == 0) {
                sub->shards.push_back(slice.shard);
                sub->descs.push_back(&slice.desc);
            } else {
                sub->shards.push_back(slice.replicas[c - 1].shard);
                sub->descs.push_back(&slice.replicas[c - 1].desc);
            }
        }
        sub->indices = std::move(idx);
        return sub;
    };

    if (slices.empty()) {
        // Degenerate op (all bags empty): still dispatch once on the
        // home slice so sparse queries keep their per-op overhead.
        rop->subs.push_back(makeSub(
            st.slices.front(), 0,
            std::vector<std::vector<RowId>>(op.batch())));
    } else {
        if (slices.size() > 1)
            ++scatteredOps_;
        for (std::size_t i = 0; i < slices.size(); ++i) {
            rop->subs.push_back(makeSub(*slices[i].slice, i,
                                        std::move(slices[i].indices)));
        }
    }
    rop->left = rop->partials = static_cast<unsigned>(rop->subs.size());

    if (config_.deadline > 0) {
        eq_.scheduleAfter(config_.deadline, [this, rop]() {
            if (rop->finished)
                return;
            ++deadlineMisses_;
            rop->degraded = true;
            for (auto &sub : rop->subs)
                if (!sub->served)
                    degradeSub(rop, *sub);
            // Deliver immediately: the deadline already expired, so no
            // reduce charge — the host ships what it has.
            finishOp(rop, /*immediate=*/true);
        });
    }

    for (auto &sub : rop->subs)
        issueSub(rop, sub);
}

void
ResilientSlsBackend::accumulate(ResilOp &rop, const SlsResult &partial)
{
    recssd_assert(partial.size() == rop.result.size(),
                  "shard partial layout mismatch");
    for (std::size_t i = 0; i < partial.size(); ++i)
        rop.result[i] += partial[i];
}

void
ResilientSlsBackend::degradeSub(const std::shared_ptr<ResilOp> &rop,
                                ResilSub &sub)
{
    // Best effort from the host LRU (keyed by global row); anything
    // not cached contributes zero. Not counted as served work —
    // `served` only blocks double accumulation.
    sub.served = true;
    rop->degraded = true;
    ++degradedFills_;
    if (!hostCache_)
        return;
    const EmbeddingTableDesc &d = *sub.descs.front();
    for (std::size_t b = 0; b < sub.indices.size(); ++b) {
        for (RowId local : sub.indices[b]) {
            const auto *vec = hostCache_->get(d.id, d.rowBase + local);
            if (!vec)
                continue;
            for (std::uint32_t e = 0; e < d.dim; ++e)
                rop->result[b * rop->dim + e] += (*vec)[e];
        }
    }
}

void
ResilientSlsBackend::finishOp(const std::shared_ptr<ResilOp> &rop,
                              bool immediate)
{
    rop->finished = true;
    if (immediate || rop->partials <= 1) {
        rop->done(rop->result, rop->degraded);
        return;
    }
    // Host-side reduce of the extra partial result sets — the same
    // charge as ShardedSlsBackend, so replication=1 resilient runs
    // and plain sharded runs time identically.
    std::uint32_t vec_bytes = rop->dim * 4;
    std::size_t vectors = rop->result.size() / rop->dim;
    Tick reduce = cpu_.params().extractBase +
                  cpu_.dramLookupCost(vec_bytes) * (rop->partials - 1) *
                      vectors;
    SpanId span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        span = tracer->begin(tracer->track("host.sls"), "shard_gather",
                             Phase::HostCompute, rop->traceId);
    }
    cpu_.run(reduce, [this, rop, span]() {
        if (Tracer *tracer = tracerOf(eq_))
            tracer->end(span);
        rop->done(rop->result, rop->degraded);
    });
}

void
ResilientSlsBackend::issueSub(const std::shared_ptr<ResilOp> &rop,
                              const std::shared_ptr<ResilSub> &sub)
{
    if (rop->finished || sub->served)
        return;

    // Skip candidates that are dead or ejected (each skip is a
    // failover: a replica absorbs the unhealthy device's read).
    while (sub->next < sub->shards.size() &&
           !healthy(sub->shards[sub->next])) {
        ++failovers_;
        ++sub->next;
    }
    if (sub->next >= sub->shards.size()) {
        if (sub->issues == 0) {
            // Every candidate is gone and nothing is in flight:
            // degrade now rather than hang until the deadline.
            degradeSub(rop, *sub);
            if (--rop->left == 0)
                finishOp(rop, /*immediate=*/false);
        }
        // Otherwise an earlier issue is still in flight; it or the
        // deadline will resolve this sub.
        return;
    }

    unsigned idx = sub->next++;
    unsigned dev = sub->shards[idx];
    unsigned ord = sub->issues++;
    ++issuesTotal_;

    SlsOp s;
    s.table = sub->descs[idx];
    s.indices = sub->indices;
    s.traceId = rop->traceId;
    Tick issued = eq_.now();
    inner_[dev]->run(s, [this, rop, sub, dev, issued, ord](SlsResult r) {
        Tick latency = eq_.now() - issued;
        shardLatency_[dev].record(latency);
        hedge_.observe(latency);
        health_.recordSuccess(dev);
        ++completionsTotal_;
        if (rop->finished)
            ++lateCompletions_[dev];
        if (sub->served) {
            // First completion already won; this one is hedge waste.
            ++duplicateCompletions_;
            return;
        }
        sub->served = true;
        ++servedSubs_;
        if (ord > 0)
            ++hedgeWins_;
        if (rop->finished)
            return;  // op already delivered degraded; result discarded
        accumulate(*rop, r);
        if (--rop->left == 0)
            finishOp(rop, /*immediate=*/false);
    });

    // Arm the hedge: if this issue is still unanswered after the
    // policy delay, charge a timeout against the device and re-issue
    // to the next untried healthy candidate.
    if (hedge_.active() && sub->next < sub->shards.size()) {
        eq_.scheduleAfter(hedge_.delay(), [this, rop, sub, dev]() {
            if (sub->served || rop->finished)
                return;
            health_.recordTimeout(dev, eq_.now());
            unsigned probe = sub->next;
            while (probe < sub->shards.size() &&
                   !healthy(sub->shards[probe]))
                ++probe;
            if (probe >= sub->shards.size())
                return;  // no one left to hedge to
            ++hedgesFired_;
            issueSub(rop, sub);
        });
    }
}

}  // namespace recssd
