/**
 * @file
 * Tail-tolerance knobs for the serving path.
 *
 * A `ResilConfig` turns the plain scatter-gather backend into the
 * resilient one (`ResilientSlsBackend`): per-op deadlines with a
 * degraded answer path, hedged sub-ops against replicas, and health
 * tracking that ejects repeatedly-timing-out devices. All defaults
 * are "off": a default config plus replication=1 keeps the serving
 * path byte-identical to the plain backend.
 */

#ifndef RECSSD_RESIL_RESIL_CONFIG_H
#define RECSSD_RESIL_RESIL_CONFIG_H

#include <cstddef>

#include "src/common/types.h"

namespace recssd
{

enum class HedgeMode
{
    Off,    ///< never re-issue
    Fixed,  ///< re-issue after a fixed delay
    Auto,   ///< re-issue after multiplier x observed pXX sub-op latency
};

/** When and whether to re-issue a slow sub-op to a replica. */
struct HedgeConfig
{
    HedgeMode mode = HedgeMode::Off;
    /** Fixed-mode delay; Auto falls back to it until warmed up. */
    Tick fixedDelay = 2 * msec;
    /** Auto: hedge when a sub-op exceeds multiplier x pXX. */
    double quantile = 0.95;
    double multiplier = 1.0;
    /** Auto: completions observed before trusting the quantile. */
    std::size_t minSamples = 32;
    /** Auto: floor, so a fast warm-up can't hedge everything. */
    Tick minDelay = 50 * usec;
};

struct ResilConfig
{
    /**
     * Per-op deadline (0 = none). A missed deadline delivers whatever
     * partials arrived, degrades the rest (host cache / zero fill),
     * and flags the answer degraded.
     */
    Tick deadline = 0;

    HedgeConfig hedge;

    /** Consecutive hedge timeouts before a device is ejected. */
    unsigned ejectAfterFailures = 3;

    /** How long an ejection lasts before the device is retried
     *  (half-open circuit breaker): a slow device wins its traffic
     *  back, a dead one just re-ejects on the next timeout streak. */
    Tick ejectCooldown = 10 * msec;

    /** Anything to do beyond plain scatter-gather? */
    bool
    active() const
    {
        return deadline > 0 || hedge.mode != HedgeMode::Off;
    }
};

}  // namespace recssd

#endif  // RECSSD_RESIL_RESIL_CONFIG_H
