/**
 * @file
 * Quantile-tracking hedge-delay policy ("The Tail at Scale").
 *
 * Observes every sub-op completion latency; `delay()` answers "how
 * long should a sub-op be outstanding before we re-issue it to a
 * replica". Fixed mode uses the configured delay verbatim; Auto mode
 * hedges past a configured quantile of the observed distribution
 * (classically p95, so at most ~5% of sub-ops hedge), falling back to
 * the fixed delay until enough samples arrived.
 */

#ifndef RECSSD_RESIL_HEDGE_H
#define RECSSD_RESIL_HEDGE_H

#include <algorithm>

#include "src/common/types.h"
#include "src/load/latency_recorder.h"
#include "src/resil/resil_config.h"

namespace recssd
{

class HedgePolicy
{
  public:
    explicit HedgePolicy(const HedgeConfig &config) : config_(config) {}

    bool active() const { return config_.mode != HedgeMode::Off; }

    /** Record one sub-op completion latency. */
    void
    observe(Tick latency)
    {
        if (config_.mode == HedgeMode::Auto)
            observed_.record(latency);
    }

    /** Current hedge delay under the configured mode. */
    Tick
    delay() const
    {
        if (config_.mode == HedgeMode::Fixed ||
            observed_.count() < config_.minSamples)
            return config_.fixedDelay;
        auto scaled = static_cast<Tick>(
            config_.multiplier *
            static_cast<double>(observed_.percentile(config_.quantile)));
        return std::max(config_.minDelay, scaled);
    }

    const HedgeConfig &config() const { return config_; }
    const LatencyRecorder &observed() const { return observed_; }

  private:
    HedgeConfig config_;
    LatencyRecorder observed_;
};

}  // namespace recssd

#endif  // RECSSD_RESIL_HEDGE_H
