#include "src/ssd/ssd.h"

namespace recssd
{

Ssd::Ssd(EventQueue &eq, const SsdConfig &config) : config_(config)
{
    store_ = std::make_unique<DataStore>(config_.flash.pageSize);
    flash_ = std::make_unique<FlashArray>(eq, config_.flash, *store_);
    ftl_ = std::make_unique<Ftl>(eq, config_.ftl, *flash_);
    pcie_ = std::make_unique<PcieLink>(eq, config_.pcie);
    controller_ =
        std::make_unique<HostController>(eq, config_.nvme, *pcie_, *ftl_);
    sls_ = std::make_unique<SlsEngine>(eq, config_.sls, *ftl_);
    controller_->setSlsHandler(sls_.get());
}

}  // namespace recssd
