#include "src/ssd/ssd.h"

namespace recssd
{

Ssd::Ssd(EventQueue &eq, const SsdConfig &config,
         const std::string &track_prefix)
    : config_(config)
{
    store_ = std::make_unique<DataStore>(config_.flash.pageSize);
    flash_ = std::make_unique<FlashArray>(eq, config_.flash, *store_,
                                          track_prefix);
    ftl_ = std::make_unique<Ftl>(eq, config_.ftl, *flash_, track_prefix);
    pcie_ = std::make_unique<PcieLink>(eq, config_.pcie, track_prefix);
    controller_ = std::make_unique<HostController>(eq, config_.nvme, *pcie_,
                                                   *ftl_, track_prefix);
    sls_ = std::make_unique<SlsEngine>(eq, config_.sls, *ftl_, track_prefix);
    controller_->setSlsHandler(sls_.get());
    if (!config_.faults.empty()) {
        injector_ = std::make_unique<FaultInjector>(
            eq, config_.faults, *flash_, *ftl_, *controller_, track_prefix);
        injector_->arm();
    }
}

}  // namespace recssd
