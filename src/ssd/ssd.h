/**
 * @file
 * The assembled SSD device: flash array + FTL + RecSSD SLS engine +
 * NVMe host controller, wired to one event queue and one PCIe link.
 *
 * Defaults model the Cosmos+ OpenSSD prototype. Hosts talk to the
 * device exclusively through `controller()`.
 */

#ifndef RECSSD_SSD_SSD_H
#define RECSSD_SSD_SSD_H

#include <memory>
#include <string>

#include "src/common/event_queue.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/flash/data_store.h"
#include "src/flash/flash_array.h"
#include "src/flash/flash_params.h"
#include "src/ftl/ftl.h"
#include "src/ftl/ftl_params.h"
#include "src/ndp/sls_engine.h"
#include "src/nvme/host_controller.h"
#include "src/nvme/pcie_link.h"

namespace recssd
{

/** Everything needed to instantiate a device. */
struct SsdConfig
{
    FlashParams flash;
    FtlParams ftl;
    SlsEngineParams sls;
    NvmeParams nvme;
    PcieParams pcie;
    /** Injected misbehavior (empty = healthy device, zero overhead). */
    DeviceFaultConfig faults;
};

class Ssd
{
  public:
    /** `track_prefix` namespaces every component trace track of this
     *  device (multi-SSD systems pass "ssd<d>."; single-device systems
     *  pass nothing and keep the historical track names). */
    Ssd(EventQueue &eq, const SsdConfig &config,
        const std::string &track_prefix = "");

    HostController &controller() { return *controller_; }
    Ftl &ftl() { return *ftl_; }
    SlsEngine &slsEngine() { return *sls_; }
    FlashArray &flash() { return *flash_; }
    PcieLink &pcie() { return *pcie_; }
    DataStore &store() { return *store_; }
    const SsdConfig &config() const { return config_; }

    /** Non-null only when the config carried fault scenarios. */
    FaultInjector *faultInjector() { return injector_.get(); }
    const FaultInjector *faultInjector() const { return injector_.get(); }

  private:
    SsdConfig config_;
    std::unique_ptr<DataStore> store_;
    std::unique_ptr<FlashArray> flash_;
    std::unique_ptr<Ftl> ftl_;
    std::unique_ptr<PcieLink> pcie_;
    std::unique_ptr<HostController> controller_;
    std::unique_ptr<SlsEngine> sls_;
    std::unique_ptr<FaultInjector> injector_;
};

}  // namespace recssd

#endif  // RECSSD_SSD_SSD_H
