/**
 * @file
 * Serve-mode SLO monitoring: windowed quantiles + error-budget burn.
 *
 * A single end-of-run attainment number hides exactly the thing an
 * operator pages on: a five-window brownout inside an otherwise
 * healthy run. The monitor buckets measured query completions into
 * tumbling windows of simulated time and computes, per window, the
 * attainment against the latency target, nearest-rank p50/p99, and
 * the error-budget burn rate — the SRE convention
 * (1 - attainment) / (1 - objective), so burn 1.0 means "spending
 * budget exactly as provisioned", burn 10 means "budget gone in a
 * tenth of the period". `runServe` feeds it when
 * `ServeConfig::slo.enabled` is set and surfaces the series in
 * `ServeStats` plus the stat registry (so stats JSON and the metric
 * sampler can export it); default runs never construct one.
 */

#ifndef RECSSD_OBS_SLO_MONITOR_H
#define RECSSD_OBS_SLO_MONITOR_H

#include <vector>

#include "src/common/types.h"

namespace recssd
{

/** Serve-mode SLO monitoring knobs (disabled by default). */
struct SloConfig
{
    bool enabled = false;
    /** Latency target one query either meets or misses. */
    Tick target = 50 * msec;
    /** Fraction of queries expected within target (the objective);
     *  must be in (0, 1). */
    double objective = 0.99;
    /** Tumbling window width over completion time. */
    Tick window = 10 * msec;
};

class SloMonitor
{
  public:
    /** One closed window of the attainment series. */
    struct Window
    {
        Tick start = 0;  ///< window start (multiple of config.window)
        unsigned queries = 0;
        unsigned met = 0;
        double p50Us = 0.0;
        double p99Us = 0.0;

        double
        attainment() const
        {
            return queries ? static_cast<double>(met) / queries : 1.0;
        }
    };

    explicit SloMonitor(const SloConfig &config);

    /** Feed one measured query (called in completion-time order). */
    void record(Tick completion, Tick latency);

    /** Close the trailing partial window (idempotent). */
    void finish();

    /** Closed windows in completion-time order; empty ones skipped. */
    const std::vector<Window> &windows() const { return windows_; }

    const SloConfig &config() const { return config_; }

    unsigned totalQueries() const { return totalQueries_; }

    /** Whole-run attainment over every recorded query. */
    double overallAttainment() const;

    /** Error-budget burn rate: (1 - attainment) / (1 - objective). */
    double burnRate(double attainment) const;
    double overallBurnRate() const { return burnRate(overallAttainment()); }

    /** Largest per-window burn rate seen (0 with no windows). */
    double worstWindowBurnRate() const;

  private:
    void closeWindow();

    SloConfig config_;
    std::vector<Window> windows_;
    /** Current (open) window accumulators. */
    bool open_ = false;
    Tick curStart_ = 0;
    unsigned curMet_ = 0;
    std::vector<double> curLatUs_;
    unsigned totalQueries_ = 0;
    unsigned totalMet_ = 0;
};

}  // namespace recssd

#endif  // RECSSD_OBS_SLO_MONITOR_H
