/**
 * @file
 * Sim-time span tracer.
 *
 * Components record nested spans keyed by a request id as a query
 * flows host CPU -> batch scheduler -> UNVMe driver -> NVMe/PCIe ->
 * FTL -> flash (or the NDP SLS engine) -> completion. Timestamps come
 * straight from the event queue, so tracing never reads a wall clock
 * and never perturbs simulated timing: an enabled tracer only appends
 * to in-memory vectors, and a disabled tracer costs one null-pointer
 * check at each instrumentation point (`tracerOf` returns nullptr).
 *
 * Exports Chrome trace-event JSON (load `trace.json` in Perfetto or
 * chrome://tracing): resource spans become complete ("X") events on
 * named tracks, request roots become async ("b"/"e") events grouped by
 * request id, so one request reads as one ribbon across the machine.
 */

#ifndef RECSSD_OBS_TRACER_H
#define RECSSD_OBS_TRACER_H

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/analysis.h"
#include "src/common/event_queue.h"
#include "src/common/types.h"
#include "src/obs/phase.h"

namespace recssd
{

/** Index of a span in the tracer's record vector. */
using SpanId = std::size_t;
constexpr SpanId invalidSpan = ~SpanId(0);

/** Index of a named track (rendered as one Perfetto thread). */
using TrackId = std::uint32_t;

/** One recorded span. `end == maxTick` while still open. */
struct SpanRecord
{
    TrackId track = 0;
    const char *name = "";    ///< static string; never freed
    Phase phase = Phase::Other;
    std::uint64_t req = 0;    ///< owning request id (0 = none)
    std::uint64_t parent = 0; ///< parent request id (roots only)
    Tick begin = 0;
    Tick end = maxTick;
};

class Tracer
{
  public:
    explicit Tracer(EventQueue &eq) : eq_(eq) {}

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    bool enabled() const { return enabled_; }

    /**
     * Turn tracing on/off and (un)hook this tracer into the event
     * queue so `tracerOf` finds it at every instrumentation point.
     */
    void
    setEnabled(bool on)
    {
        enabled_ = on;
        eq_.setTracer(on ? this : nullptr);
    }

    /** Intern a track by name; repeated calls return the same id. */
    TrackId track(const std::string &name);

    /**
     * Intern a runtime-built span label. `SpanRecord::name` stores a
     * raw pointer, so a name composed at runtime (per-tenant labels
     * like "query.victim") must outlive every span that uses it:
     * interned strings live as long as the tracer, and repeated calls
     * with equal text return the same pointer.
     */
    const char *internName(const std::string &name);

    /** Fresh request id (query, fused batch, command chain, ...). */
    std::uint64_t newRequestId() { return ++nextReq_; }

    /**
     * Open a root span for a request. Shows up as an async event in
     * the exported trace; the attribution pass treats its interval as
     * the request's end-to-end latency.
     */
    SpanId beginRequest(const char *name, std::uint64_t req)
        RECSSD_SPAN_BEGIN;

    /** Link a request to the fused batch that executes it. */
    void setRequestParent(std::uint64_t req, std::uint64_t parent);

    /** Open a span now; `end` stamps the closing time. Every begun
     *  span must be ended or handed off on every path (sim-lint R7):
     *  the exporter clamps leaked spans, but the attribution pass
     *  silently loses the phase. */
    SpanId begin(TrackId track, const char *name, Phase phase,
                 std::uint64_t req = 0) RECSSD_SPAN_BEGIN;

    /** Close an open span at the current tick. */
    void end(SpanId id) RECSSD_SPAN_END;

    /** Record an already-closed span with explicit begin/end ticks. */
    void span(TrackId track, const char *name, Phase phase,
              std::uint64_t req, Tick begin, Tick end);

    /** Zero-duration marker (arrivals, GC kicks, drops). */
    void instant(TrackId track, const char *name, std::uint64_t req = 0);

    const std::vector<SpanRecord> &spans() const { return spans_; }
    const std::vector<std::string> &tracks() const { return trackNames_; }

    /** Root span of a request, if one was opened. */
    const SpanRecord *rootOf(std::uint64_t req) const;

    /** Spans still open (diagnostics; a drained sim should have 0). */
    std::size_t openSpans() const { return open_; }

    /**
     * Write the whole trace as Chrome trace-event JSON. Valid JSON
     * even with open spans (they are clamped to the current tick).
     */
    void writeChromeTrace(std::ostream &os) const;

    void clear();

  private:
    EventQueue &eq_;
    bool enabled_ = false;
    std::uint64_t nextReq_ = 0;
    std::size_t open_ = 0;
    /**
     * Ordering contract (determinism rule R3): every exported
     * artifact is derived from the insertion-ordered vectors below --
     * `writeChromeTrace` walks `trackNames_` then `spans_` in append
     * order, which is fixed by the event schedule.  The unordered maps
     * are point-lookup indexes only (intern + rootOf); they are never
     * iterated, so hash order cannot reach the trace bytes.
     */
    std::vector<SpanRecord> spans_;
    std::vector<std::string> trackNames_;
    std::unordered_map<std::string, TrackId> trackIds_;
    std::unordered_map<std::uint64_t, SpanId> roots_;
    /** Interned span labels: a deque so addresses stay stable as more
     *  names intern; the map is a point-lookup index, never iterated. */
    std::deque<std::string> internedNames_;
    std::unordered_map<std::string, const char *> internedIdx_;
};

/**
 * The tracer wired to a component's event queue, or nullptr when
 * tracing is off. The single check every instrumentation point pays.
 */
inline Tracer *
tracerOf(EventQueue &eq)
{
    return eq.tracer();
}

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

}  // namespace recssd

#endif  // RECSSD_OBS_TRACER_H
