/**
 * @file
 * Machine-readable metrics: a registry of named scalars plus a
 * sim-time sampler.
 *
 * `StatRegistry` maps hierarchical names ("ftl.gc_pages_moved") to
 * getter functions over the live stat objects the components already
 * own; registration order is preserved so every export is
 * deterministic. `System` builds one registry over all subsystems.
 *
 * `MetricSampler` polls the registry at a fixed simulated interval by
 * scheduling itself on the event queue, recording one row per sample
 * point. Because it only reschedules while other events remain
 * pending, `EventQueue::run()` still drains. Rows export as JSONL (one
 * object per line, `ts_us` first) or CSV for plotting time series of
 * queue depths, cache hits, GC activity, etc. against sim time.
 */

#ifndef RECSSD_OBS_METRICS_H
#define RECSSD_OBS_METRICS_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/event_queue.h"
#include "src/common/types.h"

namespace recssd
{

class Counter;
class SampleStat;
class Gauge;

/** Ordered collection of named scalar getters over live stats. */
class StatRegistry
{
  public:
    using Getter = std::function<double()>;

    /** Register a scalar under `group.name`. Order is preserved. */
    void addScalar(const std::string &group, const std::string &name,
                   Getter get);

    /** @{ Conveniences over the common stat types (not owned). */
    void addCounter(const std::string &group, const std::string &name,
                    const Counter *c);
    void addGauge(const std::string &group, const std::string &name,
                  const Gauge *g);
    /** Registers `<name>.count` and `<name>.mean`. */
    void addSample(const std::string &group, const std::string &name,
                   const SampleStat *s);
    /** @} */

    std::size_t size() const { return names_.size(); }
    const std::vector<std::string> &names() const { return names_; }

    /** Evaluate every getter, in registration order. */
    std::vector<double> sample() const;

    /**
     * Evaluate the getter registered under `name` (linear scan;
     * audit/test use only). Asserts the name exists.
     */
    double valueOf(const std::string &name) const;

    /**
     * Dump all current values as one JSON object, keys sorted
     * lexicographically so output is diffable run to run.
     */
    void writeJson(std::ostream &os) const;

  private:
    std::vector<std::string> names_;
    std::vector<Getter> getters_;
};

/** One row of the sampled time series. */
struct MetricRow
{
    Tick ts = 0;
    std::vector<double> values;  ///< parallel to registry names
};

class MetricSampler
{
  public:
    /** @param interval Sim time between samples; must be > 0. */
    MetricSampler(EventQueue &eq, const StatRegistry &registry,
                  Tick interval);

    MetricSampler(const MetricSampler &) = delete;
    MetricSampler &operator=(const MetricSampler &) = delete;

    /**
     * Take a first sample now and keep sampling every `interval` ticks
     * for as long as the simulation has other work pending.
     */
    void start();

    /** Take one sample immediately (also used for a final snapshot). */
    void sampleNow();

    /**
     * Close the series at simulation end: emit one final sample unless
     * the last row already sits at the current tick. Without this the
     * final partial interval is silently dropped — a run shorter than
     * one interval would export only the t=0 snapshot. Idempotent, so
     * harnesses that drain the queue repeatedly stay duplicate-free.
     */
    void finish();

    const std::vector<MetricRow> &rows() const { return rows_; }

    /** One JSON object per line; `ts_us` first, then every metric. */
    void writeJsonl(std::ostream &os) const;

    /** Header row of `ts_us` + metric names, then one row per sample. */
    void writeCsv(std::ostream &os) const;

  private:
    void fire();

    EventQueue &eq_;
    const StatRegistry &registry_;
    Tick interval_;
    std::vector<MetricRow> rows_;
};

}  // namespace recssd

#endif  // RECSSD_OBS_METRICS_H
