/**
 * @file
 * Machine-readable metrics: a registry of named scalars plus a
 * sim-time sampler.
 *
 * `StatRegistry` maps hierarchical names ("ftl.gc_pages_moved") to
 * getter functions over the live stat objects the components already
 * own; registration order is preserved so every export is
 * deterministic. `System` builds one registry over all subsystems.
 *
 * `MetricSampler` polls the registry at a fixed simulated interval by
 * scheduling itself on the event queue, recording one row per sample
 * point. Because it only reschedules while other events remain
 * pending, `EventQueue::run()` still drains. Rows export as JSONL (one
 * object per line, `ts_us` first) or CSV for plotting time series of
 * queue depths, cache hits, GC activity, etc. against sim time.
 */

#ifndef RECSSD_OBS_METRICS_H
#define RECSSD_OBS_METRICS_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/analysis.h"
#include "src/common/event_queue.h"
#include "src/common/types.h"

namespace recssd
{

class Counter;
class SampleStat;
class Gauge;

/** Ordered collection of named scalar getters over live stats. */
class StatRegistry
{
  public:
    using Getter = std::function<double()>;

    /** Register a scalar under `group.name`. Order is preserved.
     *  Registrations must dominate the sampler's first touch within a
     *  body and may never run from a deferred event (sim-lint R6):
     *  rows are positional, so a late column makes earlier rows
     *  narrower than the name list. */
    void addScalar(const std::string &group, const std::string &name,
                   Getter get) RECSSD_STAT_REGISTRATION
        RECSSD_EXCLUDES(mu_);

    /** @{ Conveniences over the common stat types (not owned). */
    void addCounter(const std::string &group, const std::string &name,
                    const Counter *c) RECSSD_STAT_REGISTRATION;
    void addGauge(const std::string &group, const std::string &name,
                  const Gauge *g) RECSSD_STAT_REGISTRATION;
    /** Registers `<name>.count` and `<name>.mean`. */
    void addSample(const std::string &group, const std::string &name,
                   const SampleStat *s) RECSSD_STAT_REGISTRATION;
    /** @} */

    std::size_t size() const RECSSD_EXCLUDES(mu_)
    {
        SimLockGuard hold(mu_);
        return names_.size();
    }
    const std::vector<std::string> &names() const RECSSD_EXCLUDES(mu_)
    {
        SimLockGuard hold(mu_);
        return names_;
    }

    /** Evaluate every getter, in registration order. */
    std::vector<double> sample() const RECSSD_REGISTRY_SAMPLING
        RECSSD_EXCLUDES(mu_);

    /**
     * Evaluate the getter registered under `name` (linear scan;
     * audit/test use only). Asserts the name exists.
     */
    double valueOf(const std::string &name) const RECSSD_REGISTRY_SAMPLING;

    /**
     * Dump all current values as one JSON object, keys sorted
     * lexicographically so output is diffable run to run.
     */
    void writeJson(std::ostream &os) const RECSSD_REGISTRY_SAMPLING;

  private:
    /**
     * Pre-declared parallel-DES capability: registration happens at
     * system setup, but under concurrent logical processes a late
     * subsystem could race the sampling LP — the exact R6 hazard, made
     * a machine-checked contract. Zero-cost today (analysis.h).
     */
    mutable SimMutex mu_;
    std::vector<std::string> names_ RECSSD_GUARDED_BY(mu_);
    std::vector<Getter> getters_ RECSSD_GUARDED_BY(mu_);
};

/** One row of the sampled time series. */
struct MetricRow
{
    Tick ts = 0;
    std::vector<double> values;  ///< parallel to registry names
};

class MetricSampler
{
  public:
    /** @param interval Sim time between samples; must be > 0. */
    MetricSampler(EventQueue &eq, const StatRegistry &registry,
                  Tick interval);

    MetricSampler(const MetricSampler &) = delete;
    MetricSampler &operator=(const MetricSampler &) = delete;

    /**
     * Take a first sample now and keep sampling every `interval` ticks
     * for as long as the simulation has other work pending.
     */
    void start() RECSSD_REGISTRY_SAMPLING;

    /** Take one sample immediately (also used for a final snapshot). */
    void sampleNow() RECSSD_REGISTRY_SAMPLING;

    /**
     * Close the series at simulation end: emit one final sample unless
     * the last row already sits at the current tick. Without this the
     * final partial interval is silently dropped — a run shorter than
     * one interval would export only the t=0 snapshot. Idempotent, so
     * harnesses that drain the queue repeatedly stay duplicate-free.
     */
    void finish();

    const std::vector<MetricRow> &rows() const { return rows_; }

    /** One JSON object per line; `ts_us` first, then every metric.
     *  Indexed reads are clamped to each row's own width (sim-lint
     *  R6): rows sampled before a late registration are narrower than
     *  the registry's final name list. */
    void writeJsonl(std::ostream &os) const RECSSD_REGISTRY_SAMPLING;

    /** Header row of `ts_us` + metric names, then one row per sample.
     *  Missing (late-registered) cells render empty. */
    void writeCsv(std::ostream &os) const RECSSD_REGISTRY_SAMPLING;

  private:
    void fire();

    EventQueue &eq_;
    const StatRegistry &registry_;
    Tick interval_;
    std::vector<MetricRow> rows_;
};

}  // namespace recssd

#endif  // RECSSD_OBS_METRICS_H
