/**
 * @file
 * Per-phase latency attribution from a recorded trace.
 *
 * Reproduces the paper's Fig 6 / Fig 8 breakdowns from live spans
 * instead of hand-placed counters: for every traced request, each
 * instant of its end-to-end interval is charged to the most specific
 * phase active at that instant (`phasePriority`), so the per-phase
 * times of one request sum to exactly its end-to-end latency — time
 * covered by no span lands in the explicit `other` bucket, which keeps
 * the accounting honest instead of silently complete.
 */

#ifndef RECSSD_OBS_ATTRIBUTION_H
#define RECSSD_OBS_ATTRIBUTION_H

#include <iosfwd>
#include <vector>

#include "src/common/types.h"
#include "src/obs/phase.h"
#include "src/obs/tracer.h"

namespace recssd
{

/** Aggregated time-in-phase across the measured requests. */
struct PhaseBreakdownRow
{
    Phase phase = Phase::Other;
    double meanUs = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    double totalUs = 0.0;
    /** Share of summed end-to-end request time. */
    double fraction = 0.0;
};

struct AttributionReport
{
    /** Phases that appeared, deepest first; zero-time phases omitted. */
    std::vector<PhaseBreakdownRow> rows;
    unsigned requests = 0;
    double meanRequestUs = 0.0;
    double totalRequestUs = 0.0;
    /** Share of request time attributed to a named (non-other) phase. */
    double coverage = 0.0;

    void print(std::ostream &os) const;
    void writeJson(std::ostream &os) const;
};

/** Per-request phase times (exposed for tests and custom reports). */
struct RequestAttribution
{
    std::uint64_t req = 0;
    Tick e2e = 0;
    Tick perPhase[numPhases] = {};
};

/**
 * Attribute one request's interval across phases. Child spans are the
 * request's own plus (for scheduler queries) its fused batch's,
 * clamped to the root interval.
 */
RequestAttribution attributeRequest(const Tracer &tracer,
                                    const SpanRecord &root);

/**
 * Build the aggregate report. Requests are root spans named `rootName`
 * if any exist ("query" in serve mode), otherwise every root span —
 * so bench code works unchanged across harnesses.
 */
AttributionReport attribute(const Tracer &tracer,
                            const char *rootName = "query");

}  // namespace recssd

#endif  // RECSSD_OBS_ATTRIBUTION_H
