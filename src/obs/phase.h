/**
 * @file
 * The phase taxonomy of a request's life in the simulated machine.
 *
 * Every traced span carries a `Phase` so end-to-end latency can be
 * attributed the way the paper's Figures 6 and 8 do: host pre/post
 * processing, NVMe transport, FTL firmware work, NDP config scan and
 * translation, and raw flash array time. Phases are ordered by
 * specificity: when spans of different phases overlap in time on the
 * same request, each instant is charged to the most specific (deepest)
 * active phase, so per-request phase times always sum to exactly the
 * end-to-end latency.
 */

#ifndef RECSSD_OBS_PHASE_H
#define RECSSD_OBS_PHASE_H

#include <cstdint>

namespace recssd
{

enum class Phase : std::uint8_t
{
    /** Root span of one request (query or fused batch). */
    Request = 0,

    /* Ordered shallow -> deep; higher values win overlap ties. */
    SchedQueue,    ///< waiting in the batch scheduler
    HostCompute,   ///< MLPs, DRAM gathers, extraction, result merges
    HostQueueWait, ///< waiting for an NVMe queue-pair grant
    DeviceWait,    ///< NVMe command in flight, not otherwise attributed
    DriverSubmit,  ///< UNVMe io-thread submit / completion polling
    NvmeXfer,      ///< PCIe transfers + controller fetch/post work
    ResultDma,     ///< SLS result payload DMA back to the host
    FtlCpu,        ///< firmware core: command handling, GC bookkeeping
    NdpConfig,     ///< SLS engine config scan on the firmware core
    NdpTranslate,  ///< SLS engine extract+accumulate on the firmware core
    FlashWrite,    ///< channel + die occupancy of program operations
    FlashRead,     ///< channel + die occupancy of read operations

    /** Remainder of a request not covered by any span. */
    Other,
};

constexpr unsigned numPhases = static_cast<unsigned>(Phase::Other) + 1;

/** Stable short name used in reports, traces and JSON output. */
constexpr const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Request:       return "request";
      case Phase::SchedQueue:    return "sched.queue";
      case Phase::HostCompute:   return "host.compute";
      case Phase::HostQueueWait: return "host.queue_wait";
      case Phase::DeviceWait:    return "device.wait";
      case Phase::DriverSubmit:  return "driver.submit";
      case Phase::NvmeXfer:      return "nvme.xfer";
      case Phase::ResultDma:     return "nvme.result_dma";
      case Phase::FtlCpu:        return "ftl.cpu";
      case Phase::NdpConfig:     return "ndp.config";
      case Phase::NdpTranslate:  return "ndp.translate";
      case Phase::FlashWrite:    return "flash.write";
      case Phase::FlashRead:     return "flash.read";
      case Phase::Other:         return "other";
    }
    return "?";
}

/**
 * Attribution priority: when spans overlap, the instant belongs to the
 * phase with the larger priority. Deeper layers are more specific.
 */
constexpr int
phasePriority(Phase p)
{
    return static_cast<int>(p);
}

}  // namespace recssd

#endif  // RECSSD_OBS_PHASE_H
