#include "src/obs/utilization.h"

#include <algorithm>
#include <numeric>
#include <ostream>

#include "src/common/audit.h"
#include "src/obs/tracer.h"  // jsonEscape

namespace recssd
{

const UtilizationCollector::ResourceSeries *
UtilizationCollector::find(const std::string &name) const
{
    for (const ResourceSeries &rs : series_) {
        if (rs.name == name)
            return &rs;
    }
    return nullptr;
}

void
UtilizationCollector::auditLittlesLaw() const
{
    // Both sides are exact tick integrals over the same op set, built
    // by independent code paths (per-op sums vs per-bucket overlap
    // splitting), so equality is exact — any drift means the
    // bucketization dropped or double-counted op time, which would
    // silently skew every timeline. Dividing the matched residency
    // integral by the window gives time-average L; dividing the op
    // sums gives lambda * W — Little's law holds by construction once
    // these match.
    for (const ResourceSeries &rs : series_) {
        Tick busy = 0;
        Tick waiting = 0;
        Tick in_system = 0;
        for (const Bucket &b : rs.buckets) {
            busy += b.busy;
            waiting += b.waiting;
            in_system += b.inSystem;
        }
        recssd_assert(busy == rs.busyTicks,
                      "Little's-law audit: '%s' bucketized busy %llu != "
                      "summed %llu",
                      rs.name.c_str(),
                      static_cast<unsigned long long>(busy),
                      static_cast<unsigned long long>(rs.busyTicks));
        recssd_assert(waiting == rs.waitTicks,
                      "Little's-law audit: '%s' bucketized waiting %llu "
                      "!= summed %llu",
                      rs.name.c_str(),
                      static_cast<unsigned long long>(waiting),
                      static_cast<unsigned long long>(rs.waitTicks));
        recssd_assert(in_system == rs.residencyTicks,
                      "Little's-law audit: '%s' bucketized residency "
                      "%llu != summed %llu",
                      rs.name.c_str(),
                      static_cast<unsigned long long>(in_system),
                      static_cast<unsigned long long>(rs.residencyTicks));
    }
}

void
UtilizationCollector::writeJson(std::ostream &os, Tick endTime) const
{
    if (auditEnabled())
        auditLittlesLaw();

    // Name-sorted index over the insertion-ordered vector: output
    // order is lexicographic, never hash order (rule R3).
    std::vector<std::size_t> order(series_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return series_[a].name < series_[b].name;
              });

    double window = endTime > 0 ? static_cast<double>(endTime) : 1.0;
    os << "{\"bucket_us\":" << ticksToUs(bucket_) << ",\"end_us\":"
       << ticksToUs(endTime) << ",\"resources\":[";
    bool first_rs = true;
    for (std::size_t i : order) {
        const ResourceSeries &rs = series_[i];
        double capacity = window * rs.servers;
        os << (first_rs ? "" : ",") << "\n{\"name\":\""
           << jsonEscape(rs.name) << "\",\"servers\":" << rs.servers
           << ",\"ops\":" << rs.ops << ",\"busy_us\":"
           << ticksToUs(rs.busyTicks) << ",\"wait_us\":"
           << ticksToUs(rs.waitTicks) << ",\"residency_us\":"
           << ticksToUs(rs.residencyTicks) << ",\"utilization\":"
           << static_cast<double>(rs.busyTicks) / capacity
           << ",\"mean_queue_len\":"
           << static_cast<double>(rs.residencyTicks) / window
           << ",\"timeline\":[";
        for (std::size_t b = 0; b < rs.buckets.size(); ++b) {
            const Bucket &bucket = rs.buckets[b];
            double width = static_cast<double>(bucket_);
            os << (b ? "," : "") << "\n {\"t_us\":"
               << ticksToUs(static_cast<Tick>(b) * bucket_)
               << ",\"util\":"
               << static_cast<double>(bucket.busy) / (width * rs.servers)
               << ",\"queue_len\":"
               << static_cast<double>(bucket.inSystem) / width
               << ",\"waiting\":"
               << static_cast<double>(bucket.waiting) / width
               << ",\"arrivals\":" << bucket.arrivals << "}";
        }
        os << "]}";
        first_rs = false;
    }
    os << "\n]}\n";
}

}  // namespace recssd
