#include "src/obs/tracer.h"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "src/common/logging.h"

namespace recssd
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

TrackId
Tracer::track(const std::string &name)
{
    auto it = trackIds_.find(name);
    if (it != trackIds_.end())
        return it->second;
    TrackId id = static_cast<TrackId>(trackNames_.size());
    trackNames_.push_back(name);
    trackIds_.emplace(name, id);
    return id;
}

const char *
Tracer::internName(const std::string &name)
{
    auto it = internedIdx_.find(name);
    if (it != internedIdx_.end())
        return it->second;
    internedNames_.push_back(name);
    const char *stable = internedNames_.back().c_str();
    internedIdx_.emplace(name, stable);
    return stable;
}

SpanId
Tracer::beginRequest(const char *name, std::uint64_t req)
{
    recssd_assert(req != 0, "request spans need a nonzero id");
    SpanId id = begin(track("requests"), name, Phase::Request, req);
    roots_.emplace(req, id);
    return id;
}

void
Tracer::setRequestParent(std::uint64_t req, std::uint64_t parent)
{
    auto it = roots_.find(req);
    if (it != roots_.end())
        spans_[it->second].parent = parent;
}

SpanId
Tracer::begin(TrackId track, const char *name, Phase phase,
              std::uint64_t req)
{
    SpanRecord rec;
    rec.track = track;
    rec.name = name;
    rec.phase = phase;
    rec.req = req;
    rec.begin = eq_.now();
    spans_.push_back(rec);
    ++open_;
    return spans_.size() - 1;
}

void
Tracer::end(SpanId id)
{
    if (id == invalidSpan)
        return;
    recssd_assert(id < spans_.size(), "bogus span id");
    recssd_assert(spans_[id].end == maxTick, "span closed twice");
    spans_[id].end = eq_.now();
    recssd_assert(open_ > 0, "open-span underflow");
    --open_;
}

void
Tracer::span(TrackId track, const char *name, Phase phase,
             std::uint64_t req, Tick begin, Tick end)
{
    recssd_assert(begin <= end, "span ends before it begins");
    SpanRecord rec;
    rec.track = track;
    rec.name = name;
    rec.phase = phase;
    rec.req = req;
    rec.begin = begin;
    rec.end = end;
    spans_.push_back(rec);
}

void
Tracer::instant(TrackId track, const char *name, std::uint64_t req)
{
    span(track, name, Phase::Other, req, eq_.now(), eq_.now());
}

const SpanRecord *
Tracer::rootOf(std::uint64_t req) const
{
    auto it = roots_.find(req);
    return it == roots_.end() ? nullptr : &spans_[it->second];
}

void
Tracer::clear()
{
    spans_.clear();
    roots_.clear();
    open_ = 0;
}

namespace
{

/** Ticks (ns) to the trace format's microsecond timestamps. */
void
printTs(std::ostream &os, Tick t)
{
    // Emit as an exact decimal (ns / 1000) rather than going through
    // a double, so nanosecond resolution survives the round trip.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", t / 1000,
                  static_cast<unsigned>(t % 1000));
    os << buf;
}

}  // namespace

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    Tick now = eq_.now();
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };

    // Track (thread) name metadata so Perfetto labels the lanes.
    for (std::size_t t = 0; t < trackNames_.size(); ++t) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << t + 1
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(trackNames_[t]) << "\"}}";
    }

    for (const SpanRecord &s : spans_) {
        Tick end = s.end == maxTick ? now : s.end;
        if (s.phase == Phase::Request) {
            // Async begin/end pair grouped by request id: concurrent
            // requests each get their own ribbon.
            sep();
            os << "{\"ph\":\"b\",\"cat\":\"request\",\"id\":" << s.req
               << ",\"pid\":1,\"tid\":" << s.track + 1 << ",\"name\":\""
               << jsonEscape(s.name) << "\",\"ts\":";
            printTs(os, s.begin);
            if (s.parent != 0)
                os << ",\"args\":{\"parent\":" << s.parent << "}";
            os << "}";
            sep();
            os << "{\"ph\":\"e\",\"cat\":\"request\",\"id\":" << s.req
               << ",\"pid\":1,\"tid\":" << s.track + 1 << ",\"name\":\""
               << jsonEscape(s.name) << "\",\"ts\":";
            printTs(os, end);
            os << "}";
            continue;
        }
        sep();
        const char *ph = s.begin == end ? "i" : "X";
        os << "{\"ph\":\"" << ph << "\",\"cat\":\""
           << phaseName(s.phase) << "\",\"pid\":1,\"tid\":" << s.track + 1
           << ",\"name\":\"" << jsonEscape(s.name) << "\",\"ts\":";
        printTs(os, s.begin);
        if (s.begin != end) {
            os << ",\"dur\":";
            printTs(os, end - s.begin);
        } else {
            os << ",\"s\":\"t\"";
        }
        if (s.req != 0)
            os << ",\"args\":{\"req\":" << s.req << "}";
        os << "}";
    }
    os << "\n]}\n";
}

}  // namespace recssd
