#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <ostream>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/obs/tracer.h"  // jsonEscape

namespace recssd
{

namespace
{

/**
 * Print a double the way JSON expects: integral values without an
 * exponent, everything else with enough digits to round-trip.
 */
void
printNumber(std::ostream &os, double v)
{
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v < 1e15 && v > -1e15) {
        os << static_cast<long long>(v);
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

}  // namespace

void
StatRegistry::addScalar(const std::string &group, const std::string &name,
                        Getter get)
{
    SimLockGuard hold(mu_);
    names_.push_back(group + "." + name);
    getters_.push_back(std::move(get));
}

void
StatRegistry::addCounter(const std::string &group, const std::string &name,
                         const Counter *c)
{
    addScalar(group, name,
              [c] { return static_cast<double>(c->value()); });
}

void
StatRegistry::addGauge(const std::string &group, const std::string &name,
                       const Gauge *g)
{
    addScalar(group, name,
              [g] { return static_cast<double>(g->value()); });
    addScalar(group, name + ".high_water",
              [g] { return static_cast<double>(g->highWater()); });
}

void
StatRegistry::addSample(const std::string &group, const std::string &name,
                        const SampleStat *s)
{
    addScalar(group, name + ".count",
              [s] { return static_cast<double>(s->count()); });
    addScalar(group, name + ".mean", [s] { return s->mean(); });
}

double
StatRegistry::valueOf(const std::string &name) const
{
    SimLockGuard hold(mu_);
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name)
            return getters_[i]();
    }
    panic("no stat registered under '%s'", name.c_str());
}

std::vector<double>
StatRegistry::sample() const
{
    SimLockGuard hold(mu_);
    std::vector<double> out;
    out.reserve(getters_.size());
    for (const Getter &g : getters_)
        out.push_back(g());
    return out;
}

void
StatRegistry::writeJson(std::ostream &os) const
{
    SimLockGuard hold(mu_);
    std::vector<std::size_t> order(names_.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return names_[a] < names_[b];
              });
    os << "{";
    bool first = true;
    for (std::size_t i : order) {
        os << (first ? "\n" : ",\n") << "  \"" << jsonEscape(names_[i])
           << "\": ";
        printNumber(os, getters_[i]());
        first = false;
    }
    os << "\n}\n";
}

MetricSampler::MetricSampler(EventQueue &eq, const StatRegistry &registry,
                             Tick interval)
    : eq_(eq), registry_(registry), interval_(interval)
{
    recssd_assert(interval > 0, "sampling interval must be positive");
}

void
MetricSampler::start()
{
    // Sample the initial state and arm the first tick unconditionally:
    // callers start the sampler before scheduling the workload, so the
    // queue may still be empty here. Subsequent ticks only re-arm
    // while other work remains, so the queue always drains.
    sampleNow();
    eq_.scheduleAfter(interval_, [this] { fire(); });
}

void
MetricSampler::sampleNow()
{
    rows_.push_back({eq_.now(), registry_.sample()});
}

void
MetricSampler::finish()
{
    if (!rows_.empty() && rows_.back().ts == eq_.now())
        return;
    sampleNow();
}

void
MetricSampler::fire()
{
    sampleNow();
    // Reschedule only while the simulation has other work: a sampler
    // must never keep an otherwise-drained event queue alive.
    if (eq_.pending() > 0)
        eq_.scheduleAfter(interval_, [this] { fire(); });
}

void
MetricSampler::writeJsonl(std::ostream &os) const
{
    const auto &names = registry_.names();
    for (const MetricRow &row : rows_) {
        os << "{\"ts_us\":";
        printNumber(os, ticksToUs(row.ts));
        // Stats registered after a row was sampled (e.g. the
        // serve.update.* scalars added at end of run) have no value in
        // that row — emit only the columns that existed at sample
        // time. Reading past row.values would export uninitialized
        // memory and break the two-run reproducibility audit.
        std::size_t cols = std::min(names.size(), row.values.size());
        for (std::size_t i = 0; i < cols; ++i) {
            os << ",\"" << jsonEscape(names[i]) << "\":";
            printNumber(os, row.values[i]);
        }
        os << "}\n";
    }
}

void
MetricSampler::writeCsv(std::ostream &os) const
{
    const auto &names = registry_.names();
    os << "ts_us";
    for (const std::string &n : names)
        os << "," << n;
    os << "\n";
    for (const MetricRow &row : rows_) {
        printNumber(os, ticksToUs(row.ts));
        for (double v : row.values) {
            os << ",";
            printNumber(os, v);
        }
        // Columns registered after this row was sampled: empty cells
        // (the stat did not exist yet), never uninitialized reads.
        for (std::size_t i = row.values.size(); i < names.size(); ++i)
            os << ",";
        os << "\n";
    }
}

}  // namespace recssd
