/**
 * @file
 * Critical-path blame attribution from a recorded trace.
 *
 * Phase attribution (attribution.h) answers "what kind of work" each
 * request instant was; blame attribution answers the operator's
 * question: *which resource* held the request up, and was it doing
 * work or making the request wait in line. Every instant of a
 * request's end-to-end interval is charged to the deepest span active
 * at that instant — ties broken by phase specificity, then by span
 * nesting (a later-opened span is the more specific cause) — and
 * aggregated by (track, span-name), split into queueing vs service.
 * Per-request blame therefore partitions the end-to-end latency
 * exactly, tick for tick, the same invariant the phase report keeps.
 *
 * The aggregate report carries two views: the whole measured
 * population, and the tail — requests whose end-to-end latency is at
 * or above the population p99 — so "68% of p99 time blocked on die 3
 * queueing" is a direct read of one row. The sweep is the same
 * O(n log n) elementary-segment pass as attribution.cc: sort
 * open/close edges once, keep the active set in an ordered container,
 * charge each segment to its maximum.
 */

#ifndef RECSSD_OBS_CRITICAL_PATH_H
#define RECSSD_OBS_CRITICAL_PATH_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/obs/phase.h"
#include "src/obs/tracer.h"

namespace recssd
{

/**
 * One blame target: a (track, span-name) pair, e.g.
 * ("flash.ch0.die1", "wait"). `queueing` classifies the span name —
 * waiting-in-line names (sched_queue, queue_wait, wait, fw_pause)
 * versus doing-work names (everything else).
 */
struct BlameRow
{
    std::string track;
    std::string name;
    Phase phase = Phase::Other;
    bool queueing = false;
    /** Requests whose critical path includes this target. */
    unsigned requests = 0;
    double totalUs = 0.0;
    /** Share of summed end-to-end time, whole population. */
    double fraction = 0.0;
    /** Time and share within the tail (e2e >= population p99). */
    double tailUs = 0.0;
    double tailFraction = 0.0;
};

struct BlameReport
{
    /** Rows sorted by totalUs descending (ties: track, then name). */
    std::vector<BlameRow> rows;
    unsigned requests = 0;
    double totalRequestUs = 0.0;
    double meanRequestUs = 0.0;
    /** Tail population: requests with e2e >= this threshold. */
    double tailThresholdUs = 0.0;
    unsigned tailRequests = 0;
    double tailTotalUs = 0.0;
    /** Share of all request time blamed on queueing rows. */
    double queueingFraction = 0.0;
    /** Same share restricted to the tail population. */
    double tailQueueingFraction = 0.0;

    void print(std::ostream &os) const;
    void writeJson(std::ostream &os) const;

    /** Row for (track, name), or nullptr (linear scan; test use). */
    const BlameRow *find(const std::string &track,
                         const std::string &name) const;
};

/** Per-request critical-path slices (exposed for tests). */
struct RequestBlame
{
    std::uint64_t req = 0;
    Tick e2e = 0;
    /** (track, name, ticks) slices; sum of ticks == e2e exactly. */
    struct Slice
    {
        const char *track = "";  ///< interned track name ("" = other)
        const char *name = "";
        Phase phase = Phase::Other;
        Tick ticks = 0;
    };
    std::vector<Slice> slices;

    /** Sum of slice ticks (the partition invariant says == e2e). */
    Tick totalTicks() const;
};

/** True if `name` is a waiting-in-line span (blame kind "queue"). */
bool blameIsQueueing(const char *name);

/**
 * Blame one request's interval. Child spans are the request's own
 * plus (for scheduler queries) its fused batch's, clamped to the root
 * interval — identical population rules to `attributeRequest`.
 */
RequestBlame blameRequest(const Tracer &tracer, const SpanRecord &root);

/**
 * Build the aggregate blame report over root spans named `rootName`
 * when any exist ("query" in serve mode), otherwise every root.
 * Under RECSSD_AUDIT every request's slices are checked to partition
 * its end-to-end interval exactly.
 */
BlameReport computeBlame(const Tracer &tracer,
                         const char *rootName = "query");

/**
 * Structural sanity of a recorded trace: every closed span has
 * begin <= end, every open count is balanced, and request parent
 * links are acyclic (a query's parent batch has no parent of its
 * own). @return number of violations (0 = clean). Fault injection
 * (die stalls, hedged duplicates) must keep this at zero.
 */
std::size_t validateSpanOrdering(const Tracer &tracer);

}  // namespace recssd

#endif  // RECSSD_OBS_CRITICAL_PATH_H
