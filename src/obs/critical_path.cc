#include "src/obs/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iomanip>
#include <ostream>
#include <set>
#include <tuple>
#include <unordered_map>

#include "src/common/audit.h"
#include "src/common/logging.h"

namespace recssd
{

namespace
{

/**
 * Point-lookup index only (determinism rule R3): blame walks requests
 * in root-span insertion order and does `find(req)` here; the map is
 * never iterated, and each per-request vector preserves span append
 * order, so hash order never reaches any output.
 */
using SpanIndex =
    std::unordered_map<std::uint64_t, std::vector<const SpanRecord *>>;

SpanIndex
indexByRequest(const Tracer &tracer)
{
    SpanIndex index;
    for (const SpanRecord &s : tracer.spans()) {
        if (s.req != 0 && s.phase != Phase::Request)
            index[s.req].push_back(&s);
    }
    return index;
}

RequestBlame
blameIndexed(const Tracer &tracer, const SpanIndex &index,
             const SpanRecord &root)
{
    RequestBlame out;
    out.req = root.req;
    Tick lo = root.begin;
    Tick hi = root.end == maxTick ? root.begin : root.end;
    out.e2e = hi - lo;
    if (out.e2e == 0)
        return out;

    // Children: the request's own spans plus — for scheduler queries —
    // the fused batch that executed it, clamped to the root interval.
    struct Child
    {
        const SpanRecord *span;
        Tick b, e;  ///< clamped interval
    };
    std::vector<Child> children;
    auto collect = [&](std::uint64_t req) {
        auto it = index.find(req);
        if (it == index.end())
            return;
        for (const SpanRecord *s : it->second) {
            Tick b = std::max(s->begin, lo);
            Tick e = std::min(s->end == maxTick ? hi : s->end, hi);
            if (b >= e)
                continue;
            children.push_back({s, b, e});
        }
    };
    collect(root.req);
    if (root.parent != 0)
        collect(root.parent);

    // Elementary-segment sweep, same O(n log n) shape as attribution:
    // sorted open/close edges, but the winner of each segment is the
    // deepest active *span*, not just the deepest phase. Depth key is
    // (phase priority, original begin tick, collection index): a span
    // opened later is the more proximate cause of the wait, and the
    // index makes equal-tick ties deterministic.
    using Key = std::tuple<int, Tick, std::size_t>;
    struct Edge
    {
        Tick t;
        bool close;  ///< closes sort before opens at equal t
        std::size_t child;
    };
    std::vector<Edge> edges;
    edges.reserve(children.size() * 2);
    for (std::size_t j = 0; j < children.size(); ++j) {
        edges.push_back({children[j].b, false, j});
        edges.push_back({children[j].e, true, j});
    }
    std::sort(edges.begin(), edges.end(), [](const Edge &a, const Edge &b) {
        if (a.t != b.t)
            return a.t < b.t;
        if (a.close != b.close)
            return a.close;
        return a.child < b.child;
    });

    std::set<Key> active;
    std::vector<Tick> perChild(children.size(), 0);
    Tick otherTicks = 0;
    auto keyOf = [&](std::size_t j) {
        return Key{phasePriority(children[j].span->phase),
                   children[j].span->begin, j};
    };
    auto charge = [&](Tick b, Tick e) {
        if (b >= e)
            return;
        if (active.empty())
            otherTicks += e - b;
        else
            perChild[std::get<2>(*active.rbegin())] += e - b;
    };

    Tick cursor = lo;
    for (const Edge &edge : edges) {
        charge(cursor, edge.t);
        cursor = std::max(cursor, edge.t);
        if (edge.close)
            active.erase(keyOf(edge.child));
        else
            active.insert(keyOf(edge.child));
    }
    charge(cursor, hi);

    // Fold per-span ticks into per-(track, name) slices, preserving
    // first-appearance order. Slice strings borrow from the tracer,
    // which outlives every report built from it.
    const std::vector<std::string> &tracks = tracer.tracks();
    auto addSlice = [&](const char *track, const char *name, Phase phase,
                        Tick ticks) {
        if (ticks == 0)
            return;
        for (RequestBlame::Slice &s : out.slices) {
            if (!std::strcmp(s.track, track) && !std::strcmp(s.name, name)) {
                s.ticks += ticks;
                return;
            }
        }
        out.slices.push_back({track, name, phase, ticks});
    };
    for (std::size_t j = 0; j < children.size(); ++j) {
        addSlice(tracks[children[j].span->track].c_str(),
                 children[j].span->name, children[j].span->phase,
                 perChild[j]);
    }
    addSlice("", "other", Phase::Other, otherTicks);
    return out;
}

}  // namespace

Tick
RequestBlame::totalTicks() const
{
    Tick total = 0;
    for (const Slice &s : slices)
        total += s.ticks;
    return total;
}

bool
blameIsQueueing(const char *name)
{
    // Waiting-in-line span names across the stack: scheduler queue,
    // NVMe queue-pair grant wait, die/channel backlog wait, firmware
    // pause. Everything else is a resource doing work.
    return !std::strcmp(name, "sched_queue") ||
           !std::strcmp(name, "queue_wait") ||
           !std::strcmp(name, "wait") || !std::strcmp(name, "fw_pause");
}

RequestBlame
blameRequest(const Tracer &tracer, const SpanRecord &root)
{
    return blameIndexed(tracer, indexByRequest(tracer), root);
}

std::size_t
validateSpanOrdering(const Tracer &tracer)
{
    std::size_t violations = 0;
    for (const SpanRecord &s : tracer.spans()) {
        if (s.end != maxTick && s.end < s.begin)
            ++violations;  // time ran backwards inside a span
        if (s.phase == Phase::Request && s.parent != 0) {
            if (s.parent == s.req) {
                ++violations;  // self-parent cycle
                continue;
            }
            // The parent chain must terminate in one hop: a query's
            // fused batch is itself parentless, so hedged duplicates
            // and stalled sub-ops can never form a causality cycle.
            const SpanRecord *parent = tracer.rootOf(s.parent);
            if (parent && parent->parent != 0)
                ++violations;
        }
    }
    return violations;
}

BlameReport
computeBlame(const Tracer &tracer, const char *root_name)
{
    // Same population rule as phase attribution: named roots when
    // present (serving queries), otherwise every root.
    std::vector<const SpanRecord *> roots;
    bool named_only = false;
    for (const SpanRecord &s : tracer.spans()) {
        if (s.phase != Phase::Request)
            continue;
        bool named = root_name && !std::strcmp(s.name, root_name);
        if (named && !named_only) {
            named_only = true;
            roots.clear();
        }
        if (!named_only || named)
            roots.push_back(&s);
    }

    SpanIndex index = indexByRequest(tracer);
    std::vector<RequestBlame> per_req;
    per_req.reserve(roots.size());
    for (const SpanRecord *root : roots)
        per_req.push_back(blameIndexed(tracer, index, *root));

    const bool audit = auditEnabled();

    BlameReport report;
    report.requests = static_cast<unsigned>(per_req.size());
    if (per_req.empty())
        return report;

    // Tail population: nearest-rank p99 of end-to-end latency.
    std::vector<Tick> e2es;
    e2es.reserve(per_req.size());
    for (const RequestBlame &r : per_req)
        e2es.push_back(r.e2e);
    std::sort(e2es.begin(), e2es.end());
    Tick tail_threshold =
        e2es[static_cast<std::size_t>(0.99 * (e2es.size() - 1))];
    report.tailThresholdUs = ticksToUs(tail_threshold);

    // Aggregate rows keyed by (track, name); first-appearance order
    // until the final sort. The unordered map is a point-lookup index
    // only (rule R3) — output order comes from the rows vector.
    std::unordered_map<std::string, std::size_t> rowIndex;
    auto rowFor = [&](const RequestBlame::Slice &s) -> BlameRow & {
        std::string key = std::string(s.track) + '\x1f' + s.name;
        auto it = rowIndex.find(key);
        if (it == rowIndex.end()) {
            it = rowIndex.emplace(std::move(key), report.rows.size()).first;
            BlameRow row;
            row.track = s.track;
            row.name = s.name;
            row.phase = s.phase;
            row.queueing = blameIsQueueing(s.name);
            report.rows.push_back(std::move(row));
        }
        return report.rows[it->second];
    };

    double queue_us = 0.0;
    double tail_queue_us = 0.0;
    for (const RequestBlame &r : per_req) {
        if (audit) {
            recssd_assert(r.totalTicks() == r.e2e,
                          "audit: blame slices of request %llu sum to "
                          "%llu ticks but e2e is %llu",
                          static_cast<unsigned long long>(r.req),
                          static_cast<unsigned long long>(r.totalTicks()),
                          static_cast<unsigned long long>(r.e2e));
        }
        bool tail = r.e2e >= tail_threshold;
        report.totalRequestUs += ticksToUs(r.e2e);
        if (tail) {
            ++report.tailRequests;
            report.tailTotalUs += ticksToUs(r.e2e);
        }
        for (const RequestBlame::Slice &s : r.slices) {
            BlameRow &row = rowFor(s);
            double us = ticksToUs(s.ticks);
            ++row.requests;
            row.totalUs += us;
            if (row.queueing)
                queue_us += us;
            if (tail) {
                row.tailUs += us;
                if (row.queueing)
                    tail_queue_us += us;
            }
        }
    }

    report.meanRequestUs =
        report.totalRequestUs / static_cast<double>(per_req.size());
    for (BlameRow &row : report.rows) {
        row.fraction = report.totalRequestUs > 0.0
                           ? row.totalUs / report.totalRequestUs
                           : 0.0;
        row.tailFraction =
            report.tailTotalUs > 0.0 ? row.tailUs / report.tailTotalUs : 0.0;
    }
    report.queueingFraction = report.totalRequestUs > 0.0
                                  ? queue_us / report.totalRequestUs
                                  : 0.0;
    report.tailQueueingFraction =
        report.tailTotalUs > 0.0 ? tail_queue_us / report.tailTotalUs : 0.0;

    std::sort(report.rows.begin(), report.rows.end(),
              [](const BlameRow &a, const BlameRow &b) {
                  if (a.totalUs != b.totalUs)
                      return a.totalUs > b.totalUs;
                  if (a.track != b.track)
                      return a.track < b.track;
                  return a.name < b.name;
              });
    return report;
}

const BlameRow *
BlameReport::find(const std::string &track, const std::string &name) const
{
    for (const BlameRow &row : rows) {
        if (row.track == track && row.name == name)
            return &row;
    }
    return nullptr;
}

void
BlameReport::print(std::ostream &os) const
{
    auto fmt = [](double v, int prec) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
        return std::string(buf);
    };
    os << "== critical-path blame: " << requests << " requests, mean e2e "
       << fmt(meanRequestUs, 1) << "us, tail = " << tailRequests
       << " requests >= " << fmt(tailThresholdUs, 1) << "us ==\n";
    os << "  " << std::left << std::setw(24) << "resource" << std::setw(14)
       << "span" << std::setw(9) << "kind" << std::right << std::setw(7)
       << "reqs" << std::setw(12) << "total-us" << std::setw(9) << "share"
       << std::setw(11) << "tail" << "\n";
    for (const BlameRow &row : rows) {
        os << "  " << std::left << std::setw(24)
           << (row.track.empty() ? "(uncovered)" : row.track)
           << std::setw(14) << row.name << std::setw(9)
           << (row.queueing ? "queue" : "service") << std::right
           << std::setw(7) << row.requests << std::setw(12)
           << fmt(row.totalUs, 1) << std::setw(8)
           << fmt(row.fraction * 100, 1) << "%" << std::setw(10)
           << fmt(row.tailFraction * 100, 1) << "%\n";
    }
    os << "queueing share: " << fmt(queueingFraction * 100, 1)
       << "% of all request time, " << fmt(tailQueueingFraction * 100, 1)
       << "% of tail time\n";
}

void
BlameReport::writeJson(std::ostream &os) const
{
    os << "{\"requests\":" << requests << ",\"mean_request_us\":"
       << meanRequestUs << ",\"total_request_us\":" << totalRequestUs
       << ",\"tail_threshold_us\":" << tailThresholdUs
       << ",\"tail_requests\":" << tailRequests << ",\"tail_total_us\":"
       << tailTotalUs << ",\"queueing_fraction\":" << queueingFraction
       << ",\"tail_queueing_fraction\":" << tailQueueingFraction
       << ",\"resources\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const BlameRow &row = rows[i];
        os << (i ? "," : "") << "\n{\"track\":\"" << jsonEscape(row.track)
           << "\",\"name\":\"" << jsonEscape(row.name) << "\",\"phase\":\""
           << jsonEscape(phaseName(row.phase)) << "\",\"kind\":\""
           << (row.queueing ? "queue" : "service")
           << "\",\"requests\":" << row.requests << ",\"total_us\":"
           << row.totalUs << ",\"fraction\":" << row.fraction
           << ",\"tail_us\":" << row.tailUs << ",\"tail_fraction\":"
           << row.tailFraction << "}";
    }
    os << "\n]}\n";
}

}  // namespace recssd
