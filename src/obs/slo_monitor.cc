#include "src/obs/slo_monitor.h"

#include <algorithm>

#include "src/common/logging.h"

namespace recssd
{

SloMonitor::SloMonitor(const SloConfig &config) : config_(config)
{
    recssd_assert(config_.window > 0, "SLO window must be positive");
    recssd_assert(config_.objective > 0.0 && config_.objective < 1.0,
                  "SLO objective must be in (0, 1)");
}

void
SloMonitor::record(Tick completion, Tick latency)
{
    Tick window_start = completion - completion % config_.window;
    if (open_ && window_start != curStart_) {
        recssd_assert(window_start > curStart_,
                      "SLO completions arrived out of order");
        closeWindow();
    }
    if (!open_) {
        open_ = true;
        curStart_ = window_start;
        curMet_ = 0;
        curLatUs_.clear();
    }
    curLatUs_.push_back(ticksToUs(latency));
    if (latency <= config_.target) {
        ++curMet_;
        ++totalMet_;
    }
    ++totalQueries_;
}

void
SloMonitor::closeWindow()
{
    Window w;
    w.start = curStart_;
    w.queries = static_cast<unsigned>(curLatUs_.size());
    w.met = curMet_;
    std::sort(curLatUs_.begin(), curLatUs_.end());
    auto pct = [&](double q) {
        auto idx = static_cast<std::size_t>(q * (curLatUs_.size() - 1));
        return curLatUs_[idx];
    };
    if (!curLatUs_.empty()) {
        w.p50Us = pct(0.50);
        w.p99Us = pct(0.99);
    }
    windows_.push_back(w);
    open_ = false;
}

void
SloMonitor::finish()
{
    if (open_)
        closeWindow();
}

double
SloMonitor::overallAttainment() const
{
    return totalQueries_ ? static_cast<double>(totalMet_) / totalQueries_
                         : 1.0;
}

double
SloMonitor::burnRate(double attainment) const
{
    return (1.0 - attainment) / (1.0 - config_.objective);
}

double
SloMonitor::worstWindowBurnRate() const
{
    double worst = 0.0;
    for (const Window &w : windows_)
        worst = std::max(worst, burnRate(w.attainment()));
    return worst;
}

}  // namespace recssd
