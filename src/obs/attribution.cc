#include "src/obs/attribution.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iomanip>
#include <ostream>
#include <string>
#include <unordered_map>

namespace recssd
{

namespace
{

/**
 * Point-lookup index only (determinism rule R3): attribution walks
 * requests in root-span insertion order and does `find(req)` here; the
 * map itself is never iterated, and each per-request vector preserves
 * span append order, so hash order never reaches any output.
 */
using SpanIndex =
    std::unordered_map<std::uint64_t, std::vector<const SpanRecord *>>;

SpanIndex
indexByRequest(const Tracer &tracer)
{
    SpanIndex index;
    for (const SpanRecord &s : tracer.spans()) {
        if (s.req != 0 && s.phase != Phase::Request)
            index[s.req].push_back(&s);
    }
    return index;
}

RequestAttribution
attributeIndexed(const SpanIndex &index, const SpanRecord &root)
{
    RequestAttribution out;
    out.req = root.req;
    Tick lo = root.begin;
    Tick hi = root.end == maxTick ? root.begin : root.end;
    out.e2e = hi - lo;
    if (out.e2e == 0)
        return out;

    // Children: the request's own spans plus — for scheduler queries —
    // the fused batch that executed it, clamped to the root interval.
    std::vector<std::pair<Tick, Tick>> clamped;  // parallel to phases
    std::vector<Phase> phases;
    auto collect = [&](std::uint64_t req) {
        auto it = index.find(req);
        if (it == index.end())
            return;
        for (const SpanRecord *s : it->second) {
            Tick b = std::max(s->begin, lo);
            Tick e = std::min(s->end == maxTick ? hi : s->end, hi);
            if (b >= e)
                continue;
            clamped.emplace_back(b, e);
            phases.push_back(s->phase);
        }
    };
    collect(root.req);
    if (root.parent != 0)
        collect(root.parent);

    // Elementary-segment sweep: charge each boundary-to-boundary
    // segment to the highest-priority active phase. One sorted pass
    // over open/close edges with per-phase active counts keeps this
    // O(n log n) in spans (the old all-pairs scan was quadratic and
    // dominated trace export on big serve runs).
    struct Edge
    {
        Tick t;
        bool close;  ///< closes sort before opens at equal t
        Phase phase;
    };
    std::vector<Edge> edges;
    edges.reserve(clamped.size() * 2);
    for (std::size_t j = 0; j < clamped.size(); ++j) {
        edges.push_back({clamped[j].first, false, phases[j]});
        edges.push_back({clamped[j].second, true, phases[j]});
    }
    std::sort(edges.begin(), edges.end(), [](const Edge &a, const Edge &b) {
        if (a.t != b.t)
            return a.t < b.t;
        return a.close && !b.close;
    });

    unsigned active[numPhases] = {};
    auto charge = [&](Tick b, Tick e) {
        if (b >= e)
            return;
        // phasePriority is the enum value, so the scan runs highest
        // priority first; uncovered segments fall through to Other.
        Phase winner = Phase::Other;
        for (int p = static_cast<int>(numPhases) - 1; p >= 0; --p) {
            if (active[p] != 0) {
                winner = static_cast<Phase>(p);
                break;
            }
        }
        out.perPhase[static_cast<unsigned>(winner)] += e - b;
    };

    Tick cursor = lo;
    for (const Edge &edge : edges) {
        charge(cursor, edge.t);
        cursor = std::max(cursor, edge.t);
        if (edge.close)
            --active[static_cast<unsigned>(edge.phase)];
        else
            ++active[static_cast<unsigned>(edge.phase)];
    }
    charge(cursor, hi);
    return out;
}

}  // namespace

RequestAttribution
attributeRequest(const Tracer &tracer, const SpanRecord &root)
{
    return attributeIndexed(indexByRequest(tracer), root);
}

AttributionReport
attribute(const Tracer &tracer, const char *root_name)
{
    // Pick the request population: named roots when present (serving
    // queries), otherwise every root (bare launchBatch harnesses).
    std::vector<const SpanRecord *> roots;
    bool named_only = false;
    for (const SpanRecord &s : tracer.spans()) {
        if (s.phase != Phase::Request)
            continue;
        bool named = root_name && !std::strcmp(s.name, root_name);
        if (named && !named_only) {
            named_only = true;
            roots.clear();
        }
        if (!named_only || named)
            roots.push_back(&s);
    }

    SpanIndex index = indexByRequest(tracer);
    std::vector<RequestAttribution> per_req;
    per_req.reserve(roots.size());
    for (const SpanRecord *root : roots)
        per_req.push_back(attributeIndexed(index, *root));

    AttributionReport report;
    report.requests = static_cast<unsigned>(per_req.size());
    if (per_req.empty())
        return report;

    double named_time = 0.0;
    for (unsigned p = 0; p < numPhases; ++p) {
        Phase phase = static_cast<Phase>(p);
        if (phase == Phase::Request)
            continue;
        std::vector<double> samples;
        samples.reserve(per_req.size());
        double total = 0.0;
        for (const RequestAttribution &r : per_req) {
            double us = ticksToUs(r.perPhase[p]);
            samples.push_back(us);
            total += us;
        }
        if (total == 0.0)
            continue;
        std::sort(samples.begin(), samples.end());
        auto pct = [&](double q) {
            auto idx = static_cast<std::size_t>(q * (samples.size() - 1));
            return samples[idx];
        };
        PhaseBreakdownRow row;
        row.phase = phase;
        row.totalUs = total;
        row.meanUs = total / static_cast<double>(per_req.size());
        row.p50Us = pct(0.50);
        row.p99Us = pct(0.99);
        report.rows.push_back(row);
        if (phase != Phase::Other)
            named_time += total;
    }

    for (const RequestAttribution &r : per_req)
        report.totalRequestUs += ticksToUs(r.e2e);
    report.meanRequestUs =
        report.totalRequestUs / static_cast<double>(per_req.size());
    for (PhaseBreakdownRow &row : report.rows) {
        row.fraction = report.totalRequestUs > 0.0
                           ? row.totalUs / report.totalRequestUs
                           : 0.0;
    }
    report.coverage = report.totalRequestUs > 0.0
                          ? named_time / report.totalRequestUs
                          : 0.0;
    // Deepest phases first: the table reads device-up like Fig 8.
    std::sort(report.rows.begin(), report.rows.end(),
              [](const PhaseBreakdownRow &a, const PhaseBreakdownRow &b) {
                  return phasePriority(a.phase) > phasePriority(b.phase);
              });
    return report;
}

void
AttributionReport::print(std::ostream &os) const
{
    auto fmt = [](double v, int prec) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
        return std::string(buf);
    };
    os << "== phase attribution: " << requests << " requests, mean e2e "
       << fmt(meanRequestUs, 1) << "us ==\n";
    os << "  " << std::left << std::setw(18) << "phase" << std::right
       << std::setw(12) << "mean-us" << std::setw(12) << "p50-us"
       << std::setw(12) << "p99-us" << std::setw(9) << "share" << "\n";
    for (const PhaseBreakdownRow &row : rows) {
        os << "  " << std::left << std::setw(18) << phaseName(row.phase)
           << std::right << std::setw(12) << fmt(row.meanUs, 1)
           << std::setw(12) << fmt(row.p50Us, 1) << std::setw(12)
           << fmt(row.p99Us, 1) << std::setw(8)
           << fmt(row.fraction * 100, 1) << "%\n";
    }
    os << "phase coverage: " << fmt(coverage * 100, 2)
       << "% of request time attributed to a named phase\n";
}

void
AttributionReport::writeJson(std::ostream &os) const
{
    os << "{\"requests\":" << requests << ",\"mean_request_us\":"
       << meanRequestUs << ",\"total_request_us\":" << totalRequestUs
       << ",\"coverage\":" << coverage << ",\"phases\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const PhaseBreakdownRow &row = rows[i];
        os << (i ? "," : "") << "\n{\"phase\":\""
           << jsonEscape(phaseName(row.phase)) << "\",\"mean_us\":"
           << row.meanUs << ",\"p50_us\":" << row.p50Us << ",\"p99_us\":"
           << row.p99Us << ",\"total_us\":" << row.totalUs
           << ",\"fraction\":" << row.fraction << "}";
    }
    os << "\n]}\n";
}

}  // namespace recssd
