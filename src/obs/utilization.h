/**
 * @file
 * Time-weighted resource utilization and queue-length timelines.
 *
 * Every contention point in the simulated machine is a queued server
 * (`SerialResource` / `PoolResource`): host cores, the PCIe link, the
 * NVMe controller, UNVMe io threads, flash channels and dies, the
 * firmware core the NDP SLS engine runs on. When a
 * `UtilizationCollector` is hooked into the event queue (the same
 * null-pointer rendezvous the tracer uses), each resource reports
 * every op's (arrival, service start, completion) triple, and the
 * collector folds it into fixed-width buckets on the fly:
 * per-bucket busy time, waiting time, in-system time (residency), and
 * arrival counts. From those, utilization and time-average queue
 * length timelines fall out per resource.
 *
 * Consistency invariant (Little's law, exact in ticks): for every
 * resource the bucketized residency integral must equal the directly
 * summed per-op residency — i.e. time-average L computed from the
 * timeline equals arrival rate x mean wait computed from op totals,
 * with zero rounding slack because both sides are tick integrals.
 * `auditLittlesLaw` asserts this; exports run it under RECSSD_AUDIT.
 *
 * Hot-path cost: collection off = one null check per acquire (the
 * default, so untouched runs stay byte-identical); collection on =
 * appending to per-resource accumulators, never reading the clock
 * beyond `EventQueue::now()`, so simulated timing is unperturbed.
 * `record` is header-inline because `SerialResource` (src/common,
 * below src/obs in the link graph) calls it directly.
 */

#ifndef RECSSD_OBS_UTILIZATION_H
#define RECSSD_OBS_UTILIZATION_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/event_queue.h"
#include "src/common/logging.h"
#include "src/common/types.h"

namespace recssd
{

class UtilizationCollector
{
  public:
    /** One fixed-width slice of a resource's history. */
    struct Bucket
    {
        Tick busy = 0;      ///< ticks a server spent serving
        Tick waiting = 0;   ///< op-ticks spent queued before service
        Tick inSystem = 0;  ///< op-ticks resident (waiting + served)
        std::uint64_t arrivals = 0;
    };

    /** Accumulated history of one named resource. */
    struct ResourceSeries
    {
        std::string name;
        unsigned servers = 1;
        std::uint64_t ops = 0;
        /** Direct per-op sums (the audit's reference values). */
        Tick busyTicks = 0;
        Tick waitTicks = 0;
        Tick residencyTicks = 0;
        /** Bucketized history; index i covers
         *  [i*bucketWidth, (i+1)*bucketWidth). */
        std::vector<Bucket> buckets;
    };

    /** @param bucket Timeline bucket width in ticks; must be > 0. */
    UtilizationCollector(EventQueue &eq, Tick bucket)
        : eq_(eq), bucket_(bucket)
    {
        recssd_assert(bucket > 0, "utilization bucket must be positive");
    }

    UtilizationCollector(const UtilizationCollector &) = delete;
    UtilizationCollector &operator=(const UtilizationCollector &) = delete;

    bool enabled() const { return enabled_; }

    /** Hook/unhook this collector into the event queue so every
     *  resource acquire reaches it. */
    void
    setEnabled(bool on)
    {
        enabled_ = on;
        eq_.setUtil(on ? this : nullptr);
    }

    /**
     * Report one op on `resource`: it arrived at `arrival`, started
     * service at `start` and completes at `end` (`end` may be in the
     * future — resources report at enqueue time). `servers` sizes the
     * resource's capacity for utilization math.
     */
    void
    record(const std::string &resource, Tick arrival, Tick start, Tick end,
           unsigned servers = 1)
    {
        recssd_assert(arrival <= start && start <= end,
                      "utilization op on '%s' runs backwards",
                      resource.c_str());
        ResourceSeries &rs = seriesFor(resource, servers);
        ++rs.ops;
        rs.busyTicks += end - start;
        rs.waitTicks += start - arrival;
        rs.residencyTicks += end - arrival;
        std::size_t first = static_cast<std::size_t>(arrival / bucket_);
        if (rs.buckets.size() <= first)
            rs.buckets.resize(first + 1);
        ++rs.buckets[first].arrivals;
        if (end <= arrival)
            return;
        std::size_t last = static_cast<std::size_t>((end - 1) / bucket_);
        if (rs.buckets.size() <= last)
            rs.buckets.resize(last + 1);
        for (std::size_t b = first; b <= last; ++b) {
            Tick b_lo = static_cast<Tick>(b) * bucket_;
            Tick b_hi = b_lo + bucket_;
            auto overlap = [&](Tick lo, Tick hi) -> Tick {
                Tick o_lo = lo > b_lo ? lo : b_lo;
                Tick o_hi = hi < b_hi ? hi : b_hi;
                return o_hi > o_lo ? o_hi - o_lo : 0;
            };
            Bucket &bucket = rs.buckets[b];
            bucket.busy += overlap(start, end);
            bucket.waiting += overlap(arrival, start);
            bucket.inSystem += overlap(arrival, end);
        }
    }

    Tick bucketWidth() const { return bucket_; }

    /** Resources in first-report order (fixed by the event schedule). */
    const std::vector<ResourceSeries> &resources() const { return series_; }

    /** Series for `name`, or nullptr (linear scan; test use). */
    const ResourceSeries *find(const std::string &name) const;

    /**
     * Assert the Little's-law consistency invariant for every
     * resource: the bucketized busy/waiting/residency integrals must
     * equal the directly summed per-op totals, exactly, in ticks.
     */
    void auditLittlesLaw() const;

    /**
     * Write utilization + queue-length timelines as one JSON object,
     * resources sorted by name (diffable run to run). `endTime` closes
     * the observation window for whole-run averages; under
     * RECSSD_AUDIT the Little's-law audit runs first.
     */
    void writeJson(std::ostream &os, Tick endTime) const;

  private:
    ResourceSeries &
    seriesFor(const std::string &name, unsigned servers)
    {
        // Point-lookup index only (determinism rule R3): exports walk
        // `series_` (or a name-sorted copy of it); the map is never
        // iterated, so hash order cannot reach any output.
        auto it = index_.find(name);
        if (it == index_.end()) {
            it = index_.emplace(name, series_.size()).first;
            ResourceSeries rs;
            rs.name = name;
            rs.servers = servers;
            series_.push_back(std::move(rs));
        }
        return series_[it->second];
    }

    EventQueue &eq_;
    Tick bucket_;
    bool enabled_ = false;
    std::vector<ResourceSeries> series_;
    std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace recssd

#endif  // RECSSD_OBS_UTILIZATION_H
