/**
 * @file
 * Embedding table descriptors and their on-SSD layout.
 *
 * Tables occupy slsTableAlign-aligned logical ranges so SLS request
 * ids can be folded into the SLBA (§4.3). The evaluation layout pins
 * one vector per 16KB flash page (§5); packed layouts are supported
 * for the microbenchmarks and tests.
 */

#ifndef RECSSD_EMBEDDING_EMBEDDING_TABLE_H
#define RECSSD_EMBEDDING_EMBEDDING_TABLE_H

#include <cstdint>

#include "src/common/types.h"

namespace recssd
{

class Ftl;

struct EmbeddingTableDesc
{
    /** Dense table identifier (drives synthetic values). */
    std::uint32_t id = 0;
    /** First logical page; slsTableAlign-aligned. */
    Lpn baseLpn = 0;
    /** Rows in the table. */
    std::uint64_t rows = 0;
    /**
     * Global row id of local row 0. Non-zero only for a shard-local
     * slice of a row-range-partitioned table (src/shard): the slice
     * addresses rows [0, rows) locally while its content — and any
     * host-side cache key — stays a function of the global row id, so
     * every shard layout produces bit-identical sums.
     */
    RowId rowBase = 0;
    /** Elements per embedding vector. */
    std::uint32_t dim = 0;
    /** Bytes per element (4 = fp32, 2/1 = quantized). */
    std::uint32_t attrBytes = 4;
    /** Vectors per flash page (1 in the paper's evaluation). */
    std::uint32_t rowsPerPage = 1;

    std::uint32_t vectorBytes() const { return dim * attrBytes; }

    /** Global row id of a (possibly shard-local) row. */
    RowId globalRow(RowId local) const { return rowBase + local; }

    /** Logical pages the table spans. */
    std::uint64_t
    pages() const
    {
        return (rows + rowsPerPage - 1) / rowsPerPage;
    }

    Lpn lpnOf(RowId row) const { return baseLpn + row / rowsPerPage; }

    std::uint32_t
    pageOffsetOf(RowId row) const
    {
        return static_cast<std::uint32_t>(row % rowsPerPage) * vectorBytes();
    }

    /** Logical bytes (useful vs. padded footprint differs when
     *  rowsPerPage leaves page tails unused). */
    std::uint64_t usefulBytes() const { return rows * vectorBytes(); }
};

/**
 * Bulk-load a table into the FTL: claims the physical region, installs
 * the identity mapping and registers the deterministic synthetic value
 * generator so reads return real bytes.
 */
void installTable(Ftl &ftl, const EmbeddingTableDesc &desc);

}  // namespace recssd

#endif  // RECSSD_EMBEDDING_EMBEDDING_TABLE_H
