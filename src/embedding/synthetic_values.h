/**
 * @file
 * Deterministic synthetic embedding values.
 *
 * Every backend — host DRAM, baseline SSD, NDP — must produce exactly
 * the same sums, so table content is a pure function of
 * (table id, row, element): a hash reduced to a small non-negative
 * integer. Integer-valued floats make fp32 accumulation exact and
 * order independent for the pooling factors the models use, which is
 * what lets the tests demand bit-identical results across backends.
 */

#ifndef RECSSD_EMBEDDING_SYNTHETIC_VALUES_H
#define RECSSD_EMBEDDING_SYNTHETIC_VALUES_H

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.h"
#include "src/flash/data_store.h"
#include "src/embedding/embedding_table.h"

namespace recssd
{

namespace synthetic
{

/** Value of one embedding element; integer in [0, 16). */
float value(std::uint32_t table_id, RowId row, std::uint32_t element);

/** Encode one full vector at the table's attribute size. */
void fillVector(const EmbeddingTableDesc &desc, RowId row,
                std::span<std::byte> out);

/** Decoded fp32 vector of a row. */
std::vector<float> vectorOf(const EmbeddingTableDesc &desc, RowId row);

/**
 * Exact expected SLS sum for a batch of index lists — the reference
 * the tests compare every backend against.
 */
std::vector<float>
expectedSls(const EmbeddingTableDesc &desc,
            const std::vector<std::vector<RowId>> &indices);

/**
 * DataStore generator serving the table's pages, honoring layout
 * (rowsPerPage) and arbitrary byte sub-ranges.
 */
DataStore::Generator makeGenerator(const EmbeddingTableDesc &desc);

/**
 * Deterministic content of one element after `version` committed
 * online updates of its row (version 0 = the pristine install). Like
 * `value`, results are small integer-valued floats, so attribute
 * encoding and fp32 accumulation stay exact and every layer — the
 * update stream producing the write payload, a DRAM replica applying
 * the same update, and a test predicting the post-update sum — derives
 * identical bytes independently.
 */
float updatedValue(std::uint32_t table_id, RowId row, std::uint32_t element,
                   std::uint64_t version);

/** Decoded fp32 vector of a (table-local) row after `version` updates. */
std::vector<float> updatedVector(const EmbeddingTableDesc &desc, RowId row,
                                 std::uint64_t version);

}  // namespace synthetic

}  // namespace recssd

#endif  // RECSSD_EMBEDDING_SYNTHETIC_VALUES_H
