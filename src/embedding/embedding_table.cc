#include "src/embedding/embedding_table.h"

#include "src/common/logging.h"
#include "src/embedding/synthetic_values.h"
#include "src/ftl/ftl.h"
#include "src/nvme/nvme_command.h"

namespace recssd
{

void
installTable(Ftl &ftl, const EmbeddingTableDesc &desc)
{
    recssd_assert(desc.baseLpn % slsTableAlign == 0,
                  "table base must be slsTableAlign-aligned");
    recssd_assert(desc.rows > 0 && desc.dim > 0, "empty table");
    recssd_assert(desc.rowsPerPage * desc.vectorBytes() <=
                      ftl.flash().params().pageSize,
                  "table layout exceeds the flash page");
    recssd_assert(desc.pages() <= slsTableAlign,
                  "table larger than its aligned slot");
    ftl.bulkInstall(desc.baseLpn, desc.pages(),
                    synthetic::makeGenerator(desc));
}

}  // namespace recssd
