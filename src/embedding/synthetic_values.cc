#include "src/embedding/synthetic_values.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/ndp/attr_codec.h"

namespace recssd
{

namespace synthetic
{

namespace
{

std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

}  // namespace

float
value(std::uint32_t table_id, RowId row, std::uint32_t element)
{
    std::uint64_t h = mix((std::uint64_t(table_id) << 48) ^ (row << 12) ^
                          element);
    return static_cast<float>(h & 0xF);
}

void
fillVector(const EmbeddingTableDesc &desc, RowId row,
           std::span<std::byte> out)
{
    recssd_assert(out.size() >= desc.vectorBytes(),
                  "output smaller than vector");
    for (std::uint32_t e = 0; e < desc.dim; ++e)
        encodeAttr(out, e, desc.attrBytes,
                   value(desc.id, desc.globalRow(row), e));
}

std::vector<float>
vectorOf(const EmbeddingTableDesc &desc, RowId row)
{
    std::vector<float> v(desc.dim);
    for (std::uint32_t e = 0; e < desc.dim; ++e)
        v[e] = value(desc.id, desc.globalRow(row), e);
    return v;
}

std::vector<float>
expectedSls(const EmbeddingTableDesc &desc,
            const std::vector<std::vector<RowId>> &indices)
{
    std::vector<float> out(indices.size() * desc.dim, 0.0f);
    for (std::size_t b = 0; b < indices.size(); ++b) {
        for (RowId row : indices[b]) {
            for (std::uint32_t e = 0; e < desc.dim; ++e)
                out[b * desc.dim + e] +=
                    value(desc.id, desc.globalRow(row), e);
        }
    }
    return out;
}

float
updatedValue(std::uint32_t table_id, RowId row, std::uint32_t element,
             std::uint64_t version)
{
    if (version == 0)
        return value(table_id, row, element);
    std::uint64_t h = mix((std::uint64_t(table_id) << 48) ^ (row << 12) ^
                          element ^ (version * 0x9e3779b97f4a7c15ull));
    return static_cast<float>(h & 0xF);
}

std::vector<float>
updatedVector(const EmbeddingTableDesc &desc, RowId row,
              std::uint64_t version)
{
    std::vector<float> v(desc.dim);
    for (std::uint32_t e = 0; e < desc.dim; ++e)
        v[e] = updatedValue(desc.id, desc.globalRow(row), e, version);
    return v;
}

DataStore::Generator
makeGenerator(const EmbeddingTableDesc &desc)
{
    // Copy the descriptor; the generator may outlive the caller's.
    EmbeddingTableDesc d = desc;
    return [d](std::uint64_t page_in_region, std::size_t offset,
               std::span<std::byte> out) {
        const std::uint32_t vec_bytes = d.vectorBytes();
        std::vector<std::byte> vec(vec_bytes);
        std::size_t end = offset + out.size();
        std::uint32_t first_slot =
            static_cast<std::uint32_t>(offset / vec_bytes);
        std::uint32_t last_slot =
            static_cast<std::uint32_t>((end + vec_bytes - 1) / vec_bytes);
        for (std::uint32_t slot = first_slot; slot < last_slot; ++slot) {
            RowId row = page_in_region * d.rowsPerPage + slot;
            std::size_t slot_begin = std::size_t(slot) * vec_bytes;
            if (slot >= d.rowsPerPage || row >= d.rows) {
                // Page tail padding / rows past the end: zero fill.
                std::size_t from = std::max(offset, slot_begin);
                std::size_t to = std::min(end, slot_begin + vec_bytes);
                if (to > from) {
                    std::fill(out.begin() + (from - offset),
                              out.begin() + (to - offset), std::byte{0});
                }
                continue;
            }
            fillVector(d, row, vec);
            std::size_t from = std::max(offset, slot_begin);
            std::size_t to = std::min(end, slot_begin + vec_bytes);
            std::memcpy(out.data() + (from - offset),
                        vec.data() + (from - slot_begin), to - from);
        }
    };
}

}  // namespace synthetic

}  // namespace recssd
