#include "src/embedding/baseline_backend.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/logging.h"
#include "src/embedding/synthetic_values.h"
#include "src/ndp/attr_codec.h"
#include "src/obs/tracer.h"

namespace recssd
{

struct BaselineSsdSlsBackend::OpState
{
    EmbeddingTableDesc table;
    std::uint64_t traceId = 0;
    /** One NVMe read each: a page and the lookups it serves. */
    struct PageTask
    {
        Lpn lpn;
        std::vector<std::pair<std::uint32_t, RowId>> entries;
    };
    std::vector<PageTask> pages;
    std::size_t next = 0;
    std::size_t inFlight = 0;
    bool hitWorkPending = false;
    bool completed = false;
    SlsResult result;
    Done done;

    void
    maybeComplete()
    {
        if (!completed && !hitWorkPending && inFlight == 0 &&
            next >= pages.size()) {
            completed = true;
            done(result);
        }
    }
};

BaselineSsdSlsBackend::BaselineSsdSlsBackend(EventQueue &eq, HostCpu &cpu,
                                             UnvmeDriver &driver,
                                             QueueAllocator &queues,
                                             Options options)
    : eq_(eq), cpu_(cpu), driver_(driver), queues_(queues), options_(options)
{
}

void
BaselineSsdSlsBackend::run(const SlsOp &op, Done done)
{
    recssd_assert(op.table != nullptr, "SLS op without table");
    auto state = std::make_shared<OpState>();
    state->table = *op.table;
    state->traceId = op.traceId;
    state->result.assign(op.batch() * op.table->dim, 0.0f);
    state->done = std::move(done);

    const EmbeddingTableDesc &table = state->table;
    std::unordered_map<Lpn, std::size_t> page_index;
    std::uint64_t cache_hits = 0;

    for (std::uint32_t b = 0; b < op.indices.size(); ++b) {
        for (RowId row : op.indices[b]) {
            if (options_.hostCache) {
                // The cache is shared across shard slices of the same
                // table, so entries are keyed by global row id.
                if (const auto *vec = options_.hostCache->get(
                        table.id, table.globalRow(row))) {
                    cacheServed_.inc();
                    ++cache_hits;
                    float *res = state->result.data() +
                                 std::size_t(b) * table.dim;
                    for (std::uint32_t e = 0; e < table.dim; ++e)
                        res[e] += (*vec)[e];
                    continue;
                }
                // A real (sequential) operator would have this row
                // cached by the time a later lookup reaches it: the
                // fetch below populates the cache mid-operation. Fill
                // the entry now so intra-op reuse hits, exactly as it
                // would at processing time.
                options_.hostCache->put(table.id, table.globalRow(row),
                                        synthetic::vectorOf(table, row));
            }
            Lpn lpn = table.lpnOf(row);
            if (options_.coalescePages) {
                auto [it, fresh] =
                    page_index.try_emplace(lpn, state->pages.size());
                if (fresh)
                    state->pages.push_back(OpState::PageTask{lpn, {}});
                state->pages[it->second].entries.emplace_back(b, row);
            } else {
                state->pages.push_back(
                    OpState::PageTask{lpn, {{b, row}}});
            }
        }
    }

    // The cache-served lookups are ordinary DRAM gathers on the
    // operator's thread.
    if (cache_hits > 0) {
        state->hitWorkPending = true;
        SpanId hit_span = invalidSpan;
        if (Tracer *tracer = tracerOf(eq_)) {
            hit_span = tracer->begin(tracer->track("host.sls"),
                                     "cache_gather", Phase::HostCompute,
                                     state->traceId);
        }
        cpu_.run(cpu_.dramLookupCost(table.vectorBytes()) * cache_hits,
                 [this, state, hit_span]() {
                     if (Tracer *tracer = tracerOf(eq_))
                         tracer->end(hit_span);
                     state->hitWorkPending = false;
                     state->maybeComplete();
                 });
    }

    if (state->pages.empty()) {
        if (cache_hits == 0) {
            // Fully degenerate op (empty lists): complete next tick.
            eq_.scheduleAfter(1 * nsec, [state]() { state->maybeComplete(); });
        }
        return;
    }

    // Worker chains matched to I/O queues (§4.2). Each chain owns a
    // queue and drains this operation's page list in order, so
    // concurrent operations complete in submission order rather than
    // fair-sharing — which is what lets the inference pipeline
    // overlap a finished sub-batch's MLP with the next one's I/O.
    unsigned workers = options_.maxWorkers ? options_.maxWorkers
                                           : driver_.numQueues();
    workers = std::max(1u, workers);
    unsigned chains = static_cast<unsigned>(
        std::min<std::size_t>(workers, state->pages.size()));
    for (unsigned w = 0; w < chains; ++w) {
        SpanId wait_span = invalidSpan;
        if (Tracer *tracer = tracerOf(eq_)) {
            wait_span = tracer->begin(tracer->track("host.sls"),
                                      "queue_wait", Phase::HostQueueWait,
                                      state->traceId);
        }
        queues_.acquire([this, state, wait_span](unsigned q) {
            if (Tracer *tracer = tracerOf(eq_))
                tracer->end(wait_span);
            pump(state, q);
        });
    }
}

void
BaselineSsdSlsBackend::pump(const std::shared_ptr<OpState> &state,
                            unsigned q)
{
    if (state->next >= state->pages.size()) {
        // This chain is done; hand the queue to the next waiter.
        queues_.release(q);
        state->maybeComplete();
        return;
    }
    std::size_t task_idx = state->next++;
    ++state->inFlight;

    pageReads_.inc();
    const auto &task = state->pages[task_idx];
    driver_.readPage(
        q, task.lpn,
        [this, state, task_idx, q](const PageView &view) {
        const EmbeddingTableDesc &table = state->table;
        const auto &task = state->pages[task_idx];
        // Pull every needed vector out of the DMA buffer now; the
        // extract+accumulate cost is charged per vector.
        std::vector<std::vector<float>> vecs;
        vecs.reserve(task.entries.size());
        std::vector<std::byte> raw(table.vectorBytes());
        for (auto [b, row] : task.entries) {
            (void)b;
            view.copyOut(table.pageOffsetOf(row), raw);
            std::vector<float> vec(table.dim);
            for (std::uint32_t e = 0; e < table.dim; ++e)
                vec[e] = decodeAttr(raw, e, table.attrBytes);
            vecs.push_back(std::move(vec));
        }
        // Extraction runs on the SLS worker thread that owns this
        // queue, not on the NN cores.
        Tick work =
            cpu_.extractCost(table.vectorBytes()) * task.entries.size();
        SpanId extract_span = invalidSpan;
        if (Tracer *tracer = tracerOf(eq_)) {
            extract_span = tracer->begin(tracer->track("host.sls"),
                                         "extract", Phase::HostCompute,
                                         state->traceId);
        }
        driver_.ioThread(q).acquire(work, [this, state, task_idx, q,
                                           extract_span,
                                           vecs = std::move(vecs)]() {
            if (Tracer *tracer = tracerOf(eq_))
                tracer->end(extract_span);
            const EmbeddingTableDesc &table = state->table;
            const auto &task = state->pages[task_idx];
            for (std::size_t i = 0; i < task.entries.size(); ++i) {
                auto [b, row] = task.entries[i];
                float *res = state->result.data() +
                             std::size_t(b) * table.dim;
                for (std::uint32_t e = 0; e < table.dim; ++e)
                    res[e] += vecs[i][e];
                // (The host cache entry was populated when the fetch
                // was scheduled; see run().)
            }
            recssd_assert(state->inFlight > 0, "in-flight underflow");
            --state->inFlight;
            pump(state, q);
        });
        },
        state->traceId);
}

}  // namespace recssd
