/**
 * @file
 * The SparseLengthsSum operator abstraction.
 *
 * One `SlsOp` gathers and sum-pools embedding vectors from a single
 * table for a batch of requests — the Caffe2 operator the paper
 * offloads. Three interchangeable backends implement it:
 *
 *  - `DramSlsBackend`: tables resident in host DRAM (the paper's
 *    DRAM baseline, Caffe2-style).
 *  - `BaselineSsdSlsBackend`: tables on the SSD behind conventional
 *    NVMe page reads, optionally with the host LRU software cache.
 *  - `NdpSlsBackend`: RecSSD — the whole gather/reduce offloaded to
 *    the FTL, optionally post-processed against a static host
 *    partition.
 *
 * Backends are asynchronous: latency is simulated, results are real.
 */

#ifndef RECSSD_EMBEDDING_SLS_BACKEND_H
#define RECSSD_EMBEDDING_SLS_BACKEND_H

#include <functional>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/embedding/embedding_table.h"

namespace recssd
{

/** One pooled-embedding operation on one table. */
struct SlsOp
{
    const EmbeddingTableDesc *table = nullptr;
    /** indices[b] = rows summed into result b. */
    std::vector<std::vector<RowId>> indices;
    /** Observability: owning trace request id (0 = untraced). */
    std::uint64_t traceId = 0;

    std::size_t batch() const { return indices.size(); }

    std::size_t
    totalLookups() const
    {
        std::size_t n = 0;
        for (const auto &list : indices)
            n += list.size();
        return n;
    }
};

/** batch x dim pooled results, row-major. */
using SlsResult = std::vector<float>;

class SlsBackend
{
  public:
    using Done = std::function<void(SlsResult)>;

    virtual ~SlsBackend() = default;

    /**
     * Launch the operation; `done` fires (on the event queue) when
     * the pooled result is available to the host. Multiple operations
     * may be in flight concurrently; backends contend for the shared
     * host cores, driver queues and the device.
     */
    virtual void run(const SlsOp &op, Done done) = 0;

    /** Human-readable backend name for reports. */
    virtual std::string name() const = 0;
};

}  // namespace recssd

#endif  // RECSSD_EMBEDDING_SLS_BACKEND_H
