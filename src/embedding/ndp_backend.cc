#include "src/embedding/ndp_backend.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "src/common/logging.h"
#include "src/ndp/sls_config.h"
#include "src/obs/tracer.h"

namespace recssd
{

namespace
{

struct NdpOpState
{
    EmbeddingTableDesc table;
    std::uint64_t traceId = 0;
    SlsConfig config;
    /** Hot contributions: (result index, resident vector). */
    std::vector<std::pair<std::uint32_t, const std::vector<float> *>> hot;
    SlsResult result;
    SlsBackend::Done done;
};

}  // namespace

NdpSlsBackend::NdpSlsBackend(EventQueue &eq, HostCpu &cpu,
                             UnvmeDriver &driver, QueueAllocator &queues,
                             Options options)
    : eq_(eq), cpu_(cpu), driver_(driver), queues_(queues), options_(options)
{
}

void
NdpSlsBackend::run(const SlsOp &op, Done done)
{
    recssd_assert(op.table != nullptr, "SLS op without table");
    ops_.inc();
    auto state = std::make_shared<NdpOpState>();
    state->table = *op.table;
    state->traceId = op.traceId;
    state->result.assign(op.batch() * op.table->dim, 0.0f);
    state->done = std::move(done);

    SlsConfig &cfg = state->config;
    cfg.featureDim = op.table->dim;
    cfg.attrBytes = op.table->attrBytes;
    cfg.rowsPerPage = op.table->rowsPerPage;
    cfg.numResults = static_cast<std::uint32_t>(op.batch());

    for (std::uint32_t b = 0; b < op.indices.size(); ++b) {
        for (RowId row : op.indices[b]) {
            if (options_.partition) {
                // Partition entries are keyed by global row id so one
                // profile serves every shard slice of the table.
                if (const auto *vec = options_.partition->lookup(
                        state->table.id, state->table.globalRow(row))) {
                    hotLookups_.inc();
                    state->hot.emplace_back(b, vec);
                    continue;
                }
            }
            coldLookups_.inc();
            cfg.pairs.push_back(
                SlsPair{static_cast<std::uint32_t>(row), b});
        }
    }
    // The interface requires the list sorted by input id so the device
    // can group by page in one scan (§4.3).
    std::stable_sort(cfg.pairs.begin(), cfg.pairs.end(),
                     [](const SlsPair &a, const SlsPair &b) {
                         return a.inputId < b.inputId;
                     });

    auto finish = [this, state]() {
        // Merge the hot (host-resident) contributions into the
        // returned partial sums.
        const std::uint32_t dim = state->table.dim;
        Tick merge = cpu_.params().extractBase;
        for (auto &[b, vec] : state->hot) {
            float *res = state->result.data() + std::size_t(b) * dim;
            for (std::uint32_t e = 0; e < dim; ++e)
                res[e] += (*vec)[e];
            merge += cpu_.dramLookupCost(state->table.vectorBytes());
        }
        SpanId merge_span = invalidSpan;
        if (Tracer *tracer = tracerOf(eq_)) {
            merge_span = tracer->begin(tracer->track("host.sls"), "merge",
                                       Phase::HostCompute, state->traceId);
        }
        cpu_.run(merge, [this, state, merge_span]() {
            if (Tracer *tracer = tracerOf(eq_))
                tracer->end(merge_span);
            state->done(state->result);
        });
    };

    if (cfg.pairs.empty()) {
        // Everything was host resident; no device round trip at all.
        finish();
        return;
    }

    SpanId wait_span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        wait_span = tracer->begin(tracer->track("host.sls"), "queue_wait",
                                  Phase::HostQueueWait, state->traceId);
    }
    queues_.acquire([this, state, finish, wait_span](unsigned q) {
        if (Tracer *tracer = tracerOf(eq_))
            tracer->end(wait_span);
        std::uint64_t req = driver_.allocRequestId();
        Lpn base = state->table.baseLpn;
        driver_.slsConfigWrite(
            q, base, req, state->config,
            [this, state, q, base, req, finish]() {
                driver_.slsResultRead(
                    q, base, req,
                    [this, state, q, finish](
                        std::shared_ptr<std::vector<std::byte>> bytes) {
                        queues_.release(q);
                        // Unpack the device's partial sums.
                        std::size_t raw =
                            state->result.size() * sizeof(float);
                        recssd_assert(bytes->size() >= raw,
                                      "short SLS result payload");
                        std::memcpy(state->result.data(), bytes->data(),
                                    raw);
                        finish();
                    },
                    state->traceId);
            },
            state->traceId);
    });
}

}  // namespace recssd
