/**
 * @file
 * Host-DRAM SLS backend: the paper's DRAM baseline.
 *
 * Models an optimized Caffe2 SparseLengthsSum (vectorized gather +
 * accumulate with software prefetch) running on one host core: a
 * fixed per-op setup cost plus a per-lookup random-access cost.
 */

#ifndef RECSSD_EMBEDDING_DRAM_BACKEND_H
#define RECSSD_EMBEDDING_DRAM_BACKEND_H

#include "src/common/event_queue.h"
#include "src/embedding/sls_backend.h"
#include "src/host/host_cpu.h"

namespace recssd
{

class DramSlsBackend : public SlsBackend
{
  public:
    DramSlsBackend(EventQueue &eq, HostCpu &cpu);

    void run(const SlsOp &op, Done done) override;
    std::string name() const override { return "dram"; }

    /** Fixed per-operator dispatch overhead. */
    static constexpr Tick opOverhead = 3 * usec;

  private:
    EventQueue &eq_;
    HostCpu &cpu_;
};

}  // namespace recssd

#endif  // RECSSD_EMBEDDING_DRAM_BACKEND_H
