/**
 * @file
 * Host-DRAM SLS backend: the paper's DRAM baseline.
 *
 * Models an optimized Caffe2 SparseLengthsSum (vectorized gather +
 * accumulate with software prefetch) running on one host core: a
 * fixed per-op setup cost plus a per-lookup random-access cost.
 */

#ifndef RECSSD_EMBEDDING_DRAM_BACKEND_H
#define RECSSD_EMBEDDING_DRAM_BACKEND_H

#include <map>
#include <span>
#include <utility>
#include <vector>

#include "src/common/event_queue.h"
#include "src/embedding/sls_backend.h"
#include "src/host/host_cpu.h"

namespace recssd
{

class DramSlsBackend : public SlsBackend
{
  public:
    DramSlsBackend(EventQueue &eq, HostCpu &cpu);

    void run(const SlsOp &op, Done done) override;
    std::string name() const override { return "dram"; }

    /**
     * Reflect a committed online row update in the DRAM copy of the
     * table: subsequent gathers of `row` (global id) read `values`
     * instead of the pristine synthetic content. The result stays
     * bit-identical to what the SSD backends serve after the same
     * update as long as the values are exactly representable at the
     * table's attribute encoding (integer-valued floats, as
     * `synthetic::updatedVector` produces).
     */
    void applyUpdate(const EmbeddingTableDesc &table, RowId row,
                     std::span<const float> values);

    /** Fixed per-operator dispatch overhead. */
    static constexpr Tick opOverhead = 3 * usec;

  private:
    EventQueue &eq_;
    HostCpu &cpu_;
    /** (table id, global row) -> replacement vector. Empty in update-
     *  free runs, which keep the pristine expectedSls fast path. */
    std::map<std::pair<std::uint32_t, RowId>, std::vector<float>>
        overrides_;
};

}  // namespace recssd

#endif  // RECSSD_EMBEDDING_DRAM_BACKEND_H
