#include "src/embedding/dram_backend.h"

#include "src/common/logging.h"
#include "src/embedding/synthetic_values.h"
#include "src/obs/tracer.h"

namespace recssd
{

DramSlsBackend::DramSlsBackend(EventQueue &eq, HostCpu &cpu)
    : eq_(eq), cpu_(cpu)
{
}

void
DramSlsBackend::applyUpdate(const EmbeddingTableDesc &table, RowId row,
                            std::span<const float> values)
{
    recssd_assert(values.size() == table.dim,
                  "value width does not match the table");
    overrides_[{table.id, table.globalRow(row)}] =
        std::vector<float>(values.begin(), values.end());
}

void
DramSlsBackend::run(const SlsOp &op, Done done)
{
    const EmbeddingTableDesc &table = *op.table;
    Tick work = opOverhead + cpu_.dramLookupCost(table.vectorBytes()) *
                                 op.totalLookups();
    // Functional result computed up front; only its availability is
    // delayed by the simulated gather time.
    SlsResult result;
    if (overrides_.empty()) {
        result = synthetic::expectedSls(table, op.indices);
    } else {
        result.assign(op.indices.size() * table.dim, 0.0f);
        for (std::size_t b = 0; b < op.indices.size(); ++b) {
            for (RowId row : op.indices[b]) {
                auto it =
                    overrides_.find({table.id, table.globalRow(row)});
                for (std::uint32_t e = 0; e < table.dim; ++e) {
                    result[b * table.dim + e] +=
                        it != overrides_.end()
                            ? it->second[e]
                            : synthetic::value(table.id,
                                               table.globalRow(row), e);
                }
            }
        }
    }
    SpanId span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        span = tracer->begin(tracer->track("host.sls"), "dram_gather",
                             Phase::HostCompute, op.traceId);
    }
    cpu_.run(work, [this, span, result = std::move(result),
                    done = std::move(done)]() mutable {
        if (Tracer *tracer = tracerOf(eq_))
            tracer->end(span);
        done(std::move(result));
    });
}

}  // namespace recssd
