#include "src/embedding/dram_backend.h"

#include "src/embedding/synthetic_values.h"

namespace recssd
{

DramSlsBackend::DramSlsBackend(EventQueue &eq, HostCpu &cpu)
    : eq_(eq), cpu_(cpu)
{
}

void
DramSlsBackend::run(const SlsOp &op, Done done)
{
    const EmbeddingTableDesc &table = *op.table;
    Tick work = opOverhead + cpu_.dramLookupCost(table.vectorBytes()) *
                                 op.totalLookups();
    // Functional result computed up front; only its availability is
    // delayed by the simulated gather time.
    SlsResult result = synthetic::expectedSls(table, op.indices);
    cpu_.run(work, [result = std::move(result),
                    done = std::move(done)]() mutable {
        done(std::move(result));
    });
}

}  // namespace recssd
