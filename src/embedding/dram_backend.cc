#include "src/embedding/dram_backend.h"

#include "src/embedding/synthetic_values.h"
#include "src/obs/tracer.h"

namespace recssd
{

DramSlsBackend::DramSlsBackend(EventQueue &eq, HostCpu &cpu)
    : eq_(eq), cpu_(cpu)
{
}

void
DramSlsBackend::run(const SlsOp &op, Done done)
{
    const EmbeddingTableDesc &table = *op.table;
    Tick work = opOverhead + cpu_.dramLookupCost(table.vectorBytes()) *
                                 op.totalLookups();
    // Functional result computed up front; only its availability is
    // delayed by the simulated gather time.
    SlsResult result = synthetic::expectedSls(table, op.indices);
    SpanId span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        span = tracer->begin(tracer->track("host.sls"), "dram_gather",
                             Phase::HostCompute, op.traceId);
    }
    cpu_.run(work, [this, span, result = std::move(result),
                    done = std::move(done)]() mutable {
        if (Tracer *tracer = tracerOf(eq_))
            tracer->end(span);
        done(std::move(result));
    });
}

}  // namespace recssd
