/**
 * @file
 * Conventional-SSD SLS backend (the paper's baseline).
 *
 * Embedding tables live on the SSD behind the standard NVMe block
 * interface. The host operator walks the batch's lookups, serves what
 * it can from the optional fully associative host LRU cache, groups
 * the remaining lookups by logical page (a 16KB page holding several
 * vectors is fetched once and all its vectors extracted — the
 * streaming behaviour §6.1 describes for sequential inputs), and
 * issues one NVMe read per distinct page from worker chains matched
 * to the driver I/O queues (§4.2). Extraction and accumulation burn
 * host CPU.
 */

#ifndef RECSSD_EMBEDDING_BASELINE_BACKEND_H
#define RECSSD_EMBEDDING_BASELINE_BACKEND_H

#include <memory>

#include "src/cache/host_embedding_cache.h"
#include "src/common/event_queue.h"
#include "src/common/stats.h"
#include "src/embedding/sls_backend.h"
#include "src/host/host_cpu.h"
#include "src/host/queue_allocator.h"
#include "src/host/unvme_driver.h"

namespace recssd
{

class BaselineSsdSlsBackend : public SlsBackend
{
  public:
    struct Options
    {
        /** Host LRU embedding cache; nullptr disables caching. */
        HostEmbeddingCache *hostCache = nullptr;
        /** Concurrent worker chains; 0 = one per I/O queue. */
        unsigned maxWorkers = 0;
        /**
         * Fetch each distinct page once per operation (default). The
         * false setting issues one read per lookup — an ablation of
         * the naive operator.
         */
        bool coalescePages = true;
    };

    BaselineSsdSlsBackend(EventQueue &eq, HostCpu &cpu, UnvmeDriver &driver,
                          QueueAllocator &queues, Options options);

    void run(const SlsOp &op, Done done) override;
    std::string name() const override { return "ssd-base"; }

    std::uint64_t pageReadsIssued() const { return pageReads_.value(); }
    std::uint64_t cacheServed() const { return cacheServed_.value(); }

  private:
    struct OpState;

    /** Advance one worker chain: fetch + process the next page. */
    void pump(const std::shared_ptr<OpState> &state, unsigned q);

    EventQueue &eq_;
    HostCpu &cpu_;
    UnvmeDriver &driver_;
    QueueAllocator &queues_;
    Options options_;

    Counter pageReads_;
    Counter cacheServed_;
};

}  // namespace recssd

#endif  // RECSSD_EMBEDDING_BASELINE_BACKEND_H
