/**
 * @file
 * RecSSD NDP SLS backend.
 *
 * The entire gather/reduce is offloaded: the host builds a sorted
 * (input id, result id) pair list, ships it with one config-write
 * command, and collects the accumulated result pages with one
 * result-read command. With static partitioning enabled, rows
 * resident in host DRAM are peeled off the pair list and merged into
 * the device's partial sums afterwards (§4.2).
 */

#ifndef RECSSD_EMBEDDING_NDP_BACKEND_H
#define RECSSD_EMBEDDING_NDP_BACKEND_H

#include "src/cache/static_partition.h"
#include "src/common/event_queue.h"
#include "src/common/stats.h"
#include "src/embedding/sls_backend.h"
#include "src/host/host_cpu.h"
#include "src/host/queue_allocator.h"
#include "src/host/unvme_driver.h"

namespace recssd
{

class NdpSlsBackend : public SlsBackend
{
  public:
    struct Options
    {
        /** Hot rows resident in host DRAM; nullptr disables. */
        StaticPartition *partition = nullptr;
    };

    NdpSlsBackend(EventQueue &eq, HostCpu &cpu, UnvmeDriver &driver,
                  QueueAllocator &queues, Options options);

    void run(const SlsOp &op, Done done) override;
    std::string name() const override { return "recssd-ndp"; }

    std::uint64_t opsIssued() const { return ops_.value(); }
    std::uint64_t hotLookups() const { return hotLookups_.value(); }
    std::uint64_t coldLookups() const { return coldLookups_.value(); }

  private:
    EventQueue &eq_;
    HostCpu &cpu_;
    UnvmeDriver &driver_;
    QueueAllocator &queues_;
    Options options_;

    Counter ops_;
    Counter hotLookups_;
    Counter coldLookups_;
};

}  // namespace recssd

#endif  // RECSSD_EMBEDDING_NDP_BACKEND_H
