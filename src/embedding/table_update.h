/**
 * @file
 * Online embedding-table updates over the standard block interface.
 *
 * Production recommendation models are retrained and their embedding
 * tables refreshed while serving. RecSSD needs no special support —
 * updates are ordinary NVMe writes — but the host must read-modify-
 * write the 16KB page and the device must keep its SLS embedding
 * cache coherent (the engine invalidates on every host write).
 * This helper performs one timed, functional row update.
 */

#ifndef RECSSD_EMBEDDING_TABLE_UPDATE_H
#define RECSSD_EMBEDDING_TABLE_UPDATE_H

#include <cstdint>
#include <functional>
#include <span>

#include "src/embedding/embedding_table.h"
#include "src/host/queue_allocator.h"
#include "src/host/unvme_driver.h"

namespace recssd
{

/**
 * Overwrite one row's vector in place.
 *
 * Packed layouts read the page first (RMW); the one-vector-per-page
 * layout writes directly. The new value is visible to every backend
 * on completion.
 *
 * The update competes for NVMe queues like any other host traffic: it
 * acquires a queue grant from `queues` (waiting behind serve traffic
 * when all queues are busy, with a `queue_wait` trace span), holds the
 * queue for the whole RMW so the per-queue depth gauges and
 * utilization timelines see the write, and releases it on completion.
 *
 * @param values New fp32 element values (encoded at the table's
 *        attribute size).
 * @param trace_id Owning trace request (0 = none); tags every span the
 *        update produces down the stack.
 */
void updateRow(UnvmeDriver &driver, QueueAllocator &queues,
               const EmbeddingTableDesc &table, RowId row,
               std::span<const float> values, std::function<void()> done,
               std::uint64_t trace_id = 0);

}  // namespace recssd

#endif  // RECSSD_EMBEDDING_TABLE_UPDATE_H
