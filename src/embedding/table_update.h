/**
 * @file
 * Online embedding-table updates over the standard block interface.
 *
 * Production recommendation models are retrained and their embedding
 * tables refreshed while serving. RecSSD needs no special support —
 * updates are ordinary NVMe writes — but the host must read-modify-
 * write the 16KB page and the device must keep its SLS embedding
 * cache coherent (the engine invalidates on every host write).
 * This helper performs one timed, functional row update.
 */

#ifndef RECSSD_EMBEDDING_TABLE_UPDATE_H
#define RECSSD_EMBEDDING_TABLE_UPDATE_H

#include <functional>
#include <span>

#include "src/embedding/embedding_table.h"
#include "src/host/unvme_driver.h"

namespace recssd
{

/**
 * Overwrite one row's vector in place.
 *
 * Packed layouts read the page first (RMW); the one-vector-per-page
 * layout writes directly. The new value is visible to every backend
 * on completion.
 *
 * @param queue Driver I/O queue to use (held for the whole update).
 * @param values New fp32 element values (encoded at the table's
 *        attribute size).
 */
void updateRow(UnvmeDriver &driver, unsigned queue,
               const EmbeddingTableDesc &table, RowId row,
               std::span<const float> values, std::function<void()> done);

}  // namespace recssd

#endif  // RECSSD_EMBEDDING_TABLE_UPDATE_H
