#include "src/embedding/table_update.h"

#include <memory>
#include <vector>

#include "src/common/analysis.h"
#include "src/common/logging.h"
#include "src/ndp/attr_codec.h"
#include "src/obs/tracer.h"

namespace recssd
{

namespace
{

void
patchSlot(std::vector<std::byte> &page, const EmbeddingTableDesc &table,
          RowId row, std::span<const float> values)
{
    std::span<std::byte> slot(page.data() + table.pageOffsetOf(row),
                              table.vectorBytes());
    for (std::uint32_t e = 0; e < table.dim; ++e)
        encodeAttr(slot, e, table.attrBytes, values[e]);
}

}  // namespace

void
updateRow(UnvmeDriver &driver, QueueAllocator &queues,
          const EmbeddingTableDesc &table, RowId row,
          std::span<const float> values, std::function<void()> done,
          std::uint64_t trace_id)
{
    recssd_assert(row < table.rows, "row out of range");
    recssd_assert(values.size() == table.dim,
                  "value width does not match the table");
    Lpn lpn = table.lpnOf(row);
    auto desc = table;
    auto vals = std::vector<float>(values.begin(), values.end());

    EventQueue &eq = driver.eventQueue();
    SpanId wait_span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq)) {
        wait_span = tracer->begin(tracer->track("host.update"), "queue_wait",
                                  Phase::HostQueueWait, trace_id);
    }
    queues.acquire([&driver, &queues, &eq, desc, row, lpn, wait_span,
                    trace_id, vals = std::move(vals),
                    done = std::move(done)](unsigned queue) mutable {
        RECSSD_CAPTURES_MAPPING("driver/queues/eq are the caller's "
                                "long-lived host objects; applyUpdate's "
                                "contract requires them to outlive the "
                                "update completion");
        if (Tracer *tracer = tracerOf(eq))
            tracer->end(wait_span);
        auto finish = [&queues, queue, done = std::move(done)]() {
            queues.release(queue);
            if (done)
                done();
        };

        if (desc.rowsPerPage == 1) {
            // The row owns the page: write directly.
            auto page = std::make_shared<std::vector<std::byte>>(
                driver.pageSize(), std::byte{0});
            patchSlot(*page, desc, row, vals);
            driver.writePage(queue, lpn, page, std::move(finish), trace_id);
            return;
        }

        // Packed layout: read-modify-write the shared page, holding the
        // queue across both commands so nothing interleaves on it.
        driver.readPage(
            queue, lpn,
            [&driver, queue, desc, row, lpn, trace_id,
             vals = std::move(vals),
             finish = std::move(finish)](const PageView &view) mutable {
                RECSSD_CAPTURES_MAPPING("driver outlives the held queue "
                                        "slot; released only via finish");
                auto page = std::make_shared<std::vector<std::byte>>(
                    driver.pageSize());
                view.copyOut(0, *page);
                patchSlot(*page, desc, row, vals);
                driver.writePage(queue, lpn, page, std::move(finish),
                                 trace_id);
            },
            trace_id);
    });
}

}  // namespace recssd
