#include "src/embedding/table_update.h"

#include <memory>
#include <vector>

#include "src/common/logging.h"
#include "src/ndp/attr_codec.h"

namespace recssd
{

namespace
{

void
patchSlot(std::vector<std::byte> &page, const EmbeddingTableDesc &table,
          RowId row, std::span<const float> values)
{
    std::span<std::byte> slot(page.data() + table.pageOffsetOf(row),
                              table.vectorBytes());
    for (std::uint32_t e = 0; e < table.dim; ++e)
        encodeAttr(slot, e, table.attrBytes, values[e]);
}

}  // namespace

void
updateRow(UnvmeDriver &driver, unsigned queue,
          const EmbeddingTableDesc &table, RowId row,
          std::span<const float> values, std::function<void()> done)
{
    recssd_assert(row < table.rows, "row out of range");
    recssd_assert(values.size() == table.dim,
                  "value width does not match the table");
    Lpn lpn = table.lpnOf(row);

    if (table.rowsPerPage == 1) {
        // The row owns the page: write directly.
        auto page = std::make_shared<std::vector<std::byte>>(
            driver.pageSize(), std::byte{0});
        patchSlot(*page, table, row, values);
        driver.writePage(queue, lpn, page, std::move(done));
        return;
    }

    // Packed layout: read-modify-write the shared page.
    auto desc = table;
    auto vals = std::vector<float>(values.begin(), values.end());
    driver.readPage(queue, lpn, [&driver, queue, desc, row, lpn,
                                 vals = std::move(vals),
                                 done = std::move(done)](
                                    const PageView &view) mutable {
        auto page = std::make_shared<std::vector<std::byte>>(
            driver.pageSize());
        view.copyOut(0, *page);
        patchSlot(*page, desc, row, vals);
        driver.writePage(queue, lpn, page, std::move(done));
    });
}

}  // namespace recssd
