/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single `EventQueue` drives a whole simulated machine (host CPU,
 * PCIe, SSD firmware, flash channels). Components schedule callbacks
 * at absolute or relative ticks; events scheduled for the same tick
 * fire in FIFO order, which keeps the simulation deterministic.
 */

#ifndef RECSSD_COMMON_EVENT_QUEUE_H
#define RECSSD_COMMON_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/analysis.h"
#include "src/common/types.h"

namespace recssd
{

class Tracer;                // src/obs — attached here so every layer
class UtilizationCollector;  // can reach them without new plumbing

/** Priority queue of timed callbacks; the heart of the simulator. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick (>= now).
     *
     * The callback is a *deferred body* under the deferred-state
     * protocol (DESIGN.md): its captures are issue-time snapshots, so
     * mapping-derived state must be re-validated inside before use
     * and reference captures need an ownership annotation.
     */
    void schedule(Tick when, Callback cb) RECSSD_DEFERS_CALLBACK
        RECSSD_EXCLUDES(mu_);

    /** Schedule a callback `delay` ticks from now. */
    void scheduleAfter(Tick delay, Callback cb) RECSSD_DEFERS_CALLBACK
        RECSSD_EXCLUDES(mu_)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** True when no events remain. */
    bool empty() const RECSSD_EXCLUDES(mu_)
    {
        SimLockGuard hold(mu_);
        return events_.empty();
    }

    /** Number of pending events. */
    std::size_t pending() const RECSSD_EXCLUDES(mu_)
    {
        SimLockGuard hold(mu_);
        return events_.size();
    }

    /**
     * Execute the next event, advancing time to its tick.
     * @retval false if the queue was empty.
     */
    bool runOne();

    /** Run until the queue drains. @return final simulated time. */
    Tick run();

    /**
     * Run events with tick <= limit; time ends at min(limit, drain).
     * Events scheduled beyond the limit stay queued.
     */
    Tick runUntil(Tick limit);

    /** Total number of events ever executed. */
    std::uint64_t executed() const { return executed_; }

    /** @{ Observability hook. Every component holds an EventQueue
     *  reference, so the queue doubles as the rendezvous point for the
     *  span tracer: null (the default) means tracing is off and
     *  instrumentation points cost one pointer check. */
    Tracer *tracer() const { return tracer_; }
    void setTracer(Tracer *tracer) { tracer_ = tracer; }

    /** Same pattern for the resource-utilization collector: null (the
     *  default) means collection is off and every resource acquire
     *  pays one pointer check. */
    UtilizationCollector *util() const { return util_; }
    void setUtil(UtilizationCollector *util) { util_ = util; }
    /** @} */

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * Pre-declared parallel-DES capability (see src/common/analysis.h):
     * the cross-LP surface — event insertion and extraction — will
     * serialize on this when logical processes run concurrently.
     * Zero-cost today: SimLockGuard compiles to nothing, and the
     * determinism suite proves artifacts stay byte-identical.
     */
    mutable SimMutex mu_;

    /** Owned by the executing logical process (single consumer):
     *  `now_`/`executed_` advance only inside runOne(). */
    Tick now_ = 0;
    std::uint64_t nextSeq_ RECSSD_GUARDED_BY(mu_) = 0;
    std::uint64_t executed_ = 0;
    Tracer *tracer_ = nullptr;
    UtilizationCollector *util_ = nullptr;
    std::priority_queue<Event, std::vector<Event>, Later> events_
        RECSSD_GUARDED_BY(mu_);

    /** @{ RECSSD_AUDIT: pops must be strictly increasing in
     *  (when, seq) -- time never runs backwards, and same-tick events
     *  fire in FIFO order.  `audit_` caches the env lookup once. */
    bool audit_;
    bool popped_ = false;
    Tick lastWhen_ = 0;
    std::uint64_t lastSeq_ = 0;
    /** @} */
};

}  // namespace recssd

#endif  // RECSSD_COMMON_EVENT_QUEUE_H
