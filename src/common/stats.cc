#include "src/common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iomanip>

namespace recssd
{

Histogram::Histogram(unsigned num_buckets) : buckets_(num_buckets, 0)
{
}

void
Histogram::record(std::uint64_t v)
{
    stat_.record(static_cast<double>(v));
    unsigned bucket = v == 0 ? 0 : static_cast<unsigned>(std::bit_width(v));
    if (bucket >= buckets_.size())
        bucket = static_cast<unsigned>(buckets_.size()) - 1;
    ++buckets_[bucket];
}

void
Histogram::reset()
{
    stat_.reset();
    for (auto &b : buckets_)
        b = 0;
}

double
Histogram::quantile(double q) const
{
    if (stat_.count() == 0)
        return 0.0;
    if (q <= 0.0)
        return stat_.min();
    if (q >= 1.0)
        return stat_.max();
    const double target = q * static_cast<double>(stat_.count());
    double seen = 0.0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        double in_bucket = static_cast<double>(buckets_[i]);
        if (seen + in_bucket >= target) {
            // Bucket i holds values in [2^(i-1), 2^i); interpolate
            // linearly by the rank's position inside the bucket, then
            // clamp to the observed range so a single-sample bucket
            // reports the sample itself rather than a bucket bound.
            double lo =
                i == 0 ? 0.0 : std::pow(2.0, static_cast<double>(i - 1));
            double hi = std::pow(2.0, static_cast<double>(i));
            double frac = (target - seen) / in_bucket;
            return std::clamp(lo + frac * (hi - lo), stat_.min(),
                              stat_.max());
        }
        seen += in_bucket;
    }
    return stat_.max();
}

void
StatGroup::addCounter(std::string name, const Counter *c)
{
    counters_.emplace_back(std::move(name), c);
}

void
StatGroup::addSample(std::string name, const SampleStat *s)
{
    samples_.emplace_back(std::move(name), s);
}

void
StatGroup::addHistogram(std::string name, const Histogram *h)
{
    histograms_.emplace_back(std::move(name), h);
}

void
StatGroup::dump(std::ostream &os) const
{
    os << "==== " << name_ << " ====\n";
    for (const auto &[name, c] : counters_)
        os << std::left << std::setw(40) << name << c->value() << "\n";
    for (const auto &[name, s] : samples_) {
        os << std::left << std::setw(40) << name
           << "count=" << s->count() << " mean=" << s->mean()
           << " min=" << s->min() << " max=" << s->max() << "\n";
    }
    for (const auto &[name, h] : histograms_) {
        os << std::left << std::setw(40) << name
           << "count=" << h->count() << " mean=" << h->mean()
           << " p50=" << h->quantile(0.5) << " p99=" << h->quantile(0.99)
           << " max=" << h->max() << "\n";
    }
}

}  // namespace recssd
