/**
 * @file
 * gem5-style status and error reporting.
 *
 * `fatal()` is for user errors (bad configuration) and exits cleanly;
 * `panic()` is for internal invariant violations and aborts; `warn()`
 * and `inform()` never stop the simulation.
 */

#ifndef RECSSD_COMMON_LOGGING_H
#define RECSSD_COMMON_LOGGING_H

#include <cstdarg>
#include <string>

namespace recssd
{

/** Severity levels understood by the log sink. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Minimum level that is actually printed. Tests raise this to keep
 * expected-failure output quiet.
 */
void setLogThreshold(LogLevel level);

/** Current print threshold. */
LogLevel logThreshold();

/** printf-style message formatting helper. */
std::string vformat(const char *fmt, std::va_list ap);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a condition the user should know about but not worry about. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report suspicious but survivable behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate due to a user-caused error (bad parameters, impossible
 * configuration). Exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate due to an internal simulator bug. Aborts so a debugger or
 * core dump can capture the state.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless the given condition holds. */
#define recssd_assert(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::recssd::panic("assertion '%s' failed: %s", #cond,           \
                            ::recssd::format(__VA_ARGS__).c_str());       \
        }                                                                 \
    } while (0)

}  // namespace recssd

#endif  // RECSSD_COMMON_LOGGING_H
