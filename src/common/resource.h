/**
 * @file
 * Queued-server resources for timing models.
 *
 * Most contention in the simulated machine is "a serial thing that
 * takes time per unit of work": the FTL microprocessor, the PCIe link,
 * a flash channel bus, a host CPU core. `SerialResource` models one
 * FIFO server; `PoolResource` models N identical servers fed from one
 * FIFO queue (e.g. host cores). Both report busy time so benches can
 * print utilization.
 */

#ifndef RECSSD_COMMON_RESOURCE_H
#define RECSSD_COMMON_RESOURCE_H

#include <string>
#include <vector>

#include "src/common/analysis.h"
#include "src/common/event_queue.h"
#include "src/common/stats.h"
#include "src/common/types.h"

namespace recssd
{

/** Single FIFO server: requests occupy it back to back. */
class SerialResource
{
  public:
    SerialResource(EventQueue &eq, std::string name);

    /**
     * Enqueue `service` ticks of work; `done` fires when it completes.
     * Work starts at max(now, previous completion).
     * @return the completion tick.
     */
    Tick acquire(Tick service, EventQueue::Callback done)
        RECSSD_DEFERS_CALLBACK;

    /** Enqueue work with no completion callback. */
    Tick acquire(Tick service) { return acquire(service, nullptr); }

    /** Tick at which currently queued work finishes. */
    Tick freeAt() const { return freeAt_; }

    /** True if the server would start new work immediately. */
    bool idle() const { return freeAt_ <= eq_.now(); }

    /** Accumulated busy ticks (for utilization reporting). */
    Tick busyTime() const { return busy_; }

    const std::string &name() const { return name_; }

  private:
    EventQueue &eq_;
    std::string name_;
    Tick freeAt_ = 0;
    Tick busy_ = 0;
};

/** N identical servers behind one FIFO queue. */
class PoolResource
{
  public:
    PoolResource(EventQueue &eq, std::string name, unsigned servers);

    /**
     * Enqueue `service` ticks of work on the earliest-free server.
     * @return the completion tick.
     */
    Tick acquire(Tick service, EventQueue::Callback done)
        RECSSD_DEFERS_CALLBACK;

    Tick acquire(Tick service) { return acquire(service, nullptr); }

    unsigned servers() const { return static_cast<unsigned>(freeAt_.size()); }
    Tick busyTime() const { return busy_; }

    /** Earliest tick at which any server is free. */
    Tick earliestFree() const;

    const std::string &name() const { return name_; }

  private:
    EventQueue &eq_;
    std::string name_;
    std::vector<Tick> freeAt_;
    Tick busy_ = 0;
};

}  // namespace recssd

#endif  // RECSSD_COMMON_RESOURCE_H
