/**
 * @file
 * RECSSD_AUDIT: opt-in deep invariant checking.
 *
 * Static analysis (tools/sim_lint.py, clang-tidy) catches the
 * determinism-contract violations visible in source; this module hosts
 * the runtime half -- assertions over invariants only a live run can
 * see.  With `RECSSD_AUDIT=1` in the environment, components enable
 * extra checks:
 *
 *  - EventQueue: events pop in strictly increasing (when, seq) order,
 *    i.e. time never runs backwards and the FIFO tie-break holds.
 *  - Ftl: after every GC row erase, the L2P overlay and the physical
 *    valid-page bookkeeping form a bijection (no duplicate PPNs, no
 *    mapping into free/region rows, per-row counts match).
 *  - System: with multiple SSDs, every aggregate stat equals the sum
 *    of its per-device subtree values at stats-dump time.
 *
 * The checks cost real time, so callers cache `auditEnabled()` once at
 * construction; the default (unset) run pays a single cached bool test
 * per audited site.  A failed audit aborts via `recssd_assert`.
 */

#ifndef RECSSD_COMMON_AUDIT_H
#define RECSSD_COMMON_AUDIT_H

namespace recssd
{

/** True when RECSSD_AUDIT is set to a non-empty, non-"0" value. */
bool auditEnabled();

}  // namespace recssd

#endif  // RECSSD_COMMON_AUDIT_H
