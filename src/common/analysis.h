/**
 * @file
 * Protocol annotations for static analysis.
 *
 * Two consumers read these macros:
 *
 *  1. `tools/sim_lint.py` (rules R5-R8). The protocol markers expand
 *     to nothing for every compiler; the linter reads the tokens from
 *     source text and builds a registry of which functions defer
 *     callbacks, which consult the *live* L2P/epoch state, which
 *     register stats, and which open/close tracer spans. The deferred-
 *     state contract they encode is documented in DESIGN.md
 *     ("Deferred-state protocol"): state captured at command issue
 *     (a PPN, a PageView, a cache slot, a hot-tier pin) must be passed
 *     through a live-lookup or epoch check at completion time before
 *     it is re-inserted into any mapping-derived structure.
 *
 *  2. clang's `-Wthread-safety` analysis. The RECSSD_GUARDED_BY /
 *     RECSSD_REQUIRES / capability macros map onto the Clang
 *     thread-safety attributes when compiling with clang and expand to
 *     nothing under gcc. Today the simulator is single-threaded, so
 *     `SimMutex` is a zero-cost stand-in; the parallel-DES rewrite
 *     replaces its empty lock/unlock with a real mutex (or a per-LP
 *     sequencer) and inherits a machine-checked locking contract that
 *     was enforced before the first thread was ever spawned.
 */

#ifndef RECSSD_COMMON_ANALYSIS_H
#define RECSSD_COMMON_ANALYSIS_H

/* ------------------------------------------------------------------ */
/* Clang thread-safety attribute mapping (no-ops everywhere else).    */
/* ------------------------------------------------------------------ */

#ifndef __has_attribute
#define __has_attribute(x) 0
#endif

#if defined(__clang__) && __has_attribute(capability)
#define RECSSD_TSA(x) __attribute__((x))
#else
#define RECSSD_TSA(x)  // not clang: contracts are checked by CI's clang leg
#endif

/** Declares a type to be a lockable capability. */
#define RECSSD_CAPABILITY(name) RECSSD_TSA(capability(name))
/** An RAII type that acquires a capability for its lifetime. */
#define RECSSD_SCOPED_CAPABILITY RECSSD_TSA(scoped_lockable)
/** Data member readable/writable only while `x` is held. */
#define RECSSD_GUARDED_BY(x) RECSSD_TSA(guarded_by(x))
/** Pointer member whose *pointee* is guarded by `x`. */
#define RECSSD_PT_GUARDED_BY(x) RECSSD_TSA(pt_guarded_by(x))
/** Function that may only be called while holding the capabilities. */
#define RECSSD_REQUIRES(...) RECSSD_TSA(requires_capability(__VA_ARGS__))
/** Function that acquires the capabilities and holds them on return. */
#define RECSSD_ACQUIRE(...) RECSSD_TSA(acquire_capability(__VA_ARGS__))
/** Function that releases the capabilities. */
#define RECSSD_RELEASE(...) RECSSD_TSA(release_capability(__VA_ARGS__))
/** Function that must NOT be entered holding the capabilities. */
#define RECSSD_EXCLUDES(...) RECSSD_TSA(locks_excluded(__VA_ARGS__))
/** Escape hatch: disable the analysis for one function. */
#define RECSSD_NO_THREAD_SAFETY_ANALYSIS \
    RECSSD_TSA(no_thread_safety_analysis)

/* ------------------------------------------------------------------ */
/* sim-lint protocol markers (rules R5-R8). All expand to nothing;    */
/* their value is the token in the source text.                       */
/* ------------------------------------------------------------------ */

/**
 * R5: this function consults the *live* mapping / epoch state, not a
 * snapshot. Calling it inside a deferred body (completion callback,
 * scheduled event) is what re-validates captured PPNs/views before
 * use. Place after the parameter list:
 *
 *     Ppn translate(Lpn lpn) RECSSD_LIVE_LOOKUP { ... }
 */
#define RECSSD_LIVE_LOOKUP

/**
 * R5/R8: callable arguments to this function run *later* (at a
 * completion, a resource grant, a scheduled tick), not inline. Lambdas
 * passed to it are deferred bodies: their captures are issue-time
 * snapshots and fall under the deferred-state protocol.
 */
#define RECSSD_DEFERS_CALLBACK

/**
 * R5: this function mutates the L2P mapping (bumps a page's remap
 * epoch). Observer notifications annotated RECSSD_NOTIFIES_MAP_SET
 * must be dominated by a call to one of these in the same body.
 */
#define RECSSD_MAP_MUTATOR

/**
 * R5: the observer installed through this setter reports mapping
 * changes; the stored callback must only ever be invoked *after* a
 * RECSSD_MAP_MUTATOR call in the same body (at the map-set instant,
 * never at command entry). The linter derives the member name from
 * the setter (`setWriteObserver` -> `writeObserver_`).
 */
#define RECSSD_NOTIFIES_MAP_SET

/**
 * R6: this function appends a named getter to a StatRegistry.
 * Registrations must dominate sampler/exporter touches within a body,
 * and must never run from a deferred event body.
 */
#define RECSSD_STAT_REGISTRATION

/**
 * R6: this function reads the registry's current shape (samples it,
 * exports rows, scans names). A registration after one of these in
 * the same body is the PR 8 out-of-bounds class.
 */
#define RECSSD_REGISTRY_SAMPLING

/**
 * R7: this function opens a tracer span and returns its SpanId. Every
 * begun span must be ended, captured into a continuation, stored, or
 * returned on every path of the body that begins it.
 */
#define RECSSD_SPAN_BEGIN

/** R7: this function closes a span passed to it. */
#define RECSSD_SPAN_END

/**
 * R5/R8 suppression, placed as the first statement of a deferred
 * body whose captured state is safe without a live lookup. The
 * justification is mandatory and should say *why* the snapshot cannot
 * go stale (immutable region, value-copied payload, ...).
 *
 *     eq.scheduleAfter(d, [snapshot]() {
 *         RECSSD_DEFERRED_SAFE("value copy; no mapping state");
 *         ...
 *     });
 */
#define RECSSD_DEFERRED_SAFE(why)

/**
 * R8 ownership annotation: this deferred body intentionally captures
 * a raw reference/pointer to mutable simulator state. The
 * justification must name the lifetime argument (e.g. "outlives the
 * drained event queue").
 */
#define RECSSD_CAPTURES_MAPPING(why)

namespace recssd
{

/**
 * Zero-cost capability object for pre-declared locking contracts.
 *
 * Single-threaded today: lock()/unlock() compile to nothing, so
 * artifacts stay byte-identical (enforced by test_determinism). Under
 * clang the capability attributes make every RECSSD_GUARDED_BY member
 * access require a SimLockGuard in scope — the contract the parallel
 * DES kernel will inherit with a real lock implementation.
 */
class RECSSD_CAPABILITY("mutex") SimMutex
{
  public:
    SimMutex() = default;
    SimMutex(const SimMutex &) = delete;
    SimMutex &operator=(const SimMutex &) = delete;

    void lock() RECSSD_ACQUIRE() {}
    void unlock() RECSSD_RELEASE() {}
};

/** RAII holder for a SimMutex (empty; optimized out entirely). */
class RECSSD_SCOPED_CAPABILITY SimLockGuard
{
  public:
    explicit SimLockGuard(SimMutex &mu) RECSSD_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~SimLockGuard() RECSSD_RELEASE() { mu_.unlock(); }

    SimLockGuard(const SimLockGuard &) = delete;
    SimLockGuard &operator=(const SimLockGuard &) = delete;

  private:
    SimMutex &mu_;
};

}  // namespace recssd

#endif  // RECSSD_COMMON_ANALYSIS_H
