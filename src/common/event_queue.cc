#include "src/common/event_queue.h"

#include "src/common/logging.h"

namespace recssd
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    recssd_assert(when >= now_, "cannot schedule in the past (%llu < %llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
    recssd_assert(cb != nullptr, "cannot schedule a null callback");
    events_.push(Event{when, nextSeq_++, std::move(cb)});
}

bool
EventQueue::runOne()
{
    if (events_.empty())
        return false;
    // priority_queue::top returns const ref; move the callback out via
    // a const_cast, which is safe because we pop immediately.
    Event &ev = const_cast<Event &>(events_.top());
    Tick when = ev.when;
    Callback cb = std::move(ev.cb);
    events_.pop();
    now_ = when;
    ++executed_;
    cb();
    return true;
}

Tick
EventQueue::run()
{
    while (runOne()) {
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    if (events_.empty())
        return now_;  // nothing to simulate; time does not flow
    while (!events_.empty() && events_.top().when <= limit)
        runOne();
    if (now_ < limit)
        now_ = limit;
    return now_;
}

}  // namespace recssd
