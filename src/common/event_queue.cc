#include "src/common/event_queue.h"

#include "src/common/audit.h"
#include "src/common/logging.h"

namespace recssd
{

EventQueue::EventQueue() : audit_(auditEnabled())
{
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    recssd_assert(when >= now_, "cannot schedule in the past (%llu < %llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now_));
    recssd_assert(cb != nullptr, "cannot schedule a null callback");
    SimLockGuard hold(mu_);
    events_.push(Event{when, nextSeq_++, std::move(cb)});
}

bool
EventQueue::runOne()
{
    Tick when;
    std::uint64_t seq;
    Callback cb;
    {
        // The queue mutation is the cross-LP surface; the callback
        // itself runs outside the lock (it may re-enter schedule()).
        SimLockGuard hold(mu_);
        if (events_.empty())
            return false;
        // priority_queue::top returns const ref; move the callback out
        // via a const_cast, which is safe because we pop immediately.
        Event &ev = const_cast<Event &>(events_.top());
        when = ev.when;
        seq = ev.seq;
        cb = std::move(ev.cb);
        events_.pop();
    }
    if (audit_) {
        recssd_assert(!popped_ || when > lastWhen_ ||
                          (when == lastWhen_ && seq > lastSeq_),
                      "audit: event pop order regressed "
                      "(when=%llu seq=%llu after when=%llu seq=%llu)",
                      static_cast<unsigned long long>(when),
                      static_cast<unsigned long long>(seq),
                      static_cast<unsigned long long>(lastWhen_),
                      static_cast<unsigned long long>(lastSeq_));
        popped_ = true;
        lastWhen_ = when;
        lastSeq_ = seq;
    }
    now_ = when;
    ++executed_;
    cb();
    return true;
}

Tick
EventQueue::run()
{
    while (runOne()) {
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    if (empty())
        return now_;  // nothing to simulate; time does not flow
    while (true) {
        {
            SimLockGuard hold(mu_);
            if (events_.empty() || events_.top().when > limit)
                break;
        }
        runOne();
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

}  // namespace recssd
