#include "src/common/random.h"

#include <cmath>

#include "src/common/logging.h"

namespace recssd
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    recssd_assert(bound > 0, "uniformInt bound must be positive");
    // Lemire's nearly-divisionless method.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t t = (0 - bound) % bound;
        while (l < t) {
            m = static_cast<__uint128_t>((*this)()) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::uniformRange(std::uint64_t lo, std::uint64_t hi)
{
    recssd_assert(lo <= hi, "uniformRange requires lo <= hi");
    return lo + uniformInt(hi - lo + 1);
}

double
Rng::uniformDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::exponential(double mean)
{
    recssd_assert(mean > 0.0, "exponential mean must be positive");
    double u = uniformDouble();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

bool
Rng::bernoulli(double p)
{
    return uniformDouble() < p;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha), cdf_(n)
{
    recssd_assert(n >= 1, "Zipf universe must be non-empty");
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n_; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha_);
        cdf_[i] = sum;
    }
    for (auto &v : cdf_)
        v /= sum;
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.uniformDouble();
    // Binary search for the first CDF entry >= u.
    std::uint64_t lo = 0;
    std::uint64_t hi = n_ - 1;
    while (lo < hi) {
        std::uint64_t mid = lo + (hi - lo) / 2;
        if (cdf_[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

double
ZipfSampler::pmf(std::uint64_t rank) const
{
    recssd_assert(rank < n_, "Zipf pmf rank out of range");
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace recssd
