#include "src/common/audit.h"

#include <cstdlib>
#include <cstring>

namespace recssd
{

bool
auditEnabled()
{
    const char *v = std::getenv("RECSSD_AUDIT");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

}  // namespace recssd
