/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Everything in the code base draws randomness through `Rng` (a
 * xoshiro256** engine) so runs are exactly reproducible from a seed.
 * The header also provides the distribution samplers the trace
 * generators need: uniform, exponential, and Zipf.
 */

#ifndef RECSSD_COMMON_RANDOM_H
#define RECSSD_COMMON_RANDOM_H

#include <cstdint>
#include <vector>

namespace recssd
{

/**
 * xoshiro256** pseudo random generator.
 *
 * Small, fast and high quality; satisfies the UniformRandomBitGenerator
 * concept so it can also back standard distributions if needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound) using Lemire's method. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** Exponential variate with the given mean (mean = 1/lambda). */
    double exponential(double mean);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

  private:
    std::uint64_t state_[4];
};

/**
 * Zipf-distributed sampler over {0, ..., n-1} with exponent alpha.
 *
 * Uses an inverse-CDF table built once at construction; sampling is a
 * binary search, O(log n). Rank 0 is the hottest element.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Universe size (must be >= 1).
     * @param alpha Skew exponent; larger is more skewed.
     */
    ZipfSampler(std::uint64_t n, double alpha);

    /** Draw one rank in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    /** Probability mass of a given rank. */
    double pmf(std::uint64_t rank) const;

    std::uint64_t universe() const { return n_; }
    double alpha() const { return alpha_; }

  private:
    std::uint64_t n_;
    double alpha_;
    std::vector<double> cdf_;
};

}  // namespace recssd

#endif  // RECSSD_COMMON_RANDOM_H
