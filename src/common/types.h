/**
 * @file
 * Fundamental simulation types shared by every RecSSD subsystem.
 *
 * The simulation clock counts nanoseconds in a 64-bit unsigned tick.
 * All latencies in the code base are expressed through the literal
 * helpers below so units are visible at every call site.
 */

#ifndef RECSSD_COMMON_TYPES_H
#define RECSSD_COMMON_TYPES_H

#include <cstdint>

namespace recssd
{

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** The largest representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Unit helpers: write `5 * usec` rather than `5000`. */
constexpr Tick nsec = 1;
constexpr Tick usec = 1000 * nsec;
constexpr Tick msec = 1000 * usec;
constexpr Tick sec = 1000 * msec;

/** Convert a tick count to floating-point microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(usec);
}

/** Convert a tick count to floating-point milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(msec);
}

/** Logical block / page addressing used across NVMe, FTL and flash. */
using Lpn = std::uint64_t;   ///< logical page number (host visible)
using Ppn = std::uint64_t;   ///< physical page number (flash)
constexpr Lpn invalidLpn = ~Lpn(0);
constexpr Ppn invalidPpn = ~Ppn(0);

/** Embedding table row identifier. */
using RowId = std::uint64_t;

}  // namespace recssd

#endif  // RECSSD_COMMON_TYPES_H
