#include "src/common/resource.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/utilization.h"  // header-inline record(); no link dep

namespace recssd
{

SerialResource::SerialResource(EventQueue &eq, std::string name)
    : eq_(eq), name_(std::move(name))
{
}

Tick
SerialResource::acquire(Tick service, EventQueue::Callback done)
{
    Tick start = std::max(eq_.now(), freeAt_);
    freeAt_ = start + service;
    busy_ += service;
    if (UtilizationCollector *util = eq_.util())
        util->record(name_, eq_.now(), start, freeAt_);
    // Always schedule the completion so simulated time covers the
    // work even when nobody waits on it.
    if (!done)
        done = []() {};
    eq_.schedule(freeAt_, std::move(done));
    return freeAt_;
}

PoolResource::PoolResource(EventQueue &eq, std::string name, unsigned servers)
    : eq_(eq), name_(std::move(name)), freeAt_(servers, 0)
{
    recssd_assert(servers > 0, "pool '%s' needs at least one server",
                  name_.c_str());
}

Tick
PoolResource::earliestFree() const
{
    return *std::min_element(freeAt_.begin(), freeAt_.end());
}

Tick
PoolResource::acquire(Tick service, EventQueue::Callback done)
{
    auto it = std::min_element(freeAt_.begin(), freeAt_.end());
    Tick start = std::max(eq_.now(), *it);
    *it = start + service;
    busy_ += service;
    if (UtilizationCollector *util = eq_.util())
        util->record(name_, eq_.now(), start, *it, servers());
    if (!done)
        done = []() {};
    eq_.schedule(*it, std::move(done));
    return *it;
}

}  // namespace recssd
