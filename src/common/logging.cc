#include "src/common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace recssd
{

namespace
{
LogLevel gThreshold = LogLevel::Inform;
}  // namespace

void
setLogThreshold(LogLevel level)
{
    gThreshold = level;
}

LogLevel
logThreshold()
{
    return gThreshold;
}

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

std::string
format(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

namespace
{

void
emit(LogLevel level, const char *prefix, const char *fmt, std::va_list ap)
{
    if (level < gThreshold)
        return;
    std::string msg = vformat(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

}  // namespace

void
inform(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Inform, "info", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Warn, "warn", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Fatal, "fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Panic, "panic", fmt, ap);
    va_end(ap);
    std::abort();
}

}  // namespace recssd
