/**
 * @file
 * Lightweight statistics collection.
 *
 * Components own `Counter` and `Histogram` instances and register them
 * with a `StatGroup` so tools can dump everything uniformly. This is a
 * deliberately small subset of the gem5 stats package: scalar counters,
 * accumulating averages, and log-scale latency histograms.
 */

#ifndef RECSSD_COMMON_STATS_H
#define RECSSD_COMMON_STATS_H

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace recssd
{

/** Simple named monotonic counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Up/down counter tracking the current level and its high-water mark.
 * Models occupancy-style quantities: queue depth, outstanding
 * commands, in-flight batches.
 */
class Gauge
{
  public:
    Gauge() = default;

    void
    inc(std::int64_t n = 1)
    {
        value_ += n;
        if (value_ > highWater_)
            highWater_ = value_;
    }

    void dec(std::int64_t n = 1) { value_ -= n; }

    void
    reset()
    {
        value_ = 0;
        highWater_ = 0;
    }

    std::int64_t value() const { return value_; }
    std::int64_t highWater() const { return highWater_; }

  private:
    std::int64_t value_ = 0;
    std::int64_t highWater_ = 0;
};

/**
 * Running scalar sample statistics (count / sum / min / max / mean).
 */
class SampleStat
{
  public:
    void
    record(double v)
    {
        count_ += 1;
        sum_ += v;
        sumSq_ += v * v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0.0;
        sumSq_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance. */
    double
    variance() const
    {
        if (count_ == 0)
            return 0.0;
        double m = mean();
        return sumSq_ / count_ - m * m;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Power-of-two bucketed histogram, suitable for latency distributions
 * spanning ns to seconds.
 */
class Histogram
{
  public:
    /** @param num_buckets One bucket per power of two starting at 1. */
    explicit Histogram(unsigned num_buckets = 48);

    void record(std::uint64_t v);
    void reset();

    std::uint64_t count() const { return stat_.count(); }
    double mean() const { return stat_.mean(); }
    double min() const { return stat_.min(); }
    double max() const { return stat_.max(); }

    /** Approximate quantile (0 <= q <= 1) from bucket boundaries. */
    double quantile(double q) const;

    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

  private:
    std::vector<std::uint64_t> buckets_;
    SampleStat stat_;
};

/**
 * Named collection of statistics for dumping. Components register
 * pointers; the group does not own them.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void addCounter(std::string name, const Counter *c);
    void addSample(std::string name, const SampleStat *s);
    void addHistogram(std::string name, const Histogram *h);

    /** Pretty-print every registered stat. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::pair<std::string, const Counter *>> counters_;
    std::vector<std::pair<std::string, const SampleStat *>> samples_;
    std::vector<std::pair<std::string, const Histogram *>> histograms_;
};

}  // namespace recssd

#endif  // RECSSD_COMMON_STATS_H
