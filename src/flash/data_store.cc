#include "src/flash/data_store.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace recssd
{

void
DataStore::write(Ppn ppn, std::span<const std::byte> data)
{
    recssd_assert(data.size() <= pageSize_,
                  "write larger than page (%zu > %u)", data.size(),
                  pageSize_);
    auto &page = stored_[ppn];
    page.assign(pageSize_, std::byte{0});
    std::memcpy(page.data(), data.data(), data.size());
}

const std::pair<const Ppn, DataStore::Region> *
DataStore::findRegion(Ppn ppn) const
{
    auto it = regions_.upper_bound(ppn);
    if (it == regions_.begin())
        return nullptr;
    --it;
    if (ppn < it->first + it->second.pages)
        return &*it;
    return nullptr;
}

void
DataStore::read(Ppn ppn, std::size_t offset, std::span<std::byte> out) const
{
    recssd_assert(offset + out.size() <= pageSize_,
                  "read beyond page end (%zu + %zu > %u)", offset,
                  out.size(), pageSize_);
    auto it = stored_.find(ppn);
    if (it != stored_.end()) {
        std::memcpy(out.data(), it->second.data() + offset, out.size());
        return;
    }
    if (const auto *region = findRegion(ppn)) {
        region->second.gen(ppn - region->first, offset, out);
        return;
    }
    std::ranges::fill(out, std::byte{0});
}

void
DataStore::erase(Ppn ppn)
{
    stored_.erase(ppn);
}

void
DataStore::registerSynthetic(Ppn start, std::uint64_t pages, Generator gen)
{
    recssd_assert(pages > 0, "empty synthetic region");
    // Reject overlap with existing regions; overlapping content would
    // be ambiguous.
    recssd_assert(findRegion(start) == nullptr &&
                      findRegion(start + pages - 1) == nullptr,
                  "synthetic regions must not overlap");
    auto it = regions_.lower_bound(start);
    recssd_assert(it == regions_.end() || it->first >= start + pages,
                  "synthetic regions must not overlap");
    regions_.emplace(start, Region{pages, std::move(gen)});
}

}  // namespace recssd
