/**
 * @file
 * NAND flash geometry and timing parameters.
 *
 * Defaults model the Cosmos+ OpenSSD board the paper prototypes on:
 * 8 channels, 16KB pages, roughly 10K page reads per second per
 * channel, and just under 1.4GB/s of aggregate sequential read
 * bandwidth (§5 "Physical Compute Infrastructure").
 */

#ifndef RECSSD_FLASH_FLASH_PARAMS_H
#define RECSSD_FLASH_FLASH_PARAMS_H

#include <cstdint>

#include "src/common/types.h"

namespace recssd
{

/** Static description of a flash array. */
struct FlashParams
{
    /** Independent channels, each with its own bus and controller. */
    unsigned numChannels = 8;
    /** NAND dies sharing each channel bus. */
    unsigned diesPerChannel = 4;
    /** Erase blocks per die. */
    unsigned blocksPerDie = 4096;
    /** Pages per erase block. */
    unsigned pagesPerBlock = 256;
    /** Page size in bytes (16KB on the Cosmos+ board). */
    unsigned pageSize = 16 * 1024;

    /** Array read latency (cell array to die register). */
    Tick readLatency = 60 * usec;
    /** Program latency (die register to cell array). */
    Tick programLatency = 800 * usec;
    /** Block erase latency. */
    Tick eraseLatency = 3 * msec;
    /** Command issue occupancy on the channel bus. */
    Tick cmdLatency = 2 * usec;
    /** Channel bus bandwidth for page data transfers, bytes/sec. */
    std::uint64_t channelBytesPerSec = 175ull * 1000 * 1000;

    /**
     * Failure injection: probability that a page read needs one
     * read-retry (marginal cells / ECC re-read at a shifted
     * reference voltage). Each retry costs another tR on the die.
     * 0 disables injection; retries are deterministic per seed.
     */
    double readRetryRate = 0.0;
    /** Maximum consecutive retries for one read. */
    unsigned maxReadRetries = 3;

    /** Pages per die. */
    std::uint64_t
    pagesPerDie() const
    {
        return std::uint64_t(blocksPerDie) * pagesPerBlock;
    }

    /** Total physical pages in the array. */
    std::uint64_t
    totalPages() const
    {
        return std::uint64_t(numChannels) * diesPerChannel * pagesPerDie();
    }

    /** Total erase blocks in the array. */
    std::uint64_t
    totalBlocks() const
    {
        return std::uint64_t(numChannels) * diesPerChannel * blocksPerDie;
    }

    /** Total capacity in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return totalPages() * pageSize;
    }

    /** Channel occupancy for one page data transfer. */
    Tick
    pageTransferTime() const
    {
        return static_cast<Tick>(static_cast<double>(pageSize) /
                                 static_cast<double>(channelBytesPerSec) *
                                 static_cast<double>(sec));
    }
};

/**
 * Physical address decomposition.
 *
 * Physical page numbers stripe across channels first, then dies, so
 * consecutive PPNs exercise maximum parallelism:
 *   ppn = ((pageInDie * diesPerChannel) + die) * numChannels + channel
 */
struct FlashAddress
{
    unsigned channel;
    unsigned die;
    std::uint64_t block;       ///< block within the die
    std::uint64_t page;        ///< page within the block

    static FlashAddress
    decode(Ppn ppn, const FlashParams &p)
    {
        FlashAddress a;
        a.channel = static_cast<unsigned>(ppn % p.numChannels);
        std::uint64_t rest = ppn / p.numChannels;
        a.die = static_cast<unsigned>(rest % p.diesPerChannel);
        std::uint64_t page_in_die = rest / p.diesPerChannel;
        a.block = page_in_die / p.pagesPerBlock;
        a.page = page_in_die % p.pagesPerBlock;
        return a;
    }

    static Ppn
    encode(unsigned channel, unsigned die, std::uint64_t block,
           std::uint64_t page, const FlashParams &p)
    {
        std::uint64_t page_in_die = block * p.pagesPerBlock + page;
        return (page_in_die * p.diesPerChannel + die) * p.numChannels +
               channel;
    }
};

}  // namespace recssd

#endif  // RECSSD_FLASH_FLASH_PARAMS_H
