#include "src/flash/flash_array.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/tracer.h"

namespace recssd
{

FlashArray::FlashArray(EventQueue &eq, const FlashParams &params,
                       DataStore &store, const std::string &track_prefix)
    : eq_(eq), params_(params), store_(store), retryRng_(0x5EED)
{
    recssd_assert(params_.pageSize == store_.pageSize(),
                  "flash/page store size mismatch");
    for (unsigned c = 0; c < params_.numChannels; ++c) {
        std::string ch = track_prefix + "flash.ch" + std::to_string(c);
        channels_.push_back(std::make_unique<SerialResource>(eq_, ch));
        channelTrackNames_.push_back(ch);
        for (unsigned d = 0; d < params_.diesPerChannel; ++d) {
            std::string die_name = ch + ".die" + std::to_string(d);
            dies_.push_back(
                std::make_unique<SerialResource>(eq_, die_name));
            dieTrackNames_.push_back(std::move(die_name));
        }
    }
}

Tick
FlashArray::channelBusyTime(unsigned ch) const
{
    return channels_.at(ch)->busyTime();
}

Tick
FlashArray::arrayReadTime()
{
    // Injected latency inflation scales the nominal tR for reads that
    // start inside a window. The empty-vector fast path keeps healthy
    // devices byte-identical to a build without fault support.
    Tick base = params_.readLatency;
    if (!inflations_.empty()) {
        Tick now = eq_.now();
        std::erase_if(inflations_, [now](const InflationWindow &w) {
            return w.until <= now;
        });
        double factor = 1.0;
        for (const auto &w : inflations_)
            factor = std::max(factor, w.factor);
        if (factor > 1.0) {
            base = static_cast<Tick>(static_cast<double>(base) * factor);
            inflatedReads_.inc();
        }
    }
    Tick t = base;
    if (params_.readRetryRate > 0.0) {
        for (unsigned r = 0; r < params_.maxReadRetries; ++r) {
            if (!retryRng_.bernoulli(params_.readRetryRate))
                break;
            readRetries_.inc();
            t += base;
        }
    }
    return t;
}

void
FlashArray::emitDieSpans(const FlashAddress &addr, Phase phase,
                         Tick service, std::uint64_t trace_id)
{
    Tracer *tracer = tracerOf(eq_);
    if (!tracer)
        return;
    // Die-level wait/busy spans, recorded just before the die is
    // acquired. They carry the same phase as the enclosing channel
    // span (per-phase attribution totals are unchanged) but nest
    // deeper, so critical-path blame can name the die whose backlog
    // held a request up: a stalled or oversubscribed die shows as a
    // long "wait" on every victim queued behind it. The "busy" span's
    // end is in the future, which is safe — the completion event at
    // exactly that tick keeps the trace's clamp window covering it.
    TrackId track = tracer->track(
        dieTrackNames_[addr.channel * params_.diesPerChannel + addr.die]);
    Tick now = eq_.now();
    Tick start = std::max(now, die(addr.channel, addr.die).freeAt());
    if (start > now)
        tracer->span(track, "wait", phase, trace_id, now, start);
    tracer->span(track, "busy", phase, trace_id, start, start + service);
}

void
FlashArray::stallDie(unsigned ch, unsigned d, Tick duration)
{
    recssd_assert(ch < params_.numChannels && d < params_.diesPerChannel,
                  "stallDie target out of range");
    die(ch, d).acquire(duration, []() {});
}

void
FlashArray::addReadInflation(Tick until, double factor)
{
    recssd_assert(factor >= 1.0, "inflation factor must be >= 1");
    inflations_.push_back({until, factor});
}

Tick
FlashArray::backlogFor(Ppn ppn) const
{
    auto addr = FlashAddress::decode(ppn, params_);
    Tick ch_free = channels_[addr.channel]->freeAt();
    Tick die_free =
        dies_[addr.channel * params_.diesPerChannel + addr.die]->freeAt();
    return std::max(ch_free, die_free);
}

void
FlashArray::readPage(Ppn ppn, ReadCallback done, std::uint64_t trace_id)
{
    recssd_assert(ppn < params_.totalPages(), "PPN out of range");
    auto addr = FlashAddress::decode(ppn, params_);
    pageReads_.inc();

    // One span covers the whole operation — command queueing, tR on
    // the die, data transfer — on the owning channel's track.
    SpanId span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        span = tracer->begin(tracer->track(channelTrackNames_[addr.channel]),
                             "read", Phase::FlashRead, trace_id);
    }

    // Phase 1: command issue occupies the channel bus.
    channel(addr.channel).acquire(params_.cmdLatency, [this, addr, ppn, span,
                                                       trace_id,
                                                       done =
                                                           std::move(done)]()
                                                          mutable {
        // Phase 2: array read occupies the die (plus any injected
        // read retries on marginal cells).
        Tick service = arrayReadTime();
        emitDieSpans(addr, Phase::FlashRead, service, trace_id);
        die(addr.channel, addr.die)
            .acquire(service, [this, addr, ppn, span,
                               done = std::move(done)]() mutable {
                // Phase 3: page data crosses the channel bus.
                channel(addr.channel)
                    .acquire(params_.pageTransferTime(),
                             [this, ppn, span, done = std::move(done)]() {
                                 // The flash layer is below the L2P map:
                                 // ppn is this read's physical target, not
                                 // a mapping snapshot. The log-structured
                                 // FTL never rewrites a live ppn, so the
                                 // bytes under it are stable until erase.
                                 RECSSD_DEFERRED_SAFE(
                                     "physical address, not mapping state");
                                 if (Tracer *tracer = tracerOf(eq_))
                                     tracer->end(span);
                                 done(PageView(store_, ppn));
                             });
            });
    });
}

void
FlashArray::writePage(Ppn ppn, std::span<const std::byte> data,
                      DoneCallback done, std::uint64_t trace_id)
{
    recssd_assert(ppn < params_.totalPages(), "PPN out of range");
    auto addr = FlashAddress::decode(ppn, params_);
    pageWrites_.inc();

    // Functional content lands immediately; only timing is deferred.
    store_.write(ppn, data);

    SpanId span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        span = tracer->begin(tracer->track(channelTrackNames_[addr.channel]),
                             "program", Phase::FlashWrite, trace_id);
    }

    // Command + data transfer occupy the channel, then tPROG the die.
    Tick xfer = params_.cmdLatency + params_.pageTransferTime();
    channel(addr.channel).acquire(xfer, [this, addr, span, trace_id,
                                         done = std::move(done)]() mutable {
        emitDieSpans(addr, Phase::FlashWrite, params_.programLatency,
                     trace_id);
        die(addr.channel, addr.die)
            .acquire(params_.programLatency,
                     [this, span, done = std::move(done)]() {
                         if (Tracer *tracer = tracerOf(eq_))
                             tracer->end(span);
                         if (done)
                             done();
                     });
    });
}

void
FlashArray::eraseBlock(Ppn any_ppn_in_block, DoneCallback done)
{
    recssd_assert(any_ppn_in_block < params_.totalPages(), "PPN out of range");
    auto addr = FlashAddress::decode(any_ppn_in_block, params_);
    blockErases_.inc();

    // Drop functional content of the whole block.
    for (std::uint64_t pg = 0; pg < params_.pagesPerBlock; ++pg) {
        store_.erase(
            FlashAddress::encode(addr.channel, addr.die, addr.block, pg,
                                 params_));
    }

    channel(addr.channel).acquire(params_.cmdLatency, [this, addr,
                                                       done = std::move(
                                                           done)]() mutable {
        die(addr.channel, addr.die)
            .acquire(params_.eraseLatency, std::move(done));
    });
}

}  // namespace recssd
