/**
 * @file
 * Timed model of the NAND flash array.
 *
 * Each channel bus and each die is a FIFO `SerialResource`. A page
 * read occupies: channel (command) -> die (tR) -> channel (data
 * transfer). A program occupies: channel (command + data transfer) ->
 * die (tPROG). An erase occupies the die for tERASE. With the default
 * Cosmos+ parameters this yields ~10K page reads/s per channel and
 * ~1.36GB/s sequential read across 8 channels, matching §5.
 *
 * Data is functional: reads hand back a `PageView` that lazily copies
 * bytes out of the `DataStore`, so full 16KB pages are never
 * materialized unless someone actually wants all of them.
 */

#ifndef RECSSD_FLASH_FLASH_ARRAY_H
#define RECSSD_FLASH_FLASH_ARRAY_H

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/analysis.h"
#include "src/common/event_queue.h"
#include "src/common/random.h"
#include "src/common/resource.h"
#include "src/common/stats.h"
#include "src/flash/data_store.h"
#include "src/flash/flash_params.h"
#include "src/obs/phase.h"

namespace recssd
{

/** Lazy, read-only view of one flash page's content. */
class PageView
{
  public:
    PageView(const DataStore &store, Ppn ppn) : store_(&store), ppn_(ppn) {}

    /** Copy bytes [offset, offset+out.size()) of the page into out. */
    void
    copyOut(std::size_t offset, std::span<std::byte> out) const
    {
        store_->read(ppn_, offset, out);
    }

    Ppn ppn() const { return ppn_; }

  private:
    const DataStore *store_;
    Ppn ppn_;
};

/** The flash array: timing plus functional data movement. */
class FlashArray
{
  public:
    using ReadCallback = std::function<void(const PageView &)>;
    using DoneCallback = std::function<void()>;

    /** `track_prefix` namespaces the per-channel trace tracks (multi-
     *  SSD systems pass "ssd<d>." so device spans stay separable). */
    FlashArray(EventQueue &eq, const FlashParams &params, DataStore &store,
               const std::string &track_prefix = "");

    const FlashParams &params() const { return params_; }
    DataStore &store() { return store_; }

    /**
     * Read a physical page. The callback fires when the data has
     * crossed the channel bus into controller DRAM. `trace_id` tags
     * the channel/die span with the owning request. The callback is a
     * deferred body: a PPN captured into it is an issue-time snapshot
     * that GC or a racing write can remap before completion.
     */
    void readPage(Ppn ppn, ReadCallback done, std::uint64_t trace_id = 0)
        RECSSD_DEFERS_CALLBACK;

    /** Program a physical page with the given content. */
    void writePage(Ppn ppn, std::span<const std::byte> data,
                   DoneCallback done, std::uint64_t trace_id = 0)
        RECSSD_DEFERS_CALLBACK;

    /** Erase a whole block (identified by any PPN inside it). */
    void eraseBlock(Ppn any_ppn_in_block, DoneCallback done)
        RECSSD_DEFERS_CALLBACK;

    /** Earliest tick at which the given page's channel+die are free. */
    Tick backlogFor(Ppn ppn) const;

    /** @{ Fault-injection hooks (`src/fault`). */

    /**
     * Occupy one die for `duration` starting now (behind whatever is
     * already queued on it) — a die-level retry storm or suspended
     * program; reads to that die queue up behind the stall.
     */
    void stallDie(unsigned ch, unsigned die, Tick duration);

    /**
     * Until `until`, every array read started takes `factor`x its
     * nominal tR (retries scale too). Overlapping windows take the
     * largest factor.
     */
    void addReadInflation(Tick until, double factor);
    /** @} */

    /** @{ Stats. */
    std::uint64_t pageReads() const { return pageReads_.value(); }
    std::uint64_t pageWrites() const { return pageWrites_.value(); }
    std::uint64_t blockErases() const { return blockErases_.value(); }
    std::uint64_t readRetries() const { return readRetries_.value(); }
    std::uint64_t inflatedReads() const { return inflatedReads_.value(); }
    Tick channelBusyTime(unsigned ch) const;
    /** @} */

  private:
    SerialResource &channel(unsigned ch) { return *channels_[ch]; }
    SerialResource &die(unsigned ch, unsigned d)
    {
        return *dies_[ch * params_.diesPerChannel + d];
    }

    /** Array-read occupancy including injected read retries. */
    Tick arrayReadTime();

    /** Record die-track wait/busy spans for an op about to occupy the
     *  die (no-op when tracing is off). */
    void emitDieSpans(const FlashAddress &addr, Phase phase, Tick service,
                      std::uint64_t trace_id);

    /** One injected latency-inflation window. */
    struct InflationWindow
    {
        Tick until;
        double factor;
    };

    EventQueue &eq_;
    FlashParams params_;
    DataStore &store_;
    Rng retryRng_;
    std::vector<std::unique_ptr<SerialResource>> channels_;
    std::vector<std::unique_ptr<SerialResource>> dies_;
    /** Pre-built trace track names, one per channel. */
    std::vector<std::string> channelTrackNames_;
    /** Pre-built trace track names, one per die (parallel to dies_). */
    std::vector<std::string> dieTrackNames_;
    /** Active/pending inflation windows; empty on healthy devices. */
    std::vector<InflationWindow> inflations_;

    Counter pageReads_;
    Counter pageWrites_;
    Counter blockErases_;
    Counter readRetries_;
    Counter inflatedReads_;
};

}  // namespace recssd

#endif  // RECSSD_FLASH_FLASH_ARRAY_H
