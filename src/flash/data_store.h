/**
 * @file
 * Functional page contents for the simulated flash array.
 *
 * The evaluation tables are hundreds of gigabytes of *logical* data,
 * so the store keeps two tiers:
 *
 *  - explicitly written pages, held sparsely in memory (the real write
 *    path used by FTL/GC tests and small workloads), and
 *  - synthetic regions: PPN ranges whose content is produced on demand
 *    by a registered generator (used to "pre-load" embedding tables
 *    without materializing them).
 *
 * Reads can ask for a byte sub-range so a 256B embedding vector does
 *   not force a 16KB materialization.
 */

#ifndef RECSSD_FLASH_DATA_STORE_H
#define RECSSD_FLASH_DATA_STORE_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"

namespace recssd
{

/** Byte-level backing store for physical flash pages. */
class DataStore
{
  public:
    /**
     * Generator for synthetic page content.
     * @param page_in_region Page index relative to the region start.
     * @param offset Byte offset within the page being requested.
     * @param out Destination span to fill.
     */
    using Generator = std::function<void(std::uint64_t page_in_region,
                                         std::size_t offset,
                                         std::span<std::byte> out)>;

    explicit DataStore(unsigned page_size) : pageSize_(page_size) {}

    unsigned pageSize() const { return pageSize_; }

    /** Store explicit page content (copies the bytes). */
    void write(Ppn ppn, std::span<const std::byte> data);

    /**
     * Copy `out.size()` bytes starting at `offset` within the page.
     * Falls back to a synthetic region, then to zero fill.
     */
    void read(Ppn ppn, std::size_t offset, std::span<std::byte> out) const;

    /** Drop explicit content for a page (block erase path). */
    void erase(Ppn ppn);

    /** Register a synthetic region covering [start, start+pages). */
    void registerSynthetic(Ppn start, std::uint64_t pages, Generator gen);

    /** True if the page has explicitly written content. */
    bool hasStored(Ppn ppn) const { return stored_.contains(ppn); }

    /**
     * True if reading the page yields real content (explicit bytes or
     * a synthetic region) rather than the zero-fill fallback. A PPN
     * that was erased and not rewritten is not covered — the torn-sum
     * audit uses this to tell "legitimately old bytes" apart from
     * "destroyed bytes".
     */
    bool covered(Ppn ppn) const
    {
        return stored_.contains(ppn) || findRegion(ppn) != nullptr;
    }

    /** Number of explicitly stored pages. */
    std::size_t storedPages() const { return stored_.size(); }

  private:
    struct Region
    {
        std::uint64_t pages;
        Generator gen;
    };

    /** Find the synthetic region covering ppn, or nullptr. */
    const std::pair<const Ppn, Region> *findRegion(Ppn ppn) const;

    unsigned pageSize_;
    std::unordered_map<Ppn, std::vector<std::byte>> stored_;
    std::map<Ppn, Region> regions_;  // keyed by region start
};

}  // namespace recssd

#endif  // RECSSD_FLASH_DATA_STORE_H
