#include "src/reco/model_runner.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/embedding/synthetic_values.h"
#include "src/obs/tracer.h"

namespace recssd
{

namespace
{

/** Split `total` CPU work evenly across the host cores; `done` fires
 *  when every share completes (models a parallel GEMM). */
void
runParallel(HostCpu &cpu, Tick total, EventQueue::Callback done)
{
    unsigned shares = cpu.cores();
    auto remaining = std::make_shared<unsigned>(shares);
    Tick each = total / shares + 1;
    for (unsigned s = 0; s < shares; ++s) {
        cpu.run(each, [remaining, done]() {
            if (--*remaining == 0)
                done();
        });
    }
}

}  // namespace

/** In-flight state of one inference batch. */
struct BatchState
{
    Tick start = 0;
    /** Trace request id (0 when tracing is off). */
    std::uint64_t traceId = 0;
    SpanId rootSpan = invalidSpan;
    unsigned subBatchesLeft = 0;
    bool done = false;
    Tick latency = 0;
    /** Shape of the query this batch executes. */
    unsigned tablesTouched = ~0u;
    double poolingScale = 1.0;
    /** Per-sub-batch functional pieces (kept for functionalMlp). */
    Matrix scores;
    unsigned batchSize = 0;
    unsigned scoresFilled = 0;
    /** Any SLS op answered degraded (deadline / dead-end fill). */
    bool degraded = false;
    /** Completion hook for launchQueryEx callers. */
    std::function<void(Tick, bool)> onDone;
};

/** In-flight state of one sub-batch. */
struct SubBatchState
{
    unsigned size = 0;
    unsigned firstSample = 0;
    unsigned joinsLeft = 0;  ///< tables + bottom MLP
    Matrix dense;
    Matrix bottomOut;
    std::vector<SlsResult> pooled;  ///< per table
};

ModelRunner::ModelRunner(System &sys, const ModelConfig &model,
                         const RunnerOptions &options)
    : sys_(sys), model_(model), options_(options),
      denseRng_(options.seed ^ 0xDEADBEEF)
{
    // Instantiate tables with hybrid placement.
    for (const auto &group : model_.tables) {
        for (unsigned i = 0; i < group.count; ++i) {
            TableRt rt;
            bool on_ssd = options_.backend != EmbeddingBackendKind::Dram &&
                          (options_.forceAllTablesOnSsd ||
                           group.rows > options_.dramResidentMaxRows);
            if (on_ssd) {
                rt.desc = sys_.installTable(group.rows, group.dim,
                                            group.attrBytes,
                                            group.rowsPerPage);
            } else {
                rt.desc = sys_.describeDramTable(group.rows, group.dim,
                                                 group.attrBytes);
            }
            rt.onSsd = on_ssd;
            rt.lookups = group.lookups;
            TraceSpec spec = options_.trace;
            spec.universe = group.rows;
            spec.seed = options_.seed * 7919 + rt.desc.id * 104729 + 1;
            rt.gen = std::make_unique<TraceGenerator>(spec);
            tables_.push_back(std::move(rt));
        }
    }

    // Backends and caches. SSD backends are instantiated once per
    // device (each bound to that device's driver and queue allocator)
    // and wrapped in the scatter-gather shard fan-out; the host-side
    // cache/partition structures are shared across devices and keyed
    // by global row ids.
    dramBackend_ = std::make_unique<DramSlsBackend>(sys_.eq(), sys_.cpu());
    std::vector<SlsBackend *> per_shard;
    if (options_.backend == EmbeddingBackendKind::BaselineSsd) {
        if (options_.hostLruCache) {
            hostCache_ = std::make_unique<HostEmbeddingCache>(
                options_.hostCacheEntries);
        }
        BaselineSsdSlsBackend::Options bopt;
        bopt.hostCache = hostCache_.get();
        for (unsigned d = 0; d < sys_.numSsds(); ++d) {
            baselineBackends_.push_back(
                std::make_unique<BaselineSsdSlsBackend>(
                    sys_.eq(), sys_.cpu(), sys_.driver(d), sys_.queues(d),
                    bopt));
            per_shard.push_back(baselineBackends_.back().get());
        }
    } else if (options_.backend == EmbeddingBackendKind::Ndp) {
        if (options_.staticPartition) {
            partition_ = std::make_unique<StaticPartition>(
                options_.partitionEntries);
            buildPartition();
        }
        NdpSlsBackend::Options nopt;
        nopt.partition = partition_.get();
        for (unsigned d = 0; d < sys_.numSsds(); ++d) {
            ndpBackends_.push_back(std::make_unique<NdpSlsBackend>(
                sys_.eq(), sys_.cpu(), sys_.driver(d), sys_.queues(d),
                nopt));
            per_shard.push_back(ndpBackends_.back().get());
        }
    }
    if (!per_shard.empty()) {
        // The resilient wrapper replaces (never stacks on) the plain
        // sharded one, and only when the run actually asked for tail
        // tolerance — so replication=1/no-resil runs stay byte-
        // identical to the historical sharded path.
        if (options_.resil.active() || sys_.router().replication() > 1) {
            resilientBackend_ = std::make_unique<ResilientSlsBackend>(
                sys_.eq(), sys_.cpu(), sys_.router(), std::move(per_shard),
                options_.resil, hostCache_.get());
            resilientBackend_->setDeviceProbe([this](unsigned d) {
                return !sys_.ssd(d).controller().dead();
            });
        } else {
            shardedBackend_ = std::make_unique<ShardedSlsBackend>(
                sys_.eq(), sys_.cpu(), sys_.router(),
                std::move(per_shard));
        }
    }

    // Dense layers.
    if (!model_.bottomMlp.empty() && model_.denseInputs > 0) {
        bottomMlp_ = std::make_unique<Mlp>(model_.denseInputs,
                                           model_.bottomMlp,
                                           options_.seed + 11);
    }
    if (!model_.topMlp.empty()) {
        topMlp_ = std::make_unique<Mlp>(model_.topInputDim(), model_.topMlp,
                                        options_.seed + 13, true);
    }
}

unsigned
ModelRunner::ssdTables() const
{
    unsigned n = 0;
    for (const auto &t : tables_)
        n += t.onSsd ? 1 : 0;
    return n;
}

std::vector<EmbeddingTableDesc>
ModelRunner::ssdTableDescs() const
{
    std::vector<EmbeddingTableDesc> out;
    for (const auto &t : tables_) {
        if (t.onSsd)
            out.push_back(t.desc);
    }
    return out;
}

SlsBackend &
ModelRunner::backendFor(const TableRt &table)
{
    if (!table.onSsd || options_.backend == EmbeddingBackendKind::Dram)
        return *dramBackend_;
    // SSD tables always go through a shard wrapper; with one device
    // it forwards the op untouched to the single inner backend.
    if (resilientBackend_)
        return *resilientBackend_;
    recssd_assert(shardedBackend_ != nullptr,
                  "SSD table without SSD backend");
    return *shardedBackend_;
}

void
ModelRunner::buildPartition()
{
    // Profile a separate stream drawn from the same distribution
    // ("utilizing input data profiling", §4.2), then freeze the
    // hottest rows per table into host DRAM.
    for (auto &table : tables_) {
        if (!table.onSsd)
            continue;
        TraceSpec spec = table.gen->spec();
        spec.seed ^= 0x5055ULL;
        TraceGenerator profiler(spec);
        std::uint64_t draws = std::max<std::uint64_t>(
            20'000, std::uint64_t(options_.profileBatches) * 32 *
                        table.lookups);
        for (std::uint64_t i = 0; i < draws; ++i)
            partition_->profile(table.desc.id, profiler.next());
    }
    partition_->build([this](std::uint32_t table_id, RowId row) {
        for (const auto &t : tables_) {
            if (t.desc.id == table_id)
                return synthetic::vectorOf(t.desc, row);
        }
        panic("partition value for unknown table %u", table_id);
    });
}

void
ModelRunner::launchBatch(unsigned batch_size,
                         std::function<void(Tick)> done)
{
    QueryShape shape;
    shape.batchSize = batch_size;
    launchQuery(shape, std::move(done));
}

unsigned
ModelRunner::scaledLookups(const TableRt &table, double scale) const
{
    if (scale == 1.0)
        return table.lookups;
    auto scaled = static_cast<long long>(
        std::llround(static_cast<double>(table.lookups) * scale));
    return static_cast<unsigned>(std::max<long long>(1, scaled));
}

void
ModelRunner::launchQuery(const QueryShape &shape,
                         std::function<void(Tick)> done)
{
    launchQueryEx(shape, [done = std::move(done)](Tick latency, bool) {
        if (done)
            done(latency);
    });
}

void
ModelRunner::launchQueryEx(const QueryShape &shape,
                           std::function<void(Tick, bool)> done)
{
    unsigned batch_size = shape.batchSize;
    recssd_assert(batch_size > 0, "empty batch");
    recssd_assert(shape.poolingScale > 0.0, "pooling scale must be > 0");
    auto batch = std::make_shared<BatchState>();
    batch->start = sys_.eq().now();
    if (Tracer *tracer = tracerOf(sys_.eq())) {
        batch->traceId =
            shape.traceId ? shape.traceId : tracer->newRequestId();
        batch->rootSpan = tracer->beginRequest("batch", batch->traceId);
    }
    batch->batchSize = batch_size;
    batch->tablesTouched = shape.tablesTouched;
    batch->poolingScale = shape.poolingScale;
    batch->onDone = std::move(done);
    unsigned subs = options_.pipeline
                        ? std::max(1u, std::min<unsigned>(options_.subBatches,
                                                          batch_size))
                        : 1u;
    batch->subBatchesLeft = subs;
    if (options_.functionalMlp && topMlp_)
        batch->scores = Matrix(batch_size, 1);

    unsigned base = batch_size / subs;
    unsigned extra = batch_size % subs;
    unsigned first = 0;
    for (unsigned s = 0; s < subs; ++s) {
        unsigned size = base + (s < extra ? 1 : 0);
        launchSubBatch(size, first, batch);
        first += size;
    }
}

Tick
ModelRunner::runBatch(unsigned batch_size)
{
    Tick latency = 0;
    bool finished = false;
    launchBatch(batch_size, [&](Tick t) {
        latency = t;
        finished = true;
    });
    sys_.eq().run();
    recssd_assert(finished, "batch did not complete");
    return latency;
}

void
ModelRunner::launchSubBatch(unsigned size, unsigned first_sample,
                            const std::shared_ptr<BatchState> &batch)
{
    auto state = std::make_shared<SubBatchState>();
    state->size = size;
    state->firstSample = first_sample;
    // Joins: one per table's SLS op, plus one for the bottom MLP.
    state->joinsLeft = static_cast<unsigned>(tables_.size()) + 1;
    state->pooled.resize(tables_.size());

    auto join = [this, state, batch]() {
        if (--state->joinsLeft > 0)
            return;
        // Interaction + top MLP (+ the model's extra dense compute:
        // attention, GRUs, task towers).
        std::uint64_t top_macs =
            (topMlp_ ? topMlp_->macsPerSample() : 0) +
            model_.extraMacsPerSample;
        Tick top_work = sys_.cpu().gemmCost(top_macs * state->size);
        if (top_work == 0)
            top_work = 1;
        SpanId top_span = invalidSpan;
        if (Tracer *tracer = tracerOf(sys_.eq())) {
            top_span = tracer->begin(tracer->track("host.mlp"), "top_mlp",
                                     Phase::HostCompute, batch->traceId);
        }
        runParallel(sys_.cpu(), top_work, [this, state, batch, top_span]() {
            if (Tracer *tracer = tracerOf(sys_.eq()))
                tracer->end(top_span);
            if (options_.functionalMlp && topMlp_) {
                // Concatenate bottom output and pooled embeddings.
                std::size_t top_in = model_.topInputDim();
                Matrix input(state->size, top_in);
                for (unsigned r = 0; r < state->size; ++r) {
                    std::size_t c = 0;
                    if (state->bottomOut.rows > 0) {
                        for (std::size_t i = 0; i < state->bottomOut.cols;
                             ++i)
                            input.at(r, c++) = state->bottomOut.at(r, i);
                    } else if (model_.denseInputs > 0) {
                        for (std::size_t i = 0; i < state->dense.cols; ++i)
                            input.at(r, c++) = state->dense.at(r, i);
                    }
                    for (std::size_t t = 0; t < tables_.size(); ++t) {
                        const auto &pooled = state->pooled[t];
                        std::uint32_t dim = tables_[t].desc.dim;
                        for (std::uint32_t e = 0; e < dim; ++e)
                            input.at(r, c++) = pooled[r * dim + e];
                    }
                    recssd_assert(c == top_in, "interaction width mismatch");
                }
                Matrix out = topMlp_->forward(input);
                for (unsigned r = 0; r < state->size; ++r)
                    batch->scores.at(state->firstSample + r, 0) =
                        out.at(r, 0);
                batch->scoresFilled += state->size;
            }
            if (--batch->subBatchesLeft == 0) {
                batch->done = true;
                batch->latency = sys_.eq().now() - batch->start;
                if (Tracer *tracer = tracerOf(sys_.eq()))
                    tracer->end(batch->rootSpan);
                if (options_.functionalMlp && topMlp_)
                    lastScores_ = batch->scores;
                if (batch->onDone)
                    batch->onDone(batch->latency, batch->degraded);
            }
        });
    };

    // Dense features + bottom MLP.
    if (model_.denseInputs > 0) {
        state->dense = Matrix(size, model_.denseInputs);
        for (auto &v : state->dense.data)
            v = static_cast<float>(denseRng_.uniformDouble());
    }
    Tick bottom_work =
        bottomMlp_ ? sys_.cpu().gemmCost(bottomMlp_->macsPerSample() * size)
                   : 1;
    SpanId bottom_span = invalidSpan;
    if (Tracer *tracer = tracerOf(sys_.eq())) {
        bottom_span = tracer->begin(tracer->track("host.mlp"), "bottom_mlp",
                                    Phase::HostCompute, batch->traceId);
    }
    runParallel(sys_.cpu(), bottom_work, [this, state, join, bottom_span]() {
        if (Tracer *tracer = tracerOf(sys_.eq()))
            tracer->end(bottom_span);
        if (options_.functionalMlp && bottomMlp_)
            state->bottomOut = bottomMlp_->forward(state->dense);
        join();
    });

    // Embedding operations, one per table. Tables beyond the query's
    // tablesTouched horizon run with empty index lists: the operator
    // still dispatches (and the result keeps its layout) but gathers
    // nothing, which is how sparse queries skip feature groups.
    for (std::size_t t = 0; t < tables_.size(); ++t) {
        TableRt &table = tables_[t];
        SlsOp op;
        op.table = &table.desc;
        op.traceId = batch->traceId;
        if (t < batch->tablesTouched) {
            op.indices = table.gen->nextBatch(
                size, scaledLookups(table, batch->poolingScale));
        } else {
            op.indices.assign(size, {});
        }
        SlsBackend &backend = backendFor(table);
        if (&backend == resilientBackend_.get()) {
            // Full-fidelity entry point: the degraded flag survives
            // up to the batch completion.
            resilientBackend_->runResil(
                op, [state, t, join, batch](SlsResult result,
                                            bool degraded) {
                    if (degraded)
                        batch->degraded = true;
                    state->pooled[t] = std::move(result);
                    join();
                });
        } else {
            backend.run(op, [state, t, join](SlsResult result) {
                state->pooled[t] = std::move(result);
                join();
            });
        }
    }
}

RunStats
ModelRunner::measure(unsigned batch_size, unsigned warmup_batches,
                     unsigned batches)
{
    for (unsigned i = 0; i < warmup_batches; ++i)
        runBatch(batch_size);

    if (hostCache_)
        hostCache_->resetStats();
    if (partition_)
        partition_->resetStats();
    std::uint64_t flash_before = 0;
    std::uint64_t pc_hits_before = 0;
    std::uint64_t pc_misses_before = 0;
    std::uint64_t tier_hits_before = 0;
    std::uint64_t tier_misses_before = 0;
    for (unsigned d = 0; d < sys_.numSsds(); ++d) {
        if (auto *cache = sys_.ssd(d).slsEngine().embeddingCache())
            cache->resetStats();
        flash_before += sys_.ssd(d).flash().pageReads();
        pc_hits_before += sys_.ssd(d).ftl().pageCache().hits();
        pc_misses_before += sys_.ssd(d).ftl().pageCache().misses();
        if (const LayoutManager *lay = sys_.ssd(d).ftl().layout()) {
            tier_hits_before += lay->tier().hits();
            tier_misses_before += lay->tier().misses();
        }
    }

    RunStats stats;
    stats.batches = batches;
    double total = 0.0;
    double lo = 1e300;
    double hi = 0.0;
    for (unsigned i = 0; i < batches; ++i) {
        double us = ticksToUs(runBatch(batch_size));
        total += us;
        lo = std::min(lo, us);
        hi = std::max(hi, us);
    }
    stats.avgLatencyUs = total / batches;
    stats.minLatencyUs = lo;
    stats.maxLatencyUs = hi;
    if (hostCache_)
        stats.hostCacheHitRate = hostCache_->hitRate();
    if (partition_)
        stats.partitionHitRate = partition_->hitRate();
    std::uint64_t flash_after = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_total = 0;
    std::uint64_t pc_hits = 0;
    std::uint64_t pc_misses = 0;
    std::uint64_t tier_hits = 0;
    std::uint64_t tier_misses = 0;
    for (unsigned d = 0; d < sys_.numSsds(); ++d) {
        flash_after += sys_.ssd(d).flash().pageReads();
        if (auto *cache = sys_.ssd(d).slsEngine().embeddingCache()) {
            cache_hits += cache->hits();
            cache_total += cache->hits() + cache->misses();
        }
        pc_hits += sys_.ssd(d).ftl().pageCache().hits();
        pc_misses += sys_.ssd(d).ftl().pageCache().misses();
        if (const LayoutManager *lay = sys_.ssd(d).ftl().layout()) {
            tier_hits += lay->tier().hits();
            tier_misses += lay->tier().misses();
        }
    }
    if (cache_total > 0) {
        stats.ssdEmbedCacheHitRate =
            static_cast<double>(cache_hits) / cache_total;
    }
    pc_hits -= pc_hits_before;
    pc_misses -= pc_misses_before;
    tier_hits -= tier_hits_before;
    tier_misses -= tier_misses_before;
    if (pc_hits + pc_misses > 0) {
        stats.ssdPageCacheHitRate =
            static_cast<double>(pc_hits) / (pc_hits + pc_misses);
    }
    if (tier_hits + tier_misses > 0) {
        stats.hotTierHitRate =
            static_cast<double>(tier_hits) / (tier_hits + tier_misses);
    }
    stats.flashPageReads = flash_after - flash_before;
    return stats;
}

}  // namespace recssd
