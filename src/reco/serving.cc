#include "src/reco/serving.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/logging.h"
#include "src/common/random.h"

namespace recssd
{

ServingStats
runOpenLoop(ModelRunner &runner, const ServingConfig &config)
{
    recssd_assert(config.qps > 0.0, "arrival rate must be positive");
    System &sys = runner.sys();
    EventQueue &eq = sys.eq();

    struct Harness
    {
        Rng rng;
        std::vector<double> samples;
        SampleStat stat;
        unsigned issued = 0;
        unsigned completed = 0;
        unsigned sloMet = 0;
        Tick measureStart = 0;
        Tick lastDone = 0;

        explicit Harness(std::uint64_t seed) : rng(seed) {}
    };
    auto h = std::make_shared<Harness>(config.seed);
    const unsigned total = config.warmupQueries + config.queries;
    const double mean_gap_ns =
        static_cast<double>(sec) / config.qps;

    // Arrival process: each arrival schedules the next with an
    // exponential gap (Poisson process). The recursive closure lives
    // in a shared holder so later firings outlive this frame.
    auto stable = std::make_shared<std::function<void()>>();
    *stable = [&runner, &eq, h, total, mean_gap_ns, config, stable]() {
        unsigned idx = h->issued++;
        if (idx == config.warmupQueries)
            h->measureStart = eq.now();
        runner.launchBatch(config.batchSize,
                           [h, idx, config, &eq](Tick latency) {
                               ++h->completed;
                               h->lastDone = eq.now();
                               if (idx >= config.warmupQueries) {
                                   h->samples.push_back(
                                       ticksToUs(latency));
                                   h->stat.record(ticksToUs(latency));
                                   if (latency <= config.latencySlo)
                                       ++h->sloMet;
                               }
                           });
        if (h->issued < total) {
            Tick gap = static_cast<Tick>(
                h->rng.exponential(mean_gap_ns));
            eq.scheduleAfter(gap, *stable);
        }
    };
    (*stable)();
    sys.run();
    recssd_assert(h->completed == total, "open loop lost queries");

    ServingStats out;
    out.meanLatencyUs = h->stat.mean();
    out.maxLatencyUs = h->stat.max();
    std::sort(h->samples.begin(), h->samples.end());
    auto pct = [&](double q) {
        if (h->samples.empty())
            return 0.0;
        auto idx = static_cast<std::size_t>(q * (h->samples.size() - 1));
        return h->samples[idx];
    };
    out.p50Us = pct(0.50);
    out.p95Us = pct(0.95);
    out.p99Us = pct(0.99);
    out.sloAttainment =
        static_cast<double>(h->sloMet) / config.queries;
    Tick span = h->lastDone > h->measureStart
                    ? h->lastDone - h->measureStart
                    : 1;
    out.achievedQps = static_cast<double>(config.queries) /
                      (static_cast<double>(span) / sec);
    return out;
}

}  // namespace recssd
