#include "src/reco/serving.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/analysis.h"
#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/obs/metrics.h"
#include "src/reco/update_flusher.h"

namespace recssd
{

ServingStats
runOpenLoop(ModelRunner &runner, const ServingConfig &config)
{
    recssd_assert(config.qps > 0.0, "arrival rate must be positive");
    System &sys = runner.sys();
    EventQueue &eq = sys.eq();

    struct Harness
    {
        Rng rng;
        std::vector<double> samples;
        SampleStat stat;
        unsigned issued = 0;
        unsigned completed = 0;
        unsigned sloMet = 0;
        Tick measureStart = 0;
        Tick lastDone = 0;

        explicit Harness(std::uint64_t seed) : rng(seed) {}
    };
    auto h = std::make_shared<Harness>(config.seed);
    const unsigned total = config.warmupQueries + config.queries;
    const double mean_gap_ns =
        static_cast<double>(sec) / config.qps;

    // Arrival process: each arrival schedules the next with an
    // exponential gap (Poisson process). The recursive closure lives
    // in a shared holder so later firings outlive this frame.
    auto stable = std::make_shared<std::function<void()>>();
    *stable = [&runner, &eq, h, total, mean_gap_ns, config, stable]() {
        unsigned idx = h->issued++;
        if (idx == config.warmupQueries)
            h->measureStart = eq.now();
        runner.launchBatch(config.batchSize,
                           [h, idx, config, &eq](Tick latency) {
                               ++h->completed;
                               h->lastDone = eq.now();
                               if (idx >= config.warmupQueries) {
                                   h->samples.push_back(
                                       ticksToUs(latency));
                                   h->stat.record(ticksToUs(latency));
                                   if (latency <= config.latencySlo)
                                       ++h->sloMet;
                               }
                           });
        if (h->issued < total) {
            Tick gap = static_cast<Tick>(
                h->rng.exponential(mean_gap_ns));
            eq.scheduleAfter(gap, *stable);
        }
    };
    (*stable)();
    sys.run();
    recssd_assert(h->completed == total, "open loop lost queries");

    ServingStats out;
    out.meanLatencyUs = h->stat.mean();
    out.maxLatencyUs = h->stat.max();
    std::sort(h->samples.begin(), h->samples.end());
    auto pct = [&](double q) {
        if (h->samples.empty())
            return 0.0;
        auto idx = static_cast<std::size_t>(q * (h->samples.size() - 1));
        return h->samples[idx];
    };
    out.p50Us = pct(0.50);
    out.p95Us = pct(0.95);
    out.p99Us = pct(0.99);
    out.sloAttainment =
        static_cast<double>(h->sloMet) / config.queries;
    Tick span = h->lastDone > h->measureStart
                    ? h->lastDone - h->measureStart
                    : 1;
    out.achievedQps = static_cast<double>(config.queries) /
                      (static_cast<double>(span) / sec);
    return out;
}

BatchScheduler::BatchScheduler(ModelRunner &runner,
                               const BatchPolicy &policy)
    : runner_(runner), policy_(policy)
{
    recssd_assert(policy_.maxBatchSamples > 0, "zero fused-batch cap");
    recssd_assert(policy_.maxInFlight > 0, "zero in-flight cap");
}

void
BatchScheduler::submit(const QueryShape &shape, QueryDone done)
{
    std::uint64_t trace_id = 0;
    SpanId root = invalidSpan;
    if (Tracer *tracer = tracerOf(runner_.sys().eq())) {
        trace_id = tracer->newRequestId();
        root = tracer->beginRequest("query", trace_id);
    }
    submitTagged(shape, std::move(done), trace_id, root);
}

void
BatchScheduler::submitTagged(const QueryShape &shape, QueryDone done,
                             std::uint64_t traceId, SpanId rootSpan)
{
    recssd_assert(shape.batchSize > 0, "empty query");
    PendingQuery p;
    p.shape = shape;
    p.arrival = runner_.sys().eq().now();
    p.done = std::move(done);
    p.traceId = traceId;
    p.rootSpan = rootSpan;
    pending_.push_back(std::move(p));
    pendingSamples_ += shape.batchSize;
    maxDepth_ = std::max(maxDepth_,
                         static_cast<unsigned>(pending_.size()));
    maybeDispatch();
}

void
BatchScheduler::maybeDispatch()
{
    EventQueue &eq = runner_.sys().eq();
    while (!pending_.empty() && inFlight_ < policy_.maxInFlight &&
           (pendingSamples_ >= policy_.maxBatchSamples ||
            eq.now() - pending_.front().arrival >= policy_.maxWait)) {
        dispatchOne();
    }
    if (!pending_.empty() && inFlight_ < policy_.maxInFlight)
        armTimer();
}

void
BatchScheduler::armTimer()
{
    EventQueue &eq = runner_.sys().eq();
    Tick due = pending_.front().arrival + policy_.maxWait;
    if (due < eq.now())
        due = eq.now();
    // An armed timer that fires no later than `due` still covers us:
    // its callback re-evaluates and re-arms.
    if (timerArmed_ && timerDue_ <= due)
        return;
    timerArmed_ = true;
    timerDue_ = due;
    std::uint64_t gen = ++timerGen_;
    eq.schedule(due, [this, gen]() {
        if (gen != timerGen_)
            return;  // superseded by a later arm
        timerArmed_ = false;
        maybeDispatch();
    });
}

void
BatchScheduler::dispatchOne()
{
    EventQueue &eq = runner_.sys().eq();
    Tick dispatch = eq.now();

    // Fuse queries from the head of the queue, never splitting one.
    auto members = std::make_shared<std::vector<PendingQuery>>();
    unsigned samples = 0;
    unsigned tables = 0;
    double weighted_scale = 0.0;
    while (!pending_.empty()) {
        unsigned next = pending_.front().shape.batchSize;
        if (!members->empty() && samples + next > policy_.maxBatchSamples)
            break;
        // Tenant-aware formation: never fuse incompatible shapes (a
        // co-rider with heavier pooling or wider table fan-out would
        // inflate everyone's service time).
        if (policy_.tenantAware && !members->empty() &&
            (pending_.front().shape.tablesTouched !=
                 members->front().shape.tablesTouched ||
             pending_.front().shape.poolingScale !=
                 members->front().shape.poolingScale))
            break;
        PendingQuery p = std::move(pending_.front());
        pending_.pop_front();
        pendingSamples_ -= next;
        samples += next;
        tables = std::max(tables, p.shape.tablesTouched);
        weighted_scale += static_cast<double>(next) * p.shape.poolingScale;
        members->push_back(std::move(p));
        if (samples >= policy_.maxBatchSamples)
            break;
    }

    QueryShape fused;
    fused.batchSize = samples;
    fused.tablesTouched = tables;
    fused.poolingScale = weighted_scale / static_cast<double>(samples);

    // Trace identity: the fused batch gets its own request id; each
    // member query records its scheduler-queue wait and is linked to
    // the batch that carries it.
    if (Tracer *tracer = tracerOf(eq)) {
        fused.traceId = tracer->newRequestId();
        TrackId sched = tracer->track("scheduler");
        for (const auto &m : *members) {
            tracer->span(sched, "sched_queue", Phase::SchedQueue, m.traceId,
                         m.arrival, dispatch);
            tracer->setRequestParent(m.traceId, fused.traceId);
        }
    }

    ++inFlight_;
    ++dispatched_;
    dispatchedSamples_ += samples;
    runner_.launchQueryEx(fused, [this, members, dispatch](Tick,
                                                           bool degraded) {
        Tick complete = runner_.sys().eq().now();
        Tracer *tracer = tracerOf(runner_.sys().eq());
        for (auto &m : *members) {
            if (tracer)
                tracer->end(m.rootSpan);
            QueryTimes t;
            t.arrival = m.arrival;
            t.dispatch = dispatch;
            t.complete = complete;
            t.degraded = degraded;
            m.done(t);
        }
        recssd_assert(inFlight_ > 0, "in-flight underflow");
        --inFlight_;
        maybeDispatch();
    });
}

ServeStats
runServe(ModelRunner &runner, const ServeConfig &config)
{
    System &sys = runner.sys();
    EventQueue &eq = sys.eq();
    const unsigned total = config.warmupQueries + config.queries;
    recssd_assert(config.queries > 0, "nothing to measure");

    BatchScheduler scheduler(runner, config.batching);
    LoadGenerator gen(config.arrivals, config.shape, config.seed);
    auto arrivals = gen.schedule(total);

    struct Measure
    {
        LatencyRecorder latency;
        LatencyRecorder queueing;
        LatencyRecorder service;
        unsigned completed = 0;
        unsigned sloMet = 0;
        unsigned degraded = 0;
        Tick lastDone = 0;
    };
    auto m = std::make_shared<Measure>();

    // Windowed SLO monitor (opt-in). Shared ownership: the stat
    // registry getters below may outlive this frame.
    std::shared_ptr<SloMonitor> mon;
    if (config.slo.enabled)
        mon = std::make_shared<SloMonitor>(config.slo);

    // Online-update stream (opt-in). Shared ownership: the registry
    // getters below may outlive this frame. Write-path device counters
    // snapshot before and after so WA is a whole-run delta.
    std::shared_ptr<UpdateFlusher> updates;
    struct WriteSnap
    {
        std::uint64_t hostWrites = 0;
        std::uint64_t flashWrites = 0;
        std::uint64_t erases = 0;
        std::uint64_t gcRuns = 0;
        std::uint64_t gcMigrated = 0;
        std::uint64_t fenceRedirects = 0;
    };
    auto snapWrites = [&sys]() {
        WriteSnap s;
        for (unsigned d = 0; d < sys.numSsds(); ++d) {
            Ssd &ssd = sys.ssd(d);
            s.hostWrites += ssd.ftl().hostWrites();
            s.flashWrites += ssd.flash().pageWrites();
            s.erases += ssd.flash().blockErases();
            s.gcRuns += ssd.ftl().gcRuns();
            s.gcMigrated += ssd.ftl().gcPagesMigrated();
            s.fenceRedirects += ssd.slsEngine().fenceRedirects();
        }
        return s;
    };
    WriteSnap writes_before;
    if (config.updates.enabled()) {
        updates = std::make_shared<UpdateFlusher>(
            sys, runner.ssdTableDescs(), config.updates, config.seed);
        writes_before = snapWrites();
    }

    // Host-vs-SSD split accounting over the whole run: lookups the
    // host LRU cache / static partition absorb never reach the SSD.
    std::uint64_t host_before = 0;
    std::uint64_t total_before = 0;
    auto splitCounters = [&runner](std::uint64_t &host, std::uint64_t &all) {
        host = 0;
        all = 0;
        if (auto *cache = runner.hostCache()) {
            host += cache->hits();
            all += cache->hits() + cache->misses();
        }
        if (auto *part = runner.partition()) {
            host += part->hits();
            all += part->hits() + part->misses();
        }
    };
    splitCounters(host_before, total_before);

    // Arrival ticks are relative to the start of the run; rebase on
    // the current clock so callers may warm the system up (prefill,
    // profiling) before serving. Zero-base runs are unchanged.
    const Tick base = eq.now();
    for (unsigned i = 0; i < total; ++i) {
        const QueryDesc &q = arrivals[i];
        eq.schedule(base + q.arrival, [&scheduler, &config, m, mon, i,
                                       shape = q.shape]() {
            RECSSD_CAPTURES_MAPPING("scheduler/config are the serve "
                                    "harness's stack objects; runServe "
                                    "drains the queue before returning");
            scheduler.submit(shape, [&config, m, mon,
                                     i](const QueryTimes &t) {
                ++m->completed;
                m->lastDone = t.complete;
                if (i < config.warmupQueries)
                    return;
                // Event processing is completion-time ordered, which
                // is exactly the order the monitor requires.
                if (mon)
                    mon->record(t.complete, t.complete - t.arrival);
                m->latency.record(t.complete - t.arrival);
                m->queueing.record(t.dispatch - t.arrival);
                m->service.record(t.complete - t.dispatch);
                if (t.degraded)
                    ++m->degraded;
                if (t.complete - t.arrival <= config.latencySlo)
                    ++m->sloMet;
            });
        });
    }
    // Mixed read-write serving: the update stream spans the query
    // arrival horizon, so write traffic races reads for NVMe queues,
    // firmware CPU, flash dies — and feeds GC.
    if (updates)
        updates->scheduleUntil(arrivals.back().arrival);

    // The measurement window opens when the first measured query
    // arrives (its arrival tick is known up front).
    Tick measure_start =
        config.warmupQueries < total
            ? base + arrivals[config.warmupQueries].arrival
            : base;
    sys.run();
    recssd_assert(m->completed == total,
                  "serving path lost queries: %u of %u completed",
                  m->completed, total);

    ServeStats out;
    out.meanLatencyUs = m->latency.meanUs();
    out.maxLatencyUs = m->latency.maxUs();
    out.p50Us = m->latency.percentileUs(0.50);
    out.p95Us = m->latency.percentileUs(0.95);
    out.p99Us = m->latency.percentileUs(0.99);
    out.p999Us = m->latency.percentileUs(0.999);
    out.degradedQueries = m->degraded;
    out.meanQueueUs = m->queueing.meanUs();
    out.meanServiceUs = m->service.meanUs();
    out.sloAttainment = m->latency.fractionWithin(config.latencySlo);
    out.completedQueries = static_cast<unsigned>(m->latency.count());
    Tick span = m->lastDone > measure_start ? m->lastDone - measure_start
                                            : 1;
    out.achievedQps = static_cast<double>(config.queries) /
                      (static_cast<double>(span) / sec);
    out.batchesDispatched = scheduler.batchesDispatched();
    out.avgCoalescedSamples = scheduler.avgCoalescedSamples();
    out.maxSchedulerDepth = scheduler.maxQueueDepth();

    std::uint64_t host_after = 0;
    std::uint64_t total_after = 0;
    splitCounters(host_after, total_after);
    if (total_after > total_before) {
        out.hostServedFraction =
            static_cast<double>(host_after - host_before) /
            static_cast<double>(total_after - total_before);
    } else if (runner.options().backend == EmbeddingBackendKind::Dram) {
        out.hostServedFraction = 1.0;
    }

    UnvmeDriver &driver = sys.driver();
    for (unsigned q = 0; q < driver.numQueues(); ++q) {
        out.commandsPerQueue.push_back(driver.commandsOnQueue(q));
        out.maxDepthPerQueue.push_back(driver.queuePair(q).maxOutstanding());
    }
    for (unsigned d = 0; d < sys.numSsds(); ++d) {
        ServeStats::DeviceStats ds;
        UnvmeDriver &drv = sys.driver(d);
        for (unsigned q = 0; q < drv.numQueues(); ++q) {
            ds.commandsPerQueue.push_back(drv.commandsOnQueue(q));
            ds.maxDepthPerQueue.push_back(
                drv.queuePair(q).maxOutstanding());
        }
        const LatencyRecorder *lat = nullptr;
        if (auto *sharded = runner.shardedBackend()) {
            lat = &sharded->shardLatency(d);
        } else if (auto *resil = runner.resilientBackend()) {
            lat = &resil->shardLatency(d);
            ds.lateCompletions = resil->lateCompletionsOn(d);
        }
        if (lat) {
            ds.subOps = lat->count();
            if (ds.subOps > 0) {
                ds.subOpP50Us = lat->percentileUs(0.50);
                ds.subOpP95Us = lat->percentileUs(0.95);
                ds.subOpP99Us = lat->percentileUs(0.99);
                ds.subOpP999Us = lat->percentileUs(0.999);
                ds.subOpMaxUs = lat->maxUs();
            }
        }
        out.perDevice.push_back(std::move(ds));
    }
    if (auto *sharded = runner.shardedBackend())
        out.scatteredOps = sharded->scatteredOps();
    if (auto *resil = runner.resilientBackend()) {
        out.scatteredOps = resil->scatteredOps();
        out.hedgesFired = resil->hedgesFired();
        out.hedgeWins = resil->hedgeWins();
        out.duplicateCompletions = resil->duplicateCompletions();
        out.deadlineMisses = resil->deadlineMisses();
        out.failovers = resil->failovers();
        out.ejectedDevices = resil->unhealthyDevices();
    }
    if (mon) {
        mon->finish();
        for (const SloMonitor::Window &w : mon->windows()) {
            ServeStats::SloWindow sw;
            sw.startUs = ticksToUs(w.start);
            sw.queries = w.queries;
            sw.attainment = w.attainment();
            sw.p50Us = w.p50Us;
            sw.p99Us = w.p99Us;
            sw.burnRate = mon->burnRate(w.attainment());
            out.sloWindows.push_back(sw);
        }
        out.sloMonitorAttainment = mon->overallAttainment();
        out.errorBudgetBurnRate = mon->overallBurnRate();
        out.worstWindowBurnRate = mon->worstWindowBurnRate();

        // Surface the monitor in the stat registry so stats JSON and
        // the metric sampler pick it up; the getters share ownership
        // of the (now finished) monitor. Default runs never reach
        // here, so registry contents stay byte-identical.
        StatRegistry &reg = sys.statsMut();
        reg.addScalar("serve.slo", "windows", [mon]() {
            return static_cast<double>(mon->windows().size());
        });
        reg.addScalar("serve.slo", "attainment", [mon]() {
            return mon->overallAttainment();
        });
        reg.addScalar("serve.slo", "burn_rate", [mon]() {
            return mon->overallBurnRate();
        });
        reg.addScalar("serve.slo", "worst_window_burn_rate", [mon]() {
            return mon->worstWindowBurnRate();
        });
    }
    if (updates) {
        WriteSnap after = snapWrites();
        ServeStats::UpdateStats &u = out.update;
        u.submitted = updates->submitted();
        u.applied = updates->applied();
        u.replicaWrites = updates->replicaWrites();
        u.flushes = updates->flushes();
        u.skippedDeadDevice = updates->skippedDeadDevice();
        if (updates->flushLatency().count() > 0) {
            u.meanFlushUs = updates->flushLatency().meanUs();
            u.p99FlushUs = updates->flushLatency().percentileUs(0.99);
        }
        u.hostPageWrites = after.hostWrites - writes_before.hostWrites;
        u.flashPageWrites = after.flashWrites - writes_before.flashWrites;
        u.blockErases = after.erases - writes_before.erases;
        u.gcRuns = after.gcRuns - writes_before.gcRuns;
        u.gcPagesMigrated = after.gcMigrated - writes_before.gcMigrated;
        u.fenceRedirects =
            after.fenceRedirects - writes_before.fenceRedirects;
        if (u.hostPageWrites > 0) {
            u.writeAmplification =
                static_cast<double>(u.flashPageWrites) /
                static_cast<double>(u.hostPageWrites);
        }

        // Surface the update stream in the stat registry (stats JSON
        // + metric sampler). The getters snapshot the finished run and
        // share ownership of the flusher. Update-free runs never reach
        // here, so registry contents stay byte-identical to the seed.
        StatRegistry &reg = sys.statsMut();
        auto shared = std::make_shared<ServeStats::UpdateStats>(u);
        reg.addScalar("serve.update", "submitted", [shared]() {
            return static_cast<double>(shared->submitted);
        });
        reg.addScalar("serve.update", "applied", [shared]() {
            return static_cast<double>(shared->applied);
        });
        reg.addScalar("serve.update", "replica_writes", [shared]() {
            return static_cast<double>(shared->replicaWrites);
        });
        reg.addScalar("serve.update", "flushes", [shared]() {
            return static_cast<double>(shared->flushes);
        });
        reg.addScalar("serve.update", "skipped_dead", [shared]() {
            return static_cast<double>(shared->skippedDeadDevice);
        });
        reg.addScalar("serve.update", "host_page_writes", [shared]() {
            return static_cast<double>(shared->hostPageWrites);
        });
        reg.addScalar("serve.update", "flash_page_writes", [shared]() {
            return static_cast<double>(shared->flashPageWrites);
        });
        reg.addScalar("serve.update", "write_amplification", [shared]() {
            return shared->writeAmplification;
        });
        reg.addScalar("serve.update", "gc_runs", [shared]() {
            return static_cast<double>(shared->gcRuns);
        });
        reg.addScalar("serve.update", "fence_redirects", [shared]() {
            return static_cast<double>(shared->fenceRedirects);
        });
    }
    return out;
}

}  // namespace recssd
