#include "src/reco/model_config.h"

#include "src/common/logging.h"
#include "src/reco/mlp.h"

namespace recssd
{

unsigned
ModelConfig::numTables() const
{
    unsigned n = 0;
    for (const auto &g : tables)
        n += g.count;
    return n;
}

std::uint64_t
ModelConfig::lookupsPerSample() const
{
    std::uint64_t n = 0;
    for (const auto &g : tables)
        n += std::uint64_t(g.count) * g.lookups;
    return n;
}

std::size_t
ModelConfig::topInputDim() const
{
    std::size_t dim = bottomMlp.empty()
                          ? denseInputs
                          : bottomMlp.back();
    for (const auto &g : tables)
        dim += std::size_t(g.count) * g.dim;
    return dim;
}

std::uint64_t
ModelConfig::mlpMacsPerSample() const
{
    std::uint64_t macs = extraMacsPerSample;
    if (!bottomMlp.empty())
        macs += mlpMacs(denseInputs, bottomMlp);
    if (!topMlp.empty())
        macs += mlpMacs(topInputDim(), topMlp);
    return macs;
}

const std::vector<ModelConfig> &
modelZoo()
{
    static const std::vector<ModelConfig> zoo = [] {
        std::vector<ModelConfig> models;

        // ---- Embedding-dominated (Table 1 parameters) ----
        {
            ModelConfig m;
            m.name = "RM1";  // DLRM-RMC1
            m.tables = {TableGroup{8, 1'000'000, 32, 80}};
            m.denseInputs = 32;
            m.bottomMlp = {64, 32};
            m.topMlp = {128, 64, 1};
            m.embeddingDominated = true;
            models.push_back(m);
        }
        {
            ModelConfig m;
            m.name = "RM2";  // DLRM-RMC2
            m.tables = {TableGroup{32, 1'000'000, 64, 120}};
            m.denseInputs = 64;
            m.bottomMlp = {128, 64};
            m.topMlp = {256, 128, 1};
            m.embeddingDominated = true;
            models.push_back(m);
        }
        {
            ModelConfig m;
            m.name = "RM3";  // DLRM-RMC3
            m.tables = {TableGroup{10, 1'000'000, 32, 20}};
            m.denseInputs = 32;
            m.bottomMlp = {64, 32};
            m.topMlp = {128, 64, 1};
            m.embeddingDominated = true;
            models.push_back(m);
        }

        // ---- MLP-dominated ----
        {
            ModelConfig m;
            m.name = "WND";  // Wide and Deep
            m.tables = {TableGroup{7, 65'536, 64, 1},
                        TableGroup{1, 1'000'000, 64, 1}};
            m.denseInputs = 512;
            m.bottomMlp = {};
            m.topMlp = {1024, 1024, 512, 256, 1};
            models.push_back(m);
        }
        {
            ModelConfig m;
            m.name = "MTWND";  // Multi-Task Wide and Deep
            m.tables = {TableGroup{7, 65'536, 64, 1},
                        TableGroup{1, 1'000'000, 64, 1}};
            m.denseInputs = 512;
            m.bottomMlp = {};
            m.topMlp = {1024, 1024, 512, 256, 1};
            // Two extra task towers of 256->128->1.
            m.extraMacsPerSample = 2 * (256ull * 128 + 128);
            models.push_back(m);
        }
        {
            ModelConfig m;
            m.name = "DIN";  // Deep Interest Network
            m.tables = {TableGroup{8, 65'536, 64, 2},
                        TableGroup{1, 1'000'000, 64, 1}};
            m.denseInputs = 256;
            m.bottomMlp = {};
            m.topMlp = {1024, 512, 256, 1};
            // Local-activation attention over a 16-item history.
            m.extraMacsPerSample = 16ull * 64 * 64 * 2;
            models.push_back(m);
        }
        {
            ModelConfig m;
            m.name = "DIEN";  // Deep Interest Evolution Network
            m.tables = {TableGroup{4, 65'536, 64, 2},
                        TableGroup{1, 1'000'000, 64, 2}};
            m.denseInputs = 256;
            m.bottomMlp = {};
            m.topMlp = {512, 256, 128, 1};
            // GRU + AUGRU over a 32-step behaviour sequence:
            // 2 passes x 32 steps x 3 gates x 64x64 MACs x 2 (input +
            // recurrent weights).
            m.extraMacsPerSample = 2ull * 32 * 3 * 64 * 64 * 2;
            models.push_back(m);
        }
        {
            ModelConfig m;
            m.name = "NCF";  // Neural Collaborative Filtering
            // User/item tables for the MF and MLP branches; all small
            // enough to stay host resident in the hybrid placement.
            m.tables = {TableGroup{4, 262'144, 64, 1}};
            m.denseInputs = 0;
            m.bottomMlp = {};
            m.topMlp = {256, 128, 64, 1};
            models.push_back(m);
        }
        return models;
    }();
    return zoo;
}

const ModelConfig &
modelByName(const std::string &name)
{
    for (const auto &m : modelZoo()) {
        if (m.name == name)
            return m;
    }
    fatal("unknown model '%s'", name.c_str());
}

}  // namespace recssd
