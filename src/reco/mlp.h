/**
 * @file
 * Minimal functional dense layers for the recommendation models.
 *
 * Real math (row-major matmul + bias + ReLU/sigmoid) with weights
 * derived deterministically from a seed, so end-to-end outputs are
 * reproducible and identical across embedding backends. Timing never
 * comes from this code — the host cost model charges GEMM time — so
 * the implementation favors clarity over speed.
 */

#ifndef RECSSD_RECO_MLP_H
#define RECSSD_RECO_MLP_H

#include <cstdint>
#include <vector>

#include "src/common/random.h"

namespace recssd
{

/** Row-major dense matrix. */
struct Matrix
{
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<float> data;

    Matrix() = default;
    Matrix(std::size_t r, std::size_t c) : rows(r), cols(c), data(r * c) {}

    float &at(std::size_t r, std::size_t c) { return data[r * cols + c]; }
    float at(std::size_t r, std::size_t c) const
    {
        return data[r * cols + c];
    }
};

/** Multi-layer perceptron with ReLU hidden layers. */
class Mlp
{
  public:
    /**
     * @param input_dim Features per sample.
     * @param layer_dims Output width of each layer, in order.
     * @param seed Weight initialization seed.
     * @param sigmoid_output Apply a sigmoid after the last layer.
     */
    Mlp(std::size_t input_dim, std::vector<std::size_t> layer_dims,
        std::uint64_t seed, bool sigmoid_output = false);

    /** Forward pass over a batch (rows = samples). */
    Matrix forward(const Matrix &input) const;

    /** Multiply-accumulate operations per sample. */
    std::uint64_t macsPerSample() const { return macsPerSample_; }

    std::size_t inputDim() const { return inputDim_; }
    std::size_t outputDim() const;

  private:
    struct Layer
    {
        std::size_t in;
        std::size_t out;
        std::vector<float> weights;  // in x out, row-major
        std::vector<float> bias;
    };

    std::size_t inputDim_;
    bool sigmoidOutput_;
    std::vector<Layer> layers_;
    std::uint64_t macsPerSample_ = 0;
};

/** MACs/sample of an MLP with the given dims (no instantiation). */
std::uint64_t mlpMacs(std::size_t input_dim,
                      const std::vector<std::size_t> &layer_dims);

}  // namespace recssd

#endif  // RECSSD_RECO_MLP_H
