#include "src/reco/update_flusher.h"

#include <algorithm>
#include <memory>

#include "src/common/analysis.h"
#include "src/common/logging.h"
#include "src/embedding/synthetic_values.h"
#include "src/embedding/table_update.h"
#include "src/obs/tracer.h"

namespace recssd
{

UpdateFlusher::UpdateFlusher(System &sys,
                             std::vector<EmbeddingTableDesc> tables,
                             const UpdateStreamSpec &spec,
                             std::uint64_t seed)
    : sys_(sys), tables_(std::move(tables)), spec_(spec)
{
    recssd_assert(spec_.enabled(), "update flusher needs an enabled spec");
    recssd_assert(!tables_.empty(),
                  "update stream needs SSD-resident tables");
    // Stash the combined stream seed in the spec the stream sees, so
    // scheduleUntil is a pure function of (spec, tables, seed).
    spec_.seed = seed * 0x9e3779b97f4a7c15ull + spec.seed;
}

void
UpdateFlusher::scheduleUntil(Tick horizon)
{
    std::vector<std::uint64_t> rows;
    rows.reserve(tables_.size());
    for (const EmbeddingTableDesc &t : tables_)
        rows.push_back(t.rows);
    UpdateStream stream(spec_, std::move(rows), spec_.seed);
    // Stream time is relative; rebase on the current clock so callers
    // may warm the system up (prefill, profiling) before serving.
    Tick base = sys_.eq().now();
    for (const UpdateDesc &u : stream.until(horizon))
        sys_.eq().schedule(base + u.arrival, [this, u]() { submit(u); });
}

void
UpdateFlusher::submit(const UpdateDesc &update)
{
    recssd_assert(update.tableIdx < tables_.size(),
                  "update targets unknown table");
    ++submitted_;
    pending_.push_back(update);
    maybeDispatch(false);
}

void
UpdateFlusher::maybeDispatch(bool timer_fired)
{
    while (inFlight_ < spec_.maxInFlight && !pending_.empty() &&
           (pending_.size() >= spec_.flushRows || timer_fired)) {
        if (admission_ != nullptr && !admitted_) {
            if (admissionWait_)
                return;  // a maturity wakeup is already scheduled
            Tick now = sys_.eq().now();
            Tick allowed = admission_(now);
            if (allowed > now) {
                // Budget exhausted: the charge is banked (`admitted_`
                // at the wakeup) and the flush waits for it to mature.
                admissionWait_ = true;
                ++deferrals_;
                sys_.eq().schedule(allowed, [this, timer_fired]() {
                    RECSSD_CAPTURES_MAPPING("flusher outlives the "
                                            "drained event queue; the "
                                            "banked charge is consumed "
                                            "by exactly one dispatch");
                    admissionWait_ = false;
                    admitted_ = true;
                    maybeDispatch(timer_fired);
                });
                return;
            }
            admitted_ = true;
        }
        admitted_ = false;  // one charge pays for one flush
        dispatchOne();
        // A timeout flushes one partial batch; further dispatches in
        // this round must earn a full one.
        timer_fired = false;
    }
    if (!pending_.empty() && inFlight_ < spec_.maxInFlight &&
        !admissionWait_)
        armTimer();
}

void
UpdateFlusher::armTimer()
{
    if (timerArmed_)
        return;
    timerArmed_ = true;
    std::uint64_t gen = ++timerGen_;
    sys_.eq().schedule(sys_.eq().now() + spec_.maxWait, [this, gen]() {
        if (gen != timerGen_)
            return;
        timerArmed_ = false;
        maybeDispatch(true);
    });
}

void
UpdateFlusher::dispatchOne()
{
    ++inFlight_;
    ++flushes_;
    // Cancel any armed timer; it re-arms for the remainder.
    ++timerGen_;
    timerArmed_ = false;

    std::size_t n = std::min<std::size_t>(pending_.size(), spec_.flushRows);
    std::vector<UpdateDesc> batch(pending_.begin(),
                                  pending_.begin() +
                                      static_cast<std::ptrdiff_t>(n));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(n));

    std::uint64_t trace_id = 0;
    SpanId root = invalidSpan;
    SpanId span = invalidSpan;
    if (Tracer *tracer = tracerOf(sys_.eq())) {
        trace_id = tracer->newRequestId();
        root = tracer->beginRequest("update", trace_id);
        span = tracer->begin(tracer->track("host.update"), "update_flush",
                             Phase::HostCompute, trace_id);
    }

    struct FlushState
    {
        unsigned left = 0;
        bool issued = false;  ///< all writes issued (join armed)
    };
    auto state = std::make_shared<FlushState>();
    Tick start = sys_.eq().now();
    auto complete = [this, root, span, start, rows = n]() {
        if (Tracer *tracer = tracerOf(sys_.eq())) {
            tracer->end(span);
            tracer->end(root);
        }
        flushLatency_.record(sys_.eq().now() - start);
        applied_ += rows;
        --inFlight_;
        maybeDispatch(false);
    };
    auto join = [state, complete]() {
        if (--state->left == 0 && state->issued)
            complete();
    };

    for (const UpdateDesc &u : batch) {
        const EmbeddingTableDesc &global = tables_[u.tableIdx];
        std::uint64_t version = ++versions_[{u.tableIdx, u.row}];
        std::vector<float> values =
            synthetic::updatedVector(global, u.row, version);
        for (const ShardRouter::UpdateTarget &target :
             sys_.router().updateTargets(global.id, u.row)) {
            if (sys_.ssd(target.shard).controller().dead()) {
                // A dead controller swallows commands (the completion
                // never fires); skip it so faulted runs cannot hang.
                // Replicas that are still alive converge normally.
                ++skippedDead_;
                continue;
            }
            ++state->left;
            ++replicaWrites_;
            updateRow(sys_.driver(target.shard), sys_.queues(target.shard),
                      *target.desc, target.localRow, values, join,
                      trace_id);
        }
    }
    state->issued = true;
    if (state->left == 0) {
        // Every target was dead; the flush still completes (and counts
        // the rows as applied from the stream's point of view).
        complete();
    }
}

}  // namespace recssd
