/**
 * @file
 * The eight-model benchmark zoo (§3.3 / §5, after DeepRecInfra).
 *
 * Embedding-dominated: DLRM-RMC1/2/3, whose differentiating parameters
 * come straight from the paper's Table 1 (feature size / indices per
 * lookup / table count). MLP-dominated: WND, MTWND, DIN, DIEN, NCF,
 * whose exact DeepRecInfra dimensions are not in the paper; the
 * configurations here are chosen to land the published operator mix —
 * heavy dense compute, few embedding lookups, mostly small
 * (DRAM-residable) tables plus at most one large SSD-bound table —
 * so the Fig 6/9 behaviours reproduce. See DESIGN.md.
 */

#ifndef RECSSD_RECO_MODEL_CONFIG_H
#define RECSSD_RECO_MODEL_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace recssd
{

/** A homogeneous group of embedding tables. */
struct TableGroup
{
    unsigned count = 1;          ///< tables in the group
    std::uint64_t rows = 1'000'000;
    unsigned dim = 32;           ///< feature size (Table 1)
    unsigned lookups = 80;       ///< indices gathered per sample
    unsigned attrBytes = 4;
    /** Vectors per flash page when placed on the SSD (1 = paper's
     *  evaluation layout; pageSize/vectorBytes = packed). */
    unsigned rowsPerPage = 1;
};

struct ModelConfig
{
    std::string name;
    std::vector<TableGroup> tables;
    /** Continuous input features per sample. */
    unsigned denseInputs = 0;
    /** Bottom MLP widths (empty = dense features used directly). */
    std::vector<std::size_t> bottomMlp;
    /** Top MLP widths (last entry should be 1: the CTR output). */
    std::vector<std::size_t> topMlp;
    /** Extra dense MACs/sample (attention, GRU, task heads). */
    std::uint64_t extraMacsPerSample = 0;
    /** Paper classification (§3.3). */
    bool embeddingDominated = false;

    unsigned numTables() const;
    std::uint64_t lookupsPerSample() const;
    /** Width of the feature-interaction concat fed to the top MLP. */
    std::size_t topInputDim() const;
    /** Total dense MACs per sample (bottom + top + extra). */
    std::uint64_t mlpMacsPerSample() const;
};

/** The eight models evaluated in the paper. */
const std::vector<ModelConfig> &modelZoo();

/** Lookup by name ("RM1", "WND", ...). Fatal on unknown names. */
const ModelConfig &modelByName(const std::string &name);

}  // namespace recssd

#endif  // RECSSD_RECO_MODEL_CONFIG_H
