/**
 * @file
 * End-to-end recommendation inference on the simulated machine.
 *
 * A `ModelRunner` instantiates one model from the zoo on a `System`:
 * it places each table group in host DRAM or on the SSD (the hybrid
 * DRAM-SSD deployment of §1/§3.3), builds the requested embedding
 * backend (DRAM / baseline SSD / RecSSD NDP) with its caches, drives
 * synthetic input traces, and executes batched inferences with the
 * §4.2 SLS-worker/NN-worker pipelining across sub-batches. Latencies
 * are simulated; embedding math (and optionally the MLPs) is real.
 */

#ifndef RECSSD_RECO_MODEL_RUNNER_H
#define RECSSD_RECO_MODEL_RUNNER_H

#include <memory>
#include <vector>

#include "src/cache/host_embedding_cache.h"
#include "src/cache/static_partition.h"
#include "src/core/system.h"
#include "src/embedding/baseline_backend.h"
#include "src/embedding/dram_backend.h"
#include "src/embedding/ndp_backend.h"
#include "src/load/load_gen.h"
#include "src/reco/mlp.h"
#include "src/reco/model_config.h"
#include "src/resil/resil_config.h"
#include "src/resil/resilient_backend.h"
#include "src/shard/sharded_backend.h"
#include "src/trace/trace_gen.h"

namespace recssd
{

enum class EmbeddingBackendKind
{
    Dram,         ///< all tables in host DRAM (the DRAM baseline)
    BaselineSsd,  ///< conventional NVMe reads + host accumulate
    Ndp,          ///< RecSSD offload
};

struct RunnerOptions
{
    EmbeddingBackendKind backend = EmbeddingBackendKind::Dram;

    /** Baseline: enable the fully associative host LRU cache. */
    bool hostLruCache = false;
    std::size_t hostCacheEntries = 2048;

    /** NDP: enable profile-driven static host partitioning. */
    bool staticPartition = false;
    std::size_t partitionEntries = 2048;
    unsigned profileBatches = 32;

    /** Hybrid placement: tables with more rows go to the SSD. */
    std::uint64_t dramResidentMaxRows = 512 * 1024;
    bool forceAllTablesOnSsd = false;

    /** Pipelining (§4.2): sub-batches whose SLS and MLP overlap. */
    unsigned subBatches = 4;
    bool pipeline = true;

    /** Actually compute the dense layers (tests/examples). */
    bool functionalMlp = false;

    /** Tail tolerance (src/resil): deadlines + hedged sub-ops. The
     *  resilient wrapper replaces the plain sharded one when any knob
     *  here is active or the router replicates tables. */
    ResilConfig resil;

    /** Input trace template (universe is overridden per table). */
    TraceSpec trace;

    std::uint64_t seed = 42;
};

/** Aggregated results of a measurement run. */
struct RunStats
{
    double avgLatencyUs = 0.0;
    double minLatencyUs = 0.0;
    double maxLatencyUs = 0.0;
    unsigned batches = 0;

    double hostCacheHitRate = 0.0;
    double partitionHitRate = 0.0;
    double ssdEmbedCacheHitRate = 0.0;
    /** In-SSD page-cache hit rate over the measured window (delta of
     *  hits/misses, so warmup traffic is excluded). */
    double ssdPageCacheHitRate = 0.0;
    /** Hot-row DRAM tier hit rate over the measured window; 0 unless
     *  the frequency-aware layout policy is active. Disjoint from the
     *  page-cache rate: a hot-tier hit never probes the page cache. */
    double hotTierHitRate = 0.0;
    std::uint64_t flashPageReads = 0;
};

class ModelRunner
{
  public:
    ModelRunner(System &sys, const ModelConfig &model,
                const RunnerOptions &options);

    /** Execute one batch to completion. @return simulated latency. */
    Tick runBatch(unsigned batch_size);

    /**
     * Launch a batch without draining the event queue; `done`
     * receives the batch latency when it completes. Lets callers
     * overlap multiple in-flight queries (open-loop serving).
     */
    void launchBatch(unsigned batch_size, std::function<void(Tick)> done);

    /**
     * Launch one query with an explicit shape: `shape.batchSize`
     * samples touching the first `shape.tablesTouched` tables with
     * per-table lookups scaled by `shape.poolingScale`. The default
     * shape reproduces launchBatch exactly; untouched tables
     * contribute zero vectors (and no backend traffic beyond the
     * operator dispatch), so the result layout never changes.
     */
    void launchQuery(const QueryShape &shape, std::function<void(Tick)> done);

    /**
     * launchQuery with the degraded flag: `done(latency, degraded)`,
     * where `degraded` is true when any SLS op in the batch was
     * answered from a deadline expiry or a dead-end degraded fill
     * (only possible on the resilient backend; always false
     * otherwise).
     */
    void launchQueryEx(const QueryShape &shape,
                       std::function<void(Tick, bool)> done);

    /** Warm up, then measure the average over `batches` batches. */
    RunStats measure(unsigned batch_size, unsigned warmup_batches,
                     unsigned batches);

    /** Scores of the most recent batch (functionalMlp only). */
    const Matrix &lastScores() const { return lastScores_; }

    const ModelConfig &model() const { return model_; }
    const RunnerOptions &options() const { return options_; }
    System &sys() { return sys_; }

    /** Tables placed on the SSD under the current options. */
    unsigned ssdTables() const;

    /** Global descriptors of the SSD-resident tables, in model order —
     *  the online-update stream's write targets. */
    std::vector<EmbeddingTableDesc> ssdTableDescs() const;

    HostEmbeddingCache *hostCache() { return hostCache_.get(); }
    StaticPartition *partition() { return partition_.get(); }

    /**
     * The scatter-gather wrapper every SSD-resident table runs
     * through; null for the pure-DRAM backend. At one device it is a
     * pass-through, so per-shard stats still work (all on shard 0).
     */
    ShardedSlsBackend *shardedBackend() { return shardedBackend_.get(); }

    /**
     * The tail-tolerant scatter-gather wrapper, built *instead of*
     * the plain sharded one when `RunnerOptions::resil` is active or
     * tables are replicated; null otherwise.
     */
    ResilientSlsBackend *resilientBackend()
    {
        return resilientBackend_.get();
    }

  private:
    struct TableRt
    {
        EmbeddingTableDesc desc;
        bool onSsd;
        unsigned lookups;  ///< indices per sample for this table
        std::unique_ptr<TraceGenerator> gen;
    };

    /** Pick the backend serving a table under the current options. */
    SlsBackend &backendFor(const TableRt &table);

    /** Profile traces and freeze the static partition. */
    void buildPartition();

    /** Launch one sub-batch; joins into the shared completion count. */
    void launchSubBatch(unsigned size, unsigned first_sample,
                        const std::shared_ptr<struct BatchState> &batch);

    /** Lookups per sample for one table under a pooling scale. */
    unsigned scaledLookups(const TableRt &table, double scale) const;

    System &sys_;
    ModelConfig model_;
    RunnerOptions options_;

    std::vector<TableRt> tables_;
    std::unique_ptr<HostEmbeddingCache> hostCache_;
    std::unique_ptr<StaticPartition> partition_;
    std::unique_ptr<DramSlsBackend> dramBackend_;
    /** One SSD backend per device, bound to that device's driver. */
    std::vector<std::unique_ptr<BaselineSsdSlsBackend>> baselineBackends_;
    std::vector<std::unique_ptr<NdpSlsBackend>> ndpBackends_;
    std::unique_ptr<ShardedSlsBackend> shardedBackend_;
    std::unique_ptr<ResilientSlsBackend> resilientBackend_;

    std::unique_ptr<Mlp> bottomMlp_;
    std::unique_ptr<Mlp> topMlp_;

    Rng denseRng_;
    Matrix lastScores_;
};

}  // namespace recssd

#endif  // RECSSD_RECO_MODEL_RUNNER_H
