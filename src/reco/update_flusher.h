/**
 * @file
 * Online-update serving driver: batched, replica-converging row
 * writes racing the read path.
 *
 * The write-path sibling of `BatchScheduler`: row updates from the
 * seeded `UpdateStream` coalesce into flushed batches (size cap +
 * flush timeout + in-flight cap), and every flushed row fans out
 * through the `ShardRouter` to its primary slice and all replica
 * copies, so replicated serving stays bit-exact through failover
 * after an update. Writes go through `updateRow`, competing for NVMe
 * queues with the serve traffic on each device; each flush is its own
 * trace request ("update"), so update phases appear in blame and
 * utilization output alongside queries.
 *
 * Dead devices (fault-plan dropouts swallow their commands) are
 * probed before each write and skipped — counted, not hung.
 */

#ifndef RECSSD_RECO_UPDATE_FLUSHER_H
#define RECSSD_RECO_UPDATE_FLUSHER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "src/core/system.h"
#include "src/embedding/embedding_table.h"
#include "src/load/latency_recorder.h"
#include "src/load/update_stream.h"

namespace recssd
{

class UpdateFlusher
{
  public:
    /**
     * @param tables Global descriptors of the SSD-resident tables
     *        (`ModelRunner::ssdTableDescs()`), indexed by the stream's
     *        `UpdateDesc::tableIdx`.
     * @param seed Serve seed; combined with `spec.seed` so the stream
     *        is independent of the query-arrival Rng.
     */
    UpdateFlusher(System &sys, std::vector<EmbeddingTableDesc> tables,
                  const UpdateStreamSpec &spec, std::uint64_t seed);

    /**
     * Generate the whole stream up to `horizon` and schedule each
     * submit on the event queue at its arrival tick.
     */
    void scheduleUntil(Tick horizon);

    /** Enqueue one row update now (normally via scheduleUntil). */
    void submit(const UpdateDesc &update);

    /**
     * QoS admission hook: called once per flush with the current tick;
     * charges the owning tenant's budget and returns the earliest tick
     * the flush may dispatch. A future tick holds the flush (and the
     * whole queue behind it) until the charge matures, so update
     * traffic drains the same limit budget as the tenant's reads.
     * Unset (the default) admits every flush immediately.
     */
    using AdmissionHook = std::function<Tick(Tick now)>;
    void setAdmission(AdmissionHook hook) { admission_ = std::move(hook); }

    /** Flushes held back by the admission hook. */
    std::uint64_t admissionDeferrals() const { return deferrals_; }

    /** @{ Stream accounting. */
    std::uint64_t submitted() const { return submitted_; }
    /** Row updates whose flush completed on every live target. */
    std::uint64_t applied() const { return applied_; }
    /** Page writes issued, counting each replica copy. */
    std::uint64_t replicaWrites() const { return replicaWrites_; }
    std::uint64_t flushes() const { return flushes_; }
    /** Writes skipped because the target device was dead. */
    std::uint64_t skippedDeadDevice() const { return skippedDead_; }
    /** Flush latency (dispatch to last replica write completion). */
    const LatencyRecorder &flushLatency() const { return flushLatency_; }
    /** @} */

  private:
    void maybeDispatch(bool timer_fired);
    void dispatchOne();
    void armTimer();

    System &sys_;
    std::vector<EmbeddingTableDesc> tables_;
    UpdateStreamSpec spec_;

    std::deque<UpdateDesc> pending_;
    unsigned inFlight_ = 0;
    bool timerArmed_ = false;
    std::uint64_t timerGen_ = 0;

    /** @{ QoS admission state: `admitted_` holds one matured charge;
     *  `admissionWait_` marks a scheduled maturity wakeup. */
    AdmissionHook admission_;
    bool admitted_ = false;
    bool admissionWait_ = false;
    std::uint64_t deferrals_ = 0;
    /** @} */

    /** Committed update count per (tableIdx, row): the version the
     *  deterministic payload (`synthetic::updatedVector`) encodes. */
    std::map<std::pair<std::uint32_t, RowId>, std::uint64_t> versions_;

    std::uint64_t submitted_ = 0;
    std::uint64_t applied_ = 0;
    std::uint64_t replicaWrites_ = 0;
    std::uint64_t flushes_ = 0;
    std::uint64_t skippedDead_ = 0;
    LatencyRecorder flushLatency_;
};

}  // namespace recssd

#endif  // RECSSD_RECO_UPDATE_FLUSHER_H
