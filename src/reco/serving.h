/**
 * @file
 * Open-loop serving: load generation, batching, tail latency.
 *
 * The paper's single-model/single-SSD prototype restricted it to
 * direct request latencies (§5); this subsystem explores the metric
 * datacenter operators actually provision for. Two harnesses:
 *
 *  - `runOpenLoop`: the original one-query-per-dispatch Poisson
 *    harness (kept for the fig-level benches).
 *  - `runServe`: the at-scale path. A `LoadGenerator` (src/load)
 *    produces arrivals and per-query shapes; a `BatchScheduler`
 *    coalesces in-flight queries into fused batches (size cap +
 *    batching timeout + in-flight cap, DeepRecSys-style); the model
 *    runner splits each fused batch between host-DRAM structures
 *    (LRU cache / static partition) and the SSD backend, whose I/O
 *    fans out round-robin across the driver's NVMe queue pairs.
 *    Per-query timestamps (arrival / dispatch / completion) flow
 *    through the event-driven sim, so the harness reports exact
 *    p50/p95/p99 tails, queueing-vs-service breakdown, sustained QPS
 *    and the per-queue NVMe command spread.
 */

#ifndef RECSSD_RECO_SERVING_H
#define RECSSD_RECO_SERVING_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/stats.h"
#include "src/load/latency_recorder.h"
#include "src/load/load_gen.h"
#include "src/load/update_stream.h"
#include "src/obs/slo_monitor.h"
#include "src/obs/tracer.h"
#include "src/reco/model_runner.h"

namespace recssd
{

struct ServingConfig
{
    /** Mean arrival rate (queries per simulated second). */
    double qps = 100.0;
    /** Queries to issue after warmup. */
    unsigned queries = 200;
    /** Warmup queries (not measured). */
    unsigned warmupQueries = 20;
    /** Samples per query. */
    unsigned batchSize = 16;
    /** Latency target for SLO accounting. */
    Tick latencySlo = 50 * msec;
    std::uint64_t seed = 99;
};

struct ServingStats
{
    double meanLatencyUs = 0.0;
    double maxLatencyUs = 0.0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    /** Fraction of measured queries within the SLO. */
    double sloAttainment = 0.0;
    /** Completed queries / simulated wall time. */
    double achievedQps = 0.0;
};

/**
 * Drive one model runner open loop and measure. Arrivals and
 * completions interleave on the runner's System; the call returns
 * when every query has completed.
 */
ServingStats runOpenLoop(ModelRunner &runner, const ServingConfig &config);

/** Per-query timeline the scheduler reports to its caller. */
struct QueryTimes
{
    Tick arrival = 0;   ///< query hit the scheduler
    Tick dispatch = 0;  ///< fused batch launched on the runner
    Tick complete = 0;  ///< fused batch finished
    /** The fused batch carrying this query delivered a degraded
     *  answer (deadline expiry / dead-end fill on some SLS op). */
    bool degraded = false;
};

/** Knobs of the coalescing batch scheduler. */
struct BatchPolicy
{
    /** Fused-batch sample cap: dispatch as soon as this many samples
     *  are pending (a query is never split across fused batches). */
    unsigned maxBatchSamples = 64;
    /** Batching timeout: the oldest pending query never waits longer
     *  than this for co-riders before dispatch (0 = no batching). */
    Tick maxWait = 200 * usec;
    /** Concurrent fused batches in flight on the runner. */
    unsigned maxInFlight = 4;
    /**
     * Multi-tenant batch formation: only fuse queries with identical
     * (tablesTouched, poolingScale), so tenants with incompatible
     * shapes never share a fused batch (one tenant's heavy pooling
     * can't inflate another's service time). Off by default — the
     * single-tenant fuse rule, and its artifacts, are untouched.
     */
    bool tenantAware = false;
};

/**
 * Coalesces submitted queries into fused batches and runs them on a
 * `ModelRunner`. Queries are dispatched FIFO; under overload they
 * queue (latency grows) rather than being dropped — `submit`'s `done`
 * callback fires exactly once per query, always.
 */
class BatchScheduler
{
  public:
    using QueryDone = std::function<void(const QueryTimes &)>;

    BatchScheduler(ModelRunner &runner, const BatchPolicy &policy);

    /** Enqueue one query; `done` fires when its fused batch completes. */
    void submit(const QueryShape &shape, QueryDone done);

    /**
     * Enqueue one query whose trace identity was opened upstream (the
     * QoS admission layer): the scheduler takes ownership of
     * `rootSpan` and ends it when the fused batch completes. Plain
     * `submit` is this with a freshly opened root.
     */
    void submitTagged(const QueryShape &shape, QueryDone done,
                      std::uint64_t traceId, SpanId rootSpan);

    /** Queries waiting for dispatch. */
    unsigned pendingQueries() const
    {
        return static_cast<unsigned>(pending_.size());
    }
    unsigned pendingSamples() const { return pendingSamples_; }
    unsigned inFlight() const { return inFlight_; }

    /** @{ Lifetime accounting. */
    std::uint64_t batchesDispatched() const { return dispatched_; }
    std::uint64_t samplesDispatched() const { return dispatchedSamples_; }
    double avgCoalescedSamples() const
    {
        return dispatched_ ? static_cast<double>(dispatchedSamples_) /
                                 static_cast<double>(dispatched_)
                           : 0.0;
    }
    /** High-water mark of the pending-query queue. */
    unsigned maxQueueDepth() const { return maxDepth_; }
    /** @} */

  private:
    struct PendingQuery
    {
        QueryShape shape;
        Tick arrival = 0;
        QueryDone done;
        /** Trace identity of this query (0 / invalid when off). */
        std::uint64_t traceId = 0;
        SpanId rootSpan = invalidSpan;
    };

    /** Dispatch while a batch is ready and in-flight slots remain. */
    void maybeDispatch();
    /** Pop + fuse + launch one batch from the queue head. */
    void dispatchOne();
    /** Arm the batching-timeout event for the current queue head. */
    void armTimer();

    ModelRunner &runner_;
    BatchPolicy policy_;
    std::deque<PendingQuery> pending_;
    unsigned pendingSamples_ = 0;
    unsigned inFlight_ = 0;
    std::uint64_t dispatched_ = 0;
    std::uint64_t dispatchedSamples_ = 0;
    unsigned maxDepth_ = 0;
    /** Timeout-event bookkeeping (stale timers are ignored). */
    std::uint64_t timerGen_ = 0;
    bool timerArmed_ = false;
    Tick timerDue_ = 0;
};

/** Configuration of the batched at-scale serving harness. */
struct ServeConfig
{
    ArrivalSpec arrivals;
    QueryShapeSpec shape;
    BatchPolicy batching;
    /** Measured queries after warmup. */
    unsigned queries = 200;
    unsigned warmupQueries = 20;
    Tick latencySlo = 50 * msec;
    std::uint64_t seed = 99;
    /** Windowed SLO monitoring (attainment + error-budget burn);
     *  disabled by default so existing harnesses are untouched. */
    SloConfig slo;
    /** Online embedding-update stream mixed into the serve run;
     *  disabled by default (rate 0) so existing harnesses — and their
     *  byte-identical artifacts — are untouched. */
    UpdateStreamSpec updates;
};

/** What the batched harness measured. */
struct ServeStats
{
    /** End-to-end query latency (arrival -> completion), measured set. */
    double meanLatencyUs = 0.0;
    double maxLatencyUs = 0.0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    /** Scheduler-queue delay (arrival -> dispatch). */
    double meanQueueUs = 0.0;
    /** Fused-batch service time (dispatch -> completion). */
    double meanServiceUs = 0.0;
    double sloAttainment = 0.0;
    double achievedQps = 0.0;

    unsigned completedQueries = 0;
    std::uint64_t batchesDispatched = 0;
    double avgCoalescedSamples = 0.0;
    unsigned maxSchedulerDepth = 0;

    /** Lookups absorbed by host-DRAM structures (cache/partition)
     *  rather than the SSD backend, over the whole run. */
    double hostServedFraction = 0.0;

    /** @{ NVMe queue-pair spread over the whole run (device 0; the
     *  historical single-SSD fields). */
    std::vector<std::uint64_t> commandsPerQueue;
    std::vector<std::uint16_t> maxDepthPerQueue;
    /** @} */

    /** Per-device view of one SSD's share of the run. */
    struct DeviceStats
    {
        std::vector<std::uint64_t> commandsPerQueue;
        std::vector<std::uint16_t> maxDepthPerQueue;
        /** Shard sub-op service time (issue -> completion). */
        std::uint64_t subOps = 0;
        double subOpP50Us = 0.0;
        double subOpP95Us = 0.0;
        double subOpP99Us = 0.0;
        double subOpP999Us = 0.0;
        double subOpMaxUs = 0.0;
        /** Sub-op completions that arrived after their parent op had
         *  already delivered (hedge losers / post-deadline answers). */
        std::uint64_t lateCompletions = 0;
    };
    /** One entry per SSD (entry 0 repeats the legacy fields). */
    std::vector<DeviceStats> perDevice;
    /** SLS ops that fanned out to more than one device. */
    std::uint64_t scatteredOps = 0;

    /** @{ Tail-tolerance accounting; all zero unless the run used
     *  the resilient backend (deadlines/hedging/replication). */
    unsigned degradedQueries = 0;
    std::uint64_t hedgesFired = 0;
    std::uint64_t hedgeWins = 0;
    std::uint64_t duplicateCompletions = 0;
    std::uint64_t deadlineMisses = 0;
    std::uint64_t failovers = 0;
    std::vector<unsigned> ejectedDevices;
    /** @} */

    /** @{ SLO monitor output; empty/zero unless `ServeConfig::slo`
     *  is enabled. Windows tumble over completion time. */
    struct SloWindow
    {
        double startUs = 0.0;
        unsigned queries = 0;
        double attainment = 0.0;
        double p50Us = 0.0;
        double p99Us = 0.0;
        /** (1 - attainment) / (1 - objective). */
        double burnRate = 0.0;
    };
    std::vector<SloWindow> sloWindows;
    double sloMonitorAttainment = 0.0;
    double errorBudgetBurnRate = 0.0;
    double worstWindowBurnRate = 0.0;
    /** @} */

    /** @{ Online-update stream + write-path accounting; all zero
     *  unless `ServeConfig::updates` is enabled. Counter fields are
     *  whole-run deltas summed over every device. */
    struct UpdateStats
    {
        std::uint64_t submitted = 0;   ///< row updates generated
        std::uint64_t applied = 0;     ///< row updates flushed
        std::uint64_t replicaWrites = 0;  ///< page writes incl. replicas
        std::uint64_t flushes = 0;
        std::uint64_t skippedDeadDevice = 0;
        double meanFlushUs = 0.0;
        double p99FlushUs = 0.0;
        /** Host-issued page writes (the update traffic itself). */
        std::uint64_t hostPageWrites = 0;
        /** Flash page programs, including GC/migration relocations. */
        std::uint64_t flashPageWrites = 0;
        std::uint64_t blockErases = 0;
        std::uint64_t gcRuns = 0;
        std::uint64_t gcPagesMigrated = 0;
        /** flashPageWrites / hostPageWrites. */
        double writeAmplification = 0.0;
        /** SLS gathers re-pointed at the live mapping by the read-
         *  after-write fence (see SlsEngine::fenceRedirects). */
        std::uint64_t fenceRedirects = 0;
    } update;
    /** @} */
};

/**
 * Drive the runner through the batched multi-queue serving path:
 * generate `warmupQueries + queries` arrivals open loop, coalesce
 * them through a `BatchScheduler`, and measure. Returns when every
 * query has completed; every submitted query completes (overload
 * manifests as latency, never as drops).
 */
ServeStats runServe(ModelRunner &runner, const ServeConfig &config);

}  // namespace recssd

#endif  // RECSSD_RECO_SERVING_H
