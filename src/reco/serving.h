/**
 * @file
 * Open-loop serving harness: latency-bounded throughput.
 *
 * The paper's single-model/single-SSD prototype restricted it to
 * direct request latencies (§5); this extension explores the metric
 * datacenter operators actually provision for. Queries arrive as a
 * Poisson process at a target QPS, overlap freely on the simulated
 * machine, and the harness reports the tail-latency distribution and
 * the fraction of queries meeting an SLO.
 */

#ifndef RECSSD_RECO_SERVING_H
#define RECSSD_RECO_SERVING_H

#include <cstdint>

#include "src/common/stats.h"
#include "src/reco/model_runner.h"

namespace recssd
{

struct ServingConfig
{
    /** Mean arrival rate (queries per simulated second). */
    double qps = 100.0;
    /** Queries to issue after warmup. */
    unsigned queries = 200;
    /** Warmup queries (not measured). */
    unsigned warmupQueries = 20;
    /** Samples per query. */
    unsigned batchSize = 16;
    /** Latency target for SLO accounting. */
    Tick latencySlo = 50 * msec;
    std::uint64_t seed = 99;
};

struct ServingStats
{
    double meanLatencyUs = 0.0;
    double maxLatencyUs = 0.0;
    double p50Us = 0.0;
    double p95Us = 0.0;
    double p99Us = 0.0;
    /** Fraction of measured queries within the SLO. */
    double sloAttainment = 0.0;
    /** Completed queries / simulated wall time. */
    double achievedQps = 0.0;
};

/**
 * Drive one model runner open loop and measure. Arrivals and
 * completions interleave on the runner's System; the call returns
 * when every query has completed.
 */
ServingStats runOpenLoop(ModelRunner &runner, const ServingConfig &config);

}  // namespace recssd

#endif  // RECSSD_RECO_SERVING_H
