#include "src/reco/mlp.h"

#include <cmath>

#include "src/common/logging.h"

namespace recssd
{

std::uint64_t
mlpMacs(std::size_t input_dim, const std::vector<std::size_t> &layer_dims)
{
    std::uint64_t macs = 0;
    std::size_t in = input_dim;
    for (std::size_t out : layer_dims) {
        macs += static_cast<std::uint64_t>(in) * out;
        in = out;
    }
    return macs;
}

Mlp::Mlp(std::size_t input_dim, std::vector<std::size_t> layer_dims,
         std::uint64_t seed, bool sigmoid_output)
    : inputDim_(input_dim), sigmoidOutput_(sigmoid_output)
{
    recssd_assert(!layer_dims.empty(), "MLP needs at least one layer");
    Rng rng(seed);
    std::size_t in = input_dim;
    for (std::size_t out : layer_dims) {
        Layer layer;
        layer.in = in;
        layer.out = out;
        layer.weights.resize(in * out);
        layer.bias.resize(out);
        double scale = 1.0 / std::sqrt(static_cast<double>(in ? in : 1));
        for (auto &w : layer.weights)
            w = static_cast<float>((rng.uniformDouble() * 2.0 - 1.0) * scale);
        for (auto &b : layer.bias)
            b = static_cast<float>((rng.uniformDouble() * 2.0 - 1.0) * 0.1);
        macsPerSample_ += static_cast<std::uint64_t>(in) * out;
        layers_.push_back(std::move(layer));
        in = out;
    }
}

std::size_t
Mlp::outputDim() const
{
    return layers_.back().out;
}

Matrix
Mlp::forward(const Matrix &input) const
{
    recssd_assert(input.cols == inputDim_,
                  "MLP input width mismatch (%zu != %zu)", input.cols,
                  inputDim_);
    Matrix cur = input;
    for (std::size_t li = 0; li < layers_.size(); ++li) {
        const Layer &layer = layers_[li];
        Matrix next(cur.rows, layer.out);
        for (std::size_t r = 0; r < cur.rows; ++r) {
            for (std::size_t o = 0; o < layer.out; ++o) {
                float acc = layer.bias[o];
                for (std::size_t i = 0; i < layer.in; ++i)
                    acc += cur.at(r, i) * layer.weights[i * layer.out + o];
                bool last = li + 1 == layers_.size();
                if (!last) {
                    acc = acc > 0.0f ? acc : 0.0f;  // ReLU
                } else if (sigmoidOutput_) {
                    acc = 1.0f / (1.0f + std::exp(-acc));
                }
                next.at(r, o) = acc;
            }
        }
        cur = std::move(next);
    }
    return cur;
}

}  // namespace recssd
