/**
 * @file
 * FIFO allocator of driver I/O queues.
 *
 * The UNVMe sync API carries one command per queue at a time; SLS
 * workers are matched to queues (§4.2). Backends acquire a queue per
 * operation (or per command) and park in FIFO order when all queues
 * are busy.
 */

#ifndef RECSSD_HOST_QUEUE_ALLOCATOR_H
#define RECSSD_HOST_QUEUE_ALLOCATOR_H

#include <deque>
#include <functional>
#include <vector>

#include "src/common/logging.h"

namespace recssd
{

class QueueAllocator
{
  public:
    using Grant = std::function<void(unsigned queue)>;

    explicit QueueAllocator(unsigned queues)
    {
        recssd_assert(queues > 0, "need at least one I/O queue");
        for (unsigned q = 0; q < queues; ++q)
            free_.push_back(q);
        total_ = queues;
    }

    unsigned total() const { return total_; }
    unsigned available() const { return static_cast<unsigned>(free_.size()); }

    /** Grant a queue now, or when one frees (FIFO). */
    void
    acquire(Grant grant)
    {
        if (!free_.empty()) {
            unsigned q = free_.front();
            free_.pop_front();
            grant(q);
        } else {
            waiting_.push_back(std::move(grant));
        }
    }

    /** Return a queue; wakes the longest waiter if any. */
    void
    release(unsigned queue)
    {
        recssd_assert(queue < total_, "bogus queue id");
        if (!waiting_.empty()) {
            Grant grant = std::move(waiting_.front());
            waiting_.pop_front();
            grant(queue);
        } else {
            free_.push_back(queue);
        }
    }

  private:
    unsigned total_;
    std::deque<unsigned> free_;
    std::deque<Grant> waiting_;
};

}  // namespace recssd

#endif  // RECSSD_HOST_QUEUE_ALLOCATOR_H
