/**
 * @file
 * Allocator of driver I/O queues.
 *
 * The UNVMe sync API carries one command per queue at a time; SLS
 * workers are matched to queues (§4.2). Backends acquire a queue per
 * operation (or per command) and park in FIFO order when all queues
 * are busy.
 *
 * Two grant policies: `Fifo` recycles the longest-idle queue (the
 * free list naturally rotates), `LeastUsed` grants the free queue
 * with the fewest lifetime grants, keeping the round-robin balanced
 * even when operations release queues out of order — the serving
 * path's multi-queue dispatch. Per-queue grant counts are kept either
 * way so experiments can report the spread.
 */

#ifndef RECSSD_HOST_QUEUE_ALLOCATOR_H
#define RECSSD_HOST_QUEUE_ALLOCATOR_H

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/common/logging.h"

namespace recssd
{

class QueueAllocator
{
  public:
    using Grant = std::function<void(unsigned queue)>;

    enum class Policy
    {
        Fifo,       ///< longest-idle queue first (seed behaviour)
        LeastUsed,  ///< fewest lifetime grants first (balanced RR)
    };

    explicit QueueAllocator(unsigned queues, Policy policy = Policy::Fifo)
        : policy_(policy)
    {
        recssd_assert(queues > 0, "need at least one I/O queue");
        for (unsigned q = 0; q < queues; ++q)
            free_.push_back(q);
        total_ = queues;
        grants_.assign(queues, 0);
    }

    unsigned total() const { return total_; }
    unsigned available() const { return static_cast<unsigned>(free_.size()); }
    Policy policy() const { return policy_; }

    /** Lifetime grants handed out on one queue. */
    std::uint64_t grantsOn(unsigned queue) const
    {
        return grants_.at(queue);
    }

    /** Callers parked waiting for a queue right now. */
    std::size_t waiters() const { return waiting_.size(); }

    /** Grant a queue now, or when one frees (FIFO wait order). */
    void
    acquire(Grant grant)
    {
        if (!free_.empty()) {
            auto it = free_.begin();
            if (policy_ == Policy::LeastUsed) {
                it = std::min_element(free_.begin(), free_.end(),
                                      [this](unsigned a, unsigned b) {
                                          return grants_[a] < grants_[b];
                                      });
            }
            unsigned q = *it;
            free_.erase(it);
            ++grants_[q];
            grant(q);
        } else {
            waiting_.push_back(std::move(grant));
        }
    }

    /** Return a queue; wakes the longest waiter if any. */
    void
    release(unsigned queue)
    {
        recssd_assert(queue < total_, "bogus queue id");
        if (!waiting_.empty()) {
            Grant grant = std::move(waiting_.front());
            waiting_.pop_front();
            ++grants_[queue];
            grant(queue);
        } else {
            free_.push_back(queue);
        }
    }

  private:
    Policy policy_;
    unsigned total_;
    std::deque<unsigned> free_;
    std::deque<Grant> waiting_;
    std::vector<std::uint64_t> grants_;
};

}  // namespace recssd

#endif  // RECSSD_HOST_QUEUE_ALLOCATOR_H
