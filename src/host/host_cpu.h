/**
 * @file
 * Host CPU model: a pool of cores plus cost helpers for the work the
 * recommendation stack performs on them (MLP GEMMs, DRAM embedding
 * gathers, driver submission/polling, vector extraction).
 */

#ifndef RECSSD_HOST_HOST_CPU_H
#define RECSSD_HOST_HOST_CPU_H

#include <cstdint>

#include "src/common/event_queue.h"
#include "src/common/resource.h"
#include "src/host/host_params.h"

namespace recssd
{

class HostCpu
{
  public:
    HostCpu(EventQueue &eq, const HostParams &params);

    const HostParams &params() const { return params_; }
    unsigned cores() const { return cores_.servers(); }

    /** Run `work` ticks on the earliest-free core. */
    Tick run(Tick work, EventQueue::Callback done)
    {
        return cores_.acquire(work, std::move(done));
    }

    Tick run(Tick work) { return cores_.acquire(work, nullptr); }

    /** @{ Cost helpers. */

    /** Time for a dense multiply-accumulate workload on one core. */
    Tick
    gemmCost(std::uint64_t macs) const
    {
        return static_cast<Tick>(static_cast<double>(macs) /
                                 params_.gemmMacsPerSec *
                                 static_cast<double>(sec));
    }

    /** One random embedding gather + accumulate from host DRAM. */
    Tick
    dramLookupCost(std::uint32_t vector_bytes) const
    {
        return params_.dramLookupBase +
               static_cast<Tick>(params_.dramPerByteNs * vector_bytes);
    }

    /** Locate + accumulate one vector out of a DMAed page. */
    Tick
    extractCost(std::uint32_t vector_bytes) const
    {
        return params_.extractBase +
               static_cast<Tick>(params_.extractPerByteNs * vector_bytes);
    }
    /** @} */

    Tick busyTime() const { return cores_.busyTime(); }

  private:
    HostParams params_;
    PoolResource cores_;
};

}  // namespace recssd

#endif  // RECSSD_HOST_HOST_CPU_H
