/**
 * @file
 * Userspace NVMe driver model, after Micron's UNVMe library which the
 * paper extends with the two SLS commands (§5 "Micron UNVMe").
 *
 * The driver exposes N independent I/O queues. Like the real sync
 * API, each queue carries one outstanding command: the submitting
 * worker burns CPU to build/submit, the device executes, and the
 * worker burns CPU again polling the completion. The SLS extension
 * adds a config-write and a result-read built on the standard command
 * structures with the spare flag bit set.
 *
 * Each queue is driven by its own SLS worker thread (§4.2 matches
 * workers to queues). The threads are I/O bound — they sleep in the
 * poll loop most of the time — so they are modelled as dedicated
 * serial resources that the OS schedules promptly rather than as
 * contenders for the host core pool; the dense-compute NN workers own
 * the cores.
 */

#ifndef RECSSD_HOST_UNVME_DRIVER_H
#define RECSSD_HOST_UNVME_DRIVER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/event_queue.h"
#include "src/common/stats.h"
#include "src/host/host_cpu.h"
#include "src/ndp/sls_config.h"
#include "src/nvme/host_controller.h"
#include "src/nvme/nvme_command.h"
#include "src/nvme/nvme_queue.h"

namespace recssd
{

class UnvmeDriver
{
  public:
    using ReadDone = std::function<void(const PageView &)>;
    using Done = std::function<void()>;
    using SlsResultDone =
        std::function<void(std::shared_ptr<std::vector<std::byte>>)>;

    /** `track_prefix` namespaces the per-queue trace tracks (multi-
     *  SSD systems pass "ssd<d>." so device spans stay separable). */
    UnvmeDriver(EventQueue &eq, HostCpu &cpu, HostController &ctrl,
                const std::string &track_prefix = "");

    /** Usable I/O queues: min(driver binding, controller support). */
    unsigned numQueues() const { return numQueues_; }

    /** Logical block size of the attached namespace. */
    unsigned pageSize() const { return ctrl_.pageSize(); }

    /** The simulation clock this driver schedules on. */
    EventQueue &eventQueue() { return eq_; }

    /** @{ Standard data path (one logical page per command). The
     *  optional trailing trace id tags every span the command produces
     *  down the stack with its owning request. */
    void readPage(unsigned queue, Lpn lpn, ReadDone done,
                  std::uint64_t trace_id = 0);
    void writePage(unsigned queue, Lpn lpn,
                   std::shared_ptr<std::vector<std::byte>> data, Done done,
                   std::uint64_t trace_id = 0);

    /** Deallocate one logical page (DSM / trim). */
    void trimPage(unsigned queue, Lpn lpn, Done done,
                  std::uint64_t trace_id = 0);
    /** @} */

    /** @{ RecSSD SLS extension. */

    /**
     * Issue the config-write for an SLS operation.
     * @param table_base First logical page of the target table (must
     *        be slsTableAlign-aligned).
     * @param request_id Caller-chosen id, unique among in-flight
     *        requests to the same table.
     */
    void slsConfigWrite(unsigned queue, Lpn table_base,
                        std::uint64_t request_id, const SlsConfig &config,
                        Done done, std::uint64_t trace_id = 0);

    /** Issue the result-read that completes an SLS operation. */
    void slsResultRead(unsigned queue, Lpn table_base,
                       std::uint64_t request_id, SlsResultDone done,
                       std::uint64_t trace_id = 0);
    /** @} */

    /** Fresh request id for slsConfigWrite. */
    std::uint64_t allocRequestId();

    std::uint64_t commandsIssued() const { return commands_.value(); }

    /** @{ Per-queue accounting and round-robin dispatch. */

    /** Commands ever issued on one queue. */
    std::uint64_t commandsOnQueue(unsigned queue) const
    {
        return perQueueCommands_.at(queue).value();
    }

    /** Ring occupancy of one queue pair right now. */
    std::uint16_t queueDepth(unsigned queue) const
    {
        return queuePairs_.at(queue)->outstanding();
    }

    /** True while the sync API has a command in flight on the queue. */
    bool queueBusy(unsigned queue) const { return queueBusy_.at(queue); }

    /**
     * Next queue in round-robin order, preferring idle queues: scans
     * from the rotor for a free queue and falls back to the plain
     * rotor position when every queue is busy (the caller must then
     * wait, e.g. through the QueueAllocator, before submitting).
     */
    unsigned pickQueue();
    /** @} */

    /** The I/O worker thread bound to a queue (for extract work). */
    SerialResource &ioThread(unsigned queue)
    {
        return *ioThreads_.at(queue);
    }

    /** The NVMe ring pair backing a queue. */
    NvmeQueuePair &queuePair(unsigned queue)
    {
        return *queuePairs_.at(queue);
    }

  private:
    /** Mark the queue busy; panics on concurrent use (sync API). */
    void occupy(unsigned queue);
    void release(unsigned queue);

    /**
     * Move a command through the queue pair: submit + controller
     * fetch. @return the ring-assigned command with its CID.
     */
    NvmeCommand enqueue(unsigned queue, const NvmeCommand &cmd);

    /** Consume the completion for `cid` from the queue's CQ ring. */
    void consumeCompletion(unsigned queue, std::uint16_t cid);

    EventQueue &eq_;
    HostCpu &cpu_;
    HostController &ctrl_;
    unsigned numQueues_;
    std::vector<bool> queueBusy_;
    /** Tick each queue's in-flight command occupied it (utilization
     *  timelines report occupancy as one op per command). */
    std::vector<Tick> occupiedAt_;
    /** Pre-built trace track names, one per I/O queue. */
    std::vector<std::string> queueTrackNames_;
    std::vector<std::unique_ptr<SerialResource>> ioThreads_;
    std::vector<std::unique_ptr<NvmeQueuePair>> queuePairs_;
    std::uint64_t nextRequestId_ = 1;
    unsigned rrNext_ = 0;  ///< round-robin rotor for pickQueue()

    Counter commands_;
    std::vector<Counter> perQueueCommands_;
};

}  // namespace recssd

#endif  // RECSSD_HOST_UNVME_DRIVER_H
