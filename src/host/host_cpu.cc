#include "src/host/host_cpu.h"

namespace recssd
{

HostCpu::HostCpu(EventQueue &eq, const HostParams &params)
    : params_(params), cores_(eq, "host.cores", params.cores)
{
}

}  // namespace recssd
