/**
 * @file
 * Host machine parameters (§5: quad-core Skylake, 64GB DDR4-3200).
 */

#ifndef RECSSD_HOST_HOST_PARAMS_H
#define RECSSD_HOST_HOST_PARAMS_H

#include <cstdint>

#include "src/common/types.h"

namespace recssd
{

struct HostParams
{
    /** Physical cores available to workers. */
    unsigned cores = 4;

    /** I/O queues the driver binds (UNVMe uses the maximum). */
    unsigned ioQueues = 4;

    /**
     * Grant I/O queues least-used-first instead of longest-idle-first
     * so round-robin stays balanced under out-of-order releases (the
     * multi-queue serving path turns this on).
     */
    bool balancedQueueGrants = false;

    /** CPU cost to build + submit one NVMe command (userspace). */
    Tick submitCost = 2 * usec;
    /** CPU cost to poll + consume one completion. */
    Tick completionCost = 1500 * nsec;

    /** Fixed cost of one random DRAM embedding lookup. */
    Tick dramLookupBase = 40 * nsec;
    /** Streaming cost per byte read from DRAM (~4GB/s per core). */
    double dramPerByteNs = 0.25;

    /** Fixed cost to locate a vector inside a DMAed 16KB page. */
    Tick extractBase = 500 * nsec;
    /** Per-byte cost to extract + accumulate a vector on the host. */
    double extractPerByteNs = 0.5;

    /** Effective dense-math throughput per core (MACs/sec; fp32
     *  Caffe2 GEMM on desktop Skylake, memory-bound layers included). */
    double gemmMacsPerSec = 3.0e9;
};

}  // namespace recssd

#endif  // RECSSD_HOST_HOST_PARAMS_H
