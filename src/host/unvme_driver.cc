#include "src/host/unvme_driver.h"

#include <algorithm>

#include "src/common/analysis.h"
#include "src/common/logging.h"
#include "src/obs/tracer.h"
#include "src/obs/utilization.h"

namespace recssd
{

namespace
{

void
endSpan(EventQueue &eq, SpanId span)
{
    if (span == invalidSpan)
        return;
    if (Tracer *tracer = tracerOf(eq))
        tracer->end(span);
}

}  // namespace

UnvmeDriver::UnvmeDriver(EventQueue &eq, HostCpu &cpu, HostController &ctrl,
                         const std::string &track_prefix)
    : eq_(eq), cpu_(cpu), ctrl_(ctrl)
{
    numQueues_ = std::min(cpu.params().ioQueues, ctrl.params().numQueues);
    recssd_assert(numQueues_ > 0, "driver bound zero I/O queues");
    queueBusy_.assign(numQueues_, false);
    occupiedAt_.assign(numQueues_, 0);
    perQueueCommands_.resize(numQueues_);
    for (unsigned q = 0; q < numQueues_; ++q) {
        ioThreads_.push_back(std::make_unique<SerialResource>(
            eq_, track_prefix + "unvme.worker" + std::to_string(q)));
        queuePairs_.push_back(std::make_unique<NvmeQueuePair>(64));
        queueTrackNames_.push_back(track_prefix + "unvme.q" +
                                   std::to_string(q));
    }
}

unsigned
UnvmeDriver::pickQueue()
{
    for (unsigned i = 0; i < numQueues_; ++i) {
        unsigned q = (rrNext_ + i) % numQueues_;
        if (!queueBusy_[q]) {
            rrNext_ = (q + 1) % numQueues_;
            return q;
        }
    }
    unsigned q = rrNext_;
    rrNext_ = (rrNext_ + 1) % numQueues_;
    return q;
}

NvmeCommand
UnvmeDriver::enqueue(unsigned queue, const NvmeCommand &cmd)
{
    NvmeQueuePair &qp = queuePair(queue);
    recssd_assert(qp.canSubmit(), "submission ring full");
    qp.submit(cmd);
    auto fetched = qp.fetch();
    recssd_assert(fetched.has_value(), "ring lost a command");
    return *fetched;
}

void
UnvmeDriver::consumeCompletion(unsigned queue, std::uint16_t cid)
{
    NvmeQueuePair &qp = queuePair(queue);
    qp.complete(cid);
    auto cqe = qp.poll();
    recssd_assert(cqe.has_value() && cqe->cid == cid,
                  "completion did not match the submitted command");
    recssd_assert(cqe->status == 0, "command failed");
}

void
UnvmeDriver::occupy(unsigned queue)
{
    recssd_assert(queue < numQueues_, "I/O queue index out of range");
    recssd_assert(!queueBusy_[queue],
                  "sync API misuse: queue %u already has a command in "
                  "flight", queue);
    queueBusy_[queue] = true;
    occupiedAt_[queue] = eq_.now();
    perQueueCommands_[queue].inc();
}

void
UnvmeDriver::release(unsigned queue)
{
    queueBusy_[queue] = false;
    // Queue-pair occupancy: the command was "in service" on the pair
    // from occupy to release, so the pair's utilization timeline is
    // its submission-to-completion residency.
    if (UtilizationCollector *util = eq_.util())
        util->record(queueTrackNames_[queue], occupiedAt_[queue],
                     occupiedAt_[queue], eq_.now());
}

std::uint64_t
UnvmeDriver::allocRequestId()
{
    std::uint64_t id = nextRequestId_++;
    // Keep ids well below the table alignment so base+id decoding is
    // unambiguous.
    if (nextRequestId_ >= slsTableAlign / 2)
        nextRequestId_ = 1;
    return id;
}

void
UnvmeDriver::readPage(unsigned queue, Lpn lpn, ReadDone done,
                      std::uint64_t trace_id)
{
    occupy(queue);
    commands_.inc();
    NvmeCommand cmd;
    cmd.opcode = NvmeOpcode::Read;
    cmd.slba = lpn;
    cmd.traceId = trace_id;
    // Observability: the outer span is the command's full residence on
    // this queue (submit CPU -> device -> completion poll); the inner
    // submit/poll spans mark the io-thread occupancy at each end.
    SpanId dev_span = invalidSpan;
    SpanId submit_span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        TrackId track = tracer->track(queueTrackNames_[queue]);
        dev_span = tracer->begin(track, "read", Phase::DeviceWait, trace_id);
        submit_span =
            tracer->begin(track, "submit", Phase::DriverSubmit, trace_id);
    }
    // Submission burns host CPU, then the device takes over; on
    // completion the polling thread burns CPU again before the
    // caller's continuation runs.
    ioThread(queue).acquire(
        cpu_.params().submitCost, [this, cmd, queue, dev_span, submit_span,
                                   trace_id, done = std::move(done)]() {
            endSpan(eq_, submit_span);
            NvmeCommand entry = enqueue(queue, cmd);
            ctrl_.submitRead(entry, [this, queue, cid = entry.cid, dev_span,
                                     trace_id, done = std::move(done)](
                                        const PageView &view) {
                SpanId poll_span = invalidSpan;
                if (Tracer *tracer = tracerOf(eq_)) {
                    poll_span =
                        tracer->begin(tracer->track(queueTrackNames_[queue]),
                                      "poll", Phase::DriverSubmit, trace_id);
                }
                ioThread(queue).acquire(
                    cpu_.params().completionCost,
                    [this, queue, cid, view, dev_span, poll_span,
                     done = std::move(done)]() {
                        // The view binds a physical page the FTL resolved
                        // (and fenced) at service time; log-structured
                        // writes allocate fresh ppns, so the bytes under
                        // an outstanding view never change across the
                        // driver's completion-poll delay.
                        RECSSD_DEFERRED_SAFE(
                            "view pins an immutable physical page");
                        endSpan(eq_, poll_span);
                        consumeCompletion(queue, cid);
                        release(queue);
                        endSpan(eq_, dev_span);
                        done(view);
                    });
            });
        });
}

void
UnvmeDriver::writePage(unsigned queue, Lpn lpn,
                       std::shared_ptr<std::vector<std::byte>> data,
                       Done done, std::uint64_t trace_id)
{
    occupy(queue);
    commands_.inc();
    NvmeCommand cmd;
    cmd.opcode = NvmeOpcode::Write;
    cmd.slba = lpn;
    cmd.payload = std::move(data);
    cmd.traceId = trace_id;
    SpanId dev_span = invalidSpan;
    SpanId submit_span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        TrackId track = tracer->track(queueTrackNames_[queue]);
        dev_span = tracer->begin(track, "write", Phase::DeviceWait, trace_id);
        submit_span =
            tracer->begin(track, "submit", Phase::DriverSubmit, trace_id);
    }
    ioThread(queue).acquire(
        cpu_.params().submitCost, [this, cmd, queue, dev_span, submit_span,
                                   trace_id, done = std::move(done)]() {
            endSpan(eq_, submit_span);
            NvmeCommand entry = enqueue(queue, cmd);
            ctrl_.submitWrite(entry, [this, queue, cid = entry.cid, dev_span,
                                      trace_id, done = std::move(done)]() {
                SpanId poll_span = invalidSpan;
                if (Tracer *tracer = tracerOf(eq_)) {
                    poll_span =
                        tracer->begin(tracer->track(queueTrackNames_[queue]),
                                      "poll", Phase::DriverSubmit, trace_id);
                }
                ioThread(queue).acquire(
                    cpu_.params().completionCost,
                    [this, queue, cid, dev_span, poll_span,
                     done = std::move(done)]() {
                        endSpan(eq_, poll_span);
                        consumeCompletion(queue, cid);
                        release(queue);
                        endSpan(eq_, dev_span);
                        done();
                    });
            });
        });
}

void
UnvmeDriver::trimPage(unsigned queue, Lpn lpn, Done done,
                      std::uint64_t trace_id)
{
    occupy(queue);
    commands_.inc();
    NvmeCommand cmd;
    cmd.opcode = NvmeOpcode::Dsm;
    cmd.slba = lpn;
    cmd.traceId = trace_id;
    SpanId dev_span = invalidSpan;
    SpanId submit_span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        TrackId track = tracer->track(queueTrackNames_[queue]);
        dev_span = tracer->begin(track, "trim", Phase::DeviceWait, trace_id);
        submit_span =
            tracer->begin(track, "submit", Phase::DriverSubmit, trace_id);
    }
    ioThread(queue).acquire(
        cpu_.params().submitCost, [this, cmd, queue, dev_span, submit_span,
                                   trace_id, done = std::move(done)]() {
            endSpan(eq_, submit_span);
            NvmeCommand entry = enqueue(queue, cmd);
            ctrl_.submitTrim(entry, [this, queue, cid = entry.cid, dev_span,
                                     trace_id, done = std::move(done)]() {
                SpanId poll_span = invalidSpan;
                if (Tracer *tracer = tracerOf(eq_)) {
                    poll_span =
                        tracer->begin(tracer->track(queueTrackNames_[queue]),
                                      "poll", Phase::DriverSubmit, trace_id);
                }
                ioThread(queue).acquire(
                    cpu_.params().completionCost,
                    [this, queue, cid, dev_span, poll_span,
                     done = std::move(done)]() {
                        endSpan(eq_, poll_span);
                        consumeCompletion(queue, cid);
                        release(queue);
                        endSpan(eq_, dev_span);
                        done();
                    });
            });
        });
}

void
UnvmeDriver::slsConfigWrite(unsigned queue, Lpn table_base,
                            std::uint64_t request_id,
                            const SlsConfig &config, Done done,
                            std::uint64_t trace_id)
{
    recssd_assert(table_base % slsTableAlign == 0,
                  "embedding table base must be aligned");
    recssd_assert(request_id > 0 && request_id < slsTableAlign,
                  "SLS request id out of range");
    occupy(queue);
    commands_.inc();
    NvmeCommand cmd;
    cmd.opcode = NvmeOpcode::Write;
    cmd.slsFlag = true;
    cmd.slba = SlsAddress::encode(table_base, request_id);
    cmd.payload = std::make_shared<std::vector<std::byte>>(
        config.serialize());
    cmd.traceId = trace_id;
    SpanId dev_span = invalidSpan;
    SpanId submit_span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        TrackId track = tracer->track(queueTrackNames_[queue]);
        dev_span =
            tracer->begin(track, "sls_config", Phase::DeviceWait, trace_id);
        submit_span =
            tracer->begin(track, "submit", Phase::DriverSubmit, trace_id);
    }
    // Building the pair list costs more than a plain 64B command:
    // charge the submit cost plus a store per pair.
    Tick build = cpu_.params().submitCost +
                 static_cast<Tick>(config.pairs.size()) * 2;
    ioThread(queue).acquire(build, [this, cmd, queue, dev_span, submit_span,
                                    trace_id, done = std::move(done)]() {
        endSpan(eq_, submit_span);
        NvmeCommand entry = enqueue(queue, cmd);
        ctrl_.submitSlsConfig(entry, [this, queue, cid = entry.cid, dev_span,
                                      trace_id, done = std::move(done)]() {
            SpanId poll_span = invalidSpan;
            if (Tracer *tracer = tracerOf(eq_)) {
                poll_span =
                    tracer->begin(tracer->track(queueTrackNames_[queue]),
                                  "poll", Phase::DriverSubmit, trace_id);
            }
            ioThread(queue).acquire(
                cpu_.params().completionCost,
                [this, queue, cid, dev_span, poll_span,
                 done = std::move(done)]() {
                    endSpan(eq_, poll_span);
                    consumeCompletion(queue, cid);
                    release(queue);
                    endSpan(eq_, dev_span);
                    done();
                });
        });
    });
}

void
UnvmeDriver::slsResultRead(unsigned queue, Lpn table_base,
                           std::uint64_t request_id, SlsResultDone done,
                           std::uint64_t trace_id)
{
    occupy(queue);
    commands_.inc();
    NvmeCommand cmd;
    cmd.opcode = NvmeOpcode::Read;
    cmd.slsFlag = true;
    cmd.slba = SlsAddress::encode(table_base, request_id);
    cmd.traceId = trace_id;
    SpanId dev_span = invalidSpan;
    SpanId submit_span = invalidSpan;
    if (Tracer *tracer = tracerOf(eq_)) {
        TrackId track = tracer->track(queueTrackNames_[queue]);
        dev_span =
            tracer->begin(track, "sls_result", Phase::DeviceWait, trace_id);
        submit_span =
            tracer->begin(track, "submit", Phase::DriverSubmit, trace_id);
    }
    ioThread(queue).acquire(
        cpu_.params().submitCost, [this, cmd, queue, dev_span, submit_span,
                                   trace_id, done = std::move(done)]() {
            endSpan(eq_, submit_span);
            NvmeCommand entry = enqueue(queue, cmd);
            ctrl_.submitSlsRead(
                entry, [this, queue, cid = entry.cid, dev_span, trace_id,
                        done = std::move(done)](
                           std::shared_ptr<std::vector<std::byte>> data) {
                    SpanId poll_span = invalidSpan;
                    if (Tracer *tracer = tracerOf(eq_)) {
                        poll_span = tracer->begin(
                            tracer->track(queueTrackNames_[queue]), "poll",
                            Phase::DriverSubmit, trace_id);
                    }
                    ioThread(queue).acquire(
                        cpu_.params().completionCost,
                        [this, queue, cid, data, dev_span, poll_span,
                         done = std::move(done)]() {
                            endSpan(eq_, poll_span);
                            consumeCompletion(queue, cid);
                            release(queue);
                            endSpan(eq_, dev_span);
                            done(data);
                        });
                });
        });
}

}  // namespace recssd
