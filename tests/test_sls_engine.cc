/**
 * @file
 * RecSSD SLS engine tests: functional correctness of the offloaded
 * gather/reduce under many configurations, concurrency across
 * entries, caching fast paths, and the Fig 8 timing breakdown.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "src/embedding/sls_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/trace/trace_gen.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

class SlsEngineTest : public ::testing::Test
{
  protected:
    void
    makeSystem(std::uint64_t cache_bytes = 0)
    {
        SystemConfig cfg = test::smallSystem();
        cfg.ssd.sls.embeddingCacheBytes = cache_bytes;
        sys_ = std::make_unique<System>(cfg);
    }

    /** Drive one SLS op through the raw driver commands. */
    SlsResult
    runRaw(const EmbeddingTableDesc &table,
           const std::vector<std::vector<RowId>> &indices)
    {
        SlsConfig cfg;
        cfg.featureDim = table.dim;
        cfg.attrBytes = table.attrBytes;
        cfg.rowsPerPage = table.rowsPerPage;
        cfg.numResults = static_cast<std::uint32_t>(indices.size());
        for (std::uint32_t b = 0; b < indices.size(); ++b) {
            for (RowId row : indices[b])
                cfg.pairs.push_back(
                    SlsPair{static_cast<std::uint32_t>(row), b});
        }
        std::stable_sort(cfg.pairs.begin(), cfg.pairs.end(),
                         [](auto &a, auto &b) {
                             return a.inputId < b.inputId;
                         });

        std::uint64_t req = sys_->driver().allocRequestId();
        SlsResult result(indices.size() * table.dim);
        bool done = false;
        sys_->driver().slsConfigWrite(
            0, table.baseLpn, req, cfg, [&, req]() {
                sys_->driver().slsResultRead(
                    0, table.baseLpn, req,
                    [&](std::shared_ptr<std::vector<std::byte>> bytes) {
                        std::memcpy(result.data(), bytes->data(),
                                    result.size() * sizeof(float));
                        done = true;
                    });
            });
        sys_->run();
        EXPECT_TRUE(done);
        return result;
    }

    std::vector<std::vector<RowId>>
    randomIndices(const EmbeddingTableDesc &table, unsigned batch,
                  unsigned lookups, std::uint64_t seed)
    {
        TraceSpec spec;
        spec.kind = TraceKind::Uniform;
        spec.universe = table.rows;
        spec.seed = seed;
        TraceGenerator gen(spec);
        return gen.nextBatch(batch, lookups);
    }

    std::unique_ptr<System> sys_;
};

TEST_F(SlsEngineTest, SingleLookupSingleResult)
{
    makeSystem();
    auto table = sys_->installTable(1000, 16);
    auto result = runRaw(table, {{7}});
    EXPECT_EQ(result, synthetic::expectedSls(table, {{7}}));
}

TEST_F(SlsEngineTest, DuplicateInputsAccumulateTwice)
{
    makeSystem();
    auto table = sys_->installTable(1000, 8);
    auto result = runRaw(table, {{5, 5, 5}});
    EXPECT_EQ(result, synthetic::expectedSls(table, {{5, 5, 5}}));
}

TEST_F(SlsEngineTest, SharedInputAcrossResults)
{
    makeSystem();
    auto table = sys_->installTable(1000, 8);
    std::vector<std::vector<RowId>> idx = {{3, 9}, {9, 40}, {3}};
    EXPECT_EQ(runRaw(table, idx), synthetic::expectedSls(table, idx));
}

struct EngineParamCase
{
    std::uint32_t dim;
    std::uint32_t attrBytes;
    bool packed;
    unsigned batch;
    unsigned lookups;
};

class SlsEngineParamTest
    : public SlsEngineTest,
      public ::testing::WithParamInterface<EngineParamCase>
{
};

TEST_P(SlsEngineParamTest, MatchesReferenceAcrossConfigs)
{
    const auto &p = GetParam();
    makeSystem();
    unsigned rows_per_page =
        p.packed ? sys_->config().ssd.flash.pageSize /
                       (p.dim * p.attrBytes)
                 : 1;
    auto table = sys_->installTable(200'000, p.dim, p.attrBytes,
                                    rows_per_page);
    auto idx = randomIndices(table, p.batch, p.lookups, 1234 + p.dim);
    EXPECT_EQ(runRaw(table, idx), synthetic::expectedSls(table, idx));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SlsEngineParamTest,
    ::testing::Values(EngineParamCase{8, 4, false, 2, 5},
                      EngineParamCase{32, 4, false, 8, 20},
                      EngineParamCase{64, 4, false, 4, 80},
                      EngineParamCase{128, 4, false, 2, 10},
                      EngineParamCase{32, 4, true, 8, 20},
                      EngineParamCase{64, 4, true, 4, 40},
                      EngineParamCase{32, 2, false, 4, 10},
                      EngineParamCase{32, 2, true, 4, 10},
                      EngineParamCase{16, 1, true, 4, 16}));

TEST_F(SlsEngineTest, ConcurrentRequestsInterleave)
{
    makeSystem();
    auto t1 = sys_->installTable(100'000, 32);
    auto t2 = sys_->installTable(100'000, 32);

    auto idx1 = randomIndices(t1, 4, 10, 1);
    auto idx2 = randomIndices(t2, 4, 10, 2);

    SlsResult r1;
    SlsResult r2;
    auto launch = [&](const EmbeddingTableDesc &table,
                      const std::vector<std::vector<RowId>> &idx,
                      unsigned queue, SlsResult &out) {
        SlsConfig cfg;
        cfg.featureDim = table.dim;
        cfg.attrBytes = 4;
        cfg.rowsPerPage = 1;
        cfg.numResults = static_cast<std::uint32_t>(idx.size());
        for (std::uint32_t b = 0; b < idx.size(); ++b) {
            for (RowId row : idx[b])
                cfg.pairs.push_back(
                    SlsPair{static_cast<std::uint32_t>(row), b});
        }
        std::stable_sort(cfg.pairs.begin(), cfg.pairs.end(),
                         [](auto &a, auto &b) {
                             return a.inputId < b.inputId;
                         });
        std::uint64_t req = sys_->driver().allocRequestId();
        out.resize(idx.size() * table.dim);
        sys_->driver().slsConfigWrite(
            queue, table.baseLpn, req, cfg, [&, queue, req]() {
                sys_->driver().slsResultRead(
                    queue, table.baseLpn, req,
                    [&](std::shared_ptr<std::vector<std::byte>> bytes) {
                        std::memcpy(out.data(), bytes->data(),
                                    out.size() * sizeof(float));
                    });
            });
    };
    launch(t1, idx1, 0, r1);
    launch(t2, idx2, 1, r2);
    sys_->run();
    EXPECT_EQ(r1, synthetic::expectedSls(t1, idx1));
    EXPECT_EQ(r2, synthetic::expectedSls(t2, idx2));
    EXPECT_EQ(sys_->ssd().slsEngine().requests(), 2u);
}

TEST_F(SlsEngineTest, EmbeddingCacheCutsFlashTraffic)
{
    makeSystem(64ull * 1024 * 1024);
    auto table = sys_->installTable(100'000, 32);
    auto idx = randomIndices(table, 8, 20, 7);

    runRaw(table, idx);
    std::uint64_t first = sys_->ssd().slsEngine().flashPagesRead();
    auto result = runRaw(table, idx);  // identical rows again
    std::uint64_t second =
        sys_->ssd().slsEngine().flashPagesRead() - first;
    EXPECT_EQ(second, 0u) << "all rows should hit the embedding cache";
    EXPECT_EQ(result, synthetic::expectedSls(table, idx));
    EXPECT_GT(sys_->ssd().slsEngine().embedCacheHits(), 0u);
}

TEST_F(SlsEngineTest, PageCacheFastPathAvoidsFlash)
{
    makeSystem();
    auto table = sys_->installTable(100'000, 32);
    // Warm the FTL page cache for LPN of row 11 via a normal read.
    bool warmed = false;
    sys_->driver().readPage(0, table.lpnOf(11),
                            [&](const PageView &) { warmed = true; });
    sys_->run();
    ASSERT_TRUE(warmed);

    std::uint64_t flash_before = sys_->ssd().flash().pageReads();
    auto result = runRaw(table, {{11}});
    EXPECT_EQ(result, synthetic::expectedSls(table, {{11}}));
    EXPECT_EQ(sys_->ssd().flash().pageReads(), flash_before)
        << "SLS should process the cached page directly (step 3b)";
    EXPECT_GT(sys_->ssd().slsEngine().pageCacheHits(), 0u);
}

TEST_F(SlsEngineTest, TimingBreakdownIsConsistent)
{
    makeSystem();
    auto table = sys_->installTable(1'000'000, 32);
    auto idx = randomIndices(table, 16, 40, 3);
    runRaw(table, idx);
    const SlsTiming &t = sys_->ssd().slsEngine().lastTiming();
    EXPECT_GT(t.configArrived, t.submitted);
    EXPECT_GT(t.configProcessed, t.configArrived);
    EXPECT_GE(t.flashDone, t.configProcessed);
    EXPECT_GE(t.resultSent, t.flashDone);
    EXPECT_GT(t.translationTime(), 0u);
    // Components must not exceed the enclosing span.
    EXPECT_LE(t.translationTime() + t.flashReadTime(),
              t.flashDone - t.configProcessed + 1);
}

TEST_F(SlsEngineTest, ManyConcurrentRequestsBeyondBufferDepth)
{
    // More in-flight requests than maxEntries: the wait queue must
    // hold and later admit them all.
    SystemConfig cfg = test::smallSystem();
    cfg.ssd.sls.maxEntries = 2;
    cfg.host.ioQueues = 8;
    cfg.ssd.nvme.numQueues = 8;
    sys_ = std::make_unique<System>(cfg);
    auto table = sys_->installTable(100'000, 16);

    unsigned completed = 0;
    for (unsigned q = 0; q < 6; ++q) {
        auto idx = randomIndices(table, 2, 4, 100 + q);
        SlsConfig scfg;
        scfg.featureDim = table.dim;
        scfg.attrBytes = 4;
        scfg.rowsPerPage = 1;
        scfg.numResults = 2;
        for (std::uint32_t b = 0; b < idx.size(); ++b) {
            for (RowId row : idx[b])
                scfg.pairs.push_back(
                    SlsPair{static_cast<std::uint32_t>(row), b});
        }
        std::stable_sort(scfg.pairs.begin(), scfg.pairs.end(),
                         [](auto &a, auto &b) {
                             return a.inputId < b.inputId;
                         });
        std::uint64_t req = sys_->driver().allocRequestId();
        sys_->driver().slsConfigWrite(
            q, table.baseLpn, req, scfg, [&, q, req, base = table.baseLpn]() {
                sys_->driver().slsResultRead(
                    q, base, req,
                    [&](std::shared_ptr<std::vector<std::byte>>) {
                        ++completed;
                    });
            });
    }
    sys_->run();
    EXPECT_EQ(completed, 6u);
}

}  // namespace
}  // namespace recssd
