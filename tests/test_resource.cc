/**
 * @file
 * Unit tests for the queued-server resources.
 */

#include <gtest/gtest.h>

#include "src/common/resource.h"

namespace recssd
{
namespace
{

TEST(SerialResource, BackToBackQueueing)
{
    EventQueue eq;
    SerialResource res(eq, "r");
    Tick done1 = 0;
    Tick done2 = 0;
    res.acquire(100, [&]() { done1 = eq.now(); });
    res.acquire(50, [&]() { done2 = eq.now(); });
    eq.run();
    EXPECT_EQ(done1, 100u);
    EXPECT_EQ(done2, 150u);
    EXPECT_EQ(res.busyTime(), 150u);
}

TEST(SerialResource, IdleGapsAreNotBusy)
{
    EventQueue eq;
    SerialResource res(eq, "r");
    res.acquire(10);
    eq.run();
    EXPECT_EQ(eq.now(), 10u);
    // Request arriving later starts at its arrival time.
    eq.schedule(100, [&]() { res.acquire(5); });
    eq.run();
    EXPECT_EQ(res.freeAt(), 105u);
    EXPECT_EQ(res.busyTime(), 15u);
}

TEST(SerialResource, IdleReflectsBacklog)
{
    EventQueue eq;
    SerialResource res(eq, "r");
    EXPECT_TRUE(res.idle());
    res.acquire(10);
    EXPECT_FALSE(res.idle());
    eq.run();
    EXPECT_TRUE(res.idle());
}

TEST(PoolResource, ParallelServers)
{
    EventQueue eq;
    PoolResource pool(eq, "p", 4);
    int completed = 0;
    for (int i = 0; i < 4; ++i)
        pool.acquire(100, [&]() { ++completed; });
    eq.run();
    EXPECT_EQ(completed, 4);
    EXPECT_EQ(eq.now(), 100u) << "4 servers run 4 jobs concurrently";
}

TEST(PoolResource, QueuesBeyondServerCount)
{
    EventQueue eq;
    PoolResource pool(eq, "p", 2);
    Tick last = 0;
    for (int i = 0; i < 6; ++i)
        pool.acquire(100, [&]() { last = eq.now(); });
    eq.run();
    EXPECT_EQ(last, 300u) << "6 jobs on 2 servers take 3 rounds";
    EXPECT_EQ(pool.busyTime(), 600u);
}

TEST(PoolResource, PicksEarliestFreeServer)
{
    EventQueue eq;
    PoolResource pool(eq, "p", 2);
    pool.acquire(100);
    pool.acquire(10);
    // Server 2 frees at 10; a third job should land there.
    Tick done = 0;
    pool.acquire(10, [&]() { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 20u);
}

TEST(PoolResourceDeathTest, ZeroServersPanics)
{
    EventQueue eq;
    EXPECT_DEATH(PoolResource(eq, "p", 0), "at least one server");
}

}  // namespace
}  // namespace recssd
