/**
 * @file
 * Property lockdown of the FTL/cache contract under the
 * frequency-aware layout policy.
 *
 * Under randomized seeded workloads with `LayoutPolicy::Freq`:
 *  - the L2P overlay <-> per-row valid-count bijection holds after
 *    every hot-cluster migration and GC erase (RECSSD_AUDIT runs the
 *    check inside the FTL at both points),
 *  - no logical page is ever mapped to two live physical pages,
 *  - every read returns bytes bit-equal to the same workload run
 *    under the default log placement,
 *  - hot-tier hits and page-cache hits/misses partition the host
 *    reads exactly (the double-count regression test).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <unordered_set>

#include "src/common/random.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

/** Scoped RECSSD_AUDIT=1 (components cache it at construction). */
struct ScopedAudit
{
    ScopedAudit() { ::setenv("RECSSD_AUDIT", "1", 1); }
    ~ScopedAudit() { ::unsetenv("RECSSD_AUDIT"); }
};

FtlParams
freqParams(unsigned hot_tier_pages = 64)
{
    FtlParams p;
    p.layout.policy = LayoutPolicy::Freq;
    p.layout.hotTierPages = hot_tier_pages;
    p.layout.promoteThreshold = 3;
    p.layout.demoteThreshold = 1;
    p.layout.decayInterval = 256;
    return p;
}

/** One drive stack a test owns (tiny geometry: GC in milliseconds). */
struct Drive
{
    FlashParams fp = test::tinyFlash();
    EventQueue eq;
    DataStore store{fp.pageSize};
    FlashArray flash{eq, fp, store};
    Ftl ftl;

    explicit Drive(const FtlParams &params) : ftl(eq, params, flash) {}
};

/** Fill a page-sized buffer with content unique to (lpn, version). */
std::vector<std::byte>
pagePattern(unsigned page_size, Lpn lpn, unsigned version)
{
    std::vector<std::byte> buf(page_size);
    for (unsigned i = 0; i < page_size; ++i) {
        buf[i] = std::byte(static_cast<std::uint8_t>(
            (lpn * 131 + version * 31 + i) & 0xff));
    }
    return buf;
}

/**
 * Run a randomized skewed workload: writes that force GC, reads hot
 * enough to drive promotions and hot-cluster migrations, occasional
 * trims. Identical seeds produce identical command sequences, so a
 * log-policy drive and a freq-policy drive see the same traffic.
 */
void
runWorkload(Drive &d, std::uint64_t seed, unsigned ops,
            std::vector<unsigned> *versions)
{
    const Lpn kUniverse = 48;
    const Lpn kHotSet = 6;  // read-skew targets lpns [0, kHotSet)
    Rng rng(seed);
    versions->assign(kUniverse, 0);
    // The read-hot set is bulk-installed into an immutable Region row,
    // like real embedding tables: GC never re-packs region rows, so
    // hot-cluster migration is the only mechanism that can move these
    // pages — the property genuinely exercises runMigration. (Pages
    // seeded via hostWrite get clustered early by the GC relocation
    // path instead, which picks the stream from the tracker.)
    unsigned page_size = d.fp.pageSize;
    d.ftl.bulkInstall(0, kHotSet,
                      [page_size](std::uint64_t page, std::size_t offset,
                                  std::span<std::byte> out) {
                          auto pat = pagePattern(page_size, page, 1);
                          for (std::size_t i = 0; i < out.size(); ++i)
                              out[i] = pat[offset + i];
                      });
    for (Lpn lpn = 0; lpn < kHotSet; ++lpn)
        (*versions)[lpn] = 1;
    for (Lpn lpn = kHotSet; lpn < kUniverse; ++lpn) {
        (*versions)[lpn] = 1;
        auto buf = pagePattern(d.fp.pageSize, lpn, 1);
        d.ftl.hostWrite(lpn, buf, nullptr);
        d.eq.run();
    }
    for (unsigned op = 0; op < ops; ++op) {
        double dice = rng.uniformDouble();
        if (dice < 0.35) {
            // Write: skewed, and never to the read-hot region lpns — a
            // rewrite would overlay the page into a log row, letting
            // GC (not migration) do the clustering. GC still sees a
            // hot/cold mix from the write skew.
            Lpn lpn = rng.bernoulli(0.5)
                          ? 8 + rng.uniformInt(8)
                          : kHotSet + rng.uniformInt(kUniverse - kHotSet);
            (*versions)[lpn] += 1;
            auto buf = pagePattern(d.fp.pageSize, lpn, (*versions)[lpn]);
            d.ftl.hostWrite(lpn, buf, nullptr);
        } else if (dice < 0.95) {
            // Read: heavily skewed so a small set crosses the promote
            // threshold, matures and migrates.
            Lpn lpn = rng.bernoulli(0.8) ? rng.uniformInt(kHotSet)
                                         : rng.uniformInt(kUniverse);
            d.ftl.hostRead(lpn, [](const PageView &) {});
        } else {
            Lpn lpn = rng.uniformInt(kUniverse);
            (*versions)[lpn] = 0;
            d.ftl.hostTrim(lpn, nullptr);
        }
        d.eq.run();
    }
}

TEST(LayoutProperties, BijectionHoldsThroughMigrationsAndGc)
{
    // RECSSD_AUDIT makes the FTL verify the overlay<->valid-count
    // bijection after every GC erase AND every hot-cluster migration;
    // any violation aborts the test binary.
    ScopedAudit audit;
    for (std::uint64_t seed : {11u, 22u, 33u}) {
        Drive d(freqParams());
        std::vector<unsigned> versions;
        runWorkload(d, seed, 4000, &versions);

        ASSERT_NE(d.ftl.layout(), nullptr);
        EXPECT_GT(d.ftl.layout()->promotions(), 0u) << "seed " << seed;
        EXPECT_GT(d.ftl.layout()->migratedPages(), 0u) << "seed " << seed;
        EXPECT_GT(d.ftl.blocks().hotPagesAllocated(), 0u)
            << "seed " << seed;
        EXPECT_GT(d.ftl.gcRuns(), 0u)
            << "workload must force GC for the property to bite";

        // No logical page maps to two live physical pages: the overlay
        // is a function Lpn -> Ppn by construction, so the dual check
        // is that no PPN is claimed twice.
        std::unordered_set<Ppn> seen;  // membership only, never iterated
        d.ftl.map().forEachOverlay([&](Lpn lpn, Ppn ppn) {
            EXPECT_TRUE(seen.insert(ppn).second)
                << "PPN " << ppn << " live twice (second LPN " << lpn
                << ")";
        });
    }
}

TEST(LayoutProperties, ReadBackBitEqualToLogPlacement)
{
    // The layout policy moves data around; it must never change data.
    // Same seeded workload on a log drive and a freq drive, then every
    // logical page must read back bit-identical.
    ScopedAudit audit;
    Drive log_drive{FtlParams{}};
    Drive freq_drive{freqParams()};
    std::vector<unsigned> versions_log;
    std::vector<unsigned> versions_freq;
    runWorkload(log_drive, 77, 3000, &versions_log);
    runWorkload(freq_drive, 77, 3000, &versions_freq);
    ASSERT_EQ(versions_log, versions_freq);

    for (Lpn lpn = 0; lpn < versions_log.size(); ++lpn) {
        std::vector<std::byte> a(log_drive.fp.pageSize);
        std::vector<std::byte> b(freq_drive.fp.pageSize);
        bool got_a = false;
        bool got_b = false;
        log_drive.ftl.hostRead(lpn, [&](const PageView &v) {
            v.copyOut(0, a);
            got_a = true;
        });
        freq_drive.ftl.hostRead(lpn, [&](const PageView &v) {
            v.copyOut(0, b);
            got_b = true;
        });
        log_drive.eq.run();
        freq_drive.eq.run();
        ASSERT_TRUE(got_a && got_b);
        EXPECT_EQ(a, b) << "LPN " << lpn << " diverged under freq layout";
        if (versions_log[lpn] > 0) {
            EXPECT_EQ(a, pagePattern(log_drive.fp.pageSize, lpn,
                                     versions_log[lpn]))
                << "LPN " << lpn << " lost its last written version";
        }
    }
}

TEST(LayoutProperties, HotTierServesHotPagesFromDram)
{
    // Once a page crosses the promote threshold, the next read pins
    // it into the DRAM tier for free (its bytes are already in the
    // controller buffer); later reads are served from the pin with no
    // flash access and the freshest bytes.
    Drive d(freqParams());
    auto buf = pagePattern(d.fp.pageSize, 5, 1);
    d.ftl.hostWrite(5, buf, nullptr);
    d.eq.run();

    for (int i = 0; i < 8; ++i) {
        d.ftl.hostRead(5, [](const PageView &) {});
        d.eq.run();
    }
    ASSERT_NE(d.ftl.layout(), nullptr);
    ASSERT_TRUE(d.ftl.layout()->tier().contains(5))
        << "8 reads past promoteThreshold=3 must pin the page";
    EXPECT_GT(d.ftl.layout()->readPins(), 0u);

    std::uint64_t flash_reads_before = d.flash.pageReads();
    std::vector<std::byte> out(d.fp.pageSize);
    d.ftl.hostRead(5, [&](const PageView &v) { v.copyOut(0, out); });
    d.eq.run();
    EXPECT_EQ(d.flash.pageReads(), flash_reads_before)
        << "a hot-tier hit must not touch flash";
    EXPECT_EQ(out, buf);

    // An overwrite unpins the stale copy and re-pins the fresh one at
    // write completion (still classified hot).
    auto buf2 = pagePattern(d.fp.pageSize, 5, 2);
    d.ftl.hostWrite(5, buf2, nullptr);
    d.eq.run();
    ASSERT_TRUE(d.ftl.layout()->tier().contains(5));
    d.ftl.hostRead(5, [&](const PageView &v) { v.copyOut(0, out); });
    d.eq.run();
    EXPECT_EQ(out, buf2) << "tier must serve the rewritten bytes";

    // A trim unpins for good until re-promotion.
    d.ftl.hostTrim(5, nullptr);
    d.eq.run();
    EXPECT_FALSE(d.ftl.layout()->tier().contains(5));
}

TEST(LayoutProperties, HitAccountingPartitionsHostReads)
{
    // The double-count regression test: every host read lands in
    // exactly one of {hot-tier hit, page-cache hit, page-cache miss}.
    // A hot-tier hit short-circuits before the page-cache probe, so
    // the three counters must partition ftl.hostReads exactly.
    for (std::uint64_t seed : {5u, 6u}) {
        Drive d(freqParams());
        std::vector<unsigned> versions;
        runWorkload(d, seed, 2500, &versions);

        const HotRowTier &tier = d.ftl.layout()->tier();
        const PageCache &pc = d.ftl.pageCache();
        EXPECT_GT(tier.hits(), 0u) << "workload must exercise the tier";
        EXPECT_GT(pc.hits() + pc.misses(), 0u);
        EXPECT_EQ(d.ftl.hostReads(),
                  tier.hits() + pc.hits() + pc.misses())
            << "seed " << seed
            << ": hot-tier and page-cache accounting overlap or leak";
        // Dual form: every host read probes the tier exactly once.
        EXPECT_EQ(d.ftl.hostReads(), tier.hits() + tier.misses())
            << "seed " << seed;
    }
}

TEST(LayoutProperties, LogPolicyHasNoLayoutFootprint)
{
    // Under the default policy the subsystem must not even exist —
    // that is what keeps the seed's stats and timing byte-identical.
    Drive d{FtlParams{}};
    EXPECT_EQ(d.ftl.layout(), nullptr);
    std::vector<unsigned> versions;
    runWorkload(d, 99, 500, &versions);
    EXPECT_EQ(d.ftl.layout(), nullptr);
    EXPECT_EQ(d.ftl.blocks().hotPagesAllocated(), 0u);
}

TEST(LayoutProperties, HotRowUpdateNeverLeavesStalePin)
{
    // Interleaving property for the online-update write path: at
    // EVERY event boundary — mid-write, mid-trim, mid-migration,
    // mid-GC — a pinned hot-tier entry must point at the live L2P
    // mapping. The write path invalidates the pin at the map-change
    // instant and only re-pins from deferred completions when the
    // mapping is still current (the `map_.lookup(lpn) == ppn` guards
    // in hostRead / hostWrite / runMigration); without those guards a
    // completion racing a newer write resurrects a stale pin that
    // later gathers would consume with a stable epoch. Single-steps
    // the event queue so the check runs between every pair of events,
    // not just at quiescence.
    ScopedAudit audit;
    const Lpn kUniverse = 48;
    const Lpn kHotSet = 6;
    for (std::uint64_t seed : {101u, 202u, 303u}) {
        Drive d(freqParams());
        Rng rng(seed);
        std::vector<unsigned> versions(kUniverse, 0);
        unsigned page_size = d.fp.pageSize;
        d.ftl.bulkInstall(0, kHotSet,
                          [page_size](std::uint64_t page, std::size_t offset,
                                      std::span<std::byte> out) {
                              auto pat = pagePattern(page_size, page, 1);
                              for (std::size_t i = 0; i < out.size(); ++i)
                                  out[i] = pat[offset + i];
                          });
        for (Lpn lpn = 0; lpn < kHotSet; ++lpn)
            versions[lpn] = 1;
        for (Lpn lpn = kHotSet; lpn < kUniverse; ++lpn) {
            versions[lpn] = 1;
            auto buf = pagePattern(page_size, lpn, 1);
            d.ftl.hostWrite(lpn, buf, nullptr);
            d.eq.run();
        }

        std::uint64_t checks = 0;
        std::uint64_t pinned_seen = 0;
        auto checkPins = [&]() {
            for (Lpn lpn = 0; lpn < kUniverse; ++lpn) {
                if (!d.ftl.layout()->tier().contains(lpn))
                    continue;
                ++pinned_seen;
                Ppn pinned = invalidPpn;
                ASSERT_TRUE(d.ftl.layout()->tier().lookup(lpn, pinned));
                EXPECT_EQ(pinned, d.ftl.translate(lpn))
                    << "seed " << seed << " LPN " << lpn
                    << ": pin points at a superseded physical page";
            }
            ++checks;
        };

        // Writes skew onto the read-hot set itself here — unlike the
        // other workloads this one WANTS rewrites of pinned pages, so
        // every in-flight program races a live pin.
        for (unsigned op = 0; op < 1500; ++op) {
            double dice = rng.uniformDouble();
            if (dice < 0.45) {
                Lpn lpn = rng.bernoulli(0.6)
                              ? rng.uniformInt(kHotSet)
                              : rng.uniformInt(kUniverse);
                versions[lpn] += 1;
                auto buf = pagePattern(page_size, lpn, versions[lpn]);
                d.ftl.hostWrite(lpn, buf, nullptr);
            } else if (dice < 0.95) {
                Lpn lpn = rng.bernoulli(0.8) ? rng.uniformInt(kHotSet)
                                             : rng.uniformInt(kUniverse);
                d.ftl.hostRead(lpn, [](const PageView &) {});
            } else {
                // Trims stay off the bulk-installed region: a region
                // page keeps its region mapping after trim, which is
                // fine for serving but would make the version oracle
                // below ambiguous.
                Lpn lpn = kHotSet + rng.uniformInt(kUniverse - kHotSet);
                versions[lpn] = 0;
                d.ftl.hostTrim(lpn, nullptr);
            }
            while (d.eq.runOne())
                checkPins();
        }
        ASSERT_NE(d.ftl.layout(), nullptr);
        EXPECT_GT(pinned_seen, 0u)
            << "seed " << seed
            << ": workload never pinned a page — property is vacuous";
        EXPECT_GT(d.ftl.gcRuns(), 0u) << "seed " << seed;

        // Quiescent byte-check: pins must also serve the LAST written
        // version, not merely a live physical page.
        for (Lpn lpn = 0; lpn < kUniverse; ++lpn) {
            if (versions[lpn] == 0)
                continue;
            std::vector<std::byte> out(page_size);
            bool got = false;
            d.ftl.hostRead(lpn, [&](const PageView &v) {
                v.copyOut(0, out);
                got = true;
            });
            d.eq.run();
            ASSERT_TRUE(got);
            EXPECT_EQ(out, pagePattern(page_size, lpn, versions[lpn]))
                << "seed " << seed << " LPN " << lpn
                << " served stale bytes after the interleaved run";
        }
    }
}

TEST(LayoutProperties, RegionPagesMigrateIntoHotRows)
{
    // Bulk-installed embedding pages live in immutable Region rows;
    // a page that stays hot across a decay sweep (maturity) must be
    // copied into a hot log row via the overlay without disturbing
    // the region (and reads still return the synthetic content).
    ScopedAudit audit;
    Drive d(freqParams());
    const std::uint64_t kPages = 8;
    d.ftl.bulkInstall(0, kPages,
                      [](std::uint64_t page, std::size_t offset,
                         std::span<std::byte> out) {
                          for (std::size_t i = 0; i < out.size(); ++i) {
                              out[i] = std::byte(static_cast<std::uint8_t>(
                                  (page * 7 + offset + i) & 0xff));
                          }
                      });

    // 300 reads: promoted at read 3, pinned on the next read, matured
    // at the decayInterval=256 sweep, then migrated off the region.
    for (int i = 0; i < 300; ++i) {
        d.ftl.hostRead(2, [](const PageView &) {});
        d.eq.run();
    }
    ASSERT_NE(d.ftl.layout(), nullptr);
    EXPECT_GT(d.ftl.layout()->migratedPages(), 0u);
    EXPECT_TRUE(d.ftl.layout()->tier().contains(2));

    std::vector<std::byte> out(d.fp.pageSize);
    d.ftl.hostRead(2, [&](const PageView &v) { v.copyOut(0, out); });
    d.eq.run();
    std::vector<std::byte> expect(d.fp.pageSize);
    for (std::size_t i = 0; i < expect.size(); ++i)
        expect[i] = std::byte(static_cast<std::uint8_t>((2 * 7 + i) & 0xff));
    EXPECT_EQ(out, expect)
        << "migrated region page must keep its synthetic content";
}

}  // namespace
}  // namespace recssd
