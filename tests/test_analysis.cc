/**
 * @file
 * Locality analysis tooling tests (the Fig 3/4 machinery).
 */

#include <gtest/gtest.h>

#include "src/trace/page_reuse.h"
#include "src/trace/trace_gen.h"

namespace recssd
{
namespace
{

TEST(PageReuse, RowsMapToPages)
{
    // 64B vectors, 256B pages: rows 0-3 page 0, rows 4-7 page 1.
    PageReuseAnalyzer a(256, 64);
    a.access(0);
    a.access(3);
    a.access(4);
    EXPECT_EQ(a.touchedPages(), 2u);
    EXPECT_EQ(a.accesses(), 3u);
}

TEST(PageReuse, HitCountsExcludeFirstTouch)
{
    PageReuseAnalyzer a(256, 64);
    for (int i = 0; i < 5; ++i)
        a.access(0);  // page 0: 4 reuses
    a.access(100);    // page 25: 0 reuses
    auto hits = a.sortedHitCounts();
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits.front(), 0u);
    EXPECT_EQ(hits.back(), 4u);
}

TEST(PageReuse, TopPagesCaptureShare)
{
    PageReuseAnalyzer a(256, 256);  // 1 row per page
    for (int i = 0; i < 101; ++i)
        a.access(1);  // 100 reuses on page 1
    for (int i = 0; i < 11; ++i)
        a.access(2);  // 10 reuses on page 2
    EXPECT_NEAR(a.reuseCapturedByTopPages(1), 100.0 / 110.0, 1e-9);
    EXPECT_NEAR(a.reuseCapturedByTopPages(2), 1.0, 1e-9);
}

TEST(PageReuse, ZipfTraceShowsPowerLawConcentration)
{
    TraceSpec spec;
    spec.kind = TraceKind::Zipf;
    spec.universe = 100'000;
    spec.zipfAlpha = 1.05;
    spec.seed = 1;
    TraceGenerator gen(spec);
    PageReuseAnalyzer a(4096, 64);
    for (int i = 0; i < 200'000; ++i)
        a.access(gen.next());
    double top100 = a.reuseCapturedByTopPages(100);
    double top1000 = a.reuseCapturedByTopPages(1000);
    EXPECT_GT(top100, 0.25) << "hot pages must concentrate reuse (§3.1)";
    EXPECT_GT(top1000, top100);
    EXPECT_GT(top1000, 0.5);
}

TEST(LruPageCache, HitRateGrowsWithCapacity)
{
    TraceSpec spec;
    spec.kind = TraceKind::Zipf;
    spec.universe = 500'000;
    spec.zipfAlpha = 0.9;
    spec.seed = 2;
    TraceGenerator gen(spec);
    std::vector<RowId> rows;
    for (int i = 0; i < 100'000; ++i)
        rows.push_back(gen.next());

    double r1 = lruPageCacheHitRate(rows, 128, 4096, 1 << 20);
    double r16 = lruPageCacheHitRate(rows, 128, 4096, 16 << 20);
    double r64 = lruPageCacheHitRate(rows, 128, 4096, 64 << 20);
    EXPECT_LT(r1, r16);
    EXPECT_LE(r16, r64);
    EXPECT_GT(r64, 0.3);
}

TEST(LruPageCache, SkewSpreadsHitRates)
{
    // Fig 4's point: different tables' locality spans <10% to >90%.
    auto rate = [](double alpha) {
        TraceSpec spec;
        spec.kind = TraceKind::Zipf;
        spec.universe = 2'000'000;
        spec.zipfAlpha = alpha;
        spec.seed = 3;
        TraceGenerator gen(spec);
        std::vector<RowId> rows;
        for (int i = 0; i < 50'000; ++i)
            rows.push_back(gen.next());
        return lruPageCacheHitRate(rows, 128, 4096, 4 << 20);
    };
    EXPECT_LT(rate(0.4), 0.2);
    EXPECT_GT(rate(1.4), 0.8);
}

}  // namespace
}  // namespace recssd
