/**
 * @file
 * Unit tests for counters, sample stats, histograms and stat groups.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/stats.h"

namespace recssd
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SampleStat, BasicMoments)
{
    SampleStat s;
    for (double v : {2.0, 4.0, 6.0, 8.0})
        s.record(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 8.0);
    EXPECT_DOUBLE_EQ(s.variance(), 5.0);
}

TEST(SampleStat, EmptyIsSafe)
{
    SampleStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, CountsAndExtremes)
{
    Histogram h;
    for (std::uint64_t v : {1ull, 2ull, 4ull, 1024ull, 1000000ull})
        h.record(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 1.0);
    EXPECT_EQ(h.max(), 1000000.0);
}

TEST(Histogram, QuantilesAreMonotonic)
{
    Histogram h;
    for (std::uint64_t i = 1; i <= 10000; ++i)
        h.record(i);
    double p50 = h.quantile(0.5);
    double p90 = h.quantile(0.9);
    double p99 = h.quantile(0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    // Bucketed estimate: p50 of 1..10000 should land within its
    // power-of-two bucket of 5000.
    EXPECT_GT(p50, 2000.0);
    EXPECT_LT(p50, 10000.0);
}

TEST(Gauge, TracksLevelAndHighWater)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(g.highWater(), 0);
    g.inc();
    g.inc(4);
    EXPECT_EQ(g.value(), 5);
    EXPECT_EQ(g.highWater(), 5);
    g.dec(3);
    EXPECT_EQ(g.value(), 2);
    EXPECT_EQ(g.highWater(), 5);  // high water survives the drop
    g.inc(2);
    EXPECT_EQ(g.value(), 4);
    EXPECT_EQ(g.highWater(), 5);  // ...and only a new peak moves it
    g.inc(10);
    EXPECT_EQ(g.highWater(), 14);
    g.reset();
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(g.highWater(), 0);
}

TEST(Histogram, EmptyQuantileIsZero)
{
    Histogram h;
    EXPECT_EQ(h.quantile(0.0), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, SingleSampleIsEveryQuantile)
{
    Histogram h;
    h.record(777);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 777.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 777.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 777.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 777.0);
}

TEST(Histogram, QuantileEndpointsAreMinAndMax)
{
    Histogram h;
    for (std::uint64_t v : {3ull, 50ull, 9000ull})
        h.record(v);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), 3.0);  // clamped below
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 9000.0);
    EXPECT_DOUBLE_EQ(h.quantile(2.0), 9000.0);  // clamped above
}

TEST(Histogram, QuantileNeverLeavesObservedRange)
{
    // Two samples in distant buckets: interpolation inside a bucket
    // must still be clamped to [min, max].
    Histogram h;
    h.record(10);
    h.record(1000);
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        double v = h.quantile(q);
        EXPECT_GE(v, 10.0) << "q=" << q;
        EXPECT_LE(v, 1000.0) << "q=" << q;
    }
}

TEST(Histogram, QuantileInterpolatesWithinBucket)
{
    // 1024 samples spread uniformly through the [1024, 2048) bucket:
    // the interpolated median should land near the bucket middle, not
    // pinned to a boundary.
    Histogram h;
    for (std::uint64_t v = 1024; v < 2048; ++v)
        h.record(v);
    double p50 = h.quantile(0.5);
    EXPECT_GT(p50, 1200.0);
    EXPECT_LT(p50, 1900.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.record(7);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(StatGroup, DumpsRegisteredStats)
{
    Counter c;
    c.inc(3);
    SampleStat s;
    s.record(2.5);
    Histogram h;
    h.record(100);

    StatGroup group("unit");
    group.addCounter("count", &c);
    group.addSample("sample", &s);
    group.addHistogram("hist", &h);

    std::ostringstream os;
    group.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("unit"), std::string::npos);
    EXPECT_NE(text.find("count"), std::string::npos);
    EXPECT_NE(text.find("3"), std::string::npos);
    EXPECT_NE(text.find("sample"), std::string::npos);
    EXPECT_NE(text.find("hist"), std::string::npos);
}

}  // namespace
}  // namespace recssd
