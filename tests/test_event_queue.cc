/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/common/event_queue.h"

namespace recssd
{
namespace
{

TEST(EventQueue, StartsAtZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&]() { order.push_back(3); });
    eq.schedule(10, [&]() { order.push_back(1); });
    eq.schedule(20, [&]() { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&]() {
        eq.scheduleAfter(50, [&]() { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 100)
            eq.scheduleAfter(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.now(), 99u);
    EXPECT_EQ(eq.executed(), 100u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&]() { ++fired; });
    eq.schedule(20, [&]() { ++fired; });
    eq.schedule(30, [&]() { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 0u);  // empty queue: time does not jump
    eq.schedule(100, []() {});
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, []() {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, []() {}), "schedule in the past");
}

TEST(EventQueue, PendingCountsQueuedEvents)
{
    EventQueue eq;
    for (Tick t = 0; t < 10; ++t)
        eq.schedule(t, []() {});
    EXPECT_EQ(eq.pending(), 10u);
    eq.runOne();
    EXPECT_EQ(eq.pending(), 9u);
}

}  // namespace
}  // namespace recssd
