/**
 * @file
 * Unit tests for message formatting and error reporting.
 */

#include <gtest/gtest.h>

#include "src/common/logging.h"

namespace recssd
{
namespace
{

TEST(Logging, FormatBasics)
{
    EXPECT_EQ(format("plain"), "plain");
    EXPECT_EQ(format("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(format("%s/%s", "a", "b"), "a/b");
}

TEST(Logging, FormatLongStrings)
{
    std::string big(5000, 'x');
    EXPECT_EQ(format("%s", big.c_str()).size(), 5000u);
}

TEST(Logging, ThresholdRoundTrips)
{
    LogLevel prev = logThreshold();
    setLogThreshold(LogLevel::Fatal);
    EXPECT_EQ(logThreshold(), LogLevel::Fatal);
    setLogThreshold(prev);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "boom 7");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "bad config");
}

TEST(LoggingDeathTest, AssertMacroNamesCondition)
{
    int x = 1;
    EXPECT_DEATH(recssd_assert(x == 2, "x was %d", x), "x == 2");
}

}  // namespace
}  // namespace recssd
