/**
 * @file
 * Trace generator tests, including the paper's K-locality calibration
 * points (unique fractions and LRU hit rates).
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/trace/stack_distance.h"
#include "src/trace/trace_gen.h"

namespace recssd
{
namespace
{

TEST(TraceGen, SequentialWrapsUniverse)
{
    TraceSpec spec;
    spec.kind = TraceKind::Sequential;
    spec.universe = 5;
    TraceGenerator gen(spec);
    std::vector<RowId> got;
    for (int i = 0; i < 7; ++i)
        got.push_back(gen.next());
    EXPECT_EQ(got, (std::vector<RowId>{0, 1, 2, 3, 4, 0, 1}));
}

TEST(TraceGen, StridedStepsByStride)
{
    TraceSpec spec;
    spec.kind = TraceKind::Strided;
    spec.universe = 1000;
    spec.stride = 128;
    TraceGenerator gen(spec);
    EXPECT_EQ(gen.next(), 0u);
    EXPECT_EQ(gen.next(), 128u);
    EXPECT_EQ(gen.next(), 256u);
}

TEST(TraceGen, UniformStaysInUniverseAndCovers)
{
    TraceSpec spec;
    spec.kind = TraceKind::Uniform;
    spec.universe = 64;
    TraceGenerator gen(spec);
    std::unordered_set<RowId> seen;
    for (int i = 0; i < 2000; ++i) {
        RowId id = gen.next();
        ASSERT_LT(id, 64u);
        seen.insert(id);
    }
    EXPECT_EQ(seen.size(), 64u);
}

TEST(TraceGen, DeterministicPerSeed)
{
    TraceSpec spec;
    spec.kind = TraceKind::LocalityK;
    spec.k = 1.0;
    spec.seed = 5;
    TraceGenerator a(spec);
    TraceGenerator b(spec);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());

    TraceSpec other = spec;
    other.seed = 6;
    TraceGenerator c(spec);
    TraceGenerator d(other);
    int same = 0;
    for (int i = 0; i < 500; ++i)
        same += c.next() == d.next() ? 1 : 0;
    EXPECT_LT(same, 400) << "different seeds must diverge";
}

TEST(TraceGen, NextBatchShapes)
{
    TraceSpec spec;
    spec.kind = TraceKind::Uniform;
    spec.universe = 100;
    TraceGenerator gen(spec);
    auto batch = gen.nextBatch(4, 7);
    ASSERT_EQ(batch.size(), 4u);
    for (const auto &list : batch)
        EXPECT_EQ(list.size(), 7u);
}

TEST(TraceGen, UniqueFractionAnchors)
{
    EXPECT_NEAR(uniqueFractionForK(0.0), 0.13, 0.005);
    EXPECT_NEAR(uniqueFractionForK(2.0), 0.72, 0.005);
    EXPECT_NEAR(uniqueFractionForK(1.0), 0.54, 0.05);
    EXPECT_LT(uniqueFractionForK(0.0), uniqueFractionForK(1.0));
    EXPECT_LT(uniqueFractionForK(1.0), uniqueFractionForK(2.0));
}

class LocalityKTest : public ::testing::TestWithParam<double>
{
};

TEST_P(LocalityKTest, HitRateTracksPaperCalibration)
{
    double k = GetParam();
    TraceSpec spec;
    spec.kind = TraceKind::LocalityK;
    spec.k = k;
    spec.universe = 1'000'000;
    spec.seed = 31;
    TraceGenerator gen(spec);

    StackDistanceAnalyzer analyzer;
    constexpr int n = 40'000;
    for (int i = 0; i < n; ++i)
        analyzer.access(gen.next());

    // The paper quotes 84% / 44% / 28% LRU cache hit rates for
    // K = 0 / 1 / 2 with the 2K-entry host cache.
    double hit = analyzer.hitRateAtCapacity(2048);
    double expect = 1.0 - uniqueFractionForK(k);
    EXPECT_NEAR(hit, expect, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Ks, LocalityKTest,
                         ::testing::Values(0.0, 1.0, 2.0));

TEST(LocalityK, FreshIdsCycleActiveUniverse)
{
    TraceSpec spec;
    spec.kind = TraceKind::LocalityK;
    spec.k = 2.0;
    spec.activeUniverse = 100;
    spec.universe = 1'000'000;
    TraceGenerator gen(spec);
    for (int i = 0; i < 5000; ++i)
        ASSERT_LT(gen.next(), 100u);
}

TEST(StackDistance, KnownSequence)
{
    StackDistanceAnalyzer a;
    EXPECT_EQ(a.access(1), StackDistanceAnalyzer::coldDistance);
    EXPECT_EQ(a.access(2), StackDistanceAnalyzer::coldDistance);
    EXPECT_EQ(a.access(1), 1u);
    EXPECT_EQ(a.access(1), 0u);
    EXPECT_EQ(a.access(2), 1u);
    EXPECT_EQ(a.accesses(), 5u);
    EXPECT_EQ(a.uniqueKeys(), 2u);
    EXPECT_NEAR(a.uniqueFraction(), 0.4, 1e-9);
    EXPECT_NEAR(a.hitRateAtCapacity(1), 0.2, 1e-9);
    EXPECT_NEAR(a.hitRateAtCapacity(2), 0.6, 1e-9);
}

}  // namespace
}  // namespace recssd
