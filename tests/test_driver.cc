/**
 * @file
 * UNVMe driver model and queue allocator tests.
 */

#include <gtest/gtest.h>

#include "src/host/queue_allocator.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

TEST(QueueAllocator, GrantsImmediatelyWhenFree)
{
    QueueAllocator alloc(2);
    int granted = -1;
    alloc.acquire([&](unsigned q) { granted = static_cast<int>(q); });
    EXPECT_EQ(granted, 0);
    EXPECT_EQ(alloc.available(), 1u);
}

TEST(QueueAllocator, FifoWaiters)
{
    QueueAllocator alloc(1);
    std::vector<int> order;
    alloc.acquire([&](unsigned) { order.push_back(0); });
    alloc.acquire([&](unsigned) { order.push_back(1); });
    alloc.acquire([&](unsigned) { order.push_back(2); });
    EXPECT_EQ(order, (std::vector<int>{0}));
    alloc.release(0);
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    alloc.release(0);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(QueueAllocator, ReleaseWithoutWaitersRestoresPool)
{
    QueueAllocator alloc(2);
    unsigned q0 = 99;
    alloc.acquire([&](unsigned q) { q0 = q; });
    alloc.release(q0);
    EXPECT_EQ(alloc.available(), 2u);
}

class DriverTest : public ::testing::Test
{
  protected:
    DriverTest() : sys_(test::smallSystem()) {}

    System sys_;
};

TEST_F(DriverTest, QueueCountRespectsBothSides)
{
    EXPECT_EQ(sys_.driver().numQueues(),
              std::min(sys_.config().host.ioQueues,
                       sys_.config().ssd.nvme.numQueues));
}

TEST_F(DriverTest, RequestIdsAreUniqueAndInRange)
{
    std::uint64_t prev = 0;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t id = sys_.driver().allocRequestId();
        EXPECT_GT(id, 0u);
        EXPECT_LT(id, slsTableAlign);
        EXPECT_NE(id, prev);
        prev = id;
    }
}

TEST_F(DriverTest, ReadChargesIoWorkerThread)
{
    auto table = sys_.installTable(1000, 32);
    Tick busy_before = sys_.driver().ioThread(0).busyTime();
    bool done = false;
    sys_.driver().readPage(0, table.baseLpn,
                           [&](const PageView &) { done = true; });
    sys_.run();
    EXPECT_TRUE(done);
    EXPECT_GE(sys_.driver().ioThread(0).busyTime() - busy_before,
              sys_.config().host.submitCost +
                  sys_.config().host.completionCost);
}

TEST_F(DriverTest, CommandsCounted)
{
    auto table = sys_.installTable(1000, 32);
    for (int i = 0; i < 3; ++i) {
        sys_.driver().readPage(0, table.baseLpn + i,
                               [](const PageView &) {});
        sys_.run();
    }
    EXPECT_EQ(sys_.driver().commandsIssued(), 3u);
}

TEST_F(DriverTest, TrimCommandReachesTheDevice)
{
    // Write then trim through the full driver/NVMe path.
    auto data = std::make_shared<std::vector<std::byte>>(
        sys_.driver().pageSize(), std::byte{0x1F});
    bool wrote = false;
    sys_.driver().writePage(0, 500, data, [&]() { wrote = true; });
    sys_.run();
    ASSERT_TRUE(wrote);

    bool trimmed = false;
    sys_.driver().trimPage(0, 500, [&]() { trimmed = true; });
    sys_.run();
    EXPECT_TRUE(trimmed);
    EXPECT_EQ(sys_.ssd().ftl().hostTrims(), 1u);

    std::vector<std::byte> out(8, std::byte{0xFF});
    sys_.driver().readPage(0, 500, [&](const PageView &view) {
        view.copyOut(0, out);
    });
    sys_.run();
    EXPECT_EQ(out[0], std::byte{0});
}

TEST_F(DriverTest, QueuePairTracksOutstanding)
{
    auto table = sys_.installTable(1000, 32);
    EXPECT_EQ(sys_.driver().queuePair(0).outstanding(), 0u);
    bool done = false;
    sys_.driver().readPage(0, table.baseLpn,
                           [&](const PageView &) { done = true; });
    sys_.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sys_.driver().queuePair(0).outstanding(), 0u)
        << "completion must be consumed from the CQ ring";
}

TEST_F(DriverTest, SyncQueueMisusePanics)
{
    auto table = sys_.installTable(1000, 32);
    sys_.driver().readPage(0, table.baseLpn, [](const PageView &) {});
    // Queue 0 busy: a second command on it must trip the assertion.
    EXPECT_DEATH(
        sys_.driver().readPage(0, table.baseLpn, [](const PageView &) {}),
        "sync API misuse");
}

TEST_F(DriverTest, MisalignedTableBasePanics)
{
    SlsConfig cfg;
    cfg.featureDim = 4;
    cfg.numResults = 1;
    cfg.pairs = {{0, 0}};
    EXPECT_DEATH(
        sys_.driver().slsConfigWrite(0, 123, 1, cfg, []() {}),
        "aligned");
}

}  // namespace
}  // namespace recssd
