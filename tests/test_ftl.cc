/**
 * @file
 * FTL firmware tests: read/write data path, page cache behaviour,
 * bulk table install, and garbage collection on a tiny geometry.
 */

#include <gtest/gtest.h>

#include "src/flash/flash_array.h"
#include "src/ftl/ftl.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

class FtlTest : public ::testing::Test
{
  protected:
    FtlTest()
        : store_(flashParams_.pageSize),
          flash_(eq_, flashParams_, store_),
          ftl_(eq_, ftlParams(), flash_)
    {
    }

    static FtlParams
    ftlParams()
    {
        FtlParams p;
        p.pageCachePages = 8;
        p.pageCacheWays = 4;
        return p;
    }

    std::vector<std::byte>
    page(std::uint8_t seed)
    {
        std::vector<std::byte> data(flashParams_.pageSize);
        for (std::size_t i = 0; i < data.size(); ++i)
            data[i] = std::byte(static_cast<std::uint8_t>(seed + i % 13));
        return data;
    }

    std::vector<std::byte>
    readSync(Lpn lpn)
    {
        std::vector<std::byte> out(flashParams_.pageSize);
        bool done = false;
        ftl_.hostRead(lpn, [&](const PageView &view) {
            view.copyOut(0, out);
            done = true;
        });
        eq_.run();
        EXPECT_TRUE(done);
        return out;
    }

    void
    writeSync(Lpn lpn, const std::vector<std::byte> &data)
    {
        bool done = false;
        ftl_.hostWrite(lpn, data, [&]() { done = true; });
        eq_.run();
        EXPECT_TRUE(done);
    }

    FlashParams flashParams_ = test::tinyFlash();
    EventQueue eq_;
    DataStore store_;
    FlashArray flash_;
    Ftl ftl_;
};

TEST_F(FtlTest, WriteReadRoundTrip)
{
    auto data = page(5);
    writeSync(3, data);
    EXPECT_EQ(readSync(3), data);
    EXPECT_EQ(ftl_.hostWrites(), 1u);
    EXPECT_EQ(ftl_.hostReads(), 1u);
}

TEST_F(FtlTest, UnmappedReadsZero)
{
    auto out = readSync(42);
    for (auto b : out)
        EXPECT_EQ(b, std::byte{0});
    EXPECT_EQ(flash_.pageReads(), 0u) << "no flash access for trimmed page";
}

TEST_F(FtlTest, OverwriteReturnsNewData)
{
    writeSync(1, page(1));
    auto newer = page(2);
    writeSync(1, newer);
    EXPECT_EQ(readSync(1), newer);
}

TEST_F(FtlTest, PageCacheServesRepeatReads)
{
    writeSync(9, page(9));
    // The write itself inserts into the page cache, so the first
    // read is already a hit.
    std::uint64_t flash_reads = flash_.pageReads();
    readSync(9);
    readSync(9);
    EXPECT_EQ(flash_.pageReads(), flash_reads)
        << "cached reads must not touch flash";
}

TEST_F(FtlTest, CacheMissGoesToFlashThenCaches)
{
    writeSync(1, page(1));
    // Evict LPN 1 by filling its set with conflicting writes is
    // fiddly; instead invalidate directly.
    ftl_.pageCache().invalidate(1);
    std::uint64_t before = flash_.pageReads();
    readSync(1);
    EXPECT_EQ(flash_.pageReads(), before + 1);
    readSync(1);
    EXPECT_EQ(flash_.pageReads(), before + 1) << "second read cached";
}

TEST_F(FtlTest, BulkInstallReadsSynthetic)
{
    ftl_.bulkInstall(100, 32, [](std::uint64_t page_idx, std::size_t off,
                                 std::span<std::byte> out) {
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = std::byte(
                static_cast<std::uint8_t>(page_idx * 3 + off + i));
    });
    auto out = readSync(117);
    EXPECT_EQ(out[0], std::byte(static_cast<std::uint8_t>(17 * 3)));
    EXPECT_EQ(out[5], std::byte(static_cast<std::uint8_t>(17 * 3 + 5)));
}

TEST_F(FtlTest, BulkRegionCanBeOverwritten)
{
    ftl_.bulkInstall(0, 32, [](std::uint64_t, std::size_t,
                               std::span<std::byte> out) {
        std::ranges::fill(out, std::byte{0x11});
    });
    auto data = page(77);
    writeSync(3, data);
    EXPECT_EQ(readSync(3), data);
    // Neighbours still come from the synthetic region.
    EXPECT_EQ(readSync(4)[0], std::byte{0x11});
}

TEST_F(FtlTest, GcPreservesAllData)
{
    // Tiny drive: 8 rows x 32 pages = 256 physical pages. Write 64
    // logical pages four times over to force garbage collection.
    constexpr Lpn kLogical = 64;
    std::vector<std::uint8_t> seed(kLogical, 0);
    for (int round = 0; round < 4; ++round) {
        for (Lpn l = 0; l < kLogical; ++l) {
            seed[l] = static_cast<std::uint8_t>(round * 64 + l % 50);
            writeSync(l, page(seed[l]));
        }
    }
    EXPECT_GT(ftl_.gcRuns(), 0u) << "workload must trigger GC";
    for (Lpn l = 0; l < kLogical; ++l)
        EXPECT_EQ(readSync(l), page(seed[l])) << "LPN " << l;
}

TEST_F(FtlTest, GcReclaimsSpace)
{
    constexpr Lpn kLogical = 48;
    for (int round = 0; round < 6; ++round) {
        for (Lpn l = 0; l < kLogical; ++l)
            writeSync(l, page(static_cast<std::uint8_t>(l + round)));
    }
    // 288 writes on a 256-page drive only works if GC reclaims.
    // (Greedy victimization may find fully-invalid rows, so zero
    // migrated pages is legitimate; reclaimed space is the contract.)
    EXPECT_GE(ftl_.hostWrites(), 6u * kLogical);
    EXPECT_GT(ftl_.gcRuns(), 0u);
    EXPECT_GE(ftl_.blocks().freeRows(), 1u);
}

TEST_F(FtlTest, TrimDropsDataAndReclaimsSpace)
{
    writeSync(5, page(5));
    std::uint64_t row =
        ftl_.blocks().rowOf(ftl_.map().lookup(5));
    std::uint32_t valid_before = ftl_.blocks().rowValidCount(row);

    bool trimmed = false;
    ftl_.hostTrim(5, [&]() { trimmed = true; });
    eq_.run();
    EXPECT_TRUE(trimmed);
    EXPECT_EQ(ftl_.hostTrims(), 1u);
    EXPECT_EQ(ftl_.blocks().rowValidCount(row), valid_before - 1);

    auto out = readSync(5);
    for (auto b : out)
        EXPECT_EQ(b, std::byte{0}) << "trimmed page must read zero";
    EXPECT_FALSE(ftl_.map().mapped(5));
}

TEST_F(FtlTest, TrimOfRegionPageExposesRegionAgain)
{
    ftl_.bulkInstall(0, 32, [](std::uint64_t, std::size_t,
                               std::span<std::byte> out) {
        std::ranges::fill(out, std::byte{0x33});
    });
    writeSync(4, page(9));
    EXPECT_EQ(readSync(4), page(9));
    ftl_.hostTrim(4, nullptr);
    eq_.run();
    // The overlay is gone; the immutable bulk data shows through.
    EXPECT_EQ(readSync(4)[0], std::byte{0x33});
}

TEST_F(FtlTest, TrimUnmappedPageIsHarmless)
{
    ftl_.hostTrim(77, nullptr);
    eq_.run();
    auto out = readSync(77);
    EXPECT_EQ(out[0], std::byte{0});
}

TEST_F(FtlTest, CpuSerializesCommandHandling)
{
    // Two concurrent reads of uncached pages: command handling is
    // serialized on the firmware core even though flash is parallel.
    writeSync(0, page(1));
    writeSync(1, page(2));
    ftl_.pageCache().invalidate(0);
    ftl_.pageCache().invalidate(1);
    Tick t0 = eq_.now();
    int done = 0;
    ftl_.hostRead(0, [&](const PageView &) { ++done; });
    ftl_.hostRead(1, [&](const PageView &) { ++done; });
    eq_.run();
    EXPECT_EQ(done, 2);
    EXPECT_GE(eq_.now() - t0, 2 * ftl_.params().readCmdCpu);
}

}  // namespace
}  // namespace recssd
