/**
 * @file
 * Zero-tenant byte-identity of the QoS layer (`ctest -L qos`).
 *
 * The multi-tenant path must cost nothing when unused: a default
 * serve run never constructs a `QosScheduler`, exports no
 * `serve.tenant.*` / qos stats, and every serving-path edit this
 * subsystem made (`submitTagged`, the `tenantAware` fuse gate, the
 * `tenantId` shape field) is gated so the artifacts — total ticks,
 * final clock, stats JSON — stay bit-identical to the seed. Same
 * pattern as tests/test_layout_differential.cc; the absolute seed
 * timing itself is pinned by tests/test_golden_latency.cc.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/qos/tenant_serve.h"
#include "src/reco/serving.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

struct RunArtifacts
{
    Tick finalNow = 0;
    double p99Us = 0.0;
    unsigned completed = 0;
    std::string statsJson;
};

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.tables = {TableGroup{2, 50'000, 16, 8}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

RunnerOptions
ndpOptions()
{
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    return opt;
}

ServeConfig
serveConfig()
{
    ServeConfig scfg;
    scfg.arrivals.qps = 50.0;
    scfg.shape.minBatch = 2;
    scfg.shape.maxBatch = 4;
    scfg.batching.maxBatchSamples = 8;
    scfg.batching.maxWait = 200 * usec;
    scfg.batching.maxInFlight = 2;
    scfg.queries = 30;
    scfg.warmupQueries = 3;
    scfg.seed = 42;
    return scfg;
}

/** One plain (zero-tenant) serve run; everything a diff can bite. */
RunArtifacts
runPlainServe(const BatchPolicy &batching)
{
    System sys(test::smallSystem());
    ModelRunner runner(sys, tinyModel(), ndpOptions());
    ServeConfig scfg = serveConfig();
    scfg.batching = batching;
    ServeStats s = runServe(runner, scfg);

    RunArtifacts out;
    out.finalNow = sys.eq().now();
    out.p99Us = s.p99Us;
    out.completed = s.completedQueries;
    std::ostringstream os;
    sys.dumpStatsJson(os);
    out.statsJson = os.str();
    return out;
}

TEST(QosDifferential, PlainServeExportsNoTenantStats)
{
    RunArtifacts seed = runPlainServe(serveConfig().batching);
    EXPECT_EQ(seed.statsJson.find("serve.tenant"), std::string::npos)
        << "no serve.tenant.* keys may exist without --tenants";
    EXPECT_EQ(seed.statsJson.find("qos"), std::string::npos)
        << "no qos keys may exist without --tenants";
    EXPECT_EQ(seed.completed, 30u);
}

TEST(QosDifferential, TenantAwareFlagIsInertOnUniformShapes)
{
    // `tenantAware` only changes batch formation when adjacent queries
    // differ in (tablesTouched, poolingScale). A uniform-shape load
    // must be tick-for-tick and stats-JSON byte-identical either way:
    // the flag gates the fuse break, nothing else.
    ServeConfig base = serveConfig();

    BatchPolicy off = base.batching;
    RunArtifacts seed = runPlainServe(off);

    BatchPolicy on = base.batching;
    on.tenantAware = true;
    RunArtifacts aware = runPlainServe(on);

    EXPECT_EQ(seed.finalNow, aware.finalNow)
        << "tenantAware must be tick-for-tick inert on uniform shapes";
    EXPECT_EQ(seed.p99Us, aware.p99Us);
    EXPECT_EQ(seed.statsJson, aware.statsJson)
        << "tenantAware must export byte-identical stats JSON";
}

TEST(QosDifferential, PlainServeIsByteReproducible)
{
    // The full zero-tenant artifact set replays byte-equal: the
    // tenantId field rides every QueryShape and submitTagged carries
    // every query, so any nondeterminism they introduced would
    // surface here (and against the golden pins).
    RunArtifacts first = runPlainServe(serveConfig().batching);
    RunArtifacts second = runPlainServe(serveConfig().batching);
    EXPECT_EQ(first.finalNow, second.finalNow);
    EXPECT_EQ(first.statsJson, second.statsJson);
}

TEST(QosDifferential, UniformShapeLoadFusesIdenticallyWhenAware)
{
    // Same check at the fuse-accounting level: identical batch counts
    // and coalescing under both flag values.
    ServeConfig base = serveConfig();
    System sysA(test::smallSystem());
    ModelRunner runnerA(sysA, tinyModel(), ndpOptions());
    ServeStats a = runServe(runnerA, base);

    ServeConfig awareCfg = base;
    awareCfg.batching.tenantAware = true;
    System sysB(test::smallSystem());
    ModelRunner runnerB(sysB, tinyModel(), ndpOptions());
    ServeStats b = runServe(runnerB, awareCfg);

    EXPECT_EQ(a.batchesDispatched, b.batchesDispatched);
    EXPECT_EQ(a.avgCoalescedSamples, b.avgCoalescedSamples);
}

}  // namespace
}  // namespace recssd
