/**
 * @file
 * Unit and property tests for the cache family: the generic LRU
 * template, the key-only set-associative LRU, the FTL page cache, the
 * host embedding cache and the static partition.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "src/cache/host_embedding_cache.h"
#include "src/cache/lru_cache.h"
#include "src/cache/set_assoc_lru.h"
#include "src/cache/static_partition.h"
#include "src/common/random.h"
#include "src/ftl/page_cache.h"

namespace recssd
{
namespace
{

TEST(LruCache, BasicPutGet)
{
    LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    EXPECT_EQ(*cache.get(1), 10);
    EXPECT_EQ(*cache.get(2), 20);
    EXPECT_EQ(cache.get(3), nullptr);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed)
{
    LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    cache.get(1);          // 2 becomes LRU
    cache.put(3, 30);      // evicts 2
    EXPECT_NE(cache.get(1), nullptr);
    EXPECT_EQ(cache.get(2), nullptr);
    EXPECT_NE(cache.get(3), nullptr);
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCache, PutOverwritesAndPromotes)
{
    LruCache<int, int> cache(2);
    cache.put(1, 10);
    cache.put(2, 20);
    cache.put(1, 11);  // promote 1
    cache.put(3, 30);  // evicts 2
    EXPECT_EQ(*cache.get(1), 11);
    EXPECT_EQ(cache.get(2), nullptr);
}

/** Property: LruCache matches a straightforward reference model. */
TEST(LruCache, MatchesReferenceModel)
{
    constexpr std::size_t kCap = 16;
    LruCache<std::uint64_t, std::uint64_t> cache(kCap);
    // Reference: map + recency list.
    std::vector<std::uint64_t> recency;  // front = MRU
    std::map<std::uint64_t, std::uint64_t> ref;
    Rng rng(77);
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t key = rng.uniformInt(64);
        auto *hit = cache.get(key);
        bool ref_hit = ref.contains(key);
        ASSERT_EQ(hit != nullptr, ref_hit) << "step " << i;
        if (ref_hit) {
            ASSERT_EQ(*hit, ref[key]);
            recency.erase(std::find(recency.begin(), recency.end(), key));
            recency.insert(recency.begin(), key);
        } else {
            std::uint64_t value = rng();
            cache.put(key, value);
            if (ref.size() >= kCap) {
                ref.erase(recency.back());
                recency.pop_back();
            }
            ref[key] = value;
            recency.insert(recency.begin(), key);
        }
    }
}

class SetAssocLruTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SetAssocLruTest, HitsAfterInsert)
{
    unsigned ways = GetParam();
    SetAssocLru cache(64 * ways / ways * ways, ways);
    EXPECT_FALSE(cache.access(5));
    EXPECT_TRUE(cache.access(5));
    EXPECT_TRUE(cache.contains(5));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST_P(SetAssocLruTest, WorkingSetWithinCapacityAlwaysHits)
{
    unsigned ways = GetParam();
    SetAssocLru cache(256, ways);
    // A tiny working set re-accessed in a loop must stabilize at
    // 100% hits regardless of associativity. Warm the set first.
    for (std::uint64_t k = 0; k < 8; ++k)
        cache.access(k);
    cache.resetStats();
    for (int round = 0; round < 4; ++round) {
        for (std::uint64_t k = 0; k < 8; ++k)
            cache.access(k);
    }
    EXPECT_EQ(cache.misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Ways, SetAssocLruTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

TEST(SetAssocLru, FullyAssocMatchesLruSemantics)
{
    SetAssocLru cache(4, 4);  // one set of 4 ways = fully associative
    for (std::uint64_t k : {1, 2, 3, 4})
        cache.access(k);
    cache.access(1);   // 2 is now LRU
    cache.access(5);   // evicts 2
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_TRUE(cache.contains(5));
}

TEST(PageCache, LookupInsertInvalidate)
{
    PageCache cache(16, 4);
    Ppn out = 0;
    EXPECT_FALSE(cache.lookup(1, out));
    cache.insert(1, 100);
    EXPECT_TRUE(cache.lookup(1, out));
    EXPECT_EQ(out, 100u);
    cache.insert(1, 200);  // update in place
    EXPECT_TRUE(cache.lookup(1, out));
    EXPECT_EQ(out, 200u);
    cache.invalidate(1);
    EXPECT_FALSE(cache.lookup(1, out));
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(PageCacheDeathTest, BadGeometryPanics)
{
    EXPECT_DEATH(PageCache(10, 4), "multiple of ways");
}

TEST(HostEmbeddingCache, PerTableIsolation)
{
    HostEmbeddingCache cache(2);
    cache.put(0, 5, {1.0f});
    cache.put(1, 5, {2.0f});
    EXPECT_EQ((*cache.get(0, 5))[0], 1.0f);
    EXPECT_EQ((*cache.get(1, 5))[0], 2.0f);
    // Capacity is per table: filling table 0 leaves table 1 alone.
    cache.put(0, 6, {3.0f});
    cache.put(0, 7, {4.0f});  // evicts row 5 of table 0
    EXPECT_EQ(cache.get(0, 5), nullptr);
    EXPECT_NE(cache.get(1, 5), nullptr);
}

TEST(HostEmbeddingCache, AggregatedStats)
{
    HostEmbeddingCache cache(4);
    cache.get(0, 1);
    cache.put(0, 1, {1.0f});
    cache.get(0, 1);
    cache.get(1, 9);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_NEAR(cache.hitRate(), 1.0 / 3.0, 1e-9);
    cache.resetStats();
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(StaticPartition, KeepsHottestRows)
{
    StaticPartition part(2);
    for (int i = 0; i < 10; ++i)
        part.profile(0, 1);
    for (int i = 0; i < 5; ++i)
        part.profile(0, 2);
    part.profile(0, 3);
    part.build([](std::uint32_t, RowId row) {
        return std::vector<float>{static_cast<float>(row)};
    });
    EXPECT_TRUE(part.built());
    EXPECT_EQ(part.residentRows(0), 2u);
    EXPECT_NE(part.lookup(0, 1), nullptr);
    EXPECT_NE(part.lookup(0, 2), nullptr);
    EXPECT_EQ(part.lookup(0, 3), nullptr);
    EXPECT_EQ(part.hits(), 2u);
    EXPECT_EQ(part.misses(), 1u);
}

TEST(StaticPartition, ValuesComeFromProvider)
{
    StaticPartition part(1);
    part.profile(7, 42);
    part.build([](std::uint32_t table, RowId row) {
        return std::vector<float>{static_cast<float>(table * 1000 + row)};
    });
    EXPECT_EQ((*part.lookup(7, 42))[0], 7042.0f);
}

TEST(StaticPartitionDeathTest, LookupBeforeBuildPanics)
{
    StaticPartition part(1);
    EXPECT_DEATH(part.lookup(0, 0), "not built");
}

TEST(StaticPartitionDeathTest, ProfileAfterBuildPanics)
{
    StaticPartition part(1);
    part.profile(0, 0);
    part.build([](std::uint32_t, RowId) { return std::vector<float>{}; });
    EXPECT_DEATH(part.profile(0, 1), "frozen");
}

}  // namespace
}  // namespace recssd
