/**
 * @file
 * Golden simulated-latency totals.
 *
 * The simulator's value is its timing model; a refactor that silently
 * shifts modeled latency is as much a regression as a wrong pooled
 * vector. For one pinned seed and a tiny model, the summed tick
 * latency of a fixed batch sequence on each backend is a constant of
 * the codebase. If a change moves one of these totals *intentionally*
 * (a timing-model improvement), update the constant in the same
 * commit and say why; the failure message prints old and new values
 * to make that diff explicit.
 */

#include <gtest/gtest.h>

#include "src/reco/model_runner.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.tables = {TableGroup{2, 50'000, 16, 8}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

/** Summed tick latency of 4 batches of 8 on a fresh system. */
Tick
totalLatency(EmbeddingBackendKind backend, bool cache_or_partition)
{
    System sys(test::smallSystem());
    RunnerOptions opt;
    opt.backend = backend;
    opt.forceAllTablesOnSsd = backend != EmbeddingBackendKind::Dram;
    opt.hostLruCache = cache_or_partition &&
                       backend == EmbeddingBackendKind::BaselineSsd;
    opt.staticPartition = cache_or_partition &&
                          backend == EmbeddingBackendKind::Ndp;
    opt.trace.kind = TraceKind::LocalityK;
    opt.trace.k = 1.0;
    opt.seed = 20260806;
    ModelRunner runner(sys, tinyModel(), opt);

    Tick total = 0;
    for (int b = 0; b < 4; ++b) {
        runner.launchBatch(8, [&](Tick latency) { total += latency; });
        sys.run();
    }
    return total;
}

// The pinned constants. Regenerate by running this binary and copying
// the "new" values from the failure output.
constexpr Tick kGoldenDram = 35'532;
constexpr Tick kGoldenBaselineSsd = 14'993'272;
constexpr Tick kGoldenBaselineSsdCached = 13'183'424;
constexpr Tick kGoldenNdp = 6'022'114;
constexpr Tick kGoldenNdpPartitioned = 15'532;

TEST(GoldenLatency, Dram)
{
    Tick now = totalLatency(EmbeddingBackendKind::Dram, false);
    EXPECT_EQ(now, kGoldenDram)
        << "DRAM golden latency changed: old " << kGoldenDram << " new "
        << now << " ticks. Update the constant only for an intentional "
        << "timing-model change.";
}

TEST(GoldenLatency, BaselineSsd)
{
    Tick now = totalLatency(EmbeddingBackendKind::BaselineSsd, false);
    EXPECT_EQ(now, kGoldenBaselineSsd)
        << "baseline-SSD golden latency changed: old "
        << kGoldenBaselineSsd << " new " << now << " ticks.";
}

TEST(GoldenLatency, BaselineSsdWithHostCache)
{
    Tick now = totalLatency(EmbeddingBackendKind::BaselineSsd, true);
    EXPECT_EQ(now, kGoldenBaselineSsdCached)
        << "cached-baseline golden latency changed: old "
        << kGoldenBaselineSsdCached << " new " << now << " ticks.";
}

TEST(GoldenLatency, Ndp)
{
    Tick now = totalLatency(EmbeddingBackendKind::Ndp, false);
    EXPECT_EQ(now, kGoldenNdp)
        << "NDP golden latency changed: old " << kGoldenNdp << " new "
        << now << " ticks.";
}

TEST(GoldenLatency, NdpWithPartition)
{
    Tick now = totalLatency(EmbeddingBackendKind::Ndp, true);
    EXPECT_EQ(now, kGoldenNdpPartitioned)
        << "partitioned-NDP golden latency changed: old "
        << kGoldenNdpPartitioned << " new " << now << " ticks.";
}

TEST(GoldenLatency, RelationshipsHold)
{
    // Independent of the exact constants: SSD must cost more than
    // DRAM, and the paper's optimizations must not slow their
    // baselines down on a locality-friendly trace.
    Tick dram = totalLatency(EmbeddingBackendKind::Dram, false);
    Tick base = totalLatency(EmbeddingBackendKind::BaselineSsd, false);
    Tick cached = totalLatency(EmbeddingBackendKind::BaselineSsd, true);
    Tick ndp = totalLatency(EmbeddingBackendKind::Ndp, false);
    EXPECT_LT(dram, base);
    EXPECT_LE(cached, base);
    EXPECT_LT(ndp, base) << "NDP offload must beat page-granular reads";
}

}  // namespace
}  // namespace recssd
