/**
 * @file
 * Golden simulated-latency totals.
 *
 * The simulator's value is its timing model; a refactor that silently
 * shifts modeled latency is as much a regression as a wrong pooled
 * vector. For one pinned seed and a tiny model, the summed tick
 * latency of a fixed batch sequence on each backend is a constant of
 * the codebase. If a change moves one of these totals *intentionally*
 * (a timing-model improvement), update the constant in the same
 * commit and say why; the failure message prints old and new values
 * to make that diff explicit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/reco/model_runner.h"
#include "src/reco/serving.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.tables = {TableGroup{2, 50'000, 16, 8}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

/** Summed tick latency of 4 batches of 8 on a fresh system. */
Tick
totalLatency(EmbeddingBackendKind backend, bool cache_or_partition,
             unsigned num_ssds = 1,
             ShardPolicy policy = ShardPolicy::TableHash)
{
    SystemConfig cfg = test::smallSystem();
    cfg.shard.numShards = num_ssds;
    cfg.shard.policy = policy;
    System sys(cfg);
    RunnerOptions opt;
    opt.backend = backend;
    opt.forceAllTablesOnSsd = backend != EmbeddingBackendKind::Dram;
    opt.hostLruCache = cache_or_partition &&
                       backend == EmbeddingBackendKind::BaselineSsd;
    opt.staticPartition = cache_or_partition &&
                          backend == EmbeddingBackendKind::Ndp;
    opt.trace.kind = TraceKind::LocalityK;
    opt.trace.k = 1.0;
    opt.seed = 20260806;
    ModelRunner runner(sys, tinyModel(), opt);

    Tick total = 0;
    for (int b = 0; b < 4; ++b) {
        runner.launchBatch(8, [&](Tick latency) { total += latency; });
        sys.run();
    }
    return total;
}

// The pinned constants. Regenerate by running this binary and copying
// the "new" values from the failure output.
constexpr Tick kGoldenDram = 35'532;
constexpr Tick kGoldenBaselineSsd = 14'993'272;
constexpr Tick kGoldenBaselineSsdCached = 13'183'424;
constexpr Tick kGoldenNdp = 6'022'114;
constexpr Tick kGoldenNdpPartitioned = 15'532;

TEST(GoldenLatency, Dram)
{
    Tick now = totalLatency(EmbeddingBackendKind::Dram, false);
    EXPECT_EQ(now, kGoldenDram)
        << "DRAM golden latency changed: old " << kGoldenDram << " new "
        << now << " ticks. Update the constant only for an intentional "
        << "timing-model change.";
}

TEST(GoldenLatency, BaselineSsd)
{
    Tick now = totalLatency(EmbeddingBackendKind::BaselineSsd, false);
    EXPECT_EQ(now, kGoldenBaselineSsd)
        << "baseline-SSD golden latency changed: old "
        << kGoldenBaselineSsd << " new " << now << " ticks.";
}

TEST(GoldenLatency, BaselineSsdWithHostCache)
{
    Tick now = totalLatency(EmbeddingBackendKind::BaselineSsd, true);
    EXPECT_EQ(now, kGoldenBaselineSsdCached)
        << "cached-baseline golden latency changed: old "
        << kGoldenBaselineSsdCached << " new " << now << " ticks.";
}

TEST(GoldenLatency, Ndp)
{
    Tick now = totalLatency(EmbeddingBackendKind::Ndp, false);
    EXPECT_EQ(now, kGoldenNdp)
        << "NDP golden latency changed: old " << kGoldenNdp << " new "
        << now << " ticks.";
}

TEST(GoldenLatency, NdpWithPartition)
{
    Tick now = totalLatency(EmbeddingBackendKind::Ndp, true);
    EXPECT_EQ(now, kGoldenNdpPartitioned)
        << "partitioned-NDP golden latency changed: old "
        << kGoldenNdpPartitioned << " new " << now << " ticks.";
}

TEST(GoldenLatency, ShardedSingleDeviceIsTheSeedPath)
{
    // A one-device sharded system is not "almost" the seed system: it
    // takes the identical code path (pass-through backend, unprefixed
    // trace tracks, same LPN layout) and must reproduce every golden
    // above, under both policies.
    for (auto policy : {ShardPolicy::TableHash, ShardPolicy::RowRange}) {
        EXPECT_EQ(totalLatency(EmbeddingBackendKind::Dram, false, 1,
                               policy),
                  kGoldenDram);
        EXPECT_EQ(totalLatency(EmbeddingBackendKind::BaselineSsd, false,
                               1, policy),
                  kGoldenBaselineSsd);
        EXPECT_EQ(totalLatency(EmbeddingBackendKind::BaselineSsd, true,
                               1, policy),
                  kGoldenBaselineSsdCached);
        EXPECT_EQ(totalLatency(EmbeddingBackendKind::Ndp, false, 1,
                               policy),
                  kGoldenNdp);
        EXPECT_EQ(totalLatency(EmbeddingBackendKind::Ndp, true, 1,
                               policy),
                  kGoldenNdpPartitioned);
    }
}

TEST(GoldenLatency, ShardedSingleDeviceStatsJsonBytes)
{
    // The exported stats JSON of an explicit numShards=1 system must
    // be byte-for-byte the default system's (no ssd0.* subtree, no
    // reordered keys) after identical work.
    std::string dumps[2];
    for (int pass = 0; pass < 2; ++pass) {
        SystemConfig cfg = test::smallSystem();
        if (pass == 1) {
            cfg.shard.numShards = 1;
            cfg.shard.policy = ShardPolicy::RowRange;
        }
        System sys(cfg);
        RunnerOptions opt;
        opt.backend = EmbeddingBackendKind::Ndp;
        opt.forceAllTablesOnSsd = true;
        opt.seed = 20260806;
        ModelRunner runner(sys, tinyModel(), opt);
        for (int b = 0; b < 2; ++b)
            runner.runBatch(8);
        std::ostringstream os;
        sys.dumpStatsJson(os);
        dumps[pass] = os.str();
    }
    EXPECT_EQ(dumps[0], dumps[1]);
}

/** Serve-mode measurements on an N-device sharded system. */
ServeStats
serveStats(unsigned num_ssds, ShardPolicy policy)
{
    SystemConfig cfg = test::smallSystem();
    cfg.shard.numShards = num_ssds;
    cfg.shard.policy = policy;
    System sys(cfg);
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    // Uniform accesses, so row-range ops genuinely span every shard
    // (a k=1.0 locality trace never leaves shard 0's row range and
    // would make every layout time out identically).
    opt.trace.kind = TraceKind::Uniform;
    opt.seed = 20260806;
    ModelRunner runner(sys, tinyModel(), opt);

    ServeConfig scfg;
    // Light load: no standing backlog, so the measured latency is the
    // per-query service path (where the shard layout matters), not
    // arrival-driven queueing (where every layout looks the same).
    scfg.arrivals.qps = 300.0;
    scfg.shape.minBatch = 4;
    scfg.shape.maxBatch = 4;
    scfg.queries = 24;
    scfg.warmupQueries = 4;
    scfg.seed = 20260806;
    return runServe(runner, scfg);
}

/** Mean end-to-end serve latency in whole nanoseconds. */
Tick
meanNs(const ServeStats &s)
{
    return Tick(std::llround(s.meanLatencyUs * 1'000.0));
}

// Serve-mode goldens: the measured latency of a pinned open-loop run
// (in ns, so the comparison is exact). Regenerate like the latency
// constants above.
constexpr Tick kGoldenServeMeanNs = 1'967'000;
constexpr Tick kGoldenServeSharded2HashMeanNs = 1'967'000;
constexpr Tick kGoldenServeSharded2RangeMeanNs = 1'298'099;

TEST(GoldenLatency, ServeShardedSingleDeviceMatchesSeed)
{
    // N=1 sharded serve must reproduce the seed golden under both
    // policies, down to the per-queue NVMe command spread.
    for (auto policy : {ShardPolicy::TableHash, ShardPolicy::RowRange}) {
        ServeStats s = serveStats(1, policy);
        EXPECT_EQ(meanNs(s), kGoldenServeMeanNs)
            << "single-device serve golden changed under policy "
            << shardPolicyName(policy) << ": old " << kGoldenServeMeanNs
            << " new " << meanNs(s) << " ns.";
        ASSERT_EQ(s.perDevice.size(), 1u);
        EXPECT_EQ(s.perDevice[0].commandsPerQueue, s.commandsPerQueue);
        EXPECT_EQ(s.scatteredOps, 0u);
    }
}

TEST(GoldenLatency, ServeShardedTwoDevices)
{
    ServeStats hash = serveStats(2, ShardPolicy::TableHash);
    EXPECT_EQ(meanNs(hash), kGoldenServeSharded2HashMeanNs)
        << "2-device hash serve golden changed: old "
        << kGoldenServeSharded2HashMeanNs << " new " << meanNs(hash)
        << " ns.";
    EXPECT_EQ(hash.scatteredOps, 0u)
        << "table-hash placement must never fan one op out";
    // splitmix64 happens to place both of tinyModel's tables on
    // device 1, so the 2-device hash timing equals the seed timing
    // with all traffic on the second stack — which doubles as a check
    // that device 1's stack is modeled identically to device 0's.
    ASSERT_EQ(hash.perDevice.size(), 2u);
    EXPECT_EQ(hash.perDevice[0].subOps, 0u);
    EXPECT_GT(hash.perDevice[1].subOps, 0u);

    ServeStats range = serveStats(2, ShardPolicy::RowRange);
    EXPECT_EQ(meanNs(range), kGoldenServeSharded2RangeMeanNs)
        << "2-device range serve golden changed: old "
        << kGoldenServeSharded2RangeMeanNs << " new " << meanNs(range)
        << " ns.";
    EXPECT_GT(range.scatteredOps, 0u)
        << "row-range placement must scatter ops across both devices";
    ASSERT_EQ(range.perDevice.size(), 2u);
    EXPECT_GT(range.perDevice[1].subOps, 0u);
}

// Mixed read-write golden: the same pinned serve run with an online
// update stream competing for firmware CPU and queues. Pins the read
// latency AND the exact write-path counters, so a change that shifts
// flush batching, replica fan-out or GC cadence fails loudly even if
// the read tail happens to absorb it.
constexpr Tick kGoldenMixedServeMeanNs = 5'667'342;
constexpr std::uint64_t kGoldenMixedApplied = 1'839;
constexpr std::uint64_t kGoldenMixedHostPageWrites = 1'839;
constexpr std::uint64_t kGoldenMixedFlashPageWrites = 1'839;
constexpr std::uint64_t kGoldenMixedGcRuns = 0;

TEST(GoldenLatency, ServeMixedReadWrite)
{
    SystemConfig cfg = test::smallSystem();
    System sys(cfg);
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    opt.trace.kind = TraceKind::Uniform;
    opt.seed = 20260806;
    ModelRunner runner(sys, tinyModel(), opt);

    ServeConfig scfg;
    scfg.arrivals.qps = 300.0;
    scfg.shape.minBatch = 4;
    scfg.shape.maxBatch = 4;
    scfg.queries = 24;
    scfg.warmupQueries = 4;
    scfg.seed = 20260806;
    scfg.updates.rate = 20'000.0;
    scfg.updates.skew = 0.8;
    ServeStats s = runServe(runner, scfg);

    EXPECT_EQ(meanNs(s), kGoldenMixedServeMeanNs)
        << "mixed-RW serve golden changed: old " << kGoldenMixedServeMeanNs
        << " new " << meanNs(s) << " ns.";
    EXPECT_EQ(s.update.applied, kGoldenMixedApplied)
        << "applied-update count changed: old " << kGoldenMixedApplied
        << " new " << s.update.applied;
    EXPECT_EQ(s.update.hostPageWrites, kGoldenMixedHostPageWrites)
        << "host page writes changed: old " << kGoldenMixedHostPageWrites
        << " new " << s.update.hostPageWrites;
    EXPECT_EQ(s.update.flashPageWrites, kGoldenMixedFlashPageWrites)
        << "flash programs changed: old " << kGoldenMixedFlashPageWrites
        << " new " << s.update.flashPageWrites;
    EXPECT_EQ(s.update.gcRuns, kGoldenMixedGcRuns)
        << "GC run count changed: old " << kGoldenMixedGcRuns << " new "
        << s.update.gcRuns;
    // The stream must actually have run: reads raced real writes.
    EXPECT_GT(s.update.applied, 0u);
    EXPECT_GT(s.update.hostPageWrites, 0u);
}

TEST(GoldenLatency, RelationshipsHold)
{
    // Independent of the exact constants: SSD must cost more than
    // DRAM, and the paper's optimizations must not slow their
    // baselines down on a locality-friendly trace.
    Tick dram = totalLatency(EmbeddingBackendKind::Dram, false);
    Tick base = totalLatency(EmbeddingBackendKind::BaselineSsd, false);
    Tick cached = totalLatency(EmbeddingBackendKind::BaselineSsd, true);
    Tick ndp = totalLatency(EmbeddingBackendKind::Ndp, false);
    EXPECT_LT(dram, base);
    EXPECT_LE(cached, base);
    EXPECT_LT(ndp, base) << "NDP offload must beat page-granular reads";
}

}  // namespace
}  // namespace recssd
