/**
 * @file
 * NVMe layer tests: PCIe link model, controller data path, and
 * SLS-command dispatch to the handler interface.
 */

#include <gtest/gtest.h>

#include "src/flash/flash_array.h"
#include "src/ftl/ftl.h"
#include "src/nvme/host_controller.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

TEST(PcieLink, TransferTimeMatchesBandwidthPlusLatency)
{
    EventQueue eq;
    PcieParams p;
    p.bytesPerSec = 1000ull * 1000 * 1000;  // 1GB/s
    p.latency = 2 * usec;
    PcieLink link(eq, p);
    Tick done = 0;
    link.transfer(1000 * 1000, [&]() { done = eq.now(); });  // 1MB -> 1ms
    eq.run();
    EXPECT_EQ(done, 1 * msec + 2 * usec);
    EXPECT_EQ(link.bytesMoved(), 1000u * 1000);
}

TEST(PcieLink, BackToBackTransfersQueue)
{
    EventQueue eq;
    PcieParams p;
    p.bytesPerSec = 1000ull * 1000 * 1000;
    p.latency = 0;
    PcieLink link(eq, p);
    Tick done2 = 0;
    link.transfer(1000 * 1000, nullptr);
    link.transfer(1000 * 1000, [&]() { done2 = eq.now(); });
    eq.run();
    EXPECT_EQ(done2, 2 * msec);
}

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest()
        : store_(flashParams_.pageSize),
          flash_(eq_, flashParams_, store_),
          ftl_(eq_, FtlParams{}, flash_),
          pcie_(eq_, PcieParams{}),
          ctrl_(eq_, NvmeParams{}, pcie_, ftl_)
    {
    }

    FlashParams flashParams_ = test::tinyFlash();
    EventQueue eq_;
    DataStore store_;
    FlashArray flash_;
    Ftl ftl_;
    PcieLink pcie_;
    HostController ctrl_;
};

TEST_F(ControllerTest, WriteThenReadRoundTrip)
{
    auto payload = std::make_shared<std::vector<std::byte>>(
        flashParams_.pageSize, std::byte{0x3C});
    NvmeCommand wr;
    wr.opcode = NvmeOpcode::Write;
    wr.slba = 12;
    wr.payload = payload;
    bool wrote = false;
    ctrl_.submitWrite(wr, [&]() { wrote = true; });
    eq_.run();
    EXPECT_TRUE(wrote);

    NvmeCommand rd;
    rd.opcode = NvmeOpcode::Read;
    rd.slba = 12;
    std::vector<std::byte> out(16);
    ctrl_.submitRead(rd, [&](const PageView &view) {
        view.copyOut(0, out);
    });
    eq_.run();
    EXPECT_EQ(out[0], std::byte{0x3C});
    EXPECT_EQ(ctrl_.commandsProcessed(), 2u);
}

TEST_F(ControllerTest, ReadMovesPageAcrossPcie)
{
    std::uint64_t before = pcie_.bytesMoved();
    NvmeCommand rd;
    rd.slba = 0;
    ctrl_.submitRead(rd, [](const PageView &) {});
    eq_.run();
    EXPECT_GE(pcie_.bytesMoved() - before, flashParams_.pageSize);
}

/** Minimal handler that records what reached it. */
class RecordingHandler : public SlsHandler
{
  public:
    void
    configWrite(const NvmeCommand &cmd, std::function<void()> done) override
    {
        configs.push_back(cmd);
        done();
    }

    void
    resultRead(const NvmeCommand &cmd,
               std::function<void(std::shared_ptr<std::vector<std::byte>>)>
                   done) override
    {
        reads.push_back(cmd);
        done(std::make_shared<std::vector<std::byte>>(64, std::byte{0x7}));
    }

    std::vector<NvmeCommand> configs;
    std::vector<NvmeCommand> reads;
};

TEST_F(ControllerTest, SlsCommandsDispatchToHandler)
{
    RecordingHandler handler;
    ctrl_.setSlsHandler(&handler);

    NvmeCommand cfg;
    cfg.opcode = NvmeOpcode::Write;
    cfg.slsFlag = true;
    cfg.slba = 4242;
    cfg.payload =
        std::make_shared<std::vector<std::byte>>(128, std::byte{1});
    bool cfg_done = false;
    // Submit at t=10 so the doorbell stamp is observable.
    eq_.schedule(10, [&]() {
        ctrl_.submitSlsConfig(cfg, [&]() { cfg_done = true; });
    });
    eq_.run();
    EXPECT_TRUE(cfg_done);
    ASSERT_EQ(handler.configs.size(), 1u);
    EXPECT_EQ(handler.configs[0].slba, 4242u);
    EXPECT_EQ(handler.configs[0].submitTick, 10u)
        << "controller must stamp the doorbell time";

    NvmeCommand rd;
    rd.opcode = NvmeOpcode::Read;
    rd.slsFlag = true;
    rd.slba = 4242;
    std::shared_ptr<std::vector<std::byte>> result;
    ctrl_.submitSlsRead(rd, [&](auto data) { result = data; });
    eq_.run();
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->size(), 64u);
    ASSERT_EQ(handler.reads.size(), 1u);
}

TEST_F(ControllerTest, SlsConfigPayloadCrossesPcie)
{
    RecordingHandler handler;
    ctrl_.setSlsHandler(&handler);
    std::uint64_t before = pcie_.bytesMoved();
    NvmeCommand cfg;
    cfg.opcode = NvmeOpcode::Write;
    cfg.slsFlag = true;
    cfg.payload =
        std::make_shared<std::vector<std::byte>>(10'000, std::byte{1});
    ctrl_.submitSlsConfig(cfg, []() {});
    eq_.run();
    EXPECT_GE(pcie_.bytesMoved() - before, 10'000u);
}

TEST_F(ControllerTest, NonSlsCommandsRejectSlsEntryPoints)
{
    NvmeCommand cmd;
    cmd.slsFlag = false;
    EXPECT_DEATH(ctrl_.submitSlsRead(cmd, [](auto) {}), "SLS");
    cmd.slsFlag = true;
    EXPECT_DEATH(ctrl_.submitRead(cmd, [](const PageView &) {}),
                 "submitSlsRead");
}

}  // namespace
}  // namespace recssd
