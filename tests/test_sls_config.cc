/**
 * @file
 * Tests for the NVMe-compatible SLS interface encoding: config
 * payload serialization and SLBA request-id embedding (§4.3).
 */

#include <gtest/gtest.h>

#include "src/ndp/sls_config.h"
#include "src/nvme/nvme_command.h"

namespace recssd
{
namespace
{

SlsConfig
sampleConfig()
{
    SlsConfig cfg;
    cfg.featureDim = 32;
    cfg.attrBytes = 4;
    cfg.rowsPerPage = 1;
    cfg.numResults = 4;
    cfg.pairs = {{10, 0}, {10, 2}, {55, 1}, {99, 3}, {120, 0}};
    return cfg;
}

TEST(SlsConfig, SerializeDeserializeRoundTrip)
{
    SlsConfig cfg = sampleConfig();
    auto bytes = cfg.serialize();
    EXPECT_EQ(bytes.size(), cfg.wireBytes());
    SlsConfig out;
    ASSERT_TRUE(SlsConfig::deserialize(bytes, out));
    EXPECT_EQ(out, cfg);
}

TEST(SlsConfig, ValidityChecks)
{
    SlsConfig cfg = sampleConfig();
    EXPECT_TRUE(cfg.valid());

    SlsConfig bad = cfg;
    bad.featureDim = 0;
    EXPECT_FALSE(bad.valid());

    bad = cfg;
    bad.attrBytes = 3;
    EXPECT_FALSE(bad.valid());

    bad = cfg;
    bad.rowsPerPage = 0;
    EXPECT_FALSE(bad.valid());

    bad = cfg;
    bad.pairs.clear();
    EXPECT_FALSE(bad.valid());

    bad = cfg;
    bad.pairs = {{50, 0}, {10, 0}};  // unsorted
    EXPECT_FALSE(bad.valid());

    bad = cfg;
    bad.pairs = {{10, 9}};  // resultId >= numResults
    EXPECT_FALSE(bad.valid());
}

TEST(SlsConfig, DeserializeRejectsGarbage)
{
    SlsConfig out;
    std::vector<std::byte> empty;
    EXPECT_FALSE(SlsConfig::deserialize(empty, out));

    std::vector<std::byte> junk(64, std::byte{0x5A});
    EXPECT_FALSE(SlsConfig::deserialize(junk, out));

    // Truncated pair list.
    auto bytes = sampleConfig().serialize();
    bytes.resize(bytes.size() - 4);
    EXPECT_FALSE(SlsConfig::deserialize(bytes, out));

    // Unsorted payload fails validation after decode.
    SlsConfig unsorted = sampleConfig();
    std::swap(unsorted.pairs[0], unsorted.pairs[3]);
    EXPECT_FALSE(SlsConfig::deserialize(unsorted.serialize(), out));
}

TEST(SlsConfig, VectorBytesAndDuplicates)
{
    SlsConfig cfg = sampleConfig();
    EXPECT_EQ(cfg.vectorBytes(), 128u);
    // Duplicate (input, result) pairs are legal: sum twice.
    cfg.pairs = {{5, 0}, {5, 0}};
    EXPECT_TRUE(cfg.valid());
}

TEST(SlsAddress, EncodeDecodeRoundTrip)
{
    for (std::uint64_t table : {0ull, 1ull, 7ull}) {
        std::uint64_t base = table * slsTableAlign;
        for (std::uint64_t req :
             {std::uint64_t(1), std::uint64_t(42), slsTableAlign - 1}) {
            std::uint64_t slba = SlsAddress::encode(base, req);
            auto addr = SlsAddress::decode(slba);
            EXPECT_EQ(addr.tableBase, base);
            EXPECT_EQ(addr.requestId, req);
        }
    }
}

TEST(SlsAddress, TableAlignmentLargeEnoughForPaperTables)
{
    // 1M rows at one 16KB page per row must fit one aligned slot.
    EXPECT_GE(slsTableAlign, 1'000'000u);
}

}  // namespace
}  // namespace recssd
