/**
 * @file
 * Online table update tests: read-modify-write through the block
 * interface, visibility in every backend, and SSD embedding-cache
 * coherence.
 */

#include <gtest/gtest.h>

#include "src/embedding/baseline_backend.h"
#include "src/embedding/ndp_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/embedding/table_update.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

class UpdateTest : public ::testing::Test
{
  protected:
    void
    makeSystem(std::uint64_t cache_bytes = 0)
    {
        SystemConfig cfg = test::smallSystem();
        cfg.ssd.sls.embeddingCacheBytes = cache_bytes;
        sys_ = std::make_unique<System>(cfg);
    }

    void
    update(const EmbeddingTableDesc &table, RowId row,
           const std::vector<float> &values)
    {
        bool done = false;
        updateRow(sys_->driver(), sys_->queues(), table, row, values,
                  [&]() { done = true; });
        sys_->run();
        ASSERT_TRUE(done);
    }

    SlsResult
    runOp(SlsBackend &backend, const EmbeddingTableDesc &table,
          std::vector<std::vector<RowId>> indices)
    {
        SlsOp op;
        op.table = &table;
        op.indices = std::move(indices);
        SlsResult out;
        backend.run(op, [&](SlsResult r) { out = std::move(r); });
        sys_->run();
        return out;
    }

    std::unique_ptr<System> sys_;
};

TEST_F(UpdateTest, SingleRowPageUpdateVisibleToNdp)
{
    makeSystem();
    auto table = sys_->installTable(10'000, 8);
    NdpSlsBackend ndp(sys_->eq(), sys_->cpu(), sys_->driver(),
                      sys_->queues(), NdpSlsBackend::Options{});

    std::vector<float> fresh = {1, 2, 3, 4, 5, 6, 7, 8};
    update(table, 42, fresh);
    auto result = runOp(ndp, table, {{42}});
    EXPECT_EQ(result, fresh);
}

TEST_F(UpdateTest, UpdateVisibleToBaseline)
{
    makeSystem();
    auto table = sys_->installTable(10'000, 8);
    BaselineSsdSlsBackend base(sys_->eq(), sys_->cpu(), sys_->driver(),
                               sys_->queues(),
                               BaselineSsdSlsBackend::Options{});
    std::vector<float> fresh(8, 9.0f);
    update(table, 7, fresh);
    auto result = runOp(base, table, {{7, 100}});
    std::vector<float> expect = fresh;
    for (std::uint32_t e = 0; e < 8; ++e)
        expect[e] += synthetic::value(table.id, 100, e);
    EXPECT_EQ(result, expect);
}

TEST_F(UpdateTest, PackedPageRmwPreservesNeighbours)
{
    makeSystem();
    // 4KB test pages, dim 8 fp32 = 32B vectors -> 128 per page.
    unsigned rows_per_page =
        sys_->config().ssd.flash.pageSize / (8 * 4);
    auto table = sys_->installTable(10'000, 8, 4, rows_per_page);
    NdpSlsBackend ndp(sys_->eq(), sys_->cpu(), sys_->driver(),
                      sys_->queues(), NdpSlsBackend::Options{});

    std::vector<float> fresh(8, 3.0f);
    update(table, 5, fresh);  // same page as rows 0..rows_per_page-1
    auto result = runOp(ndp, table, {{5}, {6}, {4}});
    for (std::uint32_t e = 0; e < 8; ++e) {
        EXPECT_EQ(result[e], 3.0f);
        EXPECT_EQ(result[8 + e], synthetic::value(table.id, 6, e));
        EXPECT_EQ(result[16 + e], synthetic::value(table.id, 4, e));
    }
}

TEST_F(UpdateTest, SsdEmbeddingCacheInvalidatedOnUpdate)
{
    makeSystem(16ull * 1024 * 1024);
    auto table = sys_->installTable(10'000, 8);
    NdpSlsBackend ndp(sys_->eq(), sys_->cpu(), sys_->driver(),
                      sys_->queues(), NdpSlsBackend::Options{});

    // Populate the device cache with the synthetic value.
    auto before = runOp(ndp, table, {{11}});
    EXPECT_EQ(before, synthetic::expectedSls(table, {{11}}));

    std::vector<float> fresh(8, 2.5f);
    update(table, 11, fresh);

    // Without invalidation this would return the stale cached vector.
    auto after = runOp(ndp, table, {{11}});
    EXPECT_EQ(after, fresh);
}

TEST_F(UpdateTest, RepeatedUpdatesConverge)
{
    makeSystem(16ull * 1024 * 1024);
    auto table = sys_->installTable(10'000, 4);
    NdpSlsBackend ndp(sys_->eq(), sys_->cpu(), sys_->driver(),
                      sys_->queues(), NdpSlsBackend::Options{});
    for (float v = 1.0f; v <= 4.0f; v += 1.0f) {
        std::vector<float> fresh(4, v);
        update(table, 3, fresh);
        auto result = runOp(ndp, table, {{3}});
        EXPECT_EQ(result, fresh) << "after update to " << v;
    }
}

TEST_F(UpdateTest, UpdateChargesSimulatedTime)
{
    makeSystem();
    auto table = sys_->installTable(10'000, 8);
    Tick before = sys_->eq().now();
    update(table, 1, std::vector<float>(8, 1.0f));
    EXPECT_GT(sys_->eq().now(), before);
}

TEST_F(UpdateTest, OutOfRangeRowPanics)
{
    makeSystem();
    auto table = sys_->installTable(100, 8);
    EXPECT_DEATH(updateRow(sys_->driver(), sys_->queues(), table, 100,
                           std::vector<float>(8, 0.0f), []() {}),
                 "out of range");
}

}  // namespace
}  // namespace recssd
