/**
 * @file
 * Tail-latency accounting and the batched serving path.
 *
 * Hand-constructed completion streams pin the percentile math to
 * known answers; the scheduler tests lock down coalescing, the
 * never-drop guarantee and monotone degradation under overload.
 */

#include <gtest/gtest.h>

#include "src/load/latency_recorder.h"
#include "src/reco/serving.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.tables = {TableGroup{2, 50'000, 16, 8}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

TEST(LatencyRecorder, NearestRankPercentilesOnKnownStream)
{
    // 1..100us in shuffled-ish order: nearest-rank p50 is the 50th
    // smallest sample, i.e. exactly 50us, and likewise p95/p99.
    LatencyRecorder rec;
    for (int i = 100; i >= 1; --i)
        rec.record(static_cast<Tick>(i) * usec);
    ASSERT_EQ(rec.count(), 100u);
    EXPECT_DOUBLE_EQ(rec.percentileUs(0.50), 50.0);
    EXPECT_DOUBLE_EQ(rec.percentileUs(0.95), 95.0);
    EXPECT_DOUBLE_EQ(rec.percentileUs(0.99), 99.0);
    EXPECT_DOUBLE_EQ(rec.percentileUs(1.00), 100.0);
    EXPECT_DOUBLE_EQ(rec.meanUs(), 50.5);
    EXPECT_DOUBLE_EQ(rec.maxUs(), 100.0);
}

TEST(LatencyRecorder, SmallStreamsClampToFirstSample)
{
    LatencyRecorder rec;
    rec.record(7 * usec);
    // Any quantile of a single sample is that sample.
    EXPECT_EQ(rec.percentile(0.01), 7 * usec);
    EXPECT_EQ(rec.percentile(0.50), 7 * usec);
    EXPECT_EQ(rec.percentile(0.99), 7 * usec);

    rec.record(3 * usec);
    EXPECT_EQ(rec.percentile(0.50), 3 * usec)
        << "p50 of {3,7} is the 1st smallest by nearest rank";
    EXPECT_EQ(rec.percentile(0.51), 7 * usec);
}

TEST(LatencyRecorder, FractionWithinSlo)
{
    LatencyRecorder rec;
    for (int i = 1; i <= 10; ++i)
        rec.record(static_cast<Tick>(i) * usec);
    EXPECT_DOUBLE_EQ(rec.fractionWithin(3 * usec), 0.3);
    EXPECT_DOUBLE_EQ(rec.fractionWithin(10 * usec), 1.0);
    EXPECT_DOUBLE_EQ(rec.fractionWithin(0), 0.0);
}

TEST(LatencyRecorder, ResetClearsState)
{
    LatencyRecorder rec;
    rec.record(5 * usec);
    EXPECT_EQ(rec.count(), 1u);
    rec.reset();
    EXPECT_EQ(rec.count(), 0u);
    EXPECT_DOUBLE_EQ(rec.meanUs(), 0.0);
    EXPECT_DOUBLE_EQ(rec.percentileUs(0.99), 0.0);
}

ServeConfig
serveConfig(double qps, unsigned batch, unsigned queries)
{
    ServeConfig cfg;
    cfg.arrivals.process = ArrivalProcess::Fixed;
    cfg.arrivals.qps = qps;
    cfg.shape.minBatch = batch;
    cfg.shape.maxBatch = batch;
    cfg.batching.maxBatchSamples = 4 * batch;
    cfg.batching.maxWait = 200 * usec;
    cfg.batching.maxInFlight = 2;
    cfg.queries = queries;
    cfg.warmupQueries = 4;
    cfg.seed = 7;
    return cfg;
}

ModelRunner
makeRunner(System &sys, EmbeddingBackendKind backend)
{
    RunnerOptions opt;
    opt.backend = backend;
    opt.forceAllTablesOnSsd = backend != EmbeddingBackendKind::Dram;
    return ModelRunner(sys, tinyModel(), opt);
}

TEST(ServingTail, SchedulerCoalescesUnderPressure)
{
    System sys(test::smallSystem());
    ModelRunner runner = makeRunner(sys, EmbeddingBackendKind::BaselineSsd);
    // Arrivals far faster than service: queries pile up behind the
    // in-flight cap and later dispatches must fuse several of them.
    auto cfg = serveConfig(/*qps=*/20'000.0, /*batch=*/4, /*queries=*/40);
    auto s = runServe(runner, cfg);

    EXPECT_EQ(s.completedQueries, cfg.queries) << "no silent drops";
    EXPECT_LT(s.batchesDispatched, cfg.queries + cfg.warmupQueries)
        << "back-to-back arrivals must coalesce";
    EXPECT_GT(s.avgCoalescedSamples, 4.0)
        << "fused batches should carry more than one 4-sample query";
    EXPECT_GT(s.maxSchedulerDepth, 1u);
}

TEST(ServingTail, OverloadDegradesMonotonicallyWithoutDrops)
{
    // Fixed-interval arrivals at rising rates on an identical system:
    // mean and p99 latency must be monotonically non-decreasing, and
    // every query must complete at every rate.
    const double rates[] = {50.0, 500.0, 5'000.0, 50'000.0};
    double prev_mean = 0.0;
    double prev_p99 = 0.0;
    for (double qps : rates) {
        System sys(test::smallSystem());
        ModelRunner runner =
            makeRunner(sys, EmbeddingBackendKind::BaselineSsd);
        auto s = runServe(runner, serveConfig(qps, 4, 32));
        EXPECT_EQ(s.completedQueries, 32u)
            << "dropped queries at " << qps << " qps";
        EXPECT_GE(s.meanLatencyUs, prev_mean)
            << "latency regressed when load rose to " << qps << " qps";
        EXPECT_GE(s.p99Us, prev_p99);
        prev_mean = s.meanLatencyUs;
        prev_p99 = s.p99Us;
    }
    EXPECT_GT(prev_mean, 1'000.0)
        << "the top rate must actually be past saturation";
}

TEST(ServingTail, QueueingPlusServiceAccountsForLatency)
{
    System sys(test::smallSystem());
    ModelRunner runner = makeRunner(sys, EmbeddingBackendKind::BaselineSsd);
    auto s = runServe(runner, serveConfig(2'000.0, 4, 30));
    EXPECT_NEAR(s.meanQueueUs + s.meanServiceUs, s.meanLatencyUs, 0.1)
        << "arrival->dispatch plus dispatch->complete spans the latency";
    EXPECT_GE(s.p50Us, s.meanServiceUs * 0.1);
    EXPECT_LE(s.p50Us, s.p95Us);
    EXPECT_LE(s.p95Us, s.p99Us);
    EXPECT_LE(s.p99Us, s.maxLatencyUs + 0.5);
}

TEST(ServingTail, DeterministicForSeed)
{
    double p99[2];
    for (int i = 0; i < 2; ++i) {
        System sys(test::smallSystem());
        ModelRunner runner =
            makeRunner(sys, EmbeddingBackendKind::BaselineSsd);
        auto cfg = serveConfig(1'000.0, 4, 24);
        cfg.arrivals.process = ArrivalProcess::Bursty;
        cfg.arrivals.burstiness = 4.0;
        p99[i] = runServe(runner, cfg).p99Us;
    }
    EXPECT_DOUBLE_EQ(p99[0], p99[1]);
}

TEST(ServingTail, MultiQueueSpreadsCommands)
{
    SystemConfig cfg = test::smallSystem();
    cfg.host.ioQueues = 4;
    cfg.ssd.nvme.numQueues = 4;
    cfg.host.balancedQueueGrants = true;
    System sys(cfg);
    ModelRunner runner = makeRunner(sys, EmbeddingBackendKind::BaselineSsd);
    auto s = runServe(runner, serveConfig(2'000.0, 8, 32));
    ASSERT_EQ(s.commandsPerQueue.size(), 4u);
    std::uint64_t min_cmds = ~0ull;
    std::uint64_t max_cmds = 0;
    for (auto c : s.commandsPerQueue) {
        min_cmds = std::min(min_cmds, c);
        max_cmds = std::max(max_cmds, c);
    }
    EXPECT_GT(min_cmds, 0u) << "every queue pair must carry traffic";
    EXPECT_LE(max_cmds, min_cmds * 2 + 8)
        << "balanced grants should keep the spread tight";
}

}  // namespace
}  // namespace recssd
