/**
 * @file
 * Functional dense-layer tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/reco/mlp.h"

namespace recssd
{
namespace
{

TEST(Mlp, ShapesPropagate)
{
    Mlp mlp(8, {16, 4}, 1);
    Matrix in(3, 8);
    Matrix out = mlp.forward(in);
    EXPECT_EQ(out.rows, 3u);
    EXPECT_EQ(out.cols, 4u);
    EXPECT_EQ(mlp.inputDim(), 8u);
    EXPECT_EQ(mlp.outputDim(), 4u);
}

TEST(Mlp, MacsPerSample)
{
    Mlp mlp(8, {16, 4}, 1);
    EXPECT_EQ(mlp.macsPerSample(), 8u * 16 + 16 * 4);
    EXPECT_EQ(mlpMacs(8, {16, 4}), mlp.macsPerSample());
    EXPECT_EQ(mlpMacs(100, {}), 0u);
}

TEST(Mlp, DeterministicForSeed)
{
    Mlp a(4, {8, 1}, 7);
    Mlp b(4, {8, 1}, 7);
    Matrix in(2, 4);
    for (std::size_t i = 0; i < in.data.size(); ++i)
        in.data[i] = static_cast<float>(i) * 0.25f;
    EXPECT_EQ(a.forward(in).data, b.forward(in).data);

    Mlp c(4, {8, 1}, 8);
    EXPECT_NE(a.forward(in).data, c.forward(in).data);
}

TEST(Mlp, ReluHiddenLayersAreNonNegative)
{
    Mlp mlp(6, {32, 32}, 3);
    Matrix in(4, 6);
    for (auto &v : in.data)
        v = -1.0f;
    Matrix out = mlp.forward(in);
    // Final layer has no ReLU, so check an intermediate effect
    // indirectly: outputs are finite and bounded.
    for (float v : out.data)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(Mlp, SigmoidOutputInUnitInterval)
{
    Mlp mlp(6, {16, 1}, 5, true);
    Matrix in(8, 6);
    for (std::size_t i = 0; i < in.data.size(); ++i)
        in.data[i] = static_cast<float>(static_cast<int>(i % 11) - 5);
    Matrix out = mlp.forward(in);
    for (float v : out.data) {
        EXPECT_GT(v, 0.0f);
        EXPECT_LT(v, 1.0f);
    }
}

TEST(MlpDeathTest, InputWidthMismatchPanics)
{
    Mlp mlp(8, {4}, 1);
    Matrix in(1, 7);
    EXPECT_DEATH(mlp.forward(in), "width mismatch");
}

TEST(Matrix, AtIndexing)
{
    Matrix m(2, 3);
    m.at(1, 2) = 42.0f;
    EXPECT_EQ(m.data[5], 42.0f);
    const Matrix &cm = m;
    EXPECT_EQ(cm.at(1, 2), 42.0f);
}

}  // namespace
}  // namespace recssd
