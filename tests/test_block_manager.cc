/**
 * @file
 * Unit tests for log-structured space management: allocation,
 * invalidation, GC victim selection, bulk regions, wear levelling.
 */

#include <gtest/gtest.h>

#include "src/ftl/block_manager.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

class BlockManagerTest : public ::testing::Test
{
  protected:
    BlockManagerTest() : mgr_(test::tinyFlash(), FtlParams{}) {}

    FlashParams flash_ = test::tinyFlash();
    BlockManager mgr_;
};

TEST_F(BlockManagerTest, GeometryDerived)
{
    // 2ch x 2dies x 8 pages/block = 32 pages per row; 8 rows.
    EXPECT_EQ(mgr_.pagesPerRow(), 32u);
    EXPECT_EQ(mgr_.numRows(), 8u);
    EXPECT_EQ(mgr_.freeRows(), 8u);
}

TEST_F(BlockManagerTest, AllocationIsSequentialWithinRow)
{
    Ppn first = mgr_.allocatePage(100);
    Ppn second = mgr_.allocatePage(101);
    EXPECT_EQ(second, first + 1) << "append log strides channels";
    EXPECT_EQ(mgr_.rowOf(first), mgr_.rowOf(second));
    EXPECT_EQ(mgr_.pagesAllocated(), 2u);
}

TEST_F(BlockManagerTest, RowSealsWhenFull)
{
    std::uint64_t row = UINT64_MAX;
    for (std::uint64_t i = 0; i < mgr_.pagesPerRow(); ++i) {
        Ppn p = mgr_.allocatePage(i);
        ASSERT_NE(p, invalidPpn);
        row = mgr_.rowOf(p);
    }
    // Next allocation opens a new row and seals the previous.
    Ppn p = mgr_.allocatePage(999);
    EXPECT_NE(mgr_.rowOf(p), row);
    EXPECT_EQ(mgr_.rowState(row), BlockManager::RowState::Sealed);
}

TEST_F(BlockManagerTest, InvalidateDecrementsValidCount)
{
    Ppn p = mgr_.allocatePage(5);
    std::uint64_t row = mgr_.rowOf(p);
    EXPECT_EQ(mgr_.rowValidCount(row), 1u);
    mgr_.invalidate(p);
    EXPECT_EQ(mgr_.rowValidCount(row), 0u);
    // Idempotent on already-invalid slots.
    mgr_.invalidate(p);
    EXPECT_EQ(mgr_.rowValidCount(row), 0u);
}

TEST_F(BlockManagerTest, VictimIsMinValidSealedRow)
{
    // Fill two rows; invalidate more pages in the second.
    std::vector<Ppn> pages;
    for (std::uint64_t i = 0; i < 2 * mgr_.pagesPerRow() + 1; ++i)
        pages.push_back(mgr_.allocatePage(i));
    std::uint64_t row0 = mgr_.rowOf(pages[0]);
    std::uint64_t row1 = mgr_.rowOf(pages[mgr_.pagesPerRow()]);
    mgr_.invalidate(pages[0]);
    for (std::uint64_t i = 0; i < 5; ++i)
        mgr_.invalidate(pages[mgr_.pagesPerRow() + i]);
    EXPECT_EQ(mgr_.pickGcVictim(), row1);
    (void)row0;
}

TEST_F(BlockManagerTest, ValidPagesListsSurvivors)
{
    std::vector<Ppn> pages;
    for (std::uint64_t i = 0; i < mgr_.pagesPerRow() + 1; ++i)
        pages.push_back(mgr_.allocatePage(i));
    mgr_.invalidate(pages[3]);
    auto valid = mgr_.validPagesIn(mgr_.rowOf(pages[0]));
    EXPECT_EQ(valid.size(), mgr_.pagesPerRow() - 1);
    for (auto [lpn, ppn] : valid)
        EXPECT_NE(lpn, 3u);
}

TEST_F(BlockManagerTest, ErasedRowRejoinsFreePool)
{
    for (std::uint64_t i = 0; i < mgr_.pagesPerRow() + 1; ++i)
        mgr_.allocatePage(i);
    std::uint64_t row = mgr_.pickGcVictim();
    ASSERT_NE(row, UINT64_MAX);
    std::uint64_t free_before = mgr_.freeRows();
    mgr_.onRowErased(row);
    EXPECT_EQ(mgr_.freeRows(), free_before + 1);
    EXPECT_EQ(mgr_.rowState(row), BlockManager::RowState::Free);
    EXPECT_EQ(mgr_.rowEraseCount(row), 1u);
}

TEST_F(BlockManagerTest, RegionsClaimFromTheTop)
{
    Ppn start = mgr_.allocateRegion(40);  // 2 rows of 32 pages
    EXPECT_EQ(mgr_.regionRows(), 2u);
    EXPECT_EQ(mgr_.rowOf(start), mgr_.numRows() - 2);
    EXPECT_EQ(mgr_.rowState(mgr_.numRows() - 1),
              BlockManager::RowState::Region);
    EXPECT_EQ(mgr_.freeRows(), 6u);
}

TEST_F(BlockManagerTest, RegionInvalidateIsTolerated)
{
    Ppn start = mgr_.allocateRegion(32);
    std::uint64_t row = mgr_.rowOf(start);
    std::uint32_t valid = mgr_.rowValidCount(row);
    mgr_.invalidate(start);
    EXPECT_EQ(mgr_.rowValidCount(row), valid - 1);
}

TEST_F(BlockManagerTest, WearLevellingPrefersYoungRows)
{
    // Exhaust and erase row cycles to age specific rows, then check
    // the allocator picks the youngest free row.
    for (int cycle = 0; cycle < 2; ++cycle) {
        for (std::uint64_t i = 0; i < mgr_.pagesPerRow(); ++i) {
            Ppn p = mgr_.allocatePage(i);
            mgr_.invalidate(p);
        }
        // Seal by starting the next row.
        Ppn p = mgr_.allocatePage(1000);
        mgr_.invalidate(p);
        std::uint64_t victim = mgr_.pickGcVictim();
        ASSERT_NE(victim, UINT64_MAX);
        mgr_.onRowErased(victim);
    }
    EXPECT_LE(mgr_.eraseCountSpread(), 2u);
}

TEST_F(BlockManagerTest, ExhaustionReturnsInvalid)
{
    FtlParams ftl;
    ftl.gcLowWatermarkRows = 0;
    BlockManager mgr(test::tinyFlash(), ftl);
    std::uint64_t total = mgr.numRows() * mgr.pagesPerRow();
    for (std::uint64_t i = 0; i < total; ++i)
        ASSERT_NE(mgr.allocatePage(i), invalidPpn);
    EXPECT_EQ(mgr.allocatePage(0), invalidPpn);
}

TEST_F(BlockManagerTest, GcWatermarks)
{
    FtlParams ftl;
    EXPECT_FALSE(mgr_.needsGc());
    // Consume rows until below the low watermark.
    std::uint64_t to_fill = mgr_.numRows() - ftl.gcLowWatermarkRows + 1;
    for (std::uint64_t r = 0; r < to_fill; ++r) {
        for (std::uint64_t i = 0; i < mgr_.pagesPerRow(); ++i)
            mgr_.allocatePage(r * mgr_.pagesPerRow() + i);
    }
    EXPECT_TRUE(mgr_.needsGc());
    EXPECT_TRUE(mgr_.wantsMoreGc());
}

}  // namespace
}  // namespace recssd
