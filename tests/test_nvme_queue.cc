/**
 * @file
 * NVMe queue-pair ring tests: SQ/CQ indices, the phase-tag protocol
 * across wraps, CID assignment, full/empty boundary conditions.
 */

#include <gtest/gtest.h>

#include "src/nvme/nvme_queue.h"

namespace recssd
{
namespace
{

NvmeCommand
readCmd(std::uint64_t slba)
{
    NvmeCommand cmd;
    cmd.opcode = NvmeOpcode::Read;
    cmd.slba = slba;
    return cmd;
}

TEST(NvmeQueue, SubmitFetchCompletePoll)
{
    NvmeQueuePair qp(8);
    std::uint16_t cid = qp.submit(readCmd(42));
    EXPECT_EQ(qp.outstanding(), 1u);

    auto cmd = qp.fetch();
    ASSERT_TRUE(cmd.has_value());
    EXPECT_EQ(cmd->slba, 42u);
    EXPECT_EQ(cmd->cid, cid);

    EXPECT_FALSE(qp.poll().has_value()) << "no completion posted yet";
    qp.complete(cid);
    auto cqe = qp.poll();
    ASSERT_TRUE(cqe.has_value());
    EXPECT_EQ(cqe->cid, cid);
    EXPECT_EQ(cqe->status, 0);
    EXPECT_EQ(qp.outstanding(), 0u);
    EXPECT_FALSE(qp.poll().has_value()) << "phase tag marks it consumed";
}

TEST(NvmeQueue, FetchOnEmptyReturnsNothing)
{
    NvmeQueuePair qp(4);
    EXPECT_FALSE(qp.fetch().has_value());
}

TEST(NvmeQueue, CidsAreSequential)
{
    NvmeQueuePair qp(8);
    std::uint16_t first = qp.submit(readCmd(0));
    qp.fetch();
    qp.complete(first);
    qp.poll();
    std::uint16_t second = qp.submit(readCmd(1));
    EXPECT_EQ(second, static_cast<std::uint16_t>(first + 1));
}

TEST(NvmeQueue, RingFullBoundary)
{
    NvmeQueuePair qp(4);  // 3 usable slots
    EXPECT_TRUE(qp.canSubmit());
    qp.submit(readCmd(0));
    qp.submit(readCmd(1));
    qp.submit(readCmd(2));
    EXPECT_FALSE(qp.canSubmit());
    // Fetch frees an SQ slot.
    qp.fetch();
    EXPECT_TRUE(qp.canSubmit());
}

TEST(NvmeQueueDeathTest, OverflowPanics)
{
    NvmeQueuePair qp(2);  // 1 usable slot
    qp.submit(readCmd(0));
    EXPECT_DEATH(qp.submit(readCmd(1)), "full");
}

TEST(NvmeQueue, PhaseTagSurvivesManyWraps)
{
    NvmeQueuePair qp(4);
    // Push hundreds of commands through the 4-deep rings; the phase
    // protocol must keep host and controller views consistent.
    for (int i = 0; i < 500; ++i) {
        std::uint16_t cid = qp.submit(readCmd(i));
        auto cmd = qp.fetch();
        ASSERT_TRUE(cmd.has_value());
        ASSERT_EQ(cmd->cid, cid);
        ASSERT_FALSE(qp.poll().has_value()) << "iteration " << i;
        qp.complete(cid, 0);
        auto cqe = qp.poll();
        ASSERT_TRUE(cqe.has_value());
        ASSERT_EQ(cqe->cid, cid);
    }
    EXPECT_EQ(qp.outstanding(), 0u);
}

TEST(NvmeQueue, MultipleOutstandingCompleteInOrder)
{
    NvmeQueuePair qp(8);
    std::uint16_t a = qp.submit(readCmd(1));
    std::uint16_t b = qp.submit(readCmd(2));
    qp.fetch();
    qp.fetch();
    qp.complete(a);
    qp.complete(b);
    auto first = qp.poll();
    auto second = qp.poll();
    ASSERT_TRUE(first && second);
    EXPECT_EQ(first->cid, a);
    EXPECT_EQ(second->cid, b);
}

TEST(NvmeQueue, StatusPropagates)
{
    NvmeQueuePair qp(4);
    std::uint16_t cid = qp.submit(readCmd(9));
    qp.fetch();
    qp.complete(cid, 0x4004);
    auto cqe = qp.poll();
    ASSERT_TRUE(cqe.has_value());
    EXPECT_EQ(cqe->status, 0x4004);
}

TEST(NvmeQueue, SqHeadReportedInCompletion)
{
    NvmeQueuePair qp(8);
    std::uint16_t cid = qp.submit(readCmd(0));
    qp.fetch();
    qp.complete(cid);
    auto cqe = qp.poll();
    ASSERT_TRUE(cqe.has_value());
    EXPECT_EQ(cqe->sqHead, 1u);
}

}  // namespace
}  // namespace recssd
