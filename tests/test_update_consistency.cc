/**
 * @file
 * Consistency properties of online embedding updates.
 *
 * The write path's contract, locked down as executable properties:
 *
 *  - Read-after-write visibility: a completed row update is seen
 *    bit-identically by the host-DRAM, baseline-SSD and NDP backends.
 *  - Old-or-new: an SLS gather racing an in-flight page write (and
 *    the GC relocations/erases it triggers) returns either the old
 *    vector or the new one — never a torn mixture or zero-fill. The
 *    race sweep drives 10k+ seeded interleavings (random write
 *    offsets, firmware pauses stretching the gather's read window,
 *    enough write pressure to keep GC running); a deterministic
 *    forced-eviction recipe then constructs the exact
 *    resolve/remap/erase/consume interleaving and proves the fence
 *    is load-bearing: with the test-only `disableWriteFence` knob
 *    the recipe sums the erased page, and under RECSSD_AUDIT the
 *    engine's torn-gather invariant catches it.
 *  - Replica convergence: with 2-way replication every replica
 *    serves the updated vector after the fan-out write.
 *  - Determinism: mixed read-write serve runs are a pure function of
 *    their seed (byte-identical stats JSON), audit-on runs included;
 *    a zero-rate update spec leaves artifacts byte-identical to a
 *    config that never mentions updates.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/embedding/baseline_backend.h"
#include "src/embedding/dram_backend.h"
#include "src/embedding/ndp_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/embedding/table_update.h"
#include "src/reco/model_runner.h"
#include "src/reco/serving.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

/** Scoped RECSSD_AUDIT=1 (components cache it at construction). */
class ScopedAudit
{
  public:
    ScopedAudit() { ::setenv("RECSSD_AUDIT", "1", 1); }
    ~ScopedAudit() { ::unsetenv("RECSSD_AUDIT"); }
};

/** Row content at a given update version (0 = pristine). */
std::vector<float>
versionVector(const EmbeddingTableDesc &table, RowId row,
              std::uint64_t version)
{
    return synthetic::updatedVector(table, row, version);
}

// ---------------------------------------------------------------------------
// Read-after-write visibility across backends.

TEST(UpdateConsistency, VisibilityAcrossBackends)
{
    SystemConfig cfg = test::smallSystem();
    System sys(cfg);
    auto table = sys.installTable(10'000, 8);

    DramSlsBackend dram(sys.eq(), sys.cpu());
    BaselineSsdSlsBackend base(sys.eq(), sys.cpu(), sys.driver(),
                               sys.queues(),
                               BaselineSsdSlsBackend::Options{});
    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});

    // Commit version-3 content for two rows through the block
    // interface, and mirror it into the DRAM copy.
    for (RowId row : {RowId(42), RowId(999)}) {
        std::vector<float> fresh = versionVector(table, row, 3);
        bool done = false;
        updateRow(sys.driver(), sys.queues(), table, row, fresh,
                  [&]() { done = true; });
        sys.run();
        ASSERT_TRUE(done);
        dram.applyUpdate(table, row, fresh);
    }

    // A batch mixing updated and pristine rows must be bit-identical
    // across all three backends.
    SlsOp op;
    op.table = &table;
    op.indices = {{42, 7}, {999}, {7, 8, 9}};
    std::vector<SlsResult> results;
    for (SlsBackend *backend :
         std::initializer_list<SlsBackend *>{&dram, &base, &ndp}) {
        SlsResult out;
        backend->run(op, [&](SlsResult r) { out = std::move(r); });
        sys.run();
        results.push_back(std::move(out));
    }
    EXPECT_EQ(results[0], results[1]);
    EXPECT_EQ(results[0], results[2]);

    // And equal to the functional expectation built from versions.
    std::vector<float> expect(3 * table.dim, 0.0f);
    for (std::uint32_t e = 0; e < table.dim; ++e) {
        expect[e] = versionVector(table, 42, 3)[e] +
                    versionVector(table, 7, 0)[e];
        expect[table.dim + e] = versionVector(table, 999, 3)[e];
        expect[2 * table.dim + e] = versionVector(table, 7, 0)[e] +
                                    versionVector(table, 8, 0)[e] +
                                    versionVector(table, 9, 0)[e];
    }
    EXPECT_EQ(results[0], expect);
}

// ---------------------------------------------------------------------------
// Old-or-new under adversarial gather/write interleavings.

struct SweepOutcome
{
    std::uint64_t rounds = 0;
    std::uint64_t torn = 0;       ///< result neither old nor new
    std::uint64_t redirects = 0;  ///< fence re-pointed a stale view
    std::uint64_t newSeen = 0;    ///< gather observed the new value
};

/**
 * One seeded race campaign on a tiny drive: every round launches a
 * single-row NDP gather and, microseconds later, an update to that
 * same row — plus random firmware pauses that stretch the window
 * between the gather's page resolution and its deferred sum, and
 * filler updates to other rows that keep the log churning and GC
 * erasing. Verifies each gather returns exactly the old or the new
 * vector; anything else counts as torn.
 */
SweepOutcome
raceSweep(bool disable_fence, std::uint64_t seed, unsigned rounds)
{
    SystemConfig cfg;
    cfg.ssd.flash = test::tinyFlash();
    // Narrow GC rows (2 channels x 1 die x 4 pages = 8 pages/row):
    // a burst of updates invalidates a whole row fast, so GC erases
    // fire while gathers are in flight — the exact race the fence
    // must win.
    cfg.ssd.flash.diesPerChannel = 1;
    cfg.ssd.flash.pagesPerBlock = 4;
    cfg.ssd.flash.blocksPerDie = 24;
    // A page cache big enough to hold the whole drive would absorb
    // every gather before it touches flash; keep it token-sized (one
    // set of 8 ways) so reads race real flash traffic.
    cfg.ssd.ftl.pageCachePages = 8;
    cfg.ssd.sls.disableWriteFence = disable_fence;
    System sys(cfg);

    auto table = sys.installTable(64, 8);
    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});

    Rng rng(seed);
    std::vector<std::uint64_t> version(table.rows, 0);
    SweepOutcome out;
    std::uint64_t redirects_before =
        sys.ssd().slsEngine().fenceRedirects();

    for (unsigned round = 0; round < rounds; ++round) {
        EventQueue &eq = sys.eq();
        Tick t0 = eq.now();
        RowId target = rng.uniformInt(table.rows);
        std::vector<float> oldv =
            versionVector(table, target, version[target]);
        std::vector<float> newv =
            versionVector(table, target, ++version[target]);

        SlsOp op;
        op.table = &table;
        op.indices = {{target}};
        SlsResult result;
        bool gathered = false;
        ndp.run(op, [&](SlsResult r) {
            result = std::move(r);
            gathered = true;
        });

        // Firmware pauses: the first can land between the gather's
        // page resolution and its flash read completing; the second
        // queues behind the racing write, holding the deferred sum
        // back while programs/GC/erases complete underneath it.
        if (rng.bernoulli(0.5)) {
            Tick at = t0 + (8 + rng.uniformInt(30)) * usec;
            Tick dur = (1 + rng.uniformInt(20)) * msec;
            eq.schedule(at,
                        [&sys, dur]() {
                            sys.ssd().ftl().injectFirmwarePause(dur);
                        });
        }
        bool updated = false;
        eq.schedule(t0 + rng.uniformInt(100) * usec, [&, newv]() {
            updateRow(sys.driver(), sys.queues(), table, target, newv,
                      [&updated]() { updated = true; });
        });
        if (rng.bernoulli(0.5)) {
            Tick at = t0 + (20 + rng.uniformInt(120)) * usec;
            Tick dur = (1 + rng.uniformInt(30)) * msec;
            eq.schedule(at,
                        [&sys, dur]() {
                            sys.ssd().ftl().injectFirmwarePause(dur);
                        });
        }
        // Filler writes to other rows: log pressure that keeps GC
        // relocating and erasing while the gather is in flight. At
        // most one write per row per round — NVMe makes no ordering
        // promise for same-LBA writes racing on different queues
        // (the UpdateFlusher coalesces per-row for exactly this
        // reason), so duplicate fillers could finish out of order
        // and leave storage one version behind the bookkeeping.
        unsigned fillers = rng.uniformInt(10);
        std::set<RowId> written;
        for (unsigned f = 0; f < fillers; ++f) {
            RowId other = rng.uniformInt(table.rows);
            if (other == target || !written.insert(other).second)
                continue;
            std::vector<float> fv =
                versionVector(table, other, ++version[other]);
            eq.schedule(t0 + rng.uniformInt(300) * usec, [&, other, fv]() {
                updateRow(sys.driver(), sys.queues(), table, other, fv,
                          []() {});
            });
        }

        sys.run();
        EXPECT_TRUE(gathered);
        EXPECT_TRUE(updated);
        ++out.rounds;
        if (result == newv)
            ++out.newSeen;
        else if (result != oldv)
            ++out.torn;
    }
    out.redirects =
        sys.ssd().slsEngine().fenceRedirects() - redirects_before;
    return out;
}

TEST(UpdateConsistency, NoTornSumAcrossSeededInterleavings)
{
    // 21 campaigns x 500 rounds = 10'500 gather/write interleavings.
    SweepOutcome total;
    for (std::uint64_t seed = 1; seed <= 21; ++seed) {
        SweepOutcome o = raceSweep(false, seed, 500);
        EXPECT_EQ(o.torn, 0u) << "torn gather with the fence on, seed "
                              << seed;
        total.rounds += o.rounds;
        total.torn += o.torn;
        total.redirects += o.redirects;
        total.newSeen += o.newSeen;
    }
    EXPECT_GE(total.rounds, 10'000u);
    EXPECT_EQ(total.torn, 0u);
    // The sweep is only meaningful if the races actually happen: the
    // fence must have re-pointed stale views, and some gathers must
    // have observed the new value.
    EXPECT_GT(total.redirects, 0u);
    EXPECT_GT(total.newSeen, 0u);
}

// ---------------------------------------------------------------------------
// Deterministic forced-eviction tear.

struct RecipeOutcome
{
    std::vector<float> result;
    std::vector<float> oldv;
    std::vector<float> newv;
    std::uint64_t redirects = 0;
    std::uint64_t gcRunsDuringRace = 0;
};

/**
 * The exact interleaving the fence exists for, constructed step by
 * step rather than found by sweeping:
 *
 *  1. Seal an overlay row whose only valid page is the target row's
 *     current page (write the target, fill the row with neighbours,
 *     rewrite the neighbours elsewhere).
 *  2. Park the drive exactly at the GC low watermark with a 7/8-full
 *     active row, so the next two allocations tip it over.
 *  3. In one event-drained run: launch the gather (it resolves the
 *     target's PPN and issues the flash read), inject a long firmware
 *     pause, and queue behind it an update to the target (invalidates
 *     the resolved page — its row is now fully invalid), one scratch
 *     write (opens a fresh row, dropping free rows below the
 *     watermark) and one trim (whose firmware grant starts GC). GC
 *     erases the all-invalid victim row — zero-filling the page the
 *     gather resolved — before the paused gather gets the CPU back to
 *     run its deferred sum.
 *
 * With the fence on, the consume-time epoch check re-points the view
 * at the live mapping and the gather returns the new value. With the
 * fence off it sums the erased page: neither old nor new.
 */
RecipeOutcome
forcedEvictionRace(bool disable_fence)
{
    SystemConfig cfg;
    cfg.ssd.flash = test::tinyFlash();
    // Narrow GC rows, same as raceSweep: 2 x 1 x 4 pages per row.
    cfg.ssd.flash.diesPerChannel = 1;
    cfg.ssd.flash.pagesPerBlock = 4;
    cfg.ssd.flash.blocksPerDie = 24;
    cfg.ssd.ftl.pageCachePages = 8;
    cfg.ssd.sls.disableWriteFence = disable_fence;
    System sys(cfg);
    EventQueue &eq = sys.eq();
    auto table = sys.installTable(64, 8);
    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});
    auto &blocks = sys.ssd().ftl().blocks();
    const std::uint64_t row_pages = blocks.pagesPerRow();

    auto put = [&](RowId row, std::uint64_t ver) {
        bool done = false;
        updateRow(sys.driver(), sys.queues(), table, row,
                  versionVector(table, row, ver), [&]() { done = true; });
        sys.run();
        EXPECT_TRUE(done);
    };
    // Step 1: the victim row — target's page plus its neighbours,
    // then move the neighbours on so the target's page is the row's
    // only valid page.
    put(0, 1);
    for (RowId r = 1; r < row_pages; ++r)
        put(r, 1);
    for (RowId r = 1; r < row_pages; ++r)
        put(r, 2);

    // Step 2: cyclic scratch overwrites walk free rows down to the
    // low watermark, then top the active row up to one free slot.
    // The cycle spans three rows, so (a) the active row never holds
    // an already-invalidated slot (a page recurs only after the row
    // sealed), and (b) all the garbage left behind is reclaimable —
    // GC can always climb back to its high watermark instead of
    // churning live pages forever.
    const Lpn scratch = 17 * slsTableAlign;
    const std::uint64_t scratch_span = 3 * row_pages;
    std::uint64_t next_scratch = 0;
    auto scratchLpn = [&]() {
        return scratch + (next_scratch++ % scratch_span);
    };
    auto putScratch = [&]() {
        bool done = false;
        auto data = std::make_shared<std::vector<std::byte>>(
            sys.driver().pageSize(), std::byte{0x5A});
        sys.driver().writePage(0, scratchLpn(), data,
                               [&]() { done = true; });
        sys.run();
        EXPECT_TRUE(done);
    };
    while (blocks.freeRows() > cfg.ssd.ftl.gcLowWatermarkRows)
        putScratch();
    auto activeUsed = [&]() -> std::uint32_t {
        for (std::uint64_t r = 0; r < blocks.numRows(); ++r)
            if (blocks.rowState(r) == BlockManager::RowState::Active)
                return blocks.rowValidCount(r);
        return 0;
    };
    while (activeUsed() + 1 < row_pages)
        putScratch();
    EXPECT_EQ(sys.ssd().ftl().gcRuns(), 0u)
        << "setup must stop short of triggering GC";

    // Step 3: the race itself.
    RecipeOutcome out;
    out.oldv = versionVector(table, 0, 1);
    out.newv = versionVector(table, 0, 2);
    std::uint64_t gc_before = sys.ssd().ftl().gcRuns();
    std::uint64_t redirects_before = sys.ssd().slsEngine().fenceRedirects();

    SlsOp op;
    op.table = &table;
    op.indices = {{0}};
    bool gathered = false;
    Tick t0 = eq.now();
    ndp.run(op, [&](SlsResult r) {
        out.result = std::move(r);
        gathered = true;
    });
    // The pause must land after the gather resolves its PPN (the
    // config scan runs within the first few microseconds) but before
    // its flash read completes (60us later), so the deferred sum
    // queues behind everything below.
    eq.schedule(t0 + 30 * usec, [&]() {
        sys.ssd().ftl().injectFirmwarePause(50 * msec);
    });
    eq.schedule(t0 + 40 * usec, [&]() {
        updateRow(sys.driver(), sys.queues(), table, 0,
                  versionVector(table, 0, 2), []() {});
    });
    eq.schedule(t0 + 50 * usec, [&]() {
        auto data = std::make_shared<std::vector<std::byte>>(
            sys.driver().pageSize(), std::byte{0x5A});
        sys.driver().writePage(1, scratchLpn(), data, []() {});
    });
    eq.schedule(t0 + 60 * usec, [&]() {
        sys.driver().trimPage(2, scratch + 0, []() {});
    });
    sys.run();
    EXPECT_TRUE(gathered);

    out.redirects =
        sys.ssd().slsEngine().fenceRedirects() - redirects_before;
    out.gcRunsDuringRace = sys.ssd().ftl().gcRuns() - gc_before;
    return out;
}

TEST(UpdateConsistency, FenceRedirectsForcedEviction)
{
    // With the fence on, the consume-time epoch check re-points the
    // gather at the live mapping: the result is exactly the new row.
    RecipeOutcome o = forcedEvictionRace(false);
    EXPECT_GT(o.gcRunsDuringRace, 0u)
        << "recipe must actually erase under the gather";
    EXPECT_GE(o.redirects, 1u);
    EXPECT_EQ(o.result, o.newv);
}

TEST(UpdateConsistency, DisabledFenceTearsUnderForcedEviction)
{
    // The shipped fence is load-bearing: the identical recipe with
    // the fence compiled out sums the GC-erased page — neither the
    // old row nor the new one.
    RecipeOutcome o = forcedEvictionRace(true);
    EXPECT_GT(o.gcRunsDuringRace, 0u);
    EXPECT_NE(o.result, o.oldv);
    EXPECT_NE(o.result, o.newv);
}

TEST(UpdateConsistencyDeathTest, AuditCatchesTornGather)
{
    // Under RECSSD_AUDIT the engine's consume-time invariant panics
    // on the first gather that would sum an erased page. The audit
    // env var must be set before the System is constructed (the
    // engine caches it), hence everything lives inside the death
    // statement.
    EXPECT_DEATH(
        {
            ScopedAudit audit;
            forcedEvictionRace(true);
        },
        "torn");
}

// ---------------------------------------------------------------------------
// Replica convergence.

TEST(UpdateConsistency, ReplicatedWritesConvergeOnEveryDevice)
{
    SystemConfig cfg = test::smallSystem();
    cfg.shard.numShards = 2;
    cfg.shard.policy = ShardPolicy::RowRange;
    cfg.shard.replication = 2;
    System sys(cfg);
    auto table = sys.installTable(1'000, 8);

    const RowId row = 123;
    std::vector<float> fresh = versionVector(table, row, 5);
    auto targets = sys.router().updateTargets(table.id, row);
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_NE(targets[0].shard, targets[1].shard);
    EXPECT_FALSE(targets[0].replica);
    EXPECT_TRUE(targets[1].replica);

    unsigned done = 0;
    for (const auto &t : targets) {
        updateRow(sys.driver(t.shard), sys.queues(t.shard), *t.desc,
                  t.localRow, fresh, [&]() { ++done; });
    }
    sys.run();
    ASSERT_EQ(done, targets.size());

    // Every copy — primary and replica, each through its own device's
    // NDP engine — serves the updated vector.
    for (const auto &t : targets) {
        NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(t.shard),
                          sys.queues(t.shard), NdpSlsBackend::Options{});
        SlsOp op;
        op.table = t.desc;
        op.indices = {{t.localRow}};
        SlsResult result;
        ndp.run(op, [&](SlsResult r) { result = std::move(r); });
        sys.run();
        EXPECT_EQ(result, fresh) << "shard " << t.shard;
    }
}

// ---------------------------------------------------------------------------
// Determinism of mixed read-write serving.

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.tables = {TableGroup{2, 50'000, 16, 8}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

/** Serve the fixed mixed-RW workload; return the stats-JSON bytes
 *  plus the update counters that must reproduce exactly. */
struct MixedArtifacts
{
    std::string statsJson;
    std::uint64_t applied = 0;
    std::uint64_t flushes = 0;
    std::uint64_t hostPageWrites = 0;
    double p99Us = 0.0;
};

MixedArtifacts
runMixedOnce(double update_rate)
{
    SystemConfig cfg = test::smallSystem();
    System sys(cfg);
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    ModelRunner runner(sys, tinyModel(), opt);

    ServeConfig scfg;
    scfg.arrivals.qps = 300.0;
    scfg.shape.minBatch = 4;
    scfg.shape.maxBatch = 4;
    scfg.batching.maxBatchSamples = 16;
    scfg.batching.maxInFlight = 2;
    scfg.queries = 20;
    scfg.warmupQueries = 4;
    scfg.seed = 20260808;
    scfg.updates.rate = update_rate;
    scfg.updates.skew = 0.8;
    ServeStats stats = runServe(runner, scfg);

    MixedArtifacts art;
    std::ostringstream os;
    sys.dumpStatsJson(os);
    art.statsJson = os.str();
    art.applied = stats.update.applied;
    art.flushes = stats.update.flushes;
    art.hostPageWrites = stats.update.hostPageWrites;
    art.p99Us = stats.p99Us;
    return art;
}

TEST(UpdateConsistency, MixedServeIsByteIdenticalAcrossRuns)
{
    MixedArtifacts first = runMixedOnce(5'000.0);
    MixedArtifacts second = runMixedOnce(5'000.0);
    EXPECT_GT(first.applied, 0u);
    EXPECT_GT(first.hostPageWrites, 0u);
    EXPECT_EQ(first.statsJson, second.statsJson);
    EXPECT_EQ(first.applied, second.applied);
    EXPECT_EQ(first.flushes, second.flushes);
    EXPECT_EQ(first.p99Us, second.p99Us);
}

TEST(UpdateConsistency, AuditDoesNotPerturbMixedServe)
{
    MixedArtifacts plain = runMixedOnce(5'000.0);
    MixedArtifacts audited = [] {
        ScopedAudit audit;
        return runMixedOnce(5'000.0);
    }();
    EXPECT_EQ(plain.statsJson, audited.statsJson);
    EXPECT_EQ(plain.applied, audited.applied);
    EXPECT_EQ(plain.p99Us, audited.p99Us);
}

TEST(UpdateConsistency, ZeroRateSpecLeavesServeByteIdentical)
{
    // A spec that sets every knob but keeps rate 0 must not disturb a
    // single output byte relative to the default (no-updates) config:
    // the flusher is never built and serve.update.* never registers.
    MixedArtifacts off = runMixedOnce(0.0);

    SystemConfig cfg = test::smallSystem();
    System sys(cfg);
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    ModelRunner runner(sys, tinyModel(), opt);
    ServeConfig scfg;
    scfg.arrivals.qps = 300.0;
    scfg.shape.minBatch = 4;
    scfg.shape.maxBatch = 4;
    scfg.batching.maxBatchSamples = 16;
    scfg.batching.maxInFlight = 2;
    scfg.queries = 20;
    scfg.warmupQueries = 4;
    scfg.seed = 20260808;
    scfg.updates.rate = 0.0;  // disabled, every other knob set
    scfg.updates.skew = 0.9;
    scfg.updates.flushRows = 4;
    scfg.updates.maxWait = 100 * usec;
    scfg.updates.maxInFlight = 7;
    scfg.updates.seed = 555;
    ServeStats stats = runServe(runner, scfg);
    std::ostringstream os;
    sys.dumpStatsJson(os);

    EXPECT_EQ(os.str(), off.statsJson);
    EXPECT_EQ(stats.update.applied, 0u);
    EXPECT_EQ(stats.update.hostPageWrites, 0u);
    EXPECT_EQ(stats.update.writeAmplification, 0.0);
    EXPECT_TRUE(off.statsJson.find("serve.update") == std::string::npos);
}

}  // namespace
}  // namespace recssd
