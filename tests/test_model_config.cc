/**
 * @file
 * Model zoo tests, anchored on the paper's Table 1.
 */

#include <gtest/gtest.h>

#include "src/reco/model_config.h"

namespace recssd
{
namespace
{

TEST(ModelZoo, HasAllEightModels)
{
    const auto &zoo = modelZoo();
    EXPECT_EQ(zoo.size(), 8u);
    for (const char *name :
         {"RM1", "RM2", "RM3", "WND", "MTWND", "DIN", "DIEN", "NCF"})
        EXPECT_NO_FATAL_FAILURE(modelByName(name));
}

TEST(ModelZoo, Table1ParametersMatchPaper)
{
    // Table 1: RM1 = (32, 80, 8); RM2 = (64, 120, 32); RM3 = (32, 20, 10).
    const auto &rm1 = modelByName("RM1");
    EXPECT_EQ(rm1.tables[0].dim, 32u);
    EXPECT_EQ(rm1.tables[0].lookups, 80u);
    EXPECT_EQ(rm1.numTables(), 8u);

    const auto &rm2 = modelByName("RM2");
    EXPECT_EQ(rm2.tables[0].dim, 64u);
    EXPECT_EQ(rm2.tables[0].lookups, 120u);
    EXPECT_EQ(rm2.numTables(), 32u);

    const auto &rm3 = modelByName("RM3");
    EXPECT_EQ(rm3.tables[0].dim, 32u);
    EXPECT_EQ(rm3.tables[0].lookups, 20u);
    EXPECT_EQ(rm3.numTables(), 10u);
}

TEST(ModelZoo, ClassificationMatchesPaper)
{
    for (const char *name : {"RM1", "RM2", "RM3"})
        EXPECT_TRUE(modelByName(name).embeddingDominated) << name;
    for (const char *name : {"WND", "MTWND", "DIN", "DIEN", "NCF"})
        EXPECT_FALSE(modelByName(name).embeddingDominated) << name;
}

TEST(ModelZoo, MlpDominatedModelsHaveHeavyDenseLightEmbedding)
{
    for (const auto &m : modelZoo()) {
        if (m.embeddingDominated)
            continue;
        EXPECT_GT(m.mlpMacsPerSample(), 100'000u) << m.name;
        EXPECT_LE(m.lookupsPerSample(), 20u) << m.name;
    }
}

TEST(ModelZoo, EmbeddingDominatedModelsHaveManyLookups)
{
    for (const char *name : {"RM1", "RM2", "RM3"}) {
        const auto &m = modelByName(name);
        EXPECT_GE(m.lookupsPerSample(), 200u) << name;
        EXPECT_EQ(m.tables[0].rows, 1'000'000u) << name;
    }
}

TEST(ModelZoo, DerivedQuantitiesConsistent)
{
    for (const auto &m : modelZoo()) {
        std::size_t emb_dim = 0;
        for (const auto &g : m.tables)
            emb_dim += std::size_t(g.count) * g.dim;
        std::size_t bottom_out =
            m.bottomMlp.empty() ? m.denseInputs : m.bottomMlp.back();
        EXPECT_EQ(m.topInputDim(), bottom_out + emb_dim) << m.name;
        EXPECT_GT(m.mlpMacsPerSample(), 0u) << m.name;
        if (!m.topMlp.empty()) {
            EXPECT_EQ(m.topMlp.back(), 1u) << m.name << " CTR head";
        }
    }
}

TEST(ModelZooDeathTest, UnknownNameIsFatal)
{
    EXPECT_EXIT(modelByName("NOPE"), ::testing::ExitedWithCode(1),
                "unknown model");
}

}  // namespace
}  // namespace recssd
