/**
 * @file
 * Read-retry failure injection tests: correctness is unaffected,
 * retries are counted, bounded, deterministic, and show up as tail
 * latency.
 */

#include <gtest/gtest.h>

#include <memory>

#include "src/embedding/ndp_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/shard/sharded_backend.h"
#include "src/trace/trace_gen.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

TEST(FailureInjection, DisabledByDefault)
{
    System sys(test::smallSystem());
    auto table = sys.installTable(10'000, 16);
    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});
    SlsOp op;
    op.table = &table;
    op.indices = {{1, 2, 3, 4, 5}};
    ndp.run(op, [](SlsResult) {});
    sys.run();
    EXPECT_EQ(sys.ssd().flash().readRetries(), 0u);
}

TEST(FailureInjection, RetriesCountedAndDataStillCorrect)
{
    SystemConfig cfg = test::smallSystem();
    cfg.ssd.flash.readRetryRate = 0.3;
    System sys(cfg);
    auto table = sys.installTable(10'000, 16);
    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});

    TraceSpec spec;
    spec.kind = TraceKind::Uniform;
    spec.universe = table.rows;
    spec.seed = 4;
    TraceGenerator gen(spec);
    SlsOp op;
    op.table = &table;
    op.indices = gen.nextBatch(8, 20);

    SlsResult result;
    ndp.run(op, [&](SlsResult r) { result = std::move(r); });
    sys.run();
    EXPECT_EQ(result, synthetic::expectedSls(table, op.indices))
        << "retries must never corrupt data";
    EXPECT_GT(sys.ssd().flash().readRetries(), 0u);
    // 160 reads at 30%: retries bounded by maxReadRetries each.
    EXPECT_LE(sys.ssd().flash().readRetries(),
              160u * cfg.ssd.flash.maxReadRetries);
}

TEST(FailureInjection, RetriesInflateSingleReadLatency)
{
    // Saturated sequential streams hide retry time behind the channel
    // bus (the die re-reads overlap transfers), so probe the
    // latency-sensitive path: one isolated page read.
    Tick lat[2];
    for (int pass = 0; pass < 2; ++pass) {
        SystemConfig cfg = test::smallSystem();
        cfg.ssd.flash.readRetryRate = pass == 0 ? 0.0 : 1.0;
        System sys(cfg);
        auto table = sys.installTable(1'000, 16);
        Tick t0 = sys.eq().now();
        bool done = false;
        sys.driver().readPage(0, table.baseLpn,
                              [&](const PageView &) { done = true; });
        sys.run();
        ASSERT_TRUE(done);
        lat[pass] = sys.eq().now() - t0;
    }
    Tick expected_extra = SystemConfig().ssd.flash.maxReadRetries *
                          SystemConfig().ssd.flash.readLatency;
    EXPECT_EQ(lat[1], lat[0] + expected_extra)
        << "each retry must cost one tR on the isolated path";
}

TEST(FailureInjection, DeterministicAcrossRuns)
{
    std::uint64_t retries[2];
    for (int i = 0; i < 2; ++i) {
        SystemConfig cfg = test::smallSystem();
        cfg.ssd.flash.readRetryRate = 0.25;
        System sys(cfg);
        auto table = sys.installTable(10'000, 16);
        NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(),
                          sys.queues(), NdpSlsBackend::Options{});
        TraceSpec spec;
        spec.kind = TraceKind::Uniform;
        spec.universe = table.rows;
        spec.seed = 12;
        TraceGenerator gen(spec);
        SlsOp op;
        op.table = &table;
        op.indices = gen.nextBatch(4, 25);
        ndp.run(op, [](SlsResult) {});
        sys.run();
        retries[i] = sys.ssd().flash().readRetries();
    }
    EXPECT_EQ(retries[0], retries[1]);
}

TEST(FailureInjection, RetryCapRespected)
{
    SystemConfig cfg = test::smallSystem();
    cfg.ssd.flash.readRetryRate = 1.0;  // every read maxes out
    cfg.ssd.flash.maxReadRetries = 2;
    System sys(cfg);
    auto table = sys.installTable(1'000, 16);
    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});
    SlsOp op;
    op.table = &table;
    op.indices = {{1}, {2}};
    ndp.run(op, [](SlsResult) {});
    sys.run();
    EXPECT_EQ(sys.ssd().flash().readRetries(),
              2u * sys.ssd().flash().pageReads());
}

/**
 * A 3-device row-range system with retry injection on device 2 only
 * (via the per-device config override), plus per-shard instrumentation.
 */
struct ShardedRetryRun
{
    std::unique_ptr<System> sys;
    std::vector<std::unique_ptr<NdpSlsBackend>> backends;
    std::unique_ptr<ShardedSlsBackend> sharded;

    explicit ShardedRetryRun(double retry_rate_on_ssd2)
    {
        SystemConfig cfg = test::smallSystem();
        cfg.shard.numShards = 3;
        cfg.shard.policy = ShardPolicy::RowRange;
        cfg.perSsd.assign(3, cfg.ssd);
        cfg.perSsd[2].flash.readRetryRate = retry_rate_on_ssd2;
        sys = std::make_unique<System>(cfg);
        auto table = sys->installTable(9'000, 16);
        std::vector<SlsBackend *> inner;
        for (unsigned d = 0; d < sys->numSsds(); ++d) {
            backends.push_back(std::make_unique<NdpSlsBackend>(
                sys->eq(), sys->cpu(), sys->driver(d), sys->queues(d),
                NdpSlsBackend::Options{}));
            inner.push_back(backends.back().get());
        }
        sharded = std::make_unique<ShardedSlsBackend>(
            sys->eq(), sys->cpu(), sys->router(), inner);

        TraceSpec spec;
        spec.kind = TraceKind::Uniform;
        spec.universe = table.rows;
        spec.seed = 31;
        TraceGenerator gen(spec);
        for (int i = 0; i < 6; ++i) {
            SlsOp op;
            op.table = &table;
            op.indices = gen.nextBatch(4, 18);
            SlsResult result;
            sharded->run(op, [&](SlsResult r) { result = std::move(r); });
            sys->run();
            EXPECT_EQ(result, synthetic::expectedSls(table, op.indices))
                << "per-device retries must never corrupt the gather";
        }
    }
};

TEST(FailureInjection, PerDeviceRetryAccounting)
{
    ShardedRetryRun run(1.0);
    // Only device 2 was configured to retry; the counters are
    // per-device, so the fault shows up exactly where injected.
    EXPECT_GT(run.sys->ssd(2).flash().readRetries(), 0u);
    EXPECT_EQ(run.sys->ssd(0).flash().readRetries(), 0u);
    EXPECT_EQ(run.sys->ssd(1).flash().readRetries(), 0u);
    // All three shards actually did work.
    for (unsigned d = 0; d < 3; ++d)
        EXPECT_GT(run.sys->ssd(d).flash().pageReads(), 0u)
            << "device " << d;
}

TEST(FailureInjection, RetriesOnOneShardDoNotPerturbAnother)
{
    // Shards are independent stacks: maxed-out retries on shard 2
    // must not move a single sub-op latency observed on shard 0,
    // while shard 2's own latency distribution visibly degrades.
    ShardedRetryRun clean(0.0);
    ShardedRetryRun faulty(1.0);
    ASSERT_GT(faulty.sys->ssd(2).flash().readRetries(), 0u);

    const LatencyRecorder &clean0 = clean.sharded->shardLatency(0);
    const LatencyRecorder &faulty0 = faulty.sharded->shardLatency(0);
    ASSERT_GT(clean0.count(), 0u);
    ASSERT_EQ(clean0.count(), faulty0.count());
    EXPECT_EQ(clean0.meanUs(), faulty0.meanUs());
    EXPECT_EQ(clean0.percentileUs(0.99), faulty0.percentileUs(0.99));

    const LatencyRecorder &clean2 = clean.sharded->shardLatency(2);
    const LatencyRecorder &faulty2 = faulty.sharded->shardLatency(2);
    EXPECT_GT(faulty2.meanUs(), clean2.meanUs())
        << "injected retries must surface in shard 2's own latency";
}

}  // namespace
}  // namespace recssd
