/**
 * @file
 * Read-retry failure injection tests: correctness is unaffected,
 * retries are counted, bounded, deterministic, and show up as tail
 * latency.
 */

#include <gtest/gtest.h>

#include "src/embedding/ndp_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/trace/trace_gen.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

TEST(FailureInjection, DisabledByDefault)
{
    System sys(test::smallSystem());
    auto table = sys.installTable(10'000, 16);
    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});
    SlsOp op;
    op.table = &table;
    op.indices = {{1, 2, 3, 4, 5}};
    ndp.run(op, [](SlsResult) {});
    sys.run();
    EXPECT_EQ(sys.ssd().flash().readRetries(), 0u);
}

TEST(FailureInjection, RetriesCountedAndDataStillCorrect)
{
    SystemConfig cfg = test::smallSystem();
    cfg.ssd.flash.readRetryRate = 0.3;
    System sys(cfg);
    auto table = sys.installTable(10'000, 16);
    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});

    TraceSpec spec;
    spec.kind = TraceKind::Uniform;
    spec.universe = table.rows;
    spec.seed = 4;
    TraceGenerator gen(spec);
    SlsOp op;
    op.table = &table;
    op.indices = gen.nextBatch(8, 20);

    SlsResult result;
    ndp.run(op, [&](SlsResult r) { result = std::move(r); });
    sys.run();
    EXPECT_EQ(result, synthetic::expectedSls(table, op.indices))
        << "retries must never corrupt data";
    EXPECT_GT(sys.ssd().flash().readRetries(), 0u);
    // 160 reads at 30%: retries bounded by maxReadRetries each.
    EXPECT_LE(sys.ssd().flash().readRetries(),
              160u * cfg.ssd.flash.maxReadRetries);
}

TEST(FailureInjection, RetriesInflateSingleReadLatency)
{
    // Saturated sequential streams hide retry time behind the channel
    // bus (the die re-reads overlap transfers), so probe the
    // latency-sensitive path: one isolated page read.
    Tick lat[2];
    for (int pass = 0; pass < 2; ++pass) {
        SystemConfig cfg = test::smallSystem();
        cfg.ssd.flash.readRetryRate = pass == 0 ? 0.0 : 1.0;
        System sys(cfg);
        auto table = sys.installTable(1'000, 16);
        Tick t0 = sys.eq().now();
        bool done = false;
        sys.driver().readPage(0, table.baseLpn,
                              [&](const PageView &) { done = true; });
        sys.run();
        ASSERT_TRUE(done);
        lat[pass] = sys.eq().now() - t0;
    }
    Tick expected_extra = SystemConfig().ssd.flash.maxReadRetries *
                          SystemConfig().ssd.flash.readLatency;
    EXPECT_EQ(lat[1], lat[0] + expected_extra)
        << "each retry must cost one tR on the isolated path";
}

TEST(FailureInjection, DeterministicAcrossRuns)
{
    std::uint64_t retries[2];
    for (int i = 0; i < 2; ++i) {
        SystemConfig cfg = test::smallSystem();
        cfg.ssd.flash.readRetryRate = 0.25;
        System sys(cfg);
        auto table = sys.installTable(10'000, 16);
        NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(),
                          sys.queues(), NdpSlsBackend::Options{});
        TraceSpec spec;
        spec.kind = TraceKind::Uniform;
        spec.universe = table.rows;
        spec.seed = 12;
        TraceGenerator gen(spec);
        SlsOp op;
        op.table = &table;
        op.indices = gen.nextBatch(4, 25);
        ndp.run(op, [](SlsResult) {});
        sys.run();
        retries[i] = sys.ssd().flash().readRetries();
    }
    EXPECT_EQ(retries[0], retries[1]);
}

TEST(FailureInjection, RetryCapRespected)
{
    SystemConfig cfg = test::smallSystem();
    cfg.ssd.flash.readRetryRate = 1.0;  // every read maxes out
    cfg.ssd.flash.maxReadRetries = 2;
    System sys(cfg);
    auto table = sys.installTable(1'000, 16);
    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});
    SlsOp op;
    op.table = &table;
    op.indices = {{1}, {2}};
    ndp.run(op, [](SlsResult) {});
    sys.run();
    EXPECT_EQ(sys.ssd().flash().readRetries(),
              2u * sys.ssd().flash().pageReads());
}

}  // namespace
}  // namespace recssd
