/**
 * @file
 * Fault model + tail tolerance: the resilient scatter-gather path
 * under injected device faults.
 *
 * The load-bearing guarantees:
 *  - a dropped device's reads fail over to replicas and every SLS sum
 *    stays bit-exact against the synthetic functional reference;
 *  - deadlines deliver degraded answers instead of hanging, with the
 *    degraded flag raised and late completions accounted per device;
 *  - hedge accounting conserves sub-ops (completions = served +
 *    duplicates; wins <= fires);
 *  - replica rotation balances reads instead of parity-locking;
 *  - with resilience off and replication 1, the resilient backend is
 *    tick-for-tick identical to the plain sharded one.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/embedding/ndp_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/fault/fault_plan.h"
#include "src/resil/health.h"
#include "src/resil/hedge.h"
#include "src/resil/resilient_backend.h"
#include "src/shard/sharded_backend.h"
#include "src/trace/trace_gen.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

constexpr unsigned kBatch = 4;
constexpr unsigned kLookups = 12;

/** Per-device NDP backends wrapped in the resilient fan-out. */
struct ResilSet
{
    std::vector<std::unique_ptr<NdpSlsBackend>> owned;
    std::unique_ptr<ResilientSlsBackend> resil;

    ResilSet(System &sys, const ResilConfig &config)
    {
        std::vector<SlsBackend *> inner;
        for (unsigned d = 0; d < sys.numSsds(); ++d) {
            owned.push_back(std::make_unique<NdpSlsBackend>(
                sys.eq(), sys.cpu(), sys.driver(d), sys.queues(d),
                NdpSlsBackend::Options{}));
            inner.push_back(owned.back().get());
        }
        resil = std::make_unique<ResilientSlsBackend>(
            sys.eq(), sys.cpu(), sys.router(), inner, config);
        resil->setDeviceProbe([&sys](unsigned d) {
            return !sys.ssd(d).controller().dead();
        });
    }
};

SystemConfig
faultedConfig(unsigned num_ssds, unsigned replication,
              const std::string &plan)
{
    SystemConfig cfg = test::smallSystem();
    cfg.shard.numShards = num_ssds;
    cfg.shard.policy = ShardPolicy::RowRange;
    cfg.shard.replication = replication;
    if (!plan.empty())
        applyFaultPlan(cfg, FaultPlan::parse(plan));
    return cfg;
}

TEST(FaultPlanParse, InlineSpecRoundTrips)
{
    FaultPlan plan = FaultPlan::parse(
        "seed=77; stall@1:at=2ms,dur=500us,period=4ms,count=3,ch=1,die=0; "
        "inflate@0:at=1ms,dur=10ms,factor=3.5; dropout@3:at=50ms");
    EXPECT_EQ(plan.seed, 77u);
    ASSERT_EQ(plan.scenarios.size(), 3u);
    EXPECT_EQ(plan.maxDevice(), 3u);

    const FaultScenario &stall = plan.scenarios[0];
    EXPECT_EQ(stall.kind, FaultKind::DieStall);
    EXPECT_EQ(stall.device, 1u);
    EXPECT_EQ(stall.at, 2 * msec);
    EXPECT_EQ(stall.duration, 500 * usec);
    EXPECT_EQ(stall.period, 4 * msec);
    EXPECT_EQ(stall.count, 3u);
    EXPECT_EQ(stall.channel, 1);
    EXPECT_EQ(stall.die, 0);

    const FaultScenario &inflate = plan.scenarios[1];
    EXPECT_EQ(inflate.kind, FaultKind::ReadInflation);
    EXPECT_DOUBLE_EQ(inflate.factor, 3.5);

    const FaultScenario &drop = plan.scenarios[2];
    EXPECT_EQ(drop.kind, FaultKind::DeviceDropout);
    EXPECT_EQ(drop.at, 50 * msec);

    EXPECT_EQ(plan.forDevice(1).size(), 1u);
    EXPECT_TRUE(plan.forDevice(2).empty());
}

TEST(FaultPlanParse, CommentsAndDefaults)
{
    FaultPlan plan = FaultPlan::parse("# a comment\n fwpause@0:at=1ms \n");
    ASSERT_EQ(plan.scenarios.size(), 1u);
    EXPECT_EQ(plan.scenarios[0].kind, FaultKind::FirmwarePause);
    EXPECT_GT(plan.scenarios[0].duration, 0);  // kind default applied
    EXPECT_EQ(plan.scenarios[0].count, 1u);
}

TEST(HealthTrackerUnit, EjectsCoolsDownAndRestores)
{
    HealthTracker h(2, 3, 10 * msec);
    Tick now = 1 * msec;
    EXPECT_FALSE(h.ejected(0, now));
    h.recordTimeout(0, now);
    h.recordTimeout(0, now);
    EXPECT_FALSE(h.ejected(0, now));
    h.recordTimeout(0, now);
    EXPECT_TRUE(h.ejected(0, now));
    EXPECT_EQ(h.ejections(), 1u);
    // Half-open: the window expires and the device is retried.
    EXPECT_FALSE(h.ejected(0, now + 11 * msec));
    // A success during the window restores immediately.
    h.recordTimeout(1, now);
    h.recordTimeout(1, now);
    h.recordTimeout(1, now);
    EXPECT_TRUE(h.ejected(1, now));
    h.recordSuccess(1);
    EXPECT_FALSE(h.ejected(1, now));
    EXPECT_EQ(h.restorations(), 1u);
}

TEST(HedgePolicyUnit, FixedAndAutoDelays)
{
    HedgeConfig fixed;
    fixed.mode = HedgeMode::Fixed;
    fixed.fixedDelay = 3 * msec;
    HedgePolicy fp(fixed);
    EXPECT_TRUE(fp.active());
    EXPECT_EQ(fp.delay(), 3 * msec);

    HedgeConfig autoCfg;
    autoCfg.mode = HedgeMode::Auto;
    autoCfg.fixedDelay = 3 * msec;
    autoCfg.quantile = 0.95;
    autoCfg.multiplier = 2.0;
    autoCfg.minSamples = 4;
    autoCfg.minDelay = 1 * usec;
    HedgePolicy ap(autoCfg);
    // Below minSamples: fall back to the fixed delay.
    ap.observe(100 * usec);
    EXPECT_EQ(ap.delay(), 3 * msec);
    ap.observe(100 * usec);
    ap.observe(100 * usec);
    ap.observe(200 * usec);
    // p95 of {100,100,100,200}us is 200us; times the multiplier.
    EXPECT_EQ(ap.delay(), 400 * usec);

    HedgePolicy off{HedgeConfig{}};
    EXPECT_FALSE(off.active());
}

/**
 * The headline acceptance scenario: 4 row-range devices, 2-way
 * replication, device 3 drops at t=50ms while ops are continuously in
 * flight. Hedging rescues the sub-ops swallowed by the dying device;
 * the probe fails the dead device over for everything issued later.
 * Every op must complete and every SLS sum must equal the exact
 * functional reference.
 */
TEST(TailTolerance, DropoutFailsOverBitExact)
{
    System sys(faultedConfig(4, 2, "dropout@3:at=50ms"));
    auto table = sys.installTable(10'000, 16);

    ResilConfig rc;
    rc.hedge.mode = HedgeMode::Fixed;
    rc.hedge.fixedDelay = 2 * msec;
    ResilSet set(sys, rc);

    TraceSpec spec;
    spec.kind = TraceKind::Uniform;
    spec.universe = table.rows;
    spec.seed = 20260806;
    TraceGenerator gen(spec);

    constexpr unsigned kOps = 25;
    struct OpResult
    {
        std::vector<std::vector<RowId>> indices;
        SlsResult result;
        bool degraded = false;
        bool completed = false;
    };
    std::vector<OpResult> ops(kOps);
    // One op every 4ms: ~12 before the dropout, the rest after, with
    // several in flight when the device dies.
    for (unsigned i = 0; i < kOps; ++i) {
        ops[i].indices = gen.nextBatch(kBatch, kLookups);
        sys.eq().schedule(Tick(i) * (4 * msec), [&, i]() {
            SlsOp op;
            op.table = &table;
            op.indices = ops[i].indices;
            set.resil->runResil(op, [&, i](SlsResult r, bool degraded) {
                ops[i].result = std::move(r);
                ops[i].degraded = degraded;
                ops[i].completed = true;
            });
        });
    }
    sys.run();

    for (unsigned i = 0; i < kOps; ++i) {
        ASSERT_TRUE(ops[i].completed) << "op " << i << " never completed";
        EXPECT_FALSE(ops[i].degraded) << "op " << i;
        EXPECT_EQ(ops[i].result,
                  synthetic::expectedSls(table, ops[i].indices))
            << "op " << i << " not bit-exact";
    }
    EXPECT_TRUE(sys.ssd(3).controller().dead());
    // Post-dropout reads landed on replicas, not the dead device.
    EXPECT_GT(set.resil->failovers(), 0u);
    // Conservation: every completion is either the serving one or
    // counted hedge waste (the dead device's swallowed sub-ops are
    // the issue/completion gap).
    EXPECT_EQ(set.resil->completionsTotal(),
              set.resil->servedSubs() + set.resil->duplicateCompletions());
    EXPECT_LE(set.resil->completionsTotal(), set.resil->issuesTotal());
    EXPECT_LE(set.resil->hedgeWins(), set.resil->hedgesFired());
}

/**
 * A deadline far below the device's service time: the op must deliver
 * at the deadline with the degraded flag and a zero-filled answer
 * (no host cache attached), and the real completions that straggle in
 * afterwards must be counted late and as duplicates.
 */
TEST(TailTolerance, DeadlineDeliversDegraded)
{
    System sys(faultedConfig(2, 1, ""));
    auto table = sys.installTable(10'000, 16);

    ResilConfig rc;
    rc.deadline = 1 * usec;
    ResilSet set(sys, rc);

    TraceSpec spec;
    spec.kind = TraceKind::Uniform;
    spec.universe = table.rows;
    spec.seed = 31;
    TraceGenerator gen(spec);

    SlsOp op;
    op.table = &table;
    op.indices = gen.nextBatch(kBatch, kLookups);
    SlsResult result;
    bool degraded = false;
    bool completed = false;
    Tick done_at = 0;
    set.resil->runResil(op, [&](SlsResult r, bool d) {
        result = std::move(r);
        degraded = d;
        completed = true;
        done_at = sys.eq().now();
    });
    sys.run();

    ASSERT_TRUE(completed);
    EXPECT_TRUE(degraded);
    EXPECT_EQ(done_at, 1 * usec);  // delivered exactly at the deadline
    EXPECT_EQ(set.resil->deadlineMisses(), 1u);
    EXPECT_GT(set.resil->degradedFills(), 0u);
    // No host cache: the degraded answer is all zeros.
    for (float v : result)
        EXPECT_EQ(v, 0.0f);
    // The real sub-op completions arrived after delivery: all late,
    // all duplicates, none serving.
    EXPECT_EQ(set.resil->servedSubs(), 0u);
    EXPECT_EQ(set.resil->completionsTotal(),
              set.resil->duplicateCompletions());
    std::uint64_t late = 0;
    for (unsigned d = 0; d < sys.numSsds(); ++d)
        late += set.resil->lateCompletionsOn(d);
    EXPECT_EQ(late, set.resil->completionsTotal());
    EXPECT_GT(late, 0u);
}

/**
 * Die stalls slow one device while hedging re-issues to replicas:
 * results stay bit-exact and the accounting invariants hold exactly
 * (no dead devices here, so issues == completions once drained).
 */
TEST(TailTolerance, HedgeAccountingConserved)
{
    System sys(faultedConfig(
        3, 2, "stall@0:at=1ms,dur=5ms,period=6ms,count=8,ch=0,die=0"));
    auto table = sys.installTable(9'000, 16);

    ResilConfig rc;
    rc.hedge.mode = HedgeMode::Fixed;
    rc.hedge.fixedDelay = 300 * usec;
    ResilSet set(sys, rc);

    TraceSpec spec;
    spec.kind = TraceKind::Uniform;
    spec.universe = table.rows;
    spec.seed = 404;
    TraceGenerator gen(spec);

    constexpr unsigned kOps = 20;
    std::vector<std::vector<std::vector<RowId>>> indices(kOps);
    std::vector<SlsResult> results(kOps);
    unsigned completed = 0;
    for (unsigned i = 0; i < kOps; ++i) {
        indices[i] = gen.nextBatch(kBatch, kLookups);
        sys.eq().schedule(Tick(i) * (2 * msec), [&, i]() {
            SlsOp op;
            op.table = &table;
            op.indices = indices[i];
            set.resil->runResil(op, [&, i](SlsResult r, bool) {
                results[i] = std::move(r);
                ++completed;
            });
        });
    }
    sys.run();

    ASSERT_EQ(completed, kOps);
    for (unsigned i = 0; i < kOps; ++i)
        EXPECT_EQ(results[i], synthetic::expectedSls(table, indices[i]))
            << "op " << i;
    // No device ever dies, so every issue eventually completes.
    EXPECT_EQ(set.resil->issuesTotal(), set.resil->completionsTotal());
    EXPECT_EQ(set.resil->completionsTotal(),
              set.resil->servedSubs() + set.resil->duplicateCompletions());
    EXPECT_LE(set.resil->hedgeWins(), set.resil->hedgesFired());
    // Every hedge adds exactly one extra issue, and with no dead
    // device both the original and the hedge complete — so the extra
    // completions are all counted as hedge waste.
    EXPECT_EQ(set.resil->duplicateCompletions(), set.resil->hedgesFired());
    EXPECT_GT(set.resil->hedgesFired(), 0u);
}

/**
 * Replica rotation must spread reads: with 2-way replication over 4
 * devices and no faults, no device may starve (the parity-lock
 * regression: a per-sub counter against an even candidate count sent
 * entire slices to one fixed candidate forever).
 */
TEST(TailTolerance, ReplicaReadsBalanceAcrossDevices)
{
    System sys(faultedConfig(4, 2, ""));
    auto table = sys.installTable(12'000, 16);

    ResilSet set(sys, ResilConfig{});

    TraceSpec spec;
    spec.kind = TraceKind::Uniform;
    spec.universe = table.rows;
    spec.seed = 555;
    TraceGenerator gen(spec);

    constexpr unsigned kOps = 40;
    unsigned completed = 0;
    for (unsigned i = 0; i < kOps; ++i) {
        SlsOp op;
        op.table = &table;
        op.indices = gen.nextBatch(kBatch, kLookups);
        set.resil->runResil(op, [&](SlsResult, bool) { ++completed; });
        sys.run();
    }
    ASSERT_EQ(completed, kOps);

    std::uint64_t lo = ~0ull, hi = 0;
    for (unsigned d = 0; d < sys.numSsds(); ++d) {
        std::uint64_t n = set.resil->subOpsOn(d);
        lo = std::min(lo, n);
        hi = std::max(hi, n);
    }
    EXPECT_GT(lo, 0u) << "a device starved";
    EXPECT_LE(hi, 2 * lo) << "replica reads badly imbalanced";
}

/**
 * With replication 1, hedging off and no deadline, the resilient
 * backend must be indistinguishable from the plain sharded one:
 * identical results at identical simulated times, op for op.
 */
TEST(TailTolerance, InactiveConfigMatchesShardedTickForTick)
{
    struct Trace
    {
        std::vector<SlsResult> results;
        std::vector<Tick> doneAt;
    };
    auto runWith = [](bool resilient) {
        SystemConfig cfg = test::smallSystem();
        cfg.shard.numShards = 3;
        cfg.shard.policy = ShardPolicy::RowRange;
        System sys(cfg);
        auto table = sys.installTable(10'000, 16);

        std::vector<std::unique_ptr<NdpSlsBackend>> owned;
        std::vector<SlsBackend *> inner;
        for (unsigned d = 0; d < sys.numSsds(); ++d) {
            owned.push_back(std::make_unique<NdpSlsBackend>(
                sys.eq(), sys.cpu(), sys.driver(d), sys.queues(d),
                NdpSlsBackend::Options{}));
            inner.push_back(owned.back().get());
        }
        std::unique_ptr<ShardedSlsBackend> sharded;
        std::unique_ptr<ResilientSlsBackend> resil;
        SlsBackend *backend = nullptr;
        if (resilient) {
            resil = std::make_unique<ResilientSlsBackend>(
                sys.eq(), sys.cpu(), sys.router(), inner, ResilConfig{});
            backend = resil.get();
        } else {
            sharded = std::make_unique<ShardedSlsBackend>(
                sys.eq(), sys.cpu(), sys.router(), inner);
            backend = sharded.get();
        }

        TraceSpec spec;
        spec.kind = TraceKind::Uniform;
        spec.universe = table.rows;
        spec.seed = 99;
        TraceGenerator gen(spec);

        Trace out;
        for (unsigned i = 0; i < 6; ++i) {
            SlsOp op;
            op.table = &table;
            op.indices = gen.nextBatch(kBatch, kLookups);
            backend->run(op, [&](SlsResult r) {
                out.results.push_back(std::move(r));
                out.doneAt.push_back(sys.eq().now());
            });
            sys.run();
        }
        return out;
    };

    Trace plain = runWith(false);
    Trace resil = runWith(true);
    ASSERT_EQ(plain.results.size(), resil.results.size());
    EXPECT_EQ(plain.results, resil.results);
    EXPECT_EQ(plain.doneAt, resil.doneAt);
}

/**
 * Fault stats surface per device: an injected inflation window shows
 * up in the flash counters and the injector's own accounting, and
 * only on the targeted device.
 */
TEST(TailTolerance, FaultStatsVisiblePerDevice)
{
    System sys(faultedConfig(2, 1, "inflate@1:at=0us,dur=200ms,factor=4"));
    auto table = sys.installTable(10'000, 16);

    ResilConfig rc;
    rc.hedge.mode = HedgeMode::Fixed;
    rc.hedge.fixedDelay = 5 * msec;
    ResilSet set(sys, rc);

    TraceSpec spec;
    spec.kind = TraceKind::Uniform;
    spec.universe = table.rows;
    spec.seed = 7;
    TraceGenerator gen(spec);
    for (unsigned i = 0; i < 4; ++i) {
        SlsOp op;
        op.table = &table;
        op.indices = gen.nextBatch(kBatch, kLookups);
        bool done = false;
        set.resil->runResil(op, [&](SlsResult, bool) { done = true; });
        sys.run();
        ASSERT_TRUE(done);
    }

    ASSERT_NE(sys.ssd(1).faultInjector(), nullptr);
    EXPECT_EQ(sys.ssd(0).faultInjector(), nullptr);
    EXPECT_EQ(sys.ssd(1).faultInjector()->inflationWindows(), 1u);
    EXPECT_GT(sys.ssd(1).flash().inflatedReads(), 0u);
    EXPECT_EQ(sys.ssd(0).flash().inflatedReads(), 0u);
}

}  // namespace
}  // namespace recssd
