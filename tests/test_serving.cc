/**
 * @file
 * Open-loop serving harness tests.
 */

#include <gtest/gtest.h>

#include "src/reco/serving.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.tables = {TableGroup{2, 50'000, 16, 8}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

TEST(Serving, CompletesAllQueriesAndReportsStats)
{
    System sys(test::smallSystem());
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::BaselineSsd;
    opt.forceAllTablesOnSsd = true;
    ModelRunner runner(sys, tinyModel(), opt);

    ServingConfig cfg;
    cfg.qps = 200.0;
    cfg.queries = 40;
    cfg.warmupQueries = 5;
    cfg.batchSize = 4;
    auto stats = runOpenLoop(runner, cfg);

    EXPECT_GT(stats.meanLatencyUs, 0.0);
    EXPECT_GE(stats.maxLatencyUs, stats.meanLatencyUs);
    EXPECT_LE(stats.p50Us, stats.p99Us + 1.0);
    EXPECT_GT(stats.achievedQps, 0.0);
    EXPECT_GE(stats.sloAttainment, 0.0);
    EXPECT_LE(stats.sloAttainment, 1.0);
}

TEST(Serving, OverloadInflatesLatency)
{
    double mean[2];
    double rates[2] = {20.0, 2000.0};
    for (int i = 0; i < 2; ++i) {
        System sys(test::smallSystem());
        RunnerOptions opt;
        opt.backend = EmbeddingBackendKind::BaselineSsd;
        opt.forceAllTablesOnSsd = true;
        ModelRunner runner(sys, tinyModel(), opt);
        ServingConfig cfg;
        cfg.qps = rates[i];
        cfg.queries = 30;
        cfg.warmupQueries = 3;
        cfg.batchSize = 4;
        mean[i] = runOpenLoop(runner, cfg).meanLatencyUs;
    }
    EXPECT_GT(mean[1], mean[0] * 1.5)
        << "queueing delay must appear beyond the service rate";
}

TEST(Serving, SloAccountingConsistent)
{
    System sys(test::smallSystem());
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Dram;
    ModelRunner runner(sys, tinyModel(), opt);
    ServingConfig cfg;
    cfg.qps = 100.0;
    cfg.queries = 20;
    cfg.warmupQueries = 2;
    cfg.batchSize = 4;
    cfg.latencySlo = 1 * sec;  // generous: everything meets it
    auto stats = runOpenLoop(runner, cfg);
    EXPECT_DOUBLE_EQ(stats.sloAttainment, 1.0);

    System sys2(test::smallSystem());
    ModelRunner runner2(sys2, tinyModel(), opt);
    cfg.latencySlo = 1;  // impossible: 1ns
    auto stats2 = runOpenLoop(runner2, cfg);
    EXPECT_DOUBLE_EQ(stats2.sloAttainment, 0.0);
}

TEST(Serving, DeterministicForSeed)
{
    double means[2];
    for (int i = 0; i < 2; ++i) {
        System sys(test::smallSystem());
        RunnerOptions opt;
        opt.backend = EmbeddingBackendKind::BaselineSsd;
        opt.forceAllTablesOnSsd = true;
        ModelRunner runner(sys, tinyModel(), opt);
        ServingConfig cfg;
        cfg.qps = 150.0;
        cfg.queries = 25;
        cfg.warmupQueries = 2;
        cfg.batchSize = 4;
        cfg.seed = 1234;
        means[i] = runOpenLoop(runner, cfg).meanLatencyUs;
    }
    EXPECT_DOUBLE_EQ(means[0], means[1]);
}

}  // namespace
}  // namespace recssd
