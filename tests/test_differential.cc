/**
 * @file
 * Differential backend suite: for randomized traces, the gathered-and-
 * pooled embedding outputs of the DRAM reference, the baseline SSD
 * backend and the NDP backend must be bit-identical — no tolerance.
 * Any divergence between the serving-path backends is a correctness
 * bug, not a modelling choice, so the suite drives >= 100 random
 * (layout, trace kind, batch, pooling) combinations through all of
 * them and EXPECT_EQs the float vectors.
 */

#include <gtest/gtest.h>

#include "src/embedding/baseline_backend.h"
#include "src/embedding/dram_backend.h"
#include "src/embedding/ndp_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/trace/trace_gen.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

class DifferentialTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sys_ = std::make_unique<System>(test::smallSystem());
        unsigned page = sys_->config().ssd.flash.pageSize;
        // One table per layout class: narrow unpacked, packed medium,
        // wide unpacked, packed small-attr.
        tables_.push_back(sys_->installTable(60'000, 16, 4, 1));
        tables_.push_back(sys_->installTable(60'000, 32, 4,
                                             page / (32 * 4)));
        tables_.push_back(sys_->installTable(20'000, 64, 4, 1));
        tables_.push_back(sys_->installTable(60'000, 32, 2,
                                             page / (32 * 2)));
    }

    SlsResult
    runSync(SlsBackend &backend, const SlsOp &op)
    {
        SlsResult out;
        bool done = false;
        backend.run(op, [&](SlsResult r) {
            out = std::move(r);
            done = true;
        });
        sys_->run();
        EXPECT_TRUE(done);
        return out;
    }

    SlsOp
    randomOp(Rng &rng, const EmbeddingTableDesc &table)
    {
        static const TraceKind kinds[] = {
            TraceKind::Sequential, TraceKind::Strided, TraceKind::Uniform,
            TraceKind::Zipf, TraceKind::LocalityK};
        TraceSpec spec;
        spec.kind = kinds[rng.uniformInt(5)];
        spec.universe = table.rows;
        spec.seed = rng();
        spec.activeUniverse = 256 + rng.uniformInt(1024);
        spec.k = rng.uniformDouble() * 2.0;
        spec.stride = 1 + rng.uniformInt(64);
        TraceGenerator gen(spec);
        SlsOp op;
        op.table = &table;
        op.indices = gen.nextBatch(1 + rng.uniformInt(10),
                                   1 + rng.uniformInt(24));
        // Sparse queries leave some bags empty (the serving path does
        // this for tables a query does not touch).
        for (auto &bag : op.indices)
            if (rng.bernoulli(0.1))
                bag.clear();
        return op;
    }

    std::unique_ptr<System> sys_;
    std::vector<EmbeddingTableDesc> tables_;
};

TEST_F(DifferentialTest, RandomTracesAllBackendsBitIdentical)
{
    DramSlsBackend dram(sys_->eq(), sys_->cpu());
    BaselineSsdSlsBackend base(sys_->eq(), sys_->cpu(), sys_->driver(),
                               sys_->queues(),
                               BaselineSsdSlsBackend::Options{});
    BaselineSsdSlsBackend::Options nocoal;
    nocoal.coalescePages = false;
    BaselineSsdSlsBackend base_per_lookup(sys_->eq(), sys_->cpu(),
                                          sys_->driver(), sys_->queues(),
                                          nocoal);
    NdpSlsBackend ndp(sys_->eq(), sys_->cpu(), sys_->driver(),
                      sys_->queues(), NdpSlsBackend::Options{});

    Rng rng(20260806);
    const unsigned kTraces = 120;
    for (unsigned t = 0; t < kTraces; ++t) {
        const auto &table = tables_[rng.uniformInt(tables_.size())];
        SlsOp op = randomOp(rng, table);
        auto expected = synthetic::expectedSls(table, op.indices);
        ASSERT_EQ(runSync(dram, op), expected)
            << "DRAM reference diverged on trace " << t;
        ASSERT_EQ(runSync(base, op), expected)
            << "baseline SSD diverged on trace " << t << " (table dim "
            << table.dim << ")";
        ASSERT_EQ(runSync(base_per_lookup, op), expected)
            << "per-lookup baseline diverged on trace " << t;
        ASSERT_EQ(runSync(ndp, op), expected)
            << "NDP diverged on trace " << t << " (table dim "
            << table.dim << ")";
    }
}

TEST_F(DifferentialTest, StatefulVariantsStayExactAcrossTraces)
{
    // The host LRU cache and the static partition carry state from op
    // to op; reuse-heavy traces must never surface a stale or
    // misplaced row.
    const auto &table = tables_[1];  // packed dim-32

    HostEmbeddingCache cache(512);
    BaselineSsdSlsBackend::Options copt;
    copt.hostCache = &cache;
    BaselineSsdSlsBackend cached(sys_->eq(), sys_->cpu(), sys_->driver(),
                                 sys_->queues(), copt);

    StaticPartition part(64);
    TraceSpec pspec;
    pspec.kind = TraceKind::LocalityK;
    pspec.universe = table.rows;
    pspec.activeUniverse = 128;
    pspec.seed = 31;
    TraceGenerator profiler(pspec);
    for (int i = 0; i < 4000; ++i)
        part.profile(table.id, profiler.next());
    part.build([&](std::uint32_t, RowId row) {
        return synthetic::vectorOf(table, row);
    });
    NdpSlsBackend::Options popt;
    popt.partition = &part;
    NdpSlsBackend partitioned(sys_->eq(), sys_->cpu(), sys_->driver(),
                              sys_->queues(), popt);

    Rng rng(4242);
    for (unsigned t = 0; t < 40; ++t) {
        TraceSpec spec;
        spec.kind = TraceKind::LocalityK;
        spec.universe = table.rows;
        spec.activeUniverse = 128;  // overlap the profiled set
        spec.k = rng.uniformDouble() * 2.0;
        spec.seed = rng();
        TraceGenerator gen(spec);
        SlsOp op;
        op.table = &table;
        op.indices = gen.nextBatch(1 + rng.uniformInt(8),
                                   1 + rng.uniformInt(16));
        auto expected = synthetic::expectedSls(table, op.indices);
        ASSERT_EQ(runSync(cached, op), expected)
            << "LRU-cached baseline diverged on trace " << t;
        ASSERT_EQ(runSync(partitioned, op), expected)
            << "partitioned NDP diverged on trace " << t;
    }
    EXPECT_GT(cache.hits(), 0u) << "reuse traces must exercise the cache";
    EXPECT_GT(partitioned.hotLookups(), 0u)
        << "profiled rows must exercise the partition";
}

}  // namespace
}  // namespace recssd
