/**
 * @file
 * Unit tests for the flash array: addressing, the data store, and the
 * timing model (latencies, channel/die parallelism, throughput).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "src/common/event_queue.h"
#include "src/flash/flash_array.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

std::vector<std::byte>
pattern(unsigned size, std::uint8_t seed)
{
    std::vector<std::byte> data(size);
    for (unsigned i = 0; i < size; ++i)
        data[i] = std::byte(static_cast<std::uint8_t>(seed + i));
    return data;
}

TEST(FlashAddress, EncodeDecodeRoundTrip)
{
    FlashParams p = test::tinyFlash();
    for (Ppn ppn = 0; ppn < p.totalPages(); ++ppn) {
        auto a = FlashAddress::decode(ppn, p);
        EXPECT_LT(a.channel, p.numChannels);
        EXPECT_LT(a.die, p.diesPerChannel);
        EXPECT_LT(a.block, p.blocksPerDie);
        EXPECT_LT(a.page, p.pagesPerBlock);
        EXPECT_EQ(FlashAddress::encode(a.channel, a.die, a.block, a.page, p),
                  ppn);
    }
}

TEST(FlashAddress, ConsecutivePpnsStripeChannels)
{
    FlashParams p;  // defaults: 8 channels
    for (Ppn ppn = 0; ppn < 64; ++ppn) {
        auto a = FlashAddress::decode(ppn, p);
        EXPECT_EQ(a.channel, ppn % p.numChannels);
    }
}

TEST(FlashParams, CosmosLikeRates)
{
    FlashParams p;
    // Aggregate sequential read should be just under 1.4GB/s (§5).
    double per_channel_pages_per_sec =
        double(sec) / double(p.pageTransferTime() + p.cmdLatency);
    double bw = per_channel_pages_per_sec * p.numChannels * p.pageSize;
    EXPECT_GT(bw, 1.1e9);
    EXPECT_LT(bw, 1.45e9);
    // Around 10K page reads/s per channel.
    EXPECT_GT(per_channel_pages_per_sec, 9000.0);
    EXPECT_LT(per_channel_pages_per_sec, 12000.0);
}

TEST(DataStore, StoredReadBack)
{
    DataStore store(4096);
    auto data = pattern(4096, 3);
    store.write(7, data);
    std::vector<std::byte> out(4096);
    store.read(7, 0, out);
    EXPECT_EQ(out, data);
    EXPECT_TRUE(store.hasStored(7));
}

TEST(DataStore, PartialReads)
{
    DataStore store(4096);
    store.write(1, pattern(4096, 9));
    std::vector<std::byte> out(16);
    store.read(1, 100, out);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], std::byte(static_cast<std::uint8_t>(9 + 100 + i)));
}

TEST(DataStore, UnwrittenReadsZero)
{
    DataStore store(4096);
    std::vector<std::byte> out(64, std::byte{0xFF});
    store.read(123, 0, out);
    for (auto b : out)
        EXPECT_EQ(b, std::byte{0});
}

TEST(DataStore, SyntheticRegionGenerates)
{
    DataStore store(4096);
    store.registerSynthetic(100, 10, [](std::uint64_t page,
                                        std::size_t offset,
                                        std::span<std::byte> out) {
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = std::byte(
                static_cast<std::uint8_t>(page + offset + i));
    });
    std::vector<std::byte> out(8);
    store.read(105, 16, out);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], std::byte(static_cast<std::uint8_t>(5 + 16 + i)));
    // Outside the region: zeros.
    store.read(110, 0, out);
    EXPECT_EQ(out[0], std::byte{0});
}

TEST(DataStore, StoredOverridesSynthetic)
{
    DataStore store(4096);
    store.registerSynthetic(0, 4, [](std::uint64_t, std::size_t,
                                     std::span<std::byte> out) {
        std::ranges::fill(out, std::byte{0xAA});
    });
    store.write(2, pattern(4096, 1));
    std::vector<std::byte> out(4);
    store.read(2, 0, out);
    EXPECT_EQ(out[0], std::byte{1});
    store.erase(2);
    store.read(2, 0, out);
    EXPECT_EQ(out[0], std::byte{0xAA});
}

TEST(DataStoreDeathTest, OverlappingRegionsPanic)
{
    DataStore store(4096);
    store.registerSynthetic(0, 10, [](auto, auto, auto) {});
    EXPECT_DEATH(store.registerSynthetic(5, 10, [](auto, auto, auto) {}),
                 "overlap");
}

class FlashTimingTest : public ::testing::Test
{
  protected:
    FlashTimingTest()
        : store_(params_.pageSize), flash_(eq_, params_, store_)
    {
    }

    FlashParams params_ = test::tinyFlash();
    EventQueue eq_;
    DataStore store_;
    FlashArray flash_;
};

TEST_F(FlashTimingTest, SingleReadLatency)
{
    Tick done = 0;
    flash_.readPage(0, [&](const PageView &) { done = eq_.now(); });
    eq_.run();
    Tick expected = params_.cmdLatency + params_.readLatency +
                    params_.pageTransferTime();
    EXPECT_EQ(done, expected);
    EXPECT_EQ(flash_.pageReads(), 1u);
}

TEST_F(FlashTimingTest, DifferentChannelsProceedInParallel)
{
    Tick done0 = 0;
    Tick done1 = 0;
    flash_.readPage(0, [&](const PageView &) { done0 = eq_.now(); });
    flash_.readPage(1, [&](const PageView &) { done1 = eq_.now(); });
    eq_.run();
    EXPECT_EQ(done0, done1) << "channel 0 and 1 reads are independent";
}

TEST_F(FlashTimingTest, SameChannelSerializesTransfers)
{
    // Two reads to the same channel but different dies: tR overlaps,
    // the bus transfer cannot.
    Ppn a = 0;
    Ppn b = FlashAddress::encode(0, 1, 0, 0, params_);
    Tick done_a = 0;
    Tick done_b = 0;
    flash_.readPage(a, [&](const PageView &) { done_a = eq_.now(); });
    flash_.readPage(b, [&](const PageView &) { done_b = eq_.now(); });
    eq_.run();
    EXPECT_GE(done_b, done_a + params_.pageTransferTime());
}

TEST_F(FlashTimingTest, SameDieSerializesReads)
{
    Ppn a = FlashAddress::encode(0, 0, 0, 0, params_);
    Ppn b = FlashAddress::encode(0, 0, 0, 1, params_);
    Tick done_b = 0;
    flash_.readPage(a, [](const PageView &) {});
    flash_.readPage(b, [&](const PageView &) { done_b = eq_.now(); });
    eq_.run();
    EXPECT_GE(done_b, 2 * params_.readLatency);
}

TEST_F(FlashTimingTest, WriteThenReadReturnsData)
{
    auto data = pattern(params_.pageSize, 0x42);
    bool wrote = false;
    flash_.writePage(5, data, [&]() { wrote = true; });
    eq_.run();
    EXPECT_TRUE(wrote);
    EXPECT_EQ(flash_.pageWrites(), 1u);

    std::vector<std::byte> out(params_.pageSize);
    bool read = false;
    flash_.readPage(5, [&](const PageView &view) {
        view.copyOut(0, out);
        read = true;
    });
    eq_.run();
    EXPECT_TRUE(read);
    EXPECT_EQ(out, data);
}

TEST_F(FlashTimingTest, WriteLatencyIncludesProgram)
{
    Tick done = 0;
    flash_.writePage(0, pattern(params_.pageSize, 1),
                     [&]() { done = eq_.now(); });
    eq_.run();
    EXPECT_GE(done, params_.programLatency);
}

TEST_F(FlashTimingTest, EraseDropsBlockData)
{
    auto data = pattern(params_.pageSize, 7);
    flash_.writePage(0, data, nullptr);
    eq_.run();
    bool erased = false;
    flash_.eraseBlock(0, [&]() { erased = true; });
    eq_.run();
    EXPECT_TRUE(erased);
    EXPECT_EQ(flash_.blockErases(), 1u);

    std::vector<std::byte> out(16, std::byte{0xFF});
    flash_.readPage(0, [&](const PageView &view) { view.copyOut(0, out); });
    eq_.run();
    EXPECT_EQ(out[0], std::byte{0});
}

TEST_F(FlashTimingTest, ThroughputNearChannelLimit)
{
    // Saturate one channel with 50 reads across its dies.
    const unsigned n = 50;
    unsigned done = 0;
    for (unsigned i = 0; i < n; ++i) {
        Ppn ppn = FlashAddress::encode(0, i % params_.diesPerChannel,
                                       (i / params_.diesPerChannel) %
                                           params_.blocksPerDie,
                                       i % params_.pagesPerBlock, params_);
        flash_.readPage(ppn, [&](const PageView &) { ++done; });
    }
    Tick elapsed = eq_.run();
    EXPECT_EQ(done, n);
    // Pipelined bound: the slower of the die-array limit and the bus
    // limit, plus startup slack. Far below the unpipelined serial
    // time of n x (cmd + tR + transfer).
    Tick per_page = params_.pageTransferTime() + params_.cmdLatency;
    Tick bus_bound = per_page * n;
    Tick die_bound = params_.readLatency * (n / params_.diesPerChannel + 1);
    EXPECT_LT(elapsed, std::max(bus_bound, die_bound) + per_page * 4 +
                           params_.readLatency)
        << "pipelined reads should approach the resource limit";
    Tick serial = n * (per_page + params_.readLatency);
    EXPECT_LT(elapsed, serial / 2) << "must be far better than serial";
}

}  // namespace
}  // namespace recssd
