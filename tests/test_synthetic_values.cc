/**
 * @file
 * Tests for the deterministic synthetic embedding values and the
 * flash page generator built from them.
 */

#include <gtest/gtest.h>

#include "src/embedding/synthetic_values.h"
#include "src/ndp/attr_codec.h"

namespace recssd
{
namespace
{

EmbeddingTableDesc
desc(std::uint32_t dim, std::uint32_t attr, std::uint32_t rows_per_page)
{
    EmbeddingTableDesc d;
    d.id = 9;
    d.rows = 10'000;
    d.dim = dim;
    d.attrBytes = attr;
    d.rowsPerPage = rows_per_page;
    return d;
}

TEST(SyntheticValues, DeterministicAndSmallIntegers)
{
    for (int rep = 0; rep < 2; ++rep) {
        float v = synthetic::value(1, 2, 3);
        EXPECT_EQ(v, synthetic::value(1, 2, 3));
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 16.0f);
        EXPECT_EQ(v, static_cast<float>(static_cast<int>(v)));
    }
}

TEST(SyntheticValues, DistinctCoordinatesDiffer)
{
    // Not all values can differ (range is [0,16)), but across a
    // window the sequences must not be constant.
    bool row_differs = false;
    bool table_differs = false;
    for (std::uint32_t i = 0; i < 32; ++i) {
        row_differs |= synthetic::value(0, 1, i) !=
                       synthetic::value(0, 2, i);
        table_differs |= synthetic::value(0, 1, i) !=
                         synthetic::value(1, 1, i);
    }
    EXPECT_TRUE(row_differs);
    EXPECT_TRUE(table_differs);
}

TEST(SyntheticValues, VectorOfMatchesScalar)
{
    auto d = desc(16, 4, 1);
    auto v = synthetic::vectorOf(d, 123);
    ASSERT_EQ(v.size(), 16u);
    for (std::uint32_t e = 0; e < 16; ++e)
        EXPECT_EQ(v[e], synthetic::value(d.id, 123, e));
}

TEST(SyntheticValues, FillVectorEncodesAttrSizes)
{
    for (std::uint32_t attr : {4u, 2u, 1u}) {
        auto d = desc(8, attr, 1);
        std::vector<std::byte> raw(d.vectorBytes());
        synthetic::fillVector(d, 55, raw);
        for (std::uint32_t e = 0; e < d.dim; ++e)
            EXPECT_EQ(decodeAttr(raw, e, attr),
                      synthetic::value(d.id, 55, e));
    }
}

TEST(SyntheticValues, ExpectedSlsSumsLists)
{
    auto d = desc(4, 4, 1);
    auto out = synthetic::expectedSls(d, {{1, 2}, {3}});
    ASSERT_EQ(out.size(), 8u);
    for (std::uint32_t e = 0; e < 4; ++e) {
        EXPECT_EQ(out[e], synthetic::value(d.id, 1, e) +
                              synthetic::value(d.id, 2, e));
        EXPECT_EQ(out[4 + e], synthetic::value(d.id, 3, e));
    }
}

TEST(SyntheticValues, GeneratorMatchesFillVectorUnpacked)
{
    auto d = desc(32, 4, 1);
    auto gen = synthetic::makeGenerator(d);
    std::vector<std::byte> from_gen(d.vectorBytes());
    gen(77, 0, from_gen);
    std::vector<std::byte> direct(d.vectorBytes());
    synthetic::fillVector(d, 77, direct);
    EXPECT_EQ(from_gen, direct);
}

TEST(SyntheticValues, GeneratorHandlesPackedPagesAndOffsets)
{
    auto d = desc(32, 4, 4);  // 4 vectors per page
    auto gen = synthetic::makeGenerator(d);
    // Row 9 = page 2, slot 1.
    std::vector<std::byte> out(d.vectorBytes());
    gen(2, 1 * d.vectorBytes(), out);
    std::vector<std::byte> direct(d.vectorBytes());
    synthetic::fillVector(d, 9, direct);
    EXPECT_EQ(out, direct);
}

TEST(SyntheticValues, GeneratorSpansSlotBoundaries)
{
    auto d = desc(8, 4, 4);  // 32B vectors
    auto gen = synthetic::makeGenerator(d);
    // Read 64 bytes covering slots 0 and 1 at once.
    std::vector<std::byte> wide(64);
    gen(0, 0, wide);
    std::vector<std::byte> s0(32);
    std::vector<std::byte> s1(32);
    synthetic::fillVector(d, 0, s0);
    synthetic::fillVector(d, 1, s1);
    EXPECT_EQ(std::vector<std::byte>(wide.begin(), wide.begin() + 32), s0);
    EXPECT_EQ(std::vector<std::byte>(wide.begin() + 32, wide.end()), s1);
}

TEST(SyntheticValues, GeneratorZeroFillsPastTableEnd)
{
    auto d = desc(8, 4, 4);
    d.rows = 6;  // last page (page 1) holds rows 4,5 then padding
    auto gen = synthetic::makeGenerator(d);
    std::vector<std::byte> out(d.vectorBytes());
    gen(1, 2 * d.vectorBytes(), out);  // slot for would-be row 6
    for (auto b : out)
        EXPECT_EQ(b, std::byte{0});
}

TEST(SyntheticValues, GeneratorZeroFillsPageTail)
{
    auto d = desc(8, 4, 1);  // one 32B vector; rest of page unused
    auto gen = synthetic::makeGenerator(d);
    std::vector<std::byte> out(64);
    gen(0, 32, out);  // starts right past the vector
    for (auto b : out)
        EXPECT_EQ(b, std::byte{0});
}

}  // namespace
}  // namespace recssd
