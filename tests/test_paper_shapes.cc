/**
 * @file
 * Regression guards for the paper's headline results, at reduced
 * scale so the suite stays fast. If a model change breaks one of
 * these, the corresponding figure bench will no longer reproduce the
 * published shape.
 */

#include <gtest/gtest.h>

#include "src/embedding/baseline_backend.h"
#include "src/embedding/dram_backend.h"
#include "src/embedding/ndp_backend.h"
#include "src/reco/model_runner.h"
#include "src/trace/trace_gen.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

Tick
opLatency(System &sys, SlsBackend &backend, const EmbeddingTableDesc &table,
          TraceKind kind, unsigned stride, unsigned batch, unsigned lookups)
{
    TraceSpec spec;
    spec.kind = kind;
    spec.universe = table.rows;
    spec.stride = stride;
    spec.seed = 33;
    TraceGenerator gen(spec);
    SlsOp op;
    op.table = &table;
    op.indices = gen.nextBatch(batch, lookups);
    Tick t0 = sys.eq().now();
    bool done = false;
    backend.run(op, [&](SlsResult) { done = true; });
    sys.run();
    EXPECT_TRUE(done);
    return sys.eq().now() - t0;
}

/** Fig 8 STR: the offloaded operator beats conventional reads 3-4.5x. */
TEST(PaperShapes, Fig8StridedNdpSpeedup)
{
    // Fresh system per backend so neither rides the other's warm
    // device page cache.
    Tick lat[2] = {0, 0};
    for (int pass = 0; pass < 2; ++pass) {
        System sys;
        unsigned rpp = sys.config().ssd.flash.pageSize / (32 * 4);
        auto table = sys.installTable(1'000'000, 32, 4, rpp);
        if (pass == 0) {
            BaselineSsdSlsBackend base(sys.eq(), sys.cpu(), sys.driver(),
                                       sys.queues(),
                                       BaselineSsdSlsBackend::Options{});
            lat[0] = opLatency(sys, base, table, TraceKind::Strided, rpp,
                               32, 80);
        } else {
            NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(),
                              sys.queues(), NdpSlsBackend::Options{});
            lat[1] = opLatency(sys, ndp, table, TraceKind::Strided, rpp,
                               32, 80);
        }
    }
    double speedup = double(lat[0]) / double(lat[1]);
    EXPECT_GT(speedup, 3.0);
    EXPECT_LT(speedup, 4.8);
}

/** Fig 8 SEQ: the weak device CPU loses to the host on aggregation. */
TEST(PaperShapes, Fig8SequentialNdpSlowdown)
{
    System sys;
    unsigned rpp = sys.config().ssd.flash.pageSize / (32 * 4);
    auto table = sys.installTable(1'000'000, 32, 4, rpp);
    BaselineSsdSlsBackend base(sys.eq(), sys.cpu(), sys.driver(),
                               sys.queues(),
                               BaselineSsdSlsBackend::Options{});
    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});
    Tick b = opLatency(sys, base, table, TraceKind::Sequential, 1, 32, 80);
    Tick n = opLatency(sys, ndp, table, TraceKind::Sequential, 1, 32, 80);
    EXPECT_LT(b, n) << "baseline must win on sequential accesses";
}

/** Fig 8: Translation is roughly half of NDP's FTL time on STR. */
TEST(PaperShapes, Fig8TranslationShare)
{
    System sys;
    unsigned rpp = sys.config().ssd.flash.pageSize / (32 * 4);
    auto table = sys.installTable(1'000'000, 32, 4, rpp);
    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});
    opLatency(sys, ndp, table, TraceKind::Strided, rpp, 32, 80);
    const SlsTiming &t = sys.ssd().slsEngine().lastTiming();
    double span = double(t.flashDone - t.configProcessed);
    double share = double(t.translationTime()) / span;
    EXPECT_GT(share, 0.3);
    EXPECT_LT(share, 0.75);
}

/** Fig 5: SSD-resident SLS costs orders of magnitude over DRAM. */
TEST(PaperShapes, Fig5DramVsSsdGap)
{
    System sys;
    auto table = sys.installTable(1'000'000, 32);
    DramSlsBackend dram(sys.eq(), sys.cpu());
    BaselineSsdSlsBackend base(sys.eq(), sys.cpu(), sys.driver(),
                               sys.queues(),
                               BaselineSsdSlsBackend::Options{});
    Tick d = opLatency(sys, dram, table, TraceKind::Uniform, 1, 16, 80);
    Tick s = opLatency(sys, base, table, TraceKind::Uniform, 1, 16, 80);
    EXPECT_GT(double(s) / double(d), 300.0);
}

/** Fig 6: MLP-dominated models barely notice the hybrid SSD. */
TEST(PaperShapes, Fig6MlpDominatedDegradationSmall)
{
    double lat[2];
    for (int pass = 0; pass < 2; ++pass) {
        System sys;
        RunnerOptions opt;
        opt.backend = pass ? EmbeddingBackendKind::BaselineSsd
                           : EmbeddingBackendKind::Dram;
        opt.pipeline = true;
        opt.subBatches = 8;
        opt.hostLruCache = pass == 1;
        opt.trace.kind = TraceKind::Uniform;
        ModelRunner runner(sys, modelByName("WND"), opt);
        lat[pass] = runner.measure(32, 1, 2).avgLatencyUs;
    }
    EXPECT_LT(lat[1] / lat[0], 1.25);
}

/** Fig 6: embedding-dominated models degrade by orders of magnitude. */
TEST(PaperShapes, Fig6EmbeddingDominatedDegradationHuge)
{
    double lat[2];
    for (int pass = 0; pass < 2; ++pass) {
        System sys;
        RunnerOptions opt;
        opt.backend = pass ? EmbeddingBackendKind::BaselineSsd
                           : EmbeddingBackendKind::Dram;
        opt.trace.kind = TraceKind::Uniform;
        ModelRunner runner(sys, modelByName("RM3"), opt);
        lat[pass] = runner.measure(16, 1, 1).avgLatencyUs;
    }
    EXPECT_GT(lat[1] / lat[0], 50.0);
}

/** Fig 10 crossover: the baseline's LRU wins at K=0, loses at K=2. */
TEST(PaperShapes, Fig10LocalityCrossover)
{
    auto run = [](double k, bool ndp) {
        SystemConfig cfg;
        if (ndp)
            cfg.ssd.sls.embeddingCacheBytes = 512 * 1024;
        System sys(cfg);
        RunnerOptions opt;
        opt.backend = ndp ? EmbeddingBackendKind::Ndp
                          : EmbeddingBackendKind::BaselineSsd;
        opt.hostLruCache = !ndp;
        opt.forceAllTablesOnSsd = true;
        opt.trace.kind = TraceKind::LocalityK;
        opt.trace.k = k;
        ModelRunner runner(sys, modelByName("RM1"), opt);
        return runner.measure(4, 16, 4).avgLatencyUs;
    };
    double k0 = run(0.0, false) / run(0.0, true);
    double k2 = run(2.0, false) / run(2.0, true);
    EXPECT_LT(k0, 1.3) << "high locality: LRU baseline competitive";
    EXPECT_GT(k2, 2.0) << "low locality: RecSSD must win clearly";
    EXPECT_GT(k2, k0) << "RecSSD's edge must grow as locality drops";
}

/** §6.3: the static partition hit rate tends to 25% (2K of 8K rows). */
TEST(PaperShapes, PartitionHitRateApproachesQuarter)
{
    System sys;
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.staticPartition = true;
    opt.forceAllTablesOnSsd = true;
    opt.trace.kind = TraceKind::LocalityK;
    opt.trace.k = 2.0;
    ModelRunner runner(sys, modelByName("RM3"), opt);
    // Warm until the trace has cycled its 8K-row active universe a
    // few times; the asymptote only appears in steady state.
    auto stats = runner.measure(16, 80, 8);
    EXPECT_GT(stats.partitionHitRate, 0.15);
    EXPECT_LT(stats.partitionHitRate, 0.45);
}

}  // namespace
}  // namespace recssd
