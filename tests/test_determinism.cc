/**
 * @file
 * The determinism contract, end to end: a seeded run is a pure
 * function of its config.  Two freshly constructed systems driven
 * through the batched serving path with identical seeds must emit
 * byte-identical stats JSON, metrics JSONL and Chrome trace artifacts
 * -- single-SSD and multi-SSD sharded alike.  A second set of tests
 * turns on RECSSD_AUDIT and proves the deep runtime invariants (event
 * pop order, FTL L2P bijection after GC, aggregate-stat consistency)
 * hold on the same workloads without perturbing a single output byte.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "src/fault/fault_plan.h"
#include "src/flash/flash_array.h"
#include "src/ftl/ftl.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/reco/model_runner.h"
#include "src/reco/serving.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.tables = {TableGroup{2, 50'000, 16, 8}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

ServeConfig
smallServe()
{
    ServeConfig cfg;
    cfg.arrivals.process = ArrivalProcess::Poisson;
    cfg.arrivals.qps = 2'000.0;
    cfg.shape.minBatch = 4;
    cfg.shape.maxBatch = 8;
    cfg.batching.maxBatchSamples = 16;
    cfg.batching.maxWait = 200 * usec;
    cfg.batching.maxInFlight = 2;
    cfg.queries = 30;
    cfg.warmupQueries = 4;
    cfg.seed = 7;
    return cfg;
}

/** Every artifact a run exports, captured as raw bytes. */
struct Artifacts
{
    std::string statsJson;
    std::string metricsJsonl;
    std::string trace;
};

/**
 * Build a fresh system, serve the fixed workload on the ndp backend,
 * and capture every export exactly the way `recssd_sim` writes it
 * (final sampler snapshot before the JSONL dump).
 */
Artifacts
runOnce(unsigned num_ssds, ShardPolicy policy)
{
    SystemConfig cfg = test::smallSystem();
    cfg.shard.numShards = num_ssds;
    cfg.shard.policy = policy;
    System sys(cfg);
    sys.enableTracing();
    MetricSampler &sampler = sys.startMetricSampler(50 * usec);

    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    ModelRunner runner(sys, tinyModel(), opt);
    ServeStats stats = runServe(runner, smallServe());
    EXPECT_EQ(stats.completedQueries, smallServe().queries);

    Artifacts out;
    std::ostringstream stats_os, metrics_os, trace_os;
    sys.dumpStatsJson(stats_os);
    sampler.sampleNow();
    sampler.writeJsonl(metrics_os);
    sys.tracer().writeChromeTrace(trace_os);
    out.statsJson = stats_os.str();
    out.metricsJsonl = metrics_os.str();
    out.trace = trace_os.str();
    return out;
}

/**
 * Like runOnce but with the full tail-tolerance machinery live: a
 * 3-device replicated system, a fault plan (periodic die stalls on
 * one device, a dropout on another mid-run), auto-quantile hedging
 * and a deadline. Every nondeterminism hazard the subsystem adds —
 * injector RNG, hedge timers racing completions, failover paths,
 * degraded fills — funnels through the same artifact dump.
 */
Artifacts
runFaultedOnce()
{
    SystemConfig cfg = test::smallSystem();
    cfg.shard.numShards = 3;
    cfg.shard.policy = ShardPolicy::RowRange;
    cfg.shard.replication = 2;
    applyFaultPlan(cfg,
                   FaultPlan::parse("stall@1:at=2ms,dur=2ms,period=3ms,"
                                    "count=4; dropout@2:at=8ms"));
    System sys(cfg);
    sys.enableTracing();
    MetricSampler &sampler = sys.startMetricSampler(50 * usec);

    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    opt.resil.deadline = 30 * msec;
    opt.resil.hedge.mode = HedgeMode::Auto;
    opt.resil.hedge.fixedDelay = 1 * msec;
    opt.resil.hedge.minSamples = 16;
    ModelRunner runner(sys, tinyModel(), opt);
    ServeStats stats = runServe(runner, smallServe());
    EXPECT_EQ(stats.completedQueries, smallServe().queries);

    Artifacts out;
    std::ostringstream stats_os, metrics_os, trace_os;
    sys.dumpStatsJson(stats_os);
    sampler.sampleNow();
    sampler.writeJsonl(metrics_os);
    sys.tracer().writeChromeTrace(trace_os);
    out.statsJson = stats_os.str();
    out.metricsJsonl = metrics_os.str();
    out.trace = trace_os.str();
    return out;
}

void
expectIdentical(const Artifacts &a, const Artifacts &b)
{
    // EXPECT_EQ on std::string is a byte compare; a mismatch prints
    // the first differing position.
    EXPECT_EQ(a.statsJson, b.statsJson);
    EXPECT_EQ(a.metricsJsonl, b.metricsJsonl);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_FALSE(a.statsJson.empty());
    EXPECT_FALSE(a.metricsJsonl.empty());
    EXPECT_FALSE(a.trace.empty());
}

/** Scoped RECSSD_AUDIT=1 (components cache it at construction). */
class ScopedAudit
{
  public:
    ScopedAudit() { ::setenv("RECSSD_AUDIT", "1", 1); }
    ~ScopedAudit() { ::unsetenv("RECSSD_AUDIT"); }
};

TEST(Determinism, SingleSsdServeIsByteIdentical)
{
    Artifacts first = runOnce(1, ShardPolicy::TableHash);
    Artifacts second = runOnce(1, ShardPolicy::TableHash);
    expectIdentical(first, second);
}

TEST(Determinism, ShardedServeIsByteIdentical)
{
    Artifacts first = runOnce(2, ShardPolicy::RowRange);
    Artifacts second = runOnce(2, ShardPolicy::RowRange);
    expectIdentical(first, second);
}

TEST(Determinism, FaultedHedgedServeIsByteIdentical)
{
    Artifacts first = runFaultedOnce();
    Artifacts second = runFaultedOnce();
    expectIdentical(first, second);
    // The faulted run must actually differ from the clean one (the
    // injector fired), not silently no-op into it.
    Artifacts clean = runOnce(3, ShardPolicy::RowRange);
    EXPECT_NE(first.statsJson, clean.statsJson);
}

TEST(Determinism, AuditModeDoesNotPerturbArtifacts)
{
    // The audited run exercises the event-queue pop monotonicity
    // check on every event and the aggregate-vs-subtree stat check at
    // dump time (2 devices), and must not change any exported byte.
    Artifacts plain = runOnce(2, ShardPolicy::RowRange);
    Artifacts audited = [] {
        ScopedAudit audit;
        return runOnce(2, ShardPolicy::RowRange);
    }();
    expectIdentical(plain, audited);
}

TEST(Determinism, AuditedMixedRwServeIsByteIdentical)
{
    // Mixed read-write serving under RECSSD_AUDIT drives every surface
    // the deferred-state protocol (src/common/analysis.h) annotates:
    // the write path bumps per-LPN remap epochs through the guarded
    // Ftl helpers, the NDP engine re-validates gather snapshots via
    // writeEpochOf, the write observer fires after each map mutation,
    // and the sampler reads the mutex-guarded StatRegistry throughout.
    // The SimMutex/SimLockGuard contracts are zero-cost by design, so
    // two audited runs must still export byte-identical artifacts —
    // and must match an unaudited run byte for byte.
    auto mixedRun = [] {
        SystemConfig cfg = test::smallSystem();
        cfg.shard.numShards = 2;
        cfg.shard.policy = ShardPolicy::RowRange;
        System sys(cfg);
        sys.enableTracing();
        MetricSampler &sampler = sys.startMetricSampler(50 * usec);

        RunnerOptions opt;
        opt.backend = EmbeddingBackendKind::Ndp;
        opt.forceAllTablesOnSsd = true;
        ModelRunner runner(sys, tinyModel(), opt);
        ServeConfig serve = smallServe();
        serve.updates.rate = 50'000.0;
        serve.updates.skew = 0.8;
        ServeStats stats = runServe(runner, serve);
        EXPECT_EQ(stats.completedQueries, serve.queries);
        EXPECT_GT(stats.update.applied, 0u)
            << "update stream must actually exercise the write path";

        Artifacts out;
        std::ostringstream stats_os, metrics_os, trace_os;
        sys.dumpStatsJson(stats_os);
        sampler.sampleNow();
        sampler.writeJsonl(metrics_os);
        sys.tracer().writeChromeTrace(trace_os);
        out.statsJson = stats_os.str();
        out.metricsJsonl = metrics_os.str();
        out.trace = trace_os.str();
        return out;
    };

    Artifacts plain = mixedRun();
    ScopedAudit audit;
    Artifacts first = mixedRun();
    Artifacts second = mixedRun();
    expectIdentical(first, second);
    expectIdentical(plain, first);
}

TEST(Determinism, AuditValidatesFtlMappingAcrossGc)
{
    // Serve-mode reads rarely trigger GC, so drive the FTL write path
    // directly on a tiny drive until garbage collection runs with the
    // L2P bijection audit live after every row erase.
    ScopedAudit audit;
    FlashParams fp = test::tinyFlash();
    DataStore store(fp.pageSize);
    EventQueue eq;
    FlashArray flash(eq, fp, store);
    Ftl ftl(eq, FtlParams{}, flash);

    constexpr Lpn kLogical = 64;
    std::vector<std::byte> data(fp.pageSize, std::byte{0x5a});
    for (int round = 0; round < 4; ++round) {
        for (Lpn l = 0; l < kLogical; ++l) {
            bool done = false;
            ftl.hostWrite(l, data, [&]() { done = true; });
            eq.run();
            ASSERT_TRUE(done);
        }
    }
    EXPECT_GT(ftl.gcRuns(), 0u) << "workload must trigger GC";
}

}  // namespace
}  // namespace recssd
