/**
 * @file
 * End-to-end inference engine tests: placement, pipelining,
 * functional scores across backends, measurement statistics.
 */

#include <gtest/gtest.h>

#include "src/reco/model_runner.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

ModelConfig
tinyModel(unsigned tables = 2, std::uint64_t rows = 50'000,
          unsigned lookups = 8)
{
    ModelConfig m;
    m.name = "tiny";
    m.tables = {TableGroup{tables, rows, 16, lookups}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

TEST(ModelRunner, DramBatchCompletes)
{
    System sys(test::smallSystem());
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Dram;
    ModelRunner runner(sys, tinyModel(), opt);
    Tick lat = runner.runBatch(8);
    EXPECT_GT(lat, 0u);
    EXPECT_EQ(runner.ssdTables(), 0u);
}

TEST(ModelRunner, HybridPlacementSplitsBySize)
{
    System sys(test::smallSystem());
    ModelConfig m;
    m.name = "mixed";
    m.tables = {TableGroup{2, 1'000, 16, 2},
                TableGroup{1, 900'000, 16, 2}};
    m.denseInputs = 4;
    m.topMlp = {8, 1};
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::BaselineSsd;
    opt.dramResidentMaxRows = 100'000;
    ModelRunner runner(sys, m, opt);
    EXPECT_EQ(runner.ssdTables(), 1u);
    EXPECT_GT(runner.runBatch(4), 0u);
}

TEST(ModelRunner, ForceAllTablesOnSsd)
{
    System sys(test::smallSystem());
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::BaselineSsd;
    opt.forceAllTablesOnSsd = true;
    ModelRunner runner(sys, tinyModel(), opt);
    EXPECT_EQ(runner.ssdTables(), 2u);
}

TEST(ModelRunner, FunctionalScoresIdenticalAcrossBackends)
{
    std::vector<float> scores[3];
    EmbeddingBackendKind kinds[3] = {EmbeddingBackendKind::Dram,
                                     EmbeddingBackendKind::BaselineSsd,
                                     EmbeddingBackendKind::Ndp};
    for (int i = 0; i < 3; ++i) {
        System sys(test::smallSystem());
        RunnerOptions opt;
        opt.backend = kinds[i];
        opt.forceAllTablesOnSsd = true;
        opt.functionalMlp = true;
        opt.seed = 2024;
        ModelRunner runner(sys, tinyModel(), opt);
        runner.runBatch(8);
        scores[i] = runner.lastScores().data;
        ASSERT_EQ(scores[i].size(), 8u);
    }
    EXPECT_EQ(scores[0], scores[1]);
    EXPECT_EQ(scores[0], scores[2]);
}

TEST(ModelRunner, ScoresAreProbabilities)
{
    System sys(test::smallSystem());
    RunnerOptions opt;
    opt.functionalMlp = true;
    ModelRunner runner(sys, tinyModel(), opt);
    runner.runBatch(16);
    for (float v : runner.lastScores().data) {
        EXPECT_GT(v, 0.0f);
        EXPECT_LT(v, 1.0f);
    }
}

TEST(ModelRunner, PipeliningReducesLatency)
{
    double lat[2];
    for (int pass = 0; pass < 2; ++pass) {
        System sys(test::smallSystem());
        RunnerOptions opt;
        opt.backend = EmbeddingBackendKind::BaselineSsd;
        opt.forceAllTablesOnSsd = true;
        opt.pipeline = pass == 1;
        opt.subBatches = 4;
        // Give the MLP real weight so overlap matters.
        ModelConfig m = tinyModel(2, 200'000, 16);
        m.topMlp = {512, 256, 1};
        ModelRunner runner(sys, m, opt);
        lat[pass] = runner.measure(16, 1, 3).avgLatencyUs;
    }
    EXPECT_LT(lat[1], lat[0]) << "pipelined run must not be slower";
}

TEST(ModelRunner, NdpBeatsBaselineOnEmbeddingDominatedModel)
{
    double lat[2];
    EmbeddingBackendKind kinds[2] = {EmbeddingBackendKind::BaselineSsd,
                                     EmbeddingBackendKind::Ndp};
    for (int pass = 0; pass < 2; ++pass) {
        System sys;  // full-size drive for a 1M-row table
        RunnerOptions opt;
        opt.backend = kinds[pass];
        opt.forceAllTablesOnSsd = true;
        opt.pipeline = false;
        opt.trace.kind = TraceKind::Uniform;
        ModelConfig m = tinyModel(2, 1'000'000, 40);
        ModelRunner runner(sys, m, opt);
        lat[pass] = runner.measure(16, 1, 2).avgLatencyUs;
    }
    EXPECT_LT(lat[1] * 1.5, lat[0]);
}

TEST(ModelRunner, MeasureReportsStats)
{
    System sys(test::smallSystem());
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::BaselineSsd;
    opt.forceAllTablesOnSsd = true;
    opt.hostLruCache = true;
    opt.trace.kind = TraceKind::LocalityK;
    opt.trace.k = 0.0;
    ModelRunner runner(sys, tinyModel(), opt);
    auto stats = runner.measure(8, 2, 4);
    EXPECT_EQ(stats.batches, 4u);
    EXPECT_GT(stats.avgLatencyUs, 0.0);
    EXPECT_LE(stats.minLatencyUs, stats.avgLatencyUs);
    EXPECT_GE(stats.maxLatencyUs, stats.avgLatencyUs);
    EXPECT_GT(stats.hostCacheHitRate, 0.3)
        << "K=0 traffic must hit the host LRU cache";
}

TEST(ModelRunner, StaticPartitionAbsorbsLookups)
{
    System sys(test::smallSystem());
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    opt.staticPartition = true;
    opt.partitionEntries = 512;
    opt.trace.kind = TraceKind::LocalityK;
    opt.trace.k = 0.0;
    opt.trace.activeUniverse = 1024;
    ModelRunner runner(sys, tinyModel(), opt);
    auto stats = runner.measure(8, 1, 4);
    EXPECT_GT(stats.partitionHitRate, 0.2);
}

TEST(ModelRunner, LatencyScalesWithBatchSize)
{
    System sys(test::smallSystem());
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::BaselineSsd;
    opt.forceAllTablesOnSsd = true;
    ModelRunner runner(sys, tinyModel(), opt);
    Tick small = runner.runBatch(2);
    Tick large = runner.runBatch(32);
    EXPECT_GT(large, small);
}

}  // namespace
}  // namespace recssd
