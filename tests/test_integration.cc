/**
 * @file
 * Whole-stack smoke and equivalence tests: host driver -> NVMe ->
 * FTL -> flash, for all three SLS backends, on one System.
 */

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/embedding/baseline_backend.h"
#include "src/embedding/dram_backend.h"
#include "src/embedding/ndp_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/trace/trace_gen.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

class IntegrationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sys_ = std::make_unique<System>(test::smallSystem());
    }

    SlsOp
    makeOp(const EmbeddingTableDesc &table, unsigned batch,
           unsigned lookups, TraceKind kind)
    {
        TraceSpec spec;
        spec.kind = kind;
        spec.universe = table.rows;
        spec.stride = 17;
        spec.seed = 99;
        TraceGenerator gen(spec);
        SlsOp op;
        op.table = &table;
        op.indices = gen.nextBatch(batch, lookups);
        return op;
    }

    SlsResult
    runSync(SlsBackend &backend, const SlsOp &op)
    {
        SlsResult out;
        bool done = false;
        backend.run(op, [&](SlsResult r) {
            out = std::move(r);
            done = true;
        });
        sys_->run();
        EXPECT_TRUE(done);
        return out;
    }

    std::unique_ptr<System> sys_;
};

TEST_F(IntegrationTest, DramBackendMatchesReference)
{
    auto table = sys_->describeDramTable(100'000, 32);
    DramSlsBackend dram(sys_->eq(), sys_->cpu());
    auto op = makeOp(table, 8, 20, TraceKind::Uniform);
    auto result = runSync(dram, op);
    EXPECT_EQ(result, synthetic::expectedSls(table, op.indices));
}

TEST_F(IntegrationTest, BaselineSsdMatchesReference)
{
    auto table = sys_->installTable(100'000, 32);
    BaselineSsdSlsBackend base(sys_->eq(), sys_->cpu(), sys_->driver(),
                               sys_->queues(),
                               BaselineSsdSlsBackend::Options{});
    auto op = makeOp(table, 4, 10, TraceKind::Uniform);
    auto result = runSync(base, op);
    EXPECT_EQ(result, synthetic::expectedSls(table, op.indices));
}

TEST_F(IntegrationTest, NdpMatchesReference)
{
    auto table = sys_->installTable(100'000, 32);
    NdpSlsBackend ndp(sys_->eq(), sys_->cpu(), sys_->driver(),
                      sys_->queues(), NdpSlsBackend::Options{});
    auto op = makeOp(table, 4, 10, TraceKind::Uniform);
    auto result = runSync(ndp, op);
    EXPECT_EQ(result, synthetic::expectedSls(table, op.indices));
}

TEST_F(IntegrationTest, AllBackendsBitIdentical)
{
    auto ssd_table = sys_->installTable(50'000, 64);
    DramSlsBackend dram(sys_->eq(), sys_->cpu());
    BaselineSsdSlsBackend base(sys_->eq(), sys_->cpu(), sys_->driver(),
                               sys_->queues(),
                               BaselineSsdSlsBackend::Options{});
    NdpSlsBackend ndp(sys_->eq(), sys_->cpu(), sys_->driver(),
                      sys_->queues(), NdpSlsBackend::Options{});
    auto op = makeOp(ssd_table, 16, 40, TraceKind::Strided);
    auto a = runSync(dram, op);
    auto b = runSync(base, op);
    auto c = runSync(ndp, op);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
}

TEST_F(IntegrationTest, NdpFasterThanBaselineOnStrided)
{
    auto table = sys_->installTable(1'000'000, 32);
    BaselineSsdSlsBackend base(sys_->eq(), sys_->cpu(), sys_->driver(),
                               sys_->queues(),
                               BaselineSsdSlsBackend::Options{});
    NdpSlsBackend ndp(sys_->eq(), sys_->cpu(), sys_->driver(),
                      sys_->queues(), NdpSlsBackend::Options{});
    auto op = makeOp(table, 32, 80, TraceKind::Strided);

    Tick t0 = sys_->eq().now();
    runSync(base, op);
    Tick base_time = sys_->eq().now() - t0;

    t0 = sys_->eq().now();
    runSync(ndp, op);
    Tick ndp_time = sys_->eq().now() - t0;

    EXPECT_LT(ndp_time * 2, base_time)
        << "NDP should be at least 2x faster on strided accesses";
}

TEST_F(IntegrationTest, DramOrdersOfMagnitudeFasterThanSsd)
{
    auto table = sys_->installTable(1'000'000, 32);
    DramSlsBackend dram(sys_->eq(), sys_->cpu());
    BaselineSsdSlsBackend base(sys_->eq(), sys_->cpu(), sys_->driver(),
                               sys_->queues(),
                               BaselineSsdSlsBackend::Options{});
    auto op = makeOp(table, 16, 80, TraceKind::Uniform);

    Tick t0 = sys_->eq().now();
    runSync(dram, op);
    Tick dram_time = sys_->eq().now() - t0;

    t0 = sys_->eq().now();
    runSync(base, op);
    Tick ssd_time = sys_->eq().now() - t0;

    EXPECT_GT(ssd_time, dram_time * 100);
}

}  // namespace
}  // namespace recssd
