/**
 * @file
 * Differential tests: sharded systems vs the single-SSD seed path.
 *
 * For every SSD backend x shard policy x device count 1..4, the
 * scatter-gathered SLS sums must be bit-identical to the unsharded
 * seed system (synthetic embedding values are small integers, so fp32
 * pooling is exact and order-independent — any mismatch is a routing
 * or gather bug, never rounding). The same holds end to end: the
 * functional model scores of a sharded run equal the seed run's.
 */

#include <gtest/gtest.h>

#include "src/embedding/baseline_backend.h"
#include "src/embedding/ndp_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/reco/model_runner.h"
#include "src/trace/trace_gen.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

constexpr unsigned kOps = 3;
constexpr unsigned kBatch = 4;
constexpr unsigned kLookups = 12;

/** Per-device backends for `kind`, wrapped for scatter-gather. */
struct BackendSet
{
    std::vector<std::unique_ptr<SlsBackend>> owned;
    std::unique_ptr<ShardedSlsBackend> sharded;

    BackendSet(System &sys, EmbeddingBackendKind kind)
    {
        std::vector<SlsBackend *> inner;
        for (unsigned d = 0; d < sys.numSsds(); ++d) {
            if (kind == EmbeddingBackendKind::BaselineSsd) {
                owned.push_back(std::make_unique<BaselineSsdSlsBackend>(
                    sys.eq(), sys.cpu(), sys.driver(d), sys.queues(d),
                    BaselineSsdSlsBackend::Options{}));
            } else {
                owned.push_back(std::make_unique<NdpSlsBackend>(
                    sys.eq(), sys.cpu(), sys.driver(d), sys.queues(d),
                    NdpSlsBackend::Options{}));
            }
            inner.push_back(owned.back().get());
        }
        sharded = std::make_unique<ShardedSlsBackend>(
            sys.eq(), sys.cpu(), sys.router(), inner);
    }
};

/** Run the fixed op sequence on one configuration; return results. */
std::vector<SlsResult>
runSums(EmbeddingBackendKind kind, unsigned num_ssds, ShardPolicy policy)
{
    SystemConfig cfg = test::smallSystem();
    cfg.shard.numShards = num_ssds;
    cfg.shard.policy = policy;
    System sys(cfg);
    auto table = sys.installTable(10'000, 16);
    BackendSet backends(sys, kind);

    TraceSpec spec;
    spec.kind = TraceKind::Uniform;
    spec.universe = table.rows;
    spec.seed = 20260806;
    TraceGenerator gen(spec);

    std::vector<SlsResult> results;
    for (unsigned i = 0; i < kOps; ++i) {
        SlsOp op;
        op.table = &table;
        op.indices = gen.nextBatch(kBatch, kLookups);
        SlsResult result;
        backends.sharded->run(op,
                              [&](SlsResult r) { result = std::move(r); });
        sys.run();
        // Exact functional reference, independent of any sim path.
        EXPECT_EQ(result, synthetic::expectedSls(table, op.indices));
        results.push_back(std::move(result));
    }
    return results;
}

class ShardDifferentialSums
    : public ::testing::TestWithParam<EmbeddingBackendKind>
{
};

TEST_P(ShardDifferentialSums, MatchSeedPathBitForBit)
{
    // The seed reference: a default-constructed (unsharded) system.
    auto seed = runSums(GetParam(), 1, ShardPolicy::TableHash);
    for (auto policy : {ShardPolicy::TableHash, ShardPolicy::RowRange}) {
        for (unsigned n = 1; n <= 4; ++n) {
            auto sharded = runSums(GetParam(), n, policy);
            ASSERT_EQ(sharded.size(), seed.size());
            for (std::size_t i = 0; i < seed.size(); ++i)
                EXPECT_EQ(sharded[i], seed[i])
                    << "op " << i << " diverged at N=" << n << " policy "
                    << shardPolicyName(policy);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllSsdBackends, ShardDifferentialSums,
                         ::testing::Values(
                             EmbeddingBackendKind::BaselineSsd,
                             EmbeddingBackendKind::Ndp));

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.tables = {TableGroup{2, 8'000, 16, 4}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

/** Functional model scores for one shard configuration. */
std::vector<float>
runScores(EmbeddingBackendKind kind, bool cache_or_partition,
          unsigned num_ssds, ShardPolicy policy)
{
    SystemConfig cfg = test::smallSystem();
    cfg.shard.numShards = num_ssds;
    cfg.shard.policy = policy;
    System sys(cfg);
    RunnerOptions opt;
    opt.backend = kind;
    opt.forceAllTablesOnSsd = kind != EmbeddingBackendKind::Dram;
    opt.hostLruCache = cache_or_partition &&
                       kind == EmbeddingBackendKind::BaselineSsd;
    opt.staticPartition = cache_or_partition &&
                          kind == EmbeddingBackendKind::Ndp;
    opt.functionalMlp = true;
    opt.trace.kind = TraceKind::LocalityK;
    opt.trace.k = 1.0;
    opt.seed = 20260806;
    ModelRunner runner(sys, tinyModel(), opt);
    std::vector<float> scores;
    for (int b = 0; b < 2; ++b) {
        runner.runBatch(4);
        scores.insert(scores.end(), runner.lastScores().data.begin(),
                      runner.lastScores().data.end());
    }
    return scores;
}

TEST(ShardDifferentialModel, ScoresMatchSeedEveryBackendAndPolicy)
{
    for (auto kind :
         {EmbeddingBackendKind::Dram, EmbeddingBackendKind::BaselineSsd,
          EmbeddingBackendKind::Ndp}) {
        auto seed = runScores(kind, false, 1, ShardPolicy::TableHash);
        ASSERT_FALSE(seed.empty());
        for (auto policy :
             {ShardPolicy::TableHash, ShardPolicy::RowRange}) {
            for (unsigned n = 1; n <= 4; ++n) {
                auto scores = runScores(kind, false, n, policy);
                EXPECT_EQ(scores, seed)
                    << "model outputs diverged at N=" << n << " policy "
                    << shardPolicyName(policy);
            }
        }
    }
}

TEST(ShardDifferentialModel, HostCacheAndPartitionStaySharded)
{
    // The host LRU cache (baseline) and static partition (NDP) are
    // shared across devices and keyed by global row — sharding must
    // not change what they return.
    for (auto kind :
         {EmbeddingBackendKind::BaselineSsd, EmbeddingBackendKind::Ndp}) {
        auto seed = runScores(kind, true, 1, ShardPolicy::TableHash);
        for (auto policy :
             {ShardPolicy::TableHash, ShardPolicy::RowRange}) {
            auto scores = runScores(kind, true, 3, policy);
            EXPECT_EQ(scores, seed)
                << "cached scores diverged under policy "
                << shardPolicyName(policy);
        }
    }
}

}  // namespace
}  // namespace recssd
