/**
 * @file
 * Differential + golden lockdown of the layout subsystem.
 *
 * `--layout-policy log` (the default) must be a perfect no-op: a
 * system configured with an explicit log policy — even with non-default
 * hot-tier sizing knobs — must be tick-for-tick and stats-JSON
 * byte-identical to the untouched default system. The freq policy gets
 * its own golden snapshot (total ticks + layout counters) on the K=1
 * locality trace, pinned the same way as tests/test_golden_latency.cc.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/reco/model_runner.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.tables = {TableGroup{2, 50'000, 16, 8}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

struct RunArtifacts
{
    Tick totalLatency = 0;
    Tick finalNow = 0;
    std::string statsJson;
};

/** 4 NDP batches of 8 on a fresh system; everything a diff can bite. */
RunArtifacts
runNdp(const SystemConfig &cfg)
{
    System sys(cfg);
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    opt.trace.kind = TraceKind::LocalityK;
    opt.trace.k = 1.0;
    opt.seed = 20260806;
    ModelRunner runner(sys, tinyModel(), opt);

    RunArtifacts out;
    for (int b = 0; b < 4; ++b) {
        runner.launchBatch(8, [&](Tick latency) {
            out.totalLatency += latency;
        });
        sys.run();
    }
    out.finalNow = sys.eq().now();
    std::ostringstream os;
    sys.dumpStatsJson(os);
    out.statsJson = os.str();
    return out;
}

TEST(LayoutDifferential, ExplicitLogPolicyIsByteIdenticalToDefault)
{
    // The seed path: default config, layout subsystem never built.
    RunArtifacts seed = runNdp(test::smallSystem());

    // Explicit log policy with every non-policy knob set to unusual
    // values: none of them may matter while the policy is Log.
    SystemConfig cfg = test::smallSystem();
    cfg.ssd.ftl.layout.policy = LayoutPolicy::Log;
    cfg.ssd.ftl.layout.hotTierPages = 7;
    cfg.ssd.ftl.layout.promoteThreshold = 2;
    cfg.ssd.ftl.layout.demoteThreshold = 1;
    cfg.ssd.ftl.layout.decayInterval = 16;
    RunArtifacts log = runNdp(cfg);

    EXPECT_EQ(seed.totalLatency, log.totalLatency)
        << "log policy must be tick-for-tick the seed";
    EXPECT_EQ(seed.finalNow, log.finalNow);
    EXPECT_EQ(seed.statsJson, log.statsJson)
        << "log policy must export byte-identical stats JSON";
}

TEST(LayoutDifferential, LogPolicyExportsNoLayoutStats)
{
    RunArtifacts seed = runNdp(test::smallSystem());
    EXPECT_EQ(seed.statsJson.find("layout"), std::string::npos)
        << "no layout.* keys may exist under the log policy";
    EXPECT_EQ(seed.statsJson.find("hot_tier"), std::string::npos);
}

TEST(LayoutDifferential, FreqPolicyExportsLayoutStats)
{
    SystemConfig cfg = test::smallSystem();
    cfg.ssd.ftl.layout.policy = LayoutPolicy::Freq;
    RunArtifacts freq = runNdp(cfg);
    for (const char *key :
         {"layout.promotions", "layout.migrated_pages",
          "layout.read_pins", "layout.hot_pages_allocated",
          "layout.hot_tier.hits", "sls.hot_tier_hits"}) {
        EXPECT_NE(freq.statsJson.find(key), std::string::npos) << key;
    }
}

// The pinned freq-policy golden on the K=1 trace. Regenerate by
// running this binary and copying the "new" values from the failure
// output; update only for an intentional timing/policy change, and
// say why in the commit.
constexpr Tick kGoldenFreqNdpK1 = 44'536'168;
constexpr std::uint64_t kGoldenFreqPromotions = 55;
constexpr std::uint64_t kGoldenFreqMigratedPages = 5;
constexpr std::uint64_t kGoldenFreqHotTierHits = 69;

TEST(LayoutDifferential, GoldenFreqSnapshotOnK1Trace)
{
    SystemConfig cfg = test::smallSystem();
    cfg.ssd.ftl.layout.policy = LayoutPolicy::Freq;
    // The default decay interval is sized for serving workloads; the
    // tiny 24-batch run would never sweep, so no page could mature.
    // Shrink it so the golden locks the full promote -> mature ->
    // migrate -> hot-tier-hit pipeline, not just read pinning.
    cfg.ssd.ftl.layout.decayInterval = 512;

    System sys(cfg);
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    opt.trace.kind = TraceKind::LocalityK;
    opt.trace.k = 1.0;
    opt.seed = 20260806;
    ModelRunner runner(sys, tinyModel(), opt);

    // Long enough for the tracker to promote the K=1 hot set, migrate
    // it, and serve later batches from the pinned DRAM copies.
    Tick total = 0;
    for (int b = 0; b < 24; ++b) {
        runner.launchBatch(8, [&](Tick latency) { total += latency; });
        sys.run();
    }

    const LayoutManager *lay = sys.ssd(0).ftl().layout();
    ASSERT_NE(lay, nullptr);
    EXPECT_EQ(total, kGoldenFreqNdpK1)
        << "freq golden latency changed: old " << kGoldenFreqNdpK1
        << " new " << total << " ticks.";
    EXPECT_EQ(lay->promotions(), kGoldenFreqPromotions)
        << "freq golden promotions changed: old " << kGoldenFreqPromotions
        << " new " << lay->promotions();
    EXPECT_EQ(lay->migratedPages(), kGoldenFreqMigratedPages)
        << "freq golden migrated pages changed: old "
        << kGoldenFreqMigratedPages << " new " << lay->migratedPages();
    EXPECT_EQ(lay->tier().hits(), kGoldenFreqHotTierHits)
        << "freq golden hot-tier hits changed: old "
        << kGoldenFreqHotTierHits << " new " << lay->tier().hits();
    // All traffic here is NDP, so the engine's own hit counter must
    // account for every tier hit (host reads would add more).
    EXPECT_EQ(sys.ssd(0).slsEngine().hotTierHits(), lay->tier().hits());
}

TEST(LayoutDifferential, FreqPolicyIsDeterministic)
{
    // Two identical freq runs must agree in every artifact — the
    // layout subsystem introduces no iteration-order or wall-clock
    // dependence.
    SystemConfig cfg = test::smallSystem();
    cfg.ssd.ftl.layout.policy = LayoutPolicy::Freq;
    RunArtifacts a = runNdp(cfg);
    RunArtifacts b = runNdp(cfg);
    EXPECT_EQ(a.totalLatency, b.totalLatency);
    EXPECT_EQ(a.finalNow, b.finalNow);
    EXPECT_EQ(a.statsJson, b.statsJson);
}

}  // namespace
}  // namespace recssd
