/**
 * @file
 * Load-generator statistics: the arrival processes must actually have
 * the first and second moments they advertise, and the whole stream
 * must replay bit-identically from the seed.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "src/load/latency_recorder.h"
#include "src/load/load_gen.h"

namespace recssd
{
namespace
{

constexpr unsigned kDraws = 20'000;

struct GapMoments
{
    double mean;
    double cov;  ///< coefficient of variation (stddev / mean)
};

GapMoments
momentsOf(LoadGenerator &gen, unsigned draws)
{
    double sum = 0.0;
    double sum_sq = 0.0;
    for (unsigned i = 0; i < draws; ++i) {
        auto gap = static_cast<double>(gen.nextGap());
        sum += gap;
        sum_sq += gap * gap;
    }
    double mean = sum / draws;
    double var = sum_sq / draws - mean * mean;
    return {mean, std::sqrt(std::max(0.0, var)) / mean};
}

ArrivalSpec
spec(ArrivalProcess process, double qps, double burst = 4.0)
{
    ArrivalSpec a;
    a.process = process;
    a.qps = qps;
    a.burstiness = burst;
    return a;
}

TEST(LoadGen, PoissonMeanMatchesRate)
{
    const double qps = 1000.0;  // mean gap 1ms = 1e6 ticks
    LoadGenerator gen(spec(ArrivalProcess::Poisson, qps),
                      QueryShapeSpec{}, 7);
    auto m = momentsOf(gen, kDraws);
    double expected = static_cast<double>(sec) / qps;
    EXPECT_NEAR(m.mean, expected, 0.03 * expected)
        << "Poisson inter-arrival mean must track 1/lambda";
    EXPECT_NEAR(m.cov, 1.0, 0.1)
        << "exponential gaps have CoV 1";
}

TEST(LoadGen, FixedIntervalIsDeterministic)
{
    LoadGenerator gen(spec(ArrivalProcess::Fixed, 500.0),
                      QueryShapeSpec{}, 7);
    auto m = momentsOf(gen, 1000);
    EXPECT_DOUBLE_EQ(m.mean, static_cast<double>(sec) / 500.0);
    EXPECT_DOUBLE_EQ(m.cov, 0.0);
}

TEST(LoadGen, BurstinessKnobRaisesCoV)
{
    double cov_by_burst[3];
    double bursts[3] = {1.0, 4.0, 16.0};
    for (int i = 0; i < 3; ++i) {
        LoadGenerator gen(
            spec(ArrivalProcess::Bursty, 200.0, bursts[i]),
            QueryShapeSpec{}, 11);
        auto m = momentsOf(gen, kDraws);
        cov_by_burst[i] = m.cov;
        // The hyperexponential preserves the configured mean at every
        // burst factor.
        double expected = static_cast<double>(sec) / 200.0;
        EXPECT_NEAR(m.mean, expected, 0.10 * expected)
            << "burst " << bursts[i];
    }
    EXPECT_NEAR(cov_by_burst[0], 1.0, 0.1)
        << "burstiness 1 degenerates to Poisson";
    EXPECT_GT(cov_by_burst[1], cov_by_burst[0] * 1.5);
    EXPECT_GT(cov_by_burst[2], cov_by_burst[1] * 1.2)
        << "CoV must grow monotonically with the burst factor";
}

TEST(LoadGen, IdenticalSeedsReplayIdenticalStreams)
{
    QueryShapeSpec shape;
    shape.minBatch = 1;
    shape.maxBatch = 32;
    shape.minTables = 1;
    shape.maxTables = 8;
    shape.minPoolingScale = 0.5;
    shape.maxPoolingScale = 2.0;

    LoadGenerator a(spec(ArrivalProcess::Bursty, 100.0), shape, 99);
    LoadGenerator b(spec(ArrivalProcess::Bursty, 100.0), shape, 99);
    auto sa = a.schedule(500);
    auto sb = b.schedule(500);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].arrival, sb[i].arrival) << "query " << i;
        EXPECT_EQ(sa[i].shape.batchSize, sb[i].shape.batchSize);
        EXPECT_EQ(sa[i].shape.tablesTouched, sb[i].shape.tablesTouched);
        EXPECT_DOUBLE_EQ(sa[i].shape.poolingScale,
                         sb[i].shape.poolingScale);
    }

    LoadGenerator c(spec(ArrivalProcess::Bursty, 100.0), shape, 100);
    auto sc = c.schedule(500);
    bool differs = false;
    for (std::size_t i = 0; i < sc.size() && !differs; ++i)
        differs = sc[i].arrival != sa[i].arrival;
    EXPECT_TRUE(differs) << "different seeds must not replay";
}

TEST(LoadGen, ShapesStayWithinConfiguredRanges)
{
    QueryShapeSpec shape;
    shape.minBatch = 4;
    shape.maxBatch = 12;
    shape.minTables = 2;
    shape.maxTables = 5;
    shape.minPoolingScale = 0.25;
    shape.maxPoolingScale = 1.75;
    LoadGenerator gen(spec(ArrivalProcess::Poisson, 100.0), shape, 3);
    bool batch_lo = false;
    bool batch_hi = false;
    for (int i = 0; i < 2000; ++i) {
        QueryShape s = gen.nextShape();
        ASSERT_GE(s.batchSize, 4u);
        ASSERT_LE(s.batchSize, 12u);
        ASSERT_GE(s.tablesTouched, 2u);
        ASSERT_LE(s.tablesTouched, 5u);
        ASSERT_GE(s.poolingScale, 0.25);
        ASSERT_LE(s.poolingScale, 1.75);
        batch_lo |= s.batchSize == 4;
        batch_hi |= s.batchSize == 12;
    }
    EXPECT_TRUE(batch_lo && batch_hi)
        << "uniform batch draw must reach both range endpoints";
}

TEST(LoadGen, DefaultShapeTouchesAllTables)
{
    LoadGenerator gen(spec(ArrivalProcess::Poisson, 100.0),
                      QueryShapeSpec{}, 3);
    QueryShape s = gen.nextShape();
    EXPECT_EQ(s.tablesTouched, ~0u);
    EXPECT_DOUBLE_EQ(s.poolingScale, 1.0);
}

TEST(LoadGen, GapsAreAlwaysPositive)
{
    // Even at absurd rates the generator must advance time.
    LoadGenerator gen(spec(ArrivalProcess::Poisson, 1e12),
                      QueryShapeSpec{}, 5);
    for (int i = 0; i < 1000; ++i)
        ASSERT_GE(gen.nextGap(), 1u);
}

// ---- nearest-rank percentile edge cases (tail reporting relies on
// ---- p999/max being exact, not interpolated) --------------------

TEST(LatencyRecorderPercentiles, SingleSampleIsEveryPercentile)
{
    LatencyRecorder r;
    r.record(42 * usec);
    EXPECT_EQ(r.percentile(0.50), 42 * usec);
    EXPECT_EQ(r.percentile(0.99), 42 * usec);
    EXPECT_EQ(r.percentile(0.999), 42 * usec);
    EXPECT_EQ(r.percentile(1.0), 42 * usec);
    EXPECT_DOUBLE_EQ(r.maxUs(), r.percentileUs(1.0));
}

TEST(LatencyRecorderPercentiles, TwoSamplesSplitAtTheMedian)
{
    LatencyRecorder r;
    r.record(10 * usec);
    r.record(20 * usec);
    // Nearest rank: ceil(0.5 * 2) = 1 -> the smaller sample.
    EXPECT_EQ(r.percentile(0.50), 10 * usec);
    // Anything past 0.5 rounds up to rank 2.
    EXPECT_EQ(r.percentile(0.51), 20 * usec);
    EXPECT_EQ(r.percentile(0.999), 20 * usec);
}

TEST(LatencyRecorderPercentiles, P999DistinguishesRank999From1000)
{
    // 1000 distinct samples 1..1000 us: p999 must be the 999th
    // smallest (ceil(0.999 * 1000) = 999), NOT the max.
    LatencyRecorder r;
    for (int i = 1000; i >= 1; --i)  // reverse: order-independent
        r.record(Tick(i) * usec);
    EXPECT_EQ(r.percentile(0.999), 999 * usec);
    EXPECT_EQ(r.percentile(1.0), 1000 * usec);
    EXPECT_DOUBLE_EQ(r.maxUs(), 1000.0);
    EXPECT_EQ(r.percentile(0.50), 500 * usec);
    EXPECT_EQ(r.percentile(0.99), 990 * usec);
}

TEST(LatencyRecorderPercentiles, P999OnSmallCountsRoundsToMax)
{
    // With n < 1000, ceil(0.999 * n) = n: p999 equals the max.
    LatencyRecorder r;
    for (int i = 1; i <= 999; ++i)
        r.record(Tick(i) * usec);
    EXPECT_EQ(r.percentile(0.999), 999 * usec);
}

TEST(LatencyRecorderPercentiles, DuplicatesAndEmptyRecorder)
{
    LatencyRecorder empty;
    EXPECT_EQ(empty.percentile(0.999), 0u);
    EXPECT_DOUBLE_EQ(empty.maxUs(), 0.0);

    LatencyRecorder r;
    for (int i = 0; i < 10; ++i)
        r.record(5 * usec);
    EXPECT_EQ(r.percentile(0.50), 5 * usec);
    EXPECT_EQ(r.percentile(0.999), 5 * usec);
}

}  // namespace
}  // namespace recssd
