/**
 * @file
 * Shared fixtures and builders for the test suite.
 */

#ifndef RECSSD_TESTS_TEST_HELPERS_H
#define RECSSD_TESTS_TEST_HELPERS_H

#include <cstdint>

#include "src/core/system.h"
#include "src/flash/flash_params.h"
#include "src/ssd/ssd.h"

namespace recssd::test
{

/** Tiny flash geometry so write/GC paths run in milliseconds. */
inline FlashParams
tinyFlash()
{
    FlashParams p;
    p.numChannels = 2;
    p.diesPerChannel = 2;
    p.blocksPerDie = 8;
    p.pagesPerBlock = 8;
    p.pageSize = 4096;
    return p;
}

/** Small but realistic system for integration tests. */
inline SystemConfig
smallSystem()
{
    SystemConfig cfg;
    cfg.ssd.flash.blocksPerDie = 256;  // 8GB; fast to construct
    return cfg;
}

}  // namespace recssd::test

#endif  // RECSSD_TESTS_TEST_HELPERS_H
