/**
 * @file
 * Unit tests for the two-tier logical-to-physical mapping table.
 */

#include <gtest/gtest.h>

#include "src/ftl/mapping_table.h"

namespace recssd
{
namespace
{

TEST(MappingTable, UnmappedIsInvalid)
{
    MappingTable map;
    EXPECT_EQ(map.lookup(0), invalidPpn);
    EXPECT_FALSE(map.mapped(123));
}

TEST(MappingTable, PointSetAndUnset)
{
    MappingTable map;
    map.set(10, 99);
    EXPECT_EQ(map.lookup(10), 99u);
    EXPECT_TRUE(map.mapped(10));
    map.set(10, 100);
    EXPECT_EQ(map.lookup(10), 100u);
    map.unset(10);
    EXPECT_EQ(map.lookup(10), invalidPpn);
}

TEST(MappingTable, RegionTranslatesLinearly)
{
    MappingTable map;
    map.installRegion(1000, 5000, 100);
    EXPECT_EQ(map.lookup(999), invalidPpn);
    EXPECT_EQ(map.lookup(1000), 5000u);
    EXPECT_EQ(map.lookup(1057), 5057u);
    EXPECT_EQ(map.lookup(1099), 5099u);
    EXPECT_EQ(map.lookup(1100), invalidPpn);
    EXPECT_EQ(map.regions(), 1u);
}

TEST(MappingTable, OverlayWinsOverRegion)
{
    MappingTable map;
    map.installRegion(0, 1000, 50);
    map.set(25, 7777);
    EXPECT_EQ(map.lookup(25), 7777u);
    EXPECT_EQ(map.lookup(24), 1024u);
    map.unset(25);
    EXPECT_EQ(map.lookup(25), 1025u) << "region shows through again";
}

TEST(MappingTable, MultipleDisjointRegions)
{
    MappingTable map;
    map.installRegion(0, 100, 10);
    map.installRegion(50, 500, 10);
    map.installRegion(10, 300, 10);
    EXPECT_EQ(map.lookup(5), 105u);
    EXPECT_EQ(map.lookup(15), 305u);
    EXPECT_EQ(map.lookup(55), 505u);
    EXPECT_EQ(map.lookup(30), invalidPpn);
}

TEST(MappingTableDeathTest, OverlappingRegionsPanic)
{
    MappingTable map;
    map.installRegion(100, 0, 50);
    EXPECT_DEATH(map.installRegion(120, 1000, 10), "overlap");
    EXPECT_DEATH(map.installRegion(90, 1000, 20), "overlap");
}

TEST(MappingTableDeathTest, EmptyRegionPanics)
{
    MappingTable map;
    EXPECT_DEATH(map.installRegion(0, 0, 0), "empty");
}

TEST(MappingTable, OverlayEntriesCounted)
{
    MappingTable map;
    for (Lpn l = 0; l < 10; ++l)
        map.set(l, l + 100);
    EXPECT_EQ(map.overlayEntries(), 10u);
}

}  // namespace
}  // namespace recssd
