/**
 * @file
 * Unit tests for the decayed access-frequency tracker: decay math,
 * counter saturation, promote/demote hysteresis (no flapping on a
 * boundary-frequency row) and determinism across identical runs.
 */

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/ftl/freq_tracker.h"

namespace recssd
{
namespace
{

LayoutParams
params(std::uint32_t promote, std::uint32_t demote, std::uint32_t cap,
       std::uint64_t decay_interval)
{
    LayoutParams p;
    p.policy = LayoutPolicy::Freq;
    p.promoteThreshold = promote;
    p.demoteThreshold = demote;
    p.counterCap = cap;
    p.decayInterval = decay_interval;
    return p;
}

TEST(FreqTracker, DecaySweepHalvesEveryCounter)
{
    FreqTracker t(params(4, 1, 64, 8));
    // 6 accesses to page 7, 2 to page 9 => sweep fires on the 8th
    // access and halves both: 6 -> 3, 2 -> 1.
    for (int i = 0; i < 6; ++i)
        t.record(7);
    t.record(9);
    t.record(9);
    EXPECT_EQ(t.decaySweeps(), 1u);
    EXPECT_EQ(t.count(7), 3u);
    EXPECT_EQ(t.count(9), 1u);
    EXPECT_EQ(t.accesses(), 8u);
}

TEST(FreqTracker, DecayPrunesColdZeroCounters)
{
    FreqTracker t(params(4, 1, 64, 4));
    t.record(1);  // counter 1
    t.record(2);
    t.record(2);
    t.record(2);  // sweep: page 1 -> 0 (pruned), page 2: 3 -> 1
    EXPECT_EQ(t.decaySweeps(), 1u);
    EXPECT_EQ(t.count(1), 0u);
    EXPECT_EQ(t.trackedPages(), 1u);
}

TEST(FreqTracker, WeightedRecordCountsRowAccesses)
{
    // A coalesced SLS gather of N rows from one page records once
    // with weight N: promotion fires immediately when the weight
    // alone crosses the threshold, and the weighted accesses drive
    // decay sweeps the same as N individual records would.
    FreqTracker t(params(4, 1, 64, 8));
    EXPECT_EQ(t.record(3, 6), FreqTracker::Event::Promoted);
    EXPECT_EQ(t.count(3), 6u);
    EXPECT_EQ(t.accesses(), 6u);
    // Weight 10 pushes past the interval twice over: 16 weighted
    // accesses = two sweeps, counter 6 + 10 -> capped path 16 is
    // below cap 64, halved twice -> 4.
    t.record(3, 10);
    EXPECT_EQ(t.decaySweeps(), 2u);
    EXPECT_EQ(t.count(3), 4u);
    EXPECT_TRUE(t.isHot(3));
}

TEST(FreqTracker, CounterSaturatesAtCap)
{
    FreqTracker t(params(4, 1, 8, 1'000'000));
    for (int i = 0; i < 100; ++i)
        t.record(42);
    EXPECT_EQ(t.count(42), 8u);
    EXPECT_TRUE(t.isHot(42));
}

TEST(FreqTracker, PromotesExactlyOnceAtThreshold)
{
    FreqTracker t(params(4, 1, 64, 1'000'000));
    unsigned promotions = 0;
    for (int i = 0; i < 10; ++i) {
        if (t.record(5) == FreqTracker::Event::Promoted)
            ++promotions;
    }
    EXPECT_EQ(promotions, 1u);
    EXPECT_TRUE(t.isHot(5));
    EXPECT_EQ(t.hotPages(), 1u);
}

TEST(FreqTracker, BoundaryFrequencyRowNeverFlaps)
{
    // A row re-accessed right at the promote boundary each interval:
    // its counter oscillates inside the hysteresis band
    // [demote, promote] and the class must never change after the
    // first promotion.
    FreqTracker t(params(4, 1, 64, 4));
    for (int i = 0; i < 4; ++i)
        t.record(11);  // promoted on access 4, then halved to 2
    ASSERT_TRUE(t.isHot(11));

    unsigned repromotions = 0;
    for (int round = 0; round < 50; ++round) {
        // Two touches + two other-page touches per interval: counter
        // cycles 2 -> 4 -> (sweep) 2, always >= demoteThreshold.
        for (int i = 0; i < 2; ++i) {
            if (t.record(11) == FreqTracker::Event::Promoted)
                ++repromotions;
        }
        t.record(1000 + round);
        t.record(2000 + round);
        EXPECT_TRUE(t.isHot(11)) << "round " << round;
    }
    EXPECT_EQ(repromotions, 0u) << "hysteresis band must prevent flapping";
    EXPECT_TRUE(t.takeDemotions().empty());
}

TEST(FreqTracker, MaturityRequiresSurvivingASweep)
{
    // Promotion is cheap (DRAM pin on next read); maturity — which
    // queues the expensive flash migration — requires the counter to
    // stay at or above the promote threshold across a decay sweep.
    FreqTracker t(params(4, 1, 64, 8));
    for (int i = 0; i < 6; ++i)
        t.record(5);  // promoted at 4, counter 6
    t.record(100);
    t.record(101);  // sweep: 6 -> 3, below promote bar
    EXPECT_EQ(t.decaySweeps(), 1u);
    EXPECT_TRUE(t.isHot(5)) << "still inside the hysteresis band";
    EXPECT_FALSE(t.isMature(5)) << "a recency blip must not migrate";
    EXPECT_TRUE(t.takeMaturities().empty());

    // A genuinely hot page survives the halving and matures once.
    t.record(5, 8);  // counter 3 + 8 = 11; sweep: 11 -> 5 >= 4
    EXPECT_EQ(t.decaySweeps(), 2u);
    EXPECT_TRUE(t.isMature(5));
    auto matured = t.takeMaturities();
    ASSERT_EQ(matured.size(), 1u);
    EXPECT_EQ(matured[0], Lpn(5));
    EXPECT_TRUE(t.takeMaturities().empty()) << "drained exactly once";

    // Demotion clears maturity so a re-heated page migrates again.
    Lpn other = 200;
    while (t.isHot(5))
        t.record(other++);
    EXPECT_FALSE(t.isMature(5));
}

TEST(FreqTracker, IdlePageDecaysToDemotion)
{
    FreqTracker t(params(4, 1, 64, 4));
    for (int i = 0; i < 4; ++i)
        t.record(11);  // hot, counter halved to 2
    ASSERT_TRUE(t.isHot(11));

    // Only other pages from here on: 11's counter halves 2 -> 1 -> 0;
    // it is demoted when it falls below demoteThreshold.
    Lpn other = 100;
    while (t.isHot(11))
        t.record(other++);
    auto demoted = t.takeDemotions();
    ASSERT_EQ(demoted.size(), 1u);
    EXPECT_EQ(demoted[0], Lpn(11));
    EXPECT_FALSE(t.isHot(11));
    // Demotions are drained exactly once.
    EXPECT_TRUE(t.takeDemotions().empty());
}

TEST(FreqTracker, DemotionsComeOutSortedByLpn)
{
    FreqTracker t(params(2, 1, 64, 1'000'000));
    // Promote in a scrambled order...
    for (Lpn lpn : {97, 3, 55, 12, 80}) {
        t.record(lpn);
        t.record(lpn);
    }
    EXPECT_EQ(t.hotPages(), 5u);
    // ...then let everything decay to zero in one artificial burst of
    // cold traffic (interval is huge, so force sweeps via a fresh
    // tracker with a small interval instead).
    FreqTracker t2(params(2, 1, 64, 10));
    for (Lpn lpn : {97, 3, 55, 12, 80}) {
        t2.record(lpn);
        t2.record(lpn);
    }
    // 10 accesses so far -> one sweep already ran (counters 2 -> 1).
    // One more sweep drags every counter below the demote threshold.
    for (Lpn filler = 500; filler < 510; ++filler)
        t2.record(filler);
    auto demoted = t2.takeDemotions();
    ASSERT_EQ(demoted.size(), 5u);
    EXPECT_TRUE(std::is_sorted(demoted.begin(), demoted.end()));
}

TEST(FreqTracker, DeterministicAcrossIdenticalRuns)
{
    auto run = [](std::vector<Lpn> *demotions_out) {
        FreqTracker t(params(4, 1, 32, 16));
        Rng rng(1234);
        std::vector<Lpn> all_demoted;
        for (int i = 0; i < 5000; ++i) {
            // Skewed synthetic stream: small ids dominate.
            Lpn lpn = rng.bernoulli(0.7) ? rng.uniformInt(8)
                                         : rng.uniformInt(4096);
            t.record(lpn);
            for (Lpn d : t.takeDemotions())
                all_demoted.push_back(d);
        }
        *demotions_out = all_demoted;
        return std::tuple(t.accesses(), t.decaySweeps(), t.hotPages(),
                          t.trackedPages());
    };
    std::vector<Lpn> demoted_a;
    std::vector<Lpn> demoted_b;
    auto a = run(&demoted_a);
    auto b = run(&demoted_b);
    EXPECT_EQ(a, b);
    EXPECT_EQ(demoted_a, demoted_b)
        << "demotion order must be reproducible run-to-run";
}

}  // namespace
}  // namespace recssd
