/**
 * @file
 * Tests for the SSD-side direct-mapped embedding cache.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "src/ndp/embedding_cache.h"
#include "src/nvme/nvme_command.h"

namespace recssd
{
namespace
{

std::vector<std::byte>
vec(std::uint8_t seed, std::size_t n = 128)
{
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = std::byte(static_cast<std::uint8_t>(seed + i));
    return v;
}

TEST(EmbeddingCache, MissThenHit)
{
    EmbeddingCache cache(1 << 20, 128);
    std::vector<std::byte> out(128);
    EXPECT_FALSE(cache.lookup(0, 5, out));
    cache.insert(0, 5, vec(3));
    ASSERT_TRUE(cache.lookup(0, 5, out));
    EXPECT_EQ(out, vec(3));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(EmbeddingCache, DistinctTablesDistinctKeys)
{
    EmbeddingCache cache(1 << 20, 128);
    std::uint64_t base0 = 0;
    std::uint64_t base1 = slsTableAlign;
    cache.insert(base0, 9, vec(1));
    cache.insert(base1, 9, vec(2));
    std::vector<std::byte> out(128);
    ASSERT_TRUE(cache.lookup(base0, 9, out));
    EXPECT_EQ(out, vec(1));
    ASSERT_TRUE(cache.lookup(base1, 9, out));
    EXPECT_EQ(out, vec(2));
}

TEST(EmbeddingCache, DirectMappedConflictEvicts)
{
    // One slot: every key maps there.
    EmbeddingCache cache(128, 128);
    ASSERT_EQ(cache.slots(), 1u);
    cache.insert(0, 1, vec(1));
    cache.insert(0, 2, vec(2));
    std::vector<std::byte> out(128);
    EXPECT_FALSE(cache.lookup(0, 1, out)) << "conflict evicted row 1";
    EXPECT_TRUE(cache.lookup(0, 2, out));
}

TEST(EmbeddingCache, ClearDropsEverything)
{
    EmbeddingCache cache(1 << 16, 128);
    cache.insert(0, 1, vec(1));
    cache.clear();
    std::vector<std::byte> out(128);
    EXPECT_FALSE(cache.lookup(0, 1, out));
}

TEST(EmbeddingCache, PartialSlotUse)
{
    // Smaller vectors than the slot size work (dim-32 table in a
    // 256B-slot cache).
    EmbeddingCache cache(1 << 16, 256);
    cache.insert(0, 4, vec(7, 128));
    std::vector<std::byte> out(128);
    ASSERT_TRUE(cache.lookup(0, 4, out));
    EXPECT_EQ(out, vec(7, 128));
}

TEST(EmbeddingCache, HitRateAndReset)
{
    EmbeddingCache cache(1 << 16, 128);
    std::vector<std::byte> out(128);
    cache.lookup(0, 1, out);
    cache.insert(0, 1, vec(0));
    cache.lookup(0, 1, out);
    EXPECT_NEAR(cache.hitRate(), 0.5, 1e-9);
    cache.resetStats();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(EmbeddingCacheDeathTest, OversizedValuePanics)
{
    EmbeddingCache cache(1 << 16, 64);
    EXPECT_DEATH(cache.insert(0, 1, vec(0, 128)), "larger than");
}

}  // namespace
}  // namespace recssd
